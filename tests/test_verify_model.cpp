// ctest -L verify: the protocol model checker must prove P1-P4 on the real
// declarative tables for N in {1,2,3} workers, and must produce a
// counterexample trace for every seeded bug in the fixture table.
#include <gtest/gtest.h>

#include <string>

#include "model.hpp"

namespace pgasm::verify {
namespace {

ModelConfig clean_config(int workers) {
  ModelConfig c;
  c.workers = workers;
  c.drops = 2;
  c.crashes = 1;
  return c;
}

TEST(VerifyModel, CleanProtocolIsExhaustivelyVerified) {
  for (const int n : {1, 2, 3}) {
    SCOPED_TRACE("workers=" + std::to_string(n));
    const ModelResult r = run_model(clean_config(n));
    EXPECT_TRUE(r.ok) << r.property << ": " << r.message;
    EXPECT_TRUE(r.exhausted);
    EXPECT_GT(r.states, 0u);
    EXPECT_GT(r.edges, 0u);
    EXPECT_GT(r.finals, 0u) << "no normal completion state is reachable";
    EXPECT_TRUE(r.property.empty()) << r.message;
    EXPECT_TRUE(r.trace.empty());
  }
}

TEST(VerifyModel, StateSpaceGrowsWithWorkers) {
  const ModelResult r1 = run_model(clean_config(1));
  const ModelResult r2 = run_model(clean_config(2));
  const ModelResult r3 = run_model(clean_config(3));
  EXPECT_LT(r1.states, r2.states);
  EXPECT_LT(r2.states, r3.states);
}

TEST(VerifyModel, CrashWithWorkRemainingReachesAbortFinal) {
  // With a crash budget the all-workers-lost abort is a real outcome: the
  // model must reach at least one abort-final (the master's TimeoutError),
  // and without crashes it must reach none.
  ModelConfig with = clean_config(1);
  const ModelResult r = run_model(with);
  EXPECT_GT(r.abort_finals, 0u);
  // Without crashes AND without drops no worker can ever be written off
  // (a false reap needs a dropped ping or ack), so the abort is
  // unreachable. With drops alone it IS reachable — message loss can
  // falsely reap every worker — which is why the clean-model run above
  // must count those outcomes as finals rather than deadlocks.
  ModelConfig without = clean_config(2);
  without.crashes = 0;
  without.drops = 0;
  const ModelResult r2 = run_model(without);
  EXPECT_EQ(r2.abort_finals, 0u);
  EXPECT_TRUE(r2.ok) << r2.property << ": " << r2.message;
}

TEST(VerifyModel, EverySeededBugIsCaughtByItsExpectedProperty) {
  const auto fixtures = model_bug_fixtures();
  ASSERT_EQ(fixtures.size(), 6u);
  for (const ModelBugFixture& fx : fixtures) {
    SCOPED_TRACE(model_bug_name(fx.bug));
    const ModelResult r = run_model(fx.config);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.property, fx.expected_property) << r.message;
    EXPECT_FALSE(r.message.empty());
    EXPECT_FALSE(r.trace.empty())
        << "a violation must come with a counterexample schedule";
  }
}

TEST(VerifyModel, SeededBugsCoverAllViolationKinds) {
  // The fixture table must exercise deadlock (P1), conformance (P3) and
  // loss tolerance (P4) so every property checker is proven live. (P2
  // livelock is subsumed: any P2 violation is also found via P1/P4 in
  // these small configs, and the clean run proves the P2 pass runs.)
  bool p1 = false, p3 = false, p4 = false;
  for (const ModelBugFixture& fx : model_bug_fixtures()) {
    const std::string p = fx.expected_property;
    p1 = p1 || p == "P1";
    p3 = p3 || p == "P3";
    p4 = p4 || p == "P4";
  }
  EXPECT_TRUE(p1);
  EXPECT_TRUE(p3);
  EXPECT_TRUE(p4);
}

TEST(VerifyModel, BugNamesRoundTrip) {
  for (const ModelBugFixture& fx : model_bug_fixtures()) {
    ModelBug parsed = ModelBug::kNone;
    ASSERT_TRUE(parse_model_bug(model_bug_name(fx.bug), &parsed));
    EXPECT_EQ(parsed, fx.bug);
  }
  ModelBug parsed = ModelBug::kNone;
  EXPECT_FALSE(parse_model_bug("not-a-bug", &parsed));
}

TEST(VerifyModel, MaxStatesGuardStopsExploration) {
  ModelConfig c = clean_config(3);
  c.max_states = 100;
  const ModelResult r = run_model(c);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.exhausted);
  EXPECT_TRUE(r.property.empty()) << "a guard stop is not a violation";
}

}  // namespace
}  // namespace pgasm::verify
