// Tests for the alignment kernels: reference checks on tiny inputs,
// banded == unbanded with a covering band, overlap classification, and the
// clustering accept test.
#include <gtest/gtest.h>

#include <algorithm>

#include "align/overlap.hpp"
#include "align/pairwise.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using align::AlignOptions;
using align::AlignResult;
using align::OverlapParams;
using align::OverlapType;
using align::Scoring;
using Seq = align::Seq;

std::vector<seq::Code> enc(const std::string& s) { return seq::encode(s); }

/// Exponential-time reference: best global alignment score, linear gaps.
int brute_global(Seq a, Seq b, const Scoring& sc, std::size_t i = 0,
                 std::size_t j = 0) {
  if (i == a.size()) return static_cast<int>(b.size() - j) * sc.gap;
  if (j == b.size()) return static_cast<int>(a.size() - i) * sc.gap;
  const int diag =
      sc.substitution(a[i], b[j]) + brute_global(a, b, sc, i + 1, j + 1);
  const int up = sc.gap + brute_global(a, b, sc, i + 1, j);
  const int left = sc.gap + brute_global(a, b, sc, i, j + 1);
  return std::max({diag, up, left});
}

class AlignRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignRandom, GlobalMatchesBruteForce) {
  util::Prng rng(GetParam());
  const Scoring sc;
  const auto a = test::random_dna(rng, 3 + rng.below(6));
  const auto b = test::random_dna(rng, 3 + rng.below(6));
  const auto r = align::global_align(a, b, sc);
  EXPECT_EQ(r.score, brute_global(a, b, sc));
}

TEST_P(AlignRandom, BandedEqualsUnbandedWithCoveringBand) {
  util::Prng rng(GetParam() + 100);
  const Scoring sc;
  const auto a = test::random_dna(rng, 10 + rng.below(40));
  const auto b = test::random_dna(rng, 10 + rng.below(40));
  const auto full = align::global_align(a, b, sc);
  const auto band = align::banded_global_align(
      a, b, sc, 0, static_cast<std::uint32_t>(a.size() + b.size()));
  EXPECT_EQ(band.score, full.score);
}

TEST_P(AlignRandom, TracebackCountsConsistent) {
  util::Prng rng(GetParam() + 200);
  const Scoring sc;
  const auto a = test::random_dna(rng, 20 + rng.below(30));
  const auto b = test::random_dna(rng, 20 + rng.below(30));
  const auto r = align::global_align(a, b, sc, {.keep_ops = true});
  EXPECT_EQ(r.ops.size(), r.columns);
  std::uint32_t ca = 0, cb = 0, matches = 0;
  for (auto op : r.ops) {
    switch (op) {
      case align::Op::kMatch:
        ++matches;
        [[fallthrough]];
      case align::Op::kMismatch:
        ++ca;
        ++cb;
        break;
      case align::Op::kInsertA:
        ++ca;
        break;
      case align::Op::kInsertB:
        ++cb;
        break;
    }
  }
  EXPECT_EQ(ca, a.size());
  EXPECT_EQ(cb, b.size());
  EXPECT_EQ(matches, r.matches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignRandom,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(Align, GlobalIdentical) {
  const auto a = enc("ACGTACGT");
  const auto r = align::global_align(a, a, Scoring{});
  EXPECT_EQ(r.score, 8 * Scoring{}.match);
  EXPECT_EQ(r.matches, 8u);
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
}

TEST(Align, MaskedNeverMatches) {
  const auto a = enc("ACNNGT");
  const auto r = align::global_align(a, a, Scoring{});
  // The two N positions are mismatches even against themselves.
  EXPECT_EQ(r.matches, 4u);
}

TEST(Align, LocalFindsEmbeddedMatch) {
  const auto a = enc("TTTTTACGTACGTTTTT");
  const auto b = enc("GGGGACGTACGGGG");
  const auto r = align::local_align(a, b, Scoring{});
  EXPECT_GE(r.matches, 7u);
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
}

TEST(Align, AffinePrefersOneLongGap) {
  // With affine gaps, a single 2-gap costs open+2*ext; two separate
  // 1-gaps cost 2*open+2*ext. The alignment should group the gap.
  const auto a = enc("ACGTACGTACGT");
  const auto b = enc("ACGTACGT");  // 4 chars missing
  const Scoring sc{.match = 2, .mismatch = -3, .gap = -4, .gap_open = -5,
                   .gap_extend = -1};
  const auto r = align::global_affine_align(a, b, sc, {.keep_ops = true});
  EXPECT_EQ(r.score, 8 * 2 - 5 - 4 * 1);
  // Exactly one contiguous run of InsertA ops.
  int runs = 0;
  bool in_run = false;
  for (auto op : r.ops) {
    const bool is_gap = op == align::Op::kInsertA;
    if (is_gap && !in_run) ++runs;
    in_run = is_gap;
  }
  EXPECT_EQ(runs, 1);
}

TEST(Align, AffineEqualsLinearWhenCostsMatch) {
  util::Prng rng(55);
  for (int t = 0; t < 8; ++t) {
    const auto a = test::random_dna(rng, 10 + rng.below(20));
    const auto b = test::random_dna(rng, 10 + rng.below(20));
    // gap_open = 0 reduces affine to linear with gap = gap_extend.
    const Scoring lin{.match = 2, .mismatch = -3, .gap = -2};
    const Scoring aff{.match = 2, .mismatch = -3, .gap = -2, .gap_open = 0,
                      .gap_extend = -2};
    EXPECT_EQ(align::global_affine_align(a, b, aff).score,
              align::global_align(a, b, lin).score);
  }
}

// --- Overlap (suffix-prefix) alignment -------------------------------------

TEST(Overlap, PerfectDovetail) {
  // a suffix == b prefix, 10 chars.
  const auto a = enc("TTTTTTACGTACGTAC");
  const auto b = enc("ACGTACGTACGGGGGG");
  const auto r = align::overlap_align(a, b, Scoring{});
  EXPECT_EQ(r.type, OverlapType::kDovetailAB);
  EXPECT_GE(r.aln.matches, 10u);
  EXPECT_EQ(r.aln.a_end, a.size());
  EXPECT_EQ(r.aln.b_begin, 0u);
}

TEST(Overlap, DovetailOtherOrder) {
  const auto a = enc("ACGTACGTACGGGGGG");
  const auto b = enc("TTTTTTACGTACGTAC");
  const auto r = align::overlap_align(a, b, Scoring{});
  EXPECT_EQ(r.type, OverlapType::kDovetailBA);
}

TEST(Overlap, Containment) {
  const auto a = enc("TTTTTACGTACGTACGTTTTTT");
  const auto b = enc("ACGTACGTACGT");
  const auto r = align::overlap_align(a, b, Scoring{});
  EXPECT_EQ(r.type, OverlapType::kContainsB);
  const auto r2 = align::overlap_align(b, a, Scoring{});
  EXPECT_EQ(r2.type, OverlapType::kContainedInB);
}

TEST(Overlap, ToleratesErrors) {
  util::Prng rng(77);
  auto a = test::random_dna(rng, 120);
  // b = last 60 of a + 60 fresh, with 3 substitutions in the overlap.
  std::vector<seq::Code> b(a.begin() + 60, a.end());
  auto fresh = test::random_dna(rng, 60);
  b.insert(b.end(), fresh.begin(), fresh.end());
  for (std::uint32_t posn : {5u, 25u, 45u}) {
    b[posn] = static_cast<seq::Code>((b[posn] + 1) % 4);
  }
  const auto r = align::overlap_align(a, b, Scoring{});
  EXPECT_EQ(r.type, OverlapType::kDovetailAB);
  EXPECT_GE(r.aln.identity(), 0.9);
  EXPECT_GE(r.overlap_len(), 55u);
}

TEST(Overlap, BandedAgreesWithFullOnSeededPairs) {
  util::Prng rng(31);
  for (int t = 0; t < 12; ++t) {
    auto a = test::random_dna(rng, 100);
    // b shares a's suffix starting at 40: seed anchor at (40, 0).
    std::vector<seq::Code> b(a.begin() + 40, a.end());
    auto fresh = test::random_dna(rng, 50);
    b.insert(b.end(), fresh.begin(), fresh.end());
    // A couple of random errors inside the overlap.
    for (int e = 0; e < 2; ++e) {
      const auto posn = rng.below(55);
      b[posn] = static_cast<seq::Code>((b[posn] + 1 + rng.below(3)) % 4);
    }
    const auto full = align::overlap_align(a, b, Scoring{});
    const auto banded =
        align::banded_overlap_align(a, b, Scoring{}, /*shift=*/-40,
                                    /*band=*/8);
    EXPECT_EQ(banded.type, full.type);
    EXPECT_NEAR(banded.aln.score, full.aln.score, 0);
  }
}

TEST(Overlap, BandedMissesWhenBandExcludesEnds) {
  const auto a = enc("AAAAAAAAAACGCGCGCG");
  const auto b = enc("TTTTTTTTTTTTTTTTTT");
  const auto r = align::banded_overlap_align(a, b, Scoring{}, 100, 2);
  EXPECT_EQ(r.type, OverlapType::kNone);
}

TEST(Overlap, AcceptTestEnforcesCutoffs) {
  OverlapParams p;
  p.min_overlap = 40;
  p.min_identity = 0.94;

  util::Prng rng(8);
  auto a = test::random_dna(rng, 100);
  std::vector<seq::Code> b(a.begin() + 50, a.end());
  auto fresh = test::random_dna(rng, 50);
  b.insert(b.end(), fresh.begin(), fresh.end());

  auto good = align::test_overlap(a, b, -50, p);
  EXPECT_TRUE(align::accept_overlap(good, p));

  // Too-short overlap: only 20 shared chars.
  std::vector<seq::Code> c(a.begin() + 80, a.end());
  c.insert(c.end(), fresh.begin(), fresh.end());
  auto shortr = align::test_overlap(a, c, -80, p);
  EXPECT_FALSE(align::accept_overlap(shortr, p));

  // Low identity: corrupt 20% of the overlap.
  auto noisy = b;
  for (std::uint32_t i = 0; i < 50; i += 5)
    noisy[i] = static_cast<seq::Code>((noisy[i] + 2) % 4);
  auto bad = align::test_overlap(a, noisy, -50, p);
  EXPECT_FALSE(align::accept_overlap(bad, p));
}

TEST(Overlap, RcSymmetry) {
  // overlap(a, b) as dovetail A->B should mirror overlap(rc(b), rc(a)).
  util::Prng rng(21);
  auto a = test::random_dna(rng, 80);
  std::vector<seq::Code> b(a.begin() + 30, a.end());
  auto fresh = test::random_dna(rng, 30);
  b.insert(b.end(), fresh.begin(), fresh.end());
  const auto fwd = align::overlap_align(a, b, Scoring{});
  const auto ra = seq::reverse_complement(a);
  const auto rb = seq::reverse_complement(b);
  const auto rev = align::overlap_align(rb, ra, Scoring{});
  EXPECT_EQ(fwd.aln.score, rev.aln.score);
  EXPECT_EQ(fwd.type, OverlapType::kDovetailAB);
  EXPECT_EQ(rev.type, OverlapType::kDovetailAB);
}

TEST(Overlap, FormatAlignmentRenders) {
  const auto a = enc("ACGTAC");
  const auto b = enc("CGTACG");
  const auto r = align::overlap_align(a, b, Scoring{}, {.keep_ops = true});
  const auto s = align::format_alignment(a, b, r.aln);
  EXPECT_NE(s.find('|'), std::string::npos);
}

}  // namespace
}  // namespace pgasm
