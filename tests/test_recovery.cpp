// Pipeline recovery supervisor tests (ctest label: faults): phase retry
// with fault injection on the first attempt only, optional-phase
// degradation, run-manifest generations (adoption, corruption fallback,
// GC) and resume that restores a completed clustering from its final
// checkpoint instead of recomputing it.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "core/wire.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/supervisor.hpp"
#include "sim/reads.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace pgasm {
namespace {

namespace fs = std::filesystem;
using pipeline::PhaseId;
using pipeline::PipelineParams;
using pipeline::run_pipeline;
using pipeline::Supervisor;
using pipeline::SupervisorParams;

/// Fresh, empty scratch directory under the test tempdir.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/pgasm_recovery_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

sim::ReadSet small_reads(std::uint64_t seed) {
  const auto g = sim::simulate_genome(sim::shotgun_like(6'000, seed));
  util::Prng rng(seed);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 300;
  rp.len_spread = 50;
  rp.errors.sub_rate = 0.005;
  sim::sample_wgs(rs, g, 3.0, rp, rng);
  return rs;
}

PipelineParams recovery_params() {
  PipelineParams p;
  p.pre.min_len = 80;
  p.cluster.psi = 14;
  p.cluster.overlap.min_overlap = 30;
  p.cluster.overlap.min_identity = 0.9;
  p.cluster.prefix_w = 4;
  p.cluster.worker_timeout = 0.25;
  p.cluster.worker_timeout_cap = 1.0;
  p.assembly.psi = 16;
  p.assembly.overlap.min_overlap = 30;
  p.assembly.overlap.min_identity = 0.93;
  p.ranks = 3;
  return p;
}

void expect_same_partition(const util::UnionFind& a, const util::UnionFind& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto la = a.labels();
  const auto lb = b.labels();
  std::map<std::uint32_t, std::uint32_t> fwd, bwd;
  for (std::size_t i = 0; i < la.size(); ++i) {
    auto [itf, newf] = fwd.insert({la[i], lb[i]});
    EXPECT_EQ(itf->second, lb[i]) << "element " << i;
    auto [itb, newb] = bwd.insert({lb[i], la[i]});
    EXPECT_EQ(itb->second, la[i]) << "element " << i;
  }
}

// --- Supervisor unit behavior ----------------------------------------------

TEST(Supervisor, RetriesUntilSuccessAndRecordsManifest) {
  const auto dir = scratch_dir("retry");
  SupervisorParams sp;
  sp.dir = dir;
  sp.max_attempts = 3;
  sp.backoff_initial = 0.001;
  sp.backoff_cap = 0.002;
  Supervisor sup(sp);

  int calls = 0;
  const bool ok = sup.run_phase(PhaseId::kCluster, /*required=*/true,
                                [&](std::uint32_t attempt) {
                                  EXPECT_EQ(attempt, static_cast<std::uint32_t>(calls));
                                  ++calls;
                                  if (calls < 3) throw std::runtime_error("flaky");
                                });
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sup.stats().phase_retries, 2u);

  // The manifest on disk records the completion; a new supervisor adopts it.
  Supervisor next(sp);
  EXPECT_TRUE(next.completed_in_manifest(PhaseId::kCluster));
  EXPECT_FALSE(next.completed_in_manifest(PhaseId::kAssembly));
  fs::remove_all(dir);
}

TEST(Supervisor, RequiredPhaseRethrowsAfterExhaustion) {
  const auto dir = scratch_dir("rethrow");
  SupervisorParams sp;
  sp.dir = dir;
  sp.max_attempts = 2;
  sp.backoff_initial = 0.001;
  sp.backoff_cap = 0.002;
  Supervisor sup(sp);
  int calls = 0;
  EXPECT_THROW(sup.run_phase(PhaseId::kAssembly, /*required=*/true,
                             [&](std::uint32_t) {
                               ++calls;
                               throw std::runtime_error("hard failure");
                             }),
               std::runtime_error);
  EXPECT_EQ(calls, 2);
  fs::remove_all(dir);
}

TEST(Supervisor, OptionalPhaseDegradesInsteadOfThrowing) {
  const auto dir = scratch_dir("degrade");
  SupervisorParams sp;
  sp.dir = dir;
  sp.max_attempts = 2;
  sp.backoff_initial = 0.001;
  sp.backoff_cap = 0.002;
  Supervisor sup(sp);
  const bool ok = sup.run_phase(PhaseId::kValidation, /*required=*/false,
                                [&](std::uint32_t) {
                                  throw std::runtime_error("always broken");
                                });
  EXPECT_FALSE(ok);
  EXPECT_TRUE(sup.degraded(PhaseId::kValidation));
  EXPECT_EQ(sup.stats().degraded_phases, 1u);
  fs::remove_all(dir);
}

TEST(Supervisor, CorruptNewestManifestFallsBackToOlderGeneration) {
  const auto dir = scratch_dir("fallback");
  SupervisorParams sp;
  sp.dir = dir;
  sp.max_attempts = 1;
  sp.keep_generations = 4;
  {
    Supervisor gen1(sp);
    gen1.run_phase(PhaseId::kPreprocess, true, [](std::uint32_t) {});
    gen1.run_phase(PhaseId::kCluster, true, [](std::uint32_t) {});
  }
  {
    Supervisor gen2(sp);
    EXPECT_EQ(gen2.generation(), 2u);
    gen2.run_phase(PhaseId::kPreprocess, true, [](std::uint32_t) {});
  }
  // Flip a payload bit in the newest manifest: its CRC check must fail and
  // generation 1 (which also recorded kCluster) must be adopted instead.
  {
    // pgasm-lint: allow(raw-ckpt-write): corrupting the manifest on purpose
    std::fstream f(dir + "/manifest.2.pgmf",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 1);
    f.put(static_cast<char>(0xFF));
  }
  Supervisor sup(sp);
  EXPECT_TRUE(sup.completed_in_manifest(PhaseId::kCluster));
  EXPECT_GE(sup.stats().manifests_rejected, 1u);
  EXPECT_EQ(sup.generation(), 3u);
  fs::remove_all(dir);
}

TEST(Supervisor, StaleGenerationsAreGarbageCollected) {
  const auto dir = scratch_dir("gc");
  SupervisorParams sp;
  sp.dir = dir;
  sp.max_attempts = 1;
  sp.keep_generations = 2;
  for (int run = 0; run < 5; ++run) {
    Supervisor sup(sp);
    sup.run_phase(PhaseId::kPreprocess, true, [](std::uint32_t) {});
  }
  std::size_t manifests = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    manifests += entry.path().extension() == ".pgmf" ? 1 : 0;
  }
  EXPECT_LE(manifests, 2u);
  EXPECT_TRUE(fs::exists(dir + "/manifest.5.pgmf"));
  fs::remove_all(dir);
}

TEST(Supervisor, DisabledSupervisorPropagatesImmediately) {
  Supervisor sup(SupervisorParams{});  // no dir: disabled
  EXPECT_FALSE(sup.enabled());
  int calls = 0;
  EXPECT_THROW(sup.run_phase(PhaseId::kValidation, /*required=*/false,
                             [&](std::uint32_t) {
                               ++calls;
                               throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);  // single attempt, even for optional phases
}

// --- Pipeline-level recovery -----------------------------------------------

TEST(RecoveryPipeline, RerunRestoresCompletedClusteringFromCheckpoint) {
  const auto dir = scratch_dir("rerun");
  const auto rs = small_reads(21);
  auto params = recovery_params();
  params.checkpoint_dir = dir;

  const auto first = run_pipeline(rs.store, sim::vector_library(), params);
  EXPECT_EQ(first.recovery.phases_skipped_resume, 0u);
  EXPECT_TRUE(fs::exists(dir + "/cluster.ckpt"));

  const auto second = run_pipeline(rs.store, sim::vector_library(), params);
  EXPECT_EQ(second.recovery.phases_skipped_resume, 1u);
  EXPECT_GT(second.cluster_stats.resumed_from_epoch, 0u);
  expect_same_partition(first.clusters, second.clusters);
  // The restored run produced the same contigs without redoing clustering.
  EXPECT_EQ(second.assembly_summary.total_contigs,
            first.assembly_summary.total_contigs);
  EXPECT_EQ(second.assembly_summary.consensus_bases,
            first.assembly_summary.consensus_bases);
  fs::remove_all(dir);
}

TEST(RecoveryPipeline, ChangedInputInvalidatesManifestAndCheckpoint) {
  const auto dir = scratch_dir("invalidate");
  auto params = recovery_params();
  params.checkpoint_dir = dir;

  const auto rs1 = small_reads(22);
  (void)run_pipeline(rs1.store, sim::vector_library(), params);

  // Different input: the manifest hash check refuses the old generation and
  // clustering runs fresh (no skip).
  const auto rs2 = small_reads(23);
  const auto result = run_pipeline(rs2.store, sim::vector_library(), params);
  EXPECT_EQ(result.recovery.phases_skipped_resume, 0u);
  fs::remove_all(dir);
}

TEST(RecoveryPipeline, OptionalPostPhaseDegradesLoudly) {
  const auto dir = scratch_dir("optional");
  const auto rs = small_reads(24);
  auto params = recovery_params();
  params.checkpoint_dir = dir;
  params.phase_max_attempts = 2;
  int hook_calls = 0;
  params.optional_post_phase = [&](const pipeline::PipelineResult&) {
    ++hook_calls;
    throw std::runtime_error("validation backend unavailable");
  };
  const auto result = run_pipeline(rs.store, sim::vector_library(), params);
  EXPECT_EQ(hook_calls, 2);
  EXPECT_EQ(result.recovery.degraded_phases, 1u);
  EXPECT_GT(result.assembly_summary.clusters_assembled, 0u);  // run finished
  fs::remove_all(dir);
}

TEST(RecoveryPipeline, FaultsAppliedOnFirstAttemptOnlyHealOnRetry) {
  const auto dir = scratch_dir("retry_faults");
  const auto rs = small_reads(25);
  auto params = recovery_params();
  // Small batches so the master makes enough user-channel sends (replies)
  // for the injected crash index to fire; short master_timeout so the
  // orphaned workers give up quickly after it dies.
  params.cluster.batch_size = 16;
  params.cluster.master_timeout = 1.0;

  const auto baseline = run_pipeline(rs.store, sim::vector_library(), params);

  // Kill the master mid-clustering: attempt 0 fails, the supervisor retries
  // without faults and resumes from the checkpoint the master left behind.
  params.checkpoint_dir = dir;
  params.cluster.checkpoint_every_reports = 2;
  params.faults.crashes.push_back({.rank = 0, .at_send = 12});
  const auto result = run_pipeline(rs.store, sim::vector_library(), params);
  EXPECT_GE(result.recovery.phase_retries, 1u);
  expect_same_partition(baseline.clusters, result.clusters);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pgasm
