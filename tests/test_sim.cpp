// Tests for the workload simulators: genome structure, read sampling
// strategies, error model, community generation, truth bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/community.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"

namespace pgasm {
namespace {

using sim::Genome;
using sim::GenomeParams;
using sim::ReadParams;
using sim::ReadSet;

TEST(GenomeSim, DeterministicForSeed) {
  const auto p = sim::maize_like(50'000, 7);
  const auto a = sim::simulate_genome(p);
  const auto b = sim::simulate_genome(p);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.gene_islands.size(), b.gene_islands.size());
}

TEST(GenomeSim, MaizeLikeComposition) {
  const auto g = sim::simulate_genome(sim::maize_like(300'000, 3));
  EXPECT_EQ(g.length(), 300'000u);
  // Repeat-rich, gene-poor, as in the paper's description of maize.
  EXPECT_GT(g.repeat_fraction(), 0.45);
  EXPECT_LT(g.gene_fraction(), 0.20);
  EXPECT_GT(g.gene_fraction(), 0.05);
}

TEST(GenomeSim, ShotgunLikeModerateRepeats) {
  const auto g = sim::simulate_genome(sim::shotgun_like(200'000, 3));
  EXPECT_LT(g.repeat_fraction(), 0.30);
}

TEST(GenomeSim, IslandLookup) {
  const auto g = sim::simulate_genome(sim::maize_like(100'000, 5));
  ASSERT_FALSE(g.gene_islands.empty());
  for (std::size_t i = 0; i < g.gene_islands.size(); ++i) {
    const auto& iv = g.gene_islands[i];
    EXPECT_EQ(g.island_of(iv.begin), static_cast<int>(i));
    EXPECT_EQ(g.island_of(iv.end - 1), static_cast<int>(i));
  }
  // Positions between islands are non-genic.
  if (g.gene_islands.size() >= 2) {
    const auto gap = g.gene_islands[0].end;
    if (gap < g.gene_islands[1].begin) EXPECT_EQ(g.island_of(gap), -1);
  }
}

TEST(GenomeSim, IslandsSortedDisjoint) {
  const auto g = sim::simulate_genome(sim::maize_like(150'000, 11));
  for (std::size_t i = 1; i < g.gene_islands.size(); ++i) {
    EXPECT_LE(g.gene_islands[i - 1].end, g.gene_islands[i].begin);
  }
}

TEST(ReadSim, WgsCoverageApproximate) {
  const auto g = sim::simulate_genome(sim::shotgun_like(60'000, 2));
  util::Prng rng(4);
  ReadSet rs;
  ReadParams rp;
  rp.len_mean = 500;
  rp.len_spread = 100;
  sim::sample_wgs(rs, g, 5.0, rp, rng);
  const double cov = static_cast<double>(rs.store.total_length()) /
                     static_cast<double>(g.length());
  EXPECT_NEAR(cov, 5.0, 0.6);
  EXPECT_EQ(rs.store.size(), rs.truth.size());
}

TEST(ReadSim, TruthCoordinatesReproduceReads) {
  const auto g = sim::simulate_genome(sim::shotgun_like(40'000, 9));
  util::Prng rng(5);
  ReadSet rs;
  ReadParams rp;
  rp.errors = {};            // no errors
  rp.errors.sub_rate = 0;
  rp.errors.ins_rate = 0;
  rp.errors.del_rate = 0;
  rp.vector_contam_prob = 0; // no contamination
  rp.with_quality = false;
  sim::sample_wgs(rs, g, 1.0, rp, rng);
  for (std::uint32_t i = 0; i < rs.store.size(); ++i) {
    const auto& t = rs.truth[i];
    std::vector<seq::Code> src(g.sequence.begin() + t.begin,
                               g.sequence.begin() + t.end);
    if (t.rc) src = seq::reverse_complement(src);
    const auto read = rs.store.seq(i);
    ASSERT_EQ(read.size(), src.size());
    EXPECT_TRUE(std::equal(read.begin(), read.end(), src.begin()));
  }
}

TEST(ReadSim, ErrorRateWithinTolerance) {
  const auto g = sim::simulate_genome(sim::shotgun_like(50'000, 13));
  util::Prng rng(6);
  ReadSet rs;
  ReadParams rp;
  rp.errors.sub_rate = 0.02;
  rp.errors.ins_rate = 0;
  rp.errors.del_rate = 0;
  rp.vector_contam_prob = 0;
  rp.strand_flip_prob = 0;  // keep forward for direct comparison
  sim::sample_wgs(rs, g, 2.0, rp, rng);
  std::uint64_t mismatches = 0, bases = 0;
  for (std::uint32_t i = 0; i < rs.store.size(); ++i) {
    const auto& t = rs.truth[i];
    const auto read = rs.store.seq(i);
    ASSERT_EQ(read.size(), t.end - t.begin);
    for (std::size_t k = 0; k < read.size(); ++k) {
      mismatches += (read[k] != g.sequence[t.begin + k]);
      ++bases;
    }
  }
  const double rate = static_cast<double>(mismatches) / bases;
  EXPECT_NEAR(rate, 0.02, 0.005);
}

TEST(ReadSim, GeneEnrichmentBiasesSampling) {
  const auto g = sim::simulate_genome(sim::maize_like(200'000, 21));
  util::Prng rng(7);
  ReadSet enriched, uniform;
  ReadParams rp;
  sim::sample_gene_enriched(enriched, g, 600, 0.9, rp, rng,
                            seq::FragType::kMF);
  sim::sample_gene_enriched(uniform, g, 600, 0.0, rp, rng,
                            seq::FragType::kWGS);
  auto genic_fraction = [&](const ReadSet& rs) {
    std::size_t genic = 0;
    for (const auto& t : rs.truth) genic += (t.island_id >= 0);
    return static_cast<double>(genic) / rs.truth.size();
  };
  EXPECT_GT(genic_fraction(enriched), genic_fraction(uniform) + 0.3);
  EXPECT_EQ(enriched.store.type(0), seq::FragType::kMF);
}

TEST(ReadSim, BacReadsStayInClone) {
  const auto g = sim::simulate_genome(sim::shotgun_like(100'000, 17));
  util::Prng rng(8);
  ReadSet rs;
  ReadParams rp;
  sim::sample_bac(rs, g, 3, 20'000, 1.0, rp, rng);
  EXPECT_GT(rs.store.size(), 6u);  // ends + interior
  for (const auto& t : rs.truth) {
    EXPECT_LE(t.end - t.begin, 20'000u);
  }
  EXPECT_EQ(rs.store.type(0), seq::FragType::kBAC);
}

TEST(ReadSim, VectorContaminationPrepends) {
  const auto g = sim::simulate_genome(sim::shotgun_like(30'000, 23));
  util::Prng rng(9);
  ReadSet rs;
  ReadParams rp;
  rp.vector_contam_prob = 1.0;  // always contaminate
  rp.errors.sub_rate = 0;
  rp.errors.ins_rate = 0;
  rp.errors.del_rate = 0;
  sim::sample_wgs(rs, g, 0.5, rp, rng);
  const auto& lib = sim::vector_library();
  std::size_t with_vector = 0;
  for (std::uint32_t i = 0; i < rs.store.size(); ++i) {
    const auto read = rs.store.seq(i);
    for (const auto& vec : lib) {
      if (read.size() >= 15 &&
          std::equal(vec.begin(), vec.begin() + 15, read.begin())) {
        ++with_vector;
        break;
      }
    }
  }
  EXPECT_EQ(with_vector, rs.store.size());
}

TEST(ReadSim, QualityRampsAtEnds) {
  const auto g = sim::simulate_genome(sim::shotgun_like(30'000, 29));
  util::Prng rng(10);
  ReadSet rs;
  ReadParams rp;
  rp.vector_contam_prob = 0;
  sim::sample_wgs(rs, g, 0.5, rp, rng);
  ASSERT_TRUE(rs.store.has_quality());
  double edge_sum = 0, mid_sum = 0;
  std::size_t edge_n = 0, mid_n = 0;
  for (std::uint32_t i = 0; i < rs.store.size(); ++i) {
    const auto q = rs.store.quality(i);
    for (std::size_t k = 0; k < q.size(); ++k) {
      const std::size_t from_edge = std::min(k, q.size() - 1 - k);
      if (from_edge < 5) {
        edge_sum += q[k];
        ++edge_n;
      } else if (from_edge > 40) {
        mid_sum += q[k];
        ++mid_n;
      }
    }
  }
  EXPECT_LT(edge_sum / edge_n, mid_sum / mid_n - 10);
}

TEST(CommunitySim, SpeciesAndAbundance) {
  sim::CommunityParams cp;
  cp.num_species = 20;
  cp.genome_len_min = 5'000;
  cp.genome_len_max = 10'000;
  const auto community = sim::simulate_community(cp);
  ASSERT_EQ(community.genomes.size(), 20u);
  double total = 0;
  for (double a : community.abundance) total += a;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Zipf: first species much more abundant than last.
  EXPECT_GT(community.abundance.front(), community.abundance.back() * 5);

  util::Prng rng(11);
  ReadSet rs;
  sim::sample_community(rs, community, 500, ReadParams{}, rng);
  EXPECT_EQ(rs.store.size(), 500u);
  std::set<std::uint32_t> genomes;
  for (const auto& t : rs.truth) genomes.insert(t.genome_id);
  EXPECT_GT(genomes.size(), 5u);  // a diverse sample
  EXPECT_EQ(rs.store.type(0), seq::FragType::kEnv);
}

}  // namespace
}  // namespace pgasm
