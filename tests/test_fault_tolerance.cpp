// Fault-injection and recovery tests (ctest label: faults).
//
// Covers the vmpi fault plan (crash-at-send-N, drops, delays), the
// timeout-carrying receive/probe APIs, master-worker worker-death recovery
// (batch reassignment + generator takeover), and checkpoint/resume. Every
// potentially-hanging scenario runs under a watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <thread>

#include "core/parallel_cluster.hpp"
#include "core/wire.hpp"
#include "test_helpers.hpp"
#include "util/backoff.hpp"
#include "util/timer.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm {
namespace {

using core::ClusterParams;
using core::cluster_parallel;

/// Run `f` on another thread; fail (and abort: the stuck thread cannot be
/// recovered) if it has not finished within the deadline.
template <typename F>
auto run_with_watchdog(F&& f, int seconds = 120) {
  auto fut = std::async(std::launch::async, std::forward<F>(f));
  if (fut.wait_for(std::chrono::seconds(seconds)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "watchdog expired: run deadlocked";
    std::abort();
  }
  return fut.get();
}

/// Build a read set sampled from a synthetic genome so real overlaps exist.
seq::FragmentStore sampled_reads(util::Prng& rng, std::size_t genome_len,
                                 std::size_t n_reads, std::size_t read_len,
                                 double err = 0.01) {
  const auto genome = test::random_dna(rng, genome_len);
  seq::FragmentStore store;
  for (std::size_t i = 0; i < n_reads; ++i) {
    const std::size_t start = rng.below(genome_len - read_len);
    std::vector<seq::Code> read(genome.begin() + start,
                                genome.begin() + start + read_len);
    for (auto& c : read) {
      if (rng.chance(err))
        c = static_cast<seq::Code>((c + 1 + rng.below(3)) % 4);
    }
    if (rng.chance(0.5)) read = seq::reverse_complement(read);
    store.add(read);
  }
  return store;
}

ClusterParams fault_params() {
  ClusterParams p;
  p.psi = 12;
  p.overlap.min_overlap = 30;
  p.overlap.min_identity = 0.9;
  p.overlap.band = 8;
  p.batch_size = 16;
  // Tight detection so recovery tests run in seconds, but not so tight that
  // a loaded CI machine triggers spurious death declarations.
  p.worker_timeout = 0.25;
  p.worker_timeout_cap = 1.0;
  p.master_timeout = 10.0;
  return p;
}

/// Compare two partitions of [0, n) for equality up to label renaming.
void expect_same_partition(const util::UnionFind& a, const util::UnionFind& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto la = a.labels();
  const auto lb = b.labels();
  std::map<std::uint32_t, std::uint32_t> fwd, bwd;
  for (std::size_t i = 0; i < la.size(); ++i) {
    auto [itf, newf] = fwd.insert({la[i], lb[i]});
    EXPECT_EQ(itf->second, lb[i]) << "element " << i;
    auto [itb, newb] = bwd.insert({lb[i], la[i]});
    EXPECT_EQ(itb->second, la[i]) << "element " << i;
  }
}

// --- util ------------------------------------------------------------------

TEST(Backoff, GrowsAndCaps) {
  util::ExponentialBackoff b(0.1, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(b.next(), 0.1);
  EXPECT_DOUBLE_EQ(b.next(), 0.2);
  EXPECT_DOUBLE_EQ(b.next(), 0.4);
  EXPECT_DOUBLE_EQ(b.next(), 0.5);  // capped
  EXPECT_DOUBLE_EQ(b.current(), 0.5);
  b.reset();
  EXPECT_DOUBLE_EQ(b.current(), 0.1);
}

// --- vmpi timeout APIs -----------------------------------------------------

TEST(FaultVmpi, RecvTimeoutFires) {
  vmpi::Runtime rt(2);
  std::atomic<int> timeouts{0};
  const auto cost = run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 0) {
        EXPECT_THROW(comm.recv_timeout(1, 7, 0.05), vmpi::TimeoutError);
        ++timeouts;
        EXPECT_THROW(comm.probe_timeout(1, 7, 0.05), vmpi::TimeoutError);
        ++timeouts;
      }
    });
  });
  EXPECT_EQ(timeouts.load(), 2);
  EXPECT_EQ(cost.faults.timeouts_fired, 2u);
}

TEST(FaultVmpi, RecvTimeoutDeliversWhenMessageArrives) {
  vmpi::Runtime rt(2);
  run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        comm.send_value(0, 7, 42);
      } else {
        EXPECT_EQ(comm.recv_value_timeout<int>(1, 7, 5.0), 42);
      }
    });
  });
}

TEST(FaultVmpi, InjectedDropLosesExactlyThatMessage) {
  vmpi::FaultPlan plan;
  plan.drops.push_back({.rank = 1, .at_send = 1});
  vmpi::Runtime rt(2, {}, plan);
  const auto cost = run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        comm.send_value(0, 5, 111);  // dropped
        comm.send_value(0, 5, 222);  // delivered
      } else {
        EXPECT_EQ(comm.recv_value<int>(1, 5), 222);
        EXPECT_THROW(comm.recv_timeout(1, 5, 0.05), vmpi::TimeoutError);
      }
    });
  });
  EXPECT_EQ(cost.faults.messages_dropped, 1u);
  EXPECT_EQ(cost.faults.crashes_injected, 0u);
}

TEST(FaultVmpi, InjectedDelayHoldsDelivery) {
  vmpi::FaultPlan plan;
  plan.delays.push_back({.rank = 1, .at_send = 1, .seconds = 0.2});
  vmpi::Runtime rt(2, {}, plan);
  double elapsed = 0;
  const auto cost = run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        comm.send_value(0, 5, 7);
      } else {
        util::WallTimer t;
        EXPECT_EQ(comm.recv_value<int>(1, 5), 7);
        elapsed = t.elapsed();
      }
    });
  });
  EXPECT_EQ(cost.faults.messages_delayed, 1u);
  EXPECT_GE(elapsed, 0.1);
}

TEST(FaultVmpi, CrashAtMessageNKillsOnlyThatRank) {
  vmpi::FaultPlan plan;
  plan.crashes.push_back({.rank = 1, .at_send = 3});
  vmpi::Runtime rt(3, {}, plan);
  const auto cost = run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        for (int i = 0; i < 5; ++i) comm.send_value(2, 9, i);  // dies at i==2
      } else if (comm.rank() == 2) {
        EXPECT_EQ(comm.recv_value<int>(1, 9), 0);
        EXPECT_EQ(comm.recv_value<int>(1, 9), 1);
        // Third message never comes; the failed source turns the wait into
        // a prompt TimeoutError rather than a hang.
        EXPECT_THROW(comm.recv_timeout(1, 9, 5.0), vmpi::TimeoutError);
        EXPECT_TRUE(comm.rank_failed(1));
      }
    });
  });
  EXPECT_EQ(cost.faults.crashes_injected, 1u);
  EXPECT_EQ(cost.faults.ranks_failed, 1u);
}

TEST(FaultVmpi, SsendToDeadRankCompletes) {
  vmpi::FaultPlan plan;
  plan.crashes.push_back({.rank = 1, .at_send = 1});
  vmpi::Runtime rt(2, {}, plan);
  const auto cost = run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        comm.send_value(0, 3, 1);  // dies here
      } else {
        while (!comm.rank_failed(1))
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        // A synchronous send to a dead rank must not block forever.
        const int v = 42;
        comm.ssend(1, 4, &v, sizeof(v));
      }
    });
  });
  EXPECT_EQ(cost.faults.crashes_injected, 1u);
  EXPECT_GE(cost.faults.sends_to_dead, 1u);
}

TEST(FaultVmpi, SsendToFinishedRankCompletes) {
  // A rank that returns normally (finished, not failed) must release
  // synchronous senders blocked on it and fail pending receives fast —
  // otherwise a worker falsely declared dead that ssends one last report
  // after the master exits would hang the whole run at thread join.
  vmpi::Runtime rt(2);
  run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        // Never receives; finishes while the peer is mid-rendezvous.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      } else {
        const int v = 42;
        comm.ssend(1, 4, &v, sizeof(v));  // blocks until rank 1 finishes
        EXPECT_TRUE(comm.rank_done(1));
        EXPECT_FALSE(comm.rank_failed(1));
        // Nothing will ever arrive from a finished rank: prompt timeout,
        // not a 5-second wait.
        util::WallTimer t;
        EXPECT_THROW(comm.recv_timeout(1, 9, 5.0), vmpi::TimeoutError);
        EXPECT_LT(t.elapsed(), 1.0);
      }
    });
  });
}

TEST(FaultVmpi, SendToFinishedRankIsDiscarded) {
  vmpi::Runtime rt(2);
  run_with_watchdog([&] {
    return rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 0) {
        while (!comm.rank_done(1))
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        comm.send_value(1, 5, 7);  // discarded, must not throw or block
        const int v = 9;
        comm.ssend(1, 5, &v, sizeof(v));  // completes immediately
      }
    });
  });
}

TEST(FaultVmpi, SeededDropsAreDeterministic) {
  auto count_drops = [&] {
    vmpi::FaultPlan plan;
    plan.seed = 1234;
    plan.drop_prob = 0.5;
    vmpi::Runtime rt(2, {}, plan);
    const auto cost = rt.run([&](vmpi::Comm& comm) {
      if (comm.rank() == 1) {
        for (int i = 0; i < 64; ++i) comm.send_value(0, 5, i);
        comm.barrier();
      } else {
        comm.barrier();  // internal traffic: never dropped
        vmpi::Status st;
        while (comm.iprobe(1, 5, &st)) (void)comm.recv_value<int>(1, 5);
      }
    });
    return cost.faults.messages_dropped;
  };
  const auto a = count_drops();
  const auto b = count_drops();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 8u);   // ~32 expected of 64
  EXPECT_LT(a, 56u);
}

// --- wire: checkpoint format ----------------------------------------------

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  core::ClusterCheckpoint c;
  c.epoch = 9;
  c.num_ranks = 4;
  c.n_fragments = 3;
  c.labels = {0, 1, 0};
  c.pending = {{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}};
  c.progress = {{1, 0, 100}, {2, 1, 50}, {3, 0, 0}};
  c.input_hash = 0x1122334455667788ULL;
  c.params_hash = 0x99aabbccddeeff00ULL;
  c.pairs_generated = 1000;
  c.pairs_aligned = 400;
  c.merges = 7;
  const auto back = core::decode_checkpoint(core::encode_checkpoint(c));
  EXPECT_EQ(back.epoch, 9u);
  EXPECT_EQ(back.num_ranks, 4u);
  EXPECT_EQ(back.input_hash, 0x1122334455667788ULL);
  EXPECT_EQ(back.params_hash, 0x99aabbccddeeff00ULL);
  ASSERT_EQ(back.labels.size(), 3u);
  EXPECT_EQ(back.labels[2], 0u);
  ASSERT_EQ(back.pending.size(), 2u);
  EXPECT_EQ(back.pending[1].seq_a, 6u);
  ASSERT_EQ(back.progress.size(), 3u);
  EXPECT_EQ(back.progress[0].emitted, 100u);
  EXPECT_EQ(back.progress[1].done, 1u);
  EXPECT_EQ(back.pairs_generated, 1000u);
  EXPECT_EQ(back.merges, 7u);
}

TEST(Checkpoint, RejectsCorrupted) {
  core::ClusterCheckpoint c;
  c.n_fragments = 2;
  c.labels = {0, 1};
  auto bytes = core::encode_checkpoint(c);
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_THROW(core::decode_checkpoint(bytes), std::runtime_error);
  bytes = core::encode_checkpoint(c);
  bytes.resize(bytes.size() - 4);
  EXPECT_THROW(core::decode_checkpoint(bytes), std::runtime_error);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "pgasm_ckpt_test.bin";
  core::ClusterCheckpoint c;
  c.epoch = 3;
  c.num_ranks = 2;
  c.n_fragments = 2;
  c.labels = {0, 0};
  c.pending = {{1, 2, 3, 4, 5}};
  core::save_checkpoint(path, c);
  const auto back = core::load_checkpoint(path);
  EXPECT_EQ(back.epoch, 3u);
  ASSERT_EQ(back.pending.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(core::load_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, HashesTrackInputAndParams) {
  util::Prng rng(11);
  const auto store = sampled_reads(rng, 800, 24, 100, 0.01);
  util::Prng rng2(11);
  const auto same = sampled_reads(rng2, 800, 24, 100, 0.01);
  EXPECT_EQ(core::cluster_input_hash(store), core::cluster_input_hash(same));

  // Same read count, different content: content must drive the hash.
  util::Prng rng3(13);
  const auto other = sampled_reads(rng3, 800, 24, 100, 0.01);
  EXPECT_NE(core::cluster_input_hash(store), core::cluster_input_hash(other));

  const auto params = fault_params();
  auto partition_relevant = params;
  partition_relevant.psi += 2;
  EXPECT_NE(core::cluster_params_hash(params),
            core::cluster_params_hash(partition_relevant));
  // Operational knobs must NOT invalidate a checkpoint: retuning timeouts
  // or checkpoint cadence between a run and its resume is legitimate.
  auto operational = params;
  operational.worker_timeout *= 3;
  operational.master_timeout *= 2;
  operational.reply_timeout *= 2;
  operational.checkpoint_every_reports = 7;
  operational.use_ssend = !operational.use_ssend;
  EXPECT_EQ(core::cluster_params_hash(params),
            core::cluster_params_hash(operational));
}

TEST(Checkpoint, MismatchedResumeRefused) {
  util::Prng rng(12);
  const auto store = sampled_reads(rng, 800, 24, 100, 0.01);
  const auto params = fault_params();

  core::ClusterCheckpoint ck;
  ck.epoch = 1;
  ck.num_ranks = 3;
  ck.n_fragments = static_cast<std::uint32_t>(store.size());
  ck.labels.resize(store.size());
  for (std::uint32_t i = 0; i < ck.labels.size(); ++i) ck.labels[i] = i;

  // Wrong input content (same fragment count).
  ck.input_hash = core::cluster_input_hash(store) ^ 1;
  ck.params_hash = core::cluster_params_hash(params);
  EXPECT_THROW(cluster_parallel(store, params, 3, {}, {}, &ck),
               std::invalid_argument);

  // Wrong partition-relevant parameters.
  ck.input_hash = core::cluster_input_hash(store);
  auto other = params;
  other.psi += 2;
  EXPECT_THROW(cluster_parallel(store, other, 3, {}, {}, &ck),
               std::invalid_argument);

  // Wrong fragment count (checked even with unknown hashes).
  ck.input_hash = 0;
  ck.params_hash = 0;
  ck.n_fragments += 1;
  EXPECT_THROW(cluster_parallel(store, params, 3, {}, {}, &ck),
               std::invalid_argument);
}

// --- clustering under faults ----------------------------------------------

TEST(FaultCluster, WorkerCrashSamePartitionWithReassignment) {
  util::Prng rng(2026);
  const auto store = sampled_reads(rng, 2400, 64, 100, 0.01);
  const auto params = fault_params();

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });
  ASSERT_EQ(baseline.stats.workers_lost, 0u);

  vmpi::FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .at_send = 3});
  const auto faulty = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 4, {}, plan); });

  EXPECT_EQ(faulty.cost.faults.crashes_injected, 1u);
  // >= : a loaded machine may add false-positive death declarations on top
  // of the injected crash; those are safe and must not change the result.
  EXPECT_GE(faulty.stats.workers_lost, 1u);
  EXPECT_GE(faulty.stats.batches_reassigned, 1u);
  EXPECT_GE(faulty.stats.pairs_reassigned, 1u);
  EXPECT_GE(faulty.stats.generator_takeovers, 1u);
  expect_same_partition(baseline.clusters, faulty.clusters);
}

TEST(FaultCluster, CrashPlusDelaysStillSamePartition) {
  util::Prng rng(77);
  const auto store = sampled_reads(rng, 1600, 48, 100, 0.01);
  const auto params = fault_params();

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });

  vmpi::FaultPlan plan;
  plan.crashes.push_back({.rank = 3, .at_send = 2});
  plan.seed = 99;
  plan.delay_prob = 0.1;
  plan.delay_seconds = 0.01;
  const auto faulty = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 4, {}, plan); });
  const auto faulty2 = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 4, {}, plan); });

  EXPECT_GE(faulty.stats.workers_lost, 1u);
  expect_same_partition(baseline.clusters, faulty.clusters);
  expect_same_partition(faulty.clusters, faulty2.clusters);
}

TEST(FaultCluster, DroppedReportRecovers) {
  util::Prng rng(404);
  const auto store = sampled_reads(rng, 1600, 48, 100, 0.01);
  auto params = fault_params();
  // No heartbeat pings (huge probe timeout): user-send indices are then
  // deterministic, so worker 1's send #1 is exactly its first report.
  params.worker_timeout = 30.0;
  params.worker_timeout_cap = 30.0;
  params.reply_timeout = 0.2;

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 3); });

  vmpi::FaultPlan plan;
  plan.drops.push_back({.rank = 1, .at_send = 1});  // first report lost
  const auto faulty = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 3, {}, plan); });

  EXPECT_EQ(faulty.cost.faults.messages_dropped, 1u);
  // The master never saw the original, so the retransmission is folded as a
  // fresh report (not discarded as a duplicate) and no work is lost.
  EXPECT_EQ(faulty.stats.workers_lost, 0u);
  expect_same_partition(baseline.clusters, faulty.clusters);
}

TEST(FaultCluster, DroppedReplyRecoversViaRetransmit) {
  util::Prng rng(405);
  const auto store = sampled_reads(rng, 1600, 48, 100, 0.01);
  auto params = fault_params();
  params.worker_timeout = 30.0;  // no pings: master's send #1 is a reply
  params.worker_timeout_cap = 30.0;
  params.reply_timeout = 0.2;

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 3); });

  vmpi::FaultPlan plan;
  plan.drops.push_back({.rank = 0, .at_send = 1});  // first reply lost
  const auto faulty = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 3, {}, plan); });

  EXPECT_EQ(faulty.cost.faults.messages_dropped, 1u);
  // The worker retransmitted the unanswered report; the master discarded
  // the duplicate by sequence number and re-sent its cached reply.
  EXPECT_GE(faulty.stats.reports_retransmitted, 1u);
  EXPECT_EQ(faulty.stats.workers_lost, 0u);
  expect_same_partition(baseline.clusters, faulty.clusters);
}

TEST(FaultCluster, RandomDropsStillSamePartition) {
  util::Prng rng(406);
  const auto store = sampled_reads(rng, 1600, 48, 100, 0.01);
  auto params = fault_params();
  params.reply_timeout = 0.2;

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });

  vmpi::FaultPlan plan;
  plan.seed = 4242;
  plan.drop_prob = 0.03;  // reports, replies, pings, acks all at risk
  const auto faulty = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 4, {}, plan); });

  EXPECT_GT(faulty.cost.faults.messages_dropped, 0u);
  expect_same_partition(baseline.clusters, faulty.clusters);
}

TEST(FaultCluster, MasterCrashThenCheckpointResumeCompletes) {
  util::Prng rng(31415);
  const auto store = sampled_reads(rng, 2400, 64, 100, 0.01);
  auto params = fault_params();
  params.master_timeout = 1.0;  // workers give up on the dead master fast

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 3); });
  ASSERT_GT(baseline.stats.pairs_aligned, 0u);

  params.checkpoint_every_reports = 2;
  params.checkpoint_path = testing::TempDir() + "pgasm_resume_test.ckpt";
  std::remove(params.checkpoint_path.c_str());

  // Kill the master partway through: the run must fail (not hang), leaving
  // a checkpoint behind.
  vmpi::FaultPlan plan;
  plan.crashes.push_back({.rank = 0, .at_send = 16});
  EXPECT_THROW(run_with_watchdog([&] {
                 return cluster_parallel(store, params, 3, {}, plan);
               }),
               std::runtime_error);

  const auto ckpt = core::load_checkpoint(params.checkpoint_path);
  EXPECT_GE(ckpt.epoch, 1u);
  EXPECT_EQ(ckpt.n_fragments, store.size());
  EXPECT_GT(ckpt.merges + ckpt.pending.size() + ckpt.pairs_aligned, 0u);
  // The checkpoint carries the hashes resume validation checks against.
  EXPECT_EQ(ckpt.input_hash, core::cluster_input_hash(store));
  EXPECT_EQ(ckpt.params_hash, core::cluster_params_hash(params));

  // Resume fault-free: identical partition. Stats counters continue from
  // the checkpoint (whole-logical-run totals), so the resumed run's *new*
  // work — the delta over the checkpoint — must be strictly less than a
  // fresh run: completed merges are not re-aligned, and generation
  // fast-forwards past the checkpointed positions.
  const auto resumed = run_with_watchdog([&] {
    return cluster_parallel(store, params, 3, {}, {}, &ckpt);
  });
  expect_same_partition(baseline.clusters, resumed.clusters);
  EXPECT_EQ(resumed.stats.resumed_from_epoch, ckpt.epoch);
  EXPECT_GE(resumed.stats.pairs_aligned, ckpt.pairs_aligned);
  EXPECT_LT(resumed.stats.pairs_aligned - ckpt.pairs_aligned,
            baseline.stats.pairs_aligned);
  EXPECT_GE(resumed.stats.pairs_generated, ckpt.pairs_generated);
  EXPECT_LT(resumed.stats.pairs_generated - ckpt.pairs_generated,
            baseline.stats.pairs_generated);
  EXPECT_GT(resumed.stats.pairs_skipped_resume, 0u);
  std::remove(params.checkpoint_path.c_str());
}

// --- fault-tolerant GST construction through clustering --------------------

TEST(FaultClusterGst, FaultFreeFtGstMatchesDefaultPath) {
  util::Prng rng(606);
  const auto store = sampled_reads(rng, 1600, 48, 100, 0.01);
  const auto params = fault_params();

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });

  auto ft = params;
  ft.fault_tolerant_gst = true;
  const auto result =
      run_with_watchdog([&] { return cluster_parallel(store, ft, 4); });
  expect_same_partition(baseline.clusters, result.clusters);
  EXPECT_EQ(result.stats.gst_ranks_recovered, 0u);
  EXPECT_EQ(result.stats.gst_buckets_reassigned, 0u);
  EXPECT_EQ(result.stats.gst_resumed, 0u);
}

TEST(FaultClusterGst, RankKilledMidGstRecoversSamePartition) {
  util::Prng rng(607);
  const auto store = sampled_reads(rng, 2000, 56, 100, 0.01);
  auto params = fault_params();
  params.fault_tolerant_gst = true;

  const auto baseline =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });

  // Send #1 under the fault-tolerant GST protocol is the rank's histogram,
  // sends #2..#p its suffix contributions: at_send = 3 dies mid-
  // redistribution, after the coordinator has assigned it buckets. Before
  // this PR any death inside the GST phase aborted the whole run.
  vmpi::FaultPlan plan;
  plan.crashes.push_back({.rank = 2, .at_send = 3});
  const auto faulty = run_with_watchdog(
      [&] { return cluster_parallel(store, params, 4, {}, plan); });

  EXPECT_EQ(faulty.cost.faults.crashes_injected, 1u);
  EXPECT_GE(faulty.stats.gst_buckets_reassigned, 1u);
  // The dead rank never reaches the clustering phase either: the master
  // declares it dead on the first heartbeat round and a survivor rebuilds
  // its (empty, under the final table) generator role.
  EXPECT_GE(faulty.stats.workers_lost, 1u);
  expect_same_partition(baseline.clusters, faulty.clusters);
}

TEST(FaultClusterGst, GstCheckpointWrittenAndResumed) {
  util::Prng rng(608);
  const auto store = sampled_reads(rng, 1600, 48, 100, 0.01);
  auto params = fault_params();
  params.fault_tolerant_gst = true;
  params.gst_checkpoint_path = testing::TempDir() + "pgasm_gst_test.pgck";
  std::remove(params.gst_checkpoint_path.c_str());

  const auto first =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });
  EXPECT_EQ(first.stats.gst_resumed, 0u);

  auto loaded = core::try_load_gst_checkpoint(params.gst_checkpoint_path);
  ASSERT_TRUE(loaded.has_value()) << core::wire_errc_name(loaded.error().code);
  EXPECT_EQ(loaded.value().num_ranks, 4u);
  EXPECT_EQ(loaded.value().prefix_w, params.prefix_w);

  // Second run resumes from the recorded table: every rank rebuilds its
  // portion locally and the GST phase moves zero construction traffic.
  const auto second =
      run_with_watchdog([&] { return cluster_parallel(store, params, 4); });
  EXPECT_EQ(second.stats.gst_resumed, 4u);
  expect_same_partition(first.clusters, second.clusters);
  std::remove(params.gst_checkpoint_path.c_str());
}

TEST(FaultClusterGst, ClusterResumeRequiresGstCheckpoint) {
  util::Prng rng(609);
  const auto store = sampled_reads(rng, 800, 24, 100, 0.01);
  auto params = fault_params();
  params.fault_tolerant_gst = true;
  params.gst_checkpoint_path = testing::TempDir() + "pgasm_gst_missing.pgck";
  std::remove(params.gst_checkpoint_path.c_str());

  // A valid cluster checkpoint whose generator positions are only
  // meaningful under the GST owner table it was written with: without that
  // table the resume must refuse rather than replay positions against a
  // differently-shaped portion.
  core::ClusterCheckpoint ck;
  ck.epoch = 1;
  ck.num_ranks = 3;
  ck.n_fragments = static_cast<std::uint32_t>(store.size());
  ck.labels.resize(store.size());
  for (std::uint32_t i = 0; i < ck.labels.size(); ++i) ck.labels[i] = i;
  ck.input_hash = core::cluster_input_hash(store);
  ck.params_hash = core::cluster_params_hash(params);
  EXPECT_THROW(cluster_parallel(store, params, 3, {}, {}, &ck),
               std::invalid_argument);
}

TEST(FaultCluster, FaultFreeRunReportsNoRecoveryActivity) {
  util::Prng rng(5);
  const auto store = sampled_reads(rng, 1200, 32, 100, 0.01);
  const auto result = run_with_watchdog(
      [&] { return cluster_parallel(store, fault_params(), 3); });
  EXPECT_EQ(result.stats.workers_lost, 0u);
  EXPECT_EQ(result.stats.batches_reassigned, 0u);
  EXPECT_EQ(result.stats.generator_takeovers, 0u);
  EXPECT_EQ(result.stats.reports_retransmitted, 0u);
  EXPECT_EQ(result.stats.checkpoints_written, 0u);
  EXPECT_EQ(result.cost.faults.crashes_injected, 0u);
  EXPECT_EQ(result.cost.faults.messages_dropped, 0u);
}

}  // namespace
}  // namespace pgasm
