// The dynamic half of the determinism gate (DESIGN.md §16): the assembled
// contigs — sequence AND order — must be byte-identical whatever the rank
// count and whatever the transport, and identical run to run. The static
// half (tools/determ/pgasm-determcheck) proves no nondeterminism source
// reaches an output-affecting sink; this suite is the end-to-end witness
// that the proof obligation is the right one.
//
// Uses the proc transport (forks real rank processes), so it is excluded
// from TSan builds like test_transport_proc.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "seq/fasta.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/prng.hpp"

namespace pgasm {
namespace {

constexpr std::uint64_t kSeed = 7;

seq::FragmentStore simulated_reads() {
  const auto genome = sim::simulate_genome(sim::shotgun_like(30'000, kSeed));
  util::Prng rng(kSeed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 500;
  rp.len_spread = 100;
  sim::sample_wgs(rs, genome, 6.0, rp, rng);
  return std::move(rs.store);
}

struct RunOutput {
  std::string fasta;                           // canonical contig rendering
  std::uint64_t spectrum_fingerprint = 0;      // preprocess repeat spectrum
  std::size_t num_contigs = 0;
};

// Run the pipeline at `ranks` over `transport` and render the contigs the
// way quickstart does: non-singletons only, in assembly order, headers
// contig0..contigN. Any divergence in content OR order shows up as a byte
// difference in the FASTA string.
RunOutput run_once(const seq::FragmentStore& reads, int ranks,
                   const std::string& transport) {
  pipeline::PipelineParams params;
  params.ranks = ranks;
  params.cluster.transport = transport;
  params.cluster.psi = 20;
  params.cluster.overlap.min_overlap = 40;
  params.cluster.overlap.min_identity = 0.93;
  const auto result = pipeline::run_pipeline(reads, sim::vector_library(),
                                             params);

  RunOutput out;
  out.spectrum_fingerprint = result.pre.stats.repeat_spectrum_fingerprint;
  seq::FragmentStore contigs;
  std::size_t idx = 0;
  for (const auto& assembly : result.assemblies) {
    for (const auto& contig : assembly.contigs) {
      if (contig.is_singleton()) continue;
      contigs.add(contig.consensus, seq::FragType::kUnknown,
                  "contig" + std::to_string(idx++));
    }
  }
  out.num_contigs = contigs.size();
  std::ostringstream os;
  seq::write_fasta(os, contigs);
  out.fasta = os.str();
  return out;
}

TEST(Determinism, ContigsBitIdenticalAcrossRanksAndTransports) {
  const auto reads = simulated_reads();

  // Serial clustering is the reference everything else must match.
  const RunOutput reference = run_once(reads, 0, "");
  ASSERT_GT(reference.num_contigs, 0u);
  ASSERT_NE(reference.spectrum_fingerprint, 0u);

  const std::vector<std::pair<int, std::string>> configs = {
      {2, "thread"}, {4, "thread"}, {2, "proc"}, {4, "proc"}};
  for (const auto& [ranks, transport] : configs) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks) + " transport=" +
                 transport);
    const RunOutput got = run_once(reads, ranks, transport);
    EXPECT_EQ(got.num_contigs, reference.num_contigs);
    // Byte equality covers both contig sequences and contig order.
    EXPECT_EQ(got.fasta, reference.fasta);
    EXPECT_EQ(got.spectrum_fingerprint, reference.spectrum_fingerprint);
  }
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const auto reads = simulated_reads();
  const RunOutput first = run_once(reads, 2, "thread");
  const RunOutput second = run_once(reads, 2, "thread");
  EXPECT_EQ(first.fasta, second.fasta);
  EXPECT_EQ(first.spectrum_fingerprint, second.spectrum_fingerprint);
}

}  // namespace
}  // namespace pgasm
