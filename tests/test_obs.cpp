// Tests for the obs layer: metrics registry (counters/gauges/histograms),
// per-rank event tracer (spans, instants, ring wraparound), and the
// dual-format export (JSONL + Chrome trace + summary table).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgasm {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(Histogram, BucketPlacement) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
  // Every value lands in the bucket whose range covers it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 100ull, 65536ull, 1ull << 40}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_upper(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucket_upper(b - 1)) << v;
    }
  }
}

TEST(Histogram, ObserveAccumulates) {
  obs::Histogram h;
  h.observe(0);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(5)), 2u);
}

TEST(Registry, FindOrCreateIdentity) {
  obs::Registry reg;
  auto& a = reg.counter("x", 0, "cluster");
  auto& b = reg.counter("x", 0, "cluster");
  EXPECT_EQ(&a, &b);
  // Any differing label is a different instrument.
  EXPECT_NE(&a, &reg.counter("x", 1, "cluster"));
  EXPECT_NE(&a, &reg.counter("x", 0, "assembly"));
  EXPECT_NE(&a, &reg.counter("y", 0, "cluster"));
  // Same key, different kind: independent namespaces.
  (void)reg.gauge("x", 0, "cluster");
  (void)reg.histogram("x", 0, "cluster");
  EXPECT_EQ(reg.size(), 6u);
}

TEST(Registry, GaugeSetAndAdd) {
  obs::Registry reg;
  auto& g = reg.gauge("g");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Registry, ConcurrentUpdates) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  auto& c = reg.counter("shared.counter");
  auto& h = reg.histogram("shared.histogram");
  auto& g = reg.gauge("shared.gauge");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(t * kIters + i));
        g.add(1.0);
      }
      // Lookups race against updates from other threads.
      (void)reg.counter("shared.counter");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
}

TEST(Registry, JsonlGolden) {
  obs::Registry reg;
  reg.counter("a.count", 2, "cluster").inc(3);
  reg.gauge("b.gauge").set(1.5);
  auto& h = reg.histogram("c.hist");
  h.observe(0);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(reg.to_jsonl(),
            "{\"type\":\"counter\",\"name\":\"a.count\",\"rank\":2,"
            "\"phase\":\"cluster\",\"value\":3}\n"
            "{\"type\":\"gauge\",\"name\":\"b.gauge\",\"rank\":-1,"
            "\"phase\":\"\",\"value\":1.5}\n"
            "{\"type\":\"histogram\",\"name\":\"c.hist\",\"rank\":-1,"
            "\"phase\":\"\",\"count\":3,\"sum\":10,\"buckets\":["
            "{\"le\":0,\"count\":1},{\"le\":7,\"count\":2}]}\n");
}

TEST(Registry, SnapshotDeterministicOrder) {
  obs::Registry reg;
  reg.counter("m", 3, "z");
  reg.counter("m", 1, "a");
  reg.counter("m", 2, "a");
  reg.counter("a", 0, "z");
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // (name, phase, rank) lexicographic.
  EXPECT_EQ(samples[0].key.name, "a");
  EXPECT_EQ(samples[1].key.rank, 1);
  EXPECT_EQ(samples[2].key.rank, 2);
  EXPECT_EQ(samples[3].key.phase, "z");
}

TEST(Registry, SummaryTableRenders) {
  obs::Registry reg;
  reg.counter("cluster.merges", 0, "cluster").inc(1234);
  const auto table = reg.summary_table();
  EXPECT_NE(table.find("cluster.merges"), std::string::npos);
  EXPECT_NE(table.find("cluster"), std::string::npos);
  EXPECT_NE(table.find("1,234"), std::string::npos);
}

TEST(Registry, PhaseLabelRoundTrip) {
  obs::set_phase("cluster");
  EXPECT_STREQ(obs::current_phase(), "cluster");
  obs::set_phase(nullptr);
  EXPECT_STREQ(obs::current_phase(), "");
}

// ----------------------------------------------------------------- tracer --

/// Global tracer state is shared across tests; reset it around each use.
class TracerTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
    obs::tracer().set_capacity(obs::Tracer::kDefaultCapacity);
  }
  void TearDown() override { SetUp(); }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  ASSERT_FALSE(obs::tracer().enabled());
  {
    obs::Span sp = obs::span(0, "noop", "test");
    sp.arg("x", 1);
  }
  obs::instant(0, "noop", "test");
  EXPECT_EQ(obs::tracer().total_events(), 0u);
}

TEST_F(TracerTest, RingSeqMonotonicAndDrainOrder) {
  obs::RankRing ring(16);
  for (int i = 0; i < 5; ++i) {
    obs::TraceEvent ev;
    ev.name = "e";
    ev.ts_us = static_cast<std::uint64_t>(i);
    EXPECT_EQ(ring.record(ev), static_cast<std::uint64_t>(i));
  }
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].ts_us, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(TracerTest, RingWraparoundKeepsNewest) {
  obs::RankRing ring(4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.ts_us = static_cast<std::uint64_t>(i);
    ring.record(ev);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first drain of the 4 newest events, seq still monotonic.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(events[i].ts_us, 6 + i);
  }
}

TEST_F(TracerTest, SpanNesting) {
  obs::tracer().set_enabled(true);
  {
    obs::Span outer = obs::span(0, "outer", "test");
    outer.arg("depth", 0);
    {
      obs::Span inner = obs::span(0, "inner", "test");
      inner.arg("depth", 1);
    }
  }
  const auto all = obs::tracer().drain_all();
  ASSERT_EQ(all.size(), 1u);
  const auto& events = all.at(0);
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and records) first; both are spans on rank 0.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].seq + 1, events[1].seq);
  // The outer span covers the inner one.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
  EXPECT_EQ(events[0].arg0, 1u);
  EXPECT_EQ(events[1].arg0, 0u);
}

TEST_F(TracerTest, MoveTransfersOwnership) {
  obs::tracer().set_enabled(true);
  {
    obs::Span a = obs::span(0, "moved", "test");
    obs::Span b = std::move(a);
    // Only b records on destruction.
  }
  EXPECT_EQ(obs::tracer().total_events(), 1u);
}

TEST_F(TracerTest, InstantCarriesArgs) {
  obs::tracer().set_enabled(true);
  obs::instant(3, "evt", "test", "bytes", 4096, "peer", 1);
  const auto all = obs::tracer().drain_all();
  const auto& events = all.at(3);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::TraceEvent::Kind::kInstant);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[0].arg0, 4096u);
  EXPECT_STREQ(events[0].arg1_name, "peer");
  EXPECT_EQ(events[0].arg1, 1u);
}

TEST_F(TracerTest, ConcurrentRecording) {
  obs::tracer().set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kIters = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        // Half the events on a per-thread rank, half contending on rank 0.
        obs::instant(t % 2 == 0 ? t : 0, "evt", "test", "i",
                     static_cast<std::uint64_t>(i));
        obs::Span sp = obs::span(t, "span", "test");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(obs::tracer().total_events() + obs::tracer().total_dropped(),
            static_cast<std::uint64_t>(kThreads) * kIters * 2);
  // Per-ring sequence numbers stay strictly monotonic in drain order.
  for (const auto& [rank, events] : obs::tracer().drain_all()) {
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LT(events[i - 1].seq, events[i].seq) << "rank " << rank;
    }
  }
}

TEST_F(TracerTest, ChromeJsonStructure) {
  obs::tracer().set_enabled(true);
  {
    obs::Span sp = obs::span(0, "work", "test");
    sp.arg("items", 7);
  }
  obs::instant(obs::kDriverTid, "marker", "test");
  const std::string json = obs::tracer().to_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Track metadata for both tids, with the driver named.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  // The span as a complete event with duration + cpu arg; the instant as i.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"items\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"name\":\"marker\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST_F(TracerTest, CapacityAppliesToNewRings) {
  obs::tracer().set_capacity(4);
  obs::tracer().set_enabled(true);
  for (int i = 0; i < 10; ++i) obs::instant(0, "evt", "test");
  EXPECT_EQ(obs::tracer().total_events(), 4u);
  EXPECT_EQ(obs::tracer().total_dropped(), 6u);
}

// ----------------------------------------------------------------- export --

TEST_F(TracerTest, WriteRunOutputs) {
  const std::string dir = testing::TempDir() + "pgasm_obs_export_test";
  std::filesystem::remove_all(dir);

  obs::begin_run();
  EXPECT_TRUE(obs::tracer().enabled());
  obs::set_phase("cluster");
  obs::registry().counter("test.counter", 0, obs::current_phase()).inc(42);
  {
    obs::Span sp = obs::span(0, "work", "test");
  }
  obs::set_phase("");
  obs::write_run_outputs(dir);
  obs::registry().clear();

  for (const char* name : {"summary.txt", "metrics.jsonl", "trace.json"}) {
    const auto path = std::filesystem::path(dir) / name;
    ASSERT_TRUE(std::filesystem::exists(path)) << name;
    EXPECT_GT(std::filesystem::file_size(path), 0u) << name;
  }
  // Each metrics line is one JSON object.
  std::ifstream jsonl(std::filesystem::path(dir) / "metrics.jsonl");
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GE(lines, 1u);
  std::ifstream trace(std::filesystem::path(dir) / "trace.json");
  std::stringstream buf;
  buf << trace.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"name\":\"work\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pgasm
