// Regression tests for the typed wire-decode error discipline (DESIGN.md
// section 10): truncated/mistagged/corrupt payloads must surface as
// WireError values (or WireFormatError from the legacy entry points), never
// as out-of-bounds reads, and the protocol layer must recover from
// duplicates and drops via the seq/cached-reply mechanism.
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/cluster_protocol.hpp"
#include "core/cluster_scheduler.hpp"
#include "core/wire.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::core {
namespace {

WorkerReport sample_report() {
  WorkerReport r;
  r.seq = 3;
  r.results.push_back(ResultMsg{1, 2, -5, 1, 0, 1, 0});
  r.results.push_back(ResultMsg{3, 4, 9, 0, 1, 0, 0});
  r.new_pairs.push_back(PairMsg{10, 11, 12, 13, 14});
  r.progress.push_back(RoleProgress{1, 0, 77});
  r.exhausted = 1;
  return r;
}

MasterReply sample_reply() {
  MasterReply r;
  r.seq = 3;
  r.batch.push_back(PairMsg{1, 2, 3, 4, 5});
  r.takeovers.push_back(TakeoverOrder{2, 0, 1000});
  r.request_r = 64;
  r.park = 1;
  return r;
}

ClusterCheckpoint sample_checkpoint() {
  ClusterCheckpoint c;
  c.epoch = 4;
  c.num_ranks = 3;
  c.n_fragments = 5;
  c.labels = {0, 1, 1, 0, 4};
  c.pending.push_back(PairMsg{1, 2, 3, 4, 5});
  c.progress.push_back(RoleProgress{1, 1, 50});
  c.pairs_generated = 9;
  return c;
}

// Every strict prefix of a valid payload must decode to a typed error (all
// kTruncated except the empty/1-byte prefixes of the kind tag itself).
TEST(WireErrors, TruncatedReportPrefixesYieldTypedErrors) {
  const auto bytes = encode_report(sample_report());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = try_decode_report(
        std::span<const std::uint8_t>(bytes.data(), cut));
    ASSERT_FALSE(r.has_value()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(r.error().code, WireErrc::kTruncated) << "cut=" << cut;
  }
  // The full payload still round-trips.
  auto ok = try_decode_report(std::span<const std::uint8_t>(bytes));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(encode_report(ok.value()), bytes);
}

TEST(WireErrors, TruncatedReplyPrefixesYieldTypedErrors) {
  const auto bytes = encode_reply(sample_reply());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r =
        try_decode_reply(std::span<const std::uint8_t>(bytes.data(), cut));
    ASSERT_FALSE(r.has_value()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(r.error().code, WireErrc::kTruncated) << "cut=" << cut;
  }
  auto ok = try_decode_reply(std::span<const std::uint8_t>(bytes));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(encode_reply(ok.value()), bytes);
}

TEST(WireErrors, GarbageKindTagIsBadTag) {
  auto report_bytes = encode_report(sample_report());
  report_bytes[0] = 0x00;
  auto r = try_decode_report(std::span<const std::uint8_t>(report_bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadTag);

  // A reply payload routed to the report decoder (the misrouting the kind
  // byte exists to catch) also fails with kBadTag, not a misparse.
  const auto reply_bytes = encode_reply(sample_reply());
  auto misrouted =
      try_decode_report(std::span<const std::uint8_t>(reply_bytes));
  ASSERT_FALSE(misrouted.has_value());
  EXPECT_EQ(misrouted.error().code, WireErrc::kBadTag);

  auto reply_as_reply = try_decode_reply(
      std::span<const std::uint8_t>(report_bytes.data() + 0,
                                    report_bytes.size()));
  ASSERT_FALSE(reply_as_reply.has_value());
  EXPECT_EQ(reply_as_reply.error().code, WireErrc::kBadTag);
}

TEST(WireErrors, TrailingBytesAreOversized) {
  auto bytes = encode_report(sample_report());
  bytes.push_back(0xAB);
  auto r = try_decode_report(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kOversized);
  EXPECT_EQ(r.error().offset, bytes.size() - 1);
}

TEST(WireErrors, HugeElementCountFailsBeforeAllocating) {
  // [kind][seq u64][results count u64 = 2^61]: the decoder must reject the
  // count against the remaining buffer size instead of trying to reserve.
  std::vector<std::uint8_t> bytes{kWireKindReport};
  for (int i = 0; i < 8; ++i) bytes.push_back(0);  // seq
  bytes.insert(bytes.end(), {0, 0, 0, 0, 0, 0, 0, 0x20});  // count
  auto r = try_decode_report(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kTruncated);
}

TEST(WireErrors, LegacyDecodeThrowsWireFormatErrorWithCode) {
  auto bytes = encode_reply(sample_reply());
  bytes.resize(bytes.size() / 2);
  try {
    (void)decode_reply(bytes);
    FAIL() << "decode_reply accepted a truncated payload";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.error().code, WireErrc::kTruncated);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(WireErrors, CheckpointBadMagicAndStaleVersion) {
  auto bytes = encode_checkpoint(sample_checkpoint());
  {
    auto tampered = bytes;
    tampered[0] = 'X';  // magic is the first little-endian u32
    auto r = try_decode_checkpoint(std::span<const std::uint8_t>(tampered));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, WireErrc::kBadMagic);
  }
  {
    auto tampered = bytes;
    tampered[4] = 0x7F;  // version u32 follows the magic
    auto r = try_decode_checkpoint(std::span<const std::uint8_t>(tampered));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, WireErrc::kBadVersion);
  }
}

TEST(WireErrors, CheckpointLabelCountMismatchIsTyped) {
  auto ck = sample_checkpoint();
  ck.labels.pop_back();  // labels.size() != n_fragments
  const auto bytes = encode_checkpoint(ck);
  auto r = try_decode_checkpoint(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kCountMismatch);
}

TEST(WireErrors, CheckpointLabelOutOfRangeIsTyped) {
  auto ck = sample_checkpoint();
  ck.labels[2] = ck.n_fragments;  // one past the legal label domain
  const auto bytes = encode_checkpoint(ck);
  auto r = try_decode_checkpoint(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadValue);
}

// Regression: MasterScheduler::restore must reject hand-built checkpoints
// with out-of-range labels instead of writing past its scratch array (the
// decoder validation above only guards checkpoints that came over the wire).
TEST(WireErrors, RestoreRejectsOutOfRangeLabels) {
  seq::FragmentStore plain;
  plain.add_ascii("ACGTACGTACGTACGT");
  plain.add_ascii("TTTTACGTACGTACGT");
  const auto doubled = seq::make_doubled_store(plain);
  MasterScheduler sched(doubled, ClusterParams{}, /*p=*/2);

  ClusterCheckpoint ck;
  ck.epoch = 1;
  ck.num_ranks = 2;
  ck.n_fragments = 2;
  ck.labels = {0, 1000};  // way out of range
  EXPECT_THROW(sched.restore(ck), std::invalid_argument);

  ClusterCheckpoint short_labels;
  short_labels.epoch = 1;
  short_labels.num_ranks = 2;
  short_labels.n_fragments = 2;
  short_labels.labels = {0};  // count mismatch
  EXPECT_THROW(sched.restore(short_labels), std::invalid_argument);
}

TEST(WireErrors, TryLoadCheckpointMissingFileIsIo) {
  auto r = try_load_checkpoint("/nonexistent/pgasm-ckpt-does-not-exist");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kIo);
}

TEST(WireErrors, TryLoadCheckpointRoundTripsThroughDisk) {
  const auto ck = sample_checkpoint();
  const std::string path =
      testing::TempDir() + "/pgasm_wire_errors_ckpt.bin";
  save_checkpoint(path, ck);
  auto r = try_load_checkpoint(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value().epoch, ck.epoch);
  EXPECT_EQ(r.value().labels, ck.labels);
  std::remove(path.c_str());
}

// --- CRC-protected file frame ----------------------------------------------

// A checkpoint file with flipped payload bits must be rejected with kBadCrc
// (typed, loud) — before this frame existed, a flipped label bit inside an
// otherwise well-formed PGCK payload decoded silently into a wrong
// partition on resume.
TEST(WireErrors, BitFlippedCheckpointFileIsBadCrc) {
  const auto ck = sample_checkpoint();
  const std::string path = testing::TempDir() + "/pgasm_crc_flip.pgck";
  save_checkpoint(path, ck);

  // Flip one bit in every payload byte position in turn; each corruption
  // must surface as kBadCrc (the version byte yields kBadVersion instead).
  const auto original = [&] {
    auto frame = try_load_frame(path);
    EXPECT_TRUE(frame.has_value());
    return std::move(frame).take_or_throw();
  }();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<std::uint8_t> file_bytes(original.size() + 5);
  ASSERT_EQ(std::fread(file_bytes.data(), 1, file_bytes.size(), f),
            file_bytes.size());
  std::fclose(f);

  for (const std::size_t pos :
       {std::size_t{5}, std::size_t{9}, file_bytes.size() - 1}) {
    auto tampered = file_bytes;
    tampered[pos] ^= 0x01;
    // pgasm-lint: allow(raw-ckpt-write): deliberately corrupting a frame on
    // disk to prove the loader rejects it.
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(tampered.data(), 1, tampered.size(), out),
              tampered.size());
    std::fclose(out);
    auto r = try_load_checkpoint(path);
    ASSERT_FALSE(r.has_value()) << "bit flip at " << pos << " accepted";
    EXPECT_EQ(r.error().code, WireErrc::kBadCrc) << "pos=" << pos;
  }
  std::remove(path.c_str());
}

TEST(WireErrors, TruncatedCheckpointFileIsTyped) {
  const auto ck = sample_checkpoint();
  const std::string path = testing::TempDir() + "/pgasm_crc_trunc.pgck";
  save_checkpoint(path, ck);
  auto frame = try_load_frame(path);
  ASSERT_TRUE(frame.has_value());
  const auto payload = std::move(frame).take_or_throw();

  std::vector<std::uint8_t> file_bytes;
  file_bytes.push_back(kFrameVersion);
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(payload));
  for (int i = 0; i < 4; ++i)
    file_bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  file_bytes.insert(file_bytes.end(), payload.begin(), payload.end());

  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                file_bytes.size() / 2,
                                file_bytes.size() - 1}) {
    // pgasm-lint: allow(raw-ckpt-write): writing a deliberately truncated
    // frame to prove the loader rejects it.
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(file_bytes.data(), 1, cut, out), cut);
    std::fclose(out);
    auto r = try_load_checkpoint(path);
    ASSERT_FALSE(r.has_value()) << "truncation at " << cut << " accepted";
    EXPECT_TRUE(r.error().code == WireErrc::kTruncated ||
                r.error().code == WireErrc::kBadCrc)
        << "cut=" << cut << ": " << wire_errc_name(r.error().code);
  }
  std::remove(path.c_str());
}

TEST(WireErrors, UnknownFrameVersionIsTyped) {
  const std::string path = testing::TempDir() + "/pgasm_crc_ver.pgck";
  save_checkpoint(path, sample_checkpoint());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const std::uint8_t bogus = 0x7E;
  ASSERT_EQ(std::fwrite(&bogus, 1, 1, f), 1u);
  std::fclose(f);
  auto r = try_load_checkpoint(path);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadVersion);
  std::remove(path.c_str());
}

TEST(WireErrors, Crc32MatchesKnownVector) {
  // The standard reflected CRC-32 of "123456789" (check value).
  const char* s = "123456789";
  const auto crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

// --- Run manifest & GST checkpoint codecs -----------------------------------

RunManifest sample_manifest() {
  RunManifest m;
  m.generation = 7;
  m.input_hash = 0x1111222233334444ULL;
  m.params_hash = 0x5555666677778888ULL;
  m.phases.push_back(PhaseEntry{0, 1, 1, 0, 0, 0});
  m.phases.push_back(PhaseEntry{1, 3, 1, 0, 0, 0});
  m.phases.push_back(PhaseEntry{3, 3, 0, 1, 0, 0});
  return m;
}

TEST(WireErrors, ManifestRoundTripsThroughDisk) {
  const auto m = sample_manifest();
  const std::string path = testing::TempDir() + "/pgasm_manifest.pgmf";
  save_manifest(path, m);
  auto r = try_load_manifest(path);
  ASSERT_TRUE(r.has_value()) << r.error().message();
  EXPECT_EQ(r.value().generation, 7u);
  EXPECT_EQ(r.value().input_hash, m.input_hash);
  ASSERT_EQ(r.value().phases.size(), 3u);
  EXPECT_EQ(r.value().phases[1].attempts, 3u);
  EXPECT_EQ(r.value().phases[2].degraded, 1u);
  std::remove(path.c_str());
}

TEST(WireErrors, ManifestDuplicatePhaseIsBadValue) {
  auto m = sample_manifest();
  m.phases.push_back(m.phases[0]);
  const auto bytes = encode_manifest(m);
  auto r = try_decode_manifest(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadValue);
}

TEST(WireErrors, ManifestHugePhaseIdIsBadValue) {
  auto m = sample_manifest();
  m.phases[0].phase = 64;
  const auto bytes = encode_manifest(m);
  auto r = try_decode_manifest(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadValue);
}

TEST(WireErrors, GstCheckpointRoundTripsThroughDisk) {
  GstCheckpoint g;
  g.input_hash = 0xAABB;
  g.params_hash = 0xCCDD;
  g.num_ranks = 4;
  g.prefix_w = 3;
  g.bucket_owner.assign(1u << (2 * g.prefix_w), 1);
  g.bucket_owner[0] = -1;
  g.bucket_owner[5] = 3;
  g.role_done = {1, 1, 1, 1};
  const std::string path = testing::TempDir() + "/pgasm_gst.pgck";
  save_gst_checkpoint(path, g);
  auto r = try_load_gst_checkpoint(path);
  ASSERT_TRUE(r.has_value()) << r.error().message();
  EXPECT_EQ(r.value().bucket_owner, g.bucket_owner);
  EXPECT_EQ(r.value().role_done, g.role_done);
  std::remove(path.c_str());
}

TEST(WireErrors, GstCheckpointValidatesShape) {
  GstCheckpoint g;
  g.num_ranks = 2;
  g.prefix_w = 2;
  g.bucket_owner.assign(16, 0);
  g.role_done = {1, 1};
  {
    auto bad = g;
    bad.bucket_owner.pop_back();  // size != 4^w
    const auto bytes = encode_gst_checkpoint(bad);
    auto r = try_decode_gst_checkpoint(std::span<const std::uint8_t>(bytes));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, WireErrc::kCountMismatch);
  }
  {
    auto bad = g;
    bad.bucket_owner[3] = 2;  // owner >= num_ranks
    const auto bytes = encode_gst_checkpoint(bad);
    auto r = try_decode_gst_checkpoint(std::span<const std::uint8_t>(bytes));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, WireErrc::kBadValue);
  }
  {
    auto bad = g;
    bad.prefix_w = 13;  // outside [1, 12]
    const auto bytes = encode_gst_checkpoint(bad);
    auto r = try_decode_gst_checkpoint(std::span<const std::uint8_t>(bytes));
    ASSERT_FALSE(r.has_value());
  }
}

TEST(WireErrors, ErrorMessageNamesCodeAndOffset) {
  const auto bytes = encode_report(sample_report());
  auto r = try_decode_report(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  ASSERT_FALSE(r.has_value());
  const std::string msg = r.error().message();
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
  EXPECT_STREQ(wire_errc_name(WireErrc::kBadMagic), "bad_magic");
}

// A retransmitted report (same seq) must not be folded twice: the
// ReplyChannel discards the duplicate and answers with the cached reply —
// byte-identical to the original — so the worker recovers from a lost
// reply without the master double-counting results.
TEST(WireErrors, DuplicateSeqReportGetsCachedReply) {
  vmpi::Runtime rt(2);
  int folds = 0;
  std::vector<MasterReply> worker_got;
  rt.run([&](vmpi::Comm& c) {
    if (c.rank() == 0) {
      ReplyChannel channel(c.size());
      for (int round = 0; round < 2; ++round) {
        auto decoded = recv_report(c, 1);
        ASSERT_TRUE(decoded.has_value());
        const WorkerReport& rep = decoded.value();
        if (channel.is_duplicate(1, rep.seq)) {
          channel.resend_cached(c, 1);
          continue;
        }
        channel.note_seq(1, rep.seq);
        ++folds;  // stand-in for MasterScheduler::fold_report
        MasterReply reply = sample_reply();
        channel.send(c, 1, reply);
      }
    } else {
      WorkerReport rep = sample_report();
      rep.seq = 41;
      for (int round = 0; round < 2; ++round) {
        c.send_payload(0, kTagReport, encode_report_payload(rep));
        const auto raw = c.recv(0, kTagReply);
        auto reply = try_decode_reply(std::span<const std::byte>(raw));
        ASSERT_TRUE(reply.has_value());
        worker_got.push_back(std::move(reply).take_or_throw());
      }
    }
  });
  EXPECT_EQ(folds, 1) << "duplicate report was folded twice";
  ASSERT_EQ(worker_got.size(), 2u);
  EXPECT_EQ(worker_got[0].seq, 41u);
  EXPECT_EQ(worker_got[1].seq, 41u);
  EXPECT_EQ(worker_got[0].batch.size(), worker_got[1].batch.size());
  EXPECT_EQ(worker_got[0].request_r, worker_got[1].request_r);
}

// A corrupt report payload is dropped with a typed error (and counted), not
// decoded into garbage: recv_report surfaces the WireError to the caller.
TEST(WireErrors, RecvReportSurfacesCorruptPayloadAsTypedError) {
  vmpi::Runtime rt(2);
  rt.run([&](vmpi::Comm& c) {
    if (c.rank() == 0) {
      auto decoded = recv_report(c, 1);
      ASSERT_FALSE(decoded.has_value());
      EXPECT_EQ(decoded.error().code, WireErrc::kTruncated);
      // The retransmitted (healthy) report then decodes fine.
      auto retry = recv_report(c, 1);
      ASSERT_TRUE(retry.has_value());
      EXPECT_EQ(retry.value().seq, 41u);
      c.send_value<int>(1, 99, 1);
    } else {
      auto bytes = encode_report_payload([] {
        WorkerReport r;
        r.seq = 41;
        return r;
      }());
      auto corrupt = bytes;
      corrupt.resize(corrupt.size() - 2);
      c.send_payload(0, kTagReport, std::move(corrupt));
      c.send_payload(0, kTagReport, std::move(bytes));
      (void)c.recv_value<int>(0, 99);
    }
  });
}

}  // namespace
}  // namespace pgasm::core
