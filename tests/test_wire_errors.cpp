// Regression tests for the typed wire-decode error discipline (DESIGN.md
// section 10): truncated/mistagged/corrupt payloads must surface as
// WireError values (or WireFormatError from the legacy entry points), never
// as out-of-bounds reads, and the protocol layer must recover from
// duplicates and drops via the seq/cached-reply mechanism.
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/cluster_protocol.hpp"
#include "core/cluster_scheduler.hpp"
#include "core/wire.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::core {
namespace {

WorkerReport sample_report() {
  WorkerReport r;
  r.seq = 3;
  r.results.push_back(ResultMsg{1, 2, -5, 1, 0, 1, 0});
  r.results.push_back(ResultMsg{3, 4, 9, 0, 1, 0, 0});
  r.new_pairs.push_back(PairMsg{10, 11, 12, 13, 14});
  r.progress.push_back(RoleProgress{1, 0, 77});
  r.exhausted = 1;
  return r;
}

MasterReply sample_reply() {
  MasterReply r;
  r.seq = 3;
  r.batch.push_back(PairMsg{1, 2, 3, 4, 5});
  r.takeovers.push_back(TakeoverOrder{2, 0, 1000});
  r.request_r = 64;
  r.park = 1;
  return r;
}

ClusterCheckpoint sample_checkpoint() {
  ClusterCheckpoint c;
  c.epoch = 4;
  c.num_ranks = 3;
  c.n_fragments = 5;
  c.labels = {0, 1, 1, 0, 4};
  c.pending.push_back(PairMsg{1, 2, 3, 4, 5});
  c.progress.push_back(RoleProgress{1, 1, 50});
  c.pairs_generated = 9;
  return c;
}

// Every strict prefix of a valid payload must decode to a typed error (all
// kTruncated except the empty/1-byte prefixes of the kind tag itself).
TEST(WireErrors, TruncatedReportPrefixesYieldTypedErrors) {
  const auto bytes = encode_report(sample_report());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = try_decode_report(
        std::span<const std::uint8_t>(bytes.data(), cut));
    ASSERT_FALSE(r.has_value()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(r.error().code, WireErrc::kTruncated) << "cut=" << cut;
  }
  // The full payload still round-trips.
  auto ok = try_decode_report(std::span<const std::uint8_t>(bytes));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(encode_report(ok.value()), bytes);
}

TEST(WireErrors, TruncatedReplyPrefixesYieldTypedErrors) {
  const auto bytes = encode_reply(sample_reply());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r =
        try_decode_reply(std::span<const std::uint8_t>(bytes.data(), cut));
    ASSERT_FALSE(r.has_value()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(r.error().code, WireErrc::kTruncated) << "cut=" << cut;
  }
  auto ok = try_decode_reply(std::span<const std::uint8_t>(bytes));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(encode_reply(ok.value()), bytes);
}

TEST(WireErrors, GarbageKindTagIsBadTag) {
  auto report_bytes = encode_report(sample_report());
  report_bytes[0] = 0x00;
  auto r = try_decode_report(std::span<const std::uint8_t>(report_bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadTag);

  // A reply payload routed to the report decoder (the misrouting the kind
  // byte exists to catch) also fails with kBadTag, not a misparse.
  const auto reply_bytes = encode_reply(sample_reply());
  auto misrouted =
      try_decode_report(std::span<const std::uint8_t>(reply_bytes));
  ASSERT_FALSE(misrouted.has_value());
  EXPECT_EQ(misrouted.error().code, WireErrc::kBadTag);

  auto reply_as_reply = try_decode_reply(
      std::span<const std::uint8_t>(report_bytes.data() + 0,
                                    report_bytes.size()));
  ASSERT_FALSE(reply_as_reply.has_value());
  EXPECT_EQ(reply_as_reply.error().code, WireErrc::kBadTag);
}

TEST(WireErrors, TrailingBytesAreOversized) {
  auto bytes = encode_report(sample_report());
  bytes.push_back(0xAB);
  auto r = try_decode_report(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kOversized);
  EXPECT_EQ(r.error().offset, bytes.size() - 1);
}

TEST(WireErrors, HugeElementCountFailsBeforeAllocating) {
  // [kind][seq u64][results count u64 = 2^61]: the decoder must reject the
  // count against the remaining buffer size instead of trying to reserve.
  std::vector<std::uint8_t> bytes{kWireKindReport};
  for (int i = 0; i < 8; ++i) bytes.push_back(0);  // seq
  bytes.insert(bytes.end(), {0, 0, 0, 0, 0, 0, 0, 0x20});  // count
  auto r = try_decode_report(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kTruncated);
}

TEST(WireErrors, LegacyDecodeThrowsWireFormatErrorWithCode) {
  auto bytes = encode_reply(sample_reply());
  bytes.resize(bytes.size() / 2);
  try {
    (void)decode_reply(bytes);
    FAIL() << "decode_reply accepted a truncated payload";
  } catch (const WireFormatError& e) {
    EXPECT_EQ(e.error().code, WireErrc::kTruncated);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(WireErrors, CheckpointBadMagicAndStaleVersion) {
  auto bytes = encode_checkpoint(sample_checkpoint());
  {
    auto tampered = bytes;
    tampered[0] = 'X';  // magic is the first little-endian u32
    auto r = try_decode_checkpoint(std::span<const std::uint8_t>(tampered));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, WireErrc::kBadMagic);
  }
  {
    auto tampered = bytes;
    tampered[4] = 0x7F;  // version u32 follows the magic
    auto r = try_decode_checkpoint(std::span<const std::uint8_t>(tampered));
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().code, WireErrc::kBadVersion);
  }
}

TEST(WireErrors, CheckpointLabelCountMismatchIsTyped) {
  auto ck = sample_checkpoint();
  ck.labels.pop_back();  // labels.size() != n_fragments
  const auto bytes = encode_checkpoint(ck);
  auto r = try_decode_checkpoint(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kCountMismatch);
}

TEST(WireErrors, CheckpointLabelOutOfRangeIsTyped) {
  auto ck = sample_checkpoint();
  ck.labels[2] = ck.n_fragments;  // one past the legal label domain
  const auto bytes = encode_checkpoint(ck);
  auto r = try_decode_checkpoint(std::span<const std::uint8_t>(bytes));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kBadValue);
}

// Regression: MasterScheduler::restore must reject hand-built checkpoints
// with out-of-range labels instead of writing past its scratch array (the
// decoder validation above only guards checkpoints that came over the wire).
TEST(WireErrors, RestoreRejectsOutOfRangeLabels) {
  seq::FragmentStore plain;
  plain.add_ascii("ACGTACGTACGTACGT");
  plain.add_ascii("TTTTACGTACGTACGT");
  const auto doubled = seq::make_doubled_store(plain);
  MasterScheduler sched(doubled, ClusterParams{}, /*p=*/2);

  ClusterCheckpoint ck;
  ck.epoch = 1;
  ck.num_ranks = 2;
  ck.n_fragments = 2;
  ck.labels = {0, 1000};  // way out of range
  EXPECT_THROW(sched.restore(ck), std::invalid_argument);

  ClusterCheckpoint short_labels;
  short_labels.epoch = 1;
  short_labels.num_ranks = 2;
  short_labels.n_fragments = 2;
  short_labels.labels = {0};  // count mismatch
  EXPECT_THROW(sched.restore(short_labels), std::invalid_argument);
}

TEST(WireErrors, TryLoadCheckpointMissingFileIsIo) {
  auto r = try_load_checkpoint("/nonexistent/pgasm-ckpt-does-not-exist");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, WireErrc::kIo);
}

TEST(WireErrors, TryLoadCheckpointRoundTripsThroughDisk) {
  const auto ck = sample_checkpoint();
  const std::string path =
      testing::TempDir() + "/pgasm_wire_errors_ckpt.bin";
  save_checkpoint(path, ck);
  auto r = try_load_checkpoint(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value().epoch, ck.epoch);
  EXPECT_EQ(r.value().labels, ck.labels);
  std::remove(path.c_str());
}

TEST(WireErrors, ErrorMessageNamesCodeAndOffset) {
  const auto bytes = encode_report(sample_report());
  auto r = try_decode_report(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  ASSERT_FALSE(r.has_value());
  const std::string msg = r.error().message();
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
  EXPECT_STREQ(wire_errc_name(WireErrc::kBadMagic), "bad_magic");
}

// A retransmitted report (same seq) must not be folded twice: the
// ReplyChannel discards the duplicate and answers with the cached reply —
// byte-identical to the original — so the worker recovers from a lost
// reply without the master double-counting results.
TEST(WireErrors, DuplicateSeqReportGetsCachedReply) {
  vmpi::Runtime rt(2);
  int folds = 0;
  std::vector<MasterReply> worker_got;
  rt.run([&](vmpi::Comm& c) {
    if (c.rank() == 0) {
      ReplyChannel channel(c.size());
      for (int round = 0; round < 2; ++round) {
        auto decoded = recv_report(c, 1);
        ASSERT_TRUE(decoded.has_value());
        const WorkerReport& rep = decoded.value();
        if (channel.is_duplicate(1, rep.seq)) {
          channel.resend_cached(c, 1);
          continue;
        }
        channel.note_seq(1, rep.seq);
        ++folds;  // stand-in for MasterScheduler::fold_report
        MasterReply reply = sample_reply();
        channel.send(c, 1, reply);
      }
    } else {
      WorkerReport rep = sample_report();
      rep.seq = 41;
      for (int round = 0; round < 2; ++round) {
        c.send_payload(0, kTagReport, encode_report_payload(rep));
        const auto raw = c.recv(0, kTagReply);
        auto reply = try_decode_reply(std::span<const std::byte>(raw));
        ASSERT_TRUE(reply.has_value());
        worker_got.push_back(std::move(reply).take_or_throw());
      }
    }
  });
  EXPECT_EQ(folds, 1) << "duplicate report was folded twice";
  ASSERT_EQ(worker_got.size(), 2u);
  EXPECT_EQ(worker_got[0].seq, 41u);
  EXPECT_EQ(worker_got[1].seq, 41u);
  EXPECT_EQ(worker_got[0].batch.size(), worker_got[1].batch.size());
  EXPECT_EQ(worker_got[0].request_r, worker_got[1].request_r);
}

// A corrupt report payload is dropped with a typed error (and counted), not
// decoded into garbage: recv_report surfaces the WireError to the caller.
TEST(WireErrors, RecvReportSurfacesCorruptPayloadAsTypedError) {
  vmpi::Runtime rt(2);
  rt.run([&](vmpi::Comm& c) {
    if (c.rank() == 0) {
      auto decoded = recv_report(c, 1);
      ASSERT_FALSE(decoded.has_value());
      EXPECT_EQ(decoded.error().code, WireErrc::kTruncated);
      // The retransmitted (healthy) report then decodes fine.
      auto retry = recv_report(c, 1);
      ASSERT_TRUE(retry.has_value());
      EXPECT_EQ(retry.value().seq, 41u);
      c.send_value<int>(1, 99, 1);
    } else {
      auto bytes = encode_report_payload([] {
        WorkerReport r;
        r.seq = 41;
        return r;
      }());
      auto corrupt = bytes;
      corrupt.resize(corrupt.size() - 2);
      c.send_payload(0, kTagReport, std::move(corrupt));
      c.send_payload(0, kTagReport, std::move(bytes));
      (void)c.recv_value<int>(0, 99);
    }
  });
}

}  // namespace
}  // namespace pgasm::core
