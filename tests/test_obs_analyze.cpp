// Causal trace analysis (obs/analyze.hpp): edge stitching under reordered
// delivery and drops, blocked-time ledgers, critical-path extraction on
// hand-built traces with known answers, and an end-to-end vmpi run whose
// trace must stitch completely.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vmpi/runtime.hpp"

using namespace pgasm;
using obs::Analysis;
using obs::CriticalStep;
using obs::TraceEvent;

namespace {

// Hand-built traces talk the exact event dialect the vmpi runtime records:
// cat "vmpi", send/ssend instants with (peer, bytes, mseq), wait spans named
// recv/probe/barrier/ssend_wait/join. Phases are stamped explicitly since
// these events never pass through RankRing::record.

TraceEvent send_ev(int rank, int peer, std::uint64_t mseq, std::uint64_t ts,
                   std::uint64_t bytes = 16, const char* phase = "cluster") {
  TraceEvent ev;
  ev.name = "send";
  ev.cat = "vmpi";
  ev.kind = TraceEvent::Kind::kInstant;
  ev.rank = rank;
  ev.ts_us = ts;
  ev.arg0_name = "peer";
  ev.arg0 = static_cast<std::uint64_t>(peer);
  ev.arg1_name = "bytes";
  ev.arg1 = bytes;
  ev.arg2_name = "mseq";
  ev.arg2 = mseq;
  ev.phase = phase;
  return ev;
}

TraceEvent wait_ev(int rank, const char* name, std::uint64_t ts,
                   std::uint64_t end, const char* phase = "cluster") {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "vmpi";
  ev.kind = TraceEvent::Kind::kSpan;
  ev.rank = rank;
  ev.ts_us = ts;
  ev.dur_us = end - ts;
  ev.phase = phase;
  return ev;
}

TraceEvent recv_ev(int rank, int peer, std::uint64_t mseq, std::uint64_t ts,
                   std::uint64_t end, const char* phase = "cluster") {
  TraceEvent ev = wait_ev(rank, "recv", ts, end, phase);
  ev.arg0_name = "peer";
  ev.arg0 = static_cast<std::uint64_t>(peer);
  ev.arg1_name = "bytes";
  ev.arg1 = 16;
  ev.arg2_name = "mseq";
  ev.arg2 = mseq;
  return ev;
}

TraceEvent compute_ev(int rank, const char* name, std::uint64_t ts,
                      std::uint64_t end, const char* phase = "cluster") {
  TraceEvent ev;
  ev.name = name;
  ev.cat = "cluster";
  ev.kind = TraceEvent::Kind::kSpan;
  ev.rank = rank;
  ev.ts_us = ts;
  ev.dur_us = end - ts;
  ev.phase = phase;
  return ev;
}

}  // namespace

// ---------------------------------------------------------------- stitch --

TEST(Analyze, ReorderedDeliveryStitchesBothEdges) {
  // Rank 0 sends mseq 1 then 2; rank 1 consumes them in the opposite order
  // (tag-selective recv). Matching is keyed, not positional, so both edges
  // must stitch.
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {send_ev(0, 1, 1, 10), send_ev(0, 1, 2, 20)};
  by_rank[1] = {recv_ev(1, 0, 2, 0, 40), recv_ev(1, 0, 1, 40, 60)};

  const Analysis a = obs::analyze(by_rank);
  EXPECT_EQ(a.sends_total, 2u);
  EXPECT_EQ(a.sends_matched, 2u);
  EXPECT_DOUBLE_EQ(a.stitch_coverage, 1.0);
  EXPECT_FALSE(a.coverage_lower_bound);
  EXPECT_TRUE(a.unmatched_sends.empty());
  EXPECT_TRUE(a.unmatched_recvs.empty());
  EXPECT_TRUE(a.warnings.empty());

  ASSERT_EQ(a.edges.size(), 2u);
  for (const auto& e : a.edges) {
    EXPECT_EQ(e.src_rank, 0);
    EXPECT_EQ(e.dst_rank, 1);
    if (e.mseq == 1) {
      EXPECT_EQ(e.send_ts_us, 10u);
      EXPECT_EQ(e.recv_end_us, 60u);
    } else {
      EXPECT_EQ(e.mseq, 2u);
      EXPECT_EQ(e.send_ts_us, 20u);
      EXPECT_EQ(e.recv_end_us, 40u);
    }
  }
}

TEST(Analyze, SamePhaseKeysDoNotCollideAcrossPhases) {
  // mseq restarts from 1 in every pipeline phase (fresh Comms); the stitch
  // key includes the phase so the two mseq=1 messages stay distinct.
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {send_ev(0, 1, 1, 10, 16, "cluster"),
                send_ev(0, 1, 1, 500, 16, "assembly")};
  by_rank[1] = {recv_ev(1, 0, 1, 0, 30, "cluster"),
                recv_ev(1, 0, 1, 490, 530, "assembly")};

  const Analysis a = obs::analyze(by_rank);
  EXPECT_EQ(a.sends_matched, 2u);
  ASSERT_EQ(a.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(a.stitch_coverage, 1.0);
}

TEST(Analyze, UnmatchedEdgesReportedUnderDrops) {
  // One of two sends never reaches a recv (injected drop); one recv has no
  // send event (sender's ring overflowed). Both remainders must be listed,
  // loudly.
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {send_ev(0, 1, 1, 10), send_ev(0, 1, 2, 20)};
  by_rank[1] = {recv_ev(1, 0, 1, 0, 40), recv_ev(1, 2, 9, 40, 80)};

  const Analysis a = obs::analyze(by_rank);
  EXPECT_EQ(a.sends_total, 2u);
  EXPECT_EQ(a.sends_matched, 1u);
  EXPECT_DOUBLE_EQ(a.stitch_coverage, 0.5);
  ASSERT_EQ(a.unmatched_sends.size(), 1u);
  EXPECT_EQ(a.unmatched_sends[0].mseq, 2u);
  EXPECT_EQ(a.unmatched_sends[0].dst_rank, 1);
  ASSERT_EQ(a.unmatched_recvs.size(), 1u);
  EXPECT_EQ(a.unmatched_recvs[0].src_rank, 2);
  EXPECT_EQ(a.unmatched_recvs[0].mseq, 9u);
  EXPECT_FALSE(a.warnings.empty());

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"unmatched_sends\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\":0.5"), std::string::npos);
}

TEST(Analyze, DroppedEventsMakeCoverageALowerBound) {
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {send_ev(0, 1, 1, 10)};
  by_rank[1] = {recv_ev(1, 0, 1, 0, 40)};

  const Analysis a = obs::analyze(by_rank, {{1, 5}});
  EXPECT_TRUE(a.coverage_lower_bound);
  EXPECT_EQ(a.dropped_events, 5u);
  ASSERT_FALSE(a.warnings.empty());
  bool mentions_bound = false;
  for (const auto& w : a.warnings) {
    if (w.find("LOWER BOUNDS") != std::string::npos) mentions_bound = true;
  }
  EXPECT_TRUE(mentions_bound);
  EXPECT_NE(a.to_text().find("!!"), std::string::npos);
  EXPECT_NE(a.to_json().find("\"coverage_is_lower_bound\":true"),
            std::string::npos);
}

// --------------------------------------------------------------- ledgers --

TEST(Analyze, LedgerSplitsSumToWall) {
  // One rank, one phase: compute [0,100], recv wait [100,150], barrier
  // [150,180], ssend rendezvous [180,200], probe [200,220]. Wall is 220;
  // every bucket is disjoint so the split must sum exactly.
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {compute_ev(0, "align_batch", 0, 100),
                recv_ev(0, 1, 1, 100, 150),
                wait_ev(0, "barrier", 150, 180),
                wait_ev(0, "ssend_wait", 180, 200),
                wait_ev(0, "probe", 200, 220)};

  const Analysis a = obs::analyze(by_rank);
  ASSERT_EQ(a.ledgers.size(), 1u);
  const obs::PhaseLedger& l = a.ledgers[0];
  EXPECT_EQ(l.rank, 0);
  EXPECT_EQ(l.phase, "cluster");
  EXPECT_EQ(l.wall_us, 220u);
  EXPECT_EQ(l.recv_wait_us, 50u);
  EXPECT_EQ(l.barrier_wait_us, 30u);
  EXPECT_EQ(l.comm_us, 20u);
  EXPECT_EQ(l.probe_wait_us, 20u);
  EXPECT_EQ(l.join_wait_us, 0u);
  EXPECT_EQ(l.compute_us, 100u);
  EXPECT_EQ(l.compute_us + l.wait_us() + l.comm_us, l.wall_us);
}

TEST(Analyze, LedgersSeparatePhasesAndRanks) {
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {compute_ev(0, "a", 0, 10, "cluster"),
                compute_ev(0, "b", 100, 130, "assembly")};
  by_rank[1] = {compute_ev(1, "c", 0, 40, "cluster")};

  const Analysis a = obs::analyze(by_rank);
  ASSERT_EQ(a.ledgers.size(), 3u);
  std::map<std::pair<std::string, int>, std::uint64_t> wall;
  for (const auto& l : a.ledgers) wall[{l.phase, l.rank}] = l.wall_us;
  EXPECT_EQ((wall[{"cluster", 0}]), 10u);
  EXPECT_EQ((wall[{"assembly", 0}]), 30u);
  EXPECT_EQ((wall[{"cluster", 1}]), 40u);
}

// --------------------------------------------------------- critical path --

TEST(Analyze, CriticalPathThreeRankPipelineKnownAnswer) {
  // A 3-rank relay with a known answer. Rank 0 computes "gen" for 100us and
  // sends; rank 1 was already waiting, receives at 120, computes "align"
  // until 200, sends; rank 2 receives at 230 and computes "assemble" until
  // 300. The path must walk the full relay: gen -> in-flight recv tail ->
  // align -> recv tail -> assemble, exactly 300us end to end.
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {compute_ev(0, "gen", 0, 100), send_ev(0, 1, 1, 100)};
  by_rank[1] = {recv_ev(1, 0, 1, 0, 120), compute_ev(1, "align", 120, 200),
                send_ev(1, 2, 1, 200)};
  by_rank[2] = {recv_ev(2, 1, 1, 0, 230), compute_ev(2, "assemble", 230, 300)};

  const Analysis a = obs::analyze(by_rank);
  const obs::CriticalPath& cp = a.critical_path;
  EXPECT_EQ(cp.total_us, 300u);
  ASSERT_EQ(cp.steps.size(), 5u);

  // Forward time order, contiguous, alternating compute and message waits.
  const CriticalStep::Kind kC = CriticalStep::Kind::kCompute;
  const CriticalStep::Kind kR = CriticalStep::Kind::kRecvWait;
  const CriticalStep::Kind want_kind[] = {kC, kR, kC, kR, kC};
  const char* want_name[] = {"gen", "recv", "align", "recv", "assemble"};
  const int want_rank[] = {0, 1, 1, 2, 2};
  std::uint64_t cursor = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cp.steps[i].kind, want_kind[i]) << "step " << i;
    EXPECT_EQ(cp.steps[i].name, want_name[i]) << "step " << i;
    EXPECT_EQ(cp.steps[i].rank, want_rank[i]) << "step " << i;
    EXPECT_EQ(cp.steps[i].start_us, cursor) << "step " << i;
    cursor = cp.steps[i].end_us;
  }
  EXPECT_EQ(cursor, 300u);

  // Composition: the biggest contributor is rank 0's 100us of "gen".
  ASSERT_FALSE(cp.top.empty());
  std::uint64_t summed = 0;
  for (const auto& c : cp.top) summed += c.us;
  EXPECT_EQ(summed, cp.total_us);
}

TEST(Analyze, CriticalPathBarrierJumpsToLatecomer) {
  // Rank 0 reaches the barrier at 10 and waits until 100; rank 1 computes
  // until 95 and breezes through. The path must charge the wait to rank 1's
  // compute, not rank 0's idling.
  std::map<int, std::vector<TraceEvent>> by_rank;
  by_rank[0] = {wait_ev(0, "barrier", 10, 100)};
  by_rank[1] = {compute_ev(1, "slowpoke", 0, 95),
                wait_ev(1, "barrier", 95, 100)};

  const Analysis a = obs::analyze(by_rank);
  std::uint64_t slowpoke_us = 0;
  for (const auto& s : a.critical_path.steps) {
    if (s.kind == CriticalStep::Kind::kCompute && s.name == "slowpoke") {
      slowpoke_us += s.dur_us();
    }
  }
  EXPECT_GE(slowpoke_us, 90u);
}

// ----------------------------------------------------------- flow events --

class AnalyzeTracerTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
    obs::tracer().set_capacity(obs::Tracer::kDefaultCapacity);
    obs::set_phase(nullptr);
  }
  void TearDown() override { SetUp(); }
};

TEST_F(AnalyzeTracerTest, ChromeJsonEmitsFlowArrows) {
  obs::tracer().set_enabled(true);
  obs::instant(0, "send", "vmpi", "peer", 1, "bytes", 8, "mseq", 3);
  obs::tracer().ring(1)->record(recv_ev(1, 0, 3, 0, 50, ""));

  const std::string json = obs::tracer().to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow finish
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);  // bind to end
  // Both halves carry the same id: ((sender_rank + 2) << 40) | mseq.
  const std::string id =
      "\"id\":" + std::to_string((std::uint64_t{0 + 2} << 40) | 3u);
  const auto first = json.find(id);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find(id, first + 1), std::string::npos);
}

TEST_F(AnalyzeTracerTest, RingOverflowSurfacesAsDropCounts) {
  obs::tracer().set_capacity(4);
  obs::tracer().set_enabled(true);
  for (int i = 0; i < 10; ++i) obs::instant(2, "evt", "test");

  const auto dropped = obs::tracer().dropped_by_rank();
  ASSERT_EQ(dropped.count(2), 1u);
  EXPECT_EQ(dropped.at(2), 6u);

  const Analysis a = obs::analyze_current();
  EXPECT_TRUE(a.coverage_lower_bound);
  EXPECT_EQ(a.dropped_events, 6u);
}

// ------------------------------------------------------------ end to end --

TEST_F(AnalyzeTracerTest, VmpiRunStitchesEveryUserSend) {
  obs::tracer().set_enabled(true);
  obs::set_phase("cluster");
  const int p = 4;
  vmpi::Runtime rt(p);
  rt.run([&](vmpi::Comm& c) {
    // Rank 0 fans a value out; everyone answers; a barrier closes the round.
    if (c.rank() == 0) {
      for (int r = 1; r < p; ++r) c.send_value<std::uint64_t>(r, 7, 100 + r);
      for (int r = 1; r < p; ++r) c.recv_value<std::uint64_t>(r, 8);
    } else {
      const auto v = c.recv_value<std::uint64_t>(0, 7);
      c.send_value<std::uint64_t>(0, 8, v + 1);
    }
    c.barrier();
  });
  obs::set_phase("");

  const Analysis a = obs::analyze_current();
  EXPECT_EQ(a.sends_total, 2u * (p - 1));
  EXPECT_EQ(a.sends_matched, a.sends_total);
  EXPECT_DOUBLE_EQ(a.stitch_coverage, 1.0);
  EXPECT_FALSE(a.coverage_lower_bound);
  EXPECT_TRUE(a.unmatched_sends.empty());

  // Every rank shows up in the cluster-phase ledger, and the split sums.
  int cluster_ledgers = 0;
  for (const auto& l : a.ledgers) {
    if (l.phase != "cluster") continue;
    ++cluster_ledgers;
    EXPECT_EQ(l.compute_us + l.wait_us() + l.comm_us, l.wall_us)
        << "rank " << l.rank;
  }
  EXPECT_GE(cluster_ledgers, p);

  // The critical path reaches back to (or near) the run's start.
  EXPECT_GT(a.critical_path.total_us, 0u);
  ASSERT_FALSE(a.critical_path.steps.empty());
  EXPECT_FALSE(a.critical_path.top.empty());

  const std::string text = a.to_text();
  EXPECT_NE(text.find("stitch"), std::string::npos);
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"coverage\":1"), std::string::npos);
}
