// Tests for the layout union-find and the greedy OLC assembler.
#include <gtest/gtest.h>

#include "align/overlap.hpp"
#include "olc/assembler.hpp"
#include "olc/layout.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using olc::LayoutUF;
using olc::Transform;

TEST(Transform, ComposeAndInverse) {
  const Transform shift{false, 10};
  const Transform flip{true, 5};
  EXPECT_EQ(shift(3), 13);
  EXPECT_EQ(flip(3), 2);
  const Transform c = flip * shift;  // c(x) = flip(shift(x)) = 5 - (x+10)
  EXPECT_EQ(c(3), 5 - 13);
  EXPECT_TRUE(c.flip);
  for (const Transform t : {shift, flip, c}) {
    const Transform inv = t.inverse();
    for (std::int64_t x : {-7, 0, 3, 100}) {
      EXPECT_EQ(inv(t(x)), x);
      EXPECT_EQ(t(inv(x)), x);
    }
  }
}

TEST(Transform, CompositionAssociativity) {
  util::Prng rng(5);
  for (int t = 0; t < 50; ++t) {
    const Transform a{rng.chance(0.5), rng.range(-50, 50)};
    const Transform b{rng.chance(0.5), rng.range(-50, 50)};
    const Transform c{rng.chance(0.5), rng.range(-50, 50)};
    const Transform ab_c = (a * b) * c;
    const Transform a_bc = a * (b * c);
    EXPECT_EQ(ab_c, a_bc);
    for (std::int64_t x : {-3, 0, 9}) EXPECT_EQ(ab_c(x), a(b(c(x))));
  }
}

TEST(LayoutUF, ChainsPlacements) {
  LayoutUF uf(4);
  // 1 sits at +10 in 0's frame; 2 at +10 in 1's frame; 3 flipped at 5 in 2's.
  EXPECT_EQ(uf.unite(0, 1, Transform{false, 10}, 2),
            LayoutUF::UniteOutcome::kMerged);
  EXPECT_EQ(uf.unite(1, 2, Transform{false, 10}, 2),
            LayoutUF::UniteOutcome::kMerged);
  EXPECT_EQ(uf.unite(2, 3, Transform{true, 5}, 2),
            LayoutUF::UniteOutcome::kMerged);
  EXPECT_EQ(uf.num_components(), 1u);
  auto [r0, t0] = uf.find(0);
  auto [r3, t3] = uf.find(3);
  EXPECT_EQ(r0, r3);
  // Position of 3's coordinate x in root frame must equal the composition
  // regardless of which node became root: compare relative placement.
  // 3's frame -> 0's frame: shift10 ∘ shift10 ∘ flip5 = x -> 25 - x.
  const Transform to0 = t0.inverse() * t3;
  EXPECT_TRUE(to0.flip);
  EXPECT_EQ(to0(0), 25);
  EXPECT_EQ(to0(7), 18);
}

TEST(LayoutUF, DetectsConflicts) {
  LayoutUF uf(3);
  EXPECT_EQ(uf.unite(0, 1, Transform{false, 100}, 3),
            LayoutUF::UniteOutcome::kMerged);
  EXPECT_EQ(uf.unite(1, 2, Transform{false, 100}, 3),
            LayoutUF::UniteOutcome::kMerged);
  // Consistent closure edge 0 -> 2 at 200 (within tolerance).
  EXPECT_EQ(uf.unite(0, 2, Transform{false, 198}, 3),
            LayoutUF::UniteOutcome::kConsistent);
  // Contradicting placement.
  EXPECT_EQ(uf.unite(0, 2, Transform{false, 150}, 3),
            LayoutUF::UniteOutcome::kConflict);
  // Orientation contradiction.
  EXPECT_EQ(uf.unite(0, 2, Transform{true, 200}, 3),
            LayoutUF::UniteOutcome::kConflict);
}

TEST(LayoutUF, ComponentsPartition) {
  LayoutUF uf(6);
  uf.unite(0, 1, Transform{false, 5}, 2);
  uf.unite(3, 4, Transform{true, 9}, 2);
  auto comps = uf.components();
  EXPECT_EQ(comps.size(), 4u);
  std::size_t total = 0;
  for (const auto& c : comps) total += c.size();
  EXPECT_EQ(total, 6u);
}

// --- Assembler --------------------------------------------------------------

/// Tile a genome with overlapping error-free reads; assembly must
/// reconstruct it as a single contig whose consensus equals the genome.
TEST(Assembler, PerfectTilingReconstructsGenome) {
  util::Prng rng(11);
  const auto genome = test::random_dna(rng, 800);
  seq::FragmentStore frags;
  for (std::size_t start = 0; start + 200 <= genome.size(); start += 100) {
    frags.add(std::vector<seq::Code>(genome.begin() + start,
                                     genome.begin() + start + 200));
  }
  const auto result = olc::assemble(frags, olc::AssemblyParams{});
  ASSERT_EQ(result.contigs.size(), 1u);
  const auto& contig = result.contigs[0];
  EXPECT_EQ(contig.layout.size(), frags.size());
  ASSERT_EQ(contig.consensus.size(), genome.size());
  EXPECT_EQ(contig.consensus, genome);
}

TEST(Assembler, MixedStrandsReconstruct) {
  util::Prng rng(13);
  const auto genome = test::random_dna(rng, 600);
  seq::FragmentStore frags;
  int idx = 0;
  for (std::size_t start = 0; start + 200 <= genome.size(); start += 80) {
    std::vector<seq::Code> read(genome.begin() + start,
                                genome.begin() + start + 200);
    if (idx++ % 2) read = seq::reverse_complement(read);
    frags.add(read);
  }
  const auto result = olc::assemble(frags, olc::AssemblyParams{});
  ASSERT_EQ(result.contigs.size(), 1u);
  const auto& cons = result.contigs[0].consensus;
  ASSERT_EQ(cons.size(), genome.size());
  // Consensus is the genome or its reverse complement (orientation of the
  // root fragment is arbitrary).
  const bool fwd = cons == genome;
  const bool rev = cons == seq::reverse_complement(genome);
  EXPECT_TRUE(fwd || rev);
}

TEST(Assembler, ConsensusFixesSequencingErrors) {
  util::Prng rng(17);
  const auto genome = test::random_dna(rng, 500);
  seq::FragmentStore frags;
  // 6x coverage of errorful reads: consensus should vote errors away.
  for (int copies = 0; copies < 6; ++copies) {
    for (std::size_t start = 0; start + 150 <= genome.size(); start += 75) {
      std::vector<seq::Code> read(genome.begin() + start,
                                  genome.begin() + start + 150);
      for (auto& c : read) {
        if (rng.chance(0.01)) c = static_cast<seq::Code>((c + 1) % 4);
      }
      frags.add(read);
    }
  }
  olc::AssemblyParams params;
  params.overlap.min_identity = 0.9;
  const auto result = olc::assemble(frags, params);
  ASSERT_GE(result.contigs.size(), 1u);
  // Find the large contig.
  const olc::Contig* big = &result.contigs[0];
  for (const auto& c : result.contigs) {
    if (c.length() > big->length()) big = &c;
  }
  // Reads tile [0, 450) of the 500 bp genome (last start is 300).
  ASSERT_EQ(big->consensus.size(), 450u);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < big->consensus.size(); ++i) {
    mismatches += (big->consensus[i] != genome[i]);
  }
  EXPECT_LT(mismatches, big->consensus.size() / 100);  // <1% consensus error
}

TEST(Assembler, PolishFixesIndels) {
  // Reads with indels: the fixed-offset draft drifts, the polish pass must
  // realign and recover the genome, including columns the backbone read
  // deleted (insertion voting).
  util::Prng rng(37);
  const auto genome = test::random_dna(rng, 600);
  seq::FragmentStore frags;
  for (int copies = 0; copies < 8; ++copies) {
    for (std::size_t start = 0; start + 150 <= genome.size(); start += 75) {
      std::vector<seq::Code> read;
      read.reserve(160);
      for (std::size_t k = start; k < start + 150; ++k) {
        if (rng.chance(0.004)) continue;  // deletion
        if (rng.chance(0.004)) {
          read.push_back(static_cast<seq::Code>(rng.below(4)));  // insertion
        }
        seq::Code c = genome[k];
        if (rng.chance(0.01)) c = static_cast<seq::Code>((c + 1) % 4);
        read.push_back(c);
      }
      frags.add(read);
    }
  }
  olc::AssemblyParams params;
  params.overlap.min_identity = 0.9;
  const auto result = olc::assemble(frags, params);
  const olc::Contig* big = &result.contigs[0];
  for (const auto& c : result.contigs) {
    if (c.length() > big->length()) big = &c;
  }
  // Align the consensus to the genome: near-perfect identity expected.
  const auto aln =
      align::overlap_align(big->consensus, genome, align::Scoring{});
  EXPECT_GT(aln.aln.columns, 500u);
  EXPECT_GT(aln.aln.identity(), 0.995);
}

TEST(Assembler, PolishDisabledKeepsDraft) {
  util::Prng rng(39);
  const auto genome = test::random_dna(rng, 400);
  seq::FragmentStore frags;
  for (std::size_t start = 0; start + 150 <= genome.size(); start += 75) {
    frags.add(std::vector<seq::Code>(genome.begin() + start,
                                     genome.begin() + start + 150));
  }
  olc::AssemblyParams params;
  params.polish_passes = 0;
  const auto result = olc::assemble(frags, params);
  ASSERT_EQ(result.contigs.size(), 1u);
  // Error-free reads: draft is already exact even without polishing.
  EXPECT_EQ(result.contigs[0].consensus,
            std::vector<seq::Code>(genome.begin(), genome.begin() + 375));
}

TEST(Assembler, DisjointIslandsYieldSeparateContigs) {
  util::Prng rng(19);
  const auto g1 = test::random_dna(rng, 400);
  const auto g2 = test::random_dna(rng, 400);
  seq::FragmentStore frags;
  for (const auto& g : {g1, g2}) {
    for (std::size_t start = 0; start + 150 <= g.size(); start += 70) {
      frags.add(std::vector<seq::Code>(g.begin() + start,
                                       g.begin() + start + 150));
    }
  }
  const auto result = olc::assemble(frags, olc::AssemblyParams{});
  EXPECT_EQ(result.num_multi_contigs(), 2u);
}

TEST(Assembler, SingletonsReported) {
  util::Prng rng(23);
  seq::FragmentStore frags;
  frags.add(test::random_dna(rng, 300));
  frags.add(test::random_dna(rng, 300));  // no overlap between them
  const auto result = olc::assemble(frags, olc::AssemblyParams{});
  EXPECT_EQ(result.contigs.size(), 2u);
  EXPECT_EQ(result.num_singletons(), 2u);
  EXPECT_EQ(result.num_multi_contigs(), 0u);
}

TEST(Assembler, EmptyInput) {
  seq::FragmentStore frags;
  const auto result = olc::assemble(frags, olc::AssemblyParams{});
  EXPECT_TRUE(result.contigs.empty());
  EXPECT_EQ(result.n50(), 0u);
}

TEST(Assembler, N50Sane) {
  util::Prng rng(29);
  const auto genome = test::random_dna(rng, 1000);
  seq::FragmentStore frags;
  for (std::size_t start = 0; start + 200 <= genome.size(); start += 90) {
    frags.add(std::vector<seq::Code>(genome.begin() + start,
                                     genome.begin() + start + 200));
  }
  const auto result = olc::assemble(frags, olc::AssemblyParams{});
  EXPECT_GE(result.n50(), 900u);
}

}  // namespace
}  // namespace pgasm
