// Fuzz harness: FASTA parser.
//
// Properties enforced:
//   1. Totality — read_fasta either succeeds or throws std::runtime_error;
//      no other exception type, no crash, no sanitizer report.
//   2. Store consistency — every record that parses lands in the store with
//      in-alphabet codes (enforced internally by FragmentStore's DCHECKs in
//      debug builds; the UBSan leg covers the rest).
//   3. Round-trip — parse, write, re-parse yields the same record count and
//      the same code sequences (masking is canonical after the first parse).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_driver.hpp"
#include "seq/fasta.hpp"
#include "seq/fragment_store.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_fasta property violated: %s\n", what);
    std::abort();
  }
}

std::vector<std::uint8_t> bytes_of(const char* text) {
  const std::string s(text);
  return {s.begin(), s.end()};
}

}  // namespace

std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds() {
  return {
      bytes_of(">frag0\nACGTACGTACGT\n"),
      bytes_of(">frag1 type=MF\nACGTNNNNacgt\nGGGGCCCC\n"),
      bytes_of(">a\nA\n>b\nC\n>c\nG\n>d\nT\n"),
      bytes_of(">empty_then_data\n\n>x\nACGT\n"),
      bytes_of("no leading header\nACGT\n"),
      bytes_of(">iupac\nRYSWKMBDHVN\n"),
  };
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  pgasm::seq::FragmentStore store;
  std::size_t n = 0;
  try {
    std::istringstream in(text);
    n = pgasm::seq::read_fasta(in, store);
  } catch (const std::runtime_error&) {
    return 0;  // rejected input: the only acceptable failure mode
  }
  check(n == store.size(), "record count disagrees with store size");

  // Round-trip: what we wrote back must parse to the same fragments.
  std::ostringstream out;
  pgasm::seq::write_fasta(out, store);
  pgasm::seq::FragmentStore store2;
  std::size_t n2 = 0;
  try {
    std::istringstream in2(out.str());
    n2 = pgasm::seq::read_fasta(in2, store2);
  } catch (const std::runtime_error&) {
    check(false, "writer output failed to re-parse");
  }
  check(n2 == n, "round-trip changed record count");
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto a = store.seq(static_cast<pgasm::seq::FragmentId>(i));
    const auto b = store2.seq(static_cast<pgasm::seq::FragmentId>(i));
    check(a.size() == b.size() &&
              std::equal(a.begin(), a.end(), b.begin()),
          "round-trip changed fragment codes");
  }
  return 0;
}
