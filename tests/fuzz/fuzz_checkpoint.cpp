// Fuzz harness: checkpoint decode + master resume.
//
// Stage 1 fuzzes try_decode_checkpoint over arbitrary bytes (totality: a
// typed WireError or a valid checkpoint, never a crash). Stage 2 feeds
// every successfully decoded checkpoint into MasterScheduler::restore
// against a small fixed fragment store — the path a real resume takes —
// and requires that restore either completes or rejects the checkpoint
// with std::invalid_argument. Historically this path could write out of
// bounds on corrupt labels; this harness is the regression guard.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/cluster_params.hpp"
#include "core/cluster_scheduler.hpp"
#include "core/wire.hpp"
#include "fuzz_driver.hpp"
#include "seq/fragment_store.hpp"

namespace {

using pgasm::core::ClusterCheckpoint;
using pgasm::core::PairMsg;
using pgasm::core::RoleProgress;

constexpr std::uint32_t kFragments = 4;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_checkpoint property violated: %s\n", what);
    std::abort();
  }
}

const pgasm::seq::FragmentStore& doubled_store() {
  static const pgasm::seq::FragmentStore store = [] {
    pgasm::seq::FragmentStore plain;
    plain.add_ascii("ACGTACGTACGT");
    plain.add_ascii("TTTTACGTACGT");
    plain.add_ascii("GGGGACGTACGT");
    plain.add_ascii("CCCCACGTACGT");
    return pgasm::seq::make_doubled_store(plain);
  }();
  return store;
}

ClusterCheckpoint sample_checkpoint() {
  ClusterCheckpoint c;
  c.epoch = 2;
  c.num_ranks = 3;
  c.n_fragments = kFragments;
  c.labels = {0, 0, 2, 3};
  c.pending.push_back(PairMsg{0, 1, 0, 0, 12});
  c.progress.push_back(RoleProgress{1, 0, 5});
  c.progress.push_back(RoleProgress{2, 1, 9});
  c.pairs_generated = 14;
  c.pairs_selected = 12;
  c.pairs_aligned = 11;
  c.pairs_accepted = 6;
  c.merges = 2;
  return c;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.push_back(pgasm::core::encode_checkpoint(sample_checkpoint()));
  seeds.push_back(pgasm::core::encode_checkpoint(ClusterCheckpoint{}));
  ClusterCheckpoint wrong_count = sample_checkpoint();
  wrong_count.n_fragments = kFragments + 1;
  wrong_count.labels.push_back(0);
  seeds.push_back(pgasm::core::encode_checkpoint(wrong_count));
  return seeds;
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto decoded =
      pgasm::core::try_decode_checkpoint(std::span<const std::uint8_t>(data, size));
  if (!decoded) return 0;
  const ClusterCheckpoint ck = std::move(decoded).take_or_throw();

  // Anything the decoder accepted must be safe to resume from (or be
  // rejected with the typed mismatch error) — never memory-unsafe.
  pgasm::core::MasterScheduler sched(doubled_store(), pgasm::core::ClusterParams{},
                                     /*p=*/3);
  try {
    sched.restore(ck);
  } catch (const std::invalid_argument&) {
    return 0;  // fragment-count / label mismatch: the typed rejection path
  }
  check(ck.n_fragments == kFragments,
        "restore accepted a checkpoint for a different fragment count");
  return 0;
}
