// Fuzz harness: FASTQ parser.
//
// Properties enforced:
//   1. Totality — read_fastq either succeeds or throws std::runtime_error
//      (missing '+', length mismatch, truncation); no other exception type,
//      no crash, no sanitizer report.
//   2. Store consistency — parsed record count matches the store size, and
//      every stored quality is within the clamped Sanger range.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_driver.hpp"
#include "seq/fastq.hpp"
#include "seq/fragment_store.hpp"

namespace {

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_fastq property violated: %s\n", what);
    std::abort();
  }
}

std::vector<std::uint8_t> bytes_of(const char* text) {
  const std::string s(text);
  return {s.begin(), s.end()};
}

}  // namespace

std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds() {
  return {
      bytes_of("@frag0\nACGTACGT\n+\nIIIIIIII\n"),
      bytes_of("@frag1\nACGTNNNN\n+frag1\n!!!!IIII\n@frag2\nGGCC\n+\nJJJJ\n"),
      bytes_of("@hi_qual\nACGT\n+\n~~~~\n"),
      bytes_of("@short\nA\n+\n!\n"),
      bytes_of("@truncated\nACGT\n+\n"),
      bytes_of("@len_mismatch\nACGT\n+\nII\n"),
  };
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  pgasm::seq::FragmentStore store;
  pgasm::seq::FastqReadOptions opts;
  std::size_t n = 0;
  try {
    std::istringstream in(text);
    n = pgasm::seq::read_fastq(in, store, opts);
  } catch (const std::runtime_error&) {
    return 0;  // rejected input: the only acceptable failure mode
  }
  check(n == store.size(), "record count disagrees with store size");
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto id = static_cast<pgasm::seq::FragmentId>(i);
    for (const std::uint8_t q : store.quality(id)) {
      check(q <= opts.max_quality, "quality exceeds the clamp ceiling");
    }
  }
  return 0;
}
