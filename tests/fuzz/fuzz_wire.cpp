// Fuzz harness: wire decoders for the clustering protocol.
//
// The first input byte routes to one of the three decoders; the rest is the
// payload. Properties enforced (abort on violation):
//   1. Totality — decoding arbitrary bytes either succeeds or returns a
//      typed WireError; it never crashes, throws, or reads out of bounds
//      (the UBSan/ASan build legs check the latter).
//   2. Canonical round-trip — when a decode succeeds, re-encoding the
//      decoded message reproduces the input bytes exactly. The wire format
//      has one canonical serialization, so decode followed by encode is the
//      identity on valid payloads.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/wire.hpp"
#include "fuzz_driver.hpp"

namespace {

using pgasm::core::ClusterCheckpoint;
using pgasm::core::MasterReply;
using pgasm::core::PairMsg;
using pgasm::core::ResultMsg;
using pgasm::core::RoleProgress;
using pgasm::core::TakeoverOrder;
using pgasm::core::WorkerReport;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_wire property violated: %s\n", what);
    std::abort();
  }
}

void fuzz_report(std::span<const std::uint8_t> payload) {
  auto decoded = pgasm::core::try_decode_report(payload);
  if (!decoded) return;
  const auto re = pgasm::core::encode_report(decoded.value());
  check(re.size() == payload.size() &&
            std::equal(re.begin(), re.end(), payload.begin()),
        "report decode/encode round-trip is not the identity");
}

void fuzz_reply(std::span<const std::uint8_t> payload) {
  auto decoded = pgasm::core::try_decode_reply(payload);
  if (!decoded) return;
  const auto re = pgasm::core::encode_reply(decoded.value());
  check(re.size() == payload.size() &&
            std::equal(re.begin(), re.end(), payload.begin()),
        "reply decode/encode round-trip is not the identity");
}

void fuzz_checkpoint(std::span<const std::uint8_t> payload) {
  auto decoded = pgasm::core::try_decode_checkpoint(payload);
  if (!decoded) return;
  const auto re = pgasm::core::encode_checkpoint(decoded.value());
  check(re.size() == payload.size() &&
            std::equal(re.begin(), re.end(), payload.begin()),
        "checkpoint decode/encode round-trip is not the identity");
}

WorkerReport sample_report() {
  WorkerReport r;
  r.seq = 7;
  r.results.push_back(ResultMsg{1, 2, -3, 1, 0, 1, 0});
  r.new_pairs.push_back(PairMsg{4, 5, 6, 7, 8});
  r.progress.push_back(RoleProgress{1, 0, 42});
  r.exhausted = 0;
  return r;
}

MasterReply sample_reply() {
  MasterReply r;
  r.seq = 7;
  r.batch.push_back(PairMsg{9, 8, 7, 6, 5});
  r.takeovers.push_back(TakeoverOrder{2, 0, 1000});
  r.request_r = 64;
  return r;
}

ClusterCheckpoint sample_checkpoint() {
  ClusterCheckpoint c;
  c.epoch = 3;
  c.num_ranks = 4;
  c.n_fragments = 5;
  c.input_hash = 0x1234;
  c.params_hash = 0x5678;
  c.labels = {0, 1, 1, 0, 2};
  c.pending.push_back(PairMsg{1, 2, 3, 4, 5});
  c.progress.push_back(RoleProgress{1, 1, 99});
  c.pairs_generated = 10;
  return c;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds;
  auto tagged = [&seeds](std::uint8_t route,
                         const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> s;
    s.reserve(payload.size() + 1);
    s.push_back(route);
    s.insert(s.end(), payload.begin(), payload.end());
    seeds.push_back(std::move(s));
  };
  tagged(0, pgasm::core::encode_report(sample_report()));
  tagged(0, pgasm::core::encode_report(WorkerReport{}));
  tagged(1, pgasm::core::encode_reply(sample_reply()));
  tagged(1, pgasm::core::encode_reply(MasterReply{}));
  tagged(2, pgasm::core::encode_checkpoint(sample_checkpoint()));
  tagged(2, pgasm::core::encode_checkpoint(ClusterCheckpoint{}));
  return seeds;
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::span<const std::uint8_t> payload(data + 1, size - 1);
  switch (data[0] % 3) {
    case 0: fuzz_report(payload); break;
    case 1: fuzz_reply(payload); break;
    case 2: fuzz_checkpoint(payload); break;
  }
  return 0;
}
