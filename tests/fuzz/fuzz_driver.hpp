// Shared scaffolding for the fuzz harnesses under tests/fuzz/.
//
// Each harness defines the standard libFuzzer entry point plus a builtin
// seed provider:
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//   std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds();
//
// Build modes:
//   * default (any compiler): fuzz_driver.cpp supplies main() — a bounded,
//     fully deterministic mutational loop over the builtin seeds and any
//     corpus files passed as arguments. This is what the `fuzz-smoke` CI
//     stage runs on every push; it needs no libFuzzer support in the
//     toolchain.
//   * -DPGASM_LIBFUZZER=ON (clang only): the same harness sources are
//     linked with -fsanitize=fuzzer for open-ended coverage-guided runs;
//     the driver main is compiled out.
//
// Harnesses must be total: reject bad input via typed errors/exceptions
// they catch themselves, and never crash, assert, or trip a sanitizer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

/// Builtin seed corpus: valid (and near-valid) inputs the mutator starts
/// from, so the bounded smoke run reaches deep decode paths immediately.
std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds();
