// Fuzz harness: run-manifest decode (pipeline recovery supervisor).
//
// try_decode_manifest must be total over arbitrary bytes: a typed
// WireError or a valid manifest, never a crash. Every manifest the decoder
// accepts must satisfy the documented invariants the supervisor relies on
// (phase ids < 64, no duplicate phase entries) and must survive a
// re-encode/decode round trip unchanged — the property that makes a
// persisted manifest trustworthy across restarts.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/wire.hpp"
#include "fuzz_driver.hpp"

namespace {

using pgasm::core::PhaseEntry;
using pgasm::core::RunManifest;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_manifest property violated: %s\n", what);
    std::abort();
  }
}

RunManifest sample_manifest() {
  RunManifest m;
  m.generation = 7;
  m.input_hash = 0x1122334455667788ULL;
  m.params_hash = 0x99aabbccddeeff00ULL;
  m.phases.push_back(PhaseEntry{.phase = 0, .attempts = 1, .completed = 1});
  m.phases.push_back(PhaseEntry{.phase = 1, .attempts = 3, .completed = 1});
  m.phases.push_back(PhaseEntry{.phase = 4, .attempts = 2, .degraded = 1});
  return m;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> pgasm_fuzz_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.push_back(pgasm::core::encode_manifest(sample_manifest()));
  seeds.push_back(pgasm::core::encode_manifest(RunManifest{}));
  // Invalid by construction: duplicate phase and out-of-range phase id.
  RunManifest dup = sample_manifest();
  dup.phases.push_back(PhaseEntry{.phase = 1, .attempts = 1});
  seeds.push_back(pgasm::core::encode_manifest(dup));
  RunManifest huge = sample_manifest();
  huge.phases.push_back(PhaseEntry{.phase = 64, .attempts = 1});
  seeds.push_back(pgasm::core::encode_manifest(huge));
  // Truncations and bit flips of a valid encoding.
  const auto valid = seeds.front();
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, valid.size() / 2,
                          valid.size() - 1}) {
    seeds.emplace_back(valid.begin(),
                       valid.begin() + static_cast<std::ptrdiff_t>(cut));
  }
  for (std::size_t flip : {std::size_t{0}, valid.size() / 2,
                           valid.size() - 1}) {
    auto bytes = valid;
    bytes[flip] ^= 0x40;
    seeds.push_back(std::move(bytes));
  }
  return seeds;
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto decoded = pgasm::core::try_decode_manifest(
      std::span<const std::uint8_t>(data, size));
  if (!decoded) return 0;
  const RunManifest m = std::move(decoded).take_or_throw();

  // Invariants the supervisor depends on when adopting a manifest.
  std::uint64_t seen = 0;
  for (const auto& e : m.phases) {
    check(e.phase < 64, "decoder accepted a phase id >= 64");
    const std::uint64_t bit = 1ULL << e.phase;
    check((seen & bit) == 0, "decoder accepted duplicate phase entries");
    seen |= bit;
  }

  // Round trip: what we persist is what a restarted run reads back.
  const auto bytes = pgasm::core::encode_manifest(m);
  auto again = pgasm::core::try_decode_manifest(
      std::span<const std::uint8_t>(bytes));
  check(again.has_value(), "re-encoded manifest failed to decode");
  const RunManifest m2 = std::move(again).take_or_throw();
  check(m2.generation == m.generation && m2.input_hash == m.input_hash &&
            m2.params_hash == m.params_hash &&
            m2.phases.size() == m.phases.size(),
        "manifest round trip changed contents");
  for (std::size_t i = 0; i < m.phases.size(); ++i) {
    check(m2.phases[i].phase == m.phases[i].phase &&
              m2.phases[i].attempts == m.phases[i].attempts &&
              m2.phases[i].completed == m.phases[i].completed &&
              m2.phases[i].degraded == m.phases[i].degraded,
          "manifest round trip changed a phase entry");
  }
  return 0;
}
