// Deterministic standalone driver for the fuzz harnesses (see
// fuzz_driver.hpp). Compiled out under -DPGASM_LIBFUZZER, where libFuzzer
// supplies main().
//
// The loop is reproducible by construction: a fixed-seed splitmix64 stream
// drives every mutation decision, so a given (seed, iters, corpus) triple
// replays the identical input sequence — a crash in CI reproduces locally
// with the same environment variables.
//
//   PGASM_FUZZ_ITERS    mutated inputs to run (default 2000)
//   PGASM_FUZZ_SEED     PRNG seed (default 1)
//   PGASM_FUZZ_MAX_LEN  max input size in bytes (default 65536)
//
// Any argv entries are treated as extra corpus files and run before the
// mutation loop.
#ifndef PGASM_LIBFUZZER

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz_driver.hpp"
#include "util/prng.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::vector<std::uint8_t> read_file(const char* path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return bytes;
  std::uint8_t buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return pgasm::util::splitmix64(state_); }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

// One mutation step: pick a strategy, apply it in place. Strategies mirror
// the classic libFuzzer set (bit flips, byte edits, truncation, extension,
// and cross-corpus splices) in miniature.
void mutate(std::vector<std::uint8_t>& input,
            const std::vector<std::vector<std::uint8_t>>& corpus, Rng& rng,
            std::size_t max_len) {
  const int rounds = 1 + static_cast<int>(rng.below(4));
  for (int r = 0; r < rounds; ++r) {
    switch (rng.below(6)) {
      case 0:  // flip one bit
        if (!input.empty()) {
          input[rng.below(input.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      case 1:  // overwrite one byte
        if (!input.empty()) {
          input[rng.below(input.size())] =
              static_cast<std::uint8_t>(rng.next());
        }
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(rng.below(input.size() + 1));
        break;
      case 3: {  // insert a short random run
        const std::size_t n = 1 + rng.below(8);
        if (input.size() + n <= max_len) {
          const std::size_t at = rng.below(input.size() + 1);
          std::vector<std::uint8_t> run(n);
          for (auto& b : run) b = static_cast<std::uint8_t>(rng.next());
          input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                       run.begin(), run.end());
        }
        break;
      }
      case 4: {  // splice a window from another corpus entry
        const auto& other = corpus[rng.below(corpus.size())];
        if (!other.empty() && !input.empty()) {
          const std::size_t from = rng.below(other.size());
          const std::size_t n =
              std::min(1 + rng.below(32), other.size() - from);
          const std::size_t at = rng.below(input.size());
          for (std::size_t i = 0; i < n && at + i < input.size(); ++i) {
            input[at + i] = other[from + i];
          }
        }
        break;
      }
      case 5:  // tweak a byte by +/- small delta (magic-value walking)
        if (!input.empty()) {
          const std::size_t at = rng.below(input.size());
          input[at] = static_cast<std::uint8_t>(
              input[at] + static_cast<std::uint8_t>(1 + rng.below(4)) -
              static_cast<std::uint8_t>(2));
        }
        break;
    }
  }
  if (input.size() > max_len) input.resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iters = env_u64("PGASM_FUZZ_ITERS", 2000);
  const std::uint64_t seed = env_u64("PGASM_FUZZ_SEED", 1);
  const std::size_t max_len =
      static_cast<std::size_t>(env_u64("PGASM_FUZZ_MAX_LEN", 65536));

  std::vector<std::vector<std::uint8_t>> corpus = pgasm_fuzz_seeds();
  for (int i = 1; i < argc; ++i) {
    corpus.push_back(read_file(argv[i]));
  }
  if (corpus.empty()) corpus.emplace_back();

  std::uint64_t executed = 0;
  for (const auto& entry : corpus) {
    LLVMFuzzerTestOneInput(entry.data(), entry.size());
    ++executed;
  }

  Rng rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> input = corpus[rng.below(corpus.size())];
    mutate(input, corpus, rng, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }

  std::printf("fuzz-smoke OK: %llu inputs (seed=%llu, max_len=%zu)\n",
              static_cast<unsigned long long>(executed),
              static_cast<unsigned long long>(seed), max_len);
  return 0;
}

#endif  // PGASM_LIBFUZZER
