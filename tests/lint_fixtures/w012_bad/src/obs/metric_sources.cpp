// Fixture: W012 metric-prefix registration. Three BAD registrations (one
// inside src/obs, which W003 skips but W012 must still cover), one clean,
// one waived.
#include "obs/metrics.hpp"

namespace pgasm::obs {

void fixture_obs_metrics() {
  registry().counter("trace.dropped_events", 0).inc();    // clean: registered
  registry().counter("tracer.dropped_events", 0).inc();   // BAD: typo prefix
  registry().gauge("internal.ring_bytes", 0).set(1);      // BAD: ad-hoc prefix
  // pgasm-lint: allow(metric-prefix): fixture exercises the waiver path
  registry().histogram("scratch.wait_us", 0).observe(1);
}

}  // namespace pgasm::obs
