// Fixture: W012 must also cover instrumentation outside src/obs (here the
// typo'd "cluter." prefix — the classic miss that W012 exists to catch).
#include "obs/metrics.hpp"

namespace pgasm::core {

void fixture_core_metrics() {
  obs::registry().counter("cluter.pairs_aligned", 0).inc();  // BAD: typo
  obs::registry().counter("cluster.pairs_aligned", 0).inc();  // clean
}

}  // namespace pgasm::core
