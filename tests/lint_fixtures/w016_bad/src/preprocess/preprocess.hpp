// Fixture header: declares the unordered member that preprocess.cpp
// iterates — W016 must resolve the declaration through the project
// include graph, not just the iterating file.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace pgasm::preprocess {

struct VectorScreen {
  std::uint32_t k = 12;
  std::unordered_set<std::uint64_t> kmers_;
};

}  // namespace pgasm::preprocess
