// Fixture: the pre-fix RepeatMasker constructor (the real W016 offender
// this check was built from). Both range-fors iterate the unordered k-mer
// count map in hash-bucket order: the histogram fill is a commutative
// integer fold (harmless in isolation) but the repetitive-set build feeds
// the spectrum fingerprint downstream. W016 must flag both, while leaving
// the sorted_items() rewrite and the waived fold alone.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pgasm::preprocess {

void build_spectrum(const std::vector<std::uint64_t>& keys,
                    std::uint32_t threshold,
                    std::unordered_set<std::uint64_t>& repetitive) {
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const std::uint64_t key : keys) ++counts[key];

  std::vector<std::uint64_t> hist(1025, 0);
  for (const auto& [key, count] : counts) {  // BAD: hash-bucket order
    ++hist[std::min<std::size_t>(count, 1024)];
  }

  for (const auto& [key, count] : counts) {  // BAD: hash-bucket order
    if (count >= threshold) repetitive.insert(key);
  }

  // clean: canonical key-ordered snapshot.
  for (const auto& [key, count] : util::sorted_items(counts)) {
    if (count >= threshold) repetitive.insert(key);
  }

  // pgasm-lint: allow(unordered-iter): commutative integer fold, order
  // cannot leak into any output.
  for (const auto& [key, count] : counts) {
    hist[0] += count;  // clean: waived
  }
}

}  // namespace pgasm::preprocess
