// Fixture: the pre-fix spectrum fingerprint — folds over a member whose
// unordered declaration lives in the included header. Membership tests
// and inserts on the same container are order-independent and must stay
// clean.
#include "preprocess/preprocess.hpp"

namespace pgasm::preprocess {

std::uint64_t spectrum_fingerprint(const VectorScreen& screen) {
  std::uint64_t fp = 1469598103934665603ull;
  for (const std::uint64_t kmer : screen.kmers_) {  // BAD: cross-file decl
    fp ^= kmer;
    fp *= 1099511628211ull;
  }
  return fp;
}

bool screen_hit(VectorScreen& screen, std::uint64_t key) {
  screen.kmers_.insert(key);        // clean: insertion, no order observed
  return screen.kmers_.count(key);  // clean: membership test
}

}  // namespace pgasm::preprocess
