// Fixture: the pre-fix LookupFilter stats finalizer — the top-words
// report inherits pairs_by_word_'s hash-bucket order, both through a raw
// range-for and through an explicit .begin() handed to an algorithm.
// The vector member's range-for is a lookalike negative.
#pragma once

#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pgasm::gst {

class LookupFilter {
 public:
  void finalize_stats() {
    for (const auto& [word, pairs] : pairs_by_word_) {  // BAD: report order
      top_words_.emplace_back(word, pairs);
    }
    total_pairs_ = std::accumulate(pairs_by_word_.begin(),  // BAD: .begin()
                                   pairs_by_word_.end(), std::uint64_t{0},
                                   [](std::uint64_t acc, const auto& kv) {
                                     return acc + kv.second;
                                   });
    for (const std::uint64_t word : bucket_word_) {  // clean: vector member
      last_word_ = word;
    }
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> pairs_by_word_;
  std::vector<std::uint64_t> bucket_word_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top_words_;
  std::uint64_t total_pairs_ = 0;
  std::uint64_t last_word_ = 0;
};

}  // namespace pgasm::gst
