// Seeded W013 violations: raw process/shared-memory/socket syscalls
// outside src/vmpi/. `pgasm-lint --only W013` must flag the three BAD
// lines and accept the member-call lookalikes, the namespaced call, and
// the waived line.
#include <csignal>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fixture {

struct Task {
  void kill() {}
  int fork() { return 0; }
};

void bad_syscalls() {
  const int pid = ::fork();                               // BAD: raw fork
  void* shm = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);  // BAD: raw mmap
  if (pid > 0) ::kill(pid, SIGKILL);                      // BAD: raw kill
  (void)shm;
}

void fine() {
  Task t;
  t.kill();        // OK: member call, not the syscall
  (void)t.fork();  // OK: member call
  fixture::Task{}.kill();
  // pgasm-lint: allow(raw-proc): fixture exercises the waiver path
  (void)::socket(AF_UNIX, SOCK_STREAM, 0);  // OK: waived
}

}  // namespace fixture
