// The transport layer itself: every raw syscall here is the point of the
// layer and must NOT be flagged (src/vmpi/ is W013's one exempt subtree).
#include <csignal>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fixture::vmpi {

void transport_owns_the_process_model() {
  const int pid = ::fork();
  if (pid == 0) ::raise(SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  void* shm = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ::munmap(shm, 4096);
}

}  // namespace fixture::vmpi
