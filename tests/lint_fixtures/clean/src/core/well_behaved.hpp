// Negative fixture: annotated locking done right — W007-W010 and W014/W015
// must all stay silent on this file.
#pragma once

namespace fixture {

class Counter {
 public:
  void add(int n);
  int total() const;

 private:
  mutable util::Mutex mu_;
  int total_ PGASM_GUARDED_BY(mu_) = 0;
  // pgasm-lint: allow(raw-atomic): fixture demonstrates the waiver — a
  // monotonic peek counter with no ordering requirements.
  std::atomic<int> peeks_{0};
};

}  // namespace fixture
