// Negative fixture implementation: annotated lock scopes, no blocking comm
// under a lock, exhaustive protocol switches.

#include "core/mini_protocol.hpp"
#include "core/well_behaved.hpp"

namespace fixture {

struct Comm {
  int recv(int, int) { return 0; }
  int send(int, int) { return 0; }
};

void Counter::add(int n) {
  util::MutexLock lock(mu_);
  total_ += n;
}

int Counter::total() const {
  util::MutexLock lock(mu_);
  return total_;
}

int pump(Comm& comm, Counter& c) {
  // Blocking call with no lock held, then a short annotated scope.
  const int v = comm.recv(0, 101);
  c.add(v);
  return v;
}

int dispatch(MsgKind k) {
  switch (k) {
    case MsgKind::kReport:
      return 1;
    case MsgKind::kReply:
      return 2;
  }
  return 0;
}

}  // namespace fixture
