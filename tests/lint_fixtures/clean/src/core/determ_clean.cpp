// Fixture negatives for W016-W019: the full deterministic vocabulary in
// use. Canonical snapshots, membership-only unordered access, fixed-tree
// float reduction, and an explicitly seeded PRNG must all pass the
// determinism gate with zero findings.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pgasm::core {

std::uint64_t fixture_deterministic(const std::vector<std::uint64_t>& keys,
                                    std::uint64_t seed) {
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const std::uint64_t key : keys) ++counts[key];  // clean: vector range

  std::uint64_t fp = 1469598103934665603ull;
  for (const auto& [key, count] : util::sorted_items(counts)) {  // clean
    fp ^= key + count;
    fp *= 1099511628211ull;
  }

  std::unordered_set<std::uint64_t> seen;
  seen.insert(fp);              // clean: insertion only
  const bool hit = seen.count(fp) != 0;  // clean: membership only

  std::vector<double> shares{0.25, 0.5, 0.25};
  const double folded = util::ordered_reduce(std::move(shares));  // clean

  util::Prng prng(seed);  // clean: explicit seed, replayable

  return fp + prng.next() + static_cast<std::uint64_t>(folded) +
         static_cast<std::uint64_t>(hit);
}

}  // namespace pgasm::core
