// Negative fixture: everything in this mini-tree must pass W007-W010 with
// zero findings.
#pragma once

namespace fixture {

enum class MsgKind : int {
  kReport = 101,
  kReply = 102,
};

}  // namespace fixture
