// Fixture: W018 must flag float folds whose combination order is not
// fixed — float-typed cross-rank allreduces, float accumulation inside an
// unordered-container loop, and a float std::accumulate over an unordered
// range. Integer allreduces, ordered_reduce, and the waived fold are
// negatives.
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pgasm::olc {

template <typename Comm>
double fixture_float_folds(Comm& comm, double local_cost,
                           std::vector<float> shares,
                           const std::vector<double>& scores) {
  const double total = comm.template allreduce_sum<double>(local_cost);  // BAD

  shares = comm.template allreduce_vector<float>(  // BAD: float payload
      std::move(shares),
      [](float a, float b) { return a + b; });

  std::unordered_map<std::uint64_t, double> weights;
  weights[1] = 0.25;
  double sum = 0;
  for (const auto& [key, w] : weights) {
    sum += w;  // BAD: float accumulation in hash-bucket order
  }

  const double s = std::accumulate(weights.begin(), weights.end(), 0.0,  // BAD
                                   [](double acc, const auto& kv) {
                                     return acc + kv.second;
                                   });

  // Negatives.
  const std::uint64_t msgs = comm.template allreduce_sum<std::uint64_t>(1);
  const double fixed = util::ordered_reduce(scores, [](double v) { return v; });
  // pgasm-lint: allow(fp-fold): single-rank path, reduction order is fixed
  // by construction.
  const double waived = comm.template allreduce_sum<double>(local_cost);

  return total + sum + s + fixed + waived + static_cast<double>(msgs);
}

}  // namespace pgasm::olc
