// Fixture: W014 must flag default-seq_cst atomic operations and raw
// std::atomic declarations outside the approved concurrency headers,
// while respecting explicit orders, continuation lines, waivers, and the
// non-atomic lookalikes (zero-arg .store() accessors, references,
// shared_ptr wrappers). The bad ops sit two-plus lines away from any
// explicit order so the continuation-line window cannot mask them.
#include <atomic>
#include <memory>

namespace pgasm::core {

std::atomic<int> g_counter{0};  // BAD: raw atomic outside approved headers

// pgasm-lint: allow(raw-atomic): fixture waiver — ordering documented here.
std::atomic<int> g_waived{0};  // clean: waived declaration

struct TreeLike {
  int store_ = 0;
  int store() const { return store_; }  // clean: an accessor, not an atomic
};

int fixture_atomic_ops() {
  int a = g_counter.load();  // BAD: defaults to seq_cst

  g_counter.store(1);  // BAD: defaults to seq_cst

  g_counter.fetch_add(2);  // BAD: defaults to seq_cst

  TreeLike tree;
  int d = tree.store();  // clean: zero-arg accessor, not an atomic store

  int b = g_waived.load(std::memory_order_relaxed);  // clean: explicit
  g_waived.fetch_add(1,
                     std::memory_order_relaxed);  // clean: continuation line
  // pgasm-lint: allow(memory-order): fixture waiver — seq_cst intended.
  int c = g_waived.load();           // clean: waived operation
  std::atomic<int>& ref = g_waived;  // clean: reference, not a declaration
  auto shared = std::make_shared<std::atomic<bool>>(false);  // clean
  return a + b + c + d + ref.load(std::memory_order_relaxed) +
         (shared->load(std::memory_order_acquire) ? 1 : 0);
}

}  // namespace pgasm::core
