// Fixture negative: vmpi/transport.hpp is on the W014 approved list, so a
// raw std::atomic declaration here needs no waiver and must NOT be
// flagged.
#pragma once

#include <atomic>
#include <cstdint>

namespace pgasm::vmpi {

struct FixtureCounters {
  std::atomic<std::uint64_t> messages_dropped{0};  // clean: approved header
};

}  // namespace pgasm::vmpi
