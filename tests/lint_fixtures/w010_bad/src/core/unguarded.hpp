// Seeded W010 violations: a mutex-owning class whose data members carry no
// PGASM_GUARDED_BY annotation. `pgasm-lint --only W010` must flag the two
// BAD members and accept the annotated/atomic/waived ones.
#pragma once

namespace fixture {

class Cache {
 public:
  int get() const;

 private:
  mutable util::Mutex mu_;
  int hits_ = 0;                             // BAD: no guard declared
  double ratio_ = 0.0;                       // BAD: no guard declared
  long total_ PGASM_GUARDED_BY(mu_) = 0;     // OK: annotated
  std::atomic<int> fast_path_{0};            // OK: lock-free by construction
  // pgasm-lint: allow(guard): set once before the cache is shared
  int capacity_ = 0;                         // OK: waived
};

class LockFree {
  // OK: no mutex member, so W010 has nothing to prove here.
  int anything_goes_ = 0;
};

}  // namespace fixture
