// Seeded W007 violations: raw std lock primitives outside the
// util/thread_annotations.hpp shim. Every line marked BAD below must be
// flagged by `pgasm-lint --only W007`.

#include <mutex>
#include <condition_variable>

namespace fixture {

std::mutex g_mu;                 // BAD: raw std::mutex declaration
std::condition_variable g_cv;    // BAD: raw std::condition_variable

void critical() {
  std::lock_guard<std::mutex> lock(g_mu);  // BAD: raw std::lock_guard
  (void)lock;
}

void manual() {
  g_mu.lock();    // BAD: raw .lock() call
  g_mu.unlock();  // BAD: raw .unlock() call
}

// A waived line must NOT be flagged: the waiver documents why the raw
// primitive is unavoidable here.
// pgasm-lint: allow(raw-lock): fixture exercises the waiver path
std::mutex g_waived_mu;

}  // namespace fixture
