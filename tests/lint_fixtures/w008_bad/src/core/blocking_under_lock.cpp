// Seeded W008 violations: blocking vmpi calls while holding an annotated
// lock scope. `pgasm-lint --only W008` must flag the marked lines and
// stay silent on the release()-truncated and after-scope calls.

namespace fixture {

struct Comm {
  int recv(int, int) { return 0; }
  void ssend(int, int) {}
  void barrier() {}
  int send(int, int) { return 0; }  // non-blocking: never flagged
};

struct State {
  // stand-ins; the lexer front-end only needs the spellings
  int mu_ = 0;
};

void bad_recv_under_lock(Comm& comm, State& s) {
  util::MutexLock lock(s.mu_);
  comm.recv(0, 1);  // BAD: blocking recv while 'lock' is held
}

void bad_barrier_under_lock(Comm& comm, State& s) {
  util::MutexLock lock(s.mu_);
  int x = 0;
  (void)x;
  comm.barrier();  // BAD: barrier while 'lock' is held
}

void ok_after_release(Comm& comm, State& s) {
  util::ReleasableMutexLock lock(s.mu_);
  lock.release();
  comm.ssend(0, 1);  // OK: the lock was released first
}

void ok_after_scope(Comm& comm, State& s) {
  {
    util::MutexLock lock(s.mu_);
  }
  comm.recv(0, 1);  // OK: the lock scope already closed
}

void ok_nonblocking_under_lock(Comm& comm, State& s) {
  util::MutexLock lock(s.mu_);
  comm.send(0, 1);  // OK: send() enqueues, it never rendezvouses
}

void ok_waived(Comm& comm, State& s) {
  util::MutexLock lock(s.mu_);
  // pgasm-lint: allow(lock-blocking): fixture exercises the waiver path
  comm.barrier();
}

}  // namespace fixture
