// Seeded W011 violations: raw file writes to checkpoint/manifest paths
// outside core/wire.cpp. `pgasm-lint --only W011` must flag the two BAD
// lines and accept the read-only, unrelated, and waived ones.
#include <cstdio>
#include <fstream>
#include <string>

namespace fixture {

void bad_writes(const std::string& dir) {
  std::ofstream out(dir + "/cluster.ckpt");              // BAD: raw ofstream
  out << "not a frame";
  std::FILE* f = std::fopen("manifest.3.pgmf", "wb");    // BAD: raw fopen
  if (f) std::fclose(f);
}

void fine(const std::string& dir) {
  std::ifstream peek(dir + "/cluster.ckpt");             // OK: read only
  std::fstream ro(dir + "/manifest.1.pgmf", std::ios::in);  // OK: read mode
  std::ofstream log(dir + "/summary.txt");               // OK: not a ckpt
  std::FILE* r = std::fopen("gst.ckpt", "rb");           // OK: read mode
  if (r) std::fclose(r);
  // pgasm-lint: allow(raw-ckpt-write): corruption injection for the test
  std::ofstream evil(dir + "/corrupt_checkpoint.pgck");  // OK: waived
}

}  // namespace fixture
