// Fixture protocol header (the *protocol*.hpp filename is what marks these
// enums as protocol enums for W009).
#pragma once

namespace fixture {

enum class MsgKind : int {
  kReport = 101,
  kReply = 102,
  kPing = 103,
};

enum class MasterState {
  kProbe,
  kFold,
  kTerminate,
};

}  // namespace fixture
