// Seeded W009 violations: non-exhaustive and silent-default switches over
// the fixture protocol enums.

#include "core/mini_protocol.hpp"

namespace fixture {

int bad_missing_case(MsgKind k) {
  switch (k) {  // BAD: kPing has no case
    case MsgKind::kReport:
      return 1;
    case MsgKind::kReply:
      return 2;
  }
  return 0;
}

int bad_silent_default(MasterState s) {
  switch (s) {  // BAD: default swallows new states
    case MasterState::kProbe:
      return 1;
    case MasterState::kFold:
      return 2;
    case MasterState::kTerminate:
      return 3;
    default:
      return -1;
  }
}

int ok_exhaustive(MsgKind k) {
  switch (k) {  // OK: every kind named, no default
    case MsgKind::kReport:
      return 1;
    case MsgKind::kReply:
      return 2;
    case MsgKind::kPing:
      return 3;
  }
  return 0;
}

enum class LocalColor { kRed, kBlue };

int ok_non_protocol_enum(LocalColor c) {
  switch (c) {  // OK: LocalColor is not declared in a *protocol*.hpp
    case LocalColor::kRed:
      return 1;
    default:
      return 0;
  }
}

}  // namespace fixture
