// Fixture: W017 must flag every way a pointer's VALUE leaks into keys,
// hashes, or output — each is an address, different every run under ASLR
// and different per rank under ProcTransport. Integer-keyed containers,
// integer reinterpret_casts, and the waived diagnostic are negatives.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <unordered_map>

namespace pgasm::core {

struct Node {
  std::uint32_t id = 0;
};

void fixture_ptr_identity(const Node* node, std::ostream& os) {
  std::unordered_map<const Node*, int> index;  // BAD: pointer key, hashed
  index[node] = 1;

  std::map<Node*, int> by_addr;  // BAD: ordered by address — still unstable

  const std::size_t h = std::hash<const Node*>{}(node);  // BAD: hashes addr

  const auto token = reinterpret_cast<std::uintptr_t>(node);  // BAD

  std::printf("node at %p\n", static_cast<const void*>(node));  // BAD: %p

  os << static_cast<const void*>(node);  // BAD: streams the address

  // Negatives: stable-id keys and integer casts are fine.
  std::unordered_map<std::uint64_t, int> by_id;  // clean: integer key
  by_id[node->id] = 1;
  const auto widened = static_cast<std::uint64_t>(node->id);  // clean

  // pgasm-lint: allow(ptr-identity): debug-only diagnostic, never reaches
  // any output the determinism gate compares.
  std::fprintf(stderr, "debug node %p\n", static_cast<const void*>(node));

  (void)h;
  (void)token;
  (void)widened;
}

}  // namespace pgasm::core
