#!/usr/bin/env python3
"""Golden fixtures for pgasm-lint W007-W015, protocol_check, and
pgasm-determcheck W016-W019.

Each wNNN_bad/ mini-tree seeds known violations (lines marked BAD) plus
waived/clean lines; the analyzer must flag exactly the seeded count, with
the right check and slug, and exit 1. The clean/ tree must produce zero
findings and exit 0 under both tools. The protocol_bad/ tree (stub
sources missing every handler identifier and state marker) must make
protocol_check exit 1.

Also asserts the --format=json contract: finding IDs are present, carry
the right tool prefix (PL- for lint, PD- for determcheck), are stable
across runs, and unique within a run.

Usage: run_fixtures.py <path-to-pgasm_lint.py> [<path-to-protocol_check>]
                       [<path-to-pgasm_determcheck.py>]
Exit 0 on success, 1 on any expectation failure.
"""

import json
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FAILURES: list[str] = []


def check(cond: bool, what: str) -> None:
    if cond:
        print(f"  ok: {what}")
    else:
        print(f"  FAIL: {what}")
        FAILURES.append(what)


def run_lint(lint: str, fixture: str, only: str) -> tuple[int, dict]:
    proc = subprocess.run(
        [sys.executable, lint, "--root", str(HERE / fixture),
         "--only", only, "--format", "json"],
        capture_output=True, text=True, timeout=120)
    if proc.returncode == 2:
        print(proc.stderr, file=sys.stderr)
        return 2, {}
    return proc.returncode, json.loads(proc.stdout)


def expect_findings(lint: str, fixture: str, only: str, count: int,
                    prefix: str = "PL-") -> dict:
    print(f"{fixture} --only {only}:")
    rc, out = run_lint(lint, fixture, only)
    check(rc == 1, f"exit code 1 (got {rc})")
    got = out.get("count", -1)
    check(got == count, f"{count} findings (got {got})")
    check(all(f["check"] == only for f in out.get("findings", [])),
          f"every finding is {only}")
    ids = [f["id"] for f in out.get("findings", [])]
    check(len(ids) == len(set(ids)), "finding IDs unique within the run")
    check(all(i.startswith(prefix) and len(i) == 15 for i in ids),
          f"finding IDs match {prefix}<12 hex>")
    return out


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    lint = sys.argv[1]
    protocol_check = sys.argv[2] if len(sys.argv) > 2 else None
    determcheck = sys.argv[3] if len(sys.argv) > 3 else None

    # Seeded-violation counts: keep in sync with the BAD markers in each
    # fixture source.
    expect_findings(lint, "w007_bad", "W007", 5)
    expect_findings(lint, "w008_bad", "W008", 2)
    w9 = expect_findings(lint, "w009_bad", "W009", 2)
    check(any("kPing" in f["message"] for f in w9["findings"]),
          "W009 names the missing enumerator kPing")
    check(any("default" in f["message"] for f in w9["findings"]),
          "W009 flags the silent default")
    expect_findings(lint, "w010_bad", "W010", 2)
    expect_findings(lint, "w011_bad", "W011", 2)
    w12 = expect_findings(lint, "w012_bad", "W012", 3)
    check(any("cluter" in f["message"] for f in w12["findings"]),
          "W012 names the typo'd prefix cluter")
    w13 = expect_findings(lint, "w013_bad", "W013", 3)
    check(all(f["path"].startswith("src/core/") for f in w13["findings"]),
          "W013 never flags the src/vmpi/ mini-tree")
    w14 = expect_findings(lint, "w014_bad", "W014", 4)
    slugs = {f["slug"] for f in w14["findings"]}
    check(slugs == {"memory-order", "raw-atomic"},
          f"W014 exercises both slugs (got {sorted(slugs)})")
    check(not any(f["path"].startswith("src/vmpi/")
                  for f in w14["findings"]),
          "W014 never flags the approved src/vmpi/transport.hpp")
    w15 = expect_findings(lint, "w015_bad", "W015", 4)
    check(any("kTagOrphan" in f["message"] for f in w15["findings"]),
          "W015 finds the orphan tag minted far from any table")
    check(any("x2" in f["message"] for f in w15["findings"]),
          "W015 reports the duplicate-row count")

    print("clean --only W007..W010,W014,W015:")
    proc = subprocess.run(
        [sys.executable, lint, "--root", str(HERE / "clean"),
         "--only", "W007", "--only", "W008", "--only", "W009",
         "--only", "W010", "--only", "W014", "--only", "W015",
         "--format", "json"],
        capture_output=True, text=True, timeout=120)
    check(proc.returncode == 0, f"exit code 0 (got {proc.returncode})")
    clean = json.loads(proc.stdout or "{}")
    check(clean.get("count") == 0,
          f"zero findings on the clean tree (got {clean.get('count')})")

    print("ID stability:")
    _, again = run_lint(lint, "w010_bad", "W010")
    _, first = run_lint(lint, "w010_bad", "W010")
    check([f["id"] for f in first["findings"]]
          == [f["id"] for f in again["findings"]],
          "re-running produces identical finding IDs")

    if determcheck:
        # Seeded determinism violations: keep in sync with the BAD markers.
        w16 = expect_findings(determcheck, "w016_bad", "W016", 5, "PD-")
        check({f["slug"] for f in w16["findings"]} == {"unordered-iter"},
              "W016 findings all carry the unordered-iter slug")
        check(any(f["path"].endswith("lookup_filter.hpp")
                  for f in w16["findings"]),
              "W016 catches the pre-fix lookup_filter iteration")
        w17 = expect_findings(determcheck, "w017_bad", "W017", 6, "PD-")
        check({f["slug"] for f in w17["findings"]} == {"ptr-identity"},
              "W017 findings all carry the ptr-identity slug")
        w18 = expect_findings(determcheck, "w018_bad", "W018", 4, "PD-")
        check({f["slug"] for f in w18["findings"]} == {"fp-fold"},
              "W018 findings all carry the fp-fold slug")
        w19 = expect_findings(determcheck, "w019_bad", "W019", 5, "PD-")
        check({f["slug"] for f in w19["findings"]} == {"entropy"},
              "W019 findings all carry the entropy slug")
        check(not any(f["path"].startswith("src/vmpi/")
                      for f in w19["findings"]),
              "W019 never flags the approved src/vmpi/ mini-tree")

        print("clean under determcheck (all of W016-W019):")
        proc = subprocess.run(
            [sys.executable, determcheck, "--root", str(HERE / "clean"),
             "--format", "json"],
            capture_output=True, text=True, timeout=120)
        check(proc.returncode == 0,
              f"exit code 0 (got {proc.returncode})")
        dclean = json.loads(proc.stdout or "{}")
        check(dclean.get("count") == 0,
              f"zero determ findings on the clean tree "
              f"(got {dclean.get('count')})")

        print("determcheck ID stability:")
        _, dfirst = run_lint(determcheck, "w016_bad", "W016")
        _, dagain = run_lint(determcheck, "w016_bad", "W016")
        check([f["id"] for f in dfirst["findings"]]
              == [f["id"] for f in dagain["findings"]],
              "re-running determcheck produces identical finding IDs")
    else:
        print("pgasm_determcheck.py not supplied; skipping W016-W019")

    if protocol_check:
        print("protocol_bad via protocol_check:")
        proc = subprocess.run(
            [protocol_check, str(HERE / "protocol_bad")],
            capture_output=True, text=True, timeout=120)
        check(proc.returncode == 1,
              f"exit code 1 on stub sources (got {proc.returncode})")
        check("marker" in proc.stderr,
              "protocol_check names the missing state markers")
        check("no such identifier" in proc.stderr,
              "protocol_check names the missing handler identifiers")
    else:
        print("protocol_check binary not supplied; skipping protocol_bad")

    if FAILURES:
        print(f"\n{len(FAILURES)} fixture expectation(s) failed")
        return 1
    print("\nall fixture expectations hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
