// protocol_bad fixture stub: deliberately missing the send/recv forms and
// handler identifiers that protocol_check verifies for the GST protocol.
