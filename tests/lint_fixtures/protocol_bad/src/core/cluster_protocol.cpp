// protocol_bad fixture stub: deliberately missing the codec/handler
// identifiers and [MasterState::k*] markers that protocol_check verifies.
