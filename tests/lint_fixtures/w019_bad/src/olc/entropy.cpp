// Fixture: W019 must flag hardware entropy, the rand() family, std
// engines, and raw time reads feeding algorithmic code — while leaving
// the explicitly seeded util::Prng and the waived observation-only read
// alone. src/vmpi/ (the transport deadline layer) is exercised by the
// sibling mini-tree file and must never be flagged.
#include <chrono>
#include <cstdint>
#include <ctime>
#include <random>

namespace pgasm::olc {

std::uint64_t fixture_entropy(std::uint64_t seed, int candidates) {
  std::random_device rd;  // BAD: hardware entropy

  std::mt19937 gen(seed);  // BAD: std engine, use util::Prng

  const int pick = rand() % candidates;  // BAD: libc PRNG, process-global

  const auto t0 = std::chrono::steady_clock::now();  // BAD: raw clock read

  const auto salt = static_cast<std::uint64_t>(time(nullptr));  // BAD

  // Negatives: explicit-seed project PRNG, and a waived wall-clock read.
  util::Prng prng(seed);  // clean: deterministic, explicitly seeded
  // pgasm-lint: allow(entropy): log-only timestamp, value never branches.
  const auto logged = std::chrono::steady_clock::now();

  (void)rd;
  (void)t0;
  (void)logged;
  return prng.next() + static_cast<std::uint64_t>(pick) + salt +
         static_cast<std::uint64_t>(gen());
}

}  // namespace pgasm::olc
