// Fixture negative: the transport layer's deadline arithmetic reads the
// clock by design (recv_timeout / probe_timeout); W019 must never flag
// src/vmpi/, mirroring the W008/W013 exemption.
#include <chrono>

namespace pgasm::vmpi {

bool fixture_deadline_passed(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() >= deadline;  // clean: approved
}

}  // namespace pgasm::vmpi
