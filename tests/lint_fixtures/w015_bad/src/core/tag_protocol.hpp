// Fixture: W015 must flag wire tags without exactly one protocol-table
// row — no row at all (kTagGamma), duplicate rows in one table (kTagBeta),
// rows in two tables (kTagDual) — while accepting the well-formed
// kTagAlpha.
#pragma once

#include <cstdint>

namespace fixture {

enum class MiniMsgKind : std::uint8_t {
  kAlpha = 50,
  kBeta = 51,
  kGamma = 52,
  kDual = 53,
};

struct MiniMsgSpec {
  MiniMsgKind kind;
  const char* name;
};

inline constexpr MiniMsgSpec kMiniProtocol[] = {
    {MiniMsgKind::kAlpha, "alpha"},
    {MiniMsgKind::kBeta, "beta"},
    {MiniMsgKind::kBeta, "beta_retry"},
    {MiniMsgKind::kDual, "dual"},
};

inline constexpr MiniMsgSpec kOtherProtocol[] = {
    {MiniMsgKind::kDual, "dual_again"},
};

inline constexpr int kTagAlpha = 50;  // clean: exactly one row, one table
inline constexpr int kTagBeta = 51;   // BAD: two rows in kMiniProtocol
inline constexpr int kTagGamma = 52;  // BAD: no row in any table
inline constexpr int kTagDual = 53;   // BAD: rows in two tables

}  // namespace fixture
