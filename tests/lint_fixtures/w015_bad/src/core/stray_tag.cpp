// Fixture: a wire tag minted in a .cpp far from any protocol table — the
// exact drift W015 exists to catch (the FT-GST tags lived like this
// before src/gst/gst_protocol.hpp).
namespace fixture {

constexpr int kTagOrphan = 99;  // BAD: no table row anywhere

int fixture_uses_tag() { return kTagOrphan; }

}  // namespace fixture
