// Tests for clone-mate simulation and scaffolding.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "olc/assembler.hpp"
#include "olc/scaffold.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using olc::Contig;
using olc::MateLink;
using olc::Placement;
using olc::scaffold;
using olc::ScaffoldParams;

/// Hand-built contig with given length and fragment placements.
Contig make_contig(std::uint64_t len,
                   std::vector<Placement> layout = {}) {
  Contig c;
  c.consensus.assign(len, seq::kA);
  if (layout.empty()) {
    // Ensure at least one placement so it is not a "singleton" artifact.
    layout.push_back(Placement{0, false, 0, static_cast<std::uint32_t>(len)});
  }
  c.layout = std::move(layout);
  return c;
}

TEST(MateSim, GeometryAndTruth) {
  const auto g = sim::simulate_genome(sim::shotgun_like(40'000, 61));
  util::Prng rng(62);
  sim::ReadSet rs;
  std::vector<sim::MatePair> mates;
  sim::ReadParams rp;
  rp.errors = {};
  rp.errors.sub_rate = 0;
  rp.errors.ins_rate = 0;
  rp.errors.del_rate = 0;
  rp.vector_contam_prob = 0;
  sim::sample_mate_pairs(rs, mates, g, 50, 3000, 300, rp, rng);
  ASSERT_GT(mates.size(), 30u);
  for (const auto& m : mates) {
    const auto& ta = rs.truth[m.read_a];
    const auto& tb = rs.truth[m.read_b];
    EXPECT_FALSE(ta.rc);  // 5' read genome-forward
    EXPECT_TRUE(tb.rc);   // 3' read genome-reverse
    EXPECT_EQ(tb.end - ta.begin, m.insert_len);  // clone spans the insert
    EXPECT_GE(m.insert_len, 2700u);
    EXPECT_LE(m.insert_len, 3300u);
  }
}

TEST(Scaffold, TwoContigsForwardForward) {
  // Contig 0 [0,1000) and contig 1 [1500,2500) on the genome; clone insert
  // 1200 from read A (contig 0, offset 600, fwd) to read B (contig 1,
  // offset 100, placed flipped because the read was sequenced genome-
  // reverse and the contig is genome-forward).
  std::vector<Contig> contigs;
  contigs.push_back(make_contig(1000, {{0, false, 600, 100}}));
  contigs.push_back(make_contig(1000, {{1, true, 100, 100}}));
  // Genome: A starts 600; B spans [1600,1700) genome-forward, i.e. B's end
  // is 1700; insert = 1700 - 600 = 1100. Gap between contigs = 500.
  std::vector<MateLink> links(3, MateLink{0, 1, 1100});
  ScaffoldParams params;
  params.min_links = 2;
  const auto result = scaffold(contigs, links, params);
  ASSERT_EQ(result.scaffolds.size(), 1u);
  const auto& sc = result.scaffolds[0];
  ASSERT_EQ(sc.entries.size(), 2u);
  // Order 0 then 1 (or mirrored 1 then 0 with both flipped).
  const bool fwd_order = sc.entries[0].contig == 0;
  if (fwd_order) {
    EXPECT_FALSE(sc.entries[0].flip);
    EXPECT_FALSE(sc.entries[1].flip);
  } else {
    EXPECT_TRUE(sc.entries[0].flip);
    EXPECT_TRUE(sc.entries[1].flip);
  }
  // Implied gap: D = a_start + insert - b_end = 600+1100-200 = 1500;
  // gap = D - len(contig0) = 500.
  EXPECT_NEAR(static_cast<double>(sc.entries[1].gap_before), 500, 1);
  EXPECT_EQ(sc.span(contigs), 2500u);
}

TEST(Scaffold, RequiresMinimumLinks) {
  std::vector<Contig> contigs;
  contigs.push_back(make_contig(1000, {{0, false, 600, 100}}));
  contigs.push_back(make_contig(1000, {{1, true, 100, 100}}));
  std::vector<MateLink> links = {{0, 1, 1100}};  // a single link
  ScaffoldParams params;
  params.min_links = 2;
  const auto result = scaffold(contigs, links, params);
  EXPECT_EQ(result.scaffolds.size(), 2u);  // not joined
  EXPECT_EQ(result.num_multi(), 0u);
}

TEST(Scaffold, DisagreeingLinksDoNotBundle) {
  std::vector<Contig> contigs;
  contigs.push_back(make_contig(1000, {{0, false, 600, 100}}));
  contigs.push_back(make_contig(1000, {{1, true, 100, 100}}));
  // Two links implying wildly different gaps: no agreeing window of 2.
  std::vector<MateLink> links = {{0, 1, 1100}, {0, 1, 4000}};
  ScaffoldParams params;
  params.min_links = 2;
  params.gap_tolerance = 300;
  const auto result = scaffold(contigs, links, params);
  EXPECT_EQ(result.num_multi(), 0u);
}

TEST(Scaffold, IntraContigAndUnplacedCounted) {
  std::vector<Contig> contigs;
  contigs.push_back(make_contig(1000, {{0, false, 0, 100},
                                       {1, false, 500, 100}}));
  std::vector<MateLink> links = {{0, 1, 700},   // both in contig 0
                                 {0, 99, 700}}; // 99 unplaced
  const auto result = scaffold(contigs, links, ScaffoldParams{});
  EXPECT_EQ(result.stats.links_intra_contig, 1u);
  EXPECT_EQ(result.stats.links_unplaced, 1u);
}

TEST(Scaffold, ChainOfThree) {
  // Three contigs in genome order 0-1-2, gaps 300 each, all forward.
  std::vector<Contig> contigs;
  contigs.push_back(make_contig(1000, {{0, false, 700, 100}}));
  contigs.push_back(make_contig(1000, {{1, true, 200, 100},
                                       {2, false, 700, 100}}));
  contigs.push_back(make_contig(1000, {{3, true, 200, 100}}));
  // Clone A: contig0 read at 700 fwd -> contig1 read [1500,1600) genome
  // (contig1 starts at genome 1300): insert = (1300+200+100) - 700 = 900.
  // Clone B: contig1 read at 700 fwd (genome 2000) -> contig2 read at
  // genome [2800,2900): insert = 2900 - 2000 = 900.
  std::vector<MateLink> links = {{0, 1, 900}, {0, 1, 900},
                                 {2, 3, 900}, {2, 3, 900}};
  const auto result = scaffold(contigs, links, ScaffoldParams{});
  ASSERT_EQ(result.scaffolds.size(), 1u);
  ASSERT_EQ(result.scaffolds[0].entries.size(), 3u);
  // Monotone chain 0-1-2 in some direction.
  std::vector<std::uint32_t> order;
  for (const auto& e : result.scaffolds[0].entries) order.push_back(e.contig);
  const bool fwd = order == std::vector<std::uint32_t>{0, 1, 2};
  const bool rev = order == std::vector<std::uint32_t>{2, 1, 0};
  EXPECT_TRUE(fwd || rev);
  EXPECT_NEAR(static_cast<double>(result.scaffolds[0].entries[1].gap_before),
              300, 1);
}

TEST(Scaffold, EndToEndRecoversGenomeOrder) {
  // Genome with unclonable gaps -> several contigs; mates (insert 3000,
  // longer than any gap) must chain them back in genome order.
  sim::GenomeParams gp = sim::shotgun_like(30'000, 71);
  gp.repeat_families.clear();  // keep the assembly itself easy
  gp.unclonable_fraction = 0.03;
  const auto g = sim::simulate_genome(gp);
  util::Prng rng(72);
  sim::ReadSet rs;
  std::vector<sim::MatePair> mates;
  sim::ReadParams rp;
  rp.len_mean = 400;
  rp.len_spread = 80;
  rp.errors.sub_rate = 0.003;
  rp.errors.ins_rate = 0.0005;
  rp.errors.del_rate = 0.0005;
  rp.vector_contam_prob = 0;
  sim::sample_wgs(rs, g, 6.0, rp, rng);
  sim::sample_mate_pairs(rs, mates, g, 120, 3000, 300, rp, rng);

  olc::AssemblyParams ap;
  ap.overlap.min_identity = 0.95;
  const auto assembly = olc::assemble(rs.store, ap);
  ASSERT_GE(assembly.num_multi_contigs(), 2u);

  std::vector<MateLink> links;
  for (const auto& m : mates)
    links.push_back(MateLink{m.read_a, m.read_b, m.insert_len});
  const auto result = scaffold(assembly.contigs, links, ScaffoldParams{});
  EXPECT_GE(result.num_multi(), 1u);
  // Scaffold spans exceed contig N50: joining happened.
  EXPECT_GE(result.span_n50(assembly.contigs), assembly.n50());

  // Contig order within each scaffold must be monotone in true genome
  // coordinates (either direction).
  auto contig_truth_pos = [&](const Contig& c) {
    double sum = 0;
    for (const auto& pl : c.layout) sum += rs.truth[pl.fragment].begin;
    return sum / c.layout.size();
  };
  for (const auto& sc : result.scaffolds) {
    if (sc.entries.size() < 2) continue;
    std::vector<double> pos;
    for (const auto& e : sc.entries)
      pos.push_back(contig_truth_pos(assembly.contigs[e.contig]));
    const bool inc = std::is_sorted(pos.begin(), pos.end());
    const bool dec = std::is_sorted(pos.rbegin(), pos.rend());
    EXPECT_TRUE(inc || dec) << "scaffold order not genome-monotone";
  }
}

}  // namespace
}  // namespace pgasm
