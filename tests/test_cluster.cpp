// Tests for the clustering framework: wire format, serial clustering vs a
// brute-force overlap-graph reference, order independence (transitive
// closure), and parallel == serial.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/parallel_cluster.hpp"
#include "core/serial_cluster.hpp"
#include "core/wire.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using core::ClusterParams;
using core::cluster_parallel;
using core::cluster_serial;

/// Build a read set sampled from a synthetic genome so real overlaps exist.
seq::FragmentStore sampled_reads(util::Prng& rng, std::size_t genome_len,
                                 std::size_t n_reads, std::size_t read_len,
                                 double err = 0.01) {
  const auto genome = test::random_dna(rng, genome_len);
  seq::FragmentStore store;
  for (std::size_t i = 0; i < n_reads; ++i) {
    const std::size_t start = rng.below(genome_len - read_len);
    std::vector<seq::Code> read(genome.begin() + start,
                                genome.begin() + start + read_len);
    for (auto& c : read) {
      if (rng.chance(err)) c = static_cast<seq::Code>((c + 1 + rng.below(3)) % 4);
    }
    if (rng.chance(0.5)) read = seq::reverse_complement(read);
    store.add(read);
  }
  return store;
}

ClusterParams small_params() {
  ClusterParams p;
  p.psi = 12;
  p.overlap.min_overlap = 30;
  p.overlap.min_identity = 0.9;
  p.overlap.band = 8;
  p.batch_size = 16;
  return p;
}

/// Compare two partitions of [0, n) for equality up to label renaming.
void expect_same_partition(const util::UnionFind& a, const util::UnionFind& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto la = a.labels();
  const auto lb = b.labels();
  std::map<std::uint32_t, std::uint32_t> fwd, bwd;
  for (std::size_t i = 0; i < la.size(); ++i) {
    auto [itf, newf] = fwd.insert({la[i], lb[i]});
    EXPECT_EQ(itf->second, lb[i]) << "element " << i;
    auto [itb, newb] = bwd.insert({lb[i], la[i]});
    EXPECT_EQ(itb->second, la[i]) << "element " << i;
  }
}

TEST(Wire, ReportRoundTrip) {
  core::WorkerReport r;
  core::ResultMsg m1;
  m1.frag_a = 1;
  m1.frag_b = 2;
  m1.delta = -37;
  m1.accepted = 1;
  m1.rc_a = 0;
  m1.rc_b = 1;
  core::ResultMsg m2;
  m2.frag_a = 3;
  m2.frag_b = 4;
  r.results = {m1, m2};
  r.new_pairs = {{10, 5, 20, 7, 31}};
  r.progress = {{1, 0, 940}, {3, 1, 12}};
  r.exhausted = 1;
  const auto bytes = core::encode_report(r);
  const auto back = core::decode_report(bytes);
  ASSERT_EQ(back.results.size(), 2u);
  EXPECT_EQ(back.results[1].frag_a, 3u);
  EXPECT_EQ(back.results[0].accepted, 1u);
  EXPECT_EQ(back.results[0].delta, -37);
  EXPECT_EQ(back.results[0].rc_b, 1u);
  EXPECT_EQ(back.results[1].accepted, 0u);
  ASSERT_EQ(back.new_pairs.size(), 1u);
  EXPECT_EQ(back.new_pairs[0].match_len, 31u);
  ASSERT_EQ(back.progress.size(), 2u);
  EXPECT_EQ(back.progress[0].emitted, 940u);
  EXPECT_EQ(back.progress[1].role, 3u);
  EXPECT_EQ(back.progress[1].done, 1u);
  EXPECT_EQ(back.exhausted, 1);
}

TEST(Wire, ReplyRoundTrip) {
  core::MasterReply r;
  r.batch = {{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}};
  r.takeovers = {{2, 0, 4096}};
  r.request_r = 777;
  r.terminate = 0;
  const auto back = core::decode_reply(core::encode_reply(r));
  ASSERT_EQ(back.batch.size(), 2u);
  EXPECT_EQ(back.batch[1].seq_a, 6u);
  ASSERT_EQ(back.takeovers.size(), 1u);
  EXPECT_EQ(back.takeovers[0].role, 2u);
  EXPECT_EQ(back.takeovers[0].resume_at, 4096u);
  EXPECT_EQ(back.request_r, 777u);
  EXPECT_EQ(back.terminate, 0);
}

TEST(Wire, RejectsTruncated) {
  core::WorkerReport r;
  r.new_pairs = {{1, 2, 3, 4, 5}};
  auto bytes = core::encode_report(r);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(core::decode_report(bytes), std::runtime_error);
}

TEST(SerialCluster, TwoIslandsSeparate) {
  util::Prng rng(42);
  // Two disjoint genomic islands; reads within an island overlap.
  auto a = sampled_reads(rng, 600, 15, 120, 0.005);
  auto b = sampled_reads(rng, 600, 15, 120, 0.005);
  seq::FragmentStore store;
  for (std::uint32_t i = 0; i < a.size(); ++i) store.add(a.seq(i));
  for (std::uint32_t i = 0; i < b.size(); ++i) store.add(b.seq(i));

  const auto result = cluster_serial(store, small_params());
  // No cluster mixes reads from island a (< 15) and island b (>= 15).
  const auto labels = result.clusters.labels();
  std::map<std::uint32_t, std::set<bool>> members;
  for (std::uint32_t i = 0; i < store.size(); ++i)
    members[labels[i]].insert(i >= 15);
  for (const auto& [lbl, sides] : members) {
    EXPECT_EQ(sides.size(), 1u) << "cluster mixes islands";
  }
  // Dense 10x coverage of a 600 bp island: expect heavy merging.
  EXPECT_LT(result.clusters.num_sets(), store.size());
  EXPECT_GT(result.stats.pairs_generated, 0u);
  EXPECT_GE(result.stats.pairs_generated, result.stats.pairs_aligned);
  EXPECT_GE(result.stats.pairs_aligned, result.stats.pairs_accepted);
  EXPECT_EQ(result.stats.merges,
            store.size() - result.clusters.num_sets());
}

TEST(SerialCluster, MatchesBruteForceOverlapClosure) {
  util::Prng rng(7);
  const auto store = sampled_reads(rng, 900, 24, 110, 0.01);
  const auto params = small_params();
  const auto result = cluster_serial(store, params);

  // Reference: enumerate all maximal matches on the doubled store, apply
  // the same banded anchored accept test to every occurrence, and take the
  // transitive closure. The greedy skip of already-clustered pairs cannot
  // change the closure (Section 4).
  const auto doubled = seq::make_doubled_store(store);
  const auto matches = test::brute_force_maximal_matches(doubled, params.psi);
  util::UnionFind ref(store.size());
  for (const auto& [qa, pa, qb, pb, len] : matches) {
    const std::uint32_t fa = qa >> 1, fb = qb >> 1;
    if (fa == fb) continue;
    if (core::pair_overlaps(doubled, qa, pa, qb, pb, params.overlap)) {
      ref.unite(fa, fb);
    }
  }
  expect_same_partition(result.clusters, ref);
}

TEST(SerialCluster, OrderIndependence) {
  util::Prng rng(19);
  const auto store = sampled_reads(rng, 800, 20, 100, 0.01);
  auto params = small_params();
  params.ordered = true;
  const auto a = cluster_serial(store, params);
  params.ordered = false;
  const auto b = cluster_serial(store, params);
  expect_same_partition(a.clusters, b.clusters);
  // The heuristic order must not align more pairs than the shuffled order
  // ... on average; for a fixed seed just check both computed something.
  EXPECT_EQ(a.stats.pairs_generated, b.stats.pairs_generated);
}

TEST(SerialCluster, RcOnlyOverlapJoins) {
  util::Prng rng(3);
  const auto genome = test::random_dna(rng, 300);
  seq::FragmentStore store;
  store.add(std::vector<seq::Code>(genome.begin(), genome.begin() + 150));
  store.add(seq::reverse_complement(
      std::vector<seq::Code>(genome.begin() + 100, genome.begin() + 250)));
  const auto result = cluster_serial(store, small_params());
  EXPECT_EQ(result.clusters.num_sets(), 1u);
}

TEST(SerialCluster, EmptyAndSingleton) {
  seq::FragmentStore empty;
  const auto r0 = cluster_serial(empty, small_params());
  EXPECT_EQ(r0.clusters.num_sets(), 0u);

  seq::FragmentStore one;
  one.add_ascii("ACGTACGTACGTACGTACGTACGTACGT");
  const auto r1 = cluster_serial(one, small_params());
  EXPECT_EQ(r1.clusters.num_sets(), 1u);
  EXPECT_EQ(r1.stats.pairs_generated, 0u);
}

class ParallelCluster : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCluster, MatchesSerialPartition) {
  const int ranks = GetParam();
  util::Prng rng(1001);
  const auto store = sampled_reads(rng, 1200, 40, 110, 0.01);
  const auto params = small_params();

  const auto serial = cluster_serial(store, params);
  const auto parallel = cluster_parallel(store, params, ranks);
  expect_same_partition(serial.clusters, parallel.clusters);

  // Same pair universe: the union of worker streams is the serial stream.
  EXPECT_EQ(parallel.stats.pairs_generated, serial.stats.pairs_generated);
  // Both heuristics save work (staleness may differ, savings must exist
  // on this densely overlapping input).
  EXPECT_LT(parallel.stats.pairs_aligned, parallel.stats.pairs_generated);
  EXPECT_GT(parallel.stats.pairs_accepted, 0u);
}

TEST_P(ParallelCluster, CostLedgersPopulated) {
  const int ranks = GetParam();
  util::Prng rng(31);
  const auto store = sampled_reads(rng, 700, 24, 100, 0.01);
  const auto result = cluster_parallel(store, small_params(), ranks);
  ASSERT_EQ(result.cost.per_rank.size(), static_cast<std::size_t>(ranks));
  EXPECT_GT(result.cost.total_msgs(), 0u);
  EXPECT_GT(result.cost.modeled_parallel_seconds(), 0.0);
  EXPECT_GE(result.stats.master_availability, 0.0);
  EXPECT_LE(result.stats.master_availability, 1.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelCluster,
                         ::testing::Values(2, 3, 5, 8));

TEST(ParallelClusterEdge, RejectsOneRank) {
  seq::FragmentStore store;
  store.add_ascii("ACGTACGTACGTACGTACGT");
  EXPECT_THROW(cluster_parallel(store, small_params(), 1),
               std::invalid_argument);
}

TEST(ParallelClusterEdge, NoOverlapsTerminates) {
  // Fragments with nothing in common: workers exhaust immediately.
  seq::FragmentStore store;
  store.add_ascii("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
  store.add_ascii("CCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCC");
  store.add_ascii("GAGAGAGAGAGAGAGAGAGAGAGAGAGAGAGA");
  const auto result = cluster_parallel(store, small_params(), 3);
  EXPECT_EQ(result.clusters.num_sets(), 3u);
  EXPECT_EQ(result.stats.pairs_accepted, 0u);
}

TEST(ParallelClusterEdge, SsendAblationSamePartition) {
  util::Prng rng(8);
  const auto store = sampled_reads(rng, 900, 24, 100, 0.01);
  auto params = small_params();
  params.use_ssend = true;
  const auto a = cluster_parallel(store, params, 4);
  params.use_ssend = false;
  const auto b = cluster_parallel(store, params, 4);
  expect_same_partition(a.clusters, b.clusters);
}

}  // namespace
}  // namespace pgasm
