// Tests for the allocation-free alignment workspace and the shared overlap
// engine: dirty-buffer reuse must be bit-identical to fresh-memory runs,
// the banded workspace kernel must match both its allocating reference and
// the full matrix at covering bands, and the workspace's own allocation
// accounting must show zero growth after warmup.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "align/linear_space.hpp"
#include "align/overlap.hpp"
#include "align/pairwise.hpp"
#include "align/workspace.hpp"
#include "core/cluster_params.hpp"
#include "core/overlap_engine.hpp"
#include "seq/fragment_store.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using align::AlignOptions;
using align::OverlapParams;
using align::Scoring;
using align::Workspace;

void expect_same_result(const align::OverlapResult& x,
                        const align::OverlapResult& y) {
  EXPECT_EQ(x.aln.score, y.aln.score);
  EXPECT_EQ(x.aln.a_begin, y.aln.a_begin);
  EXPECT_EQ(x.aln.a_end, y.aln.a_end);
  EXPECT_EQ(x.aln.b_begin, y.aln.b_begin);
  EXPECT_EQ(x.aln.b_end, y.aln.b_end);
  EXPECT_EQ(x.aln.matches, y.aln.matches);
  EXPECT_EQ(x.aln.columns, y.aln.columns);
  EXPECT_EQ(x.aln.ops, y.aln.ops);
  EXPECT_EQ(x.type, y.type);
}

/// A stream of overlap-ish pairs with wildly varying shapes, so a reused
/// workspace is exercised with shrinking extents (stale garbage beyond the
/// live range) as well as growing ones.
struct PairCase {
  std::vector<seq::Code> a, b;
  std::int32_t shift;
};

std::vector<PairCase> varied_pairs(std::uint64_t seed) {
  util::Prng rng(seed);
  std::vector<PairCase> cases;
  const std::size_t lens[] = {3, 200, 17, 90, 1, 350, 40, 8, 260, 55};
  for (std::size_t i = 0; i < 40; ++i) {
    PairCase c;
    const std::size_t la = lens[i % 10] + rng.below(20);
    const std::size_t lb = lens[(i + 3) % 10] + rng.below(20);
    c.a = test::random_dna(rng, la);
    c.b = test::random_dna(rng, lb);
    // Half the cases get a genuine overlap so acceptance paths vary.
    const std::size_t ov = std::min({la / 2, lb / 2, std::size_t{60}});
    for (std::size_t j = 0; j < ov; ++j) c.b[j] = c.a[la - ov + j];
    c.shift = -static_cast<std::int32_t>(la - ov) +
              static_cast<std::int32_t>(rng.below(7)) - 3;
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(Workspace, DirtyBandedReuseMatchesAllocatingReference) {
  const Scoring sc;
  const AlignOptions opts{.keep_ops = true};
  Workspace ws;  // persistent and dirty across all cases
  for (const std::uint32_t band : {1u, 4u, 12u, 33u}) {
    for (const PairCase& c : varied_pairs(7 + band)) {
      const auto got =
          align::banded_overlap_align(c.a, c.b, sc, c.shift, band, ws, opts);
      const auto want = align::banded_overlap_align_reference(
          c.a, c.b, sc, c.shift, band, opts);
      expect_same_result(got, want);
    }
  }
}

TEST(Workspace, DirtyFullOverlapReuseMatchesFreshWorkspace) {
  const Scoring sc;
  const AlignOptions opts{.keep_ops = true};
  Workspace reused;
  for (const PairCase& c : varied_pairs(99)) {
    const auto got = align::overlap_align(c.a, c.b, sc, reused, opts);
    Workspace fresh;
    const auto want = align::overlap_align(c.a, c.b, sc, fresh, opts);
    expect_same_result(got, want);
  }
}

TEST(Workspace, DirtyGlobalReuseMatchesFreshWorkspace) {
  const Scoring sc;
  const AlignOptions opts{.keep_ops = true};
  Workspace reused;
  util::Prng rng(1234);
  for (int i = 0; i < 30; ++i) {
    const auto a = test::random_dna(rng, 1 + rng.below(120));
    const auto b = test::random_dna(rng, 1 + rng.below(120));
    const auto got = align::global_align(a, b, sc, reused, opts);
    const auto want = align::global_align(a, b, sc, opts);
    EXPECT_EQ(got.score, want.score);
    EXPECT_EQ(got.ops, want.ops);
    EXPECT_EQ(got.matches, want.matches);
    EXPECT_EQ(got.columns, want.columns);
  }
}

TEST(Workspace, DirtyHirschbergReuseMatchesFresh) {
  const Scoring sc;
  Workspace reused;
  util::Prng rng(555);
  for (int i = 0; i < 20; ++i) {
    const auto a = test::random_dna(rng, 1 + rng.below(150));
    const auto b = test::random_dna(rng, 1 + rng.below(150));
    const auto got = align::hirschberg_align(a, b, sc, reused);
    const auto want = align::hirschberg_align(a, b, sc);
    EXPECT_EQ(got.score, want.score);
    EXPECT_EQ(got.ops, want.ops);
  }
}

TEST(Workspace, BandedEqualsFullAtCoveringBand) {
  const Scoring sc;
  const AlignOptions opts{.keep_ops = true};
  Workspace ws;
  util::Prng rng(31);
  for (int i = 0; i < 25; ++i) {
    const auto a = test::random_dna(rng, 5 + rng.below(80));
    const auto b = test::random_dna(rng, 5 + rng.below(80));
    // A band wide enough to cover every cell from the zero-shift diagonal.
    const std::uint32_t band =
        static_cast<std::uint32_t>(a.size() + b.size() + 2);
    const auto banded =
        align::banded_overlap_align(a, b, sc, 0, band, ws, opts);
    const auto full = align::overlap_align(a, b, sc, ws, opts);
    expect_same_result(banded, full);
  }
}

TEST(Workspace, NoAllocationsAfterWarmup) {
  const Scoring sc;
  Workspace ws;
  util::Prng rng(8);
  const auto a = test::random_dna(rng, 400);
  const auto b = test::random_dna(rng, 380);
  (void)align::banded_overlap_align(a, b, sc, -300, 16, ws);  // warmup
  ws.reset_stats();
  for (int i = 0; i < 50; ++i) {
    (void)align::banded_overlap_align(a, b, sc, -300, 16, ws);
  }
  EXPECT_EQ(ws.allocations(), 0u);
  EXPECT_GT(ws.allocations_avoided(), 0u);
  EXPECT_GT(ws.bytes_in_use(), 0u);
  EXPECT_GE(ws.bytes_reserved(), ws.bytes_in_use());

  // Smaller shapes after warmup are served entirely from capacity too.
  const auto a2 = test::random_dna(rng, 60);
  const auto b2 = test::random_dna(rng, 50);
  ws.reset_stats();
  (void)align::banded_overlap_align(a2, b2, sc, -20, 8, ws);
  (void)align::overlap_align(a2, b2, sc, ws);
  EXPECT_EQ(ws.allocations(), 0u);
}

TEST(OverlapEngine, MatchesReferenceKernelOnStorePairs) {
  util::Prng rng(42);
  seq::FragmentStore store;
  // Fragments with planted suffix-prefix overlaps.
  auto base = test::random_dna(rng, 500);
  for (int i = 0; i < 6; ++i) {
    const std::size_t at = static_cast<std::size_t>(i) * 70;
    std::vector<seq::Code> frag(base.begin() + at, base.begin() + at + 150);
    store.add(frag, seq::FragType::kWGS, "f" + std::to_string(i));
  }
  const auto doubled = seq::make_doubled_store(store);
  OverlapParams params;
  params.min_overlap = 40;
  params.min_identity = 0.9;
  params.band = 8;

  core::OverlapEngine engine(doubled, params);
  std::vector<core::PairMsg> batch;
  for (std::uint32_t i = 0; i + 1 < 6; ++i) {
    // Consecutive fragments overlap by 80 bp: the maximal match anchors at
    // (70, 0) in forward orientation (doubled ids are 2*frag).
    batch.push_back(core::PairMsg{2 * i, 70, 2 * (i + 1), 0, 80});
  }
  const auto results = engine.run(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(engine.pairs_aligned(), batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const core::PairMsg& pm = batch[k];
    const auto want = align::banded_overlap_align_reference(
        doubled.seq(pm.seq_a), doubled.seq(pm.seq_b), params.scoring,
        static_cast<std::int32_t>(pm.pos_b) -
            static_cast<std::int32_t>(pm.pos_a),
        params.band);
    const core::ResultMsg& r = results[k];
    EXPECT_EQ(r.frag_a, pm.seq_a >> 1);
    EXPECT_EQ(r.frag_b, pm.seq_b >> 1);
    EXPECT_EQ(r.accepted,
              align::accept_overlap(want, params) ? 1 : 0);
    EXPECT_EQ(r.delta, static_cast<std::int32_t>(want.aln.a_begin) -
                           static_cast<std::int32_t>(want.aln.b_begin));
    EXPECT_TRUE(r.accepted) << "planted overlap " << k << " not accepted";
  }

  // Batch API appends in order.
  std::vector<core::ResultMsg> out(1);
  engine.run(batch, out);
  ASSERT_EQ(out.size(), 1 + batch.size());
  EXPECT_EQ(out[1].frag_a, results[0].frag_a);
}

TEST(OverlapEngine, StorelessEngineRejectsPairApi) {
  core::OverlapEngine engine{OverlapParams{}};
  EXPECT_THROW(engine.details(0, 0, 1, 0), std::logic_error);
  // full_align still works without a store.
  util::Prng rng(3);
  const auto a = test::random_dna(rng, 40);
  const auto r = engine.full_align(a, a);
  EXPECT_EQ(r.aln.matches, a.size());
}

TEST(ValidateParams, RejectsUselessCombinations) {
  OverlapParams p;  // defaults are valid
  EXPECT_NO_THROW(align::validate_overlap_params(p, 20));

  OverlapParams zero_band = p;
  zero_band.band = 0;
  EXPECT_THROW(align::validate_overlap_params(zero_band, 20),
               std::invalid_argument);

  OverlapParams bad_identity = p;
  bad_identity.min_identity = 0.0;
  EXPECT_THROW(align::validate_overlap_params(bad_identity, 20),
               std::invalid_argument);
  bad_identity.min_identity = 1.5;
  EXPECT_THROW(align::validate_overlap_params(bad_identity, 20),
               std::invalid_argument);

  // min_overlap below ψ: pairs come from ψ-long exact matches, so the
  // threshold is unreachable-from-below and clusters stay singletons.
  EXPECT_THROW(align::validate_overlap_params(p, p.min_overlap + 1),
               std::invalid_argument);

  core::ClusterParams cp;  // defaults are valid
  EXPECT_NO_THROW(core::validate_cluster_params(cp));
  cp.psi = cp.overlap.min_overlap + 10;
  EXPECT_THROW(core::validate_cluster_params(cp), std::invalid_argument);
}

}  // namespace
}  // namespace pgasm
