// ctest -L verify: the ring interleaving checker must pass the real
// ring_core.hpp algorithm clean over every enumerated schedule, and must
// catch each declared acquire/release site being weakened to relaxed.
#include <gtest/gtest.h>

#include "ring_sim.hpp"

namespace pgasm::verify {
namespace {

TEST(VerifyRing, CleanRingPassesEveryInterleaving) {
  RingSimConfig c;  // cap=2, 3 bytes: wraps, reuses slot 0
  const RingSimResult r = run_ring_sim(c);
  EXPECT_TRUE(r.ok) << r.violation << ": " << r.message;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.schedules, 100u)
      << "suspiciously few schedules: the enumeration is not branching";
  EXPECT_TRUE(r.violation.empty()) << r.message;
}

TEST(VerifyRing, EveryWeakenedSiteIsCaught) {
  for (const RingMutation m :
       {RingMutation::kPushLoadHead, RingMutation::kPushStoreTail,
        RingMutation::kPopLoadTail, RingMutation::kPopStoreHead}) {
    SCOPED_TRACE(ring_mutation_name(m));
    RingSimConfig c;
    c.mutate = m;
    const RingSimResult r = run_ring_sim(c);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.violation, "data-race") << r.message;
    EXPECT_FALSE(r.trace.empty())
        << "a violation must come with an interleaving trace";
  }
}

TEST(VerifyRing, SingleByteNeverWrapsButStillVerifies) {
  RingSimConfig c;
  c.cap = 1;
  c.total_bytes = 2;
  const RingSimResult r = run_ring_sim(c);
  EXPECT_TRUE(r.ok) << r.violation << ": " << r.message;
  EXPECT_TRUE(r.exhausted);
}

TEST(VerifyRing, MutationNamesRoundTrip) {
  for (const RingMutation m :
       {RingMutation::kNone, RingMutation::kPushLoadHead,
        RingMutation::kPushStoreTail, RingMutation::kPopLoadTail,
        RingMutation::kPopStoreHead}) {
    RingMutation parsed = RingMutation::kNone;
    ASSERT_TRUE(parse_ring_mutation(ring_mutation_name(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  RingMutation parsed = RingMutation::kNone;
  EXPECT_FALSE(parse_ring_mutation("not-a-site", &parsed));
}

}  // namespace
}  // namespace pgasm::verify
