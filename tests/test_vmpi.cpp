// Tests for the virtual MPI runtime: point-to-point semantics, collectives
// against trivial references, the staged Alltoallv, cost accounting, abort.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>

#include "vmpi/runtime.hpp"

namespace pgasm {
namespace {

using vmpi::Comm;
using vmpi::Runtime;

class VmpiSizes : public ::testing::TestWithParam<int> {};

TEST_P(VmpiSizes, PointToPointRing) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& c) {
    const int to = (c.rank() + 1) % c.size();
    const int from = (c.rank() - 1 + c.size()) % c.size();
    c.send_value(to, 1, c.rank() * 10);
    vmpi::Status st;
    const int v = c.recv_value<int>(from, 1, &st);
    EXPECT_EQ(v, from * 10);
    EXPECT_EQ(st.source, from);
    EXPECT_EQ(st.tag, 1);
  });
}

TEST_P(VmpiSizes, Barrier) {
  const int p = GetParam();
  Runtime rt(p);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  rt.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != p) violated.store(true);
    c.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(VmpiSizes, BcastFromEveryRoot) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::vector<std::uint64_t> v;
      if (c.rank() == root) {
        v = {static_cast<std::uint64_t>(root), 7, 9};
      }
      c.bcast_vector(v, root);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_EQ(v[0], static_cast<std::uint64_t>(root));
      EXPECT_EQ(v[2], 9u);
    }
  });
}

TEST_P(VmpiSizes, AllreduceSumAndMax) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& c) {
    const auto sum = c.allreduce_sum<std::int64_t>(c.rank() + 1);
    EXPECT_EQ(sum, static_cast<std::int64_t>(p) * (p + 1) / 2);
    const auto mx = c.allreduce_max<int>(c.rank());
    EXPECT_EQ(mx, p - 1);
    const auto mn = c.allreduce_min<int>(c.rank() + 100);
    EXPECT_EQ(mn, 100);
  });
}

TEST_P(VmpiSizes, AllreduceVectorElementwise) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& c) {
    std::vector<std::uint32_t> local(16);
    for (std::size_t i = 0; i < local.size(); ++i)
      local[i] = static_cast<std::uint32_t>(c.rank() + i);
    auto sum = c.allreduce_vector(std::move(local),
                                  [](std::uint32_t a, std::uint32_t b) {
                                    return a + b;
                                  });
    for (std::size_t i = 0; i < sum.size(); ++i) {
      EXPECT_EQ(sum[i], static_cast<std::uint32_t>(p * (p - 1) / 2 + p * i));
    }
  });
}

TEST_P(VmpiSizes, GathervAndAllgatherv) {
  const int p = GetParam();
  Runtime rt(p);
  rt.run([&](Comm& c) {
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    auto rooted = c.gatherv(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(rooted.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(rooted[r].size(), static_cast<std::size_t>(r));
        for (int v : rooted[r]) EXPECT_EQ(v, r);
      }
    }
    auto all = c.allgatherv(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[r].size(), static_cast<std::size_t>(r));
    }
  });
}

TEST_P(VmpiSizes, AlltoallvBothVariants) {
  const int p = GetParam();
  for (const bool staged : {false, true}) {
    Runtime rt(p);
    rt.run([&](Comm& c) {
      std::vector<std::vector<std::uint32_t>> out(
          static_cast<std::size_t>(c.size()));
      for (int d = 0; d < c.size(); ++d) {
        // Rank r sends to d a block of (r + d) values r*100 + d.
        out[d].assign(static_cast<std::size_t>(c.rank() + d),
                      static_cast<std::uint32_t>(c.rank() * 100 + d));
      }
      const auto in = staged ? c.staged_alltoallv(out) : c.alltoallv(out);
      ASSERT_EQ(in.size(), static_cast<std::size_t>(c.size()));
      for (int s = 0; s < c.size(); ++s) {
        ASSERT_EQ(in[s].size(), static_cast<std::size_t>(s + c.rank()));
        for (auto v : in[s]) {
          EXPECT_EQ(v, static_cast<std::uint32_t>(s * 100 + c.rank()));
        }
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, VmpiSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(Vmpi, WildcardReceiveAndProbe) {
  Runtime rt(3);
  rt.run([&](Comm& c) {
    if (c.rank() != 0) {
      c.send_value(0, c.rank(), c.rank() * 3);
    } else {
      int got = 0;
      while (got < 2) {
        vmpi::Status st = c.probe(vmpi::kAnySource, vmpi::kAnyTag);
        const int v = c.recv_value<int>(st.source, st.tag);
        EXPECT_EQ(v, st.source * 3);
        EXPECT_EQ(st.tag, st.source);
        ++got;
      }
      vmpi::Status st;
      EXPECT_FALSE(c.iprobe(vmpi::kAnySource, vmpi::kAnyTag, &st));
    }
  });
}

TEST(Vmpi, MessagesFromSameSenderArriveInOrder) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send_value(1, 9, i);
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(c.recv_value<int>(0, 9), i);
      }
    }
  });
}

TEST(Vmpi, SsendBlocksUntilConsumed) {
  Runtime rt(2);
  std::atomic<bool> consumed{false};
  std::atomic<bool> ssend_returned_before_consume{false};
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      const int v = 5;
      c.ssend(1, 1, &v, sizeof v);
      if (!consumed.load()) ssend_returned_before_consume.store(true);
    } else {
      // Give the sender a chance to (incorrectly) run ahead.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      consumed.store(true);
      EXPECT_EQ(c.recv_value<int>(0, 1), 5);
    }
  });
  EXPECT_FALSE(ssend_returned_before_consume.load());
}

TEST(Vmpi, AbortPropagatesToAllRanks) {
  Runtime rt(4);
  EXPECT_THROW(rt.run([&](Comm& c) {
                 if (c.rank() == 2) throw std::runtime_error("boom");
                 // Other ranks block forever; abort must wake them.
                 (void)c.recv(vmpi::kAnySource, vmpi::kAnyTag);
               }),
               std::runtime_error);
}

TEST(Vmpi, CostLedgerCountsTraffic) {
  Runtime rt(2);
  auto cost = rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> payload(1000, 7);
      c.send_vector(1, 1, payload);
    } else {
      (void)c.recv_vector<std::uint8_t>(0, 1);
    }
  });
  EXPECT_EQ(cost.per_rank[0].msgs_sent, 1u);
  EXPECT_EQ(cost.per_rank[0].bytes_sent, 1000u);
  EXPECT_EQ(cost.per_rank[1].msgs_recv, 1u);
  EXPECT_EQ(cost.per_rank[1].bytes_recv, 1000u);
  EXPECT_GT(cost.per_rank[0].comm_seconds, 0.0);
  EXPECT_GT(cost.modeled_parallel_seconds(), 0.0);
}

TEST(Vmpi, ComputeScopeChargesTime) {
  Runtime rt(1);
  auto cost = rt.run([&](Comm& c) {
    auto scope = c.compute_scope();
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
  });
  EXPECT_GT(cost.per_rank[0].compute_seconds, 0.0);
}

TEST(Vmpi, IdleFractionReflectsImbalance) {
  Runtime rt(4);
  auto cost = rt.run([&](Comm& c) {
    // Rank 0 does all the (charged) work.
    if (c.rank() == 0) c.charge_compute(1.0);
  });
  EXPECT_NEAR(cost.avg_idle_fraction(), 0.75, 0.05);
}

TEST(Vmpi, RuntimeReusableAcrossRuns) {
  Runtime rt(3);
  for (int iter = 0; iter < 3; ++iter) {
    rt.run([&](Comm& c) {
      const auto s = c.allreduce_sum<int>(1);
      EXPECT_EQ(s, 3);
    });
  }
}

TEST(Vmpi, CollectivesChargeCommunication) {
  Runtime rt(4);
  auto cost = rt.run([&](Comm& c) {
    c.barrier();
    std::vector<std::uint32_t> v(256, c.rank());
    c.bcast_vector(v, 2);
    (void)c.allreduce_sum<std::uint64_t>(1);
  });
  // Every rank participated in message traffic.
  for (const auto& ledger : cost.per_rank) {
    EXPECT_GT(ledger.msgs_sent + ledger.msgs_recv, 0u);
    EXPECT_GT(ledger.comm_seconds, 0.0);
  }
  // Total sent == total received (no message lost).
  std::uint64_t sent = 0, recv = 0;
  for (const auto& ledger : cost.per_rank) {
    sent += ledger.msgs_sent;
    recv += ledger.msgs_recv;
  }
  EXPECT_EQ(sent, recv);
}

TEST(Vmpi, CostParamsScaleModeledComm) {
  vmpi::CostParams slow;
  slow.alpha = 1e-3;  // very high latency
  vmpi::CostParams fast;
  fast.alpha = 1e-9;
  auto run_with = [&](const vmpi::CostParams& cp) {
    Runtime rt(2, cp);
    auto cost = rt.run([&](Comm& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 10; ++i) c.send_value(1, 1, i);
      } else {
        for (int i = 0; i < 10; ++i) (void)c.recv_value<int>(0, 1);
      }
    });
    return cost.per_rank[0].comm_seconds;
  };
  EXPECT_GT(run_with(slow), run_with(fast) * 100);
}

TEST(Vmpi, EmptyMessages) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 3, nullptr, 0);
    } else {
      vmpi::Status st;
      const auto bytes = c.recv(0, 3, &st);
      EXPECT_TRUE(bytes.empty());
      EXPECT_EQ(st.bytes, 0u);
    }
  });
}

TEST(Vmpi, TagSelectiveReceiveOutOfOrder) {
  // Receive by specific tag even when another tag arrived first.
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, /*tag=*/5, 55);
      c.send_value(1, /*tag=*/6, 66);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 6), 66);  // skip over tag-5 message
      EXPECT_EQ(c.recv_value<int>(0, 5), 55);
    }
  });
}

TEST(Vmpi, CollectivesAbortInsteadOfDeadlockWhenRankDies) {
  // One rank throws partway through a sequence of collectives. Every
  // surviving rank must come out of its blocked collective with AbortError —
  // not hang on a message that will never arrive. A watchdog bounds the
  // whole run so a regression fails instead of deadlocking the suite.
  struct Case {
    const char* name;
    void (*op)(Comm&);
  };
  const Case cases[] = {
      {"barrier", [](Comm& c) { c.barrier(); }},
      {"alltoallv",
       [](Comm& c) {
         std::vector<std::vector<std::uint32_t>> out(c.size());
         for (int d = 0; d < c.size(); ++d) out[d].assign(4, 7);
         (void)c.alltoallv(out);
       }},
      {"staged_alltoallv",
       [](Comm& c) {
         std::vector<std::vector<std::uint32_t>> out(c.size());
         for (int d = 0; d < c.size(); ++d) out[d].assign(4, 7);
         (void)c.staged_alltoallv(out);
       }},
  };
  for (const auto& cs : cases) {
    SCOPED_TRACE(cs.name);
    Runtime rt(4);
    std::atomic<int> aborted_survivors{0};
    auto fut = std::async(std::launch::async, [&] {
      return rt.run([&](Comm& c) {
        try {
          cs.op(c);  // round 1: everyone participates
          if (c.rank() == 2) throw std::runtime_error("rank 2 dies");
          for (int i = 0; i < 8; ++i) cs.op(c);  // rank 2 never joins
        } catch (const vmpi::AbortError&) {
          ++aborted_survivors;  // rank 2's own exception is not an abort
          throw;
        }
      });
    });
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "collective deadlocked after a rank died";
    EXPECT_THROW(fut.get(), std::runtime_error);
    EXPECT_EQ(aborted_survivors.load(), 3);
  }
}

TEST(Vmpi, StagedAlltoallvEmptyBlocks) {
  Runtime rt(5);
  rt.run([&](Comm& c) {
    // Only send to rank 0; everything else empty.
    std::vector<std::vector<std::uint8_t>> out;
    out.emplace_back(17, static_cast<std::uint8_t>(c.rank()));
    out.resize(c.size());
    const auto in = c.staged_alltoallv(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(c.size()));
    for (std::size_t s = 0; s < in.size(); ++s) {
      if (c.rank() == 0) {
        EXPECT_EQ(in[s].size(), 17u);
      } else if (s != static_cast<std::size_t>(c.rank())) {
        EXPECT_TRUE(in[s].empty());
      }
    }
  });
}

}  // namespace
}  // namespace pgasm
