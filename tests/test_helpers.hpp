// Shared helpers for the test suite: random sequence generation and
// brute-force reference implementations the fast paths are checked against.
#pragma once

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "seq/fragment_store.hpp"
#include "util/prng.hpp"

namespace pgasm::test {

inline std::vector<seq::Code> random_dna(util::Prng& rng, std::size_t len,
                                         double mask_prob = 0.0) {
  std::vector<seq::Code> out(len);
  for (auto& c : out) {
    c = rng.chance(mask_prob) ? seq::kMask
                              : static_cast<seq::Code>(rng.below(4));
  }
  return out;
}

inline seq::FragmentStore random_store(util::Prng& rng, std::size_t n_frags,
                                       std::size_t min_len, std::size_t max_len,
                                       double mask_prob = 0.0) {
  seq::FragmentStore store;
  for (std::size_t i = 0; i < n_frags; ++i) {
    const std::size_t len =
        min_len + rng.below(max_len - min_len + 1);
    store.add(random_dna(rng, len, mask_prob));
  }
  return store;
}

/// A maximal match occurrence: (seq_a, pos_a, seq_b, pos_b, length),
/// normalized with seq_a < seq_b.
using MaxMatch =
    std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, std::uint32_t,
               std::uint32_t>;

/// Brute force enumeration of all maximal matches of length >= psi between
/// *different* sequences, under mask semantics (masked characters never
/// match and break extension). O(n^2 * L^2) — test sizes only.
inline std::set<MaxMatch> brute_force_maximal_matches(
    const seq::FragmentStore& store, std::uint32_t psi) {
  std::set<MaxMatch> out;
  const auto eq = [](seq::Code a, seq::Code b) {
    return seq::is_base(a) && a == b;
  };
  for (std::uint32_t sa = 0; sa < store.size(); ++sa) {
    for (std::uint32_t sb = sa + 1; sb < store.size(); ++sb) {
      const auto ta = store.seq(sa);
      const auto tb = store.seq(sb);
      for (std::uint32_t i = 0; i < ta.size(); ++i) {
        for (std::uint32_t j = 0; j < tb.size(); ++j) {
          if (!eq(ta[i], tb[j])) continue;
          // Left-maximal?
          if (i > 0 && j > 0 && eq(ta[i - 1], tb[j - 1])) continue;
          // Extend right.
          std::uint32_t len = 0;
          while (i + len < ta.size() && j + len < tb.size() &&
                 eq(ta[i + len], tb[j + len]))
            ++len;
          if (len >= psi) out.insert({sa, i, sb, j, len});
        }
      }
    }
  }
  return out;
}

/// Brute-force set of *fragment pairs* sharing a maximal match >= psi.
inline std::set<std::pair<std::uint32_t, std::uint32_t>>
brute_force_promising_pairs(const seq::FragmentStore& store,
                            std::uint32_t psi) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& mm : brute_force_maximal_matches(store, psi)) {
    out.insert({std::get<0>(mm), std::get<2>(mm)});
  }
  return out;
}

}  // namespace pgasm::test
