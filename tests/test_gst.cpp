// Tests for the generalized suffix tree and promising-pair generation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gst/lookup_filter.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using gst::GstParams;
using gst::PairGenParams;
using gst::PairGenerator;
using gst::PromisingPair;
using gst::SuffixTree;
using test::random_store;

TEST(SuffixEnumeration, SkipsMaskedAndShort) {
  seq::FragmentStore store;
  // ACG N ACGTA  -> runs: [0,3) and [4,9)
  store.add_ascii("ACGNACGTA");
  const auto suffixes = gst::enumerate_suffixes(store, 3);
  // Run 1 (len 3): positions 0 (len 3). Run 2 (len 5): positions 4..6.
  ASSERT_EQ(suffixes.size(), 4u);
  EXPECT_EQ(suffixes[0].pos, 0u);
  EXPECT_EQ(suffixes[0].len, 3u);
  EXPECT_EQ(suffixes[0].cls, gst::kClassLambda);
  EXPECT_EQ(suffixes[1].pos, 4u);
  EXPECT_EQ(suffixes[1].len, 5u);
  // Position 4 follows a masked char: class must be λ.
  EXPECT_EQ(suffixes[1].cls, gst::kClassLambda);
  EXPECT_EQ(suffixes[2].pos, 5u);
  EXPECT_EQ(suffixes[2].len, 4u);
  // Position 5 follows 'A' (code 0): class 1.
  EXPECT_EQ(suffixes[2].cls, 1);
  EXPECT_EQ(suffixes[3].pos, 6u);
  EXPECT_EQ(suffixes[3].len, 3u);
}

TEST(SuffixTree, InvariantsTinyKnownInput) {
  seq::FragmentStore store;
  store.add_ascii("ACGTACGT");
  store.add_ascii("CGTACGTT");
  SuffixTree tree(store, GstParams{.min_match = 2, .prefix_w = 0});
  EXPECT_EQ(tree.check_invariants(), "");
  EXPECT_GT(tree.num_nodes(), 0u);
  EXPECT_GT(tree.num_leaves(), 0u);
}

class SuffixTreeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuffixTreeRandom, InvariantsHold) {
  util::Prng rng(GetParam());
  const auto store = random_store(rng, 8 + rng.below(8), 20, 120, 0.05);
  SuffixTree tree(store, GstParams{.min_match = 3, .prefix_w = 0});
  EXPECT_EQ(tree.check_invariants(), "") << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixTreeRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(SuffixTree, HighlyRepetitiveInput) {
  seq::FragmentStore store;
  store.add_ascii("AAAAAAAAAAAAAAAAAAAA");
  store.add_ascii("AAAAAAAAAA");
  store.add_ascii("ACACACACACACACACAC");
  store.add_ascii("CACACACACACACACA");
  SuffixTree tree(store, GstParams{.min_match = 2, .prefix_w = 0});
  EXPECT_EQ(tree.check_invariants(), "");
}

TEST(SuffixTree, BucketedBuildEqualsUnbucketed) {
  util::Prng rng(77);
  const auto store = random_store(rng, 12, 30, 90);
  const std::uint32_t psi = 4, w = 2;
  SuffixTree plain(store, GstParams{.min_match = psi, .prefix_w = 0});

  // Manually bucket the suffixes by w-prefix and build with bucket starts.
  auto suffixes = gst::enumerate_suffixes(store, psi);
  std::map<std::uint32_t, std::vector<gst::Suffix>> buckets;
  for (const auto& s : suffixes) buckets[gst::bucket_of(store, s, w)].push_back(s);
  std::vector<gst::Suffix> grouped;
  std::vector<std::uint32_t> begins;
  for (auto& [b, v] : buckets) {
    begins.push_back(static_cast<std::uint32_t>(grouped.size()));
    grouped.insert(grouped.end(), v.begin(), v.end());
  }
  SuffixTree bucketed(store, std::move(grouped), begins, w,
                      GstParams{.min_match = psi, .prefix_w = w});
  EXPECT_EQ(bucketed.check_invariants(), "");

  // Same pair stream content (as multisets of maximal matches).
  auto pa = PairGenerator::generate_all(plain, {.dup_elim = false});
  auto pb = PairGenerator::generate_all(bucketed, {.dup_elim = false});
  auto key = [](const PromisingPair& p) {
    return std::tuple(p.seq_a, p.pos_a, p.seq_b, p.pos_b, p.match_len);
  };
  std::multiset<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                           std::uint32_t, std::uint32_t>>
      ma, mb;
  for (const auto& p : pa) ma.insert(key(p));
  for (const auto& p : pb) mb.insert(key(p));
  EXPECT_EQ(ma, mb);
}

// --- Pair generation: the heart of the paper -------------------------------

class PairGenRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PairGenRandom, SuffixLevelMatchesBruteForce) {
  util::Prng rng(GetParam());
  const std::uint32_t psi = 3 + static_cast<std::uint32_t>(rng.below(4));
  const auto store = random_store(rng, 6 + rng.below(6), 15, 60, 0.04);
  SuffixTree tree(store, GstParams{.min_match = psi, .prefix_w = 0});
  ASSERT_EQ(tree.check_invariants(), "");

  const auto expected = test::brute_force_maximal_matches(store, psi);
  const auto pairs = PairGenerator::generate_all(tree, {.dup_elim = false});
  std::set<test::MaxMatch> got;
  for (const auto& p : pairs) {
    auto [it, fresh] =
        got.insert({p.seq_a, p.pos_a, p.seq_b, p.pos_b, p.match_len});
    EXPECT_TRUE(fresh) << "duplicate maximal match emitted (seed "
                       << GetParam() << ")";
  }
  EXPECT_EQ(got, expected) << "seed " << GetParam() << " psi " << psi;
}

TEST_P(PairGenRandom, EmittedInNonIncreasingMatchLengthOrder) {
  util::Prng rng(GetParam() * 977 + 5);
  const auto store = random_store(rng, 10, 20, 80);
  SuffixTree tree(store, GstParams{.min_match = 3, .prefix_w = 0});
  PairGenerator gen(tree, {.dup_elim = false});
  PromisingPair p;
  std::uint32_t last = UINT32_MAX;
  while (gen.next(p)) {
    EXPECT_LE(p.match_len, last);
    last = p.match_len;
  }
}

TEST_P(PairGenRandom, DupElimCoversAllPairsAtLeastOnce) {
  util::Prng rng(GetParam() * 31 + 7);
  const std::uint32_t psi = 3;
  const auto store = random_store(rng, 8 + rng.below(8), 15, 70, 0.03);
  SuffixTree tree(store, GstParams{.min_match = psi, .prefix_w = 0});

  const auto expected = test::brute_force_promising_pairs(store, psi);
  const auto pairs = PairGenerator::generate_all(tree, {.dup_elim = true});
  std::set<std::pair<std::uint32_t, std::uint32_t>> got;
  for (const auto& p : pairs) got.insert({p.seq_a, p.seq_b});
  EXPECT_EQ(got, expected) << "seed " << GetParam();

  // At most once per node => no more emissions than distinct maximal
  // matches (suffix-level count bounds fragment-level count).
  const auto suffix_level =
      PairGenerator::generate_all(tree, {.dup_elim = false});
  EXPECT_LE(pairs.size(), suffix_level.size());
}

TEST_P(PairGenRandom, DupElimAnchorsAreRealMatches) {
  util::Prng rng(GetParam() * 131 + 3);
  const auto store = random_store(rng, 10, 20, 60);
  SuffixTree tree(store, GstParams{.min_match = 3, .prefix_w = 0});
  const auto pairs = PairGenerator::generate_all(tree, {.dup_elim = true});
  for (const auto& p : pairs) {
    const auto ta = store.seq(p.seq_a);
    const auto tb = store.seq(p.seq_b);
    ASSERT_LE(p.pos_a + p.match_len, ta.size());
    ASSERT_LE(p.pos_b + p.match_len, tb.size());
    for (std::uint32_t k = 0; k < p.match_len; ++k) {
      ASSERT_TRUE(seq::is_base(ta[p.pos_a + k]));
      ASSERT_EQ(ta[p.pos_a + k], tb[p.pos_b + k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairGenRandom,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(PairGen, DoubledInputFiltersSelfAndMirror) {
  util::Prng rng(123);
  seq::FragmentStore plain = random_store(rng, 6, 40, 80);
  const auto doubled = seq::make_doubled_store(plain);
  SuffixTree tree(doubled, GstParams{.min_match = 8, .prefix_w = 0});
  PairGenerator gen(tree, {.dup_elim = true, .doubled_input = true});
  PromisingPair p;
  std::set<std::pair<std::uint32_t, std::uint32_t>> frag_pairs;
  while (gen.next(p)) {
    // Never pairs a fragment with itself or its own reverse complement.
    EXPECT_NE(p.seq_a >> 1, p.seq_b >> 1);
    // Canonical form: lower fragment appears on its forward strand.
    EXPECT_LT(p.seq_a >> 1, p.seq_b >> 1);
    EXPECT_EQ(p.seq_a & 1u, 0u);
    frag_pairs.insert({p.seq_a >> 1, p.seq_b >> 1});
  }
}

TEST(PairGen, FindsReverseComplementOverlap) {
  // f2 is the reverse complement of f1's tail + extra: they overlap only
  // through the RC strand.
  util::Prng rng(9);
  const auto base = test::random_dna(rng, 60);
  std::vector<seq::Code> f1(base.begin(), base.begin() + 40);
  std::vector<seq::Code> tail(base.begin() + 20, base.begin() + 60);
  const auto f2 = seq::reverse_complement(tail);
  seq::FragmentStore plain;
  plain.add(f1);
  plain.add(f2);
  const auto doubled = seq::make_doubled_store(plain);
  SuffixTree tree(doubled, GstParams{.min_match = 10, .prefix_w = 0});
  const auto pairs = PairGenerator::generate_all(
      tree, {.dup_elim = true, .doubled_input = true});
  bool found = false;
  for (const auto& p : pairs) {
    if ((p.seq_a >> 1) == 0 && (p.seq_b >> 1) == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PairGen, NoPairsBelowPsi) {
  seq::FragmentStore store;
  store.add_ascii("ACGTACGTAA");
  store.add_ascii("TTTTGGGGCC");  // shares no 4-mer with the first
  SuffixTree tree(store, GstParams{.min_match = 4, .prefix_w = 0});
  const auto pairs = PairGenerator::generate_all(tree, {.dup_elim = false});
  EXPECT_TRUE(pairs.empty());
}

TEST(PairGen, MaskingSuppressesPairs) {
  // Identical fragments, but one has the shared region masked out.
  seq::FragmentStore store;
  store.add_ascii("ACGTACGTACGTACGTACGT");
  store.add_ascii("ACGTACGTACGTACGTACGT");
  store.mask(1, 0, 20);
  SuffixTree tree(store, GstParams{.min_match = 8, .prefix_w = 0});
  const auto pairs = PairGenerator::generate_all(tree, {.dup_elim = true});
  EXPECT_TRUE(pairs.empty());
}

// --- Lookup-table baseline filter (paper Section 2) -------------------------

class LookupVsGst : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LookupVsGst, SameFragmentPairSetAtEqualCutoff) {
  // With psi == w, a fragment pair shares a maximal match >= psi iff it
  // shares at least one w-mer: the two filters must produce the same
  // distinct pair set, but the lookup table emits (many) more copies.
  util::Prng rng(GetParam() * 7 + 1);
  const auto store = random_store(rng, 12, 40, 100);
  const std::uint32_t w = 8;
  SuffixTree tree(store, GstParams{.min_match = w, .prefix_w = 0});
  const auto gst_pairs =
      PairGenerator::generate_all(tree, {.dup_elim = true});
  std::set<std::pair<std::uint32_t, std::uint32_t>> gst_set;
  for (const auto& p : gst_pairs) gst_set.insert({p.seq_a, p.seq_b});

  gst::LookupFilter filter(store, {.w = w});
  std::set<std::pair<std::uint32_t, std::uint32_t>> lut_set;
  std::uint64_t lut_count = 0;
  PromisingPair p;
  while (filter.next(p)) {
    lut_set.insert({p.seq_a, p.seq_b});
    ++lut_count;
    // Anchors are real exact w-mers.
    const auto a = store.seq(p.seq_a);
    const auto b = store.seq(p.seq_b);
    for (std::uint32_t k = 0; k < w; ++k) {
      ASSERT_EQ(a[p.pos_a + k], b[p.pos_b + k]);
    }
  }
  EXPECT_EQ(lut_set, gst_set) << "seed " << GetParam();
  EXPECT_GE(lut_count, gst_pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookupVsGst,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(LookupFilter, LongMatchEmitsManyCopies) {
  // The Section 2 argument: an exact match of length l appears as
  // (l - w + 1) w-mer hits.
  util::Prng rng(5);
  const auto shared = test::random_dna(rng, 60);
  seq::FragmentStore store;
  std::vector<seq::Code> f1 = test::random_dna(rng, 20);
  f1.insert(f1.end(), shared.begin(), shared.end());
  std::vector<seq::Code> f2(shared);
  auto tail = test::random_dna(rng, 20);
  f2.insert(f2.end(), tail.begin(), tail.end());
  store.add(f1);
  store.add(f2);
  const std::uint32_t w = 11;
  gst::LookupFilter filter(store, {.w = w});
  std::uint64_t count = 0;
  PromisingPair p;
  while (filter.next(p)) ++count;
  EXPECT_GE(count, 60u - w + 1u - 2u);  // ~l - w + 1 (allow random extras)

  // The GST generator emits the pair once.
  SuffixTree tree(store, GstParams{.min_match = w, .prefix_w = 0});
  const auto gst_pairs = PairGenerator::generate_all(tree, {.dup_elim = true});
  EXPECT_EQ(gst_pairs.size(), 1u);
}

TEST(LookupFilter, DedupPerWordAndDoubledInput) {
  util::Prng rng(9);
  seq::FragmentStore plain = random_store(rng, 6, 40, 80);
  const auto doubled = seq::make_doubled_store(plain);
  gst::LookupFilter filter(doubled,
                           {.w = 9, .doubled_input = true,
                            .dedup_per_word = true});
  PromisingPair p;
  std::set<std::tuple<std::uint32_t, std::uint32_t>> seen;
  while (filter.next(p)) {
    EXPECT_LT(p.seq_a >> 1, p.seq_b >> 1);
    EXPECT_EQ(p.seq_a & 1u, 0u);  // canonical mirror
  }
  EXPECT_GT(filter.stats().table_entries, 0u);
}

TEST(LookupFilter, TopWordsSummaryIsCanonical) {
  // The heaviest-word summary iterates an unordered per-word tally, so it
  // goes through util::sorted_items before ranking (DESIGN.md §16): pairs
  // descending, ties by word ascending, capped, and identical run to run.
  util::Prng rng(9);
  const auto shared = test::random_dna(rng, 60);
  seq::FragmentStore store;
  for (int i = 0; i < 4; ++i) {
    auto frag = test::random_dna(rng, 20);
    frag.insert(frag.end(), shared.begin(), shared.end());
    store.add(frag);
  }
  const auto run = [&] {
    gst::LookupFilter filter(store, {.w = 9});
    PromisingPair p;
    while (filter.next(p)) {
    }
    return filter.stats().top_words;
  };
  const auto words = run();
  ASSERT_FALSE(words.empty());
  EXPECT_LE(words.size(), 8u);
  for (std::size_t i = 1; i < words.size(); ++i) {
    EXPECT_GE(words[i - 1].second, words[i].second);
    if (words[i - 1].second == words[i].second) {
      EXPECT_LT(words[i - 1].first, words[i].first);
    }
  }
  EXPECT_EQ(words, run());
}

TEST(PairGen, PairSetMonotoneInPsi) {
  // Lower psi admits every pair a higher psi admits (a maximal match of
  // length >= psi2 is also >= psi1 < psi2).
  util::Prng rng(777);
  const auto store = random_store(rng, 14, 30, 90);
  std::set<std::pair<std::uint32_t, std::uint32_t>> prev;
  bool first = true;
  for (std::uint32_t psi : {12u, 8u, 5u, 3u}) {
    SuffixTree tree(store, GstParams{.min_match = psi, .prefix_w = 0});
    const auto pairs = PairGenerator::generate_all(tree, {.dup_elim = true});
    std::set<std::pair<std::uint32_t, std::uint32_t>> cur;
    for (const auto& p : pairs) cur.insert({p.seq_a, p.seq_b});
    if (!first) {
      for (const auto& pr : prev) {
        EXPECT_TRUE(cur.count(pr)) << "pair lost when lowering psi";
      }
    }
    prev = std::move(cur);
    first = false;
  }
}

TEST(PairGen, MemoryIsLinear) {
  util::Prng rng(4242);
  const auto store = random_store(rng, 60, 80, 120);
  SuffixTree tree(store, GstParams{.min_match = 6, .prefix_w = 0});
  PairGenerator gen(tree, {.dup_elim = true});
  PromisingPair p;
  std::uint64_t peak = 0;
  while (gen.next(p)) peak = std::max(peak, gen.memory_bytes());
  // Generous linear bound: a small constant times input characters.
  EXPECT_LT(peak, 64 * store.total_length() + (1u << 16));
}

}  // namespace
}  // namespace pgasm
