// End-to-end pipeline tests and ground-truth validation machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/trace.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/validation.hpp"
#include "sim/community.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using pipeline::PipelineParams;
using pipeline::run_pipeline;

PipelineParams small_pipeline_params() {
  PipelineParams p;
  p.pre.min_len = 80;
  p.pre.repeat.sample_fraction = 0.5;
  p.cluster.psi = 14;
  p.cluster.overlap.min_overlap = 30;
  p.cluster.overlap.min_identity = 0.9;
  p.cluster.prefix_w = 4;
  p.assembly.psi = 16;
  p.assembly.overlap.min_overlap = 30;
  p.assembly.overlap.min_identity = 0.93;
  return p;
}

TEST(Validation, BenchmarkIslandsMergeOverlaps) {
  std::vector<sim::ReadTruth> truth = {
      {0, 0, 100, false, -1},    // island 0
      {0, 50, 150, false, -1},   // overlaps -> island 0
      {0, 149, 250, false, -1},  // chains -> island 0
      {0, 300, 400, false, -1},  // gap -> island 1
      {1, 0, 100, false, -1},    // different genome -> island 2
  };
  const auto island = pipeline::benchmark_islands(truth);
  EXPECT_EQ(island[0], island[1]);
  EXPECT_EQ(island[1], island[2]);
  EXPECT_NE(island[2], island[3]);
  EXPECT_NE(island[3], island[4]);
  EXPECT_NE(island[0], island[4]);
}

TEST(Validation, PurityDetectsMixedCluster) {
  std::vector<sim::ReadTruth> truth = {
      {0, 0, 100, false, -1},   {0, 50, 150, false, -1},
      {0, 500, 600, false, -1}, {0, 550, 650, false, -1},
  };
  // Cluster 0 pure (island A), cluster 1 mixes islands A and B.
  std::vector<std::vector<std::uint32_t>> good = {{0, 1}, {2, 3}};
  std::vector<std::vector<std::uint32_t>> bad = {{0, 2}, {1, 3}};
  const auto pg = pipeline::evaluate_purity(good, truth);
  EXPECT_DOUBLE_EQ(pg.purity, 1.0);
  const auto pb = pipeline::evaluate_purity(bad, truth);
  EXPECT_DOUBLE_EQ(pb.purity, 0.0);
}

TEST(Pipeline, EndToEndSerial) {
  const auto g = sim::simulate_genome(sim::shotgun_like(20'000, 41));
  util::Prng rng(42);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 300;
  rp.len_spread = 50;
  rp.errors.sub_rate = 0.005;
  rp.errors.ins_rate = 0.001;
  rp.errors.del_rate = 0.001;
  sim::sample_wgs(rs, g, 4.0, rp, rng);

  const auto result =
      run_pipeline(rs.store, sim::vector_library(), small_pipeline_params());
  // Densely covered single genome: most reads cluster together.
  EXPECT_GT(result.cluster_summary.num_clusters, 0u);
  EXPECT_GT(result.cluster_summary.max_cluster_size, 5u);
  EXPECT_GT(result.assembly_summary.total_contigs, 0u);
  EXPECT_GT(result.assembly_summary.n50, 400u);
  EXPECT_EQ(result.cluster_summary.total_fragments, result.pre.store.size());

  // Ground truth: kept reads trace back to their truth records.
  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  const auto purity =
      pipeline::evaluate_purity(result.cluster_sets, kept_truth);
  EXPECT_GT(purity.purity, 0.95);
}

TEST(Pipeline, EndToEndParallelMatchesSerial) {
  const auto g = sim::simulate_genome(sim::shotgun_like(15'000, 43));
  util::Prng rng(44);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 300;
  rp.len_spread = 50;
  sim::sample_wgs(rs, g, 3.0, rp, rng);

  auto params = small_pipeline_params();
  const auto serial = run_pipeline(rs.store, sim::vector_library(), params);
  params.ranks = 4;
  const auto parallel = run_pipeline(rs.store, sim::vector_library(), params);
  EXPECT_EQ(serial.cluster_summary.num_clusters,
            parallel.cluster_summary.num_clusters);
  EXPECT_EQ(serial.cluster_summary.num_singletons,
            parallel.cluster_summary.num_singletons);
  EXPECT_EQ(serial.cluster_summary.max_cluster_size,
            parallel.cluster_summary.max_cluster_size);
  EXPECT_GT(parallel.cost.total_msgs(), 0u);
}

TEST(Pipeline, CommunityClusteringSeparatesSpecies) {
  sim::CommunityParams cp;
  cp.num_species = 8;
  cp.genome_len_min = 3'000;
  cp.genome_len_max = 6'000;
  cp.seed = 5;
  const auto community = sim::simulate_community(cp);
  util::Prng rng(46);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 400;
  rp.len_spread = 50;
  sim::sample_community(rs, community, 250, rp, rng);

  auto params = small_pipeline_params();
  params.run_assembly = false;
  const auto result = run_pipeline(rs.store, sim::vector_library(), params);

  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  // No non-singleton cluster mixes species.
  for (const auto& members : result.cluster_sets) {
    if (members.size() < 2) continue;
    for (std::size_t i = 1; i < members.size(); ++i) {
      EXPECT_EQ(kept_truth[members[i]].genome_id,
                kept_truth[members[0]].genome_id);
    }
  }
}

TEST(Pipeline, ConsensusAccuracyAgainstTruth) {
  const auto g = sim::simulate_genome(sim::shotgun_like(25'000, 53));
  util::Prng rng(54);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 350;
  rp.len_spread = 50;
  sim::sample_wgs(rs, g, 6.0, rp, rng);
  auto params = small_pipeline_params();
  const auto result =
      run_pipeline(rs.store, sim::vector_library(), params);
  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  const auto acc = pipeline::evaluate_consensus(
      result.cluster_sets, result.assemblies, kept_truth, {&g, 1});
  EXPECT_GT(acc.contigs_evaluated, 0u);
  EXPECT_GT(acc.columns, 1000u);
  EXPECT_LT(acc.error_rate(), 0.02);
  EXPECT_LT(acc.deep_error_rate(), 0.01);
  EXPECT_LE(acc.deep_columns, acc.columns);
}

TEST(Pipeline, ConsensusAccuracyEmptyInputs) {
  const auto acc = pipeline::evaluate_consensus({}, {}, {}, {});
  EXPECT_EQ(acc.contigs_evaluated, 0u);
  EXPECT_DOUBLE_EQ(acc.error_rate(), 0.0);
}

TEST(Pipeline, ParallelAssemblyMatchesSerial) {
  const auto g = sim::simulate_genome(sim::shotgun_like(18'000, 91));
  util::Prng rng(92);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 300;
  rp.len_spread = 50;
  sim::sample_wgs(rs, g, 4.0, rp, rng);
  auto params = small_pipeline_params();
  const auto serial = run_pipeline(rs.store, sim::vector_library(), params);
  params.ranks = 4;
  const auto parallel = run_pipeline(rs.store, sim::vector_library(), params);
  // The distributed assembly phase must produce the same contigs. Cluster
  // indices may permute (equal-size clusters order by union-find root), so
  // compare the multiset of consensus sequences.
  ASSERT_EQ(serial.assemblies.size(), parallel.assemblies.size());
  EXPECT_EQ(serial.assembly_summary.total_contigs,
            parallel.assembly_summary.total_contigs);
  EXPECT_EQ(serial.assembly_summary.n50, parallel.assembly_summary.n50);
  EXPECT_EQ(serial.assembly_summary.consensus_bases,
            parallel.assembly_summary.consensus_bases);
  auto all_contigs = [](const pipeline::PipelineResult& r) {
    std::vector<std::vector<seq::Code>> out;
    for (const auto& a : r.assemblies) {
      for (const auto& c : a.contigs) {
        if (!c.is_singleton()) out.push_back(c.consensus);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(all_contigs(serial), all_contigs(parallel));
  EXPECT_GT(parallel.assembly_summary.assembly_modeled_seconds, 0.0);
}

TEST(Pipeline, GlobalScaffoldsBridgeGaps) {
  auto gp = sim::shotgun_like(30'000, 81);
  gp.unclonable_fraction = 0.05;
  const auto g = sim::simulate_genome(gp);
  util::Prng rng(82);
  sim::ReadSet rs;
  std::vector<sim::MatePair> mates;
  sim::ReadParams rp;
  rp.len_mean = 400;
  rp.len_spread = 80;
  sim::sample_wgs(rs, g, 5.0, rp, rng);
  sim::sample_mate_pairs(rs, mates, g, 200, 3500, 350, rp, rng);

  auto params = small_pipeline_params();
  // Shallow statistical masking sample (~1X): over-deep samples flag
  // ordinary-coverage k-mers, shattering the clusters into overlapping
  // contigs whose implied scaffold gaps are negative.
  params.pre.repeat.sample_fraction = 0.2;
  const auto result = run_pipeline(rs.store, sim::vector_library(), params);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> raw_links;
  std::vector<std::uint32_t> inserts;
  for (const auto& m : mates) {
    raw_links.push_back({m.read_a, m.read_b});
    inserts.push_back(m.insert_len);
  }
  const auto scaffolds = pipeline::build_scaffolds(result, raw_links, inserts,
                                                   rs.store.size());
  // Every contig lands in exactly one scaffold.
  std::size_t placed = 0;
  for (const auto& sc : scaffolds.result.scaffolds) placed += sc.entries.size();
  EXPECT_EQ(placed, scaffolds.contigs.size());
  // Mates must bridge at least one gap on this gappy genome.
  EXPECT_GE(scaffolds.result.num_multi(), 1u);
  EXPECT_GE(scaffolds.scaffold_span_n50, scaffolds.contig_n50);
}

TEST(Pipeline, SkippingPreprocessKeepsAllFragments) {
  util::Prng rng(47);
  seq::FragmentStore store;
  for (int i = 0; i < 10; ++i) store.add(test::random_dna(rng, 200));
  auto params = small_pipeline_params();
  params.run_preprocess = false;
  params.run_assembly = false;
  const auto result = run_pipeline(store, {}, params);
  EXPECT_EQ(result.pre.store.size(), 10u);
  EXPECT_EQ(result.pre.kept_ids.size(), 10u);
}

// --- observability export ---------------------------------------------------

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

sim::ReadSet obs_test_reads(std::uint64_t genome_len, std::uint64_t seed) {
  const auto g = sim::simulate_genome(sim::shotgun_like(genome_len, seed));
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 300;
  rp.len_spread = 50;
  sim::sample_wgs(rs, g, 3.0, rp, rng);
  return rs;
}

TEST(Pipeline, ObsDirSerialWritesAllOutputs) {
  const std::string dir = testing::TempDir() + "pgasm_obs_serial";
  std::filesystem::remove_all(dir);
  const auto rs = obs_test_reads(12'000, 51);
  auto params = small_pipeline_params();
  params.obs_dir = dir;
  (void)run_pipeline(rs.store, sim::vector_library(), params);

  for (const char* name : {"summary.txt", "metrics.jsonl", "trace.json"}) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / name))
        << name;
  }
  // The driver timeline covers all three phases.
  const auto trace = slurp(std::filesystem::path(dir) / "trace.json");
  EXPECT_NE(trace.find("\"name\":\"preprocess\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"cluster\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"assembly\""), std::string::npos);
  // Serial-path stats land in the registry, phase-labeled.
  const auto metrics = slurp(std::filesystem::path(dir) / "metrics.jsonl");
  EXPECT_NE(metrics.find("\"name\":\"preprocess.fragments_in\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"name\":\"cluster.merges\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\":\"assembly.total_contigs\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"phase\":\"cluster\""), std::string::npos);
  // Runs with obs disabled leave the tracer off.
  EXPECT_FALSE(obs::tracer().enabled());
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, ObsDirParallelTracesMasterAndWorkers) {
  const std::string dir = testing::TempDir() + "pgasm_obs_parallel";
  std::filesystem::remove_all(dir);
  const auto rs = obs_test_reads(15'000, 53);
  auto params = small_pipeline_params();
  params.ranks = 4;
  params.obs_dir = dir;
  (void)run_pipeline(rs.store, sim::vector_library(), params);

  const auto trace = slurp(std::filesystem::path(dir) / "trace.json");
  // Master-side batch accounting and worker-side batch spans. (Heartbeat
  // rounds need a probe timeout; the fault-injection test below covers
  // them deterministically.)
  EXPECT_NE(trace.find("\"name\":\"dispatch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"report\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"align_batch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"generate_pairs\""), std::string::npos);
  // Per-rank tracks exist for the master and at least one worker.
  EXPECT_NE(trace.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"rank 1\""), std::string::npos);
  const auto metrics = slurp(std::filesystem::path(dir) / "metrics.jsonl");
  EXPECT_NE(metrics.find("\"name\":\"vmpi.msgs_sent\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\":\"vmpi.send_bytes\""), std::string::npos);
  EXPECT_NE(metrics.find("\"name\":\"cluster.pairs_aligned\""),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, ObsDirFaultInjectionShowsRecovery) {
  const std::string dir = testing::TempDir() + "pgasm_obs_faults";
  std::filesystem::remove_all(dir);
  const auto rs = obs_test_reads(15'000, 53);
  auto params = small_pipeline_params();
  params.ranks = 4;
  params.cluster.worker_timeout = 0.1;
  params.cluster.worker_timeout_cap = 0.5;
  // Die on the very first worker-loop send: rank 2's generator role has
  // produced nothing, so recovery must reassign it (a takeover), declare
  // the rank dead, and run at least one heartbeat round to notice.
  params.faults.crashes.push_back({.rank = 2, .at_send = 1});
  params.obs_dir = dir;
  const auto result = run_pipeline(rs.store, sim::vector_library(), params);
  ASSERT_GE(result.cost.faults.crashes_injected, 1u);

  // The recovery story is visible in the trace: the injected crash, the
  // master declaring the worker dead, and the takeover of its batches.
  const auto trace = slurp(std::filesystem::path(dir) / "trace.json");
  EXPECT_NE(trace.find("\"name\":\"fault_crash\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"death_declared\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"takeover"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"heartbeat_round\""), std::string::npos);
  // And in the metrics: fault counters folded from the runtime.
  const auto metrics = slurp(std::filesystem::path(dir) / "metrics.jsonl");
  const auto pos = metrics.find("\"name\":\"vmpi.faults.crashes_injected\"");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(metrics.find("\"name\":\"cluster.workers_lost\""),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pgasm
