// Tests for the parallel GST construction: partitioning, bucket assignment,
// and the key equivalence — the union of all ranks' pair streams equals the
// serial pair stream.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "gst/pair_generator.hpp"
#include "gst/parallel_build.hpp"
#include "test_helpers.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm {
namespace {

using gst::GstParams;
using gst::PairGenerator;
using gst::ParallelGstParams;
using gst::PromisingPair;
using gst::SuffixTree;

TEST(Partition, CoversStoreContiguously) {
  util::Prng rng(2);
  const auto store = test::random_store(rng, 57, 10, 200);
  for (int p : {1, 2, 3, 7, 16}) {
    const auto slice = gst::partition_store(store, p);
    ASSERT_EQ(slice.size(), static_cast<std::size_t>(p) + 1);
    EXPECT_EQ(slice.front(), 0u);
    EXPECT_EQ(slice.back(), store.size());
    for (int r = 0; r < p; ++r) EXPECT_LE(slice[r], slice[r + 1]);
  }
}

TEST(Partition, RoughlyBalancedByCharacters) {
  util::Prng rng(3);
  const auto store = test::random_store(rng, 400, 50, 150);
  const int p = 8;
  const auto slice = gst::partition_store(store, p);
  const double ideal = static_cast<double>(store.total_length()) / p;
  for (int r = 0; r < p; ++r) {
    std::uint64_t chars = 0;
    for (std::uint32_t s = slice[r]; s < slice[r + 1]; ++s)
      chars += store.length(s);
    EXPECT_NEAR(static_cast<double>(chars), ideal, ideal * 0.5);
  }
}

TEST(BucketAssignment, AllNonEmptyBucketsOwnedAndBalanced) {
  std::vector<std::uint64_t> hist = {100, 0, 50, 50, 30, 30, 30, 10};
  const auto owner = gst::assign_buckets(hist, 3);
  ASSERT_EQ(owner.size(), hist.size());
  EXPECT_EQ(owner[1], -1);
  std::vector<std::uint64_t> load(3, 0);
  for (std::size_t b = 0; b < hist.size(); ++b) {
    if (hist[b] == 0) continue;
    ASSERT_GE(owner[b], 0);
    ASSERT_LT(owner[b], 3);
    load[owner[b]] += hist[b];
  }
  // LPT on this instance: 100 / 50+30+30 / 50+30+10. Max load stays within
  // the classic 4/3 bound of the ideal (300/3 = 100).
  const std::uint64_t max_load = std::max({load[0], load[1], load[2]});
  EXPECT_LE(max_load, 133u);
  EXPECT_EQ(load[0] + load[1] + load[2], 300u);
}

class ParallelGstRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParallelGstRanks, PairUnionEqualsSerial) {
  const int p = GetParam();
  util::Prng rng(911);
  const auto store = test::random_store(rng, 40, 40, 120, 0.02);
  const std::uint32_t psi = 8, w = 3;

  // Serial reference.
  SuffixTree serial(store, GstParams{.min_match = psi, .prefix_w = 0});
  const auto ref = PairGenerator::generate_all(serial, {.dup_elim = false});
  std::set<test::MaxMatch> expected;
  for (const auto& q : ref)
    expected.insert({q.seq_a, q.pos_a, q.seq_b, q.pos_b, q.match_len});

  // Parallel: each rank builds its subforest and generates pairs; union.
  std::mutex mu;
  std::set<test::MaxMatch> got;
  bool dup = false;
  vmpi::Runtime rt(p);
  rt.run([&](vmpi::Comm& comm) {
    ParallelGstParams params;
    params.gst = GstParams{.min_match = psi, .prefix_w = w};
    params.fetch_batch_chars = 512;  // force multiple fetch rounds
    auto dist = gst::build_distributed_gst(comm, store, params);
    ASSERT_EQ(dist.tree->check_invariants(), "");
    PairGenerator gen(*dist.tree, {.dup_elim = false});
    PromisingPair q;
    std::lock_guard<std::mutex> lock(mu);
    while (gen.next(q)) {
      test::MaxMatch mm{dist.local_to_global[q.seq_a], q.pos_a,
                        dist.local_to_global[q.seq_b], q.pos_b, q.match_len};
      if (std::get<0>(mm) > std::get<2>(mm)) {
        mm = {std::get<2>(mm), std::get<3>(mm), std::get<0>(mm),
              std::get<1>(mm), std::get<4>(mm)};
      }
      if (!got.insert(mm).second) dup = true;
    }
  });
  EXPECT_FALSE(dup) << "a maximal match was generated on two ranks";
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelGstRanks, StatsArePopulated) {
  const int p = GetParam();
  util::Prng rng(1234);
  const auto store = test::random_store(rng, 30, 50, 100);
  vmpi::Runtime rt(p);
  rt.run([&](vmpi::Comm& comm) {
    ParallelGstParams params;
    params.gst = GstParams{.min_match = 10, .prefix_w = 4};
    auto dist = gst::build_distributed_gst(comm, store, params);
    const auto total_suffixes =
        comm.allreduce_sum<std::uint64_t>(dist.stats.local_suffixes);
    const auto serial_count =
        gst::enumerate_suffixes(store, 10).size();
    EXPECT_EQ(total_suffixes, serial_count);
    EXPECT_GE(dist.stats.fetch_rounds, 1u);
    if (comm.rank() == 0 && p > 1) {
      // With several ranks someone must fetch remote fragments.
      const auto fetched =
          comm.allreduce_sum<std::uint64_t>(dist.stats.fetched_fragments);
      EXPECT_GT(fetched, 0u);
    } else if (p > 1) {
      (void)comm.allreduce_sum<std::uint64_t>(dist.stats.fetched_fragments);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelGstRanks,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ParallelGst, RebuiltPortionSurvivesMove) {
  // rebuild_rank_portion's tree references the portion's own local_store;
  // moving the DistributedGst (as the generator-takeover path does via
  // make_unique) must re-seat that reference, or the tree dangles into the
  // destroyed temporary and pair generation reads freed memory.
  util::Prng rng(77);
  const auto store = test::random_store(rng, 30, 40, 120, 0.02);
  ParallelGstParams params;
  params.gst = GstParams{.min_match = 8, .prefix_w = 3};
  const auto owner =
      std::vector<std::int32_t>(gst::num_buckets(3), 1);  // role 1 owns all

  auto moved = std::make_unique<gst::DistributedGst>(
      gst::rebuild_rank_portion(store, owner, 1, params));
  ASSERT_TRUE(moved->tree);
  EXPECT_EQ(&moved->tree->store(), &moved->local_store);
  ASSERT_EQ(moved->tree->check_invariants(), "");

  gst::DistributedGst assigned;
  assigned = std::move(*moved);
  EXPECT_EQ(&assigned.tree->store(), &assigned.local_store);

  // The rebuilt-and-moved portion must still generate the full pair stream.
  PairGenerator gen(*assigned.tree, {.dup_elim = false});
  PromisingPair q;
  std::size_t pairs = 0;
  while (gen.next(q)) ++pairs;
  SuffixTree serial(store, GstParams{.min_match = 8, .prefix_w = 0});
  const auto ref = PairGenerator::generate_all(serial, {.dup_elim = false});
  EXPECT_EQ(pairs, ref.size());
}

// ---- Fault-tolerant construction -----------------------------------------

// Union-equals-serial under the fault-tolerant point-to-point path, with
// and without injected faults. Collects every surviving rank's pair stream
// (mapped to global ids) and compares the set against the serial tree.
std::set<test::MaxMatch> ft_pair_union(int p, const seq::FragmentStore& store,
                                       vmpi::FaultPlan faults,
                                       gst::GstBuildStats* agg = nullptr,
                                       bool* dup_out = nullptr) {
  std::mutex mu;
  std::set<test::MaxMatch> got;
  bool dup = false;
  vmpi::Runtime rt(p, {}, std::move(faults));
  rt.run([&](vmpi::Comm& comm) {
    ParallelGstParams params;
    params.gst = GstParams{.min_match = 8, .prefix_w = 3};
    params.fault_tolerant = true;
    auto dist = gst::build_distributed_gst(comm, store, params);
    ASSERT_EQ(dist.tree->check_invariants(), "");
    PairGenerator gen(*dist.tree, {.dup_elim = false});
    PromisingPair q;
    std::lock_guard<std::mutex> lock(mu);
    if (agg != nullptr) {
      agg->buckets_reassigned += dist.stats.buckets_reassigned;
      agg->ranks_recovered += dist.stats.ranks_recovered;
      agg->ft_retries += dist.stats.ft_retries;
      agg->portion_rebuilt |= dist.stats.portion_rebuilt;
    }
    while (gen.next(q)) {
      test::MaxMatch mm{dist.local_to_global[q.seq_a], q.pos_a,
                        dist.local_to_global[q.seq_b], q.pos_b, q.match_len};
      if (std::get<0>(mm) > std::get<2>(mm)) {
        mm = {std::get<2>(mm), std::get<3>(mm), std::get<0>(mm),
              std::get<1>(mm), std::get<4>(mm)};
      }
      if (!got.insert(mm).second) dup = true;
    }
  });
  if (dup_out != nullptr) *dup_out = dup;
  return got;
}

std::set<test::MaxMatch> serial_pairs(const seq::FragmentStore& store) {
  SuffixTree serial(store, GstParams{.min_match = 8, .prefix_w = 0});
  const auto ref = PairGenerator::generate_all(serial, {.dup_elim = false});
  std::set<test::MaxMatch> expected;
  for (const auto& q : ref)
    expected.insert({q.seq_a, q.pos_a, q.seq_b, q.pos_b, q.match_len});
  return expected;
}

TEST_P(ParallelGstRanks, FaultTolerantPathMatchesSerial) {
  const int p = GetParam();
  util::Prng rng(911);
  const auto store = test::random_store(rng, 40, 40, 120, 0.02);
  bool dup = false;
  const auto got = ft_pair_union(p, store, {}, nullptr, &dup);
  EXPECT_FALSE(dup) << "a maximal match was generated on two ranks";
  EXPECT_EQ(got, serial_pairs(store));
}

TEST(ParallelGstFT, KilledRankBucketsAreReassigned) {
  // Rank 2 dies at its very first user send (the histogram): the
  // coordinator recomputes its slice, assigns it no buckets, and the
  // survivors' union still equals the serial pair stream.
  util::Prng rng(313);
  const auto store = test::random_store(rng, 36, 40, 120, 0.02);
  vmpi::FaultPlan faults;
  faults.crashes.push_back({.rank = 2, .at_send = 1});
  gst::GstBuildStats agg;
  const auto got = ft_pair_union(4, store, faults, &agg);
  EXPECT_EQ(got, serial_pairs(store));
  EXPECT_GE(agg.ranks_recovered, 1u);
}

TEST(ParallelGstFT, MidRedistributionCrashRecovers) {
  // Rank 1 dies partway through its suffix sends: peers that heard from it
  // use the message, the rest recompute the identical contribution, and
  // its own buckets move to survivors at the confirmation round.
  util::Prng rng(707);
  const auto store = test::random_store(rng, 36, 40, 120, 0.02);
  vmpi::FaultPlan faults;
  faults.crashes.push_back({.rank = 1, .at_send = 3});
  gst::GstBuildStats agg;
  const auto got = ft_pair_union(4, store, faults, &agg);
  EXPECT_EQ(got, serial_pairs(store));
  EXPECT_GE(agg.buckets_reassigned, 1u)
      << "the dead rank's buckets were never reassigned";
}

TEST(ParallelGstFT, DroppedMessagesAreRecomputed) {
  util::Prng rng(515);
  const auto store = test::random_store(rng, 36, 40, 120, 0.02);
  vmpi::FaultPlan faults;
  faults.drops.push_back({.rank = 1, .at_send = 1});   // lost histogram
  faults.drops.push_back({.rank = 3, .at_send = 2});   // lost suffix batch
  gst::GstBuildStats agg;
  const auto got = ft_pair_union(4, store, faults, &agg);
  EXPECT_EQ(got, serial_pairs(store));
  EXPECT_GE(agg.ft_retries, 1u);
}

TEST(ParallelGstFT, ResumeFromRecordedTableSkipsConstruction) {
  // A resumed build (recorded owner table) must produce the same portions
  // with zero construction traffic.
  util::Prng rng(212);
  const auto store = test::random_store(rng, 30, 40, 120, 0.02);
  std::vector<std::int32_t> table;
  {
    vmpi::Runtime rt(3);
    std::mutex mu;
    rt.run([&](vmpi::Comm& comm) {
      ParallelGstParams params;
      params.gst = GstParams{.min_match = 8, .prefix_w = 3};
      params.fault_tolerant = true;
      auto dist = gst::build_distributed_gst(comm, store, params);
      std::lock_guard<std::mutex> lock(mu);
      if (comm.rank() == 0) table = dist.bucket_owner;
    });
  }
  ASSERT_FALSE(table.empty());

  std::mutex mu;
  std::set<test::MaxMatch> got;
  vmpi::Runtime rt(3);
  rt.run([&](vmpi::Comm& comm) {
    ParallelGstParams params;
    params.gst = GstParams{.min_match = 8, .prefix_w = 3};
    params.fault_tolerant = true;
    params.resume_bucket_owner = &table;
    const auto before = comm.ledger().bytes_sent;
    auto dist = gst::build_distributed_gst(comm, store, params);
    EXPECT_EQ(comm.ledger().bytes_sent, before)
        << "resume must not communicate";
    EXPECT_EQ(dist.stats.resumed_from_plan, 1);
    PairGenerator gen(*dist.tree, {.dup_elim = false});
    PromisingPair q;
    std::lock_guard<std::mutex> lock(mu);
    while (gen.next(q)) {
      test::MaxMatch mm{dist.local_to_global[q.seq_a], q.pos_a,
                        dist.local_to_global[q.seq_b], q.pos_b, q.match_len};
      if (std::get<0>(mm) > std::get<2>(mm)) {
        mm = {std::get<2>(mm), std::get<3>(mm), std::get<0>(mm),
              std::get<1>(mm), std::get<4>(mm)};
      }
      got.insert(mm);
    }
  });
  EXPECT_EQ(got, serial_pairs(store));
}

TEST(ParallelGst, RejectsBadPrefix) {
  util::Prng rng(5);
  const auto store = test::random_store(rng, 5, 40, 60);
  vmpi::Runtime rt(2);
  EXPECT_THROW(rt.run([&](vmpi::Comm& comm) {
                 ParallelGstParams params;
                 params.gst = GstParams{.min_match = 4, .prefix_w = 9};
                 (void)gst::build_distributed_gst(comm, store, params);
               }),
               std::runtime_error);
}

}  // namespace
}  // namespace pgasm
