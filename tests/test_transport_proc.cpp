// Tests for the multi-process vmpi transport: real forked rank processes
// over shared-memory rings must reproduce the thread transport's semantics
// (point-to-point, ssend rendezvous, collectives, liveness, faults) while
// adding the things only real processes exercise — stash shipping across
// the process boundary, ledger/obs merge from exit blobs, streaming
// messages bigger than a ring, and real SIGKILL crash injection.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm {
namespace {

using vmpi::Comm;
using vmpi::Runtime;

TEST(TransportResolve, NamesAndEnvFallback) {
  EXPECT_EQ(vmpi::resolve_transport("thread"), vmpi::TransportKind::kThread);
  EXPECT_EQ(vmpi::resolve_transport("proc"), vmpi::TransportKind::kProc);
  EXPECT_THROW(vmpi::resolve_transport("carrier-pigeon"), std::runtime_error);

  ::unsetenv("PGASM_TRANSPORT");
  EXPECT_EQ(vmpi::resolve_transport(""), vmpi::TransportKind::kThread);
  ::setenv("PGASM_TRANSPORT", "proc", 1);
  EXPECT_EQ(vmpi::resolve_transport(""), vmpi::TransportKind::kProc);
  ::setenv("PGASM_TRANSPORT", "thread", 1);
  EXPECT_EQ(vmpi::resolve_transport(""), vmpi::TransportKind::kThread);
  ::unsetenv("PGASM_TRANSPORT");

  EXPECT_STREQ(vmpi::transport_name(vmpi::TransportKind::kThread), "thread");
  EXPECT_STREQ(vmpi::transport_name(vmpi::TransportKind::kProc), "proc");
}

TEST(ProcTransport, PointToPointRing) {
  const int p = 4;
  Runtime rt(p, "proc");
  EXPECT_EQ(rt.transport(), vmpi::TransportKind::kProc);
  rt.run([](Comm& c) {
    EXPECT_EQ(c.transport_kind(), vmpi::TransportKind::kProc);
    const int to = (c.rank() + 1) % c.size();
    const int from = (c.rank() - 1 + c.size()) % c.size();
    c.send_value(to, 1, c.rank() * 10);
    vmpi::Status st;
    const int v = c.recv_value<int>(from, 1, &st);
    EXPECT_EQ(v, from * 10);
    EXPECT_EQ(st.source, from);
    EXPECT_EQ(st.tag, 1);
  });
}

TEST(ProcTransport, RanksAreRealProcesses) {
  // Each rank reports its pid through the stash; with forked ranks all
  // pids must be distinct and only rank 0's equals the parent's.
  const int p = 4;
  const pid_t parent = ::getpid();
  Runtime rt(p, "proc");
  const auto cost = rt.run([](Comm& c) {
    c.stash_value<std::int64_t>(1, static_cast<std::int64_t>(::getpid()));
  });
  std::vector<std::int64_t> pids;
  for (int r = 0; r < p; ++r) {
    const auto pid = cost.stash_value<std::int64_t>(r, 1);
    ASSERT_TRUE(pid.has_value()) << "rank " << r;
    pids.push_back(*pid);
  }
  EXPECT_EQ(pids[0], static_cast<std::int64_t>(parent));
  std::sort(pids.begin(), pids.end());
  EXPECT_EQ(std::unique(pids.begin(), pids.end()), pids.end());
  for (std::size_t r = 1; r < pids.size(); ++r) {
    EXPECT_NE(pids[r], static_cast<std::int64_t>(parent));
  }
}

TEST(ProcTransport, SsendRendezvousAndCollectives) {
  const int p = 4;
  Runtime rt(p, "proc");
  rt.run([](Comm& c) {
    // ssend both directions around the ring.
    const int to = (c.rank() + 1) % c.size();
    const int from = (c.rank() - 1 + c.size()) % c.size();
    if (c.rank() % 2 == 0) {
      c.ssend_vector<int>(to, 2, {c.rank(), c.rank() + 1});
      const auto got = c.recv_vector<int>(from, 2);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], from);
    } else {
      const auto got = c.recv_vector<int>(from, 2);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], from);
      c.ssend_vector<int>(to, 2, {c.rank(), c.rank() + 1});
    }
    c.barrier();
    EXPECT_EQ(c.allreduce_sum<int>(c.rank()),
              c.size() * (c.size() - 1) / 2);
    EXPECT_EQ(c.allreduce_max<int>(c.rank()), c.size() - 1);
    const auto rows = c.allgatherv<std::uint32_t>(
        std::vector<std::uint32_t>(static_cast<std::size_t>(c.rank()) + 1,
                                   static_cast<std::uint32_t>(c.rank())));
    for (int r = 0; r < c.size(); ++r) {
      ASSERT_EQ(rows[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r) + 1);
    }
    // Personalized exchange, staged variant (the paper's Alltoallv).
    std::vector<std::vector<int>> out(static_cast<std::size_t>(c.size()));
    for (int d = 0; d < c.size(); ++d) {
      out[static_cast<std::size_t>(d)] = {c.rank() * 100 + d};
    }
    const auto in = c.staged_alltoallv(out);
    for (int s = 0; s < c.size(); ++s) {
      ASSERT_EQ(in[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(in[static_cast<std::size_t>(s)][0], s * 100 + c.rank());
    }
  });
}

TEST(ProcTransport, MessagesLargerThanRingStream) {
  const int p = 2;
  Runtime rt(p, "proc");
  rt.set_proc_ring_bytes(4096);  // force multi-chunk streaming
  const std::size_t n = 1 << 20;  // 1 MiB through a 4 KiB ring
  rt.run([n](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> big(n);
      for (std::size_t i = 0; i < n; ++i) {
        big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
      }
      c.send_vector(1, 5, big);
      const auto echoed = c.recv_vector<std::uint8_t>(1, 6);
      ASSERT_EQ(echoed.size(), n);
      EXPECT_EQ(echoed, big);
    } else {
      auto big = c.recv_vector<std::uint8_t>(0, 5);
      ASSERT_EQ(big.size(), n);
      c.send_vector(0, 6, big);
    }
  });
}

TEST(ProcTransport, LedgerMergedFromChildren) {
  const int p = 3;
  Runtime rt(p, "proc");
  const auto cost = rt.run([](Comm& c) {
    const int to = (c.rank() + 1) % c.size();
    c.send_value(to, 1, 7);
    (void)c.recv_value<int>(vmpi::kAnySource, 1);
  });
  ASSERT_EQ(cost.per_rank.size(), 3u);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(cost.per_rank[static_cast<std::size_t>(r)].msgs_sent, 1u)
        << "rank " << r;
    EXPECT_EQ(cost.per_rank[static_cast<std::size_t>(r)].msgs_recv, 1u)
        << "rank " << r;
  }
  EXPECT_EQ(cost.total_msgs(), 3u);
}

TEST(ProcTransport, CrashIsARealSigkillAndSurvivorsContinue) {
  const int p = 4;
  vmpi::FaultPlan faults;
  faults.crashes.push_back({/*rank=*/2, /*at_send=*/1});
  Runtime rt(p, "proc", vmpi::CostParams{}, faults);
  const auto cost = rt.run([](Comm& c) {
    c.stash_value<int>(9, 1);  // stashed before any send — lost on SIGKILL
    const int to = (c.rank() + 1) % c.size();
    c.send_value(to, 3, c.rank());
    if (c.rank() == 2) return;  // unreachable: the send above kills rank 2
    // Survivors: tolerate the dead peer via timeouts / failure oracle.
    for (;;) {
      try {
        (void)c.recv_value_timeout<int>(vmpi::kAnySource, 3, 0.2);
        break;
      } catch (const vmpi::TimeoutError&) {
        if (c.rank_failed(2) && c.rank() == 3) break;  // sender died
      }
    }
  });
  EXPECT_EQ(cost.faults.crashes_injected, 1u);
  EXPECT_EQ(cost.faults.ranks_failed, 1u);
  // The SIGKILLed rank shipped nothing back: no ledger, no stash.
  EXPECT_EQ(cost.per_rank[2].msgs_sent, 0u);
  EXPECT_FALSE(cost.stash_value<int>(2, 9).has_value());
  EXPECT_TRUE(cost.stash_value<int>(1, 9).has_value());
}

TEST(ProcTransport, RecvFromDeadRankFailsFast) {
  const int p = 3;
  vmpi::FaultPlan faults;
  faults.crashes.push_back({/*rank=*/1, /*at_send=*/1});
  Runtime rt(p, "proc", vmpi::CostParams{}, faults);
  rt.run([](Comm& c) {
    if (c.rank() == 1) {
      c.send_value(0, 1, 0);  // dies here (SIGKILL before the send lands)
      return;
    }
    if (c.rank() == 0) {
      // Wait out the failure detector, then a deadline-carrying recv from
      // the dead rank must throw instead of blocking forever.
      while (!c.rank_failed(1)) {
      }
      EXPECT_THROW((void)c.recv_value_timeout<int>(1, 99, 10.0),
                   vmpi::TimeoutError);
    }
  });
}

TEST(ProcTransport, ChildErrorPropagatesWithMessage) {
  const int p = 3;
  Runtime rt(p, "proc");
  try {
    rt.run([](Comm& c) {
      if (c.rank() == 2) throw std::runtime_error("rank 2 exploded");
      c.barrier();  // interrupted by the abort
    });
    FAIL() << "expected the child's exception to propagate";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_TRUE(msg == "rank 2 exploded" || msg == "vmpi run aborted") << msg;
  }
}

TEST(ProcTransport, ObsMergeStitchesChildEvents) {
  auto& tracer = obs::tracer();
  tracer.clear();
  tracer.set_enabled(true);
  const int p = 3;
  Runtime rt(p, "proc");
  rt.run([](Comm& c) {
    const int to = (c.rank() + 1) % c.size();
    c.send_value(to, 1, c.rank());
    (void)c.recv_value<int>(vmpi::kAnySource, 1);
  });
  // Every rank's ring must hold merged events — child ranks' came across
  // the process boundary in exit blobs. Each rank did one user send and one
  // user recv, so both instants/spans must be present with mseq args.
  const auto all = tracer.drain_all();
  for (int r = 0; r < p; ++r) {
    ASSERT_TRUE(all.count(r) != 0) << "no events for rank " << r;
    int sends = 0;
    int recvs = 0;
    for (const auto& ev : all.at(r)) {
      if (std::string(ev.name) == "send") ++sends;
      if (std::string(ev.name) == "recv") ++recvs;
    }
    EXPECT_EQ(sends, 1) << "rank " << r;
    EXPECT_EQ(recvs, 1) << "rank " << r;
  }
  tracer.set_enabled(false);
  tracer.clear();
}

TEST(ProcTransport, ContigLevelDeterminismVsThread) {
  // The same seeded SPMD computation must produce bit-identical results on
  // both transports: the transport moves bytes, it must not change them.
  const int p = 4;
  const auto compute = [](const std::string& transport) {
    Runtime rt(p, transport);
    std::vector<std::uint64_t> merged;
    auto cost = rt.run([&merged](Comm& c) {
      std::vector<std::uint64_t> local;
      for (int i = 0; i < 50; ++i) {
        local.push_back(static_cast<std::uint64_t>(c.rank()) * 1000003u +
                        static_cast<std::uint64_t>(i) * 17u);
      }
      auto rows = c.gatherv(local, 0);
      if (c.rank() == 0) {
        std::vector<std::uint64_t> flat;
        for (auto& row : rows) {
          flat.insert(flat.end(), row.begin(), row.end());
        }
        std::sort(flat.begin(), flat.end());
        merged = flat;
      }
      c.barrier();
    });
    return merged;
  };
  const auto via_thread = compute("thread");
  const auto via_proc = compute("proc");
  ASSERT_EQ(via_thread.size(), 200u);
  EXPECT_EQ(via_thread, via_proc);
}

}  // namespace
}  // namespace pgasm
