// Tests for util: PRNG, union-find, radix sorts, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "util/prng.hpp"
#include "util/radix_sort.hpp"
#include "util/stats.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/union_find.hpp"

namespace pgasm {
namespace {

TEST(Prng, DeterministicForSeed) {
  util::Prng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  util::Prng a2(42), c2(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c2());
  EXPECT_TRUE(any_diff);
}

TEST(Prng, BelowRespectsBound) {
  util::Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Prng, UniformInUnitInterval) {
  util::Prng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Prng, SplitStreamsDiffer) {
  util::Prng rng(5);
  auto s1 = rng.split();
  auto s2 = rng.split();
  bool diff = false;
  for (int i = 0; i < 32; ++i) diff |= (s1() != s2());
  EXPECT_TRUE(diff);
}

TEST(UnionFind, BasicMerges) {
  util::UnionFind uf(10);
  EXPECT_EQ(uf.num_sets(), 10u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_sets(), 8u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.set_size(0), 4u);
}

TEST(UnionFind, SizesSumToN) {
  util::Prng rng(3);
  util::UnionFind uf(500);
  for (int i = 0; i < 400; ++i) {
    uf.unite(static_cast<std::uint32_t>(rng.below(500)),
             static_cast<std::uint32_t>(rng.below(500)));
  }
  const auto sets = uf.extract_sets();
  EXPECT_EQ(sets.size(), uf.num_sets());
  std::size_t total = 0;
  std::uint32_t max_size = 0;
  for (const auto& s : sets) {
    total += s.size();
    max_size = std::max(max_size, static_cast<std::uint32_t>(s.size()));
  }
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(max_size, uf.max_set_size());
}

TEST(UnionFind, MergeOrderIrrelevant) {
  // Same edge set applied in two different orders gives the same labeling.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges = {
      {0, 1}, {2, 3}, {4, 5}, {1, 2}, {6, 7}, {8, 9}, {7, 8}};
  util::UnionFind a(10), b(10);
  for (const auto& [x, y] : edges) a.unite(x, y);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it)
    b.unite(it->first, it->second);
  const auto la = a.labels();
  const auto lb = b.labels();
  // Compare partition structure (labels may differ, classes must match).
  std::map<std::uint32_t, std::uint32_t> remap;
  for (std::size_t i = 0; i < la.size(); ++i) {
    auto [it, fresh] = remap.insert({la[i], lb[i]});
    EXPECT_EQ(it->second, lb[i]);
  }
}

TEST(UnionFind, LabelsDense) {
  util::UnionFind uf(6);
  uf.unite(0, 5);
  uf.unite(1, 2);
  const auto labels = uf.labels();
  for (auto l : labels) EXPECT_LT(l, uf.num_sets());
  EXPECT_EQ(labels[0], labels[5]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(RadixSort, U64WithPayload) {
  util::Prng rng(9);
  std::vector<std::uint64_t> keys(5000);
  std::vector<std::uint32_t> payload(5000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng();
    payload[i] = static_cast<std::uint32_t>(i);
  }
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  auto orig = keys;
  util::radix_sort_u64(keys, payload);
  EXPECT_EQ(keys, expected);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(orig[payload[i]], keys[i]);
  }
}

TEST(RadixSort, CountingSortDescStable) {
  struct Item {
    std::uint32_t key;
    int order;
  };
  std::vector<Item> items = {{3, 0}, {1, 1}, {3, 2}, {2, 3}, {1, 4}, {3, 5}};
  auto sorted = util::counting_sort_desc(std::span<const Item>(items), 4,
                                         [](const Item& x) { return x.key; });
  ASSERT_EQ(sorted.size(), 6u);
  EXPECT_EQ(sorted[0].order, 0);
  EXPECT_EQ(sorted[1].order, 2);
  EXPECT_EQ(sorted[2].order, 5);
  EXPECT_EQ(sorted[3].order, 3);
  EXPECT_EQ(sorted[4].order, 1);
  EXPECT_EQ(sorted[5].order, 4);
}

TEST(Stats, RunningMoments) {
  util::RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.13809, 1e-4);
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

TEST(Stats, N50) {
  EXPECT_EQ(util::n50({}), 0u);
  EXPECT_EQ(util::n50({10}), 10u);
  // total 90, half 45; sorted desc: 30,25,20,15 — 30+25=55 >= 45 -> 25.
  EXPECT_EQ(util::n50({15, 30, 20, 25}), 25u);
}

TEST(Stats, Formatting) {
  EXPECT_EQ(util::fmt_count(0), "0");
  EXPECT_EQ(util::fmt_count(999), "999");
  EXPECT_EQ(util::fmt_count(1607364), "1,607,364");
  EXPECT_EQ(util::fmt_percent(0.437, 1), "43.7%");
  EXPECT_EQ(util::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(util::fmt_bytes(1536), "1.50 KB");
}

TEST(Stats, TableRenders) {
  util::Table t({"name", "count"});
  t.add_row({"alpha", "1,234"});
  t.add_row({"beta", "56"});
  const auto s = t.render();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1,234"), std::string::npos);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",       "--reads=100", "--error", "0.02",
                        "positional", "--verbose",   "--name",  "out.fa"};
  util::Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_u64("reads", 0), 100u);
  EXPECT_DOUBLE_EQ(flags.get_double("error", 0), 0.02);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("name", ""), "out.fa");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  // Defaults for unset flags.
  EXPECT_EQ(flags.get_i64("missing", -7), -7);
  EXPECT_FALSE(flags.get_bool("off", false));
}

TEST(Flags, BoolFalseForms) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  util::Flags flags(5, const_cast<char**>(argv));
  EXPECT_FALSE(flags.get_bool("a", true));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_FALSE(flags.get_bool("c", true));
  EXPECT_TRUE(flags.get_bool("d", false));
}

TEST(Flags, BoolAcceptedForms) {
  struct Case {
    const char* value;
    bool expected;
  };
  // Every accepted spelling, in assorted cases; default is the opposite of
  // the expected result so a silent fall-through would be caught.
  const Case cases[] = {
      {"true", true},   {"TRUE", true},   {"True", true}, {"1", true},
      {"yes", true},    {"YES", true},    {"on", true},   {"On", true},
      {"false", false}, {"FALSE", false}, {"0", false},   {"no", false},
      {"No", false},    {"off", false},   {"OFF", false},
  };
  for (const auto& c : cases) {
    const std::string arg = std::string("--flag=") + c.value;
    const char* argv[] = {"prog", arg.c_str()};
    util::Flags flags(2, const_cast<char**>(argv));
    EXPECT_EQ(flags.get_bool("flag", !c.expected), c.expected)
        << "--flag=" << c.value;
  }
}

TEST(Flags, BoolRejectsGarbage) {
  for (const char* bad : {"--flag=maybe", "--flag=2", "--flag=tru",
                          "--flag=yess", "--flag="}) {
    const char* argv[] = {"prog", bad};
    util::Flags flags(2, const_cast<char**>(argv));
    EXPECT_THROW((void)flags.get_bool("flag", false), std::invalid_argument)
        << bad;
  }
}

TEST(Flags, BoolDefaultWhenAbsent) {
  const char* argv[] = {"prog"};
  util::Flags flags(1, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("missing", true));
  EXPECT_FALSE(flags.get_bool("missing", false));
}

TEST(Flags, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  util::Flags flags(2, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Log, LevelsFilter) {
  const auto prev = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  // Nothing observable to assert on stderr cheaply; exercise the paths.
  util::log_debug() << "dropped";
  util::log_info() << "dropped " << 42;
  util::log_error() << "emitted";
  util::set_log_level(prev);
  SUCCEED();
}

TEST(Log, ParseLogLevel) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::kError);
  // Unknown / null fall back.
  EXPECT_EQ(util::parse_log_level("verbose", LogLevel::kError),
            LogLevel::kError);
  EXPECT_EQ(util::parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level(""), LogLevel::kInfo);
}

TEST(Log, RankPrefixRoundTrip) {
  EXPECT_LT(util::log_rank(), 0);  // no rank registered on this thread
  util::set_log_rank(3);
  EXPECT_EQ(util::log_rank(), 3);
  util::log_info() << "rank-prefixed line";
  util::set_log_rank(-1);
  EXPECT_LT(util::log_rank(), 0);
}

TEST(CountingSortAscending, StableByKey) {
  struct Item {
    std::uint32_t key;
    int order;
  };
  std::vector<Item> items = {{2, 0}, {0, 1}, {2, 2}, {1, 3}};
  auto sorted = util::counting_sort(std::span<const Item>(items), 3,
                                    [](const Item& x) { return x.key; });
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].order, 1);
  EXPECT_EQ(sorted[1].order, 3);
  EXPECT_EQ(sorted[2].order, 0);
  EXPECT_EQ(sorted[3].order, 2);
}

}  // namespace
}  // namespace pgasm
