// Tests for preprocessing: quality trimming, vector screening, statistical
// repeat masking, invalidation rules, and Table-2 style type accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "preprocess/preprocess.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using preprocess::PreprocessParams;
using preprocess::RepeatMasker;
using preprocess::RepeatMaskParams;

TEST(RepeatMasker, CanonicalKmerStrandIndependent) {
  const auto fwd = seq::encode("ACGTACGTACGTACGT");
  const auto rev = seq::reverse_complement(fwd);
  std::uint64_t a = 0, b = 0;
  ASSERT_TRUE(RepeatMasker::canonical_kmer(fwd, 0, 16, &a));
  ASSERT_TRUE(RepeatMasker::canonical_kmer(rev, 0, 16, &b));
  EXPECT_EQ(a, b);
}

TEST(RepeatMasker, RejectsMaskedWindow) {
  auto s = seq::encode("ACGTNACGTACGTACGTT");
  std::uint64_t k = 0;
  EXPECT_FALSE(RepeatMasker::canonical_kmer(s, 0, 16, &k));
  EXPECT_TRUE(RepeatMasker::canonical_kmer(s, 5, 12, &k));
}

TEST(RepeatMasker, MasksHighCopySequence) {
  // 40 copies of a repeat read + 20 unique reads.
  util::Prng rng(3);
  const auto repeat = test::random_dna(rng, 200);
  seq::FragmentStore store;
  for (int i = 0; i < 40; ++i) store.add(repeat);
  for (int i = 0; i < 20; ++i) store.add(test::random_dna(rng, 200));

  RepeatMaskParams params;
  params.k = 16;
  params.sample_fraction = 0.5;
  RepeatMasker masker(store, params);
  EXPECT_GT(masker.num_repetitive_kmers(), 0u);

  std::uint64_t masked_repeat = masker.mask_fragment(store, 0);
  std::uint64_t masked_unique = masker.mask_fragment(store, 45);
  EXPECT_GT(masked_repeat, 150u);
  EXPECT_EQ(masked_unique, 0u);
}

TEST(RepeatMasker, SpectrumSnapshotSortedAndStable) {
  // repetitive_kmers() is the canonicalized view of the unordered k-mer
  // set (DESIGN.md §16): key-sorted, so every consumer — the spectrum
  // stats loops, the preprocess fingerprint — sees one fixed order.
  util::Prng rng(3);
  const auto repeat = test::random_dna(rng, 200);
  seq::FragmentStore store;
  for (int i = 0; i < 40; ++i) store.add(repeat);
  for (int i = 0; i < 20; ++i) store.add(test::random_dna(rng, 200));

  RepeatMaskParams params;
  params.k = 16;
  params.sample_fraction = 0.5;
  RepeatMasker masker(store, params);
  const auto snap = masker.repetitive_kmers();
  ASSERT_EQ(snap.size(), masker.num_repetitive_kmers());
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
  EXPECT_EQ(snap, masker.repetitive_kmers());
}

TEST(Preprocess, RepeatSpectrumFingerprintIsReproducible) {
  // The fingerprint folds the *sorted* spectrum, so two identical inputs
  // must agree bit for bit; test_determinism extends this across rank
  // counts and transports.
  util::Prng rng(7);
  const auto repeat = test::random_dna(rng, 250);
  seq::FragmentStore store;
  for (int i = 0; i < 30; ++i) store.add(repeat);
  for (int i = 0; i < 15; ++i) store.add(test::random_dna(rng, 250));

  PreprocessParams params;
  params.repeat.sample_fraction = 1.0;
  const auto a = preprocess::preprocess(store, {}, params);
  const auto b = preprocess::preprocess(store, {}, params);
  EXPECT_NE(a.stats.repeat_spectrum_fingerprint, 0u);
  EXPECT_EQ(a.stats.repeat_spectrum_fingerprint,
            b.stats.repeat_spectrum_fingerprint);
}

TEST(RepeatMasker, LibraryScreening) {
  util::Prng rng(5);
  const auto known = test::random_dna(rng, 100);
  seq::FragmentStore store;
  // One read embedding the known repeat.
  std::vector<seq::Code> read = test::random_dna(rng, 50);
  read.insert(read.end(), known.begin(), known.end());
  auto tail = test::random_dna(rng, 50);
  read.insert(read.end(), tail.begin(), tail.end());
  store.add(read);

  RepeatMaskParams params;
  params.threshold_multiple = 0;  // disable statistical detection
  RepeatMasker masker(store, params);
  masker.add_library_sequence(known);
  const auto masked = masker.mask_fragment(store, 0);
  EXPECT_GE(masked, 100u);
  EXPECT_LT(masked, 140u);  // flanks survive
}

TEST(Preprocess, QualityTrimRemovesBadEnds) {
  seq::FragmentStore store;
  std::vector<seq::Code> read(300, seq::kA);
  std::vector<std::uint8_t> qual(300, 40);
  for (int i = 0; i < 30; ++i) qual[i] = 5;           // bad 5' end
  for (int i = 0; i < 20; ++i) qual[299 - i] = 5;     // bad 3' end
  store.add(read, seq::FragType::kWGS, "r", qual);

  PreprocessParams params;
  params.mask_repeats = false;
  params.min_len = 50;
  const auto result = preprocess::preprocess(store, {}, params);
  ASSERT_EQ(result.store.size(), 1u);
  EXPECT_LE(result.store.length(0), 252u);
  EXPECT_GE(result.store.length(0), 240u);
  EXPECT_GT(result.stats.quality_trimmed_bases, 40u);
}

TEST(Preprocess, VectorScreenTrimsContamination) {
  util::Prng rng(7);
  const auto& lib = sim::vector_library();
  std::vector<seq::Code> read(lib[0].begin(), lib[0].begin() + 40);
  const auto genomic = test::random_dna(rng, 260);
  read.insert(read.end(), genomic.begin(), genomic.end());
  seq::FragmentStore store;
  store.add(read);

  PreprocessParams params;
  params.mask_repeats = false;
  params.min_len = 50;
  const auto result = preprocess::preprocess(store, lib, params);
  ASSERT_EQ(result.store.size(), 1u);
  EXPECT_LE(result.store.length(0), 260u);
  EXPECT_GT(result.stats.vector_trimmed_bases, 20u);
}

TEST(Preprocess, DiscardsShortAndFullyMasked) {
  util::Prng rng(9);
  const auto repeat = test::random_dna(rng, 300);
  seq::FragmentStore store;
  for (int i = 0; i < 30; ++i) store.add(repeat);   // pure repeat reads
  store.add(test::random_dna(rng, 60));             // too short
  store.add(test::random_dna(rng, 300));            // good unique read

  PreprocessParams params;
  params.min_len = 100;
  params.repeat.sample_fraction = 1.0;
  // All-identical reads are adversarial for the coverage-peak statistic
  // (the repeat *is* the apparent peak); pin the absolute threshold.
  params.repeat.fixed_threshold = 4;
  params.max_masked_fraction = 0.5;
  const auto result = preprocess::preprocess(store, {}, params);
  EXPECT_EQ(result.stats.discarded_short, 1u);
  EXPECT_GE(result.stats.discarded_masked, 28u);
  // The unique read survives.
  bool unique_kept = false;
  for (auto id : result.kept_ids) unique_kept |= (id == 31u);
  EXPECT_TRUE(unique_kept);
}

TEST(Preprocess, UnmaskedStoreParallelsMasked) {
  util::Prng rng(10);
  const auto repeat = test::random_dna(rng, 250);
  seq::FragmentStore store;
  for (int i = 0; i < 20; ++i) store.add(repeat);
  // Half-repeat half-unique reads survive with masking.
  for (int i = 0; i < 10; ++i) {
    std::vector<seq::Code> r(repeat.begin(), repeat.begin() + 100);
    const auto uniq = test::random_dna(rng, 200);
    r.insert(r.end(), uniq.begin(), uniq.end());
    store.add(r);
  }
  PreprocessParams params;
  params.repeat.sample_fraction = 1.0;
  params.max_masked_fraction = 0.6;
  const auto result = preprocess::preprocess(store, {}, params);
  ASSERT_EQ(result.store.size(), result.unmasked_store.size());
  ASSERT_EQ(result.store.size(), result.kept_ids.size());
  std::uint64_t masked_bases = 0, unmasked_bases = 0;
  for (seq::FragmentId id = 0; id < result.store.size(); ++id) {
    EXPECT_EQ(result.store.length(id), result.unmasked_store.length(id));
    masked_bases += result.store.length(id) -
                    static_cast<std::uint64_t>(
                        result.store.masked_fraction(id) *
                        result.store.length(id) + 0.5);
    unmasked_bases += result.unmasked_store.length(id);
    EXPECT_DOUBLE_EQ(result.unmasked_store.masked_fraction(id), 0.0);
  }
  EXPECT_GT(result.stats.masked_bases, 0u);
}

TEST(Preprocess, Table2ShapeGeneEnrichedSurvivesShotgunDoesNot) {
  // The paper's Table 2 effect: on a repeat-rich genome, most WGS reads are
  // invalidated by repeat masking while gene-enriched (MF/HC) reads
  // largely survive.
  const auto g = sim::simulate_genome(sim::maize_like(150'000, 33));
  util::Prng rng(11);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 400;
  rp.len_spread = 50;
  rp.vector_contam_prob = 0.02;
  sim::sample_wgs(rs, g, 1.0, rp, rng);
  sim::sample_gene_enriched(rs, g, 300, 0.95, rp, rng, seq::FragType::kMF);

  PreprocessParams params;
  params.repeat.sample_fraction = 1.0;  // our test project is only ~1X deep
  params.max_masked_fraction = 0.5;
  const auto result =
      preprocess::preprocess(rs.store, sim::vector_library(), params);

  const auto& wgs = result.stats.by_type.at(seq::FragType::kWGS);
  const auto& mf = result.stats.by_type.at(seq::FragType::kMF);
  const double wgs_survival = static_cast<double>(wgs.fragments_after) /
                              static_cast<double>(wgs.fragments_before);
  const double mf_survival = static_cast<double>(mf.fragments_after) /
                             static_cast<double>(mf.fragments_before);
  EXPECT_LT(wgs_survival, 0.65);
  EXPECT_GT(mf_survival, 0.6);
  EXPECT_GT(mf_survival, wgs_survival + 0.25);
}

TEST(Preprocess, MaskingAblationSwitch) {
  util::Prng rng(13);
  const auto repeat = test::random_dna(rng, 300);
  seq::FragmentStore store;
  for (int i = 0; i < 30; ++i) store.add(repeat);
  PreprocessParams params;
  params.repeat.sample_fraction = 1.0;
  params.mask_repeats = false;
  const auto result = preprocess::preprocess(store, {}, params);
  EXPECT_EQ(result.stats.masked_bases, 0u);
  EXPECT_EQ(result.store.size(), 30u);
}

}  // namespace
}  // namespace pgasm
