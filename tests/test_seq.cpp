// Tests for seq: alphabet, reverse complement, FragmentStore, FASTA I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "seq/fasta.hpp"
#include "seq/fastq.hpp"
#include "seq/fragment_store.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

TEST(Alphabet, EncodeDecode) {
  EXPECT_EQ(seq::encode_char('A'), seq::kA);
  EXPECT_EQ(seq::encode_char('C'), seq::kC);
  EXPECT_EQ(seq::encode_char('G'), seq::kG);
  EXPECT_EQ(seq::encode_char('T'), seq::kT);
  EXPECT_EQ(seq::encode_char('N'), seq::kMask);
  EXPECT_EQ(seq::encode_char('a'), seq::kMask);  // soft-masked
  EXPECT_EQ(seq::encode_char('x'), seq::kMask);
  EXPECT_EQ(seq::decode(seq::encode("ACGTN")), "ACGTN");
}

TEST(Alphabet, ComplementPairs) {
  EXPECT_EQ(seq::complement(seq::kA), seq::kT);
  EXPECT_EQ(seq::complement(seq::kT), seq::kA);
  EXPECT_EQ(seq::complement(seq::kC), seq::kG);
  EXPECT_EQ(seq::complement(seq::kG), seq::kC);
  EXPECT_EQ(seq::complement(seq::kMask), seq::kMask);
}

TEST(Alphabet, ReverseComplementKnown) {
  const auto codes = seq::encode("AACGT");
  EXPECT_EQ(seq::decode(seq::reverse_complement(codes)), "ACGTT");
}

class RevCompProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RevCompProperty, IsInvolution) {
  util::Prng rng(GetParam());
  const auto s = test::random_dna(rng, 50 + rng.below(200), 0.05);
  EXPECT_EQ(seq::reverse_complement(seq::reverse_complement(s)), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevCompProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FragmentStore, BasicAccessors) {
  seq::FragmentStore store;
  const auto id0 = store.add_ascii("ACGT", seq::FragType::kWGS, "r0");
  const auto id1 = store.add_ascii("GGGTTTAA", seq::FragType::kMF, "r1");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_length(), 12u);
  EXPECT_EQ(store.length(id0), 4u);
  EXPECT_EQ(store.length(id1), 8u);
  EXPECT_EQ(store.to_ascii(id0), "ACGT");
  EXPECT_EQ(store.to_ascii(id1), "GGGTTTAA");
  EXPECT_EQ(store.type(id0), seq::FragType::kWGS);
  EXPECT_EQ(store.name(id1), "r1");
  EXPECT_EQ(store.max_length(), 8u);
  EXPECT_EQ(store.count_of_type(seq::FragType::kMF), 1u);
  EXPECT_EQ(store.total_length_of_type(seq::FragType::kWGS), 4u);
}

TEST(FragmentStore, MaskingAndFractions) {
  seq::FragmentStore store;
  store.add_ascii("ACGTACGTAC");
  store.mask(0, 2, 6);
  EXPECT_EQ(store.to_ascii(0), "ACNNNNGTAC");
  EXPECT_DOUBLE_EQ(store.masked_fraction(0), 0.4);
  EXPECT_EQ(store.unmasked_length(), 6u);
}

TEST(FragmentStore, DoubledStoreLayout) {
  seq::FragmentStore store;
  store.add_ascii("AACG");
  store.add_ascii("TTGC");
  const auto doubled = seq::make_doubled_store(store);
  ASSERT_EQ(doubled.size(), 4u);
  EXPECT_EQ(doubled.to_ascii(0), "AACG");
  EXPECT_EQ(doubled.to_ascii(1), "CGTT");  // revcomp of AACG
  EXPECT_EQ(doubled.to_ascii(2), "TTGC");
  EXPECT_EQ(doubled.to_ascii(3), "GCAA");
  EXPECT_EQ(seq::DoubledView::fragment_of(3), 1u);
  EXPECT_TRUE(seq::DoubledView::is_rc(3));
  EXPECT_FALSE(seq::DoubledView::is_rc(2));
  EXPECT_EQ(seq::DoubledView::forward_id(1), 2u);
  EXPECT_EQ(seq::DoubledView::rc_id(1), 3u);
}

TEST(Fasta, RoundTrip) {
  seq::FragmentStore store;
  store.add_ascii("ACGTACGTACGT", seq::FragType::kWGS, "alpha");
  store.add_ascii("GGGG", seq::FragType::kMF, "beta");
  std::ostringstream out;
  seq::write_fasta(out, store, {.line_width = 5, .emit_type_token = true});

  seq::FragmentStore back;
  std::istringstream in(out.str());
  const auto n = seq::read_fasta(in, back);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(back.to_ascii(0), "ACGTACGTACGT");
  EXPECT_EQ(back.name(0), "alpha");
  EXPECT_EQ(back.type(0), seq::FragType::kWGS);
  EXPECT_EQ(back.type(1), seq::FragType::kMF);
}

TEST(Fasta, HandlesWindowsLineEndingsAndBlankLines) {
  std::istringstream in(">x\r\nACGT\r\n\r\nGG\r\n>y\r\nTT\r\n");
  seq::FragmentStore store;
  ASSERT_EQ(seq::read_fasta(in, store), 2u);
  EXPECT_EQ(store.to_ascii(0), "ACGTGG");
  EXPECT_EQ(store.to_ascii(1), "TT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>x\nACGT\n");
  seq::FragmentStore store;
  EXPECT_THROW(seq::read_fasta(in, store), std::runtime_error);
}

TEST(Fasta, MapsAmbiguityToMask) {
  std::istringstream in(">x\nACRYGT\n");
  seq::FragmentStore store;
  seq::read_fasta(in, store);
  EXPECT_EQ(store.to_ascii(0), "ACNNGT");
}

TEST(Fastq, RoundTrip) {
  seq::FragmentStore store;
  const auto codes = seq::encode("ACGTACGT");
  const std::vector<std::uint8_t> qual = {2, 10, 20, 30, 40, 50, 60, 5};
  store.add(codes, seq::FragType::kWGS, "readA", qual);
  std::ostringstream out;
  seq::write_fastq(out, store);

  seq::FragmentStore back;
  std::istringstream in(out.str());
  ASSERT_EQ(seq::read_fastq(in, back), 1u);
  EXPECT_EQ(back.to_ascii(0), "ACGTACGT");
  EXPECT_EQ(back.name(0), "readA");
  ASSERT_TRUE(back.has_quality());
  const auto q = back.quality(0);
  EXPECT_TRUE(std::equal(q.begin(), q.end(), qual.begin()));
}

TEST(Fastq, NoQualityStoreWritesDefault) {
  seq::FragmentStore store;
  store.add_ascii("ACGT");
  std::ostringstream out;
  seq::write_fastq(out, store, {.default_quality = 40});
  const std::string expected_quals(4, static_cast<char>(33 + 40));
  EXPECT_NE(out.str().find(expected_quals), std::string::npos);
}

TEST(Fastq, MalformedInputs) {
  seq::FragmentStore store;
  {
    std::istringstream in("ACGT\n");  // missing '@'
    EXPECT_THROW(seq::read_fastq(in, store), std::runtime_error);
  }
  {
    std::istringstream in("@r\nACGT\nIIII\n");  // missing '+'
    EXPECT_THROW(seq::read_fastq(in, store), std::runtime_error);
  }
  {
    std::istringstream in("@r\nACGT\n+\nII\n");  // length mismatch
    EXPECT_THROW(seq::read_fastq(in, store), std::runtime_error);
  }
  {
    std::istringstream in("@r\nACGT\n+\n");  // truncated
    EXPECT_THROW(seq::read_fastq(in, store), std::runtime_error);
  }
}

TEST(Fastq, QualityClampAndCrlf) {
  seq::FragmentStore store;
  std::istringstream in("@r desc\r\nAC\r\n+\r\n~~\r\n");  // '~' = phred 93
  ASSERT_EQ(seq::read_fastq(in, store), 1u);
  EXPECT_EQ(store.name(0), "r");
  EXPECT_EQ(store.quality(0)[0], 60);  // clamped
}

}  // namespace
}  // namespace pgasm
