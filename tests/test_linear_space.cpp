// Tests for the linear-space alignment kernels: Hirschberg divide-and-
// conquer global alignment and Myers' bit-parallel edit distance.
#include <gtest/gtest.h>

#include <algorithm>

#include "align/linear_space.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using align::AlignResult;
using align::Scoring;
using Seq = align::Seq;

/// O(nm) reference edit distance.
std::uint32_t dp_edit_distance(Seq a, Seq b) {
  std::vector<std::uint32_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j)
    row[j] = static_cast<std::uint32_t>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::uint32_t diag = row[0];
    row[0] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::uint32_t old = row[j];
      const bool eq = seq::is_base(a[i - 1]) && a[i - 1] == b[j - 1];
      row[j] = std::min({diag + (eq ? 0u : 1u), row[j] + 1, row[j - 1] + 1});
      diag = old;
    }
  }
  return row[b.size()];
}

class LinearSpaceRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearSpaceRandom, HirschbergMatchesFullMatrixScore) {
  util::Prng rng(GetParam());
  const Scoring sc;
  const auto a = test::random_dna(rng, 5 + rng.below(120), 0.03);
  const auto b = test::random_dna(rng, 5 + rng.below(120), 0.03);
  const auto full = align::global_align(a, b, sc, {.keep_ops = true});
  const auto hirsch = align::hirschberg_align(a, b, sc);
  EXPECT_EQ(hirsch.score, full.score) << "seed " << GetParam();
  // Ops must consume both sequences completely.
  std::size_t ca = 0, cb = 0;
  for (auto op : hirsch.ops) {
    ca += op != align::Op::kInsertB;
    cb += op != align::Op::kInsertA;
  }
  EXPECT_EQ(ca, a.size());
  EXPECT_EQ(cb, b.size());
}

TEST_P(LinearSpaceRandom, MyersMatchesReferenceDp) {
  util::Prng rng(GetParam() * 3 + 1);
  // Cross the 64-char block boundary deliberately.
  const auto a = test::random_dna(rng, 1 + rng.below(200), 0.02);
  const auto b = test::random_dna(rng, 1 + rng.below(200), 0.02);
  EXPECT_EQ(align::myers_edit_distance(a, b), dp_edit_distance(a, b))
      << "seed " << GetParam() << " m=" << a.size() << " n=" << b.size();
}

TEST_P(LinearSpaceRandom, BoundedMyersConsistent) {
  util::Prng rng(GetParam() * 17 + 5);
  const auto a = test::random_dna(rng, 20 + rng.below(150));
  const auto b = test::random_dna(rng, 20 + rng.below(150));
  const auto d = align::myers_edit_distance(a, b);
  for (std::uint32_t k : {0u, 3u, d > 0 ? d - 1 : 0u, d, d + 5}) {
    const auto bd = align::myers_edit_distance_bounded(a, b, k);
    if (d <= k) {
      EXPECT_EQ(bd, d);
    } else {
      EXPECT_EQ(bd, k + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearSpaceRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(LinearSpace, KnownDistances) {
  const auto a = seq::encode("ACGTACGT");
  const auto b = seq::encode("ACGTTCGT");
  EXPECT_EQ(align::myers_edit_distance(a, b), 1u);  // one substitution
  const auto c = seq::encode("ACGACGT");
  EXPECT_EQ(align::myers_edit_distance(a, c), 1u);  // one deletion
  EXPECT_EQ(align::myers_edit_distance(a, a), 0u);
  EXPECT_EQ(align::myers_edit_distance(a, {}), 8u);
  EXPECT_EQ(align::myers_edit_distance({}, b), 8u);
}

TEST(LinearSpace, MaskedMismatchesEverything) {
  const auto a = seq::encode("ACNNGT");
  EXPECT_EQ(align::myers_edit_distance(a, a), 2u);  // the two Ns
}

TEST(LinearSpace, ExactBlockBoundaries) {
  util::Prng rng(8);
  for (std::size_t m : {63u, 64u, 65u, 127u, 128u, 129u}) {
    const auto a = test::random_dna(rng, m);
    auto b = a;
    b[m / 2] = static_cast<seq::Code>((b[m / 2] + 1) % 4);
    EXPECT_EQ(align::myers_edit_distance(a, b), 1u) << "m=" << m;
    EXPECT_EQ(align::myers_edit_distance(a, a), 0u) << "m=" << m;
  }
}

TEST(LinearSpace, HirschbergLongSequences) {
  // The point of Hirschberg: long inputs without the O(nm) traceback
  // matrix. 4000x4000 would need a 16M-cell traceback; here memory stays
  // O(n) while the score matches the (row-wise) full DP score.
  util::Prng rng(9);
  const auto genome = test::random_dna(rng, 4000);
  auto mutated = genome;
  for (auto& c : mutated) {
    if (rng.chance(0.05)) c = static_cast<seq::Code>((c + 1) % 4);
  }
  const Scoring sc;
  const auto r = align::hirschberg_align(genome, mutated, sc);
  EXPECT_GT(r.identity(), 0.9);
  // Substitution-mutated input: the optimal alignment is (near-)colinear;
  // a few compensating indel pairs may locally beat clustered mismatches.
  EXPECT_GE(r.columns, 4000u);
  EXPECT_LE(r.columns, 4020u);
}

}  // namespace
}  // namespace pgasm
