// Tests for the framework extensions (the paper's future-work items,
// Section 10 / 7.2): inconsistent-overlap resolution during clustering and
// adaptive dispatch granularity in the master-worker runtime.
#include <gtest/gtest.h>

#include "core/parallel_cluster.hpp"
#include "core/serial_cluster.hpp"
#include "olc/layout.hpp"
#include "test_helpers.hpp"

namespace pgasm {
namespace {

using core::ClusterParams;
using olc::overlap_transform;
using olc::Transform;

TEST(OverlapTransform, ForwardForward) {
  // b's oriented start sits at +30 in a's oriented frame; both forward.
  const Transform t = overlap_transform(false, false, 30, 100, 80);
  EXPECT_FALSE(t.flip);
  EXPECT_EQ(t(0), 30);
  EXPECT_EQ(t(79), 109);
}

TEST(OverlapTransform, MixedOrientationsRoundTrip) {
  // Property: mapping b's oriented coordinate u through the transform must
  // equal mapping a's oriented coordinate (u + delta) to a-forward coords.
  util::Prng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const bool rc_a = rng.chance(0.5), rc_b = rng.chance(0.5);
    const std::int64_t len_a = 50 + rng.below(100);
    const std::int64_t len_b = 50 + rng.below(100);
    const std::int64_t delta = rng.range(-40, 40);
    const Transform t = overlap_transform(rc_a, rc_b, delta, len_a, len_b);
    for (std::int64_t u = 0; u < len_b; ++u) {
      // forward coordinate of b's oriented position u:
      const std::int64_t kb = rc_b ? len_b - 1 - u : u;
      // a's oriented coordinate aligned to u, and its forward coordinate:
      const std::int64_t va = u + delta;
      const std::int64_t ka = rc_a ? len_a - 1 - va : va;
      EXPECT_EQ(t(kb), ka) << "rc_a=" << rc_a
                           << " rc_b=" << rc_b << " delta=" << delta;
    }
  }
}

/// Build a "repeat trap": two distinct genomic islands that share a
/// near-identical repeat element. Plain single-linkage clustering fuses
/// them through the repeat; consistency resolution must keep the giant
/// cluster smaller (conflicting placements through different repeat
/// copies) without tearing apart the true islands.
seq::FragmentStore repeat_trap(util::Prng& rng, int n_islands,
                               std::size_t island_len, std::size_t repeat_len,
                               std::size_t read_len) {
  const auto repeat = test::random_dna(rng, repeat_len);
  seq::FragmentStore store;
  for (int isl = 0; isl < n_islands; ++isl) {
    auto island = test::random_dna(rng, island_len);
    // Implant the shared repeat in the middle of the island.
    std::copy(repeat.begin(), repeat.end(),
              island.begin() + island_len / 2 - repeat_len / 2);
    for (std::size_t start = 0; start + read_len <= island.size();
         start += read_len / 3) {
      std::vector<seq::Code> read(island.begin() + start,
                                  island.begin() + start + read_len);
      if (rng.chance(0.5)) read = seq::reverse_complement(read);
      store.add(read);
    }
  }
  return store;
}

TEST(ResolveInconsistent, ShrinksRepeatFusedClusters) {
  util::Prng rng(11);
  const auto store = repeat_trap(rng, 4, 900, 150, 200);
  ClusterParams params;
  params.psi = 14;
  params.overlap.min_overlap = 40;
  params.overlap.min_identity = 0.92;
  params.overlap.band = 8;

  params.resolve_inconsistent = false;
  const auto plain = core::cluster_serial(store, params);
  params.resolve_inconsistent = true;
  const auto resolved = core::cluster_serial(store, params);

  // Plain single-linkage fuses the islands through the shared repeat.
  EXPECT_LT(plain.clusters.num_sets(), 4u);
  // With resolution, placements through different repeat copies conflict.
  EXPECT_GT(resolved.clusters.num_sets(), plain.clusters.num_sets());
  EXPECT_GT(resolved.stats.merges_rejected_inconsistent, 0u);
  EXPECT_LE(resolved.clusters.max_set_size(), plain.clusters.max_set_size());
}

TEST(ResolveInconsistent, HarmlessOnCleanData) {
  // Without repeats, placements are consistent: same partition either way.
  util::Prng rng(21);
  const auto genome = test::random_dna(rng, 2000);
  seq::FragmentStore store;
  for (std::size_t start = 0; start + 150 <= genome.size(); start += 60) {
    std::vector<seq::Code> read(genome.begin() + start,
                                genome.begin() + start + 150);
    if (rng.chance(0.5)) read = seq::reverse_complement(read);
    store.add(read);
  }
  ClusterParams params;
  params.psi = 14;
  params.overlap.min_overlap = 40;
  params.overlap.min_identity = 0.95;
  params.resolve_inconsistent = false;
  const auto plain = core::cluster_serial(store, params);
  params.resolve_inconsistent = true;
  const auto resolved = core::cluster_serial(store, params);
  EXPECT_EQ(plain.clusters.num_sets(), resolved.clusters.num_sets());
  EXPECT_EQ(resolved.stats.merges_rejected_inconsistent, 0u);
}

TEST(ResolveInconsistent, WorksInParallelRuntime) {
  util::Prng rng(31);
  const auto store = repeat_trap(rng, 3, 800, 140, 200);
  ClusterParams params;
  params.psi = 14;
  params.overlap.min_overlap = 40;
  params.overlap.min_identity = 0.92;
  params.overlap.band = 8;
  params.batch_size = 8;
  params.resolve_inconsistent = true;
  const auto result = core::cluster_parallel(store, params, 4);
  // Conflict rejection is active (exact counts are order-dependent).
  EXPECT_GT(result.stats.pairs_accepted, 0u);
  EXPECT_GE(result.clusters.num_sets(), 3u);
}

TEST(AdaptiveBatch, SamePartitionLargerBatches) {
  util::Prng rng(41);
  const auto genome = test::random_dna(rng, 3000);
  seq::FragmentStore store;
  for (std::size_t start = 0; start + 150 <= genome.size(); start += 70) {
    store.add(std::vector<seq::Code>(genome.begin() + start,
                                     genome.begin() + start + 150));
  }
  ClusterParams params;
  params.psi = 14;
  params.overlap.min_overlap = 40;
  params.overlap.min_identity = 0.95;
  params.batch_size = 8;

  params.adaptive_batch = false;
  const auto fixed = core::cluster_parallel(store, params, 9);
  params.adaptive_batch = true;
  const auto adaptive = core::cluster_parallel(store, params, 9);
  // Same clustering. Message counts fluctuate with thread scheduling
  // (staleness changes how many report/reply cycles each run needs), so
  // assert only that adaptation does not blow the interaction count up;
  // the structural effect is benchmarked in fig9_cluster_scaling.
  EXPECT_EQ(fixed.clusters.num_sets(), adaptive.clusters.num_sets());
  EXPECT_LE(adaptive.cost.per_rank[0].msgs_recv,
            fixed.cost.per_rank[0].msgs_recv + 8);
}

}  // namespace
}  // namespace pgasm
