#include "olc/assembler.hpp"

#include <algorithm>
#include <array>

#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"
#include "util/stats.hpp"

namespace pgasm::olc {

namespace {

/// Vote weight of one base: its quality value when available (CAP3 weighs
/// consensus votes by quality), a flat default otherwise.
std::uint32_t base_weight(std::span<const std::uint8_t> qual, std::size_t k) {
  if (qual.empty()) return 10;
  return std::clamp<std::uint32_t>(qual[k], 1, 60);
}

struct Overlap {
  std::uint32_t frag_a, frag_b;  // underlying fragment ids
  bool rc_a, rc_b;               // orientations the alignment used
  std::int32_t delta;            // start of b's oriented seq rel. to a's
  std::int32_t score;
};

/// One polish round: banded-realign each placed fragment to the draft and
/// re-vote per draft column (bases + gap). Columns where gaps win are
/// dropped; placements' offsets are remapped. Returns true if changed.
bool polish_round(Contig& contig, const seq::FragmentStore& fragments,
                  const AssemblyParams& params) {
  const auto& draft = contig.consensus;
  if (draft.empty()) return false;
  constexpr int kGap = seq::kSigma;  // vote index for "delete this column"
  std::vector<std::array<std::uint32_t, seq::kSigma + 1>> votes(
      draft.size(), std::array<std::uint32_t, seq::kSigma + 1>{});
  // Insertion votes: bases the reads carry *between* draft columns p-1 and
  // p (the draft skeleton inherits its root read's deletions; these columns
  // can only be recovered by insertion voting).
  std::vector<std::array<std::uint32_t, seq::kSigma>> ins(
      draft.size() + 1, std::array<std::uint32_t, seq::kSigma>{});
  const std::int64_t pad = params.polish_band;
  const align::Scoring scoring{};

  for (const Placement& pl : contig.layout) {
    auto read = std::vector<seq::Code>(fragments.seq(pl.fragment).begin(),
                                       fragments.seq(pl.fragment).end());
    const auto qspan = fragments.quality(pl.fragment);
    std::vector<std::uint8_t> qual(qspan.begin(), qspan.end());
    if (pl.flip) {
      read = seq::reverse_complement(read);
      std::reverse(qual.begin(), qual.end());
    }
    const std::int64_t dlen = static_cast<std::int64_t>(draft.size());
    const std::int64_t rlen = static_cast<std::int64_t>(read.size());
    const std::int64_t win_lo = std::max<std::int64_t>(0, pl.offset - pad);
    const std::int64_t win_hi = std::min(dlen, pl.offset + rlen + pad);
    if (win_lo >= win_hi) continue;
    const align::Seq window(draft.data() + win_lo,
                            static_cast<std::size_t>(win_hi - win_lo));
    // Expected diagonal: read position i sits at draft pos offset + i,
    // i.e. window pos (offset - win_lo) + i. End-free alignment: the
    // window's pad margins are absorbed for free, so they receive no
    // spurious gap votes; only the genuinely aligned region votes.
    const auto ov = align::banded_overlap_align(
        read, window, scoring,
        static_cast<std::int32_t>(pl.offset - win_lo),
        params.polish_band + 8, {.keep_ops = true});
    const auto& r = ov.aln;
    if (r.ops.empty()) continue;  // band missed; this read abstains
    std::size_t i = r.a_begin;
    std::int64_t p = win_lo + r.b_begin;
    for (const align::Op op : r.ops) {
      switch (op) {
        case align::Op::kMatch:
        case align::Op::kMismatch:
          if (seq::is_base(read[i])) {
            votes[p][read[i]] += base_weight(qual, i);
          }
          ++i;
          ++p;
          break;
        case align::Op::kInsertA:  // read base absent from the draft
          if (seq::is_base(read[i])) ins[p][read[i]] += base_weight(qual, i);
          ++i;
          break;
        case align::Op::kInsertB: {
          // Deletion quality: the smaller of the flanking base qualities.
          const std::uint32_t wl = i > 0 ? base_weight(qual, i - 1) : 10;
          const std::uint32_t wr =
              i < read.size() ? base_weight(qual, i) : 10;
          votes[p][kGap] += std::min(wl, wr);
          ++p;
          break;
        }
      }
    }
  }

  // Rebuild the consensus; keep a draft->new index map for the offsets.
  std::vector<seq::Code> polished;
  polished.reserve(draft.size());
  std::vector<std::int64_t> remap(draft.size() + 1, 0);
  bool changed = false;
  auto column_coverage = [&](std::size_t p) {
    std::uint32_t cov = 0;
    if (p < votes.size()) {
      for (int c = 0; c <= kGap; ++c) cov += votes[p][c];
    }
    return cov;
  };
  auto maybe_insert = [&](std::size_t p) {
    int best = 0;
    for (int c = 1; c < seq::kSigma; ++c) {
      if (ins[p][c] > ins[p][best]) best = c;
    }
    // Insert when a majority of the reads spanning this junction carry the
    // base (junction coverage approximated by the flanking columns).
    const std::uint32_t cov =
        std::max(p > 0 ? column_coverage(p - 1) : 0u, column_coverage(p));
    if (ins[p][best] * 2 > cov && ins[p][best] >= 12) {
      polished.push_back(static_cast<seq::Code>(best));
      changed = true;
    }
  };
  for (std::size_t p = 0; p < draft.size(); ++p) {
    maybe_insert(p);
    remap[p] = static_cast<std::int64_t>(polished.size());
    int best = 0;
    std::uint32_t best_votes = votes[p][0];
    for (int c = 1; c < seq::kSigma; ++c) {
      if (votes[p][c] > best_votes) {
        best = c;
        best_votes = votes[p][c];
      }
    }
    if (votes[p][kGap] > best_votes) {
      changed = true;  // column deleted
      continue;
    }
    seq::Code out = best_votes > 0 ? static_cast<seq::Code>(best) : draft[p];
    changed |= (out != draft[p]);
    polished.push_back(out);
  }
  maybe_insert(draft.size());
  remap[draft.size()] = static_cast<std::int64_t>(polished.size());
  if (!changed) return false;
  for (Placement& pl : contig.layout) {
    const std::int64_t clamped = std::clamp<std::int64_t>(
        pl.offset, 0, static_cast<std::int64_t>(draft.size()));
    pl.offset = remap[clamped];
  }
  contig.consensus = std::move(polished);
  return true;
}

}  // namespace

std::size_t AssemblyResult::num_multi_contigs() const noexcept {
  std::size_t n = 0;
  for (const auto& c : contigs) n += !c.is_singleton();
  return n;
}

std::size_t AssemblyResult::num_singletons() const noexcept {
  return contigs.size() - num_multi_contigs();
}

std::uint64_t AssemblyResult::n50() const {
  std::vector<std::uint64_t> lens;
  lens.reserve(contigs.size());
  for (const auto& c : contigs) lens.push_back(c.length());
  return util::n50(std::move(lens));
}

AssemblyResult assemble(const seq::FragmentStore& fragments,
                        const AssemblyParams& params) {
  AssemblyResult result;
  const std::size_t n = fragments.size();
  if (n == 0) return result;

  // --- Overlap phase -------------------------------------------------------
  const seq::FragmentStore doubled = seq::make_doubled_store(fragments);
  gst::SuffixTree tree(doubled,
                       gst::GstParams{.min_match = params.psi, .prefix_w = 0});
  gst::PairGenerator gen(tree, {.dup_elim = true, .doubled_input = true});

  std::vector<Overlap> overlaps;
  gst::PromisingPair pr;
  while (gen.next(pr)) {
    ++result.stats.overlaps_considered;
    const auto a = doubled.seq(pr.seq_a);
    const auto b = doubled.seq(pr.seq_b);
    const auto r = align::banded_overlap_align(
        a, b, params.overlap.scoring, pr.shift(), params.overlap.band);
    if (!align::accept_overlap(r, params.overlap)) continue;
    ++result.stats.overlaps_accepted;
    Overlap ov;
    ov.frag_a = pr.seq_a >> 1;
    ov.frag_b = pr.seq_b >> 1;
    ov.rc_a = (pr.seq_a & 1u) != 0;
    ov.rc_b = (pr.seq_b & 1u) != 0;
    ov.delta = static_cast<std::int32_t>(r.aln.a_begin) -
               static_cast<std::int32_t>(r.aln.b_begin);
    ov.score = r.aln.score;
    overlaps.push_back(ov);
  }

  // --- Layout phase: best overlaps first -----------------------------------
  std::stable_sort(overlaps.begin(), overlaps.end(),
                   [](const Overlap& x, const Overlap& y) {
                     return x.score > y.score;
                   });
  LayoutUF layout(n);
  for (const Overlap& ov : overlaps) {
    const Transform t_ba = overlap_transform(
        ov.rc_a, ov.rc_b, ov.delta, fragments.length(ov.frag_a),
        fragments.length(ov.frag_b));
    const auto outcome = layout.unite(ov.frag_a, ov.frag_b, t_ba,
                                      params.placement_tolerance);
    if (outcome == LayoutUF::UniteOutcome::kConflict) {
      ++result.stats.layout_conflicts;
    }
  }

  // --- Consensus phase ------------------------------------------------------
  for (auto& comp : layout.components()) {
    // Member placements in root frame: fragment x spans
    //   flip ? [T(len-1), T(0)] : [T(0), T(len-1)]  (inclusive).
    std::int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (const auto& [x, t] : comp) {
      const std::int64_t len = fragments.length(x);
      const std::int64_t s = t.flip ? t(len - 1) : t(0);
      const std::int64_t e = t.flip ? t(0) : t(len - 1);
      lo = std::min(lo, s);
      hi = std::max(hi, e);
    }
    const std::size_t span = static_cast<std::size_t>(hi - lo + 1);
    std::vector<std::array<std::uint32_t, seq::kSigma>> votes(
        span, std::array<std::uint32_t, seq::kSigma>{});
    for (const auto& [x, t] : comp) {
      const auto text = fragments.seq(x);
      const auto qual = fragments.quality(x);
      for (std::int64_t k = 0; k < static_cast<std::int64_t>(text.size());
           ++k) {
        const seq::Code c = text[k];
        if (!seq::is_base(c)) continue;
        const std::int64_t pos = t(k) - lo;
        const seq::Code vote = t.flip ? seq::complement(c) : c;
        votes[pos][vote] += base_weight(qual, static_cast<std::size_t>(k));
      }
    }
    // Emit contigs, splitting at columns below the coverage floor.
    auto flush = [&](std::size_t begin, std::size_t end,
                     std::vector<Placement> members) {
      if (begin >= end) return;
      Contig contig;
      contig.consensus.reserve(end - begin);
      for (std::size_t p = begin; p < end; ++p) {
        int best = 0;
        for (int c = 1; c < seq::kSigma; ++c) {
          if (votes[p][c] > votes[p][best]) best = c;
        }
        contig.consensus.push_back(static_cast<seq::Code>(best));
      }
      contig.layout = std::move(members);
      result.contigs.push_back(std::move(contig));
    };

    // Column coverage (weighted) for split detection: any vote counts.
    std::vector<std::uint32_t> coverage(span, 0);
    for (std::size_t p = 0; p < span; ++p) {
      std::uint32_t cov = 0;
      for (int c = 0; c < seq::kSigma; ++c) cov += votes[p][c];
      coverage[p] = cov;
    }
    std::size_t seg_begin = 0;
    std::vector<std::pair<std::size_t, std::size_t>> segments;
    bool in_seg = false;
    for (std::size_t p = 0; p <= span; ++p) {
      const bool covered =
          p < span && coverage[p] >= params.min_consensus_coverage;
      if (covered && !in_seg) {
        seg_begin = p;
        in_seg = true;
      } else if (!covered && in_seg) {
        segments.push_back({seg_begin, p});
        in_seg = false;
      }
    }
    // Assign each fragment to the segment containing its start column.
    std::vector<std::vector<Placement>> seg_members(segments.size());
    for (const auto& [x, t] : comp) {
      const std::int64_t len = fragments.length(x);
      const std::int64_t start = (t.flip ? t(len - 1) : t(0)) - lo;
      std::size_t si = 0;
      for (; si < segments.size(); ++si) {
        if (start >= static_cast<std::int64_t>(segments[si].first) &&
            start < static_cast<std::int64_t>(segments[si].second))
          break;
      }
      if (si == segments.size()) si = segments.empty() ? 0 : segments.size() - 1;
      if (seg_members.empty()) continue;  // degenerate: no covered columns
      Placement pl;
      pl.fragment = x;
      pl.flip = t.flip;
      pl.offset = start - static_cast<std::int64_t>(segments[si].first);
      pl.length = fragments.length(x);
      seg_members[si].push_back(pl);
    }
    for (std::size_t si = 0; si < segments.size(); ++si) {
      flush(segments[si].first, segments[si].second,
            std::move(seg_members[si]));
    }
  }

  // --- Polish phase: realign-and-revote until stable -----------------------
  for (Contig& contig : result.contigs) {
    if (contig.is_singleton()) continue;
    for (int pass = 0; pass < params.polish_passes; ++pass) {
      if (!polish_round(contig, fragments, params)) break;
    }
  }
  return result;
}

}  // namespace pgasm::olc
