// Scaffolding: ordering and orienting contigs along the chromosome with
// clone-mate links (the paper's Section 2 describes this as the phase after
// contig construction; Section 1 explains that mates are the standard
// defence against repeat-induced overlaps and the source of long-range
// order).
//
// Model: a mate pair is (read_a sequenced genome-forward from the clone's
// 5' end, read_b sequenced genome-reverse from its 3' end, nominal insert
// length). When the two reads land in different contigs, the pair implies
// a relative orientation and offset between the contigs. Links between the
// same oriented contig pair are bundled; bundles with enough mutually
// agreeing links become scaffold edges; a greedy end-matching (best bundle
// first, each contig end used once, no cycles) chains the contigs into
// scaffolds with estimated gaps.
#pragma once

#include <cstdint>
#include <vector>

#include "olc/assembler.hpp"

namespace pgasm::olc {

/// A mate link expressed in assembled-fragment ids (the ids used by the
/// contigs' layouts).
struct MateLink {
  std::uint32_t read_a = 0;
  std::uint32_t read_b = 0;
  std::uint32_t insert_len = 0;
};

struct ScaffoldParams {
  std::uint32_t min_links = 2;      ///< agreeing mates to join two contigs
  std::int64_t gap_tolerance = 400; ///< implied-offset agreement window
  /// Links whose implied gap is more negative than this are contradictory
  /// (the contigs would overlap more than alignment allows) and dropped.
  std::int64_t max_overlap = 200;
};

struct ScaffoldEntry {
  std::uint32_t contig = 0;  ///< index into the input contig list
  bool flip = false;         ///< reverse-complement the contig
  std::int64_t gap_before = 0;  ///< estimated gap to the previous entry
};

struct Scaffold {
  std::vector<ScaffoldEntry> entries;
  /// Total spanned length: contig lengths plus (non-negative) gaps.
  std::uint64_t span(const std::vector<Contig>& contigs) const;
};

struct ScaffoldStats {
  std::uint64_t links_total = 0;
  std::uint64_t links_intra_contig = 0;   ///< both mates in one contig
  std::uint64_t links_unplaced = 0;       ///< a mate not in any contig
  std::uint64_t links_bundled = 0;        ///< contributed to a used bundle
  std::uint64_t bundles_conflicting = 0;  ///< rejected by end-matching
};

struct ScaffoldResult {
  /// Every input contig appears in exactly one scaffold.
  std::vector<Scaffold> scaffolds;
  ScaffoldStats stats;

  std::size_t num_multi() const noexcept;
  /// N50 over scaffold spans (vs the contig N50 — the headline win).
  std::uint64_t span_n50(const std::vector<Contig>& contigs) const;
};

/// `contigs` is the contig list (typically concatenated across clusters);
/// each fragment id referenced by `links` must appear in at most one
/// contig's layout (pass fragment ids in the same space as the layouts).
ScaffoldResult scaffold(const std::vector<Contig>& contigs,
                        const std::vector<MateLink>& links,
                        const ScaffoldParams& params);

}  // namespace pgasm::olc
