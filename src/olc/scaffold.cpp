#include "olc/scaffold.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/stats.hpp"
#include "util/union_find.hpp"

namespace pgasm::olc {

namespace {

struct ReadSite {
  std::uint32_t contig = UINT32_MAX;
  std::int64_t offset = 0;
  bool flip = false;
  std::int64_t length = 0;
};

/// Oriented start of a read inside a contig flipped (or not) as a whole.
std::int64_t oriented_start(const ReadSite& site, std::int64_t contig_len,
                            bool contig_flip) {
  return contig_flip ? contig_len - site.offset - site.length : site.offset;
}

}  // namespace

std::uint64_t Scaffold::span(const std::vector<Contig>& contigs) const {
  std::uint64_t total = 0;
  for (const auto& e : entries) {
    total += contigs[e.contig].length();
    if (e.gap_before > 0) total += static_cast<std::uint64_t>(e.gap_before);
  }
  return total;
}

std::size_t ScaffoldResult::num_multi() const noexcept {
  std::size_t n = 0;
  for (const auto& s : scaffolds) n += s.entries.size() > 1;
  return n;
}

std::uint64_t ScaffoldResult::span_n50(
    const std::vector<Contig>& contigs) const {
  std::vector<std::uint64_t> spans;
  spans.reserve(scaffolds.size());
  for (const auto& s : scaffolds) spans.push_back(s.span(contigs));
  return util::n50(std::move(spans));
}

ScaffoldResult scaffold(const std::vector<Contig>& contigs,
                        const std::vector<MateLink>& links,
                        const ScaffoldParams& params) {
  ScaffoldResult result;
  ScaffoldStats& stats = result.stats;

  // Fragment id -> placement site.
  std::uint32_t max_frag = 0;
  for (const auto& contig : contigs) {
    for (const auto& pl : contig.layout) max_frag = std::max(max_frag, pl.fragment);
  }
  std::vector<ReadSite> site(static_cast<std::size_t>(max_frag) + 1);
  for (std::uint32_t ci = 0; ci < contigs.size(); ++ci) {
    for (const auto& pl : contigs[ci].layout) {
      site[pl.fragment] =
          ReadSite{ci, pl.offset, pl.flip,
                   static_cast<std::int64_t>(pl.length)};
    }
  }

  // Bundle links by (contig pair, orientations): the implied oriented
  // offset D = start(Y) - start(X) must agree within gap_tolerance.
  // Orientation algebra: read_a carries the clone's genome-forward
  // sequence, so its contig runs genome-forward iff the placement did not
  // flip it; read_b carries the genome-reverse sequence, so its contig
  // runs genome-forward iff the placement DID flip it.
  using Key = std::tuple<std::uint32_t, std::uint32_t, bool, bool>;
  std::map<Key, std::vector<std::int64_t>> bundles;
  stats.links_total = links.size();
  for (const MateLink& link : links) {
    if (link.read_a >= site.size() || link.read_b >= site.size() ||
        site[link.read_a].contig == UINT32_MAX ||
        site[link.read_b].contig == UINT32_MAX) {
      ++stats.links_unplaced;
      continue;
    }
    ReadSite a = site[link.read_a];
    ReadSite b = site[link.read_b];
    if (a.contig == b.contig) {
      ++stats.links_intra_contig;
      continue;
    }
    const std::int64_t lx = static_cast<std::int64_t>(contigs[a.contig].length());
    const std::int64_t ly = static_cast<std::int64_t>(contigs[b.contig].length());

    const bool ox = a.flip;        // orient X so read_a runs genome-forward
    const bool oy = !b.flip;       // orient Y so read_b runs genome-reverse
    const std::int64_t a_start = oriented_start(a, lx, ox);
    const std::int64_t b_end = oriented_start(b, ly, oy) + b.length;
    // Clone geometry: start(Y) - start(X) = a_start + insert - b_end.
    std::int64_t d = a_start + static_cast<std::int64_t>(link.insert_len) -
                     b_end;
    std::uint32_t x = a.contig, y = b.contig;
    bool kx = ox, ky = oy;
    if (x > y) {
      // Mirror the genome frame: the pair (Y', X') with both orientations
      // toggled and offset D' = D + Ly - Lx.
      d = d + ly - lx;
      std::swap(x, y);
      kx = !oy;
      ky = !ox;
    }
    bundles[{x, y, kx, ky}].push_back(d);
  }

  // Keep bundles whose largest agreeing window has >= min_links links.
  struct Edge {
    std::uint32_t x, y;
    bool ox, oy;
    std::int64_t gap;
    std::uint32_t weight;
  };
  std::vector<Edge> edges;
  for (auto& [key, ds] : bundles) {
    std::sort(ds.begin(), ds.end());
    std::size_t best_count = 0, best_begin = 0;
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < ds.size(); ++hi) {
      while (ds[hi] - ds[lo] > params.gap_tolerance) ++lo;
      if (hi - lo + 1 > best_count) {
        best_count = hi - lo + 1;
        best_begin = lo;
      }
    }
    if (best_count < params.min_links) continue;
    const std::int64_t d = ds[best_begin + best_count / 2];  // median-ish
    const auto [x, y, ox, oy] = key;
    const std::int64_t gap =
        d - static_cast<std::int64_t>(contigs[x].length());
    if (gap < -params.max_overlap) continue;
    edges.push_back(Edge{x, y, ox, oy, gap,
                         static_cast<std::uint32_t>(best_count)});
    stats.links_bundled += best_count;
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.weight > b.weight;
                   });

  // Greedy end-matching: each contig end joins at most one edge; a
  // contig-level union-find forbids cycles.
  struct Ext {
    bool used = false;
    std::uint32_t other = 0;
    std::int64_t gap = 0;
  };
  std::vector<Ext> ext(contigs.size() * 2);
  util::UnionFind uf(contigs.size());
  for (const Edge& e : edges) {
    // Trailing end of oriented X; leading end of oriented Y.
    const std::uint32_t tail = 2 * e.x + (e.ox ? 0u : 1u);
    const std::uint32_t head = 2 * e.y + (e.oy ? 1u : 0u);
    if (ext[tail].used || ext[head].used || uf.same(e.x, e.y)) {
      ++stats.bundles_conflicting;
      continue;
    }
    ext[tail] = Ext{true, head, e.gap};
    ext[head] = Ext{true, tail, e.gap};
    uf.unite(e.x, e.y);
  }

  // Extract scaffolds: walk alternating contig / gap edges from a terminal
  // end (cycles are impossible by construction).
  std::vector<std::uint8_t> visited(contigs.size(), 0);
  for (std::uint32_t c = 0; c < contigs.size(); ++c) {
    if (visited[c]) continue;
    // Walk backwards from "enter c at its left end" to the chain start.
    std::uint32_t entry = 2 * c;
    while (ext[entry].used) {
      entry = ext[entry].other ^ 1u;
    }
    Scaffold sc;
    std::uint32_t e = entry;
    std::int64_t gap_before = 0;
    for (;;) {
      const std::uint32_t contig = e / 2;
      ScaffoldEntry item;
      item.contig = contig;
      item.flip = (e & 1u) != 0;  // entered via the forward-right end
      item.gap_before = sc.entries.empty() ? 0 : gap_before;
      sc.entries.push_back(item);
      visited[contig] = 1;
      const std::uint32_t exit_end = e ^ 1u;
      if (!ext[exit_end].used) break;
      gap_before = ext[exit_end].gap;
      e = ext[exit_end].other;
    }
    result.scaffolds.push_back(std::move(sc));
  }
  return result;
}

}  // namespace pgasm::olc
