#include "olc/layout.hpp"

#include <cstdlib>
#include <map>

namespace pgasm::olc {

Transform overlap_transform(bool rc_a, bool rc_b, std::int64_t delta,
                            std::int64_t len_a, std::int64_t len_b) noexcept {
  if (!rc_a && !rc_b) return Transform{false, delta};
  if (!rc_a && rc_b) return Transform{true, delta + len_b - 1};
  if (rc_a && !rc_b) return Transform{true, len_a - 1 - delta};
  return Transform{false, len_a - len_b - delta};
}

LayoutUF::LayoutUF(std::size_t n)
    : link_(n), rank_(n, 0), components_(n) {
  for (std::uint32_t i = 0; i < n; ++i) link_[i] = Link{i, Transform{}};
}

std::pair<std::uint32_t, Transform> LayoutUF::find(std::uint32_t x) {
  // Two passes: walk to the root composing transforms, then compress.
  std::uint32_t root = x;
  Transform acc{};  // x -> root
  while (link_[root].parent != root) {
    acc = link_[root].to_parent * acc;
    root = link_[root].parent;
  }
  // Path compression with transform rewrite.
  std::uint32_t cur = x;
  Transform cur_to_root = acc;
  while (link_[cur].parent != cur) {
    const std::uint32_t next = link_[cur].parent;
    const Transform next_to_root =
        cur_to_root * link_[cur].to_parent.inverse();
    link_[cur] = Link{root, cur_to_root};
    cur_to_root = next_to_root;
    cur = next;
  }
  return {root, acc};
}

LayoutUF::UniteOutcome LayoutUF::unite(std::uint32_t a, std::uint32_t b,
                                       const Transform& t_ba,
                                       std::int64_t tolerance) {
  auto [ra, ta] = find(a);  // a -> ra
  auto [rb, tb] = find(b);  // b -> rb
  const Transform b_to_ra = ta * t_ba;  // b -> a -> ra
  if (ra == rb) {
    if (b_to_ra.flip != tb.flip) return UniteOutcome::kConflict;
    const std::int64_t diff = b_to_ra.shift - tb.shift;
    return std::llabs(diff) <= tolerance ? UniteOutcome::kConsistent
                                         : UniteOutcome::kConflict;
  }
  // rb -> ra  =  (b -> ra) ∘ (b -> rb)^-1
  Transform rb_to_ra = b_to_ra * tb.inverse();
  std::uint32_t child = rb, parent = ra;
  Transform child_to_parent = rb_to_ra;
  if (rank_[ra] < rank_[rb]) {
    child = ra;
    parent = rb;
    child_to_parent = rb_to_ra.inverse();
  } else if (rank_[ra] == rank_[rb]) {
    ++rank_[ra];
  }
  link_[child] = Link{parent, child_to_parent};
  --components_;
  return UniteOutcome::kMerged;
}

std::vector<std::vector<std::pair<std::uint32_t, Transform>>>
LayoutUF::components() {
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, Transform>>>
      groups;
  for (std::uint32_t x = 0; x < link_.size(); ++x) {
    auto [root, t] = find(x);
    groups[root].push_back({x, t});
  }
  std::vector<std::vector<std::pair<std::uint32_t, Transform>>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  return out;
}

}  // namespace pgasm::olc
