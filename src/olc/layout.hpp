// Orientation-aware layout union-find.
//
// Each fragment is a node; accepted overlaps impose relative placements
// (orientation flip + coordinate shift) between fragments. The structure
// maintains, for every fragment, its affine-with-reflection transform into
// its component root's coordinate frame:
//
//   T(c) = shift + (flip ? -c : c)
//
// mapping the fragment's forward-strand coordinate c into the root frame.
// Union composes transforms; overlaps that contradict an existing placement
// (beyond a tolerance) are rejected, implementing the greedy "consistent
// layout" rule that stands in for CAP3's overlap resolution.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pgasm::olc {

struct Transform {
  bool flip = false;
  std::int64_t shift = 0;

  std::int64_t operator()(std::int64_t c) const noexcept {
    return shift + (flip ? -c : c);
  }
  /// Composition: (a * b)(c) == a(b(c)).
  friend Transform operator*(const Transform& a, const Transform& b) noexcept {
    return Transform{static_cast<bool>(a.flip ^ b.flip),
                     a.shift + (a.flip ? -b.shift : b.shift)};
  }
  Transform inverse() const noexcept {
    return flip ? Transform{true, shift} : Transform{false, -shift};
  }
  friend bool operator==(const Transform&, const Transform&) = default;
};

/// Transform of fragment b's forward coordinates into fragment a's forward
/// frame, given an overlap computed between orient(a, rc_a) and
/// orient(b, rc_b) whose oriented-frame offset (start of b's oriented
/// sequence relative to a's) is `delta`.
Transform overlap_transform(bool rc_a, bool rc_b, std::int64_t delta,
                            std::int64_t len_a, std::int64_t len_b) noexcept;

class LayoutUF {
 public:
  explicit LayoutUF(std::size_t n);

  std::size_t size() const noexcept { return link_.size(); }
  std::size_t num_components() const noexcept { return components_; }

  /// Root of x's component plus the transform from x's frame to the root's.
  std::pair<std::uint32_t, Transform> find(std::uint32_t x);

  enum class UniteOutcome { kMerged, kConsistent, kConflict };

  /// Impose: coordinates of b map into a's frame via t_ba. If a and b are
  /// already in one component, checks agreement within `tolerance` shifts
  /// (flips must match exactly). Returns what happened.
  UniteOutcome unite(std::uint32_t a, std::uint32_t b, const Transform& t_ba,
                     std::int64_t tolerance);

  /// Component members grouped by root, each with its transform to the
  /// root frame. Deterministic order.
  std::vector<std::vector<std::pair<std::uint32_t, Transform>>> components();

 private:
  struct Link {
    std::uint32_t parent;
    Transform to_parent;  // maps this node's frame into the parent's
  };
  std::vector<Link> link_;
  std::vector<std::uint32_t> rank_;
  std::size_t components_;
};

}  // namespace pgasm::olc
