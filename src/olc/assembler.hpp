// Greedy overlap-layout-consensus assembler — the serial assembler run on
// each cluster (the paper uses CAP3 here; the framework only requires *a*
// stringent conventional assembler, see Section 3).
//
// Phases:
//   overlap  — promising pairs from a GST over the cluster's fragments
//              (+ reverse complements) at a stricter ψ, verified with
//              banded suffix-prefix alignments at higher identity;
//   layout   — overlaps sorted by score, greedily folded into an
//              orientation-aware layout union-find; placements that
//              contradict earlier (better) overlaps are rejected;
//   consensus — per-column majority vote over the placed fragments,
//              splitting at zero-coverage columns.
#pragma once

#include <cstdint>
#include <vector>

#include "align/overlap.hpp"
#include "olc/layout.hpp"
#include "seq/fragment_store.hpp"

namespace pgasm::olc {

struct AssemblyParams {
  /// Stricter than clustering: the paper assembles each cluster "with a
  /// higher stringency" than the clustering criterion.
  std::uint32_t psi = 24;
  align::OverlapParams overlap{
      .scoring = {},
      .min_overlap = 40,
      .min_identity = 0.96,
      .band = 12,
  };
  std::int64_t placement_tolerance = 10;
  std::uint32_t min_consensus_coverage = 1;
  /// Consensus polishing: realign every fragment to the draft consensus
  /// (banded) and re-vote per aligned column, letting gap majorities drop
  /// columns. Fixes the indel drift a fixed-offset vote cannot see — the
  /// step CAP3 performs during its consensus phase. 0 disables.
  int polish_passes = 4;
  std::uint32_t polish_band = 48;
};

struct Placement {
  std::uint32_t fragment = 0;  ///< id within the assembled store
  bool flip = false;
  std::int64_t offset = 0;  ///< contig coordinate of the fragment's start
  std::uint32_t length = 0;  ///< fragment length (layout convenience)
};

struct Contig {
  std::vector<seq::Code> consensus;
  std::vector<Placement> layout;

  std::uint64_t length() const noexcept { return consensus.size(); }
  bool is_singleton() const noexcept { return layout.size() == 1; }
};

struct AssemblyStats {
  std::uint64_t overlaps_considered = 0;  ///< promising pairs aligned
  std::uint64_t overlaps_accepted = 0;
  std::uint64_t layout_conflicts = 0;  ///< rejected inconsistent placements
};

struct AssemblyResult {
  std::vector<Contig> contigs;  ///< every fragment appears in exactly one
  AssemblyStats stats;

  std::size_t num_multi_contigs() const noexcept;
  std::size_t num_singletons() const noexcept;
  std::uint64_t n50() const;
};

/// Assemble one fragment set (typically one cluster's members).
AssemblyResult assemble(const seq::FragmentStore& fragments,
                        const AssemblyParams& params);

}  // namespace pgasm::olc
