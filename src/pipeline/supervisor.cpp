#include "pipeline/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/log.hpp"

namespace pgasm::pipeline {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestPrefix = "manifest.";
constexpr const char* kManifestSuffix = ".pgmf";

/// Parse `manifest.<gen>.pgmf` -> generation; false for any other name.
bool parse_generation(const std::string& name, std::uint64_t* gen) {
  const std::string prefix = kManifestPrefix;
  const std::string suffix = kManifestSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *gen = value;
  return true;
}

std::string manifest_path(const std::string& dir, std::uint64_t gen) {
  return dir + "/" + kManifestPrefix + std::to_string(gen) + kManifestSuffix;
}

}  // namespace

const char* phase_name(PhaseId id) noexcept {
  switch (id) {
    case PhaseId::kPreprocess: return "preprocess";
    case PhaseId::kCluster: return "cluster";
    case PhaseId::kAssembly: return "assembly";
    case PhaseId::kValidation: return "validation";
    case PhaseId::kObsExport: return "obs_export";
  }
  return "unknown";
}

Supervisor::Supervisor(SupervisorParams params) : params_(std::move(params)) {
  manifest_.input_hash = params_.input_hash;
  manifest_.params_hash = params_.params_hash;
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(params_.dir, ec);  // best effort; save will complain
  load();
  // This run writes the next generation; the adopted one stays intact on
  // disk until GC, so a crash before any phase completes loses nothing.
  // Numbered past every file seen — including rejected ones — so a corrupt
  // newest generation is never overwritten (it stays on disk as evidence).
  manifest_.generation = max_gen_seen_ + 1;
}

void Supervisor::load() {
  std::error_code ec;
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (fs::directory_iterator it(params_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::uint64_t gen = 0;
    const std::string name = it->path().filename().string();
    if (parse_generation(name, &gen)) {
      found.emplace_back(gen, it->path().string());
      max_gen_seen_ = std::max(max_gen_seen_, gen);
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [gen, path] : found) {
    auto result = core::try_load_manifest(path);
    if (!result) {
      ++stats_.manifests_rejected;
      util::log_warn() << "ignoring unusable run manifest " << path << ": "
                       << result.error().message();
      continue;
    }
    core::RunManifest m = std::move(result).value();
    const bool matches =
        (params_.input_hash == 0 || m.input_hash == 0 ||
         m.input_hash == params_.input_hash) &&
        (params_.params_hash == 0 || m.params_hash == 0 ||
         m.params_hash == params_.params_hash);
    if (!matches) {
      // A manifest for a different input/configuration is stale, not
      // corrupt: skip it quietly (it may belong to a concurrent setup).
      ++stats_.manifests_rejected;
      continue;
    }
    loaded_ = std::move(m);
    has_loaded_ = true;
    return;
  }
}

void Supervisor::persist() {
  if (!enabled()) return;
  const auto bytes = core::encode_manifest(manifest_);
  core::save_frame_atomic(manifest_path(params_.dir, manifest_.generation),
                          std::span<const std::uint8_t>(bytes));
  stats_.manifest_bytes_written += bytes.size() + 5;  // + frame header
  if (gc_done_) return;
  gc_done_ = true;
  const std::uint64_t keep = std::max<std::uint32_t>(1, params_.keep_generations);
  if (manifest_.generation <= keep) return;
  std::error_code ec;
  for (fs::directory_iterator it(params_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::uint64_t gen = 0;
    if (parse_generation(it->path().filename().string(), &gen) &&
        gen + keep <= manifest_.generation) {
      std::error_code rm;
      fs::remove(it->path(), rm);
    }
  }
}

core::PhaseEntry& Supervisor::entry(PhaseId id) {
  const auto phase = static_cast<std::uint32_t>(id);
  for (auto& e : manifest_.phases) {
    if (e.phase == phase) return e;
  }
  core::PhaseEntry e;
  e.phase = phase;
  manifest_.phases.push_back(e);
  return manifest_.phases.back();
}

bool Supervisor::completed_in_manifest(PhaseId id) const noexcept {
  if (!has_loaded_) return false;
  const auto phase = static_cast<std::uint32_t>(id);
  for (const auto& e : loaded_.phases) {
    if (e.phase == phase) return e.completed != 0;
  }
  return false;
}

bool Supervisor::degraded(PhaseId id) const noexcept {
  const auto phase = static_cast<std::uint32_t>(id);
  for (const auto& e : manifest_.phases) {
    if (e.phase == phase) return e.degraded != 0;
  }
  return false;
}

void Supervisor::note_skipped(PhaseId id) {
  ++stats_.phases_skipped_resume;
  auto& e = entry(id);
  e.completed = 1;
  persist();
}

bool Supervisor::run_phase(
    PhaseId id, bool required,
    const std::function<void(std::uint32_t attempt)>& body) {
  if (!enabled()) {
    // Un-supervised runs keep the original semantics: one attempt, any
    // failure propagates to the caller.
    body(0);
    return true;
  }
  util::ExponentialBackoff backoff(params_.backoff_initial,
                                   params_.backoff_multiplier,
                                   params_.backoff_cap);
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, params_.max_attempts);
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      body(attempt);
      auto& e = entry(id);
      e.attempts = attempt + 1;
      e.completed = 1;
      e.degraded = 0;
      persist();
      return true;
    } catch (const std::exception& ex) {
      if (attempt + 1 >= max_attempts) {
        if (required) throw;
        auto& e = entry(id);
        e.attempts = attempt + 1;
        e.completed = 0;
        e.degraded = 1;
        ++stats_.degraded_phases;
        util::log_warn() << "optional phase '" << phase_name(id)
                         << "' degraded (skipped) after " << (attempt + 1)
                         << " attempts; last failure: " << ex.what();
        if (obs::tracer().enabled()) {
          obs::registry()
              .counter("recovery.degraded_phases", obs::kNoRank, "recovery")
              .inc(1);
        }
        persist();
        return false;
      }
      ++stats_.phase_retries;
      util::log_warn() << "phase '" << phase_name(id) << "' attempt "
                       << (attempt + 1) << " failed: " << ex.what()
                       << "; retrying in " << backoff.current() << "s";
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff.next()));
    }
  }
}

void Supervisor::publish_obs() const {
  if (!obs::tracer().enabled()) return;
  auto& reg = obs::registry();
  const char* ph = "recovery";
  const auto c = [&](const char* name, std::uint64_t v) {
    if (v != 0) reg.counter(name, obs::kNoRank, ph).inc(v);
  };
  c("recovery.phase_retries", stats_.phase_retries);
  c("recovery.phases_skipped_resume", stats_.phases_skipped_resume);
  c("recovery.manifests_rejected", stats_.manifests_rejected);
  c("recovery.checkpoint_bytes", stats_.manifest_bytes_written);
  // degraded_phases is published at degradation time (the loud event);
  // re-publishing here would double count.
}

}  // namespace pgasm::pipeline
