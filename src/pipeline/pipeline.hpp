// End-to-end cluster-then-assemble pipeline (paper Fig. 1):
//
//   raw fragments -> preprocessing (trim, screen, mask)
//                 -> clustering (serial or parallel master-worker)
//                 -> per-cluster serial assembly
//                 -> contigs + summaries
//
// This is the driver the examples and most benches use.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster_params.hpp"
#include "core/parallel_cluster.hpp"
#include "olc/assembler.hpp"
#include "olc/scaffold.hpp"
#include "pipeline/supervisor.hpp"
#include "preprocess/preprocess.hpp"
#include "seq/fragment_store.hpp"

namespace pgasm::pipeline {

struct PipelineResult;

struct PipelineParams {
  preprocess::PreprocessParams pre{};
  core::ClusterParams cluster{};
  olc::AssemblyParams assembly{};
  /// 0 = serial clustering; >= 2 = parallel with this many vmpi ranks.
  int ranks = 0;
  vmpi::CostParams cost{};
  bool run_preprocess = true;
  bool run_assembly = true;
  /// Fault-injection plan applied to the parallel clustering runtime
  /// (testing/chaos runs; see DESIGN.md "Fault model & recovery").
  vmpi::FaultPlan faults{};
  /// Non-empty: engage the recovery supervisor (see pipeline/supervisor.hpp
  /// and DESIGN.md "End-to-end recovery"). Periodic cluster checkpoints, the
  /// fault-tolerant-GST owner table and the generation-numbered run manifest
  /// live in this directory; phases are retried with capped backoff (faults
  /// injected on the first attempt only) and a rerun resumes from whatever
  /// persisted state the manifest vouches for — a completed clustering is
  /// restored from its final checkpoint instead of recomputed.
  std::string checkpoint_dir;
  /// Attempts per supervised phase before giving up (min 1); only
  /// meaningful with a non-empty checkpoint_dir.
  std::uint32_t phase_max_attempts = 3;
  /// Manifest generations kept on disk before garbage collection.
  std::uint32_t keep_generations = 2;
  /// Optional post-assembly phase (ground-truth validation, scaffold stats,
  /// report writing). Runs under the supervisor as a NON-required phase:
  /// if it keeps failing the pipeline completes without it, marking the
  /// phase degraded (warning log + recovery.degraded_phases counter)
  /// instead of aborting. Without a checkpoint_dir it runs once and any
  /// failure propagates.
  std::function<void(const PipelineResult&)> optional_post_phase;
  /// Non-empty: enable the obs metrics registry + per-rank tracer for this
  /// run and write summary.txt / metrics.jsonl / trace.json /
  /// attribution.json into this directory when the pipeline finishes (see
  /// src/obs/export.hpp). The trace opens in chrome://tracing or
  /// ui.perfetto.dev.
  std::string obs_dir;
  /// Per-rank tracer ring capacity (events). 0 keeps the tracer default
  /// (8192). Overflow drops the oldest events and marks every analysis a
  /// lower bound, so runs that feed perf gates should size this to hold the
  /// whole run (the trace.dropped_events metric says when they didn't).
  std::size_t trace_capacity = 0;
};

/// Paper Section 8's clustering effectiveness measures.
struct ClusterSummary {
  std::size_t total_fragments = 0;
  std::size_t num_clusters = 0;    ///< clusters with >= 2 fragments
  std::size_t num_singletons = 0;
  double avg_fragments_per_cluster = 0;  ///< over non-singleton clusters
  std::uint32_t max_cluster_size = 0;
  double max_cluster_fraction = 0;  ///< of total fragments
};

struct AssemblySummary {
  std::size_t clusters_assembled = 0;
  std::size_t total_contigs = 0;  ///< multi-fragment contigs
  double contigs_per_cluster = 0; ///< paper: ~1.1 for maize
  std::uint64_t n50 = 0;
  std::uint64_t consensus_bases = 0;
  double assembly_seconds = 0;
  /// Modeled parallel time of the assembly phase when it ran distributed
  /// (paper: CAP3 across 40 processors, "trivially parallelized").
  double assembly_modeled_seconds = 0;
};

struct PipelineResult {
  preprocess::PreprocessResult pre;
  util::UnionFind clusters;  ///< over pre.store fragment ids
  core::ClusterStats cluster_stats;
  vmpi::RunCost cost;  ///< populated for parallel runs
  /// Cluster membership (ids into pre.store), non-singletons first by
  /// decreasing size, then singletons.
  std::vector<std::vector<std::uint32_t>> cluster_sets;
  std::vector<olc::AssemblyResult> assemblies;  ///< per non-singleton cluster
  ClusterSummary cluster_summary;
  AssemblySummary assembly_summary;
  /// Recovery supervisor bookkeeping (all zero without a checkpoint_dir).
  SupervisorStats recovery;
};

PipelineResult run_pipeline(const seq::FragmentStore& raw,
                            const std::vector<std::vector<seq::Code>>& vectors,
                            const PipelineParams& params);

ClusterSummary summarize_clusters(const util::UnionFind& clusters);

/// Scaffolding across the whole assembly (paper Section 2 downstream
/// phase): clone-mate links — expressed in *raw* store read ids — are
/// remapped through preprocessing survival and the per-cluster assemblies
/// into one global contig list, then bundled into scaffolds. Mates whose
/// reads were invalidated or left unassembled are dropped (counted).
struct GlobalScaffolds {
  /// All contigs across the assembled clusters; layouts carry fragment ids
  /// of the preprocessed store (result.pre.store).
  std::vector<olc::Contig> contigs;
  olc::ScaffoldResult result;
  std::uint64_t mates_dropped = 0;  ///< a read did not survive preprocessing
  std::uint64_t contig_n50 = 0;
  std::uint64_t scaffold_span_n50 = 0;
};

/// `raw_size` is the raw store's fragment count (bounds checking).
GlobalScaffolds build_scaffolds(
    const PipelineResult& pipeline_result,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& raw_mates,
    const std::vector<std::uint32_t>& mate_inserts, std::size_t raw_size,
    const olc::ScaffoldParams& params = {});

}  // namespace pgasm::pipeline
