#include "pipeline/validation.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "core/overlap_engine.hpp"

namespace pgasm::pipeline {

std::vector<std::uint32_t> benchmark_islands(
    const std::vector<sim::ReadTruth>& truth) {
  const std::size_t n = truth.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (truth[a].genome_id != truth[b].genome_id)
      return truth[a].genome_id < truth[b].genome_id;
    return truth[a].begin < truth[b].begin;
  });
  std::vector<std::uint32_t> island(n, 0);
  std::uint32_t next_island = 0;
  std::uint32_t cur_genome = UINT32_MAX;
  std::uint64_t cur_end = 0;
  bool open = false;
  for (std::uint32_t idx : order) {
    const auto& t = truth[idx];
    if (!open || t.genome_id != cur_genome || t.begin >= cur_end) {
      ++next_island;
      cur_genome = t.genome_id;
      cur_end = t.end;
      open = true;
    } else {
      cur_end = std::max(cur_end, t.end);
    }
    island[idx] = next_island - 1;
  }
  return island;
}

PurityReport evaluate_purity(
    const std::vector<std::vector<std::uint32_t>>& cluster_sets,
    const std::vector<sim::ReadTruth>& truth) {
  PurityReport report;
  const auto island = benchmark_islands(truth);

  std::map<std::uint32_t, std::set<std::size_t>> island_clusters;
  std::set<std::uint32_t> islands_seen;
  for (std::uint32_t isl : island) islands_seen.insert(isl);
  report.islands = islands_seen.size();

  for (std::size_t ci = 0; ci < cluster_sets.size(); ++ci) {
    const auto& members = cluster_sets[ci];
    // Track island -> clusters for all clusters (splitting counts even
    // singletons: a read alone in a cluster still splits its island).
    for (std::uint32_t m : members) island_clusters[island[m]].insert(ci);
    if (members.size() < 2) continue;
    ++report.clusters_evaluated;
    report.reads_evaluated += members.size();
    bool pure = true;
    for (std::uint32_t m : members) {
      if (island[m] != island[members[0]]) {
        pure = false;
        break;
      }
    }
    report.pure_clusters += pure;
  }
  if (report.clusters_evaluated > 0) {
    report.purity = static_cast<double>(report.pure_clusters) /
                    static_cast<double>(report.clusters_evaluated);
  }
  if (!island_clusters.empty()) {
    double sum = 0;
    for (const auto& [isl, cls] : island_clusters)
      sum += static_cast<double>(cls.size());
    report.avg_clusters_per_island =
        sum / static_cast<double>(island_clusters.size());
  }
  return report;
}

}  // namespace pgasm::pipeline

namespace pgasm::pipeline {

namespace {
/// Fragment length from its truth record (reads may carry vector bases or
/// indels; the truth interval is close enough for coverage bucketing).
std::uint64_t fragments_len_of(const std::vector<std::uint32_t>& members,
                               const olc::Placement& placement,
                               const std::vector<sim::ReadTruth>& truth) {
  const auto& t = truth[members[placement.fragment]];
  return t.end - t.begin;
}
}  // namespace

ConsensusAccuracy evaluate_consensus(
    const std::vector<std::vector<std::uint32_t>>& cluster_sets,
    const std::vector<olc::AssemblyResult>& assemblies,
    const std::vector<sim::ReadTruth>& truth,
    std::span<const sim::Genome> genomes, std::uint64_t max_cells) {
  ConsensusAccuracy acc;
  // One engine for the whole evaluation: contig-vs-genome alignments are
  // large, and the persistent workspace keeps the peak buffer across
  // contigs instead of reallocating per alignment.
  core::OverlapEngine engine{align::OverlapParams{}};
  for (std::size_t ci = 0; ci < assemblies.size(); ++ci) {
    const auto& members = cluster_sets[ci];
    for (const auto& contig : assemblies[ci].contigs) {
      if (contig.is_singleton()) continue;
      // True source region: union of the layout members' coordinates.
      bool mixed = false;
      std::uint32_t genome_id = 0;
      std::uint64_t lo = UINT64_MAX, hi = 0;
      bool first = true;
      for (const auto& placement : contig.layout) {
        const auto& t = truth[members[placement.fragment]];
        if (first) {
          genome_id = t.genome_id;
          first = false;
        } else if (t.genome_id != genome_id) {
          mixed = true;
          break;
        }
        lo = std::min(lo, t.begin);
        hi = std::max(hi, t.end);
      }
      if (mixed || first || genome_id >= genomes.size()) {
        ++acc.contigs_skipped;
        continue;
      }
      const auto& genome = genomes[genome_id].sequence;
      hi = std::min<std::uint64_t>(hi, genome.size());
      if (lo >= hi ||
          (hi - lo) * contig.consensus.size() > max_cells) {
        ++acc.contigs_skipped;
        continue;
      }
      const std::span<const seq::Code> slice(genome.data() + lo, hi - lo);
      // The contig's orientation relative to the genome is arbitrary:
      // align both ways, keep the better. End-free alignment lets the
      // (possibly longer) slice overhang for free.
      const align::AlignOptions opts{.keep_ops = true};
      const auto fwd = engine.full_align(contig.consensus, slice, opts);
      const auto rcv = seq::reverse_complement(contig.consensus);
      const auto rev = engine.full_align(rcv, slice, opts);
      const bool use_rev = rev.aln.score > fwd.aln.score;
      const auto& best = use_rev ? rev : fwd;
      ++acc.contigs_evaluated;
      acc.columns += best.aln.columns;
      acc.errors += best.aln.columns - best.aln.matches;

      // Per-column coverage from the layout (offset-approximate).
      std::vector<std::uint16_t> coverage(contig.consensus.size(), 0);
      for (const auto& placement : contig.layout) {
        const std::uint64_t flen =
            fragments_len_of(members, placement, truth);
        const std::int64_t b = std::max<std::int64_t>(0, placement.offset);
        const std::int64_t e = std::min<std::int64_t>(
            static_cast<std::int64_t>(coverage.size()),
            placement.offset + static_cast<std::int64_t>(flen));
        for (std::int64_t p = b; p < e; ++p) ++coverage[p];
      }
      if (use_rev) std::reverse(coverage.begin(), coverage.end());
      // Attribute alignment columns to coverage depth buckets.
      std::size_t i = best.aln.a_begin;
      for (const align::Op op : best.aln.ops) {
        const bool consumes_contig = op != align::Op::kInsertB;
        const bool err = op != align::Op::kMatch;
        const std::size_t at = std::min(i, coverage.size() - 1);
        if (coverage[at] >= 3) {
          ++acc.deep_columns;
          acc.deep_errors += err;
        }
        if (consumes_contig) ++i;
      }
    }
  }
  return acc;
}

}  // namespace pgasm::pipeline
