#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <span>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::pipeline {

namespace {

// --- AssemblyResult wire helpers for the distributed assembly phase -------

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t base = out.size();
  out.resize(base + sizeof(T));
  std::memcpy(out.data() + base, &v, sizeof(T));
}

template <typename T>
T take(const std::vector<std::uint8_t>& in, std::size_t& off) {
  T v;
  if (sizeof(T) > in.size() - off)
    throw std::runtime_error("assembly wire: truncated field");
  std::memcpy(&v, in.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

void append_assembly(std::vector<std::uint8_t>& out, std::uint32_t cluster,
                     const olc::AssemblyResult& ar) {
  put(out, cluster);
  put(out, static_cast<std::uint32_t>(ar.contigs.size()));
  put(out, ar.stats.overlaps_considered);
  put(out, ar.stats.overlaps_accepted);
  put(out, ar.stats.layout_conflicts);
  for (const auto& contig : ar.contigs) {
    put(out, static_cast<std::uint64_t>(contig.consensus.size()));
    const std::size_t base = out.size();
    out.resize(base + contig.consensus.size());
    if (!contig.consensus.empty())
      std::memcpy(out.data() + base, contig.consensus.data(),
                  contig.consensus.size());
    put(out, static_cast<std::uint32_t>(contig.layout.size()));
    for (const auto& pl : contig.layout) {
      put(out, pl.fragment);
      put(out, static_cast<std::uint8_t>(pl.flip ? 1 : 0));
      put(out, pl.offset);
      put(out, pl.length);
    }
  }
}

olc::AssemblyResult parse_assembly(const std::vector<std::uint8_t>& in,
                                   std::size_t& off, std::uint32_t* cluster) {
  olc::AssemblyResult ar;
  *cluster = take<std::uint32_t>(in, off);
  const auto n_contigs = take<std::uint32_t>(in, off);
  ar.stats.overlaps_considered = take<std::uint64_t>(in, off);
  ar.stats.overlaps_accepted = take<std::uint64_t>(in, off);
  ar.stats.layout_conflicts = take<std::uint64_t>(in, off);
  ar.contigs.resize(n_contigs);
  for (auto& contig : ar.contigs) {
    const auto len = take<std::uint64_t>(in, off);
    if (len > in.size() - off)
      throw std::runtime_error("assembly wire: truncated consensus");
    contig.consensus.resize(len);
    if (len != 0) std::memcpy(contig.consensus.data(), in.data() + off, len);
    off += len;
    const auto n_layout = take<std::uint32_t>(in, off);
    contig.layout.resize(n_layout);
    for (auto& pl : contig.layout) {
      pl.fragment = take<std::uint32_t>(in, off);
      pl.flip = take<std::uint8_t>(in, off) != 0;
      pl.offset = take<std::int64_t>(in, off);
      pl.length = take<std::uint32_t>(in, off);
    }
  }
  return ar;
}

// --- Final-checkpoint persistence (recovery supervisor) --------------------

/// Write the completed clustering as a checkpoint: the full label vector,
/// no pending pairs, every generator role marked done. A later run whose
/// manifest says clustering completed restores the partition from this file
/// instead of recomputing it; if only the file survives (manifest lost) a
/// normal resume replays it and finishes immediately.
void write_final_cluster_checkpoint(const core::ClusterParams& cp, int ranks,
                                    const PipelineResult& result) {
  core::ClusterCheckpoint ck;
  ck.epoch = result.cluster_stats.resumed_from_epoch +
             result.cluster_stats.checkpoints_written + 1;
  ck.num_ranks = static_cast<std::uint32_t>(ranks);
  ck.n_fragments = static_cast<std::uint32_t>(result.pre.store.size());
  ck.input_hash = core::cluster_input_hash(result.pre.store);
  ck.params_hash = core::cluster_params_hash(cp);
  ck.labels = result.clusters.labels();
  for (int r = 1; r < ranks; ++r) {
    ck.progress.push_back(
        core::RoleProgress{static_cast<std::uint32_t>(r), 1, 0});
  }
  ck.pairs_generated = result.cluster_stats.pairs_generated;
  ck.pairs_aligned = result.cluster_stats.pairs_aligned;
  ck.pairs_accepted = result.cluster_stats.pairs_accepted;
  ck.merges = result.cluster_stats.merges;
  ck.merges_rejected_inconsistent =
      result.cluster_stats.merges_rejected_inconsistent;
  const auto bytes = core::encode_checkpoint(ck);
  core::save_frame_atomic(cp.checkpoint_path,
                          std::span<const std::uint8_t>(bytes));
  if (obs::tracer().enabled()) {
    obs::registry()
        .counter("recovery.checkpoint_bytes", obs::kNoRank, "recovery")
        .inc(bytes.size() + 5);
  }
}

/// Restore the partition from a *final* checkpoint (see above). Refuses
/// mid-run checkpoints (pending pairs or unfinished roles) and anything
/// whose hashes or sizes do not match this run.
bool restore_final_clusters(const core::ClusterParams& cp,
                            PipelineResult& result) {
  if (cp.checkpoint_path.empty()) return false;
  auto loaded = core::try_load_checkpoint(cp.checkpoint_path);
  if (!loaded) return false;
  const core::ClusterCheckpoint ck = std::move(loaded).value();
  const std::size_t n = result.pre.store.size();
  if (ck.n_fragments != n || ck.labels.size() != n) return false;
  if (ck.input_hash != 0 &&
      ck.input_hash != core::cluster_input_hash(result.pre.store)) {
    return false;
  }
  if (ck.params_hash != 0 &&
      ck.params_hash != core::cluster_params_hash(cp)) {
    return false;
  }
  if (!ck.pending.empty()) return false;
  for (const auto& rp : ck.progress) {
    if (rp.done == 0) return false;
  }
  result.clusters.reset(n);
  std::vector<std::uint32_t> first(n, UINT32_MAX);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t label = ck.labels[i];
    if (label >= n) return false;
    if (first[label] == UINT32_MAX) {
      first[label] = i;
    } else {
      result.clusters.unite(first[label], i);
    }
  }
  result.cluster_stats.pairs_generated = ck.pairs_generated;
  result.cluster_stats.pairs_aligned = ck.pairs_aligned;
  result.cluster_stats.pairs_accepted = ck.pairs_accepted;
  result.cluster_stats.merges = ck.merges;
  result.cluster_stats.merges_rejected_inconsistent =
      ck.merges_rejected_inconsistent;
  result.cluster_stats.resumed_from_epoch = ck.epoch;
  return true;
}

/// Validate the recorded GST owner table a cluster checkpoint's generator
/// positions depend on (fault-tolerant GST runs only).
bool gst_table_usable(const core::ClusterParams& cp, int ranks,
                      const seq::FragmentStore& store) {
  if (cp.gst_checkpoint_path.empty()) return false;
  auto loaded = core::try_load_gst_checkpoint(cp.gst_checkpoint_path);
  if (!loaded) return false;
  const core::GstCheckpoint gck = std::move(loaded).value();
  return gck.num_ranks == static_cast<std::uint32_t>(ranks) &&
         gck.prefix_w == cp.prefix_w &&
         (gck.input_hash == 0 ||
          gck.input_hash == core::cluster_input_hash(store)) &&
         (gck.params_hash == 0 ||
          gck.params_hash == core::cluster_params_hash(cp));
}

}  // namespace

ClusterSummary summarize_clusters(const util::UnionFind& clusters) {
  ClusterSummary s;
  s.total_fragments = clusters.size();
  const auto sets = clusters.extract_sets();
  std::uint64_t multi_members = 0;
  for (const auto& members : sets) {
    if (members.size() >= 2) {
      ++s.num_clusters;
      multi_members += members.size();
      s.max_cluster_size =
          std::max(s.max_cluster_size, static_cast<std::uint32_t>(members.size()));
    } else {
      ++s.num_singletons;
    }
  }
  if (s.num_clusters > 0) {
    s.avg_fragments_per_cluster =
        static_cast<double>(multi_members) / static_cast<double>(s.num_clusters);
  }
  if (s.total_fragments > 0) {
    s.max_cluster_fraction = static_cast<double>(s.max_cluster_size) /
                             static_cast<double>(s.total_fragments);
  }
  return s;
}

PipelineResult run_pipeline(const seq::FragmentStore& raw,
                            const std::vector<std::vector<seq::Code>>& vectors,
                            const PipelineParams& params) {
  // Fail fast on parameter combinations that would run the whole pipeline
  // and silently produce a useless clustering (zero-width band, identity
  // outside (0,1], min_overlap below ψ).
  core::validate_cluster_params(params.cluster);

  PipelineResult result;
  const bool obs_on = !params.obs_dir.empty();
  if (obs_on) {
    if (params.trace_capacity != 0)
      obs::tracer().set_capacity(params.trace_capacity);
    obs::begin_run();
  }

  // Recovery supervisor (no-op pass-through when checkpoint_dir is empty).
  SupervisorParams sup_params;
  sup_params.dir = params.checkpoint_dir;
  sup_params.max_attempts = params.phase_max_attempts;
  sup_params.keep_generations = params.keep_generations;
  if (!params.checkpoint_dir.empty()) {
    sup_params.input_hash = core::cluster_input_hash(raw);
    sup_params.params_hash = core::cluster_params_hash(params.cluster);
  }
  Supervisor sup(sup_params);

  // --- Preprocessing --------------------------------------------------------
  sup.run_phase(PhaseId::kPreprocess, /*required=*/true, [&](std::uint32_t) {
    result.pre = preprocess::PreprocessResult{};
    if (obs_on) obs::set_phase("preprocess");
    obs::Span phase_span = obs::span(obs::kDriverTid, "preprocess", "pipeline");
    if (params.run_preprocess) {
      result.pre = preprocess::preprocess(raw, vectors, params.pre);
    } else {
      for (seq::FragmentId id = 0; id < raw.size(); ++id) {
        result.pre.store.add(raw.seq(id), raw.type(id), raw.name(id));
        result.pre.unmasked_store.add(raw.seq(id), raw.type(id), raw.name(id));
        result.pre.kept_ids.push_back(id);
      }
    }
    phase_span.arg("fragments_in", raw.size());
    phase_span.arg("fragments_kept", result.pre.store.size());
  });
  if (obs_on) {
    auto& reg = obs::registry();
    const preprocess::PreprocessStats& ps = result.pre.stats;
    const char* ph = "preprocess";
    reg.counter("preprocess.fragments_in", obs::kNoRank, ph).inc(raw.size());
    reg.counter("preprocess.fragments_kept", obs::kNoRank, ph)
        .inc(result.pre.store.size());
    reg.counter("preprocess.quality_trimmed_bases", obs::kNoRank, ph)
        .inc(ps.quality_trimmed_bases);
    reg.counter("preprocess.vector_trimmed_bases", obs::kNoRank, ph)
        .inc(ps.vector_trimmed_bases);
    reg.counter("preprocess.masked_bases", obs::kNoRank, ph)
        .inc(ps.masked_bases);
    reg.counter("preprocess.discarded_short", obs::kNoRank, ph)
        .inc(ps.discarded_short);
    reg.counter("preprocess.discarded_masked", obs::kNoRank, ph)
        .inc(ps.discarded_masked);
    reg.counter("preprocess.repetitive_kmers", obs::kNoRank, ph)
        .inc(ps.repetitive_kmers);
    // Run-stable spectrum fingerprint: two runs over the same input must
    // export the same value, so perf/obs diffs catch masking drift.
    reg.counter("preprocess.spectrum_fingerprint", obs::kNoRank, ph)
        .inc(ps.repeat_spectrum_fingerprint);
  }

  // --- Clustering -----------------------------------------------------------
  if (obs_on) obs::set_phase("cluster");
  obs::Span cluster_span = obs::span(obs::kDriverTid, "cluster", "pipeline");
  if (params.ranks >= 2) {
    core::ClusterParams cp = params.cluster;
    if (!params.checkpoint_dir.empty()) {
      if (cp.checkpoint_path.empty())
        cp.checkpoint_path = params.checkpoint_dir + "/cluster.ckpt";
      if (cp.checkpoint_every_reports == 0) cp.checkpoint_every_reports = 64;
      if (cp.fault_tolerant_gst && cp.gst_checkpoint_path.empty())
        cp.gst_checkpoint_path = params.checkpoint_dir + "/gst.ckpt";
    }
    // A manifest vouching for a completed clustering plus a valid final
    // checkpoint restores the partition without touching the runtime.
    bool restored = false;
    if (sup.enabled() && sup.completed_in_manifest(PhaseId::kCluster) &&
        restore_final_clusters(cp, result)) {
      restored = true;
      sup.note_skipped(PhaseId::kCluster);
    }
    if (!restored) {
      sup.run_phase(PhaseId::kCluster, /*required=*/true,
                    [&](std::uint32_t attempt) {
        result.clusters = util::UnionFind{};
        result.cluster_stats = core::ClusterStats{};
        core::ClusterCheckpoint resume_ck;
        bool has_resume = false;
        if (!params.checkpoint_dir.empty()) {
          auto loaded = core::try_load_checkpoint(cp.checkpoint_path);
          if (loaded) {
            resume_ck = std::move(loaded).value();
            // Only resume a checkpoint written for this very input and
            // configuration; a stale file falls back to a fresh run.
            has_resume =
                resume_ck.n_fragments == result.pre.store.size() &&
                (resume_ck.input_hash == 0 ||
                 resume_ck.input_hash ==
                     core::cluster_input_hash(result.pre.store)) &&
                (resume_ck.params_hash == 0 ||
                 resume_ck.params_hash == core::cluster_params_hash(cp));
          } else if (loaded.error().code != core::WireErrc::kIo) {
            // Missing file is the normal first-run case; anything else means
            // a checkpoint exists but cannot be trusted. Say so before
            // starting fresh — silent fallback would hide corruption forever.
            util::log_warn() << "ignoring unusable checkpoint "
                             << cp.checkpoint_path << ": "
                             << loaded.error().message();
          }
          // A cluster checkpoint's generator positions are only meaningful
          // under the GST owner table recorded alongside it; without that
          // table, start fresh rather than replay positions against a
          // differently-shaped portion (cluster_parallel would refuse).
          if (has_resume && cp.fault_tolerant_gst &&
              !gst_table_usable(cp, params.ranks, result.pre.store)) {
            util::log_warn()
                << "discarding cluster checkpoint " << cp.checkpoint_path
                << ": its GST owner table is missing or invalid";
            has_resume = false;
          }
        }
        auto pr = core::cluster_parallel(
            result.pre.store, cp, params.ranks, params.cost,
            attempt == 0 ? params.faults : vmpi::FaultPlan{},
            has_resume ? &resume_ck : nullptr);
        result.clusters = std::move(pr.clusters);
        result.cluster_stats = pr.stats;
        result.cost = std::move(pr.cost);
        if (!cp.checkpoint_path.empty()) {
          if (sup.enabled()) {
            // Keep a *final* checkpoint so a rerun restores the finished
            // partition instead of recomputing it (the manifest records
            // which runs it is valid for).
            write_final_cluster_checkpoint(cp, params.ranks, result);
          } else {
            // No manifest to vouch for it: a leftover checkpoint would make
            // the next fresh run "resume" a finished state.
            std::remove(cp.checkpoint_path.c_str());
          }
        }
      });
    }
  } else {
    sup.run_phase(PhaseId::kCluster, /*required=*/true, [&](std::uint32_t) {
      auto sr = core::cluster_serial(result.pre.store, params.cluster);
      result.clusters = std::move(sr.clusters);
      result.cluster_stats = sr.stats;
      // Parallel runs publish these inside cluster_parallel (rank 0); serial
      // runs publish them here at driver level.
      if (obs_on) {
        auto& reg = obs::registry();
        const core::ClusterStats& cs = result.cluster_stats;
        const char* ph = "cluster";
        reg.counter("cluster.pairs_generated", obs::kNoRank, ph)
            .inc(cs.pairs_generated);
        reg.counter("cluster.pairs_aligned", obs::kNoRank, ph)
            .inc(cs.pairs_aligned);
        reg.counter("cluster.pairs_accepted", obs::kNoRank, ph)
            .inc(cs.pairs_accepted);
        reg.counter("cluster.merges", obs::kNoRank, ph).inc(cs.merges);
        reg.gauge("cluster.gst_seconds", obs::kNoRank, ph).set(cs.gst_seconds);
        reg.gauge("cluster.cluster_seconds", obs::kNoRank, ph)
            .set(cs.cluster_seconds);
      }
    });
  }
  result.cluster_summary = summarize_clusters(result.clusters);
  cluster_span.arg("merges", result.cluster_stats.merges);
  cluster_span.arg("clusters", result.cluster_summary.num_clusters);
  cluster_span.finish();
  if (obs_on) {
    auto& reg = obs::registry();
    const ClusterSummary& s = result.cluster_summary;
    reg.counter("cluster.num_clusters", obs::kNoRank, "cluster")
        .inc(s.num_clusters);
    reg.counter("cluster.num_singletons", obs::kNoRank, "cluster")
        .inc(s.num_singletons);
    reg.counter("cluster.max_cluster_size", obs::kNoRank, "cluster")
        .inc(s.max_cluster_size);
  }

  // Materialize cluster membership: non-singletons by decreasing size,
  // ties by smallest member id. extract_sets() already orders members
  // ascending and clusters by representative, but the explicit tie-break
  // makes the contig emission order a pure function of the clustering
  // *partition* — not of which member happened to become the union-find
  // representative (DESIGN.md §16).
  auto sets = result.clusters.extract_sets();
  std::stable_sort(sets.begin(), sets.end(),
                   [](const auto& a, const auto& b) {
                     if (a.size() != b.size()) return a.size() > b.size();
                     return a.front() < b.front();
                   });
  result.cluster_sets = std::move(sets);

  // --- Per-cluster assembly -------------------------------------------------
  // "The subsequent assembly tasks are trivially parallelized by
  // distributing the clusters across multiple processors and running
  // multiple instances of a serial assembler in parallel" (Section 3).
  if (params.run_assembly) {
    sup.run_phase(PhaseId::kAssembly, /*required=*/true,
                  [&](std::uint32_t attempt) {
    if (obs_on) obs::set_phase("assembly");
    obs::Span asm_span = obs::span(obs::kDriverTid, "assembly", "pipeline");
    result.assemblies.clear();
    result.assembly_summary = AssemblySummary{};
    std::size_t n_assemble = 0;
    while (n_assemble < result.cluster_sets.size() &&
           result.cluster_sets[n_assemble].size() >= 2) {
      ++n_assemble;
    }
    util::WallTimer timer;
    result.assemblies.resize(n_assemble);
    auto assemble_one = [&](std::size_t ci) {
      seq::FragmentStore sub;
      for (const auto id : result.cluster_sets[ci]) {
        sub.add(result.pre.unmasked_store.seq(id),
                result.pre.unmasked_store.type(id), {},
                result.pre.unmasked_store.quality(id));
      }
      return olc::assemble(sub, params.assembly);
    };
    if (params.ranks >= 2 && n_assemble > 0) {
      // Clusters are sorted by decreasing size; round-robin over ranks is
      // an LPT-style balance. Results ship to rank 0 serialized.
      // Under the supervisor the chaos fault plan reaches this phase too
      // (first attempt only): a crashed or silenced worker surfaces as a
      // failed gather recv, and the retry reassembles everything clean.
      vmpi::Runtime rt(params.ranks, params.cluster.transport, params.cost,
                       sup.enabled() && attempt == 0 ? params.faults
                                                     : vmpi::FaultPlan{});
      const auto cost = rt.run([&](vmpi::Comm& comm) {
        std::vector<std::uint8_t> outbox;
        {
          auto scope = comm.compute_scope();
          for (std::size_t ci = comm.rank(); ci < n_assemble;
               ci += comm.size()) {
            auto asm_result = assemble_one(ci);
            if (comm.rank() == 0) {
              result.assemblies[ci] = std::move(asm_result);
              continue;
            }
            append_assembly(outbox, static_cast<std::uint32_t>(ci),
                            asm_result);
          }
        }
        if (comm.rank() != 0) {
          // pgasm-lint: allow(raw-comm): assembly-result gather is a one-shot
          // all-to-root ship with its own framing, not clustering traffic.
          comm.send(0, 7, outbox.data(), outbox.size());
        } else {
          for (int src = 1; src < comm.size(); ++src) {
            // pgasm-lint: allow(raw-comm): matching root-side recv of the gather.
            const auto bytes = comm.recv_vector<std::uint8_t>(src, 7);
            std::size_t off = 0;
            while (off < bytes.size()) {
              std::uint32_t ci = 0;
              olc::AssemblyResult ar = parse_assembly(bytes, off, &ci);
              result.assemblies[ci] = std::move(ar);
            }
          }
        }
      });
      result.assembly_summary.assembly_modeled_seconds =
          cost.modeled_parallel_seconds();
    } else {
      for (std::size_t ci = 0; ci < n_assemble; ++ci) {
        result.assemblies[ci] = assemble_one(ci);
      }
    }
    result.assembly_summary.assembly_seconds = timer.elapsed();
    std::vector<std::uint64_t> contig_lengths;
    result.assembly_summary.clusters_assembled = n_assemble;
    for (const auto& asm_result : result.assemblies) {
      for (const auto& contig : asm_result.contigs) {
        if (!contig.is_singleton()) {
          ++result.assembly_summary.total_contigs;
          contig_lengths.push_back(contig.length());
          result.assembly_summary.consensus_bases += contig.length();
        }
      }
    }
    result.assembly_summary.n50 = util::n50(std::move(contig_lengths));
    if (result.assembly_summary.clusters_assembled > 0) {
      result.assembly_summary.contigs_per_cluster =
          static_cast<double>(result.assembly_summary.total_contigs) /
          static_cast<double>(result.assembly_summary.clusters_assembled);
    }
    asm_span.arg("clusters", n_assemble);
    asm_span.arg("contigs", result.assembly_summary.total_contigs);
    asm_span.finish();
    if (obs_on) {
      auto& reg = obs::registry();
      const AssemblySummary& a = result.assembly_summary;
      const char* ph = "assembly";
      reg.counter("assembly.clusters_assembled", obs::kNoRank, ph)
          .inc(a.clusters_assembled);
      reg.counter("assembly.total_contigs", obs::kNoRank, ph)
          .inc(a.total_contigs);
      reg.counter("assembly.n50", obs::kNoRank, ph).inc(a.n50);
      reg.counter("assembly.consensus_bases", obs::kNoRank, ph)
          .inc(a.consensus_bases);
      reg.gauge("assembly.assembly_seconds", obs::kNoRank, ph)
          .set(a.assembly_seconds);
    }
    });
  }

  // --- Optional phases (degradable under the supervisor) --------------------
  if (params.optional_post_phase) {
    if (obs_on) obs::set_phase("validation");
    sup.run_phase(PhaseId::kValidation, /*required=*/false,
                  [&](std::uint32_t) { params.optional_post_phase(result); });
  }
  result.recovery = sup.stats();
  if (obs_on) {
    sup.publish_obs();
    obs::set_phase("");
    sup.run_phase(PhaseId::kObsExport, /*required=*/false,
                  [&](std::uint32_t) { obs::write_run_outputs(params.obs_dir); });
    obs::tracer().set_enabled(false);
  }
  result.recovery = sup.stats();
  return result;
}

GlobalScaffolds build_scaffolds(
    const PipelineResult& pipeline_result,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& raw_mates,
    const std::vector<std::uint32_t>& mate_inserts, std::size_t raw_size,
    const olc::ScaffoldParams& params) {
  GlobalScaffolds out;
  // raw id -> preprocessed id (UINT32_MAX = invalidated).
  std::vector<std::uint32_t> raw_to_pre(raw_size, UINT32_MAX);
  for (std::uint32_t pre = 0; pre < pipeline_result.pre.kept_ids.size();
       ++pre) {
    raw_to_pre[pipeline_result.pre.kept_ids[pre]] = pre;
  }
  // Global contig list with layouts remapped to pre-store fragment ids.
  for (std::size_t ci = 0; ci < pipeline_result.assemblies.size(); ++ci) {
    const auto& members = pipeline_result.cluster_sets[ci];
    for (const auto& contig : pipeline_result.assemblies[ci].contigs) {
      olc::Contig global = contig;
      for (auto& pl : global.layout) pl.fragment = members[pl.fragment];
      out.contigs.push_back(std::move(global));
    }
  }
  // Remap mate links.
  std::vector<olc::MateLink> links;
  links.reserve(raw_mates.size());
  for (std::size_t i = 0; i < raw_mates.size(); ++i) {
    const auto [ra, rb] = raw_mates[i];
    if (ra >= raw_size || rb >= raw_size || raw_to_pre[ra] == UINT32_MAX ||
        raw_to_pre[rb] == UINT32_MAX) {
      ++out.mates_dropped;
      continue;
    }
    links.push_back(
        olc::MateLink{raw_to_pre[ra], raw_to_pre[rb], mate_inserts[i]});
  }
  out.result = olc::scaffold(out.contigs, links, params);
  std::vector<std::uint64_t> contig_lens;
  for (const auto& c : out.contigs) {
    if (!c.is_singleton()) contig_lens.push_back(c.length());
  }
  out.contig_n50 = util::n50(std::move(contig_lens));
  out.scaffold_span_n50 = out.result.span_n50(out.contigs);
  return out;
}

}  // namespace pgasm::pipeline
