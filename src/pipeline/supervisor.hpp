// Pipeline recovery supervisor (DESIGN.md "End-to-end recovery").
//
// Wraps each pipeline phase in a retry loop with capped exponential
// backoff and owns the run manifest: a generation-numbered, CRC-protected
// record (core::RunManifest inside the wire frame) of which phases
// completed, written atomically after every phase transition. On start the
// newest on-disk generation whose input/params hashes match the run is
// adopted, so a restarted pipeline knows which phases' persisted state it
// may reuse; corrupt or mismatched manifests are counted and skipped, and
// generations older than `keep_generations` are garbage-collected.
//
// Required phases rethrow once attempts are exhausted. Optional phases
// (ground-truth validation, obs export) are instead marked *degraded*: the
// pipeline completes without them, loudly — a warning log plus the
// recovery.degraded_phases counter in summary.txt.
//
// Fault injection contract: callers pass their vmpi::FaultPlan only on
// attempt 0 (the `attempt` argument of the phase body), so a chaos run
// that breaks a phase retries it clean instead of replaying the same
// crash forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/wire.hpp"

namespace pgasm::pipeline {

/// Manifest phase ids (PhaseEntry::phase). Values are the on-disk format:
/// append only, never renumber.
enum class PhaseId : std::uint32_t {
  kPreprocess = 0,
  kCluster = 1,
  kAssembly = 2,
  kValidation = 3,
  kObsExport = 4,
};

const char* phase_name(PhaseId id) noexcept;

struct SupervisorParams {
  /// Manifest directory. Empty = supervisor disabled: run_phase makes one
  /// attempt and lets exceptions propagate (the un-supervised behavior).
  std::string dir;
  /// Attempts per phase before giving up (min 1).
  std::uint32_t max_attempts = 3;
  /// Backoff between attempts (seconds).
  double backoff_initial = 0.01;
  double backoff_multiplier = 2.0;
  double backoff_cap = 0.25;
  /// Manifest generations kept on disk; older ones are removed.
  std::uint32_t keep_generations = 2;
  /// Hashes a loaded manifest must match to be adopted (0 = skip check).
  std::uint64_t input_hash = 0;
  std::uint64_t params_hash = 0;
};

struct SupervisorStats {
  std::uint64_t phase_retries = 0;     ///< attempts beyond each first one
  std::uint64_t degraded_phases = 0;   ///< optional phases given up on
  std::uint64_t phases_skipped_resume = 0;  ///< restored from a checkpoint
  std::uint64_t manifests_rejected = 0;     ///< corrupt/mismatched on load
  std::uint64_t manifest_bytes_written = 0;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorParams params);

  bool enabled() const noexcept { return !params_.dir.empty(); }

  /// True when the adopted on-disk manifest says `id` completed. Only
  /// phases with persisted state (clustering's final checkpoint) can
  /// actually be skipped; the caller decides.
  bool completed_in_manifest(PhaseId id) const noexcept;

  /// Run `body(attempt)` with retry + backoff. Returns true on success;
  /// for optional (`required == false`) phases returns false after
  /// exhausting attempts, marking the phase degraded. Required phases
  /// rethrow the last failure. On success the phase is recorded completed
  /// and the manifest is persisted.
  bool run_phase(PhaseId id, bool required,
                 const std::function<void(std::uint32_t attempt)>& body);

  /// Record that `id` was satisfied from persisted state without running
  /// (counts toward phases_skipped_resume; keeps the manifest entry
  /// completed).
  void note_skipped(PhaseId id);

  bool degraded(PhaseId id) const noexcept;

  const SupervisorStats& stats() const noexcept { return stats_; }
  std::uint64_t generation() const noexcept { return manifest_.generation; }

  /// Publish recovery.* counters into the obs registry (phase label
  /// "recovery") so they land in summary.txt / metrics.jsonl.
  void publish_obs() const;

 private:
  core::PhaseEntry& entry(PhaseId id);
  void load();
  void persist();

  SupervisorParams params_;
  core::RunManifest manifest_;  ///< this run's manifest (next generation)
  core::RunManifest loaded_;    ///< newest valid on-disk manifest
  std::uint64_t max_gen_seen_ = 0;  ///< incl. rejected files (no gen reuse)
  bool has_loaded_ = false;
  bool gc_done_ = false;
  SupervisorStats stats_;
};

}  // namespace pgasm::pipeline
