// Ground-truth validation of clustering (paper Section 9.1 maps clusters to
// the published benchmark genome with BLAST; with a simulator we validate
// directly against recorded read coordinates).
//
// Benchmark islands: connected components of source-interval overlap among
// the reads (per source genome) — the regions an ideal assembler would
// reconstruct as contigs. A cluster is *pure* when all of its members come
// from one island; an island is *split* across however many clusters its
// reads landed in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "olc/assembler.hpp"
#include "sim/reads.hpp"

namespace pgasm::pipeline {

struct PurityReport {
  std::size_t clusters_evaluated = 0;  ///< non-singleton clusters
  std::size_t pure_clusters = 0;
  double purity = 0;  ///< pure / evaluated (the paper reports 98.7%)
  std::size_t islands = 0;
  double avg_clusters_per_island = 0;  ///< 1.0 = no splitting
  std::size_t reads_evaluated = 0;
};

/// Label every read with its benchmark island id. `truth` must be parallel
/// to the fragment ids used in `cluster_sets`.
std::vector<std::uint32_t> benchmark_islands(
    const std::vector<sim::ReadTruth>& truth);

PurityReport evaluate_purity(
    const std::vector<std::vector<std::uint32_t>>& cluster_sets,
    const std::vector<sim::ReadTruth>& truth);

/// Consensus accuracy against the source genome (paper Section 8: "less
/// than 1 nucleotide in 10,000 was incorrect relative to the benchmark").
/// Each multi-fragment contig is aligned (both orientations) to the genome
/// slice spanned by its members' true coordinates; errors are non-identity
/// alignment columns within the contig's aligned span.
struct ConsensusAccuracy {
  std::size_t contigs_evaluated = 0;
  std::size_t contigs_skipped = 0;  ///< mixed-genome members or too large
  std::uint64_t columns = 0;
  std::uint64_t errors = 0;
  /// Same, restricted to consensus columns covered by >= 3 fragments —
  /// the regime the paper's benchmark (ten deeply finished genes) sits in.
  /// Thin (1-2X) columns carry raw read error and dominate the overall
  /// rate at low coverage.
  std::uint64_t deep_columns = 0;
  std::uint64_t deep_errors = 0;

  double error_rate() const noexcept {
    return columns == 0 ? 0.0
                        : static_cast<double>(errors) /
                              static_cast<double>(columns);
  }
  double deep_error_rate() const noexcept {
    return deep_columns == 0 ? 0.0
                             : static_cast<double>(deep_errors) /
                                   static_cast<double>(deep_columns);
  }
};

/// `assemblies[i]` must correspond to `cluster_sets[i]` (the pipeline's
/// layout: non-singleton clusters by decreasing size). `genomes` indexed by
/// ReadTruth::genome_id. Contigs whose evaluation alignment would exceed
/// `max_cells` DP cells are skipped (counted).
ConsensusAccuracy evaluate_consensus(
    const std::vector<std::vector<std::uint32_t>>& cluster_sets,
    const std::vector<olc::AssemblyResult>& assemblies,
    const std::vector<sim::ReadTruth>& truth,
    std::span<const sim::Genome> genomes,
    std::uint64_t max_cells = 64ull << 20);

}  // namespace pgasm::pipeline
