// Fragment preprocessing (paper Section 8, Table 2): quality trimming and
// vector screening (the paper uses Lucy), then repeat masking against known
// and statistically-defined repeats. Fragments that end up too short or
// almost entirely masked are invalidated — exactly the effect Table 2
// reports (shotgun loses ~60-65% of fragments to repeats while
// gene-enriched fragments mostly survive).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "preprocess/repeat_masker.hpp"
#include "seq/fragment_store.hpp"

namespace pgasm::preprocess {

struct PreprocessParams {
  // Quality trimming: trim each end while a sliding window's mean quality
  // is below the threshold. Skipped for stores without quality values.
  std::uint32_t qual_window = 10;
  std::uint32_t qual_min = 20;

  // Vector screening: exact k-mer hits against the vector library within
  // this distance of either end cause trimming past the hit.
  std::uint32_t vector_k = 12;
  std::uint32_t vector_search_window = 80;

  RepeatMaskParams repeat{};
  bool mask_repeats = true;  ///< ablation switch (Section 9.1)

  // Invalidation rules.
  std::uint32_t min_len = 100;
  double max_masked_fraction = 0.60;
};

struct TypeStats {
  std::uint64_t fragments_before = 0;
  std::uint64_t bases_before = 0;
  std::uint64_t fragments_after = 0;
  std::uint64_t bases_after = 0;  ///< unmasked bases of surviving fragments
};

struct PreprocessStats {
  std::map<seq::FragType, TypeStats> by_type;  ///< Table 2 rows
  std::uint64_t quality_trimmed_bases = 0;
  std::uint64_t vector_trimmed_bases = 0;
  std::uint64_t masked_bases = 0;
  std::uint64_t discarded_short = 0;
  std::uint64_t discarded_masked = 0;
  std::size_t repetitive_kmers = 0;
  /// FNV-1a fold over the canonical (sorted) repetitive-kmer spectrum: a
  /// run-stable fingerprint of what the masker learned. Equal input +
  /// params must yield equal fingerprints at every rank count and
  /// transport — test_determinism asserts exactly that.
  std::uint64_t repeat_spectrum_fingerprint = 0;
};

struct PreprocessResult {
  seq::FragmentStore store;            ///< surviving fragments, masked
  /// The same fragments without repeat masking (still quality/vector
  /// trimmed): clustering runs on the masked store, per-cluster assembly
  /// on the unmasked one (the paper hands CAP3 the original fragments).
  seq::FragmentStore unmasked_store;
  std::vector<std::uint32_t> kept_ids; ///< index into the input store
  PreprocessStats stats;
};

/// Run the full preprocessing chain. `vectors` is the cloning-vector
/// library to screen against (see sim::vector_library()).
PreprocessResult preprocess(
    const seq::FragmentStore& input,
    const std::vector<std::vector<seq::Code>>& vectors,
    const PreprocessParams& params);

}  // namespace pgasm::preprocess
