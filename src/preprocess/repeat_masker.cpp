#include "preprocess/repeat_masker.hpp"

#include <algorithm>
#include <cmath>

namespace pgasm::preprocess {

bool RepeatMasker::canonical_kmer(std::span<const seq::Code> text,
                                  std::uint32_t pos, std::uint32_t k,
                                  std::uint64_t* out) noexcept {
  std::uint64_t fwd = 0, rev = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const seq::Code c = text[pos + i];
    if (!seq::is_base(c)) return false;
    fwd = (fwd << 2) | c;
    rev |= static_cast<std::uint64_t>(seq::complement(c)) << (2 * i);
  }
  *out = std::min(fwd, rev);
  return true;
}

RepeatMasker::RepeatMasker(const seq::FragmentStore& store,
                           const RepeatMaskParams& params)
    : k_(params.k) {
  if (params.threshold_multiple <= 0) return;
  util::Prng rng(params.seed);
  // Restrict the sample to uniformly-sampled fragment types when present.
  auto is_uniform = [](seq::FragType t) {
    return t == seq::FragType::kWGS || t == seq::FragType::kEnv;
  };
  bool have_uniform = false;
  if (params.uniform_sample_only) {
    for (seq::FragmentId id = 0; id < store.size() && !have_uniform; ++id) {
      have_uniform = is_uniform(store.type(id));
    }
  }
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  std::uint64_t total_kmers = 0;
  for (seq::FragmentId id = 0; id < store.size(); ++id) {
    if (have_uniform && !is_uniform(store.type(id))) continue;
    if (!rng.chance(params.sample_fraction)) continue;
    const auto text = store.seq(id);
    if (text.size() < k_) continue;
    for (std::uint32_t p = 0; p + k_ <= text.size(); ++p) {
      std::uint64_t key;
      if (!canonical_kmer(text, p, k_, &key)) continue;
      ++counts[key];
      ++total_kmers;
    }
  }
  if (counts.empty()) return;
  (void)total_kmers;
  // Canonical key-ordered snapshot (W016): `counts` iterates in hash-bucket
  // order, which varies run to run. The histogram fill below is a
  // commutative integer fold, but the repetitive-set build feeds the
  // spectrum fingerprint (preprocess.cpp) and repetitive_kmers(), so every
  // consumer sees the one ordering that is reproducible everywhere.
  const auto spectrum = util::sorted_items(counts);
  if (params.fixed_threshold > 0) {
    threshold_ = params.fixed_threshold;
  } else {
    // "Statistical over-representation" baseline (Section 9.1): the unique-
    // sequence coverage peak of the k-mer count histogram. Count-1 k-mers
    // are unreliable (sequencing errors make each errorful k-mer a distinct
    // singleton), so the peak is sought over counts >= 2 and only trusted
    // when it carries real mass relative to the singletons; otherwise the
    // sample is shallow (the paper's 0.1X regime) and the baseline is 1 —
    // any k-mer seen min_count times in a shallow sample is already
    // over-represented.
    constexpr std::size_t kCap = 1024;
    std::vector<std::uint64_t> hist(kCap + 1, 0);
    for (const auto& [key, count] : spectrum) {
      ++hist[std::min<std::size_t>(count, kCap)];
    }
    // Interior coverage peak: the histogram of a shallow sample decays
    // monotonically (unique k-mers are Poisson with mean < ~2), while a
    // deep sample rises again past the error-singleton valley. Only a real
    // rise moves the baseline off 1.
    std::size_t rise = 0;
    for (std::size_t c = 3; c <= kCap; ++c) {
      if (hist[c] > hist[c - 1] && hist[c] * 20 >= hist[1]) {
        rise = c;
        break;
      }
    }
    double baseline = 1.0;
    if (rise != 0) {
      // A genuine coverage peak holds most of the distinct k-mers; an
      // isolated high-copy repeat spike does not — in that case the sample
      // is still "shallow" for unique sequence and the baseline stays 1.
      std::uint64_t mass_from_rise = 0, total_mass = 0;
      for (std::size_t c = 1; c <= kCap; ++c) {
        total_mass += hist[c];
        if (c >= rise) mass_from_rise += hist[c];
      }
      if (mass_from_rise * 4 >= total_mass) {
        std::size_t peak = rise;
        for (std::size_t c = rise; c <= kCap; ++c) {
          if (hist[c] > hist[peak]) peak = c;
        }
        baseline = static_cast<double>(peak);
      }
    }
    threshold_ = std::max<std::uint32_t>(
        params.min_count, static_cast<std::uint32_t>(std::ceil(
                              baseline * params.threshold_multiple)));
  }
  for (const auto& [key, count] : spectrum) {
    if (count >= threshold_) repetitive_.insert(key);
  }
}

void RepeatMasker::add_library_sequence(std::span<const seq::Code> sequence) {
  if (sequence.size() < k_) return;
  for (std::uint32_t p = 0; p + k_ <= sequence.size(); ++p) {
    std::uint64_t key;
    if (canonical_kmer(sequence, p, k_, &key)) repetitive_.insert(key);
  }
}

std::uint64_t RepeatMasker::mask_fragment(seq::FragmentStore& store,
                                          seq::FragmentId id) const {
  if (repetitive_.empty()) return 0;
  const auto text = store.seq(id);
  if (text.size() < k_) return 0;
  // Mark positions covered by any repetitive k-mer, then apply as runs.
  std::vector<std::uint8_t> hit(text.size(), 0);
  bool any = false;
  for (std::uint32_t p = 0; p + k_ <= text.size(); ++p) {
    std::uint64_t key;
    if (!canonical_kmer(text, p, k_, &key)) continue;
    if (repetitive_.count(key)) {
      std::fill(hit.begin() + p, hit.begin() + p + k_, std::uint8_t{1});
      any = true;
    }
  }
  if (!any) return 0;
  // Bridge short unmasked holes between repetitive hits: point mutations in
  // diverged repeat copies break individual k-mers but the surrounding
  // sequence is still repeat-derived and must not seed promising pairs.
  const std::size_t bridge = k_;
  std::size_t last_hit = SIZE_MAX;
  for (std::size_t p = 0; p < hit.size(); ++p) {
    if (!hit[p]) continue;
    if (last_hit != SIZE_MAX && p - last_hit <= bridge + 1) {
      std::fill(hit.begin() + last_hit, hit.begin() + p, std::uint8_t{1});
    }
    last_hit = p;
  }
  std::uint64_t masked = 0;
  auto span = store.mutable_seq(id);
  for (std::size_t p = 0; p < hit.size(); ++p) {
    if (hit[p] && seq::is_base(span[p])) {
      span[p] = seq::kMask;
      ++masked;
    }
  }
  return masked;
}

}  // namespace pgasm::preprocess
