#include "preprocess/preprocess.hpp"

#include <algorithm>
#include <unordered_set>

namespace pgasm::preprocess {

namespace {

/// Quality trim: returns [lo, hi) — the largest range whose leading and
/// trailing windows clear the threshold. Empty range means discard.
std::pair<std::uint32_t, std::uint32_t> quality_range(
    std::span<const std::uint8_t> qual, std::uint32_t window,
    std::uint32_t min_q) {
  const std::uint32_t n = static_cast<std::uint32_t>(qual.size());
  if (n < window) return {0, 0};
  auto window_ok = [&](std::uint32_t start) {
    std::uint32_t sum = 0;
    for (std::uint32_t i = 0; i < window; ++i) sum += qual[start + i];
    return sum >= min_q * window;
  };
  std::uint32_t lo = 0;
  while (lo + window <= n && !window_ok(lo)) ++lo;
  if (lo + window > n) return {0, 0};
  std::uint32_t hi = n;
  while (hi >= lo + window && !window_ok(hi - window)) --hi;
  if (hi < lo + window) return {0, 0};
  // Refine: drop individual sub-threshold bases still inside the windows.
  while (lo < hi && qual[lo] < min_q) ++lo;
  while (hi > lo && qual[hi - 1] < min_q) --hi;
  return {lo, hi};
}

class VectorScreen {
 public:
  VectorScreen(const std::vector<std::vector<seq::Code>>& vectors,
               std::uint32_t k)
      : k_(k) {
    for (const auto& v : vectors) {
      if (v.size() < k_) continue;
      for (std::uint32_t p = 0; p + k_ <= v.size(); ++p) {
        std::uint64_t key;
        if (RepeatMasker::canonical_kmer(v, p, k_, &key)) kmers_.insert(key);
      }
    }
  }

  /// Trim vector-contaminated ends: returns [lo, hi) within [0, len).
  std::pair<std::uint32_t, std::uint32_t> clean_range(
      std::span<const seq::Code> text, std::uint32_t search_window) const {
    const std::uint32_t n = static_cast<std::uint32_t>(text.size());
    if (n < k_ || kmers_.empty()) return {0, n};
    std::uint32_t lo = 0, hi = n;
    const std::uint32_t front_end = std::min(search_window, n - k_ + 1);
    for (std::uint32_t p = 0; p < front_end; ++p) {
      std::uint64_t key;
      if (RepeatMasker::canonical_kmer(text, p, k_, &key) &&
          kmers_.count(key)) {
        lo = std::max(lo, p + k_);
      }
    }
    const std::uint32_t back_start =
        n - k_ + 1 > search_window ? n - k_ + 1 - search_window : 0;
    for (std::uint32_t p = back_start; p + k_ <= n; ++p) {
      std::uint64_t key;
      if (RepeatMasker::canonical_kmer(text, p, k_, &key) &&
          kmers_.count(key)) {
        hi = std::min(hi, p);
      }
    }
    if (lo >= hi) return {0, 0};
    return {lo, hi};
  }

 private:
  std::uint32_t k_;
  std::unordered_set<std::uint64_t> kmers_;
};

}  // namespace

PreprocessResult preprocess(
    const seq::FragmentStore& input,
    const std::vector<std::vector<seq::Code>>& vectors,
    const PreprocessParams& params) {
  PreprocessResult result;
  PreprocessStats& stats = result.stats;

  for (seq::FragmentId id = 0; id < input.size(); ++id) {
    auto& ts = stats.by_type[input.type(id)];
    ++ts.fragments_before;
    ts.bases_before += input.length(id);
  }

  // Pass 1: quality trim + vector screen into an intermediate store.
  const VectorScreen screen(vectors, params.vector_k);
  seq::FragmentStore trimmed;
  std::vector<std::uint32_t> trimmed_src;
  for (seq::FragmentId id = 0; id < input.size(); ++id) {
    const auto text = input.seq(id);
    std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(text.size());
    if (input.has_quality()) {
      const auto [qlo, qhi] = quality_range(input.quality(id),
                                            params.qual_window, params.qual_min);
      stats.quality_trimmed_bases += text.size() - (qhi - qlo);
      lo = qlo;
      hi = qhi;
    }
    if (hi > lo) {
      const auto [vlo, vhi] =
          screen.clean_range(text.subspan(lo, hi - lo),
                             params.vector_search_window);
      stats.vector_trimmed_bases += (hi - lo) - (vhi - vlo);
      hi = lo + vhi;
      lo = lo + vlo;
    }
    if (hi - lo < params.min_len) {
      ++stats.discarded_short;
      continue;
    }
    if (input.has_quality()) {
      trimmed.add(text.subspan(lo, hi - lo), input.type(id), input.name(id),
                  input.quality(id).subspan(lo, hi - lo));
    } else {
      trimmed.add(text.subspan(lo, hi - lo), input.type(id), input.name(id));
    }
    trimmed_src.push_back(id);
  }

  // Pass 2: learn the repeat spectrum from the trimmed survivors, mask a
  // copy, and invalidate fragments that are mostly repetitive. The
  // unmasked trimmed text of each survivor is kept for assembly.
  seq::FragmentStore masked = trimmed;
  if (params.mask_repeats) {
    RepeatMasker masker(trimmed, params.repeat);
    stats.repetitive_kmers = masker.num_repetitive_kmers();
    // Fingerprint over the canonical spectrum view (W016): folding in
    // hash-bucket order would make the fingerprint differ run to run even
    // when the learned spectrum is identical.
    std::uint64_t fp = 1469598103934665603ull;  // FNV-1a offset basis
    for (const std::uint64_t kmer : masker.repetitive_kmers()) {
      fp ^= kmer;
      fp *= 1099511628211ull;  // FNV-1a prime
    }
    stats.repeat_spectrum_fingerprint = fp;
    for (seq::FragmentId id = 0; id < masked.size(); ++id) {
      stats.masked_bases += masker.mask_fragment(masked, id);
    }
  }

  for (seq::FragmentId id = 0; id < masked.size(); ++id) {
    if (masked.masked_fraction(id) > params.max_masked_fraction) {
      ++stats.discarded_masked;
      continue;
    }
    result.store.add(masked.seq(id), masked.type(id), masked.name(id),
                     masked.quality(id));
    result.unmasked_store.add(trimmed.seq(id), trimmed.type(id),
                              trimmed.name(id), trimmed.quality(id));
    result.kept_ids.push_back(trimmed_src[id]);
    auto& ts = stats.by_type[masked.type(id)];
    ++ts.fragments_after;
    const auto s = masked.seq(id);
    for (seq::Code c : s) ts.bases_after += seq::is_base(c);
  }
  return result;
}

}  // namespace pgasm::preprocess
