// Statistical repeat detection and masking (paper Sections 8, 9.1).
//
// "Repeats can be identified through their statistical over-representation
// in a random sample. Because WGS fragments themselves comprise a random
// sample, we used ... randomly chosen fragments (0.1X coverage) to predict
// high-copy sequences." We do the same: count canonical k-mers over a
// random subsample of the input fragments; k-mers whose count exceeds a
// threshold (a multiple of the sample mean) are called repetitive, and any
// window of a fragment dominated by repetitive k-mers is masked. An
// optional library of known repeat/vector sequences is screened the same
// way (exact k-mer membership).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "seq/fragment_store.hpp"
#include "util/deterministic.hpp"
#include "util/prng.hpp"

namespace pgasm::preprocess {

struct RepeatMaskParams {
  std::uint32_t k = 16;
  /// Fraction of fragments sampled to build the k-mer spectrum. Keep the
  /// *sampled coverage* shallow (~0.1-1X, i.e. fraction ~= 1/coverage): the
  /// paper deliberately samples 0.1X so that any k-mer seen several times
  /// is statistically over-represented. Deep samples shift the statistic
  /// into coverage-peak detection, which is noisier.
  double sample_fraction = 0.1;
  /// A k-mer is repetitive when count >= threshold_multiple * mean count
  /// (and >= min_count). 0 disables statistical masking.
  double threshold_multiple = 4.0;
  std::uint32_t min_count = 4;
  /// Non-zero: skip the statistic entirely and use this absolute count.
  std::uint32_t fixed_threshold = 0;
  std::uint64_t seed = 0x5eed;
  /// Build the spectrum only from uniformly-sampled fragment types (WGS /
  /// ENV). The paper derives statistical repeats from "randomly chosen
  /// [WGS] fragments (0.1X coverage)" precisely because gene-enriched
  /// fragments oversample genic k-mers and would poison the statistic.
  /// Falls back to all fragments when no uniform types are present.
  bool uniform_sample_only = true;
};

class RepeatMasker {
 public:
  /// Learn the repetitive k-mer set from a subsample of `store`.
  RepeatMasker(const seq::FragmentStore& store, const RepeatMaskParams& params);

  /// Add every k-mer of a known repeat/vector sequence to the mask set.
  void add_library_sequence(std::span<const seq::Code> sequence);

  /// Mask all positions of fragment `id` covered by a repetitive k-mer.
  /// Returns the number of newly masked bases.
  std::uint64_t mask_fragment(seq::FragmentStore& store,
                              seq::FragmentId id) const;

  std::size_t num_repetitive_kmers() const noexcept { return repetitive_.size(); }
  std::uint32_t threshold() const noexcept { return threshold_; }

  /// Canonical (ascending) snapshot of the repetitive k-mer set. The
  /// backing set is unordered; every consumer that *iterates* the
  /// spectrum (the preprocess fingerprint, reports, serialization) must
  /// go through this view so its order never depends on the hash seed.
  std::vector<std::uint64_t> repetitive_kmers() const {
    return util::sorted_items(repetitive_);
  }

  /// Canonical (strand-independent) encoding of the k-mer at text[pos..).
  /// Returns false if the window contains a masked base.
  static bool canonical_kmer(std::span<const seq::Code> text,
                             std::uint32_t pos, std::uint32_t k,
                             std::uint64_t* out) noexcept;

 private:
  std::uint32_t k_;
  std::uint32_t threshold_ = 0;
  std::unordered_set<std::uint64_t> repetitive_;
};

}  // namespace pgasm::preprocess
