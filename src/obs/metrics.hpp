// Unified metrics registry for the parallel runtime (counters, gauges, and
// fixed-log2-bucket histograms, labeled by rank and phase).
//
// The paper's whole evaluation is an accounting exercise — per-phase wall
// times, pair counts, communication volume (Figs. 5/9, Tables 1-3) — and the
// repro previously scattered that across ad-hoc structs with no common
// export. The registry is the single sink: hot paths cache an instrument
// pointer once and then update it with a single atomic op; the existing
// stats structs (ClusterStats, GstBuildStats, RunCost, FaultStats,
// PreprocessStats) are published into the registry at phase boundaries so
// there is one queryable source of truth.
//
// Thread safety: instrument lookup takes the registry mutex; updates on an
// obtained instrument are lock-free atomics, safe from any thread.
// Instrument references stay valid until Registry::clear() — callers that
// cache pointers (the vmpi Comm does) must not outlive a clear().
//
// Export is dual-format: a human-readable phase/rank table (util::Table)
// and JSONL (one metric per line) for machine consumption; see export.hpp
// for the directory sink used by `--obs-out` / PipelineParams::obs_dir.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pgasm::obs {

/// Monotonically increasing event/sample count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or accumulated) floating-point value.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t next = to_bits(from_bits(cur) + delta);
      if (bits_.compare_exchange_weak(cur, next, std::memory_order_relaxed))
        return;
    }
  }
  double value() const noexcept {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t to_bits(double v) noexcept {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double from_bits(std::uint64_t b) noexcept {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Histogram over unsigned values with fixed log2 buckets: bucket 0 counts
/// value 0, bucket i >= 1 counts values with bit_width i, i.e. the range
/// [2^(i-1), 2^i). 65 buckets cover the full u64 domain; no configuration,
/// no allocation, updates are two relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bucket index for a value: 0 for 0, else bit_width(v).
  static int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : 64 - __builtin_clzll(v);
  }
  /// Inclusive upper bound of bucket i (2^i - 1; bucket 0 holds only 0).
  static std::uint64_t bucket_upper(int i) noexcept {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  std::uint64_t bucket_count(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Fold a bucket-count delta / sum delta from another histogram into this
  /// one (used to merge per-process registry snapshots after a proc-
  /// transport run; deltas, not absolutes, so inherited pre-fork state is
  /// not double counted).
  void merge_bucket(int i, std::uint64_t count) noexcept {
    buckets_[static_cast<std::size_t>(i)].fetch_add(count,
                                                    std::memory_order_relaxed);
  }
  void merge_sum(std::uint64_t delta) noexcept {
    sum_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Identity of one instrument: name + (rank, phase) labels.
/// rank kNoRank labels process-/driver-level metrics.
inline constexpr int kNoRank = -1;

struct MetricKey {
  std::string name;
  int rank = kNoRank;
  std::string phase;  ///< "" = unphased

  bool operator<(const MetricKey& o) const noexcept {
    return std::tie(name, phase, rank) < std::tie(o.name, o.phase, o.rank);
  }
};

/// One exported metric (value captured at snapshot time).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  MetricKey key;
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;
  double gauge_value = 0;
  // Histogram payload: (bucket index, count) for non-empty buckets.
  std::vector<std::pair<int, std::uint64_t>> buckets;
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum = 0;
};

class Registry {
 public:
  /// Find-or-create. References stay valid until clear().
  Counter& counter(std::string_view name, int rank = kNoRank,
                   std::string_view phase = {}) PGASM_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, int rank = kNoRank,
               std::string_view phase = {}) PGASM_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, int rank = kNoRank,
                       std::string_view phase = {}) PGASM_EXCLUDES(mu_);

  /// Ordered snapshot of every instrument (name, phase, rank).
  std::vector<MetricSample> snapshot() const PGASM_EXCLUDES(mu_);

  /// Human-readable phase/rank summary (util::Table render).
  std::string summary_table() const PGASM_EXCLUDES(mu_);

  /// One JSON object per line, e.g.
  ///   {"type":"counter","name":"cluster.merges","rank":0,
  ///    "phase":"cluster","value":1234}
  std::string to_jsonl() const PGASM_EXCLUDES(mu_);

  /// Drop every instrument. Invalidates all outstanding references.
  void clear() PGASM_EXCLUDES(mu_);

  std::size_t size() const PGASM_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  // Deques give stable addresses across growth. The lookup maps and the
  // instrument stores mutate only under mu_; the instruments themselves are
  // lock-free atomics, so updates through a handed-out reference need no
  // capability (that is the registry's whole hot-path contract).
  std::deque<Counter> counters_ PGASM_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ PGASM_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ PGASM_GUARDED_BY(mu_);
  std::map<MetricKey, Counter*> counter_index_ PGASM_GUARDED_BY(mu_);
  std::map<MetricKey, Gauge*> gauge_index_ PGASM_GUARDED_BY(mu_);
  std::map<MetricKey, Histogram*> histogram_index_ PGASM_GUARDED_BY(mu_);
};

/// Process-global registry used by the instrumented runtime layers. Unit
/// tests that need isolation construct their own Registry instead.
Registry& registry();

/// Current pipeline phase label, used by layers (e.g. the vmpi ledger fold)
/// that do not know which driver phase they run under. Must point to
/// storage with static lifetime; defaults to "".
void set_phase(const char* phase) noexcept;
const char* current_phase() noexcept;

}  // namespace pgasm::obs
