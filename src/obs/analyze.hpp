// Post-run causal trace analysis: turns a drained Tracer event stream into
// an explanation of where distributed wall-clock went.
//
// Three products, all computed from the same event stream:
//
//  1. Stitched message edges. Every vmpi user-channel send/ssend instant
//     carries an "mseq" arg (the sender's 1-based user send index) and the
//     matching recv wait span records the same (peer, mseq) pair; the
//     analyzer joins them into cross-rank causal edges and reports the
//     unmatched remainder (injected drops, sends to dead ranks, or events
//     lost to ring overflow). Stitch coverage = matched sends / all sends;
//     when the tracer dropped events the coverage is only a lower bound and
//     the analysis says so loudly.
//
//  2. Blocked-time ledgers. Per (rank, phase): wall time is last event end
//     minus first event start; wait is the sum of recv/probe/barrier wait
//     spans; comm is the ssend rendezvous wait; compute is the remainder.
//     vmpi wait spans never nest in each other (each rank is one thread and
//     collective-internal traffic is uninstrumented), so the split sums to
//     wall time by construction.
//
//  3. The critical path: the backward chain of compute intervals, wait
//     tails, and message edges that bounds end-to-end wall-clock. From the
//     globally last event, walk backward; a recv wait whose matching send
//     happened mid-wait jumps to the sender (the sender was the bottleneck),
//     a barrier jumps to the last rank to arrive, an ssend rendezvous jumps
//     to the receiver, and anything else continues locally. Compute gaps are
//     named by the innermost enclosing non-wait span ("align_batch",
//     "redistribute", ...), which is what makes the report actionable.
//
// The analyzer is a pure function of the drained events — it never touches
// the live tracer except through analyze_current(), so tests can feed it
// hand-built traces with known answers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace pgasm::obs {

/// One stitched cross-rank message edge: send instant -> recv wait span.
struct MessageEdge {
  int src_rank = 0;
  int dst_rank = 0;
  std::uint64_t mseq = 0;     ///< sender's user-channel send index
  std::uint64_t send_ts_us = 0;
  std::uint64_t recv_start_us = 0;
  std::uint64_t recv_end_us = 0;  ///< delivery: when the receiver consumed it
  std::uint64_t bytes = 0;
  bool sync = false;  ///< sender used ssend
};

/// A send that no recv consumed (dropped message, dead destination, or the
/// receiver's event was lost to ring overflow).
struct UnmatchedSend {
  int src_rank = 0;
  int dst_rank = 0;
  std::uint64_t mseq = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t bytes = 0;
  bool sync = false;
};

/// A recv whose matching send event is missing (sender's ring overflowed,
/// or a hand-built trace without the send side).
struct UnmatchedRecv {
  int dst_rank = 0;
  int src_rank = 0;
  std::uint64_t mseq = 0;
  std::uint64_t end_us = 0;
  std::uint64_t bytes = 0;
};

/// Blocked-time split for one (rank, phase). All in microseconds;
/// compute_us + wait_us() + comm_us == wall_us by construction (compute is
/// the remainder, clamped at zero).
struct PhaseLedger {
  int rank = 0;
  std::string phase;
  std::uint64_t wall_us = 0;
  std::uint64_t recv_wait_us = 0;
  std::uint64_t probe_wait_us = 0;
  std::uint64_t barrier_wait_us = 0;
  std::uint64_t join_wait_us = 0;  ///< driver waiting for rank threads
  std::uint64_t comm_us = 0;       ///< ssend rendezvous wait
  std::uint64_t compute_us = 0;

  std::uint64_t wait_us() const {
    return recv_wait_us + probe_wait_us + barrier_wait_us + join_wait_us;
  }
};

/// One link of the critical path, in forward time order.
struct CriticalStep {
  enum class Kind : std::uint8_t {
    kCompute,      ///< rank was (presumed) computing; name = enclosing span
    kRecvWait,     ///< tail of a recv wait (message in flight / matching)
    kProbeWait,
    kBarrierWait,  ///< waiting for the latecomer
    kSsendWait,    ///< rendezvous: waiting for the receiver to arrive
    kJoinWait,     ///< driver waiting for the slowest rank thread
  };
  Kind kind = Kind::kCompute;
  int rank = 0;
  std::string name;   ///< span name ("align_batch", "recv", "barrier", ...)
  std::string phase;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;

  std::uint64_t dur_us() const {
    return end_us > start_us ? end_us - start_us : 0;
  }
};

/// Aggregated critical-path composition entry (steps summed by
/// rank/kind/name, sorted by share of the path).
struct CriticalContribution {
  std::string label;  ///< e.g. "rank 3 compute align_batch"
  std::uint64_t us = 0;
  double frac = 0;    ///< of the whole path
};

struct CriticalPath {
  std::vector<CriticalStep> steps;  ///< forward time order, contiguous
  std::uint64_t total_us = 0;
  std::vector<CriticalContribution> top;  ///< largest contributors first
};

/// Full analysis result. to_text() renders the summary.txt "attribution"
/// section; to_json() renders attribution.json.
struct Analysis {
  // Edge stitching.
  std::vector<MessageEdge> edges;
  std::vector<UnmatchedSend> unmatched_sends;
  std::vector<UnmatchedRecv> unmatched_recvs;
  std::uint64_t sends_total = 0;
  std::uint64_t sends_matched = 0;
  double stitch_coverage = 1.0;  ///< matched / total (1.0 when no sends)
  /// True when the tracer dropped events: coverage is then only a lower
  /// bound and every count may under-report.
  bool coverage_lower_bound = false;
  std::uint64_t dropped_events = 0;
  std::map<int, std::uint64_t> dropped_by_rank;

  std::vector<PhaseLedger> ledgers;  ///< ordered by (phase, rank)
  CriticalPath critical_path;
  std::vector<std::string> warnings;

  std::string to_text() const;
  std::string to_json() const;
};

/// Analyze a drained trace (rank -> events oldest-first, as produced by
/// Tracer::drain_all). dropped_by_rank marks ring overflow (from
/// Tracer::dropped_by_rank); pass empty when the trace is known complete.
Analysis analyze(const std::map<int, std::vector<TraceEvent>>& by_rank,
                 const std::map<int, std::uint64_t>& dropped_by_rank = {});

/// Analyze the process-global tracer's current contents.
Analysis analyze_current();

}  // namespace pgasm::obs
