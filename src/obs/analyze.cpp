#include "obs/analyze.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <tuple>
#include <utility>

#include "util/stats.hpp"

namespace pgasm::obs {

namespace {

// Walk bound: each iteration consumes one wait span, so this only triggers
// on a malformed (e.g. hand-built, overlapping-wait) trace.
constexpr std::size_t kMaxWalkSteps = 1u << 20;

// attribution.json stays bounded no matter how chatty the run was.
constexpr std::size_t kMaxJsonUnmatched = 50;
constexpr std::size_t kMaxJsonSteps = 500;

bool find_arg(const TraceEvent& ev, const char* name, std::uint64_t* out) {
  const std::pair<const char*, std::uint64_t> slots[3] = {
      {ev.arg0_name, ev.arg0},
      {ev.arg1_name, ev.arg1},
      {ev.arg2_name, ev.arg2}};
  for (const auto& [n, v] : slots) {
    if (n != nullptr && std::strcmp(n, name) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string event_phase(const TraceEvent& ev) {
  return ev.phase != nullptr ? std::string(ev.phase) : std::string();
}

bool is_vmpi(const TraceEvent& ev) {
  return ev.cat != nullptr && std::strcmp(ev.cat, "vmpi") == 0;
}

/// vmpi wait-span kinds, by event name (cat "vmpi" spans only).
std::optional<CriticalStep::Kind> wait_kind(const TraceEvent& ev) {
  if (ev.kind != TraceEvent::Kind::kSpan || !is_vmpi(ev)) return std::nullopt;
  if (std::strcmp(ev.name, "recv") == 0) return CriticalStep::Kind::kRecvWait;
  if (std::strcmp(ev.name, "probe") == 0) return CriticalStep::Kind::kProbeWait;
  if (std::strcmp(ev.name, "barrier") == 0)
    return CriticalStep::Kind::kBarrierWait;
  if (std::strcmp(ev.name, "ssend_wait") == 0)
    return CriticalStep::Kind::kSsendWait;
  if (std::strcmp(ev.name, "join") == 0) return CriticalStep::Kind::kJoinWait;
  return std::nullopt;
}

const char* kind_label(CriticalStep::Kind k) {
  switch (k) {
    case CriticalStep::Kind::kCompute:
      return "compute";
    case CriticalStep::Kind::kRecvWait:
      return "recv wait";
    case CriticalStep::Kind::kProbeWait:
      return "probe wait";
    case CriticalStep::Kind::kBarrierWait:
      return "barrier wait";
    case CriticalStep::Kind::kSsendWait:
      return "ssend wait";
    case CriticalStep::Kind::kJoinWait:
      return "join wait";
  }
  return "?";
}

const char* kind_json(CriticalStep::Kind k) {
  switch (k) {
    case CriticalStep::Kind::kCompute:
      return "compute";
    case CriticalStep::Kind::kRecvWait:
      return "recv_wait";
    case CriticalStep::Kind::kProbeWait:
      return "probe_wait";
    case CriticalStep::Kind::kBarrierWait:
      return "barrier_wait";
    case CriticalStep::Kind::kSsendWait:
      return "ssend_wait";
    case CriticalStep::Kind::kJoinWait:
      return "join_wait";
  }
  return "?";
}

std::string rank_label(int rank) {
  return rank == kDriverTid ? "driver" : "rank " + std::to_string(rank);
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
}

/// Messages are keyed (phase, sender, sender's user send index). The phase
/// matters: each vmpi run constructs fresh Comms, so mseq restarts from 1
/// in every pipeline phase.
using MsgKey = std::tuple<std::string, int, std::uint64_t>;

struct SendRec {
  int src = 0;
  int dst = 0;
  std::uint64_t mseq = 0;
  std::uint64_t ts = 0;
  std::uint64_t bytes = 0;
  bool sync = false;
  std::string phase;
  bool matched = false;
};

struct RecvRec {
  int dst = 0;
  int src = 0;
  std::uint64_t mseq = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t bytes = 0;
  std::string phase;
  bool matched = false;
};

/// One wait span, flattened for the backward walk.
struct WaitRec {
  CriticalStep::Kind kind = CriticalStep::Kind::kRecvWait;
  const char* name = "";
  std::string phase;
  std::uint64_t ts = 0;
  std::uint64_t end = 0;
  bool has_mseq = false;
  std::uint64_t mseq = 0;
  int peer = -1;
  int barrier_k = -1;  ///< occurrence index within (rank, phase)
};

struct NonWaitSpan {
  const char* name = "";
  std::string phase;
  std::uint64_t ts = 0;
  std::uint64_t end = 0;
};

struct BarrierMember {
  int rank = 0;
  std::uint64_t ts = 0;
  std::uint64_t end = 0;
};

}  // namespace

Analysis analyze(const std::map<int, std::vector<TraceEvent>>& by_rank,
                 const std::map<int, std::uint64_t>& dropped_by_rank) {
  Analysis a;

  for (const auto& [rank, n] : dropped_by_rank) {
    if (n == 0) continue;
    a.dropped_by_rank[rank] = n;
    a.dropped_events += n;
  }

  // --- flatten the event stream ------------------------------------------
  std::vector<SendRec> sends;
  std::vector<RecvRec> recvs;
  std::map<int, std::vector<WaitRec>> waits;          // per rank, ts order
  std::map<int, std::vector<NonWaitSpan>> nonwaits;   // per rank, ts order
  std::map<int, std::vector<std::uint64_t>> end_times;  // per rank, sorted
  std::map<int, std::uint64_t> first_ts;
  std::map<std::pair<std::string, int>, int> barrier_counter;
  std::map<std::pair<std::string, int>, std::vector<BarrierMember>> barriers;

  for (const auto& [rank, events] : by_rank) {
    if (events.empty()) continue;
    auto& rank_waits = waits[rank];
    auto& rank_nonwaits = nonwaits[rank];
    auto& rank_ends = end_times[rank];
    std::uint64_t lo = events.front().ts_us;
    for (const TraceEvent& ev : events) {
      lo = std::min(lo, ev.ts_us);
      rank_ends.push_back(ev.end_us());
      const std::string phase = event_phase(ev);

      if (ev.kind == TraceEvent::Kind::kInstant && is_vmpi(ev) &&
          (std::strcmp(ev.name, "send") == 0 ||
           std::strcmp(ev.name, "ssend") == 0)) {
        std::uint64_t mseq = 0;
        std::uint64_t peer = 0;
        if (find_arg(ev, "mseq", &mseq) && find_arg(ev, "peer", &peer)) {
          SendRec s;
          s.src = rank;
          s.dst = static_cast<int>(peer);
          s.mseq = mseq;
          s.ts = ev.ts_us;
          find_arg(ev, "bytes", &s.bytes);
          s.sync = std::strcmp(ev.name, "ssend") == 0;
          s.phase = phase;
          sends.push_back(std::move(s));
        }
        continue;
      }

      const auto wk = wait_kind(ev);
      if (!wk.has_value()) {
        if (ev.kind == TraceEvent::Kind::kSpan) {
          rank_nonwaits.push_back(
              NonWaitSpan{ev.name, phase, ev.ts_us, ev.end_us()});
        }
        continue;
      }

      WaitRec w;
      w.kind = *wk;
      w.name = ev.name;
      w.phase = phase;
      w.ts = ev.ts_us;
      w.end = ev.end_us();
      std::uint64_t mseq = 0;
      std::uint64_t peer = 0;
      if (find_arg(ev, "mseq", &mseq) && find_arg(ev, "peer", &peer)) {
        w.has_mseq = true;
        w.mseq = mseq;
        w.peer = static_cast<int>(peer);
      }
      if (w.kind == CriticalStep::Kind::kBarrierWait) {
        w.barrier_k = barrier_counter[{phase, rank}]++;
        barriers[{phase, w.barrier_k}].push_back(
            BarrierMember{rank, w.ts, w.end});
      }
      if (w.kind == CriticalStep::Kind::kRecvWait && w.has_mseq) {
        RecvRec r;
        r.dst = rank;
        r.src = w.peer;
        r.mseq = w.mseq;
        r.start = w.ts;
        r.end = w.end;
        find_arg(ev, "bytes", &r.bytes);
        r.phase = phase;
        recvs.push_back(std::move(r));
      }
      rank_waits.push_back(std::move(w));
    }
    first_ts[rank] = lo;
    std::sort(rank_ends.begin(), rank_ends.end());
    std::sort(rank_waits.begin(), rank_waits.end(),
              [](const WaitRec& x, const WaitRec& y) { return x.ts < y.ts; });
    std::sort(rank_nonwaits.begin(), rank_nonwaits.end(),
              [](const NonWaitSpan& x, const NonWaitSpan& y) {
                return x.ts < y.ts;
              });
  }

  // --- stitch edges -------------------------------------------------------
  // Within one (phase, sender, mseq) key, pair sends and recvs greedily in
  // time order; duplicate keys only appear when a phase retried its vmpi
  // run, and time order is the right tiebreak there too.
  std::map<MsgKey, std::vector<std::size_t>> sends_by_key;
  {
    std::vector<std::size_t> order(sends.size());
    for (std::size_t i = 0; i < sends.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return sends[x].ts < sends[y].ts;
    });
    for (std::size_t i : order) {
      sends_by_key[{sends[i].phase, sends[i].src, sends[i].mseq}].push_back(i);
    }
  }
  std::sort(recvs.begin(), recvs.end(),
            [](const RecvRec& x, const RecvRec& y) { return x.end < y.end; });
  // (phase, src, mseq) -> matched edge, for the walk's ssend/probe jumps.
  std::map<MsgKey, std::size_t> edge_by_key;
  for (RecvRec& r : recvs) {
    auto it = sends_by_key.find({r.phase, r.src, r.mseq});
    if (it != sends_by_key.end()) {
      for (std::size_t si : it->second) {
        SendRec& s = sends[si];
        if (s.matched || s.ts > r.end) continue;
        s.matched = true;
        r.matched = true;
        MessageEdge e;
        e.src_rank = s.src;
        e.dst_rank = r.dst;
        e.mseq = s.mseq;
        e.send_ts_us = s.ts;
        e.recv_start_us = r.start;
        e.recv_end_us = r.end;
        e.bytes = r.bytes != 0 ? r.bytes : s.bytes;
        e.sync = s.sync;
        edge_by_key.emplace(MsgKey{r.phase, s.src, s.mseq}, a.edges.size());
        a.edges.push_back(e);
        break;
      }
    }
    if (!r.matched) {
      a.unmatched_recvs.push_back(
          UnmatchedRecv{r.dst, r.src, r.mseq, r.end, r.bytes});
    }
  }
  a.sends_total = sends.size();
  for (const SendRec& s : sends) {
    if (s.matched) {
      ++a.sends_matched;
    } else {
      a.unmatched_sends.push_back(
          UnmatchedSend{s.src, s.dst, s.mseq, s.ts, s.bytes, s.sync});
    }
  }
  std::sort(a.unmatched_sends.begin(), a.unmatched_sends.end(),
            [](const UnmatchedSend& x, const UnmatchedSend& y) {
              return x.ts_us < y.ts_us;
            });
  a.stitch_coverage =
      a.sends_total == 0
          ? 1.0
          : static_cast<double>(a.sends_matched) /
                static_cast<double>(a.sends_total);
  a.coverage_lower_bound = a.dropped_events > 0;

  if (a.dropped_events > 0) {
    std::string w = "trace incomplete: " + std::to_string(a.dropped_events) +
                    " event(s) dropped by ring overflow (";
    bool first = true;
    for (const auto& [rank, n] : a.dropped_by_rank) {
      if (!first) w += ", ";
      first = false;
      w += rank_label(rank) + ": " + std::to_string(n);
    }
    w += ") — stitch coverage and all counts are LOWER BOUNDS; raise the "
         "tracer capacity to recover a complete trace";
    a.warnings.push_back(std::move(w));
  }
  if (!a.unmatched_sends.empty()) {
    a.warnings.push_back(
        std::to_string(a.unmatched_sends.size()) +
        " send(s) were never received (dropped messages, sends to "
        "dead/finished ranks, or receiver events lost to ring overflow)");
  }
  if (!a.unmatched_recvs.empty()) {
    a.warnings.push_back(std::to_string(a.unmatched_recvs.size()) +
                         " recv(s) have no matching send event (sender ring "
                         "overflow?)");
  }

  // --- blocked-time ledgers ----------------------------------------------
  {
    struct Acc {
      std::uint64_t lo = ~std::uint64_t{0};
      std::uint64_t hi = 0;
      std::uint64_t recv = 0, probe = 0, barrier = 0, join = 0, comm = 0;
    };
    std::map<std::pair<std::string, int>, Acc> acc;
    for (const auto& [rank, events] : by_rank) {
      for (const TraceEvent& ev : events) {
        Acc& g = acc[{event_phase(ev), rank}];
        g.lo = std::min(g.lo, ev.ts_us);
        g.hi = std::max(g.hi, ev.end_us());
        const auto wk = wait_kind(ev);
        if (!wk.has_value()) continue;
        switch (*wk) {
          case CriticalStep::Kind::kRecvWait:
            g.recv += ev.dur_us;
            break;
          case CriticalStep::Kind::kProbeWait:
            g.probe += ev.dur_us;
            break;
          case CriticalStep::Kind::kBarrierWait:
            g.barrier += ev.dur_us;
            break;
          case CriticalStep::Kind::kJoinWait:
            g.join += ev.dur_us;
            break;
          case CriticalStep::Kind::kSsendWait:
            g.comm += ev.dur_us;
            break;
          case CriticalStep::Kind::kCompute:
            break;
        }
      }
    }
    for (const auto& [key, g] : acc) {
      PhaseLedger l;
      l.phase = key.first;
      l.rank = key.second;
      l.wall_us = g.hi > g.lo ? g.hi - g.lo : 0;
      l.recv_wait_us = g.recv;
      l.probe_wait_us = g.probe;
      l.barrier_wait_us = g.barrier;
      l.join_wait_us = g.join;
      l.comm_us = g.comm;
      const std::uint64_t waits_total = l.wait_us() + l.comm_us;
      l.compute_us = l.wall_us > waits_total ? l.wall_us - waits_total : 0;
      a.ledgers.push_back(std::move(l));
    }
  }

  // --- critical path ------------------------------------------------------
  // Backward walk from the globally last event. Wait spans on one rank are
  // non-overlapping (each rank is a single thread), so "the wait span
  // ending last at-or-before the cursor" is well defined; everything
  // between that wait and the cursor is compute. cap[] makes every
  // iteration consume a distinct wait span, which bounds the walk.
  int cur = 0;
  std::uint64_t t = 0;
  bool have_cursor = false;
  for (const auto& [rank, ends] : end_times) {
    if (ends.empty()) continue;
    if (!have_cursor || ends.back() > t) {
      have_cursor = true;
      cur = rank;
      t = ends.back();
    }
  }

  std::vector<CriticalStep> rsteps;  // backward order
  const auto enclosing = [&](int rank, std::uint64_t lo, std::uint64_t hi,
                             const std::string& fallback_phase)
      -> std::pair<std::string, std::string> {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const NonWaitSpan* best = nullptr;
    auto it = nonwaits.find(rank);
    if (it != nonwaits.end()) {
      for (const NonWaitSpan& s : it->second) {
        if (s.ts > mid) break;
        if (s.end >= mid && (best == nullptr || s.ts >= best->ts)) best = &s;
      }
    }
    if (best != nullptr) return {best->name, best->phase};
    return {"(untracked)", fallback_phase};
  };
  const auto push_compute = [&](int rank, std::uint64_t lo, std::uint64_t hi,
                                const std::string& fallback_phase) {
    if (hi <= lo) return;
    auto [name, phase] = enclosing(rank, lo, hi, fallback_phase);
    CriticalStep st;
    st.kind = CriticalStep::Kind::kCompute;
    st.rank = rank;
    st.name = std::move(name);
    st.phase = std::move(phase);
    st.start_us = lo;
    st.end_us = hi;
    rsteps.push_back(std::move(st));
  };

  if (have_cursor) {
    std::map<int, std::size_t> cap;  // exclusive bound into waits[rank]
    for (const auto& [rank, ws] : waits) cap[rank] = ws.size();

    for (std::size_t iter = 0; iter < kMaxWalkSteps; ++iter) {
      const auto& ws = waits[cur];
      // Latest wait (below the per-rank cap) ending at or before t.
      std::size_t i = std::min(cap[cur], ws.size());
      bool found = false;
      while (i > 0) {
        --i;
        if (ws[i].end <= t) {
          found = true;
          break;
        }
      }
      if (!found) {
        const std::uint64_t lo =
            first_ts.count(cur) != 0 ? std::min(first_ts[cur], t) : t;
        push_compute(cur, lo, t, std::string());
        break;
      }
      const WaitRec W = ws[i];
      cap[cur] = i;
      if (W.end < t) push_compute(cur, W.end, t, W.phase);

      // Where did the thing this wait blocked on come from?
      std::optional<std::pair<int, std::uint64_t>> jump;
      switch (W.kind) {
        case CriticalStep::Kind::kRecvWait:
        case CriticalStep::Kind::kProbeWait: {
          if (!W.has_mseq) break;
          auto it = edge_by_key.find({W.phase, W.peer, W.mseq});
          if (it != edge_by_key.end()) {
            const MessageEdge& e = a.edges[it->second];
            jump = {e.src_rank, e.send_ts_us};
          }
          break;
        }
        case CriticalStep::Kind::kBarrierWait: {
          auto it = barriers.find({W.phase, W.barrier_k});
          if (it == barriers.end()) break;
          const BarrierMember* late = nullptr;
          for (const BarrierMember& m : it->second) {
            if (late == nullptr || m.ts > late->ts) late = &m;
          }
          if (late != nullptr && late->rank != cur) jump = {late->rank, late->ts};
          break;
        }
        case CriticalStep::Kind::kSsendWait: {
          if (!W.has_mseq) break;
          auto it = edge_by_key.find({W.phase, cur, W.mseq});
          if (it != edge_by_key.end()) {
            const MessageEdge& e = a.edges[it->second];
            // The rendezvous completed when the receiver reached its recv;
            // what the receiver did before that is the path's predecessor.
            jump = {e.dst_rank, e.recv_start_us};
          }
          break;
        }
        case CriticalStep::Kind::kJoinWait: {
          // The join released when the slowest rank thread finished: jump
          // to the rank whose last event inside the join window is latest.
          int best_rank = cur;
          std::uint64_t best_end = 0;
          for (const auto& [rank, ends] : end_times) {
            if (rank == cur || ends.empty()) continue;
            auto ub = std::upper_bound(ends.begin(), ends.end(), W.end);
            if (ub == ends.begin()) continue;
            const std::uint64_t e = *(ub - 1);
            if (e > best_end) {
              best_end = e;
              best_rank = rank;
            }
          }
          if (best_rank != cur && best_end > W.ts) jump = {best_rank, best_end};
          break;
        }
        case CriticalStep::Kind::kCompute:
          break;
      }

      CriticalStep st;
      st.kind = W.kind;
      st.rank = cur;
      st.name = W.name;
      st.phase = W.phase;
      st.end_us = W.end;
      if (jump.has_value() && jump->second > W.ts && jump->second <= W.end) {
        // Only the tail of the wait (after the unblocking event happened on
        // the peer) is on the critical path; before that, the peer was the
        // bottleneck. Hand the walk over.
        st.start_us = jump->second;
        if (st.end_us > st.start_us) rsteps.push_back(std::move(st));
        cur = jump->first;
        t = jump->second;
      } else {
        st.start_us = W.ts;
        if (st.end_us > st.start_us) rsteps.push_back(std::move(st));
        t = W.ts;
      }
    }
  }

  std::reverse(rsteps.begin(), rsteps.end());
  a.critical_path.steps = std::move(rsteps);
  for (const CriticalStep& st : a.critical_path.steps) {
    a.critical_path.total_us += st.dur_us();
  }

  // Composition: aggregate by (rank, kind, name), largest first.
  {
    std::map<std::string, std::uint64_t> by_label;
    for (const CriticalStep& st : a.critical_path.steps) {
      std::string label = rank_label(st.rank);
      label += ' ';
      label += kind_label(st.kind);
      if (st.kind == CriticalStep::Kind::kCompute) {
        label += ' ';
        label += st.name;
      }
      if (!st.phase.empty()) {
        label += " [";
        label += st.phase;
        label += ']';
      }
      by_label[label] += st.dur_us();
    }
    for (auto& [label, us] : by_label) {
      CriticalContribution c;
      c.label = label;
      c.us = us;
      c.frac = a.critical_path.total_us == 0
                   ? 0
                   : static_cast<double>(us) /
                         static_cast<double>(a.critical_path.total_us);
      a.critical_path.top.push_back(std::move(c));
    }
    std::sort(a.critical_path.top.begin(), a.critical_path.top.end(),
              [](const CriticalContribution& x, const CriticalContribution& y) {
                return x.us > y.us;
              });
  }

  return a;
}

Analysis analyze_current() {
  return analyze(tracer().drain_all(), tracer().dropped_by_rank());
}

std::string Analysis::to_text() const {
  std::string out;
  for (const std::string& w : warnings) {
    out += "!! ";
    out += w;
    out += '\n';
  }
  out += "stitch coverage: ";
  out += util::fmt_percent(stitch_coverage);
  if (coverage_lower_bound) out += " (lower bound: trace dropped events)";
  out += " (" + std::to_string(sends_matched) + "/" +
         std::to_string(sends_total) + " sends matched, " +
         std::to_string(unmatched_recvs.size()) + " orphan recvs)\n";

  out += "\nblocked-time ledgers (per rank+phase, ms):\n";
  util::Table table({"phase", "rank", "wall", "compute", "recv", "probe",
                     "barrier", "join", "comm"});
  const auto ms = [](std::uint64_t us) {
    return util::fmt_double(static_cast<double>(us) / 1000.0);
  };
  for (const PhaseLedger& l : ledgers) {
    table.add_row({l.phase.empty() ? "(unphased)" : l.phase,
                   l.rank == kDriverTid ? "drv" : std::to_string(l.rank),
                   ms(l.wall_us), ms(l.compute_us), ms(l.recv_wait_us),
                   ms(l.probe_wait_us), ms(l.barrier_wait_us),
                   ms(l.join_wait_us), ms(l.comm_us)});
  }
  out += table.render();

  out += "\ncritical path: ";
  out += ms(critical_path.total_us);
  out += " ms across " + std::to_string(critical_path.steps.size()) +
         " steps; top contributors:\n";
  std::size_t shown = 0;
  for (const CriticalContribution& c : critical_path.top) {
    if (shown++ == 10) break;
    out += "  ";
    out += util::fmt_percent(c.frac);
    out += "  ";
    out += ms(c.us);
    out += " ms  ";
    out += c.label;
    out += '\n';
  }
  return out;
}

std::string Analysis::to_json() const {
  std::string out = "{\n \"stitch\":{";
  out += "\"sends_total\":" + std::to_string(sends_total);
  out += ",\"sends_matched\":" + std::to_string(sends_matched);
  out += ",\"coverage\":" + util::fmt_double(stitch_coverage, 6);
  out += ",\"coverage_is_lower_bound\":";
  out += coverage_lower_bound ? "true" : "false";
  out += ",\"dropped_events\":" + std::to_string(dropped_events);
  out += ",\"dropped_by_rank\":{";
  {
    bool first = true;
    for (const auto& [rank, n] : dropped_by_rank) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(rank) + "\":" + std::to_string(n);
    }
  }
  out += "},\"edges\":" + std::to_string(edges.size());
  out += ",\"unmatched_sends\":[";
  for (std::size_t i = 0;
       i < unmatched_sends.size() && i < kMaxJsonUnmatched; ++i) {
    const UnmatchedSend& s = unmatched_sends[i];
    if (i != 0) out += ',';
    out += "{\"src\":" + std::to_string(s.src_rank) +
           ",\"dst\":" + std::to_string(s.dst_rank) +
           ",\"mseq\":" + std::to_string(s.mseq) +
           ",\"ts_us\":" + std::to_string(s.ts_us) +
           ",\"bytes\":" + std::to_string(s.bytes) + ",\"sync\":" +
           (s.sync ? "true" : "false") + "}";
  }
  out += "],\"unmatched_sends_total\":" +
         std::to_string(unmatched_sends.size());
  out += ",\"unmatched_recvs\":[";
  for (std::size_t i = 0;
       i < unmatched_recvs.size() && i < kMaxJsonUnmatched; ++i) {
    const UnmatchedRecv& r = unmatched_recvs[i];
    if (i != 0) out += ',';
    out += "{\"dst\":" + std::to_string(r.dst_rank) +
           ",\"src\":" + std::to_string(r.src_rank) +
           ",\"mseq\":" + std::to_string(r.mseq) +
           ",\"end_us\":" + std::to_string(r.end_us) +
           ",\"bytes\":" + std::to_string(r.bytes) + "}";
  }
  out += "],\"unmatched_recvs_total\":" +
         std::to_string(unmatched_recvs.size());
  out += "},\n \"ledgers\":[";
  for (std::size_t i = 0; i < ledgers.size(); ++i) {
    const PhaseLedger& l = ledgers[i];
    if (i != 0) out += ',';
    out += "\n  {\"phase\":";
    append_json_string(out, l.phase);
    out += ",\"rank\":" + std::to_string(l.rank);
    out += ",\"wall_us\":" + std::to_string(l.wall_us);
    out += ",\"compute_us\":" + std::to_string(l.compute_us);
    out += ",\"recv_wait_us\":" + std::to_string(l.recv_wait_us);
    out += ",\"probe_wait_us\":" + std::to_string(l.probe_wait_us);
    out += ",\"barrier_wait_us\":" + std::to_string(l.barrier_wait_us);
    out += ",\"join_wait_us\":" + std::to_string(l.join_wait_us);
    out += ",\"comm_us\":" + std::to_string(l.comm_us);
    out += ",\"wait_us\":" + std::to_string(l.wait_us());
    out += '}';
  }
  out += "],\n \"critical_path\":{\"total_us\":" +
         std::to_string(critical_path.total_us);
  out += ",\"steps_total\":" + std::to_string(critical_path.steps.size());
  out += ",\"steps\":[";
  for (std::size_t i = 0;
       i < critical_path.steps.size() && i < kMaxJsonSteps; ++i) {
    const CriticalStep& st = critical_path.steps[i];
    if (i != 0) out += ',';
    out += "\n  {\"kind\":\"";
    out += kind_json(st.kind);
    out += "\",\"rank\":" + std::to_string(st.rank);
    out += ",\"name\":";
    append_json_string(out, st.name);
    out += ",\"phase\":";
    append_json_string(out, st.phase);
    out += ",\"start_us\":" + std::to_string(st.start_us);
    out += ",\"end_us\":" + std::to_string(st.end_us);
    out += '}';
  }
  out += "],\"top\":[";
  for (std::size_t i = 0; i < critical_path.top.size() && i < 10; ++i) {
    const CriticalContribution& c = critical_path.top[i];
    if (i != 0) out += ',';
    out += "\n  {\"label\":";
    append_json_string(out, c.label);
    out += ",\"us\":" + std::to_string(c.us);
    out += ",\"frac\":" + util::fmt_double(c.frac, 4);
    out += '}';
  }
  out += "]},\n \"warnings\":[";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n  ";
    append_json_string(out, warnings[i]);
  }
  out += "]\n}\n";
  return out;
}

}  // namespace pgasm::obs
