// Directory sink for a run's observability outputs. Used by
// PipelineParams::obs_dir / the examples' --obs-out flag.
//
// write_run_outputs(dir) writes three files into dir (created if needed):
//   summary.txt   — per-phase/per-rank metric table (util::Table render)
//   metrics.jsonl — registry snapshot, one JSON object per line
//   trace.json    — Chrome trace_event JSON; open in chrome://tracing or
//                   ui.perfetto.dev ("Open trace file")
#pragma once

#include <string>

namespace pgasm::obs {

/// Enable metrics + tracing and reset any state left by a previous run.
void begin_run();

/// Write summary.txt, metrics.jsonl, and trace.json into `dir`.
/// Creates the directory if missing. Throws std::runtime_error on I/O error.
void write_run_outputs(const std::string& dir);

}  // namespace pgasm::obs
