#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <ctime>
#include <set>

#include "obs/metrics.hpp"

namespace pgasm::obs {

namespace {

std::uint64_t wall_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t thread_cpu_us() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

void append_args_json(std::string& out, const TraceEvent& ev) {
  out += "\"args\":{\"seq\":";
  out += std::to_string(ev.seq);
  if (ev.kind == TraceEvent::Kind::kSpan) {
    out += ",\"cpu_us\":";
    out += std::to_string(ev.cpu_us);
  }
  if (ev.arg0_name != nullptr) {
    out += ",\"";
    append_json_escaped(out, ev.arg0_name);
    out += "\":";
    out += std::to_string(ev.arg0);
  }
  if (ev.arg1_name != nullptr) {
    out += ",\"";
    append_json_escaped(out, ev.arg1_name);
    out += "\":";
    out += std::to_string(ev.arg1);
  }
  if (ev.arg2_name != nullptr) {
    out += ",\"";
    append_json_escaped(out, ev.arg2_name);
    out += "\":";
    out += std::to_string(ev.arg2);
  }
  if (ev.phase != nullptr && ev.phase[0] != '\0') {
    out += ",\"phase\":\"";
    append_json_escaped(out, ev.phase);
    out += '"';
  }
  out += '}';
}

/// Message-correlation arg ("mseq"): set by vmpi on send/ssend/recv events;
/// (rank-of-sender, mseq) identifies a message uniquely, which is what both
/// the analyzer's edge stitching and the Chrome flow arrows key on.
std::uint64_t mseq_arg(const TraceEvent& ev, bool* found) {
  *found = false;
  for (const auto& [name, value] :
       {std::pair{ev.arg0_name, ev.arg0}, std::pair{ev.arg1_name, ev.arg1},
        std::pair{ev.arg2_name, ev.arg2}}) {
    if (name != nullptr && std::strcmp(name, "mseq") == 0) {
      *found = true;
      return value;
    }
  }
  return 0;
}

std::uint64_t peer_arg(const TraceEvent& ev, bool* found) {
  *found = false;
  for (const auto& [name, value] :
       {std::pair{ev.arg0_name, ev.arg0}, std::pair{ev.arg1_name, ev.arg1},
        std::pair{ev.arg2_name, ev.arg2}}) {
    if (name != nullptr && std::strcmp(name, "peer") == 0) {
      *found = true;
      return value;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t RankRing::record(TraceEvent ev) {
  // Stamp the pipeline phase unless the caller already set one (hand-built
  // analyzer test traces set it explicitly).
  if (ev.phase == nullptr || ev.phase[0] == '\0') ev.phase = current_phase();
  util::MutexLock lock(mu_);
  ev.seq = next_seq_++;
  if (!wrapped_) {
    events_.push_back(ev);
    if (events_.size() == capacity_) wrapped_ = true;
  } else {
    ++dropped_;
    events_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
  }
  return ev.seq;
}

std::uint64_t RankRing::peek_seq() const {
  util::MutexLock lock(mu_);
  return next_seq_;
}

std::vector<TraceEvent> RankRing::drain() const {
  util::MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (!wrapped_) {
    out = events_;
  } else {
    out.insert(out.end(), events_.begin() + static_cast<long>(head_),
               events_.end());
    out.insert(out.end(), events_.begin(),
               events_.begin() + static_cast<long>(head_));
  }
  return out;
}

std::uint64_t RankRing::dropped() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

void RankRing::add_dropped(std::uint64_t n) {
  util::MutexLock lock(mu_);
  dropped_ += n;
}

std::size_t RankRing::size() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

void Tracer::set_capacity(std::size_t cap) {
  util::MutexLock lock(mu_);
  capacity_ = cap == 0 ? 1 : cap;
}

RankRing* Tracer::ring(int rank) {
  util::MutexLock lock(mu_);
  if (epoch_ns_.load(std::memory_order_relaxed) == 0) {
    epoch_ns_.store(wall_ns(), std::memory_order_relaxed);
  }
  auto it = rings_.find(rank);
  if (it != rings_.end()) return it->second.get();
  auto ring = std::make_unique<RankRing>(capacity_);
  RankRing* raw = ring.get();
  rings_.emplace(rank, std::move(ring));
  return raw;
}

void Tracer::instant(int rank, const char* name, const char* cat,
                     const char* arg0_name, std::uint64_t arg0,
                     const char* arg1_name, std::uint64_t arg1,
                     const char* arg2_name, std::uint64_t arg2) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.rank = rank;
  ev.ts_us = now_us();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.arg2_name = arg2_name;
  ev.arg2 = arg2;
  ring(rank)->record(ev);
}

std::uint64_t Tracer::now_us() const {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = wall_ns();
  return epoch == 0 || now < epoch ? 0 : (now - epoch) / 1000;
}

std::map<int, std::vector<TraceEvent>> Tracer::drain_all() const {
  std::vector<std::pair<int, RankRing*>> rings;
  {
    util::MutexLock lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& [rank, ring] : rings_) rings.emplace_back(rank, ring.get());
  }
  std::map<int, std::vector<TraceEvent>> out;
  for (const auto& [rank, ring] : rings) out.emplace(rank, ring->drain());
  return out;
}

std::uint64_t Tracer::total_dropped() const {
  std::vector<RankRing*> rings;
  {
    util::MutexLock lock(mu_);
    for (const auto& [rank, ring] : rings_) rings.push_back(ring.get());
  }
  std::uint64_t n = 0;
  for (const auto* ring : rings) n += ring->dropped();
  return n;
}

std::map<int, std::uint64_t> Tracer::dropped_by_rank() const {
  std::vector<std::pair<int, RankRing*>> rings;
  {
    util::MutexLock lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& [rank, ring] : rings_) rings.emplace_back(rank, ring.get());
  }
  std::map<int, std::uint64_t> out;
  for (const auto& [rank, ring] : rings) out.emplace(rank, ring->dropped());
  return out;
}

std::size_t Tracer::total_events() const {
  std::vector<RankRing*> rings;
  {
    util::MutexLock lock(mu_);
    for (const auto& [rank, ring] : rings_) rings.push_back(ring.get());
  }
  std::size_t n = 0;
  for (const auto* ring : rings) n += ring->size();
  return n;
}

std::string Tracer::to_chrome_json() const {
  const auto all = drain_all();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& record) {
    if (!first) out += ',';
    first = false;
    out += record;
  };
  // Thread-name metadata so Perfetto labels each track.
  for (const auto& [rank, events] : all) {
    (void)events;
    std::string rec = "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    rec += std::to_string(rank);
    rec += ",\"args\":{\"name\":\"";
    rec += rank == kDriverTid ? "driver" : "rank " + std::to_string(rank);
    rec += "\"}}";
    emit(rec);
  }
  for (const auto& [rank, events] : all) {
    for (const TraceEvent& ev : events) {
      std::string rec = "{\"ph\":\"";
      rec += ev.kind == TraceEvent::Kind::kSpan ? 'X' : 'i';
      rec += "\",\"name\":\"";
      append_json_escaped(rec, ev.name);
      rec += "\",\"cat\":\"";
      append_json_escaped(rec, ev.cat);
      rec += "\",\"pid\":1,\"tid\":";
      rec += std::to_string(rank);
      rec += ",\"ts\":";
      rec += std::to_string(ev.ts_us);
      if (ev.kind == TraceEvent::Kind::kSpan) {
        rec += ",\"dur\":";
        rec += std::to_string(ev.dur_us);
      } else {
        rec += ",\"s\":\"t\"";  // instant scope: thread
      }
      rec += ',';
      append_args_json(rec, ev);
      rec += '}';
      emit(rec);

      // Flow events: every vmpi message event carrying an "mseq" arg gets a
      // flow step so Perfetto draws the causal arrow. The flow id encodes
      // (sender rank, mseq) — unique per message, needs no matching pass;
      // an unmatched id simply draws no arrow.
      bool has_mseq = false;
      const std::uint64_t mseq = mseq_arg(ev, &has_mseq);
      if (!has_mseq) continue;
      const bool is_send =
          std::strcmp(ev.name, "send") == 0 || std::strcmp(ev.name, "ssend") == 0;
      const bool is_recv = std::strcmp(ev.name, "recv") == 0;
      if (!is_send && !is_recv) continue;
      std::uint64_t sender = 0;
      if (is_send) {
        sender = static_cast<std::uint64_t>(ev.rank + 2);
      } else {
        bool has_peer = false;
        const std::uint64_t peer = peer_arg(ev, &has_peer);
        if (!has_peer) continue;
        sender = peer + 2;  // peer of a recv = sender rank (>= kDriverTid)
      }
      std::string flow = "{\"ph\":\"";
      flow += is_send ? 's' : 'f';
      flow += "\",\"name\":\"msg\",\"cat\":\"vmpi\",\"pid\":1,\"tid\":";
      flow += std::to_string(rank);
      flow += ",\"ts\":";
      // Arrow leaves at the send instant and lands when the recv completes.
      flow += std::to_string(is_send ? ev.ts_us : ev.end_us());
      if (is_recv) flow += ",\"bp\":\"e\"";
      flow += ",\"id\":";
      flow += std::to_string((sender << 40) | (mseq & ((1ull << 40) - 1)));
      flow += '}';
      emit(flow);
    }
  }
  out += "]}\n";
  return out;
}

void Tracer::clear() {
  util::MutexLock lock(mu_);
  rings_.clear();
  epoch_ns_.store(0, std::memory_order_relaxed);
}

Span::Span(RankRing* ring, std::uint64_t epoch_start_us, const char* name,
           const char* cat, int rank) noexcept
    : ring_(ring) {
  if (ring_ == nullptr) return;
  ev_.name = name;
  ev_.cat = cat;
  ev_.kind = TraceEvent::Kind::kSpan;
  ev_.rank = rank;
  ev_.ts_us = epoch_start_us;
  cpu_start_us_ = thread_cpu_us();
}

Span& Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    finish();
    ring_ = o.ring_;
    ev_ = o.ev_;
    cpu_start_us_ = o.cpu_start_us_;
    o.ring_ = nullptr;
  }
  return *this;
}

void Span::arg(const char* name, std::uint64_t value) noexcept {
  if (ring_ == nullptr) return;
  if (ev_.arg0_name == nullptr) {
    ev_.arg0_name = name;
    ev_.arg0 = value;
  } else if (ev_.arg1_name == nullptr) {
    ev_.arg1_name = name;
    ev_.arg1 = value;
  } else {
    ev_.arg2_name = name;
    ev_.arg2 = value;
  }
}

void Span::finish() noexcept {
  if (ring_ == nullptr) return;
  const std::uint64_t end_us = tracer().now_us();
  ev_.dur_us = end_us > ev_.ts_us ? end_us - ev_.ts_us : 0;
  const std::uint64_t cpu_end = thread_cpu_us();
  ev_.cpu_us = cpu_end > cpu_start_us_ ? cpu_end - cpu_start_us_ : 0;
  ring_->record(ev_);
  ring_ = nullptr;
}

Tracer& tracer() {
  static Tracer* instance = new Tracer();  // leaked: outlives all threads
  return *instance;
}

const char* intern_string(std::string_view s) {
  if (s.empty()) return "";
  static util::Mutex* mu = new util::Mutex();  // leaked, like the tracer
  static std::set<std::string, std::less<>>* table =
      new std::set<std::string, std::less<>>();
  util::MutexLock lock(*mu);
  auto it = table->find(s);
  if (it == table->end()) it = table->emplace(s).first;
  return it->c_str();
}

Span span(int rank, const char* name, const char* cat) {
  Tracer& t = tracer();
  if (!t.enabled()) return Span();
  return Span(t.ring(rank), t.now_us(), name, cat, rank);
}

}  // namespace pgasm::obs
