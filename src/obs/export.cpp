#include "obs/export.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgasm::obs {

namespace {

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open " + path.string() +
                             " for writing");
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    throw std::runtime_error("obs: short write to " + path.string());
  }
}

// Compare the cost model's verdict with the clock's. The vmpi ledger
// charges every transfer α + βn (modeled comm seconds, published as the
// vmpi.comm_seconds gauges); the wait-scope histograms (comm.wait_us)
// record the wall time ranks actually spent blocked in recv/probe/ssend/
// barrier. Their ratio is the model skew: ~1 means the calibrated α/β
// describe this machine and transport; >> 1 means real waits dwarf the
// model (contention, scheduling, an uncalibrated transport) and modeled
// speedup curves should not be trusted. Driver-level rows (rank -1) are
// excluded — the parent's join wait is not rank communication.
std::string comm_model_section(const std::vector<MetricSample>& samples) {
  double modeled_s = 0, measured_s = 0;
  bool any = false;
  for (const auto& s : samples) {
    if (s.key.rank < 0) continue;
    if (s.kind == MetricSample::Kind::kGauge &&
        s.key.name == "vmpi.comm_seconds") {
      modeled_s += s.gauge_value;
      any = true;
    } else if (s.kind == MetricSample::Kind::kHistogram &&
               s.key.name == "comm.wait_us") {
      measured_s += static_cast<double>(s.hist_sum) * 1e-6;
      any = true;
    }
  }
  if (!any) return {};
  char buf[256];
  if (modeled_s > 0) {
    std::snprintf(buf, sizeof(buf),
                  "modeled comm %.6f s, measured wait %.6f s, skew %.2fx\n",
                  modeled_s, measured_s, measured_s / modeled_s);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "modeled comm 0 s, measured wait %.6f s (no ledger "
                  "charges; skew undefined)\n",
                  measured_s);
  }
  return std::string("\n== comm model (measured vs modeled) ==\n") + buf;
}

}  // namespace

void begin_run() {
  registry().clear();
  tracer().clear();
  tracer().set_enabled(true);
  set_phase("");
}

void write_run_outputs(const std::string& dir) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    throw std::runtime_error("obs: cannot create directory " + dir + ": " +
                             ec.message());
  }
  // Surface ring overflow as a first-class metric before snapshotting: a
  // truncated trace must be visible in metrics.jsonl, not just in the
  // analyzer's warnings.
  for (const auto& [rank, n] : tracer().dropped_by_rank()) {
    if (n != 0) registry().counter("trace.dropped_events", rank).inc(n);
  }

  const Analysis analysis = analyze_current();
  write_file(base / "summary.txt", registry().summary_table() +
                                       comm_model_section(
                                           registry().snapshot()) +
                                       "\n== attribution ==\n" +
                                       analysis.to_text());
  write_file(base / "metrics.jsonl", registry().to_jsonl());
  write_file(base / "trace.json", tracer().to_chrome_json());
  write_file(base / "attribution.json", analysis.to_json());
}

}  // namespace pgasm::obs
