#include "obs/export.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgasm::obs {

namespace {

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open " + path.string() +
                             " for writing");
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    throw std::runtime_error("obs: short write to " + path.string());
  }
}

}  // namespace

void begin_run() {
  registry().clear();
  tracer().clear();
  tracer().set_enabled(true);
  set_phase("");
}

void write_run_outputs(const std::string& dir) {
  const std::filesystem::path base(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    throw std::runtime_error("obs: cannot create directory " + dir + ": " +
                             ec.message());
  }
  // Surface ring overflow as a first-class metric before snapshotting: a
  // truncated trace must be visible in metrics.jsonl, not just in the
  // analyzer's warnings.
  for (const auto& [rank, n] : tracer().dropped_by_rank()) {
    if (n != 0) registry().counter("trace.dropped_events", rank).inc(n);
  }

  const Analysis analysis = analyze_current();
  write_file(base / "summary.txt", registry().summary_table() +
                                       "\n== attribution ==\n" +
                                       analysis.to_text());
  write_file(base / "metrics.jsonl", registry().to_jsonl());
  write_file(base / "trace.json", tracer().to_chrome_json());
  write_file(base / "attribution.json", analysis.to_json());
}

}  // namespace pgasm::obs
