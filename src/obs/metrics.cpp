#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "util/stats.hpp"

namespace pgasm::obs {

namespace {

// pgasm-lint: allow(raw-atomic): process-wide phase label, only ever
// pointing at string literals, relaxed by design
std::atomic<const char*> g_phase{""};

MetricKey make_key(std::string_view name, int rank, std::string_view phase) {
  return MetricKey{std::string(name), rank, std::string(phase)};
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_key_json(std::string& out, const MetricKey& key) {
  out += "\"name\":\"";
  append_json_escaped(out, key.name);
  out += "\",\"rank\":";
  out += std::to_string(key.rank);
  out += ",\"phase\":\"";
  append_json_escaped(out, key.phase);
  out += '"';
}

/// %g-style shortest representation that still round-trips doubles.
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no inf/nan; clamp to null-ish zero (should not occur).
  std::string s = buf;
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

}  // namespace

Counter& Registry::counter(std::string_view name, int rank,
                           std::string_view phase) {
  util::MutexLock lock(mu_);
  auto key = make_key(name, rank, phase);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back();
  counter_index_.emplace(std::move(key), &counters_.back());
  return counters_.back();
}

Gauge& Registry::gauge(std::string_view name, int rank,
                       std::string_view phase) {
  util::MutexLock lock(mu_);
  auto key = make_key(name, rank, phase);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back();
  gauge_index_.emplace(std::move(key), &gauges_.back());
  return gauges_.back();
}

Histogram& Registry::histogram(std::string_view name, int rank,
                               std::string_view phase) {
  util::MutexLock lock(mu_);
  auto key = make_key(name, rank, phase);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back();
  histogram_index_.emplace(std::move(key), &histograms_.back());
  return histograms_.back();
}

std::vector<MetricSample> Registry::snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counter_index_.size() + gauge_index_.size() +
              histogram_index_.size());
  for (const auto& [key, c] : counter_index_) {
    MetricSample s;
    s.key = key;
    s.kind = MetricSample::Kind::kCounter;
    s.counter_value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauge_index_) {
    MetricSample s;
    s.key = key;
    s.kind = MetricSample::Kind::kGauge;
    s.gauge_value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : histogram_index_) {
    MetricSample s;
    s.key = key;
    s.kind = MetricSample::Kind::kHistogram;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n > 0) s.buckets.emplace_back(i, n);
      s.hist_count += n;
    }
    s.hist_sum = h->sum();
    out.push_back(std::move(s));
  }
  // Deterministic order: name, then phase, then rank.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.key < b.key;
            });
  return out;
}

std::string Registry::summary_table() const {
  const auto samples = snapshot();
  util::Table table({"phase", "rank", "metric", "value"});
  for (const auto& s : samples) {
    std::string value;
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        value = util::fmt_count(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        value = util::fmt_double(s.gauge_value, 6);
        break;
      case MetricSample::Kind::kHistogram:
        value = util::fmt_count(s.hist_count) + " obs, mean " +
                util::fmt_double(
                    s.hist_count == 0
                        ? 0.0
                        : static_cast<double>(s.hist_sum) /
                              static_cast<double>(s.hist_count),
                    2);
        break;
    }
    table.add_row({s.key.phase.empty() ? "-" : s.key.phase,
                   s.key.rank == kNoRank ? "-" : std::to_string(s.key.rank),
                   s.key.name, std::move(value)});
  }
  return table.render();
}

std::string Registry::to_jsonl() const {
  const auto samples = snapshot();
  std::string out;
  for (const auto& s : samples) {
    out += '{';
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "\"type\":\"counter\",";
        append_key_json(out, s.key);
        out += ",\"value\":";
        out += std::to_string(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        out += "\"type\":\"gauge\",";
        append_key_json(out, s.key);
        out += ",\"value\":";
        out += json_double(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram: {
        out += "\"type\":\"histogram\",";
        append_key_json(out, s.key);
        out += ",\"count\":";
        out += std::to_string(s.hist_count);
        out += ",\"sum\":";
        out += std::to_string(s.hist_sum);
        out += ",\"buckets\":[";
        bool first = true;
        for (const auto& [i, n] : s.buckets) {
          if (!first) out += ',';
          first = false;
          out += "{\"le\":";
          out += std::to_string(Histogram::bucket_upper(i));
          out += ",\"count\":";
          out += std::to_string(n);
          out += '}';
        }
        out += ']';
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

void Registry::clear() {
  util::MutexLock lock(mu_);
  counter_index_.clear();
  gauge_index_.clear();
  histogram_index_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::size_t Registry::size() const {
  util::MutexLock lock(mu_);
  return counter_index_.size() + gauge_index_.size() +
         histogram_index_.size();
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all threads
  return *instance;
}

void set_phase(const char* phase) noexcept {
  g_phase.store(phase == nullptr ? "" : phase, std::memory_order_relaxed);
}

const char* current_phase() noexcept {
  return g_phase.load(std::memory_order_relaxed);
}

}  // namespace pgasm::obs
