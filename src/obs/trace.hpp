// Lightweight per-rank event tracer: ring-buffered spans and instant events
// with wall-clock + thread-CPU timestamps and a monotonic per-rank sequence
// number. The sequence number is the cross-rank correlation device: vmpi
// ranks are threads of one process, but the tracer deliberately does not
// assume that — matching a send instant on rank a to the recv instant on
// rank b uses (peer, seq) args, not a shared clock.
//
// Cost model: when tracing is disabled (the default), recording is a single
// relaxed atomic load + branch — Span carries a null ring and its destructor
// does nothing. When enabled, each event takes two clock_gettime calls and a
// short critical section on the rank's own ring mutex. Ring mutexes are leaf
// locks: the tracer never calls back into vmpi or the registry, so recording
// is safe from any context, including while a mailbox mutex is held.
//
// Rings are fixed-capacity (default 8192 events/rank); on overflow the
// oldest events are dropped and a per-ring drop counter keeps the loss
// visible in the export.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pgasm::obs {

/// tid used for driver-level (non-rank) events in the Chrome trace export.
inline constexpr int kDriverTid = -1;

/// One recorded event. Name/category/arg-name strings must have static
/// lifetime (string literals): the ring stores raw pointers.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant };

  const char* name = "";
  const char* cat = "";
  Kind kind = Kind::kInstant;
  int rank = kDriverTid;
  std::uint64_t seq = 0;      ///< per-rank monotonic sequence number
  std::uint64_t ts_us = 0;    ///< wall time since trace epoch, microseconds
  std::uint64_t dur_us = 0;   ///< span duration (0 for instants)
  std::uint64_t cpu_us = 0;   ///< thread-CPU time consumed (spans only)
  // Up to three integer args, exported into the Chrome-trace "args" object.
  const char* arg0_name = nullptr;
  std::uint64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
  /// Pipeline phase at record time, stamped by RankRing::record from
  /// obs::current_phase(). Static-lifetime string, same contract as name.
  const char* phase = "";

  std::uint64_t end_us() const { return ts_us + dur_us; }
};

/// Fixed-capacity event ring for one rank. All mutation under mu_; the
/// mutex is a leaf lock (see file comment).
class RankRing {
 public:
  explicit RankRing(std::size_t capacity) : capacity_(capacity) {
    events_.reserve(capacity);
  }

  /// Returns the per-rank sequence number assigned to the event.
  std::uint64_t record(TraceEvent ev) PGASM_EXCLUDES(mu_);

  /// Next sequence number without recording (used to stamp message args).
  std::uint64_t peek_seq() const PGASM_EXCLUDES(mu_);

  std::vector<TraceEvent> drain() const PGASM_EXCLUDES(mu_);  ///< oldest-first
  std::uint64_t dropped() const PGASM_EXCLUDES(mu_);
  /// Fold in events dropped by another ring (a child process's copy of this
  /// rank's ring, merged after a proc-transport run).
  void add_dropped(std::uint64_t n) PGASM_EXCLUDES(mu_);
  std::size_t size() const PGASM_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  // capacity_ is set once in the constructor and read-only afterwards; it
  // deliberately carries no guard. pgasm-lint: allow(guard): set-once
  // before the ring is shared, immutable after construction.
  std::size_t capacity_;
  std::vector<TraceEvent> events_ PGASM_GUARDED_BY(mu_);  // ring once full
  std::size_t head_ PGASM_GUARDED_BY(mu_) = 0;   // next write once wrapped
  bool wrapped_ PGASM_GUARDED_BY(mu_) = false;
  std::uint64_t next_seq_ PGASM_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ PGASM_GUARDED_BY(mu_) = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Enable/disable recording. Disabled recording costs one relaxed load.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-rank ring capacity for rings created after this call.
  void set_capacity(std::size_t cap) PGASM_EXCLUDES(mu_);

  /// Ring for a rank (kDriverTid for the driver). Creates it on first use.
  /// The returned pointer stays valid until clear().
  RankRing* ring(int rank) PGASM_EXCLUDES(mu_);

  /// Record an instant event on a rank (no-op when disabled).
  void instant(int rank, const char* name, const char* cat,
               const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
               const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
               const char* arg2_name = nullptr, std::uint64_t arg2 = 0);

  /// Microseconds since the trace epoch (process start of the tracer).
  std::uint64_t now_us() const;

  /// The trace epoch in CLOCK_MONOTONIC nanoseconds (0 until the first ring
  /// is created). Forked rank processes inherit the parent's epoch, but each
  /// child ships its own value back in its trace blob so the merge can align
  /// timestamps even if the epochs ever diverge.
  std::uint64_t epoch_ns() const noexcept {
    return epoch_ns_.load(std::memory_order_relaxed);
  }

  /// All events from all rings, plus rank list, for export.
  std::map<int, std::vector<TraceEvent>> drain_all() const PGASM_EXCLUDES(mu_);
  std::uint64_t total_dropped() const PGASM_EXCLUDES(mu_);
  std::map<int, std::uint64_t> dropped_by_rank() const PGASM_EXCLUDES(mu_);
  std::size_t total_events() const PGASM_EXCLUDES(mu_);

  /// Chrome trace_event JSON ({"traceEvents":[...]}): spans as ph:"X",
  /// instants as ph:"i", one thread_name metadata record per rank. Message
  /// events carrying an "mseq" arg additionally emit flow events (ph:"s"
  /// on the send, ph:"f" on the recv) so Perfetto draws causal arrows.
  /// Loads directly in chrome://tracing and ui.perfetto.dev.
  std::string to_chrome_json() const;

  /// Drop all rings and events (rings' pointers become invalid).
  void clear() PGASM_EXCLUDES(mu_);

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mu_;  // guards rings_ map shape, not ring contents
  std::map<int, std::unique_ptr<RankRing>> rings_ PGASM_GUARDED_BY(mu_);
  std::size_t capacity_ PGASM_GUARDED_BY(mu_) = kDefaultCapacity;
  // Lazily set on first ring creation; atomic so now_us() (called on every
  // recorded event) stays lock-free.
  std::atomic<std::uint64_t> epoch_ns_{0};
};

/// RAII span. Construct via Tracer-aware helpers below; when tracing is
/// disabled the ring pointer is null and the destructor is a single branch.
class Span {
 public:
  Span() = default;
  Span(RankRing* ring, std::uint64_t epoch_start_us, const char* name,
       const char* cat, int rank) noexcept;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Attach integer args reported when the span closes.
  void arg(const char* name, std::uint64_t value) noexcept;

  /// Close the span early (destructor is then a no-op).
  void finish() noexcept;

 private:
  RankRing* ring_ = nullptr;
  TraceEvent ev_{};
  std::uint64_t cpu_start_us_ = 0;
};

/// Process-global tracer (same lifetime contract as obs::registry()).
Tracer& tracer();

/// Copy `s` into process-lifetime storage and return a stable pointer;
/// equal strings share one copy. TraceEvent stores raw const char* with a
/// static-lifetime contract, which deserialized events (per-process trace
/// blobs merged after a proc-transport run) cannot meet with their own
/// buffers — interning restores the contract. The intern table is leaked
/// like the tracer itself.
const char* intern_string(std::string_view s);

/// Open a span on the global tracer; returns an inert Span when disabled.
Span span(int rank, const char* name, const char* cat);

/// Instant event on the global tracer (no-op when disabled).
inline void instant(int rank, const char* name, const char* cat,
                    const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
                    const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                    const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
  tracer().instant(rank, name, cat, arg0_name, arg0, arg1_name, arg1,
                   arg2_name, arg2);
}

}  // namespace pgasm::obs
