// Umbrella header: the entire PGASM public API.
//
// Most users only need pipeline/pipeline.hpp (the end-to-end driver) or
// core/ + gst/ for the clustering framework alone.
#pragma once

#include "align/overlap.hpp"
#include "align/pairwise.hpp"
#include "core/cluster_params.hpp"
#include "core/consistency.hpp"
#include "core/parallel_cluster.hpp"
#include "core/serial_cluster.hpp"
#include "gst/pair_generator.hpp"
#include "gst/parallel_build.hpp"
#include "gst/suffix_tree.hpp"
#include "olc/assembler.hpp"
#include "olc/layout.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/validation.hpp"
#include "preprocess/preprocess.hpp"
#include "preprocess/repeat_masker.hpp"
#include "seq/fasta.hpp"
#include "seq/fragment_store.hpp"
#include "sim/community.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/union_find.hpp"
#include "vmpi/runtime.hpp"
