#include "sim/genome.hpp"

#include <algorithm>
#include <cmath>

namespace pgasm::sim {

namespace {

/// Merge overlapping/abutting intervals in place; result sorted disjoint.
std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  if (v.empty()) return v;
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  std::vector<Interval> out;
  out.push_back(v[0]);
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].begin <= out.back().end) {
      out.back().end = std::max(out.back().end, v[i].end);
    } else {
      out.push_back(v[i]);
    }
  }
  return out;
}

std::uint64_t covered_length(const std::vector<Interval>& merged) {
  std::uint64_t sum = 0;
  for (const auto& iv : merged) sum += iv.length();
  return sum;
}

}  // namespace

double Genome::repeat_fraction() const noexcept {
  if (sequence.empty()) return 0;
  return static_cast<double>(covered_length(repeat_regions)) /
         static_cast<double>(sequence.size());
}

double Genome::gene_fraction() const noexcept {
  if (sequence.empty()) return 0;
  return static_cast<double>(covered_length(gene_islands)) /
         static_cast<double>(sequence.size());
}

int Genome::island_of(std::uint64_t pos) const noexcept {
  // gene_islands sorted disjoint: binary search.
  std::size_t lo = 0, hi = gene_islands.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (gene_islands[mid].end <= pos) {
      lo = mid + 1;
    } else if (gene_islands[mid].begin > pos) {
      hi = mid;
    } else {
      return static_cast<int>(mid);
    }
  }
  return -1;
}

Genome simulate_genome(const GenomeParams& params) {
  util::Prng rng(params.seed);
  Genome g;
  g.sequence.resize(params.length);
  for (auto& c : g.sequence) c = static_cast<seq::Code>(rng.below(4));

  // Carve gene islands first (disjoint, random positions).
  std::vector<Interval> islands;
  std::uint64_t gene_target =
      static_cast<std::uint64_t>(params.gene_fraction *
                                 static_cast<double>(params.length));
  std::uint64_t gene_covered = 0;
  int attempts = 0;
  while (gene_covered < gene_target && attempts < 100000) {
    ++attempts;
    const std::uint64_t len = std::max<std::uint64_t>(
        params.gene_island_len_min,
        static_cast<std::uint64_t>(
            -std::log(1.0 - rng.uniform()) * params.gene_island_len_mean));
    if (len >= params.length) continue;
    const std::uint64_t begin = rng.below(params.length - len);
    const Interval iv{begin, begin + len};
    bool clash = false;
    for (const auto& other : islands) {
      if (iv.begin < other.end && other.begin < iv.end) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    islands.push_back(iv);
    gene_covered += len;
  }
  std::sort(islands.begin(), islands.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  g.gene_islands = std::move(islands);

  // Paste repeat family copies outside gene islands (mostly intergenic,
  // like maize retrotransposon space).
  std::vector<Interval> repeats;
  for (const auto& fam : params.repeat_families) {
    std::vector<seq::Code> master(fam.element_length);
    for (auto& c : master) c = static_cast<seq::Code>(rng.below(4));
    for (std::uint32_t copy = 0; copy < fam.copies; ++copy) {
      if (fam.element_length >= params.length) break;
      // Find a start position not inside a gene island (bounded retries).
      std::uint64_t begin = 0;
      bool placed = false;
      for (int t = 0; t < 50; ++t) {
        begin = rng.below(params.length - fam.element_length);
        if (g.island_of(begin) < 0 &&
            g.island_of(begin + fam.element_length - 1) < 0) {
          placed = true;
          break;
        }
      }
      if (!placed) continue;
      for (std::uint32_t k = 0; k < fam.element_length; ++k) {
        seq::Code c = master[k];
        if (rng.chance(fam.divergence)) {
          c = static_cast<seq::Code>((c + 1 + rng.below(3)) % 4);
        }
        g.sequence[begin + k] = c;
      }
      repeats.push_back(Interval{begin, begin + fam.element_length});
    }
  }
  g.repeat_regions = merge_intervals(std::move(repeats));

  // Unclonable gaps: short random segments no sampler may cover.
  if (params.unclonable_fraction > 0) {
    std::vector<Interval> gaps;
    const std::uint64_t target = static_cast<std::uint64_t>(
        params.unclonable_fraction * static_cast<double>(params.length));
    std::uint64_t covered = 0;
    int tries = 0;
    while (covered < target && tries++ < 100000) {
      const std::uint64_t len = params.unclonable_len;
      if (len >= params.length) break;
      const std::uint64_t begin = rng.below(params.length - len);
      gaps.push_back(Interval{begin, begin + len});
      covered += len;
    }
    g.unclonable = merge_intervals(std::move(gaps));
  }
  return g;
}

bool Genome::clonable(std::uint64_t begin, std::uint64_t end) const noexcept {
  // unclonable is sorted disjoint: find the first gap ending after begin.
  std::size_t lo = 0, hi = unclonable.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (unclonable[mid].end <= begin) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo >= unclonable.size() || unclonable[lo].begin >= end;
}

GenomeParams maize_like(std::uint64_t length, std::uint64_t seed) {
  GenomeParams p;
  p.length = length;
  p.seed = seed;
  p.gene_fraction = 0.12;
  p.gene_island_len_mean = 2500;
  p.unclonable_fraction = 0.03;
  // Aim for ~65-75% repeat coverage from a few abundant, long, high-identity
  // families (retrotransposon-like) plus one shorter very-high-copy family.
  // Copy overlap and island-avoidance rejections shrink realized coverage;
  // overshoot the budget ~1.6x so realized repeat coverage lands near 70%.
  const double target = 0.70 * 1.6;
  const std::uint64_t budget =
      static_cast<std::uint64_t>(target * static_cast<double>(length));
  RepeatFamilyParams big{.element_length = 3000, .copies = 0, .divergence = 0.02};
  RepeatFamilyParams mid{.element_length = 800, .copies = 0, .divergence = 0.03};
  RepeatFamilyParams small{.element_length = 150, .copies = 0, .divergence = 0.01};
  big.copies = static_cast<std::uint32_t>(budget / 2 / big.element_length);
  mid.copies = static_cast<std::uint32_t>(budget * 3 / 10 / mid.element_length);
  small.copies = static_cast<std::uint32_t>(budget / 5 / small.element_length);
  p.repeat_families = {big, mid, small};
  return p;
}

GenomeParams shotgun_like(std::uint64_t length, std::uint64_t seed) {
  GenomeParams p;
  p.length = length;
  p.seed = seed;
  p.gene_fraction = 0.25;
  p.gene_island_len_mean = 4000;
  const std::uint64_t budget = length * 15 / 100;  // ~15% repeats
  RepeatFamilyParams fam{.element_length = 1200, .copies = 0, .divergence = 0.04};
  fam.copies = static_cast<std::uint32_t>(budget / fam.element_length);
  p.repeat_families = {fam};
  p.unclonable_fraction = 0.04;
  return p;
}

}  // namespace pgasm::sim
