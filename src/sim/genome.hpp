// Synthetic genome simulator.
//
// Stands in for the paper's real inputs (maize pilot data, D. pseudoobscura
// traces, Sargasso Sea sample), reproducing the statistical structure the
// evaluation depends on:
//   * a random background sequence,
//   * high-identity repeat families covering a configurable fraction of the
//     genome (maize: 65-80% repeats with very high sequence identity),
//   * gene islands covering a small fraction (maize: 10-15%), mostly
//     outside the repeat space — the target of gene-enrichment sequencing.
//
// Every generated region is recorded so experiments can validate clustering
// against ground truth (stronger than the paper's BLAST-based proxy).
#pragma once

#include <cstdint>
#include <vector>

#include "seq/alphabet.hpp"
#include "util/prng.hpp"

namespace pgasm::sim {

struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t length() const noexcept { return end - begin; }
};

struct RepeatFamilyParams {
  std::uint32_t element_length = 800;
  std::uint32_t copies = 50;
  /// Per-base substitution probability applied independently to each copy.
  /// Maize repeats have "very high sequence identity" — keep this small.
  double divergence = 0.02;
};

struct GenomeParams {
  std::uint64_t length = 1'000'000;
  std::vector<RepeatFamilyParams> repeat_families;
  /// Target fraction of the genome covered by gene islands.
  double gene_fraction = 0.12;
  std::uint32_t gene_island_len_mean = 3000;
  std::uint32_t gene_island_len_min = 800;
  /// Fraction of the genome that cannot be cloned/sampled (models the
  /// cloning difficulties and sequencing gaps that make real projects end
  /// in hundreds of thousands of contigs — paper Section 2).
  double unclonable_fraction = 0.0;
  std::uint32_t unclonable_len = 300;
  std::uint64_t seed = 1;
};

struct Genome {
  std::vector<seq::Code> sequence;
  std::vector<Interval> gene_islands;    ///< sorted, disjoint
  std::vector<Interval> repeat_regions;  ///< sorted by begin, may abut
  std::vector<Interval> unclonable;      ///< sorted, disjoint; not sampleable

  std::uint64_t length() const noexcept { return sequence.size(); }
  double repeat_fraction() const noexcept;
  double gene_fraction() const noexcept;
  /// Index of the gene island containing pos, or -1.
  int island_of(std::uint64_t pos) const noexcept;
  /// Can a read spanning [begin, end) be cloned (no unclonable overlap)?
  bool clonable(std::uint64_t begin, std::uint64_t end) const noexcept;
};

Genome simulate_genome(const GenomeParams& params);

/// Preset resembling the paper's maize data: ~70% repeats from a few
/// abundant high-identity families, ~12% genes.
GenomeParams maize_like(std::uint64_t length, std::uint64_t seed);

/// Preset resembling a fly-sized WGS target: moderate repeat content.
GenomeParams shotgun_like(std::uint64_t length, std::uint64_t seed);

}  // namespace pgasm::sim
