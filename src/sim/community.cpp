#include "sim/community.hpp"

#include <cmath>

namespace pgasm::sim {

Community simulate_community(const CommunityParams& params) {
  util::Prng rng(params.seed);
  Community c;
  c.genomes.reserve(params.num_species);
  c.abundance.reserve(params.num_species);
  double total = 0;
  for (std::uint32_t s = 0; s < params.num_species; ++s) {
    GenomeParams gp;
    gp.length = params.genome_len_min +
                rng.below(params.genome_len_max - params.genome_len_min + 1);
    gp.seed = rng();
    gp.gene_fraction = 0.0;  // bacterial genomes: no eukaryote-style islands
    // Light repeat content (IS-element-like).
    RepeatFamilyParams fam{.element_length = 600, .copies = 4,
                           .divergence = 0.03};
    gp.repeat_families = {fam};
    c.genomes.push_back(simulate_genome(gp));
    const double w = 1.0 / std::pow(static_cast<double>(s + 1),
                                    params.abundance_skew);
    c.abundance.push_back(w);
    total += w;
  }
  for (auto& w : c.abundance) w /= total;
  return c;
}

void sample_community(ReadSet& out, const Community& community,
                      std::size_t n_reads, const ReadParams& rp,
                      util::Prng& rng) {
  for (std::size_t i = 0; i < n_reads; ++i) {
    // Draw a species by abundance.
    double u = rng.uniform();
    std::uint32_t gid = 0;
    for (; gid + 1 < community.abundance.size(); ++gid) {
      if (u < community.abundance[gid]) break;
      u -= community.abundance[gid];
    }
    const Genome& g = community.genomes[gid];
    // Delegate to the uniform sampler for one read so the error model and
    // truth bookkeeping stay in one place (enrichment 0 == uniform).
    ReadSet tmp;
    sample_gene_enriched(tmp, g, 1, 0.0, rp, rng, seq::FragType::kEnv, gid);
    for (std::uint32_t r = 0; r < tmp.store.size(); ++r) {
      out.store.add(tmp.store.seq(r), tmp.store.type(r), {},
                    tmp.store.quality(r));
      out.truth.push_back(tmp.truth[r]);
    }
  }
}

}  // namespace pgasm::sim
