#include "sim/reads.hpp"

#include <algorithm>
#include <string_view>

namespace pgasm::sim {

namespace {

/// Apply the error model and produce simulated quality values. Inserted
/// bases get low quality; real bases get high quality degrading at ends.
void corrupt(std::vector<seq::Code>& read, std::vector<std::uint8_t>& qual,
             const ErrorModel& em, util::Prng& rng, bool with_quality) {
  std::vector<seq::Code> out;
  std::vector<std::uint8_t> q;
  out.reserve(read.size() + 8);
  q.reserve(read.size() + 8);
  const std::size_t n = read.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(em.del_rate)) continue;  // deletion
    if (rng.chance(em.ins_rate)) {
      out.push_back(static_cast<seq::Code>(rng.below(4)));
      q.push_back(static_cast<std::uint8_t>(8 + rng.below(10)));
    }
    seq::Code c = read[i];
    std::uint8_t quality = 45;
    // Ends of Sanger reads are low quality: ramp over the first/last 25 bp.
    const std::size_t from_edge = std::min(i, n - 1 - i);
    if (from_edge < 25) {
      quality = static_cast<std::uint8_t>(10 + from_edge * 35 / 25);
    }
    quality = static_cast<std::uint8_t>(
        std::max<int>(2, quality - static_cast<int>(rng.below(6))));
    if (rng.chance(em.sub_rate)) {
      c = static_cast<seq::Code>((c + 1 + rng.below(3)) % 4);
      quality = static_cast<std::uint8_t>(6 + rng.below(12));
    }
    out.push_back(c);
    q.push_back(quality);
  }
  read = std::move(out);
  if (with_quality) {
    qual = std::move(q);
  } else {
    qual.clear();
  }
}

void emit_read(ReadSet& out, const Genome& g, std::uint64_t begin,
               std::uint64_t end, const ReadParams& rp, util::Prng& rng,
               seq::FragType type, std::uint32_t genome_id) {
  std::vector<seq::Code> read(g.sequence.begin() + begin,
                              g.sequence.begin() + end);
  ReadTruth truth;
  truth.genome_id = genome_id;
  truth.begin = begin;
  truth.end = end;
  truth.island_id = g.island_of(begin);
  truth.rc = rng.chance(rp.strand_flip_prob);
  if (truth.rc) read = seq::reverse_complement(read);

  std::vector<std::uint8_t> qual;
  corrupt(read, qual, rp.errors, rng, rp.with_quality);

  // Vector contamination: residual cloning-vector sequence at the 5' end.
  if (rng.chance(rp.vector_contam_prob)) {
    const auto& lib = vector_library();
    const auto& vec = lib[rng.below(lib.size())];
    const std::size_t take = 15 + rng.below(std::min<std::size_t>(
                                      vec.size() - 15, 40));
    read.insert(read.begin(), vec.begin(), vec.begin() + take);
    if (rp.with_quality) {
      qual.insert(qual.begin(), take, std::uint8_t{40});
    }
  }

  out.store.add(read, type, {}, qual);
  out.truth.push_back(truth);
}

std::uint64_t draw_len(const ReadParams& rp, util::Prng& rng) {
  const std::uint64_t lo =
      rp.len_mean > rp.len_spread ? rp.len_mean - rp.len_spread : 50;
  return lo + rng.below(2 * rp.len_spread + 1);
}

}  // namespace

const std::vector<std::vector<seq::Code>>& vector_library() {
  // Two synthetic "cloning vector" sequences (fixed, so the preprocessing
  // screen knows them — as Lucy knows pUC/pBluescript etc.).
  static const std::vector<std::vector<seq::Code>> lib = [] {
    std::vector<std::vector<seq::Code>> v;
    v.push_back(seq::encode(std::string_view(
        "GTAAAACGACGGCCAGTGAATTCGAGCTCGGTACCCGGGGATCCTCTAGAGTCGACCTGCA")));
    v.push_back(seq::encode(std::string_view(
        "AGGAAACAGCTATGACCATGATTACGCCAAGCTTGCATGCCTGCAGGTCGACTCTAGAGGA")));
    return v;
  }();
  return lib;
}

void sample_wgs(ReadSet& out, const Genome& g, double coverage,
                const ReadParams& rp, util::Prng& rng, seq::FragType type,
                std::uint32_t genome_id) {
  const double target = coverage * static_cast<double>(g.length());
  double emitted = 0;
  std::uint64_t rejected = 0;
  while (emitted < target) {
    const std::uint64_t len = std::min<std::uint64_t>(
        draw_len(rp, rng), g.length() > 1 ? g.length() - 1 : 1);
    if (len >= g.length()) break;
    const std::uint64_t begin = rng.below(g.length() - len);
    if (!g.clonable(begin, begin + len)) {
      // Unclonable region: the sub-clone never grows (bounded retries so a
      // pathological genome cannot stall the sampler).
      if (++rejected >
          50 * static_cast<std::uint64_t>(
                   static_cast<double>(target) /
                   static_cast<double>(std::max<std::uint64_t>(1, len)))) {
        break;
      }
      continue;
    }
    emit_read(out, g, begin, begin + len, rp, rng, type, genome_id);
    emitted += static_cast<double>(len);
  }
}

void sample_gene_enriched(ReadSet& out, const Genome& g, std::size_t n_reads,
                          double enrichment, const ReadParams& rp,
                          util::Prng& rng, seq::FragType type,
                          std::uint32_t genome_id) {
  for (std::size_t i = 0; i < n_reads; ++i) {
    const std::uint64_t len = std::min<std::uint64_t>(
        draw_len(rp, rng), g.length() > 1 ? g.length() - 1 : 1);
    std::uint64_t begin = 0;
    bool ok = false;
    for (int attempt = 0; attempt < 20 && !ok; ++attempt) {
      if (!g.gene_islands.empty() && rng.chance(enrichment)) {
        // Start inside a random gene island (biased toward genic space).
        const auto& island = g.gene_islands[rng.below(g.gene_islands.size())];
        begin = island.begin + rng.below(std::max<std::uint64_t>(
                                   1, island.length()));
        begin = std::min(begin, g.length() - len - 1);
      } else {
        begin = rng.below(g.length() - len);
      }
      ok = g.clonable(begin, begin + len);
    }
    if (!ok) continue;
    emit_read(out, g, begin, begin + len, rp, rng, type, genome_id);
  }
}

void sample_bac(ReadSet& out, const Genome& g, std::size_t n_bacs,
                std::uint32_t bac_len, double sub_coverage,
                const ReadParams& rp, util::Prng& rng,
                std::uint32_t genome_id) {
  for (std::size_t b = 0; b < n_bacs; ++b) {
    if (bac_len >= g.length()) break;
    const std::uint64_t bac_begin = rng.below(g.length() - bac_len);
    const std::uint64_t bac_end = bac_begin + bac_len;
    // End reads.
    const std::uint64_t end_len = draw_len(rp, rng);
    emit_read(out, g, bac_begin, std::min(bac_begin + end_len, bac_end), rp,
              rng, seq::FragType::kBAC, genome_id);
    const std::uint64_t end2 = bac_end > end_len ? bac_end - end_len : 0;
    emit_read(out, g, std::max(end2, bac_begin), bac_end, rp, rng,
              seq::FragType::kBAC, genome_id);
    // Interior shotgun of the clone.
    const double target = sub_coverage * static_cast<double>(bac_len);
    double emitted = 0;
    while (emitted < target) {
      const std::uint64_t len =
          std::min<std::uint64_t>(draw_len(rp, rng), bac_len - 1);
      const std::uint64_t begin = bac_begin + rng.below(bac_len - len);
      emit_read(out, g, begin, begin + len, rp, rng, seq::FragType::kBAC,
                genome_id);
      emitted += static_cast<double>(len);
    }
  }
}

void sample_mate_pairs(ReadSet& out, std::vector<MatePair>& mates,
                       const Genome& g, std::size_t n_clones,
                       std::uint32_t insert_mean, std::uint32_t insert_spread,
                       const ReadParams& rp, util::Prng& rng,
                       seq::FragType type, std::uint32_t genome_id) {
  // Forward end read comes out genome-forward, reverse end read comes out
  // reverse-complemented: pin the strand decision in emit_read via the
  // flip probability.
  ReadParams fwd = rp;
  fwd.strand_flip_prob = 0.0;
  ReadParams rev = rp;
  rev.strand_flip_prob = 1.0;
  for (std::size_t c = 0; c < n_clones; ++c) {
    const std::uint64_t lo_insert =
        insert_mean > insert_spread ? insert_mean - insert_spread : 200;
    const std::uint64_t insert =
        lo_insert + rng.below(2ull * insert_spread + 1);
    if (insert >= g.length()) continue;
    const std::uint64_t len_a =
        std::min<std::uint64_t>(draw_len(rp, rng), insert);
    const std::uint64_t len_b =
        std::min<std::uint64_t>(draw_len(rp, rng), insert);
    // Only the sequenced ends must be clonable/readable: large inserts
    // spanning difficult regions are precisely what gives scaffolding its
    // gap-bridging power (paper Section 2: gaps are later "finished").
    std::uint64_t begin = 0;
    bool placed = false;
    for (int attempt = 0; attempt < 20 && !placed; ++attempt) {
      begin = rng.below(g.length() - insert);
      placed = g.clonable(begin, begin + len_a) &&
               g.clonable(begin + insert - len_b, begin + insert);
    }
    if (!placed) continue;
    const std::uint32_t id_a = static_cast<std::uint32_t>(out.store.size());
    emit_read(out, g, begin, begin + len_a, fwd, rng, type, genome_id);
    const std::uint32_t id_b = static_cast<std::uint32_t>(out.store.size());
    emit_read(out, g, begin + insert - len_b, begin + insert, rev, rng, type,
              genome_id);
    mates.push_back(MatePair{id_a, id_b, static_cast<std::uint32_t>(insert)});
  }
}

}  // namespace pgasm::sim
