// Read simulators for the sequencing strategies the paper evaluates
// (Table 2): whole genome shotgun (WGS), methyl-filtration (MF) and
// High-C0t (HC) gene-enriched sampling, and BAC-derived reads. Each read
// records its ground-truth source coordinates, enabling direct cluster
// validation. An error model applies substitutions and indels (~1-2%,
// matching Sanger-era rates the paper assumes), simulated quality values
// degrade toward the read ends, strands flip at random, and a fraction of
// reads carry cloning-vector contamination at their 5' end.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/fragment_store.hpp"
#include "sim/genome.hpp"
#include "util/prng.hpp"

namespace pgasm::sim {

struct ErrorModel {
  double sub_rate = 0.010;
  double ins_rate = 0.0025;
  double del_rate = 0.0025;
};

struct ReadParams {
  std::uint32_t len_mean = 650;
  std::uint32_t len_spread = 150;  ///< uniform in [mean-spread, mean+spread]
  ErrorModel errors{};
  double vector_contam_prob = 0.05;  ///< prepend a cloning-vector fragment
  double strand_flip_prob = 0.5;
  bool with_quality = true;
};

struct ReadTruth {
  std::uint32_t genome_id = 0;  ///< community member (0 for single genome)
  std::uint64_t begin = 0;      ///< source interval in the genome
  std::uint64_t end = 0;
  bool rc = false;
  std::int32_t island_id = -1;  ///< gene island the read starts in, or -1
};

struct ReadSet {
  seq::FragmentStore store;
  std::vector<ReadTruth> truth;  ///< parallel to store
};

/// The cloning-vector library used both to contaminate simulated reads and
/// as the screen database in preprocessing (the paper uses Lucy with the
/// real vector sequences).
const std::vector<std::vector<seq::Code>>& vector_library();

/// Uniform random sampling to the given coverage (WGS).
void sample_wgs(ReadSet& out, const Genome& g, double coverage,
                const ReadParams& rp, util::Prng& rng,
                seq::FragType type = seq::FragType::kWGS,
                std::uint32_t genome_id = 0);

/// Gene-enriched sampling: with probability `enrichment`, the read start is
/// drawn from a gene island; otherwise uniform (models MF/HC leakage).
void sample_gene_enriched(ReadSet& out, const Genome& g, std::size_t n_reads,
                          double enrichment, const ReadParams& rp,
                          util::Prng& rng, seq::FragType type,
                          std::uint32_t genome_id = 0);

/// BAC-derived reads: pick `n_bacs` long clones, sample each clone's ends
/// and its interior to `sub_coverage`.
void sample_bac(ReadSet& out, const Genome& g, std::size_t n_bacs,
                std::uint32_t bac_len, double sub_coverage,
                const ReadParams& rp, util::Prng& rng,
                std::uint32_t genome_id = 0);

/// A clone-mate link between two reads of `out.store` (paper Section 1:
/// "fragments are typically sequenced in pairs from either end of longer
/// DNA sequences (or sub-clones) of approximate known length").
struct MatePair {
  std::uint32_t read_a = 0;  ///< 5' end read, sequenced genome-forward
  std::uint32_t read_b = 0;  ///< 3' end read, sequenced genome-reverse
  std::uint32_t insert_len = 0;  ///< nominal clone length
};

/// Paired-end sampling: n_clones sub-clones of ~insert_mean bp; one read
/// from each end, facing inward. Returns the mate links (ids into out).
void sample_mate_pairs(ReadSet& out, std::vector<MatePair>& mates,
                       const Genome& g, std::size_t n_clones,
                       std::uint32_t insert_mean, std::uint32_t insert_spread,
                       const ReadParams& rp, util::Prng& rng,
                       seq::FragType type = seq::FragType::kWGS,
                       std::uint32_t genome_id = 0);

}  // namespace pgasm::sim
