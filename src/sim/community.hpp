// Environmental-sample ("metagenomic") community simulator — the Sargasso
// Sea analogue (paper Section 9.2): many small bacterial genomes sampled
// collectively, with species abundances following a power law so a few
// species dominate while a long tail contributes singletons.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/genome.hpp"
#include "sim/reads.hpp"

namespace pgasm::sim {

struct CommunityParams {
  std::uint32_t num_species = 50;
  std::uint64_t genome_len_min = 20'000;
  std::uint64_t genome_len_max = 80'000;
  /// Zipf exponent for species abundance (1.0 = classic Zipf).
  double abundance_skew = 1.0;
  std::uint64_t seed = 1;
};

struct Community {
  std::vector<Genome> genomes;
  std::vector<double> abundance;  ///< normalized sampling weights
};

Community simulate_community(const CommunityParams& params);

/// Sample n_reads across the community by abundance; truth records the
/// genome id of each read.
void sample_community(ReadSet& out, const Community& community,
                      std::size_t n_reads, const ReadParams& rp,
                      util::Prng& rng);

}  // namespace pgasm::sim
