// The shared overlap-compute engine: one persistent align::Workspace plus
// the accept test, batch-oriented so serial clustering, parallel workers,
// and consensus validation all run the exact same allocation-free kernel.
//
// The paper's clustering phase spends essentially all of its time in the
// banded suffix–prefix alignment "anchored to the maximal matches"
// (Section 5); an engine instance owns the scratch memory that kernel
// needs, so after the first few calls a pair costs zero heap allocations.
// Engines are single-threaded by design — one per rank/worker thread, held
// for the duration of the phase. Construction is cheap; the workspace grows
// to the working-set high-water mark and stays there.
//
// When the obs tracer is enabled the engine publishes, per rank:
//   engine.pairs            counter    pairs aligned through run()/align_pair
//   engine.batch_us         histogram  run() batch latency, microseconds
//   align.workspace_bytes   gauge      workspace bytes in use (high water)
//   align.allocations       counter    workspace capacity growths
//   align.allocs_avoided    counter    buffer requests served with no alloc
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/overlap.hpp"
#include "align/workspace.hpp"
#include "core/wire.hpp"
#include "seq/fragment_store.hpp"

namespace pgasm::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace pgasm::obs

namespace pgasm::core {

class OverlapEngine {
 public:
  /// Engine over a doubled fragment store (clustering: PairMsg ids resolve
  /// through `doubled`). The store must outlive the engine.
  OverlapEngine(const seq::FragmentStore& doubled,
                const align::OverlapParams& params, int rank = 0);
  /// Store-less engine: only full_align/banded_align are usable (consensus
  /// validation aligns ad-hoc sequences, not store fragments).
  explicit OverlapEngine(const align::OverlapParams& params, int rank = 0);

  OverlapEngine(const OverlapEngine&) = delete;
  OverlapEngine& operator=(const OverlapEngine&) = delete;

  /// Banded accept-test alignment for a promising pair in doubled-store
  /// ids, anchored at its maximal match (shift = pos_b - pos_a).
  align::OverlapResult details(std::uint32_t seq_a, std::uint32_t pos_a,
                               std::uint32_t seq_b, std::uint32_t pos_b);

  /// Full worker-side outcome for one pair: fragment ids, orientation
  /// flags, accept bit, and the oriented placement delta.
  ResultMsg align_pair(const PairMsg& pm);

  /// Batch API: one ResultMsg per pair, in order, appended to `out`.
  void run(std::span<const PairMsg> batch, std::vector<ResultMsg>& out);
  std::vector<ResultMsg> run(std::span<const PairMsg> batch);

  /// Full-matrix end-free alignment on arbitrary sequences, sharing the
  /// engine workspace (used by consensus validation).
  align::OverlapResult full_align(align::Seq a, align::Seq b,
                                  const align::AlignOptions& opts = {});
  /// Banded end-free alignment on arbitrary sequences.
  align::OverlapResult banded_align(align::Seq a, align::Seq b,
                                    std::int32_t shift,
                                    const align::AlignOptions& opts = {});

  const align::OverlapParams& params() const noexcept { return params_; }
  const align::Workspace& workspace() const noexcept { return ws_; }
  std::uint64_t pairs_aligned() const noexcept { return pairs_; }

 private:
  void note_batch(std::size_t pairs, double seconds);

  const seq::FragmentStore* doubled_ = nullptr;
  align::OverlapParams params_;
  align::Workspace ws_;
  std::uint64_t pairs_ = 0;
  // Cached instrument handles (null when the tracer is disabled at
  // construction); updates are single relaxed atomics.
  obs::Counter* obs_pairs_ = nullptr;
  obs::Histogram* obs_batch_us_ = nullptr;
  obs::Gauge* obs_ws_bytes_ = nullptr;
  obs::Counter* obs_allocs_ = nullptr;
  obs::Counter* obs_allocs_avoided_ = nullptr;
  std::uint64_t published_allocs_ = 0;
  std::uint64_t published_avoided_ = 0;
};

}  // namespace pgasm::core
