// Wire format for the master-worker clustering protocol (paper Fig. 6).
//
// One worker->master message carries AR (alignment results for the last
// allocated batch) plus NP (a batch of freshly generated promising pairs)
// plus the worker's active/passive flag; one master->worker reply carries
// AW (the next alignment batch) plus r (how many new pairs to send next).
#pragma once

#include <cstdint>
#include <vector>

namespace pgasm::core {

/// A promising pair in global doubled-store ids. POD for send_vector.
struct PairMsg {
  std::uint32_t seq_a = 0, pos_a = 0;
  std::uint32_t seq_b = 0, pos_b = 0;
  std::uint32_t match_len = 0;
};

/// An alignment outcome reported to the master. Carries the implied
/// relative placement (orientation flags + oriented-frame offset) so the
/// master can run the inconsistent-overlap resolution extension.
struct ResultMsg {
  std::uint32_t frag_a = 0;
  std::uint32_t frag_b = 0;
  std::int32_t delta = 0;  ///< start of b's oriented seq relative to a's
  std::uint8_t accepted = 0;
  std::uint8_t rc_a = 0;
  std::uint8_t rc_b = 0;
  std::uint8_t pad = 0;
};

struct WorkerReport {
  std::vector<ResultMsg> results;  ///< AR
  std::vector<PairMsg> new_pairs;  ///< NP
  std::uint8_t exhausted = 0;      ///< worker's generator is done (passive)
};

struct MasterReply {
  std::vector<PairMsg> batch;   ///< AW
  std::uint32_t request_r = 0;  ///< pairs to send in the next report
  std::uint8_t terminate = 0;
};

std::vector<std::uint8_t> encode_report(const WorkerReport& r);
WorkerReport decode_report(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_reply(const MasterReply& r);
MasterReply decode_reply(const std::vector<std::uint8_t>& bytes);

}  // namespace pgasm::core
