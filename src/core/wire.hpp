// Wire format for the master-worker clustering protocol (paper Fig. 6).
//
// One worker->master message carries AR (alignment results for the last
// allocated batch) plus NP (a batch of freshly generated promising pairs)
// plus the worker's active/passive flag and per-role generator progress; one
// master->worker reply carries AW (the next alignment batch) plus r (how
// many new pairs to send next) plus any generator-takeover orders.
//
// ClusterCheckpoint serializes the master's recoverable state (union-find
// labels, pending pairs, generator progress) so a killed run can resume.
//
// Error discipline (DESIGN.md section 10): every decoder is bounds-checked
// and total — a truncated, oversized, mistagged, or internally inconsistent
// payload produces a typed WireError through the try_decode_* entry points,
// never a read past the buffer and never an assert. The legacy throwing
// entry points wrap the same decoders and raise WireFormatError (a
// std::runtime_error) carrying the WireError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pgasm::core {

/// A promising pair in global doubled-store ids. POD for send_vector.
struct PairMsg {
  std::uint32_t seq_a = 0, pos_a = 0;
  std::uint32_t seq_b = 0, pos_b = 0;
  std::uint32_t match_len = 0;
};

/// An alignment outcome reported to the master. Carries the implied
/// relative placement (orientation flags + oriented-frame offset) so the
/// master can run the inconsistent-overlap resolution extension.
struct ResultMsg {
  std::uint32_t frag_a = 0;
  std::uint32_t frag_b = 0;
  std::int32_t delta = 0;  ///< start of b's oriented seq relative to a's
  std::uint8_t accepted = 0;
  std::uint8_t rc_a = 0;
  std::uint8_t rc_b = 0;
  std::uint8_t pad = 0;
};

/// Progress of one pair-generation role (a role = one rank's GST portion;
/// roles migrate to survivors when their owner dies). `emitted` is the
/// absolute position in the role's deterministic pair stream, so a takeover
/// can rebuild the portion and fast-forward to exactly where the dead
/// worker left off.
struct RoleProgress {
  std::uint32_t role = 0;
  std::uint32_t done = 0;
  std::uint64_t emitted = 0;
};

/// Master -> worker order to adopt a dead worker's generation role.
struct TakeoverOrder {
  std::uint32_t role = 0;
  std::uint32_t pad = 0;
  std::uint64_t resume_at = 0;  ///< pairs of the role's stream to skip
};

struct WorkerReport {
  /// 1-based per-worker report sequence number. A retransmitted report
  /// (reply lost or overdue) carries the same seq, so the master can
  /// discard the duplicate and re-send its cached reply instead of folding
  /// the results twice. 0 = unsequenced (never matches a duplicate).
  std::uint64_t seq = 0;
  std::vector<ResultMsg> results;     ///< AR
  std::vector<PairMsg> new_pairs;     ///< NP
  std::vector<RoleProgress> progress; ///< per generation role held
  std::uint8_t exhausted = 0;         ///< all held generators done (passive)
};

struct MasterReply {
  std::uint64_t seq = 0;  ///< echoes the report seq this reply answers
  std::vector<PairMsg> batch;           ///< AW
  std::vector<TakeoverOrder> takeovers; ///< roles to adopt (usually empty)
  std::uint32_t request_r = 0;          ///< pairs to send in the next report
  std::uint8_t terminate = 0;
  /// Passive worker, nothing to align: wait quietly for the next dispatch
  /// or terminate without retransmitting the report (heartbeat pings keep
  /// the worker's master-silence clock fresh meanwhile).
  std::uint8_t park = 0;
};

// --- Typed decode errors ----------------------------------------------------

enum class WireErrc : std::uint8_t {
  kTruncated = 1,   ///< payload ends before a field or element run
  kOversized,       ///< trailing bytes after a complete message
  kBadTag,          ///< leading message-kind tag is not the expected one
  kBadMagic,        ///< checkpoint file does not start with "PGCK"
  kBadVersion,      ///< checkpoint format version not understood
  kCountMismatch,   ///< declared element count contradicts another field
  kBadValue,        ///< a decoded field is outside its legal domain
  kBadCrc,          ///< file frame CRC32 does not match the payload
  kIo,              ///< file missing/unreadable (try_load_* only)
};

/// Stable lowercase name for an error code ("truncated", "bad_tag", ...).
const char* wire_errc_name(WireErrc code) noexcept;

struct WireError {
  WireErrc code = WireErrc::kTruncated;
  std::size_t offset = 0;   ///< byte offset at which decoding failed
  const char* detail = "";  ///< static description of the failed check

  /// "wire: truncated at offset 12 (report results)" — for logs/exceptions.
  std::string message() const;
};

/// Thrown by the legacy decode_*/load_checkpoint entry points; carries the
/// structured error so catch sites can still branch on the code.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const WireError& e)
      : std::runtime_error(e.message()), error_(e) {}
  const WireError& error() const noexcept { return error_; }

 private:
  WireError error_;
};

/// Minimal std::expected-style carrier for decode results (the toolchain is
/// C++20; std::expected arrives in C++23). Holds either the decoded value
/// or a WireError, never both.
template <typename T>
class [[nodiscard]] WireResult {
 public:
  WireResult(T value) : value_(std::move(value)) {}  // NOLINT(*-explicit-*)
  WireResult(WireError error) : error_(error) {}     // NOLINT(*-explicit-*)

  explicit operator bool() const noexcept { return value_.has_value(); }
  bool has_value() const noexcept { return value_.has_value(); }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  const WireError& error() const noexcept { return error_; }

  /// Unwrap, raising WireFormatError when this holds an error.
  T take_or_throw() && {
    if (!value_.has_value()) throw WireFormatError(error_);
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  WireError error_{};
};

// --- Codecs -----------------------------------------------------------------
//
// Every message starts with a one-byte kind tag (kWireKindReport /
// kWireKindReply; checkpoints carry their magic+version header instead), so
// a payload routed to the wrong decoder fails fast with WireErrc::kBadTag
// instead of being misread as a plausible message.

inline constexpr std::uint8_t kWireKindReport = 0x52;  // 'R'
inline constexpr std::uint8_t kWireKindReply = 0x59;   // 'Y'

std::vector<std::uint8_t> encode_report(const WorkerReport& r);
WorkerReport decode_report(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_reply(const MasterReply& r);
MasterReply decode_reply(const std::vector<std::uint8_t>& bytes);

// Zero-copy wire path: encode straight into a vmpi payload buffer (one
// exact-size allocation, POD batches memcpy'd from their spans) so the
// serialized message can be MOVED into the destination mailbox via
// Comm::send_payload, and decode straight from the received payload — no
// intermediate uint8 staging vector on either side.
std::vector<std::byte> encode_report_payload(const WorkerReport& r);
WorkerReport decode_report(std::span<const std::byte> bytes);
std::vector<std::byte> encode_reply_payload(const MasterReply& r);
MasterReply decode_reply(std::span<const std::byte> bytes);

// Non-throwing decoders: the master/worker protocol layers use these so a
// corrupt peer payload is counted and dropped instead of killing the rank.
WireResult<WorkerReport> try_decode_report(std::span<const std::uint8_t> bytes);
WireResult<WorkerReport> try_decode_report(std::span<const std::byte> bytes);
WireResult<MasterReply> try_decode_reply(std::span<const std::uint8_t> bytes);
WireResult<MasterReply> try_decode_reply(std::span<const std::byte> bytes);

/// Master-side recoverable state, written periodically during a run.
/// Invariant at write time: every pair the master has ever received is
/// either reflected in `labels` (merged), filtered out (redundant), or
/// present in `pending` (which includes batches in flight to workers), so
/// resuming loses no work and re-aligns nothing already merged.
struct ClusterCheckpoint {
  std::uint64_t epoch = 0;      ///< checkpoint sequence number, 1-based
  std::uint32_t num_ranks = 0;  ///< ranks of the writing run
  std::uint32_t n_fragments = 0;
  /// Content hash of the input fragment store and of the partition-relevant
  /// clustering parameters (cluster_input_hash / cluster_params_hash).
  /// Resume refuses a checkpoint whose hashes do not match the run's — a
  /// stale file from a different input or configuration would otherwise be
  /// resumed silently and produce a wrong partition. 0 = unknown (hand-built
  /// checkpoints), which skips the check.
  std::uint64_t input_hash = 0;
  std::uint64_t params_hash = 0;
  std::vector<std::uint32_t> labels;  ///< union-find dense labeling
  std::vector<PairMsg> pending;       ///< selected pairs not yet folded
  std::vector<RoleProgress> progress; ///< per-role generation positions
  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_selected = 0;
  std::uint64_t pairs_aligned = 0;
  std::uint64_t pairs_accepted = 0;
  std::uint64_t merges = 0;
  std::uint64_t merges_rejected_inconsistent = 0;
};

std::vector<std::uint8_t> encode_checkpoint(const ClusterCheckpoint& c);
ClusterCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes);

/// Non-throwing checkpoint decode. Beyond framing, validates the semantic
/// invariants a resume relies on: labels.size() == n_fragments and every
/// label value < n_fragments (a corrupt label would index out of bounds in
/// MasterScheduler::restore).
WireResult<ClusterCheckpoint> try_decode_checkpoint(
    std::span<const std::uint8_t> bytes);

// --- CRC-protected file frame ----------------------------------------------
//
// Every durable artifact (PGCK cluster checkpoint, PGMF run manifest, PGGT
// GST checkpoint) is stored inside one on-disk frame:
//
//   [u8 frame_version][u32 crc32(payload)][payload bytes]
//
// The frame is written atomically — temp file, fwrite, fflush, fsync,
// rename — and a load first verifies the CRC before any payload decoder
// runs, so a truncated or bit-flipped file surfaces as a typed
// kBadCrc/kTruncated error and is never trusted. This is the only
// sanctioned way to write checkpoint/manifest files (pgasm-lint W011).

inline constexpr std::uint8_t kFrameVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Atomically write `payload` to `path` wrapped in the CRC frame.
/// Throws std::runtime_error on any filesystem failure (the temp file is
/// removed before throwing).
void save_frame_atomic(const std::string& path,
                       std::span<const std::uint8_t> payload);

/// Read a CRC frame back; returns the verified payload bytes. kIo for
/// filesystem problems, kTruncated for a file shorter than the header,
/// kBadVersion for an unknown frame version, kBadCrc on checksum mismatch.
WireResult<std::vector<std::uint8_t>> try_load_frame(const std::string& path);

/// Atomic write (CRC frame + temp file + fsync + rename) / read of a
/// checkpoint on disk. load_checkpoint throws (WireFormatError or
/// std::runtime_error) if the file is missing or malformed;
/// try_load_checkpoint reports the same conditions as a WireError (kIo for
/// filesystem problems, kBadCrc for torn/corrupt files).
void save_checkpoint(const std::string& path, const ClusterCheckpoint& c);
ClusterCheckpoint load_checkpoint(const std::string& path);
WireResult<ClusterCheckpoint> try_load_checkpoint(const std::string& path);

// --- Run manifest (pipeline recovery supervisor) ----------------------------

/// Per-phase progress entry in a RunManifest. POD for append_vec.
struct PhaseEntry {
  std::uint32_t phase = 0;     ///< pipeline::PhaseId value
  std::uint32_t attempts = 0;  ///< attempts consumed so far
  std::uint8_t completed = 0;
  std::uint8_t degraded = 0;   ///< optional phase skipped after retries
  std::uint8_t pad0 = 0, pad1 = 0;
};

/// The recovery supervisor's durable state: which phases of a pipeline run
/// completed (or were degraded), stamped with the run's input/params hashes
/// so a manifest from a different input or configuration is never resumed.
/// Written as manifest.<generation>.pgmf via the CRC frame; on restart the
/// supervisor picks the newest generation that loads, CRC-checks, and
/// hash-matches, and garbage-collects the rest.
struct RunManifest {
  std::uint64_t generation = 0;  ///< 1-based, monotonically increasing
  std::uint64_t input_hash = 0;
  std::uint64_t params_hash = 0;
  std::vector<PhaseEntry> phases;
};

std::vector<std::uint8_t> encode_manifest(const RunManifest& m);

/// Non-throwing manifest decode: total over arbitrary bytes. Beyond
/// framing, rejects duplicate phase ids (kBadValue) — a manifest listing a
/// phase twice is internally inconsistent.
WireResult<RunManifest> try_decode_manifest(
    std::span<const std::uint8_t> bytes);

void save_manifest(const std::string& path, const RunManifest& m);
WireResult<RunManifest> try_load_manifest(const std::string& path);

// --- GST phase checkpoint ---------------------------------------------------

/// Durable record of a completed fault-tolerant GST construction: the final
/// bucket-owner table every surviving rank agreed on, plus which roles
/// finished building their portion. Resume feeds `bucket_owner` back into
/// build_distributed_gst (ParallelGstParams::resume_bucket_owner) so every
/// rank rebuilds its portion locally and skips all construction traffic.
/// Lives in core (not gst) because core already depends on gst for
/// rebuild_rank_portion, never the other way around.
struct GstCheckpoint {
  std::uint64_t input_hash = 0;
  std::uint64_t params_hash = 0;
  std::uint32_t num_ranks = 0;
  std::uint32_t prefix_w = 0;
  std::vector<std::int32_t> bucket_owner;  ///< size 4^prefix_w, -1 = empty
  std::vector<std::uint8_t> role_done;     ///< size num_ranks
};

std::vector<std::uint8_t> encode_gst_checkpoint(const GstCheckpoint& c);

/// Non-throwing GST-checkpoint decode. Validates the resume invariants:
/// prefix_w in [1, 12], bucket_owner.size() == 4^prefix_w, every owner in
/// [-1, num_ranks), role_done.size() == num_ranks.
WireResult<GstCheckpoint> try_decode_gst_checkpoint(
    std::span<const std::uint8_t> bytes);

void save_gst_checkpoint(const std::string& path, const GstCheckpoint& c);
WireResult<GstCheckpoint> try_load_gst_checkpoint(const std::string& path);

}  // namespace pgasm::core
