// Parameters and statistics for the clustering framework (the paper's
// primary contribution, Sections 4 and 7).
#pragma once

#include <cstdint>
#include <string>

#include "align/overlap.hpp"

namespace pgasm::core {

struct ClusterParams {
  /// ψ: minimum maximal-match length for a promising pair (Section 4).
  std::uint32_t psi = 20;
  /// w: bucket prefix length for the parallel GST build (w <= ψ).
  std::uint32_t prefix_w = 6;
  /// Suffix–prefix alignment acceptance (less stringent than assembly).
  align::OverlapParams overlap{};
  /// b: pairs per dispatched alignment batch (Section 7).
  std::uint32_t batch_size = 256;
  /// Capacity of a worker's New_Pairs_Buf (pairs).
  std::uint32_t new_pairs_buf = 8192;
  /// Capacity of the master's Pending_Work_Buf (pairs).
  std::uint32_t pending_work_buf = 1u << 16;
  /// Fragment-level pair generation with duplicate elimination (Section 5).
  bool dup_elim = true;
  /// Process pairs in decreasing maximal-match order. Setting this false
  /// (ablation) shuffles the pair stream before processing, reproducing
  /// what a lookup-table filter without prioritization would do.
  bool ordered = true;
  /// Workers report with synchronous sends (the paper uses MPI_Ssend to
  /// protect the master's buffers; it costs ~30% — ablation flag).
  bool use_ssend = true;
  /// Target characters per fragment-fetch batch in the GST build.
  std::uint64_t fetch_batch_chars = 1u << 20;
  /// Extension of the paper's future work (Section 10): resolve
  /// inconsistent overlaps during cluster formation. Accepted overlaps
  /// carry an implied relative placement (orientation + offset); a merge
  /// whose placement contradicts the cluster's existing layout is refused.
  /// This curbs repeat-driven giant clusters (single-linkage chaining) at
  /// the cost of making the result order-dependent.
  bool resolve_inconsistent = false;
  /// Placement agreement tolerance (shift difference, bp) for the above.
  std::int64_t placement_tolerance = 12;
  /// Section 7.2 suggestion: scale the dispatch granularity with the
  /// worker count so the master's message rate stays constant as p grows.
  bool adaptive_batch = false;
  /// vmpi transport backend: "thread" (default), "proc" (real forked
  /// processes over shared-memory rings), or "" to defer to the
  /// PGASM_TRANSPORT environment variable. Operational knob — the contig
  /// output is transport-invariant, so it is excluded from
  /// cluster_params_hash (a thread-run checkpoint resumes under proc).
  std::string transport;

  // --- fault tolerance (see DESIGN.md "Fault model & recovery") ---------
  /// Master-side report-probe timeout (seconds) before a failure-detection
  /// round; grows with capped exponential backoff across consecutive quiet
  /// rounds and resets on any received report.
  double worker_timeout = 0.25;
  /// Cap for the backed-off probe timeout (seconds).
  double worker_timeout_cap = 2.0;
  /// Worker-side bound (seconds) on master silence — no reply and no
  /// heartbeat ping — before the worker gives up (TimeoutError aborts the
  /// run; resume from the last checkpoint).
  double master_timeout = 10.0;
  /// Worker-side bound (seconds) on waiting for the reply to a sent report
  /// while the master is otherwise in contact. Heartbeat pings prove the
  /// master alive but not that it received the report, so they must NOT
  /// extend this deadline: on expiry the worker retransmits the report
  /// (same sequence number — the master discards duplicates and re-sends
  /// its cached reply). Without the bound, one dropped report or reply
  /// livelocks the run with both sides looking healthy.
  double reply_timeout = 2.0;
  /// Retransmissions of one report before the worker gives up
  /// (TimeoutError): the reply channel is considered irrecoverably lossy.
  std::uint32_t reply_max_retries = 8;
  /// Write a ClusterCheckpoint every N processed worker reports
  /// (0 = checkpointing disabled). Requires checkpoint_path.
  std::uint32_t checkpoint_every_reports = 0;
  /// Checkpoint file location (written atomically via temp + rename).
  std::string checkpoint_path;
  /// Fault-tolerant GST construction: a rank death during the build phase
  /// is survived (buckets reassigned to confirmed survivors) instead of
  /// aborting the run. Opt-in because the point-to-point protocol adds
  /// user-channel sends, which shifts the send indices FaultPlan rules key
  /// on. Operational knob — excluded from cluster_params_hash.
  bool fault_tolerant_gst = false;
  /// Where to record the final GST bucket-owner table after a
  /// fault-tolerant build (empty = no GST checkpoint). On resume the
  /// recorded table short-circuits construction: every rank rebuilds its
  /// portion locally with zero GST traffic. A ClusterCheckpoint's
  /// generator positions are only meaningful under the table they were
  /// produced with, so resuming clustering requires this file to load.
  std::string gst_checkpoint_path;
};

/// Entry-point sanity check shared by cluster_serial, cluster_parallel and
/// the pipeline: rejects parameter combinations that would not crash but
/// would silently produce a useless clustering (band 0, identity outside
/// (0,1], min_overlap below ψ). Throws std::invalid_argument with a message
/// naming the offending field.
void validate_cluster_params(const ClusterParams& params);

struct ClusterStats {
  std::uint64_t pairs_generated = 0;  ///< promising pairs produced
  std::uint64_t pairs_aligned = 0;    ///< selected for alignment
  std::uint64_t pairs_accepted = 0;   ///< passed the overlap test
  std::uint64_t merges = 0;           ///< cluster unions performed
  /// Accepted overlaps refused because their implied placement conflicts
  /// with the cluster layout (resolve_inconsistent extension only).
  std::uint64_t merges_rejected_inconsistent = 0;

  double gst_seconds = 0;      ///< wall time of the GST phase
  double cluster_seconds = 0;  ///< wall time of pair processing
  /// Modeled parallel times (vmpi cost model); 0 for serial runs.
  double gst_modeled_seconds = 0;
  double cluster_modeled_seconds = 0;
  double master_availability = 0;  ///< 1 - master busy / makespan
  double worker_idle_fraction = 0;

  // --- fault tolerance & recovery ---------------------------------------
  std::uint64_t workers_lost = 0;          ///< workers declared dead
  std::uint64_t batches_reassigned = 0;    ///< in-flight batches requeued
  std::uint64_t pairs_reassigned = 0;      ///< pairs in those batches
  std::uint64_t generator_takeovers = 0;   ///< roles adopted by survivors
  std::uint64_t timeouts_fired = 0;        ///< master probe timeouts
  std::uint64_t heartbeats_sent = 0;       ///< pings from the master
  /// Duplicate (retransmitted) reports the master discarded — each one
  /// means a report's reply was lost or overdue and the cached reply was
  /// re-sent instead of folding the results twice.
  std::uint64_t reports_retransmitted = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t pairs_skipped_resume = 0;  ///< generation fast-forwarded
  std::uint64_t resumed_from_epoch = 0;    ///< 0 = fresh (not resumed) run

  // GST-phase recovery (fault_tolerant_gst runs only; summed over ranks).
  std::uint64_t gst_ranks_recovered = 0;    ///< peer inputs recomputed
  std::uint64_t gst_buckets_reassigned = 0; ///< buckets moved off dead ranks
  std::uint64_t gst_ft_retries = 0;         ///< GST receive timeouts retried
  std::uint64_t gst_resumed = 0;            ///< ranks resumed from the table

  double savings_fraction() const noexcept {
    return pairs_generated == 0
               ? 0.0
               : 1.0 - static_cast<double>(pairs_aligned) /
                           static_cast<double>(pairs_generated);
  }
};

}  // namespace pgasm::core
