// Inconsistent-overlap resolution during cluster formation — the paper's
// Section 10 future-work item, implemented as implied-overlap verification.
//
// The transitive formulation tolerates inconsistent overlaps (paper Fig.
// 2(a)): f1-f2 and f2-f3 may overlap while f1 and f3, which the implied
// layout says must overlap, do not. That is exactly the signature of a
// repeat-induced join: two unrelated regions glued through a shared repeat
// produce a layout whose implied flank overlaps fail the alignment test.
//
// The resolver maintains an orientation-aware layout per cluster (LayoutUF)
// plus per-cluster member placements. Before committing a merge, it selects
// the cluster members whose implied intervals overlap the incoming fragment
// the most and runs the ordinary banded suffix-prefix alignment at the
// layout-implied diagonal. If all the implied overlaps fail, the merge is
// refused. Fragments joined by a single thin edge imply no independent
// overlap, so clean sparse joins are unaffected.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "align/overlap.hpp"
#include "olc/layout.hpp"
#include "seq/fragment_store.hpp"

namespace pgasm::core {

class ConsistencyResolver {
 public:
  /// `doubled` is the forward+RC store (fragment f = sequences 2f, 2f+1).
  ConsistencyResolver(const seq::FragmentStore& doubled,
                      const align::OverlapParams& params,
                      std::int64_t tolerance);

  /// Register an accepted overlap between fragments fa and fb (orientation
  /// flags and oriented-frame offset from the alignment). Returns true if
  /// the merge is geometrically admissible; false if the implied flank
  /// overlaps contradict it. Must be called only for fragments in
  /// different clusters; admitting merges the internal layout.
  bool admit(std::uint32_t fa, std::uint32_t fb, bool rc_a, bool rc_b,
             std::int32_t delta);

  std::uint64_t rejections() const noexcept { return rejections_; }
  std::uint64_t verification_alignments() const noexcept {
    return verifications_;
  }

 private:
  struct Placed {
    std::uint32_t frag;
    olc::Transform to_root;
  };

  /// Fragment interval [start, end) in its root frame.
  std::pair<std::int64_t, std::int64_t> interval(const Placed& p) const;

  /// Check the implied overlap between members x and y expressed in a
  /// common frame (transforms to that frame). True if the alignment test
  /// at the implied diagonal passes.
  bool implied_overlap_holds(std::uint32_t frag_x,
                             const olc::Transform& x_to_f,
                             std::uint32_t frag_y,
                             const olc::Transform& y_to_f);

  const seq::FragmentStore* doubled_;
  align::OverlapParams params_;
  std::int64_t tolerance_;
  olc::LayoutUF layout_;
  std::vector<std::vector<std::uint32_t>> members_;  // frags by root
  std::uint64_t rejections_ = 0;
  std::uint64_t verifications_ = 0;
};

}  // namespace pgasm::core
