#include "core/parallel_cluster.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/consistency.hpp"
#include "core/wire.hpp"
#include "gst/pair_generator.hpp"
#include "gst/parallel_build.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace pgasm::core {

namespace {

constexpr int kTagReport = 101;  // worker -> master
constexpr int kTagReply = 102;   // master -> worker
constexpr int kTagPing = 103;    // master -> worker heartbeat (u64 epoch)
constexpr int kTagAck = 104;     // worker -> master heartbeat ack (u64 epoch)

struct MasterState {
  util::UnionFind uf;
  std::deque<PairMsg> pending;  // Pending_Work_Buf
  std::deque<int> idle;         // Idle_Workers
  // Alignment results dispatched but not yet reported. A worker aligns a
  // batch *after* sending its next report (Fig. 8 masks the reply wait with
  // alignment work), so results lag their dispatch by two reports; the
  // master must keep a worker cycling until its owed results have arrived
  // or merges would be lost at termination.
  std::vector<std::uint64_t> owed;
  std::vector<std::uint8_t> exhausted;  // worker generators done (passive)

  // --- fault tolerance ---------------------------------------------------
  std::vector<std::uint8_t> alive;       // not declared dead
  std::vector<std::uint8_t> terminated;  // terminate reply sent
  // Batches dispatched whose results have not arrived, oldest first. On
  // worker death these are requeued for survivors (replay is idempotent).
  std::vector<std::deque<std::vector<PairMsg>>> in_flight;
  // Generation roles: role r is rank r's GST portion. Owners migrate to
  // survivors on death; positions are absolute in the role's deterministic
  // pair stream, so a takeover fast-forwards to exactly where it stopped.
  std::vector<std::int32_t> role_owner;  // -1 = orphaned
  std::vector<std::uint8_t> role_done;
  std::vector<std::uint64_t> role_pos;
  std::vector<TakeoverOrder> orphans;  // roles awaiting a new owner
  std::uint64_t hb_epoch = 0;          // current heartbeat round
  // Retransmission defence: seq of each worker's last processed report and
  // the encoded bytes of the last reply sent to it. A duplicate report
  // (same seq — the worker's reply went missing) is not re-folded; the
  // cached reply is re-sent instead.
  std::vector<std::uint64_t> last_seq;
  std::vector<std::vector<std::uint8_t>> last_reply;

  // Checkpoint validity: hashes of the input store and the
  // partition-relevant params this run was started with.
  std::uint64_t input_hash = 0;
  std::uint64_t params_hash = 0;

  std::uint64_t generated = 0;  // NP pairs received
  std::uint64_t selected = 0;   // pairs admitted to Pending_Work_Buf
  std::uint64_t aligned = 0;    // results received
  std::uint64_t accepted = 0;
  std::uint64_t merges = 0;
  std::uint64_t rejected_inconsistent = 0;

  std::uint64_t workers_lost = 0;
  std::uint64_t batches_reassigned = 0;
  std::uint64_t pairs_reassigned = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t timeouts_fired = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t reports_retransmitted = 0;
  std::uint64_t pairs_skipped_resume = 0;
  std::uint64_t resumed_from_epoch = 0;
  std::uint64_t ckpt_epoch = 0;
  std::uint64_t reports_since_ckpt = 0;
};

/// Answer any queued heartbeat pings from the master. Returns how many were
/// answered (the worker's master-silence clock resets on contact).
int poll_heartbeats(vmpi::Comm& comm) {
  int n = 0;
  vmpi::Status st;
  while (comm.iprobe(0, kTagPing, &st)) {
    const auto epoch = comm.recv_value<std::uint64_t>(0, kTagPing);
    comm.send_value<std::uint64_t>(0, kTagAck, epoch);
    ++n;
  }
  return n;
}

/// Worker-side wait for the reply answering report `seq`, polling
/// heartbeats in short timeout slices. Pings prove the master alive but not
/// that it got the report, so they do not extend the reply deadline: after
/// params.reply_timeout without a matching reply (and not parked), the
/// report is retransmitted — the master discards the duplicate by seq and
/// re-sends its cached reply, which recovers a dropped report or a dropped
/// reply alike. Throws TimeoutError when the master has failed, has been
/// silent (no reply, no ping) for params.master_timeout seconds, or has
/// not answered params.reply_max_retries retransmissions. A master that
/// finished without this worker ever hearing a terminate (the terminate
/// was lost) is treated as an implied terminate.
MasterReply await_reply(vmpi::Comm& comm, const ClusterParams& params,
                        std::uint64_t seq,
                        const std::vector<std::uint8_t>& report_bytes) {
  util::WallTimer contact;     // master silence: reset by pings and replies
  util::WallTimer reply_wait;  // since the report was (re)sent
  bool parked = false;
  std::uint32_t retransmits = 0;
  for (;;) {
    if (poll_heartbeats(comm) > 0) contact.restart();
    if (comm.rank_failed(0))
      throw vmpi::TimeoutError("worker: master rank failed");
    if (comm.rank_done(0)) {
      vmpi::Status qs;
      if (!comm.iprobe(0, kTagReply, &qs)) {
        // The master finished and nothing is queued for us: our terminate
        // was lost in flight. Act on the implied terminate.
        MasterReply bye;
        bye.terminate = 1;
        return bye;
      }
    }
    const double left = params.master_timeout - contact.elapsed();
    if (left <= 0)
      throw vmpi::TimeoutError("worker: no contact from master within " +
                               std::to_string(params.master_timeout) + "s");
    if (reply_wait.elapsed() >= params.reply_timeout) {
      // Parked retransmits are uncapped keepalives: the park proved the
      // master received the report, and the duplicate solicits the cached
      // reply again in case the eventual dispatch was itself dropped.
      if (!parked && ++retransmits > params.reply_max_retries)
        throw vmpi::TimeoutError(
            "worker: no reply from master after " +
            std::to_string(params.reply_max_retries) + " retransmits");
      obs::instant(comm.rank(), "retransmit", "cluster", "seq", seq, "parked",
                   parked ? 1 : 0);
      if (params.use_ssend) {
        comm.ssend(0, kTagReport, report_bytes.data(), report_bytes.size());
      } else {
        comm.send(0, kTagReport, report_bytes.data(), report_bytes.size());
      }
      reply_wait.restart();
    }
    std::vector<std::uint8_t> raw;
    try {
      raw = comm.recv_vector_timeout<std::uint8_t>(0, kTagReply,
                                                   std::min(0.05, left));
    } catch (const vmpi::TimeoutError&) {
      continue;  // slice expired; answer pings and re-check the bounds
    }
    contact.restart();
    MasterReply reply;
    {
      auto scope = comm.compute_scope();
      reply = decode_reply(raw);
    }
    if (reply.terminate) return reply;
    if (reply.seq != seq) continue;  // stale duplicate of an older reply
    if (reply.park) {
      // Report acknowledged, nothing to do yet: wait for the next dispatch
      // with keepalive (uncapped) retransmission only.
      parked = true;
      retransmits = 0;
      reply_wait.restart();
      continue;
    }
    return reply;
  }
}

void master_loop(vmpi::Comm& comm, const ClusterParams& params,
                 const seq::FragmentStore& doubled, MasterState& st,
                 const ClusterCheckpoint* resume) {
  const int p = comm.size();
  const std::size_t n_fragments = doubled.size() / 2;
  st.uf.reset(n_fragments);
  st.owed.assign(p, 0);
  st.exhausted.assign(p, 0);
  st.alive.assign(p, 1);
  st.terminated.assign(p, 0);
  st.in_flight.assign(p, {});
  st.role_owner.assign(p, -1);
  st.role_done.assign(p, 0);
  st.role_pos.assign(p, 0);
  st.last_seq.assign(p, 0);
  st.last_reply.assign(p, {});
  for (int w = 1; w < p; ++w) st.role_owner[w] = w;

  int active_workers = p - 1;  // workers that may still generate pairs

  if (resume) {
    if (resume->n_fragments != n_fragments)
      throw std::invalid_argument("resume checkpoint fragment count mismatch");
    st.resumed_from_epoch = resume->epoch;
    st.ckpt_epoch = resume->epoch;
    // Dense labels -> union-find: unite each element with the first element
    // seen carrying its label.
    std::vector<std::uint32_t> first(resume->labels.size(),
                                     std::numeric_limits<std::uint32_t>::max());
    for (std::uint32_t i = 0; i < resume->labels.size(); ++i) {
      const std::uint32_t l = resume->labels[i];
      if (first[l] == std::numeric_limits<std::uint32_t>::max()) {
        first[l] = i;
      } else {
        st.uf.unite(first[l], i);
      }
    }
    st.pending.assign(resume->pending.begin(), resume->pending.end());
    // Resume the stats counters where the checkpoint left them, so a
    // resumed run reports totals for the whole logical run (the counters
    // stay consistent: selected - aligned == |pending incl. in-flight|).
    st.generated = resume->pairs_generated;
    st.selected = resume->pairs_selected;
    st.aligned = resume->pairs_aligned;
    st.accepted = resume->pairs_accepted;
    st.merges = resume->merges;
    st.rejected_inconsistent = resume->merges_rejected_inconsistent;
    if (static_cast<int>(resume->num_ranks) == p) {
      // Same topology: fast-forward each role's generator past the pairs
      // the master had already received. Workers read the same checkpoint.
      for (const RoleProgress& e : resume->progress) {
        if (e.role == 0 || static_cast<int>(e.role) >= p) continue;
        st.role_pos[e.role] = e.emitted;
        st.role_done[e.role] = static_cast<std::uint8_t>(e.done != 0);
        if (!e.done) st.pairs_skipped_resume += e.emitted;
      }
      for (int w = 1; w < p; ++w) {
        if (st.role_done[w]) {
          st.exhausted[w] = 1;
          --active_workers;
        }
      }
    }
  }

  // Inconsistent-overlap resolution extension (paper §10 future work). The
  // verification alignments run on the master; they are few (one to three
  // per attempted merge) and are charged to the master's compute ledger.
  std::unique_ptr<ConsistencyResolver> resolver;
  if (params.resolve_inconsistent) {
    resolver = std::make_unique<ConsistencyResolver>(
        doubled, params.overlap, params.placement_tolerance);
  }
  // Section 7.2: keep the master's message arrival rate roughly constant
  // as workers are added by growing the per-dispatch granularity with p.
  const std::uint32_t batch =
      params.adaptive_batch
          ? params.batch_size * std::max(1, (p - 1) / 4)
          : params.batch_size;

  auto compute_r = [&]() -> std::uint32_t {
    // Request as many pairs as needed so that ~batch_size of them are
    // expected to be selected, without overflowing Pending_Work_Buf.
    const double rate =
        st.generated == 0
            ? 1.0
            : std::max(0.02, static_cast<double>(st.selected) /
                                 static_cast<double>(st.generated));
    const std::uint64_t want = static_cast<std::uint64_t>(batch / rate);
    const std::uint64_t room =
        st.pending.size() >= params.pending_work_buf
            ? batch  // keep a trickle flowing; master drops fast
            : (params.pending_work_buf - st.pending.size()) /
                  std::max(1, active_workers);
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        std::min(want, room), batch, params.new_pairs_buf));
  };

  // Every reply echoes the seq of the worker's last processed report and
  // is cached, so a duplicate (retransmitted) report can be answered by
  // re-sending the exact same reply.
  auto send_reply = [&](int worker, MasterReply& reply) {
    reply.seq = st.last_seq[worker];
    const auto bytes = encode_reply(reply);
    st.last_reply[worker] = bytes;
    comm.send(worker, kTagReply, bytes.data(), bytes.size());
  };

  auto dispatch = [&](int worker) {
    MasterReply reply;
    const std::size_t take = std::min<std::size_t>(batch, st.pending.size());
    reply.batch.assign(st.pending.begin(), st.pending.begin() + take);
    st.pending.erase(st.pending.begin(), st.pending.begin() + take);
    if (!st.orphans.empty()) {
      // Hand every orphaned generation role to this worker; it rebuilds the
      // dead rank's GST portion and fast-forwards to the recorded position.
      reply.takeovers = std::move(st.orphans);
      st.orphans.clear();
      for (const TakeoverOrder& t : reply.takeovers) {
        st.role_owner[t.role] = worker;
        ++st.takeovers;
      }
      if (st.exhausted[worker]) {
        st.exhausted[worker] = 0;
        ++active_workers;
      }
    }
    reply.request_r = st.exhausted[worker] ? 0 : compute_r();
    reply.terminate = 0;
    st.owed[worker] += reply.batch.size();
    if (!reply.batch.empty())
      st.in_flight[worker].push_back(reply.batch);
    if (!reply.takeovers.empty()) {
      obs::instant(0, "takeover_assigned", "cluster", "worker",
                   static_cast<std::uint64_t>(worker), "roles",
                   reply.takeovers.size());
    }
    obs::instant(0, "dispatch", "cluster", "worker",
                 static_cast<std::uint64_t>(worker), "pairs",
                 reply.batch.size());
    send_reply(worker, reply);
  };

  int remaining = p - 1;  // workers neither terminated nor declared dead

  auto declare_dead = [&](int w) {
    if (!st.alive[w]) return;
    st.alive[w] = 0;
    ++st.workers_lost;
    --remaining;
    obs::instant(0, "death_declared", "cluster", "worker",
                 static_cast<std::uint64_t>(w), "hb_epoch", st.hb_epoch);
    if (!st.exhausted[w]) {
      st.exhausted[w] = 1;
      --active_workers;
    }
    // Requeue everything in flight: the pairs were never folded, and even
    // if the worker did align some of them before dying, replaying a merge
    // in the union-find is idempotent.
    for (auto& b : st.in_flight[w]) {
      ++st.batches_reassigned;
      st.pairs_reassigned += b.size();
      for (const PairMsg& pm : b) st.pending.push_back(pm);
    }
    st.in_flight[w].clear();
    st.owed[w] = 0;
    for (int role = 1; role < p; ++role) {
      if (st.role_owner[role] == w && !st.role_done[role]) {
        st.role_owner[role] = -1;
        st.orphans.push_back(TakeoverOrder{static_cast<std::uint32_t>(role), 0,
                                           st.role_pos[role]});
      }
    }
    st.idle.erase(std::remove(st.idle.begin(), st.idle.end(), w),
                  st.idle.end());
    // If this declaration is a false positive, the worker is still alive and
    // may be parked waiting on a master that will never contact it again.
    // Send it a terminate so it exits instead of starving past its
    // master_timeout; a genuinely dead rank simply never reads the message.
    MasterReply bye;
    bye.terminate = 1;
    send_reply(w, bye);
    st.terminated[w] = 1;
  };

  // Epoch-stamped heartbeat round. A worker whose report is already queued
  // is alive by definition (this also covers workers blocked in a
  // synchronous send to us). Anyone else gets a ping and a bounded window
  // to ack; non-responders are declared dead. A false positive is safe:
  // the "zombie"'s later reports still fold idempotently and it is
  // terminated on its next contact, at the cost of some duplicated work.
  auto detect_failures = [&]() {
    obs::Span hb_span = obs::span(0, "heartbeat_round", "cluster");
    ++st.hb_epoch;
    std::vector<int> pinged;
    for (int w = 1; w < p; ++w) {
      if (!st.alive[w] || st.terminated[w]) continue;
      if (comm.rank_failed(w)) {
        declare_dead(w);
        continue;
      }
      vmpi::Status s;
      if (comm.iprobe(w, kTagReport, &s)) continue;
      comm.send_value<std::uint64_t>(w, kTagPing, st.hb_epoch);
      ++st.heartbeats_sent;
      pinged.push_back(w);
    }
    hb_span.arg("epoch", st.hb_epoch);
    hb_span.arg("pinged", pinged.size());
    util::WallTimer t;
    while (!pinged.empty()) {
      const double left = params.worker_timeout - t.elapsed();
      if (left <= 0) break;
      try {
        vmpi::Status ack;
        const auto epoch = comm.recv_value_timeout<std::uint64_t>(
            vmpi::kAnySource, kTagAck, left, &ack);
        if (epoch != st.hb_epoch) continue;  // stale ack from an old round
        pinged.erase(std::remove(pinged.begin(), pinged.end(), ack.source),
                     pinged.end());
      } catch (const vmpi::TimeoutError&) {
        break;
      }
    }
    for (int w : pinged) {
      vmpi::Status s;
      if (comm.iprobe(w, kTagReport, &s)) continue;  // reported meanwhile
      declare_dead(w);
    }
  };

  auto feed_idle = [&]() {
    while (!st.idle.empty() &&
           (!st.pending.empty() || !st.orphans.empty())) {
      const int iw = st.idle.front();
      st.idle.pop_front();
      dispatch(iw);
    }
  };

  // Termination: all passive, nothing pending or orphaned, no results in
  // flight from live workers.
  auto try_terminate = [&]() {
    if (active_workers != 0 || !st.pending.empty() || !st.orphans.empty())
      return;
    const bool in_flight =
        std::any_of(st.owed.begin(), st.owed.end(),
                    [](std::uint64_t o) { return o != 0; });
    if (in_flight) return;
    while (!st.idle.empty()) {
      const int iw = st.idle.front();
      st.idle.pop_front();
      MasterReply bye;
      bye.terminate = 1;
      send_reply(iw, bye);
      st.terminated[iw] = 1;
      --remaining;
    }
  };

  auto write_checkpoint = [&]() {
    obs::Span ck_span = obs::span(0, "checkpoint", "cluster");
    auto scope = comm.compute_scope();
    ClusterCheckpoint ck;
    ck.epoch = ++st.ckpt_epoch;
    ck.num_ranks = static_cast<std::uint32_t>(p);
    ck.n_fragments = static_cast<std::uint32_t>(n_fragments);
    ck.input_hash = st.input_hash;
    ck.params_hash = st.params_hash;
    ck.labels = st.uf.labels();
    ck.pending.assign(st.pending.begin(), st.pending.end());
    // In-flight batches are part of the recoverable pending set: their
    // results may never arrive if this run dies.
    for (int w = 1; w < p; ++w)
      for (const auto& b : st.in_flight[w])
        ck.pending.insert(ck.pending.end(), b.begin(), b.end());
    for (int role = 1; role < p; ++role)
      ck.progress.push_back(RoleProgress{static_cast<std::uint32_t>(role),
                                         st.role_done[role],
                                         st.role_pos[role]});
    ck.pairs_generated = st.generated;
    ck.pairs_selected = st.selected;
    ck.pairs_aligned = st.aligned;
    ck.pairs_accepted = st.accepted;
    ck.merges = st.merges;
    ck.merges_rejected_inconsistent = st.rejected_inconsistent;
    save_checkpoint(params.checkpoint_path, ck);
    ++st.checkpoints_written;
    ck_span.arg("epoch", ck.epoch);
    ck_span.arg("pending", ck.pending.size());
  };

  util::ExponentialBackoff probe_backoff(params.worker_timeout, 2.0,
                                         params.worker_timeout_cap);
  // Parked (idle) workers receive no replies; ping them periodically so
  // their master-silence clocks don't expire during long healthy runs.
  util::WallTimer keepalive_timer;
  const double keepalive_every =
      std::max(params.worker_timeout, params.master_timeout / 4.0);
  auto keepalive_idle = [&]() {
    if (keepalive_timer.elapsed() < keepalive_every) return;
    keepalive_timer.restart();
    vmpi::Status s;
    while (comm.iprobe(vmpi::kAnySource, kTagAck, &s))
      (void)comm.recv_value<std::uint64_t>(s.source, kTagAck);
    for (int w : st.idle) {
      if (!st.alive[w]) continue;
      comm.send_value<std::uint64_t>(w, kTagPing, st.hb_epoch);
      ++st.heartbeats_sent;
    }
  };

  while (remaining > 0) {
    vmpi::Status ps;
    try {
      ps = comm.probe_timeout(vmpi::kAnySource, kTagReport,
                              probe_backoff.current());
    } catch (const vmpi::TimeoutError&) {
      ++st.timeouts_fired;
      probe_backoff.advance();
      detect_failures();
      feed_idle();
      try_terminate();
      continue;
    }
    probe_backoff.reset();
    const auto raw = comm.recv_vector<std::uint8_t>(ps.source, kTagReport);
    const int w = ps.source;
    obs::Span report_span = obs::span(0, "report", "cluster");
    report_span.arg("worker", static_cast<std::uint64_t>(w));
    report_span.arg("bytes", raw.size());
    WorkerReport report;
    {
      auto scope = comm.compute_scope();
      report = decode_report(raw);
    }

    if (!st.alive[w]) {
      // A worker we declared dead reported after all: fold its results
      // (idempotent; its batches were requeued, so at worst pairs align
      // twice) and dismiss it. Its roles have new owners — ignore progress.
      auto scope = comm.compute_scope();
      for (const ResultMsg& r : report.results) {
        if (!r.accepted) continue;
        if (resolver && !st.uf.same(r.frag_a, r.frag_b)) {
          if (!resolver->admit(r.frag_a, r.frag_b, r.rc_a != 0, r.rc_b != 0,
                               r.delta)) {
            continue;
          }
        }
        if (st.uf.unite(r.frag_a, r.frag_b)) ++st.merges;
      }
      MasterReply bye;
      bye.terminate = 1;
      send_reply(w, bye);
      continue;
    }

    if (report.seq != 0 && report.seq == st.last_seq[w]) {
      // Retransmitted report: the reply we sent for it was lost or is
      // overdue. Do not fold the results again — re-send the cached reply
      // (dispatch, park, or terminate, whichever it was).
      ++st.reports_retransmitted;
      if (!st.last_reply[w].empty()) {
        comm.send(w, kTagReply, st.last_reply[w].data(),
                  st.last_reply[w].size());
      }
      continue;
    }
    st.last_seq[w] = report.seq;

    {
      auto scope = comm.compute_scope();
      for (const RoleProgress& e : report.progress) {
        if (e.role == 0 || static_cast<int>(e.role) >= p) continue;
        if (st.role_owner[e.role] != w) continue;  // stale claim
        st.role_pos[e.role] = std::max(st.role_pos[e.role], e.emitted);
        if (e.done) st.role_done[e.role] = 1;
      }
      if (!report.results.empty()) {
        st.owed[w] -= std::min<std::uint64_t>(st.owed[w],
                                              report.results.size());
        if (!st.in_flight[w].empty()) st.in_flight[w].pop_front();
      }
      if (report.exhausted && !st.exhausted[w]) {
        st.exhausted[w] = 1;
        --active_workers;
      }

      // Fold in alignment results (merge clusters).
      for (const ResultMsg& r : report.results) {
        ++st.aligned;
        if (!r.accepted) continue;
        ++st.accepted;
        if (resolver && !st.uf.same(r.frag_a, r.frag_b)) {
          if (!resolver->admit(r.frag_a, r.frag_b, r.rc_a != 0, r.rc_b != 0,
                               r.delta)) {
            ++st.rejected_inconsistent;
            continue;
          }
        }
        if (st.uf.unite(r.frag_a, r.frag_b)) ++st.merges;
      }
      // Admit only pairs whose fragments are still in different clusters.
      for (const PairMsg& pm : report.new_pairs) {
        ++st.generated;
        const std::uint32_t fa = pm.seq_a >> 1;
        const std::uint32_t fb = pm.seq_b >> 1;
        if (st.uf.same(fa, fb)) continue;
        st.pending.push_back(pm);
        ++st.selected;
      }
    }

    // Feed idle workers first, then answer the reporter.
    feed_idle();
    if (!st.pending.empty() || !st.orphans.empty() || !st.exhausted[w]) {
      dispatch(w);  // work to do, or more pairs to request
    } else if (st.owed[w] > 0) {
      // Passive but still holding computed-but-unreported results: reply
      // with an empty batch so the next report flushes them.
      dispatch(w);
    } else {
      // Passive, drained, nothing to align right now: park it. The explicit
      // park reply acknowledges the report so the worker stops
      // retransmitting and waits quietly for a dispatch or terminate.
      MasterReply park;
      park.park = 1;
      send_reply(w, park);
      st.idle.push_back(w);
    }

    if (params.checkpoint_every_reports > 0 &&
        !params.checkpoint_path.empty() &&
        ++st.reports_since_ckpt >= params.checkpoint_every_reports) {
      st.reports_since_ckpt = 0;
      write_checkpoint();
    }

    try_terminate();
    keepalive_idle();
  }

  // All workers terminated or dead. If work remains, too many failures.
  const bool roles_open =
      std::any_of(st.role_done.begin() + 1, st.role_done.end(),
                  [](std::uint8_t d) { return d == 0; });
  if (!st.pending.empty() || !st.orphans.empty() || roles_open) {
    throw vmpi::TimeoutError(
        "clustering failed: all workers lost with work remaining");
  }
}

/// One pair-generation role held by a worker: its own GST portion, or a
/// dead rank's portion rebuilt locally after a takeover order.
struct RoleGen {
  int role = 0;
  std::unique_ptr<gst::DistributedGst> owned;  // set for takeovers
  const gst::DistributedGst* dist = nullptr;
  std::unique_ptr<gst::PairGenerator> gen;
};

void worker_loop(vmpi::Comm& comm, const ClusterParams& params,
                 const gst::ParallelGstParams& gp,
                 const seq::FragmentStore& doubled,
                 const gst::DistributedGst& dist,
                 const ClusterCheckpoint* resume) {
  std::vector<RoleGen> gens;

  auto add_role = [&](int role, std::uint64_t resume_at,
                      std::unique_ptr<gst::DistributedGst> owned) {
    RoleGen rg;
    rg.role = role;
    rg.owned = std::move(owned);
    rg.dist = rg.owned ? rg.owned.get() : &dist;
    {
      auto scope = comm.compute_scope();
      rg.gen = std::make_unique<gst::PairGenerator>(
          *rg.dist->tree,
          gst::PairGenParams{.dup_elim = params.dup_elim,
                             .doubled_input = true,
                             .global_ids = &rg.dist->local_to_global});
      // Fast-forward: the stream is deterministic, so skipping resume_at
      // pairs resumes exactly where the previous owner stopped.
      gst::PromisingPair q;
      std::uint64_t done = 0;
      while (done < resume_at && rg.gen->next(q)) {
        ++done;
        if ((done & 0xFFFu) == 0) poll_heartbeats(comm);
      }
    }
    gens.push_back(std::move(rg));
  };

  // Own role, unless a resume checkpoint says it already finished.
  {
    bool my_done = false;
    std::uint64_t my_resume = 0;
    if (resume && static_cast<int>(resume->num_ranks) == comm.size()) {
      for (const RoleProgress& e : resume->progress) {
        if (static_cast<int>(e.role) == comm.rank()) {
          my_done = e.done != 0;
          my_resume = e.emitted;
        }
      }
    }
    if (!my_done) add_role(comm.rank(), my_resume, nullptr);
  }

  auto next_pair = [&](gst::PromisingPair& q) -> bool {
    for (RoleGen& rg : gens) {
      if (rg.gen->next(q)) return true;
    }
    return false;
  };

  std::vector<PairMsg> batch;      // AW: allocated by master last reply
  std::vector<ResultMsg> results;  // AR: results of the previous batch
  std::uint32_t r = params.batch_size;
  std::uint64_t report_seq = 0;

  for (;;) {
    poll_heartbeats(comm);
    // An unsolicited reply can already be queued: a terminate (this worker
    // was declared dead — a false positive, since it is here) or a stale
    // duplicate of the reply just consumed (retransmission crossfire).
    // Consuming a terminate *before* the synchronous report send closes the
    // deadlock window where the master stops listening while this worker
    // blocks in ssend; duplicates are simply discarded.
    {
      bool terminated = false;
      vmpi::Status qs;
      while (comm.iprobe(0, kTagReply, &qs)) {
        const auto raw = comm.recv_vector<std::uint8_t>(0, kTagReply);
        if (decode_reply(raw).terminate) {
          terminated = true;
          break;
        }
      }
      if (terminated) break;
    }
    WorkerReport report;
    report.seq = ++report_seq;
    report.results = std::move(results);
    results.clear();
    {
      obs::Span gen_span = obs::span(comm.rank(), "generate_pairs", "cluster");
      auto scope = comm.compute_scope();
      gst::PromisingPair q;
      const std::uint32_t want = std::min(r, params.new_pairs_buf);
      while (report.new_pairs.size() < want && next_pair(q)) {
        // The generator already emits global doubled-store ids in
        // canonical orientation (global_ids translation).
        report.new_pairs.push_back(
            PairMsg{q.seq_a, q.pos_a, q.seq_b, q.pos_b, q.match_len});
      }
      bool all_done = true;
      for (const RoleGen& rg : gens) {
        report.progress.push_back(
            RoleProgress{static_cast<std::uint32_t>(rg.role),
                         rg.gen->done() ? 1u : 0u, rg.gen->pairs_emitted()});
        if (!rg.gen->done()) all_done = false;
      }
      report.exhausted = all_done ? 1 : 0;
      gen_span.arg("pairs", report.new_pairs.size());
    }
    const auto bytes = encode_report(report);
    if (params.use_ssend) {
      comm.ssend(0, kTagReport, bytes.data(), bytes.size());
    } else {
      comm.send(0, kTagReport, bytes.data(), bytes.size());
    }

    // Mask the wait for the master's reply with the alignment work of the
    // batch allocated in the previous iteration (Fig. 8). Chunked so
    // heartbeat pings are answered even during long alignment stretches.
    obs::Span align_span =
        batch.empty() ? obs::Span()
                      : obs::span(comm.rank(), "align_batch", "cluster");
    align_span.arg("pairs", batch.size());
    std::size_t ai = 0;
    while (ai < batch.size()) {
      poll_heartbeats(comm);
      auto scope = comm.compute_scope();
      const std::size_t chunk_end = std::min(batch.size(), ai + 64);
      for (; ai < chunk_end; ++ai) {
        const PairMsg& pm = batch[ai];
        ResultMsg res;
        res.frag_a = pm.seq_a >> 1;
        res.frag_b = pm.seq_b >> 1;
        res.rc_a = static_cast<std::uint8_t>(pm.seq_a & 1u);
        res.rc_b = static_cast<std::uint8_t>(pm.seq_b & 1u);
        const auto od = pair_overlap_details(doubled, pm.seq_a, pm.pos_a,
                                             pm.seq_b, pm.pos_b,
                                             params.overlap);
        res.accepted = align::accept_overlap(od, params.overlap) ? 1 : 0;
        res.delta = static_cast<std::int32_t>(od.aln.a_begin) -
                    static_cast<std::int32_t>(od.aln.b_begin);
        results.push_back(res);
      }
    }
    batch.clear();
    align_span.finish();

    const MasterReply reply = await_reply(comm, params, report_seq, bytes);
    if (reply.terminate) break;
    batch = std::move(reply.batch);
    r = reply.request_r;
    for (const TakeoverOrder& order : reply.takeovers) {
      obs::instant(comm.rank(), "takeover", "cluster", "role",
                   static_cast<std::uint64_t>(order.role), "resume_at",
                   order.resume_at);
      std::unique_ptr<gst::DistributedGst> portion;
      {
        auto scope = comm.compute_scope();
        portion = std::make_unique<gst::DistributedGst>(gst::rebuild_rank_portion(
            doubled, dist.bucket_owner, static_cast<int>(order.role), gp));
      }
      add_role(static_cast<int>(order.role), order.resume_at,
               std::move(portion));
    }
  }
}

}  // namespace

std::uint64_t cluster_input_hash(const seq::FragmentStore& fragments) {
  // FNV-1a per fragment (codes + length), folded through splitmix64 so
  // fragment boundaries and order matter.
  std::uint64_t h = 0x50474153ULL ^
                    (fragments.size() * 0x9e3779b97f4a7c15ULL);
  for (seq::FragmentId id = 0; id < fragments.size(); ++id) {
    const auto s = fragments.seq(id);
    std::uint64_t f = 0xcbf29ce484222325ULL;
    for (const auto c : s) {
      f ^= static_cast<std::uint64_t>(c);
      f *= 0x100000001b3ULL;
    }
    std::uint64_t state = h ^ f ^ (s.size() + 1);
    h = util::splitmix64(state);
  }
  return h;
}

std::uint64_t cluster_params_hash(const ClusterParams& params) {
  // Only fields that influence the resulting partition or the pair streams
  // a checkpoint's generator positions refer to. Operational knobs
  // (timeouts, checkpoint cadence, ssend ablation) are deliberately left
  // out: changing them between a run and its resume is legitimate.
  std::uint64_t h = 0x636b70682d7632ULL;  // "ckph-v2"
  auto mix = [&h](std::uint64_t v) {
    std::uint64_t state = h ^ v;
    h = util::splitmix64(state);
  };
  auto mix_double = [&](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(params.psi);
  mix(params.prefix_w);
  mix(static_cast<std::uint64_t>(params.overlap.scoring.match));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.mismatch));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.gap));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.gap_open));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.gap_extend));
  mix(params.overlap.min_overlap);
  mix_double(params.overlap.min_identity);
  mix(params.overlap.band);
  mix(params.batch_size);
  mix(params.dup_elim ? 1 : 0);
  mix(params.ordered ? 1 : 0);
  mix(params.resolve_inconsistent ? 1 : 0);
  mix(static_cast<std::uint64_t>(params.placement_tolerance));
  mix(params.adaptive_batch ? 1 : 0);
  return h;
}

ParallelClusterResult cluster_parallel(const seq::FragmentStore& fragments,
                                       const ClusterParams& params,
                                       int num_ranks,
                                       vmpi::CostParams cost_params,
                                       const vmpi::FaultPlan& faults,
                                       const ClusterCheckpoint* resume) {
  if (num_ranks < 2)
    throw std::invalid_argument("cluster_parallel needs >= 2 ranks");
  if (!params.ordered)
    throw std::invalid_argument(
        "the unordered ablation is serial-only (cluster_serial)");

  ParallelClusterResult result;
  const seq::FragmentStore doubled = seq::make_doubled_store(fragments);

  // Per-rank busy seconds at the GST/clustering phase boundary.
  std::vector<double> gst_busy(num_ranks, 0.0);
  std::vector<double> gst_wall(num_ranks, 0.0);
  MasterState master;
  master.input_hash = cluster_input_hash(fragments);
  master.params_hash = cluster_params_hash(params);
  if (resume) {
    if (resume->n_fragments != fragments.size())
      throw std::invalid_argument(
          "resume checkpoint fragment count mismatch");
    if (resume->input_hash != 0 && resume->input_hash != master.input_hash)
      throw std::invalid_argument(
          "resume checkpoint was written for a different input");
    if (resume->params_hash != 0 && resume->params_hash != master.params_hash)
      throw std::invalid_argument(
          "resume checkpoint was written with different clustering "
          "parameters");
  }

  util::WallTimer total_timer;
  vmpi::Runtime rt(num_ranks, cost_params, faults);
  result.cost = rt.run([&](vmpi::Comm& comm) {
    util::WallTimer phase_timer;
    gst::ParallelGstParams gp;
    gp.gst = gst::GstParams{.min_match = params.psi,
                            .prefix_w = params.prefix_w};
    gp.fetch_batch_chars = params.fetch_batch_chars;
    gp.exclude_rank0 = true;
    auto dist = gst::build_distributed_gst(comm, doubled, gp);
    comm.barrier();
    gst_busy[comm.rank()] = comm.ledger().busy_seconds();
    gst_wall[comm.rank()] = phase_timer.elapsed();

    if (comm.rank() == 0) {
      master_loop(comm, params, doubled, master, resume);
    } else {
      worker_loop(comm, params, gp, doubled, dist, resume);
    }
  });
  const double total_wall = total_timer.elapsed();

  result.clusters = std::move(master.uf);
  ClusterStats& stats = result.stats;
  stats.pairs_generated = master.generated;
  stats.pairs_aligned = master.aligned;
  stats.pairs_accepted = master.accepted;
  stats.merges = master.merges;
  stats.merges_rejected_inconsistent = master.rejected_inconsistent;
  stats.workers_lost = master.workers_lost;
  stats.batches_reassigned = master.batches_reassigned;
  stats.pairs_reassigned = master.pairs_reassigned;
  stats.generator_takeovers = master.takeovers;
  stats.timeouts_fired = master.timeouts_fired;
  stats.heartbeats_sent = master.heartbeats_sent;
  stats.reports_retransmitted = master.reports_retransmitted;
  stats.checkpoints_written = master.checkpoints_written;
  stats.pairs_skipped_resume = master.pairs_skipped_resume;
  stats.resumed_from_epoch = master.resumed_from_epoch;

  double gst_model = 0, total_model = 0;
  for (int rk = 0; rk < num_ranks; ++rk) {
    gst_model = std::max(gst_model, gst_busy[rk]);
    total_model = std::max(total_model, result.cost.per_rank[rk].busy_seconds());
    stats.gst_seconds = std::max(stats.gst_seconds, gst_wall[rk]);
  }
  stats.gst_modeled_seconds = gst_model;
  stats.cluster_modeled_seconds = std::max(0.0, total_model - gst_model);
  stats.cluster_seconds = std::max(0.0, total_wall - stats.gst_seconds);

  // Publish the clustering counters into the metrics registry (rank 0 owns
  // the master state) so ClusterStats and the obs export agree.
  if (obs::tracer().enabled()) {
    auto& reg = obs::registry();
    const char* phase = obs::current_phase();
    const auto c = [&](const char* name, std::uint64_t v) {
      reg.counter(name, 0, phase).inc(v);
    };
    c("cluster.pairs_generated", master.generated);
    c("cluster.pairs_selected", master.selected);
    c("cluster.pairs_aligned", master.aligned);
    c("cluster.pairs_accepted", master.accepted);
    c("cluster.merges", master.merges);
    c("cluster.merges_rejected_inconsistent", master.rejected_inconsistent);
    c("cluster.workers_lost", master.workers_lost);
    c("cluster.batches_reassigned", master.batches_reassigned);
    c("cluster.pairs_reassigned", master.pairs_reassigned);
    c("cluster.takeovers", master.takeovers);
    c("cluster.probe_timeouts", master.timeouts_fired);
    c("cluster.heartbeats_sent", master.heartbeats_sent);
    c("cluster.checkpoints_written", master.checkpoints_written);
    c("cluster.reports_retransmitted", master.reports_retransmitted);
    c("cluster.pairs_skipped_resume", master.pairs_skipped_resume);
    reg.gauge("cluster.gst_seconds", 0, phase).set(stats.gst_seconds);
    reg.gauge("cluster.cluster_seconds", 0, phase).set(stats.cluster_seconds);
  }

  const double makespan = result.cost.modeled_parallel_seconds();
  if (makespan > 0) {
    stats.master_availability =
        1.0 - result.cost.per_rank[0].busy_seconds() / makespan;
    double idle = 0;
    for (int rk = 1; rk < num_ranks; ++rk) {
      idle += (makespan - result.cost.per_rank[rk].busy_seconds()) / makespan;
    }
    stats.worker_idle_fraction = idle / std::max(1, num_ranks - 1);
  }
  return result;
}

}  // namespace pgasm::core
