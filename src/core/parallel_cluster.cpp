// Coordinator for the parallel master-worker clustering run. The three
// concerns the loop used to interleave live in their own translation units:
// message protocol (tags, heartbeats, report/reply retransmission) in
// cluster_protocol.*, master scheduling policy and recoverable state in
// cluster_scheduler.*, and the per-pair alignment compute in
// core::OverlapEngine. This file only wires them together: the master pump
// (probe -> fold -> dispatch/park -> checkpoint -> terminate) and the
// worker cycle (generate -> report -> align previous batch -> await reply).
#include "core/parallel_cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>

#include "core/cluster_protocol.hpp"
#include "core/cluster_scheduler.hpp"
#include "core/overlap_engine.hpp"
#include "gst/pair_generator.hpp"
#include "gst/parallel_build.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/deterministic.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace pgasm::core {

namespace {

// Stash keys for per-rank phase-boundary results (Comm::stash_value).
// These ride the exit blob on the proc transport, so they must be
// trivially copyable values, not pointers into rank memory.
constexpr std::uint32_t kStashGstStats = 0x6773;  // "gs": gst::GstBuildStats
constexpr std::uint32_t kStashGstBusy = 0x6762;   // "gb": double, ledger busy
constexpr std::uint32_t kStashGstWall = 0x6777;   // "gw": double, wall secs

// The pump below implements the MasterState machine declared in
// cluster_protocol.hpp (kMasterTransitions); the [MasterState::k*] markers
// tie each region to its state so tools/protocol_check's reachability
// argument reads against the code. Everything here — scheduler, reply
// channel, checkpoint cadence — is thread-confined to the rank-0 thread:
// no locks by design, which is why none of it carries PGASM_GUARDED_BY.
void master_loop(vmpi::Comm& comm, const ClusterParams& params,
                 MasterScheduler& sched, const ClusterCheckpoint* resume) {
  const int p = comm.size();
  if (resume) sched.restore(*resume);
  ReplyChannel replies(p);

  auto send_terminate = [&](int w) {
    MasterReply bye;
    bye.terminate = 1;
    replies.send(comm, w, bye);
  };

  auto declare_dead = [&](int w) {
    if (!sched.alive[w]) return;
    sched.note_death(w);
    // If this declaration is a false positive, the worker is still alive and
    // may be parked waiting on a master that will never contact it again.
    // Send it a terminate so it exits instead of starving past its
    // master_timeout; a genuinely dead rank simply never reads the message.
    send_terminate(w);
  };

  auto dispatch = [&](int w) {
    MasterReply reply = sched.make_dispatch(w);
    replies.send(comm, w, reply);
  };

  auto feed_idle = [&]() {
    while (sched.can_feed()) dispatch(sched.pop_idle());
  };

  auto try_terminate = [&]() {
    for (int w : sched.drain_idle_if_complete()) send_terminate(w);
  };

  auto write_checkpoint = [&]() {
    obs::Span ck_span = obs::span(0, "checkpoint", "cluster");
    auto scope = comm.compute_scope();
    const ClusterCheckpoint ck = sched.build_checkpoint();
    const auto bytes = encode_checkpoint(ck);
    save_frame_atomic(params.checkpoint_path,
                      std::span<const std::uint8_t>(bytes));
    if (obs::tracer().enabled()) {
      obs::registry()
          .counter("recovery.checkpoint_bytes", 0, obs::current_phase())
          .inc(bytes.size() + 5);  // + frame header
    }
    ck_span.arg("epoch", ck.epoch);
    ck_span.arg("pending", ck.pending.size());
  };

  util::ExponentialBackoff probe_backoff(params.worker_timeout, 2.0,
                                         params.worker_timeout_cap);
  // Parked (idle) workers receive no replies; ping them periodically so
  // their master-silence clocks don't expire during long healthy runs.
  util::WallTimer keepalive_timer;
  const double keepalive_every =
      std::max(params.worker_timeout, params.master_timeout / 4.0);

  while (sched.remaining > 0) {
    // [MasterState::kProbe]
    vmpi::Status ps;
    try {
      ps = comm.probe_timeout(vmpi::kAnySource, to_tag(MsgKind::kReport),
                              probe_backoff.current());
    } catch (const vmpi::TimeoutError&) {
      // [MasterState::kHeartbeat]
      ++sched.timeouts_fired;
      probe_backoff.advance();
      heartbeat_round(comm, params, ++sched.hb_epoch, sched.alive,
                      sched.terminated, sched.heartbeats_sent, declare_dead);
      feed_idle();
      try_terminate();
      continue;
    }
    // [MasterState::kFold]
    probe_backoff.reset();
    const int w = ps.source;
    obs::Span report_span = obs::span(0, "report", "cluster");
    report_span.arg("worker", static_cast<std::uint64_t>(w));
    auto decoded = recv_report(comm, w);
    if (!decoded) {
      // Undecodable report (already counted by the protocol layer): drop
      // it. The worker's reply timer will retransmit; a healthy retransmit
      // decodes fine, and a persistently corrupt worker starves into the
      // heartbeat death path.
      continue;
    }
    const WorkerReport report = std::move(decoded).value();

    if (!sched.alive[w]) {
      // A worker we declared dead reported after all: fold its results
      // (idempotent; its batches were requeued, so at worst pairs align
      // twice) and dismiss it. Its roles have new owners — ignore progress.
      {
        auto scope = comm.compute_scope();
        sched.fold_zombie_results(report);
      }
      send_terminate(w);
      continue;
    }

    if (replies.is_duplicate(w, report.seq)) {
      // Retransmitted report: the reply we sent for it was lost or is
      // overdue. Do not fold the results again — re-send the cached reply
      // (dispatch, park, or terminate, whichever it was).
      ++sched.reports_retransmitted;
      replies.resend_cached(comm, w);
      continue;
    }
    replies.note_seq(w, report.seq);

    {
      auto scope = comm.compute_scope();
      sched.fold_report(w, report);
    }

    // [MasterState::kDispatch]
    // Feed idle workers first, then answer the reporter: dispatch while it
    // has work to do, results owed, or pairs left to generate; park it
    // otherwise (the explicit park acknowledges the report so the worker
    // stops retransmitting and waits quietly for a dispatch or terminate).
    feed_idle();
    if (sched.wants_dispatch(w)) {
      dispatch(w);
    } else {
      MasterReply parked;
      parked.park = 1;
      replies.send(comm, w, parked);
      sched.park(w);
    }

    // [MasterState::kCheckpoint]
    if (params.checkpoint_every_reports > 0 &&
        !params.checkpoint_path.empty() &&
        ++sched.reports_since_ckpt >= params.checkpoint_every_reports) {
      sched.reports_since_ckpt = 0;
      write_checkpoint();
    }

    try_terminate();
    if (keepalive_timer.elapsed() >= keepalive_every) {
      keepalive_timer.restart();
      keepalive_pings(comm, sched.idle, sched.alive, sched.hb_epoch,
                      sched.heartbeats_sent);
    }
  }

  // [MasterState::kTerminate]
  // All workers terminated or dead. If work remains, too many failures.
  if (sched.work_remaining()) {
    throw vmpi::TimeoutError(
        "clustering failed: all workers lost with work remaining");
  }

  // Shutdown drain: until every worker has exited (free — the runtime joins
  // their threads right after this returns anyway), keep consuming heartbeat
  // acks and retransmitted reports that crossed a terminate in flight. The
  // receive also matters for liveness under use_ssend: a written-off worker
  // can be parked inside a synchronous report send that only completes when
  // the message is consumed. Draining after the done-check is what makes the
  // final sweep complete — anything a worker sent is queued here by the time
  // rank_done() reads true — so a fault-free causal trace ends with zero
  // unmatched sends.
  for (;;) {
    bool all_done = true;
    for (int w = 1; w < p; ++w) {
      if (!comm.rank_done(w) && !comm.rank_failed(w)) all_done = false;
    }
    drain_worker_traffic(comm);
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// One pair-generation role held by a worker: its own GST portion, or a
/// dead rank's portion rebuilt locally after a takeover order.
struct RoleGen {
  int role = 0;
  std::unique_ptr<gst::DistributedGst> owned;  // set for takeovers
  const gst::DistributedGst* dist = nullptr;
  std::unique_ptr<gst::PairGenerator> gen;
};

// The worker pump. Its phases follow core::kWorkerTransitions — the
// `[WorkerState::k*]` markers below are machine-checked against that table
// by tools/protocol_check, and tools/verify/pgasm-model exhaustively
// explores the composed master×worker×channel state space built from it.
void worker_loop(vmpi::Comm& comm, const ClusterParams& params,
                 const gst::ParallelGstParams& gp,
                 const seq::FragmentStore& doubled,
                 const gst::DistributedGst& dist,
                 const ClusterCheckpoint* resume) {
  std::vector<RoleGen> gens;
  OverlapEngine engine(doubled, params.overlap, comm.rank());

  auto add_role = [&](int role, std::uint64_t resume_at,
                      std::unique_ptr<gst::DistributedGst> owned) {
    RoleGen rg;
    rg.role = role;
    rg.owned = std::move(owned);
    rg.dist = rg.owned ? rg.owned.get() : &dist;
    {
      auto scope = comm.compute_scope();
      rg.gen = std::make_unique<gst::PairGenerator>(
          *rg.dist->tree,
          gst::PairGenParams{.dup_elim = params.dup_elim,
                             .doubled_input = true,
                             .global_ids = &rg.dist->local_to_global});
      // Fast-forward: the stream is deterministic, so skipping resume_at
      // pairs resumes exactly where the previous owner stopped.
      gst::PromisingPair q;
      std::uint64_t done = 0;
      while (done < resume_at && rg.gen->next(q)) {
        ++done;
        if ((done & 0xFFFu) == 0) poll_heartbeats(comm);
      }
    }
    gens.push_back(std::move(rg));
  };

  // Own role, unless a resume checkpoint says it already finished.
  {
    bool my_done = false;
    std::uint64_t my_resume = 0;
    if (resume && static_cast<int>(resume->num_ranks) == comm.size()) {
      for (const RoleProgress& e : resume->progress) {
        if (static_cast<int>(e.role) == comm.rank()) {
          my_done = e.done != 0;
          my_resume = e.emitted;
        }
      }
    }
    if (!my_done) add_role(comm.rank(), my_resume, nullptr);
  }

  auto next_pair = [&](gst::PromisingPair& q) -> bool {
    for (RoleGen& rg : gens) {
      if (rg.gen->next(q)) return true;
    }
    return false;
  };

  std::vector<PairMsg> batch;      // AW: allocated by master last reply
  std::vector<ResultMsg> results;  // AR: results of the previous batch
  std::uint32_t r = params.batch_size;
  std::uint64_t report_seq = 0;

  for (;;) {
    // [WorkerState::kGenerate]
    poll_heartbeats(comm);
    // An unsolicited reply can already be queued: a terminate (this worker
    // was declared dead — a false positive, since it is here) or a stale
    // duplicate of the reply just consumed (retransmission crossfire).
    // Consuming a terminate *before* the synchronous report send closes the
    // deadlock window where the master stops listening while this worker
    // blocks in ssend; duplicates are simply discarded.
    if (consume_pending_terminate(comm)) break;
    WorkerReport report;
    report.seq = ++report_seq;
    report.results = std::move(results);
    results.clear();
    {
      obs::Span gen_span = obs::span(comm.rank(), "generate_pairs", "cluster");
      auto scope = comm.compute_scope();
      gst::PromisingPair q;
      const std::uint32_t want = std::min(r, params.new_pairs_buf);
      while (report.new_pairs.size() < want && next_pair(q)) {
        // The generator already emits global doubled-store ids in
        // canonical orientation (global_ids translation).
        report.new_pairs.push_back(
            PairMsg{q.seq_a, q.pos_a, q.seq_b, q.pos_b, q.match_len});
      }
      bool all_done = true;
      for (const RoleGen& rg : gens) {
        report.progress.push_back(
            RoleProgress{static_cast<std::uint32_t>(rg.role),
                         rg.gen->done() ? 1u : 0u, rg.gen->pairs_emitted()});
        if (!rg.gen->done()) all_done = false;
      }
      report.exhausted = all_done ? 1 : 0;
      gen_span.arg("pairs", report.new_pairs.size());
    }
    // [WorkerState::kSendReport]
    send_report(comm, params, report);

    // [WorkerState::kAlign]
    // Mask the wait for the master's reply with the alignment work of the
    // batch allocated in the previous iteration (Fig. 8). Chunked so
    // heartbeat pings are answered even during long alignment stretches.
    obs::Span align_span =
        batch.empty() ? obs::Span()
                      : obs::span(comm.rank(), "align_batch", "cluster");
    align_span.arg("pairs", batch.size());
    const std::span<const PairMsg> pairs(batch);
    std::size_t ai = 0;
    while (ai < pairs.size()) {
      poll_heartbeats(comm);
      auto scope = comm.compute_scope();
      const std::size_t chunk = std::min<std::size_t>(64, pairs.size() - ai);
      engine.run(pairs.subspan(ai, chunk), results);
      ai += chunk;
    }
    batch.clear();
    align_span.finish();

    // [WorkerState::kAwaitReply]
    const MasterReply reply = await_reply(comm, params, report_seq, report);
    if (reply.terminate) break;

    // [WorkerState::kApplyReply]
    batch = std::move(reply.batch);
    r = reply.request_r;
    for (const TakeoverOrder& order : reply.takeovers) {
      obs::instant(comm.rank(), "takeover", "cluster", "role",
                   static_cast<std::uint64_t>(order.role), "resume_at",
                   order.resume_at);
      std::unique_ptr<gst::DistributedGst> portion;
      {
        auto scope = comm.compute_scope();
        portion = std::make_unique<gst::DistributedGst>(
            gst::rebuild_rank_portion(doubled, dist.bucket_owner,
                                      static_cast<int>(order.role), gp));
      }
      add_role(static_cast<int>(order.role), order.resume_at,
               std::move(portion));
    }
  }
  // [WorkerState::kShutdown]
  drain_shutdown_messages(comm);
}

}  // namespace

std::uint64_t cluster_input_hash(const seq::FragmentStore& fragments) {
  // FNV-1a per fragment (codes + length), folded through splitmix64 so
  // fragment boundaries and order matter.
  std::uint64_t h = 0x50474153ULL ^
                    (fragments.size() * 0x9e3779b97f4a7c15ULL);
  for (seq::FragmentId id = 0; id < fragments.size(); ++id) {
    const auto s = fragments.seq(id);
    std::uint64_t f = 0xcbf29ce484222325ULL;
    for (const auto c : s) {
      f ^= static_cast<std::uint64_t>(c);
      f *= 0x100000001b3ULL;
    }
    std::uint64_t state = h ^ f ^ (s.size() + 1);
    h = util::splitmix64(state);
  }
  return h;
}

std::uint64_t cluster_params_hash(const ClusterParams& params) {
  // Only fields that influence the resulting partition or the pair streams
  // a checkpoint's generator positions refer to. Operational knobs
  // (timeouts, checkpoint cadence, ssend ablation) are deliberately left
  // out: changing them between a run and its resume is legitimate.
  std::uint64_t h = 0x636b70682d7632ULL;  // "ckph-v2"
  auto mix = [&h](std::uint64_t v) {
    std::uint64_t state = h ^ v;
    h = util::splitmix64(state);
  };
  auto mix_double = [&](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(params.psi);
  mix(params.prefix_w);
  mix(static_cast<std::uint64_t>(params.overlap.scoring.match));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.mismatch));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.gap));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.gap_open));
  mix(static_cast<std::uint64_t>(params.overlap.scoring.gap_extend));
  mix(params.overlap.min_overlap);
  mix_double(params.overlap.min_identity);
  mix(params.overlap.band);
  mix(params.batch_size);
  mix(params.dup_elim ? 1 : 0);
  mix(params.ordered ? 1 : 0);
  mix(params.resolve_inconsistent ? 1 : 0);
  mix(static_cast<std::uint64_t>(params.placement_tolerance));
  mix(params.adaptive_batch ? 1 : 0);
  return h;
}

ParallelClusterResult cluster_parallel(const seq::FragmentStore& fragments,
                                       const ClusterParams& params,
                                       int num_ranks,
                                       vmpi::CostParams cost_params,
                                       const vmpi::FaultPlan& faults,
                                       const ClusterCheckpoint* resume) {
  if (num_ranks < 2)
    throw std::invalid_argument("cluster_parallel needs >= 2 ranks");
  if (!params.ordered)
    throw std::invalid_argument(
        "the unordered ablation is serial-only (cluster_serial)");
  validate_cluster_params(params);

  ParallelClusterResult result;
  const seq::FragmentStore doubled = seq::make_doubled_store(fragments);

  MasterScheduler sched(doubled, params, num_ranks);
  sched.input_hash = cluster_input_hash(fragments);
  sched.params_hash = cluster_params_hash(params);
  if (resume) {
    if (resume->n_fragments != fragments.size())
      throw std::invalid_argument(
          "resume checkpoint fragment count mismatch");
    if (resume->input_hash != 0 && resume->input_hash != sched.input_hash)
      throw std::invalid_argument(
          "resume checkpoint was written for a different input");
    if (resume->params_hash != 0 && resume->params_hash != sched.params_hash)
      throw std::invalid_argument(
          "resume checkpoint was written with different clustering "
          "parameters");
  }

  // Fault-tolerant GST resume: if a recorded owner table matches this run
  // (ranks, prefix, hashes), every rank rebuilds its portion locally and
  // construction traffic is skipped entirely. A ClusterCheckpoint's
  // generator positions are only meaningful under the table they were
  // produced with, so a cluster resume without the table must refuse
  // rather than replay positions against a differently-shaped portion.
  std::vector<std::int32_t> gst_resume_table;
  if (params.fault_tolerant_gst && !params.gst_checkpoint_path.empty()) {
    auto loaded = try_load_gst_checkpoint(params.gst_checkpoint_path);
    if (loaded) {
      GstCheckpoint gck = std::move(loaded).take_or_throw();
      if (gck.num_ranks == static_cast<std::uint32_t>(num_ranks) &&
          gck.prefix_w == params.prefix_w &&
          (gck.input_hash == 0 || gck.input_hash == sched.input_hash) &&
          (gck.params_hash == 0 || gck.params_hash == sched.params_hash)) {
        gst_resume_table = std::move(gck.bucket_owner);
      }
    }
  }
  if (resume && params.fault_tolerant_gst && gst_resume_table.empty()) {
    throw std::invalid_argument(
        "resume checkpoint requires the GST checkpoint it was written "
        "under (missing, corrupt, or mismatched gst_checkpoint_path)");
  }

  util::WallTimer total_timer;
  vmpi::Runtime rt(num_ranks, params.transport, cost_params, faults);
  result.cost = rt.run([&](vmpi::Comm& comm) {
    util::WallTimer phase_timer;
    gst::ParallelGstParams gp;
    gp.gst = gst::GstParams{.min_match = params.psi,
                            .prefix_w = params.prefix_w};
    gp.fetch_batch_chars = params.fetch_batch_chars;
    gp.exclude_rank0 = true;
    gp.fault_tolerant = params.fault_tolerant_gst;
    if (!gst_resume_table.empty()) gp.resume_bucket_owner = &gst_resume_table;
    auto dist = gst::build_distributed_gst(comm, doubled, gp);
    // Phase-boundary results travel through the stash, not captured
    // vectors: on the proc transport each rank is a forked child whose
    // memory writes the driver never sees. A rank that dies mid-run
    // simply never stashes — the driver reads defaults for it.
    comm.stash_value(kStashGstStats, dist.stats);
    // The barrier is a collective: with fault tolerance on, a rank that
    // died during construction would abort it (and the whole run), so the
    // fault-tolerant path skips the sync and relies on the protocol's own
    // completion round for the phase boundary.
    if (!params.fault_tolerant_gst) comm.barrier();
    comm.stash_value(kStashGstBusy, comm.ledger().busy_seconds());
    comm.stash_value(kStashGstWall, phase_timer.elapsed());

    if (comm.rank() == 0) {
      if (params.fault_tolerant_gst && !params.gst_checkpoint_path.empty() &&
          !dist.stats.resumed_from_plan) {
        // Record the final owner table every survivor agreed on. All roles
        // are complete under it by construction (dead ranks own nothing).
        GstCheckpoint gck;
        gck.input_hash = sched.input_hash;
        gck.params_hash = sched.params_hash;
        gck.num_ranks = static_cast<std::uint32_t>(num_ranks);
        gck.prefix_w = params.prefix_w;
        gck.bucket_owner = dist.bucket_owner;
        gck.role_done.assign(static_cast<std::size_t>(num_ranks), 1);
        const auto bytes = encode_gst_checkpoint(gck);
        save_frame_atomic(params.gst_checkpoint_path,
                          std::span<const std::uint8_t>(bytes));
        if (obs::tracer().enabled()) {
          obs::registry()
              .counter("recovery.checkpoint_bytes", 0, obs::current_phase())
              .inc(bytes.size() + 5);
        }
      }
      master_loop(comm, params, sched, resume);
    } else {
      worker_loop(comm, params, gp, doubled, dist, resume);
    }
  });
  const double total_wall = total_timer.elapsed();

  result.clusters = std::move(sched.uf);
  ClusterStats& stats = result.stats;
  stats.pairs_generated = sched.generated;
  stats.pairs_aligned = sched.aligned;
  stats.pairs_accepted = sched.accepted;
  stats.merges = sched.merges;
  stats.merges_rejected_inconsistent = sched.rejected_inconsistent;
  stats.workers_lost = sched.workers_lost;
  stats.batches_reassigned = sched.batches_reassigned;
  stats.pairs_reassigned = sched.pairs_reassigned;
  stats.generator_takeovers = sched.takeovers;
  stats.timeouts_fired = sched.timeouts_fired;
  stats.heartbeats_sent = sched.heartbeats_sent;
  stats.reports_retransmitted = sched.reports_retransmitted;
  stats.checkpoints_written = sched.checkpoints_written;
  stats.pairs_skipped_resume = sched.pairs_skipped_resume;
  stats.resumed_from_epoch = sched.resumed_from_epoch;
  for (int rk = 0; rk < num_ranks; ++rk) {
    const auto g = result.cost.stash_value<gst::GstBuildStats>(
        rk, kStashGstStats);
    if (!g) continue;  // rank died before the phase boundary
    stats.gst_ranks_recovered += g->ranks_recovered;
    stats.gst_buckets_reassigned += g->buckets_reassigned;
    stats.gst_ft_retries += g->ft_retries;
    stats.gst_resumed += g->resumed_from_plan;
  }

  double gst_model = 0, total_model = 0;
  for (int rk = 0; rk < num_ranks; ++rk) {
    gst_model = std::max(
        gst_model,
        result.cost.stash_value<double>(rk, kStashGstBusy).value_or(0.0));
    total_model = std::max(total_model, result.cost.per_rank[rk].busy_seconds());
    stats.gst_seconds = std::max(
        stats.gst_seconds,
        result.cost.stash_value<double>(rk, kStashGstWall).value_or(0.0));
  }
  stats.gst_modeled_seconds = gst_model;
  stats.cluster_modeled_seconds = std::max(0.0, total_model - gst_model);
  stats.cluster_seconds = std::max(0.0, total_wall - stats.gst_seconds);

  // Publish the clustering counters into the metrics registry (rank 0 owns
  // the master state) so ClusterStats and the obs export agree.
  if (obs::tracer().enabled()) {
    auto& reg = obs::registry();
    const char* phase = obs::current_phase();
    const auto c = [&](const char* name, std::uint64_t v) {
      reg.counter(name, 0, phase).inc(v);
    };
    c("cluster.pairs_generated", sched.generated);
    c("cluster.pairs_selected", sched.selected);
    c("cluster.pairs_aligned", sched.aligned);
    c("cluster.pairs_accepted", sched.accepted);
    c("cluster.merges", sched.merges);
    c("cluster.merges_rejected_inconsistent", sched.rejected_inconsistent);
    c("cluster.workers_lost", sched.workers_lost);
    c("cluster.batches_reassigned", sched.batches_reassigned);
    c("cluster.pairs_reassigned", sched.pairs_reassigned);
    c("cluster.takeovers", sched.takeovers);
    c("cluster.probe_timeouts", sched.timeouts_fired);
    c("cluster.heartbeats_sent", sched.heartbeats_sent);
    c("cluster.checkpoints_written", sched.checkpoints_written);
    c("cluster.reports_retransmitted", sched.reports_retransmitted);
    c("cluster.pairs_skipped_resume", sched.pairs_skipped_resume);
    reg.gauge("cluster.gst_seconds", 0, phase).set(stats.gst_seconds);
    reg.gauge("cluster.cluster_seconds", 0, phase).set(stats.cluster_seconds);
  }

  const double makespan = result.cost.modeled_parallel_seconds();
  if (makespan > 0) {
    stats.master_availability =
        1.0 - result.cost.per_rank[0].busy_seconds() / makespan;
    // Fixed-shape fold over the rank-ordered shares (W018): the summary
    // stat is reproducible bit for bit regardless of how a future
    // multi-node collector delivers the per-rank costs.
    std::vector<double> idle_shares;
    idle_shares.reserve(static_cast<std::size_t>(num_ranks));
    for (int rk = 1; rk < num_ranks; ++rk) {
      idle_shares.push_back(
          (makespan - result.cost.per_rank[rk].busy_seconds()) / makespan);
    }
    stats.worker_idle_fraction = util::ordered_reduce(std::move(idle_shares)) /
                                 std::max(1, num_ranks - 1);
  }
  return result;
}

}  // namespace pgasm::core
