#include "core/parallel_cluster.hpp"

#include <algorithm>
#include <memory>
#include <deque>
#include <stdexcept>

#include "core/wire.hpp"
#include "core/consistency.hpp"
#include "gst/pair_generator.hpp"
#include "gst/parallel_build.hpp"
#include "util/timer.hpp"

namespace pgasm::core {

namespace {

constexpr int kTagReport = 101;  // worker -> master
constexpr int kTagReply = 102;   // master -> worker

struct MasterState {
  util::UnionFind uf;
  std::deque<PairMsg> pending;  // Pending_Work_Buf
  std::deque<int> idle;         // Idle_Workers
  // Alignment results dispatched but not yet reported. A worker aligns a
  // batch *after* sending its next report (Fig. 8 masks the reply wait with
  // alignment work), so results lag their dispatch by two reports; the
  // master must keep a worker cycling until its owed results have arrived
  // or merges would be lost at termination.
  std::vector<std::uint64_t> owed;
  std::vector<std::uint8_t> exhausted;  // worker generator done (passive)
  std::uint64_t generated = 0;  // NP pairs received
  std::uint64_t selected = 0;   // pairs admitted to Pending_Work_Buf
  std::uint64_t aligned = 0;    // results received
  std::uint64_t accepted = 0;
  std::uint64_t merges = 0;
  std::uint64_t rejected_inconsistent = 0;
};

void master_loop(vmpi::Comm& comm, const ClusterParams& params,
                 const seq::FragmentStore& doubled, MasterState& st) {
  const int p = comm.size();
  const std::size_t n_fragments = doubled.size() / 2;
  st.uf.reset(n_fragments);
  st.owed.assign(p, 0);
  st.exhausted.assign(p, 0);
  // Inconsistent-overlap resolution extension (paper §10 future work). The
  // verification alignments run on the master; they are few (one to three
  // per attempted merge) and are charged to the master's compute ledger.
  std::unique_ptr<ConsistencyResolver> resolver;
  if (params.resolve_inconsistent) {
    resolver = std::make_unique<ConsistencyResolver>(
        doubled, params.overlap, params.placement_tolerance);
  }
  // Section 7.2: keep the master's message arrival rate roughly constant
  // as workers are added by growing the per-dispatch granularity with p.
  const std::uint32_t batch =
      params.adaptive_batch
          ? params.batch_size * std::max(1, (p - 1) / 4)
          : params.batch_size;

  int active_workers = p - 1;  // workers that may still generate pairs

  auto compute_r = [&]() -> std::uint32_t {
    // Request as many pairs as needed so that ~batch_size of them are
    // expected to be selected, without overflowing Pending_Work_Buf.
    const double rate =
        st.generated == 0
            ? 1.0
            : std::max(0.02, static_cast<double>(st.selected) /
                                 static_cast<double>(st.generated));
    const std::uint64_t want = static_cast<std::uint64_t>(batch / rate);
    const std::uint64_t room =
        st.pending.size() >= params.pending_work_buf
            ? batch  // keep a trickle flowing; master drops fast
            : (params.pending_work_buf - st.pending.size()) /
                  std::max(1, active_workers);
    return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        std::min(want, room), batch, params.new_pairs_buf));
  };

  auto dispatch = [&](int worker) {
    MasterReply reply;
    const std::size_t take = std::min<std::size_t>(batch, st.pending.size());
    reply.batch.assign(st.pending.begin(), st.pending.begin() + take);
    st.pending.erase(st.pending.begin(), st.pending.begin() + take);
    reply.request_r = st.exhausted[worker] ? 0 : compute_r();
    reply.terminate = 0;
    const auto bytes = encode_reply(reply);
    comm.send(worker, kTagReply, bytes.data(), bytes.size());
    st.owed[worker] += reply.batch.size();
  };

  int remaining = p - 1;  // workers not yet terminated
  while (remaining > 0) {
    const vmpi::Status probe = comm.probe(vmpi::kAnySource, kTagReport);
    const auto raw = comm.recv_vector<std::uint8_t>(probe.source, kTagReport);
    const int w = probe.source;
    WorkerReport report;
    {
      auto scope = comm.compute_scope();
      report = decode_report(raw);

      st.owed[w] -= report.results.size();
      if (report.exhausted && !st.exhausted[w]) {
        st.exhausted[w] = 1;
        --active_workers;
      }

      // Fold in alignment results (merge clusters).
      for (const ResultMsg& r : report.results) {
        ++st.aligned;
        if (!r.accepted) continue;
        ++st.accepted;
        if (resolver && !st.uf.same(r.frag_a, r.frag_b)) {
          if (!resolver->admit(r.frag_a, r.frag_b, r.rc_a != 0, r.rc_b != 0,
                               r.delta)) {
            ++st.rejected_inconsistent;
            continue;
          }
        }
        if (st.uf.unite(r.frag_a, r.frag_b)) ++st.merges;
      }
      // Admit only pairs whose fragments are still in different clusters.
      for (const PairMsg& pm : report.new_pairs) {
        ++st.generated;
        const std::uint32_t fa = pm.seq_a >> 1;
        const std::uint32_t fb = pm.seq_b >> 1;
        if (st.uf.same(fa, fb)) continue;
        st.pending.push_back(pm);
        ++st.selected;
      }
    }

    // Feed idle workers first, then answer the reporter.
    while (!st.pending.empty() && !st.idle.empty()) {
      const int iw = st.idle.front();
      st.idle.pop_front();
      dispatch(iw);
    }
    if (!st.pending.empty() || !st.exhausted[w]) {
      dispatch(w);  // work to do, or more pairs to request
    } else if (st.owed[w] > 0) {
      // Passive but still holding computed-but-unreported results: reply
      // with an empty batch so the next report flushes them.
      dispatch(w);
    } else {
      st.idle.push_back(w);  // passive, drained, nothing to align right now
    }

    // Termination: all passive, nothing pending, no results in flight.
    if (active_workers == 0 && st.pending.empty()) {
      const bool in_flight =
          std::any_of(st.owed.begin(), st.owed.end(),
                      [](std::uint64_t o) { return o != 0; });
      if (!in_flight) {
        while (!st.idle.empty()) {
          MasterReply bye;
          bye.terminate = 1;
          const auto bytes = encode_reply(bye);
          comm.send(st.idle.front(), kTagReply, bytes.data(), bytes.size());
          st.idle.pop_front();
          --remaining;
        }
      }
    }
  }
}

void worker_loop(vmpi::Comm& comm, const ClusterParams& params,
                 const seq::FragmentStore& doubled,
                 const gst::DistributedGst& dist) {
  gst::PairGenerator gen(*dist.tree,
                         {.dup_elim = params.dup_elim,
                          .doubled_input = true,
                          .global_ids = &dist.local_to_global});

  std::vector<PairMsg> batch;       // AW: allocated by master last reply
  std::vector<ResultMsg> results;   // AR: results of the previous batch
  std::uint32_t r = params.batch_size;

  for (;;) {
    WorkerReport report;
    report.results = std::move(results);
    results.clear();
    {
      auto scope = comm.compute_scope();
      gst::PromisingPair q;
      const std::uint32_t want = std::min(r, params.new_pairs_buf);
      while (report.new_pairs.size() < want && gen.next(q)) {
        // The generator already emits global doubled-store ids in
        // canonical orientation (global_ids translation).
        report.new_pairs.push_back(
            PairMsg{q.seq_a, q.pos_a, q.seq_b, q.pos_b, q.match_len});
      }
      report.exhausted = gen.done() ? 1 : 0;
    }
    const auto bytes = encode_report(report);
    if (params.use_ssend) {
      comm.ssend(0, kTagReport, bytes.data(), bytes.size());
    } else {
      comm.send(0, kTagReport, bytes.data(), bytes.size());
    }

    // Mask the wait for the master's reply with the alignment work of the
    // batch allocated in the previous iteration (Fig. 8).
    {
      auto scope = comm.compute_scope();
      for (const PairMsg& pm : batch) {
        ResultMsg res;
        res.frag_a = pm.seq_a >> 1;
        res.frag_b = pm.seq_b >> 1;
        res.rc_a = static_cast<std::uint8_t>(pm.seq_a & 1u);
        res.rc_b = static_cast<std::uint8_t>(pm.seq_b & 1u);
        const auto r = pair_overlap_details(doubled, pm.seq_a, pm.pos_a,
                                            pm.seq_b, pm.pos_b, params.overlap);
        res.accepted = align::accept_overlap(r, params.overlap) ? 1 : 0;
        res.delta = static_cast<std::int32_t>(r.aln.a_begin) -
                    static_cast<std::int32_t>(r.aln.b_begin);
        results.push_back(res);
      }
      batch.clear();
    }

    const auto reply_raw = comm.recv_vector<std::uint8_t>(0, kTagReply);
    MasterReply reply;
    {
      auto scope = comm.compute_scope();
      reply = decode_reply(reply_raw);
    }
    if (reply.terminate) break;
    batch = std::move(reply.batch);
    r = reply.request_r;
  }
}

}  // namespace

ParallelClusterResult cluster_parallel(const seq::FragmentStore& fragments,
                                       const ClusterParams& params,
                                       int num_ranks,
                                       vmpi::CostParams cost_params) {
  if (num_ranks < 2)
    throw std::invalid_argument("cluster_parallel needs >= 2 ranks");
  if (!params.ordered)
    throw std::invalid_argument(
        "the unordered ablation is serial-only (cluster_serial)");

  ParallelClusterResult result;
  const seq::FragmentStore doubled = seq::make_doubled_store(fragments);

  // Per-rank busy seconds at the GST/clustering phase boundary.
  std::vector<double> gst_busy(num_ranks, 0.0);
  std::vector<double> gst_wall(num_ranks, 0.0);
  MasterState master;

  util::WallTimer total_timer;
  vmpi::Runtime rt(num_ranks, cost_params);
  result.cost = rt.run([&](vmpi::Comm& comm) {
    util::WallTimer phase_timer;
    gst::ParallelGstParams gp;
    gp.gst = gst::GstParams{.min_match = params.psi,
                            .prefix_w = params.prefix_w};
    gp.fetch_batch_chars = params.fetch_batch_chars;
    gp.exclude_rank0 = true;
    auto dist = gst::build_distributed_gst(comm, doubled, gp);
    comm.barrier();
    gst_busy[comm.rank()] = comm.ledger().busy_seconds();
    gst_wall[comm.rank()] = phase_timer.elapsed();

    if (comm.rank() == 0) {
      master_loop(comm, params, doubled, master);
    } else {
      worker_loop(comm, params, doubled, dist);
    }
  });
  const double total_wall = total_timer.elapsed();

  result.clusters = std::move(master.uf);
  ClusterStats& stats = result.stats;
  stats.pairs_generated = master.generated;
  stats.pairs_aligned = master.aligned;
  stats.pairs_accepted = master.accepted;
  stats.merges = master.merges;
  stats.merges_rejected_inconsistent = master.rejected_inconsistent;

  double gst_model = 0, total_model = 0;
  for (int rk = 0; rk < num_ranks; ++rk) {
    gst_model = std::max(gst_model, gst_busy[rk]);
    total_model = std::max(total_model, result.cost.per_rank[rk].busy_seconds());
    stats.gst_seconds = std::max(stats.gst_seconds, gst_wall[rk]);
  }
  stats.gst_modeled_seconds = gst_model;
  stats.cluster_modeled_seconds = std::max(0.0, total_model - gst_model);
  stats.cluster_seconds = std::max(0.0, total_wall - stats.gst_seconds);

  const double makespan = result.cost.modeled_parallel_seconds();
  if (makespan > 0) {
    stats.master_availability =
        1.0 - result.cost.per_rank[0].busy_seconds() / makespan;
    double idle = 0;
    for (int rk = 1; rk < num_ranks; ++rk) {
      idle += (makespan - result.cost.per_rank[rk].busy_seconds()) / makespan;
    }
    stats.worker_idle_fraction = idle / std::max(1, num_ranks - 1);
  }
  return result;
}

}  // namespace pgasm::core
