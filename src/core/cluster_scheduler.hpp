// Master-side scheduling policy and recoverable state for the parallel
// clustering loop (paper Section 7), split out of the coordinator. The
// scheduler owns the union-find, Pending_Work_Buf, Idle_Workers, the
// fault-tolerance bookkeeping (in-flight batches, generation roles,
// liveness flags) and every policy decision — batch sizing, the pair
// request quantity r, dispatch/park/terminate choices, death bookkeeping,
// checkpoint assembly. It never touches the communicator: the coordinator
// (parallel_cluster.cpp) moves messages via cluster_protocol.* and asks
// this class what to send.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/cluster_params.hpp"
#include "core/consistency.hpp"
#include "core/wire.hpp"
#include "seq/fragment_store.hpp"
#include "util/union_find.hpp"

namespace pgasm::core {

class MasterScheduler {
 public:
  /// `p` is the total rank count (master + p-1 workers).
  MasterScheduler(const seq::FragmentStore& doubled,
                  const ClusterParams& params, int p);

  /// Restore union-find labels, pending pairs, stats counters and (when the
  /// rank count matches) per-role generation positions from a checkpoint.
  /// Throws std::invalid_argument on a fragment-count mismatch.
  void restore(const ClusterCheckpoint& ck);

  /// Pair request quantity r: how many new pairs the worker should send
  /// with its next report (Section 7.1 flow regulation).
  std::uint32_t compute_r() const;

  /// Build the dispatch reply for `worker`: pops up to one batch from
  /// Pending_Work_Buf, hands over any orphaned generation roles, and does
  /// the owed/in-flight bookkeeping. The reply is unsequenced — the
  /// protocol layer stamps and sends it.
  MasterReply make_dispatch(int worker);

  /// Death bookkeeping for a worker (liveness flags, batch requeue, role
  /// orphaning, idle-queue removal). The coordinator still sends the
  /// farewell terminate — a false-positive declaration leaves a live
  /// parked worker that must be released.
  void note_death(int worker);

  /// Fold a (first-time) report from a live worker: role progress claims,
  /// owed/in-flight retirement, exhaustion, alignment results into the
  /// union-find (via the consistency resolver when enabled), and new-pair
  /// admission filtered against the current clustering.
  void fold_report(int worker, const WorkerReport& report);

  /// Fold accepted results from a worker already declared dead (its batches
  /// were requeued, so merges replay idempotently). Progress claims are
  /// ignored — its roles have new owners.
  void fold_zombie_results(const WorkerReport& report);

  /// Should this reporter be dispatched to (even an empty batch, to keep it
  /// cycling while it owes results or must keep generating), or parked?
  bool wants_dispatch(int worker) const {
    return !pending.empty() || !orphans.empty() || !exhausted[worker] ||
           owed[worker] > 0;
  }

  /// True while an idle worker and either pending pairs or orphaned roles
  /// exist (the coordinator pops and dispatches until this is false).
  bool can_feed() const {
    return !idle.empty() && (!pending.empty() || !orphans.empty());
  }
  int pop_idle() {
    const int w = idle.front();
    idle.pop_front();
    return w;
  }
  void park(int worker) { idle.push_back(worker); }

  /// Termination check: when all generators are done, nothing is pending or
  /// orphaned, and no results are owed, drains the idle queue and returns
  /// the workers to send terminates to (marking them terminated here).
  /// Returns an empty vector while the run must continue.
  std::vector<int> drain_idle_if_complete();

  /// Snapshot the recoverable state (in-flight batches folded back into the
  /// pending set) as checkpoint epoch ++ckpt_epoch.
  ClusterCheckpoint build_checkpoint();

  /// After the loop: is unfinished work left (open roles, pending or
  /// orphaned pairs)? True means too many workers were lost.
  bool work_remaining() const;

  // --- state (owned here, read/written by the coordinator) ---------------
  util::UnionFind uf;
  std::deque<PairMsg> pending;  // Pending_Work_Buf
  std::deque<int> idle;         // Idle_Workers
  // Alignment results dispatched but not yet reported. A worker aligns a
  // batch *after* sending its next report (Fig. 8 masks the reply wait with
  // alignment work), so results lag their dispatch by two reports; the
  // master must keep a worker cycling until its owed results have arrived
  // or merges would be lost at termination.
  std::vector<std::uint64_t> owed;
  std::vector<std::uint8_t> exhausted;  // worker generators done (passive)

  // --- fault tolerance ---------------------------------------------------
  std::vector<std::uint8_t> alive;       // not declared dead
  std::vector<std::uint8_t> terminated;  // terminate reply sent
  // Batches dispatched whose results have not arrived, oldest first. On
  // worker death these are requeued for survivors (replay is idempotent).
  std::vector<std::deque<std::vector<PairMsg>>> in_flight;
  // Generation roles: role r is rank r's GST portion. Owners migrate to
  // survivors on death; positions are absolute in the role's deterministic
  // pair stream, so a takeover fast-forwards to exactly where it stopped.
  std::vector<std::int32_t> role_owner;  // -1 = orphaned
  std::vector<std::uint8_t> role_done;
  std::vector<std::uint64_t> role_pos;
  std::vector<TakeoverOrder> orphans;  // roles awaiting a new owner
  std::uint64_t hb_epoch = 0;          // current heartbeat round

  // Checkpoint validity: hashes of the input store and the
  // partition-relevant params this run was started with.
  std::uint64_t input_hash = 0;
  std::uint64_t params_hash = 0;

  int active_workers = 0;  // workers that may still generate pairs
  int remaining = 0;       // workers neither terminated nor declared dead

  std::uint64_t generated = 0;  // NP pairs received
  std::uint64_t selected = 0;   // pairs admitted to Pending_Work_Buf
  std::uint64_t aligned = 0;    // results received
  std::uint64_t accepted = 0;
  std::uint64_t merges = 0;
  std::uint64_t rejected_inconsistent = 0;

  std::uint64_t workers_lost = 0;
  std::uint64_t batches_reassigned = 0;
  std::uint64_t pairs_reassigned = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t timeouts_fired = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t reports_retransmitted = 0;
  std::uint64_t pairs_skipped_resume = 0;
  std::uint64_t resumed_from_epoch = 0;
  std::uint64_t ckpt_epoch = 0;
  std::uint64_t reports_since_ckpt = 0;

 private:
  const ClusterParams& params_;
  int p_;
  std::size_t n_fragments_;
  std::uint32_t batch_;  // per-dispatch granularity (Section 7.2 adaptive)
  // Inconsistent-overlap resolution extension (paper §10 future work). The
  // verification alignments run on the master; they are few (one to three
  // per attempted merge) and are charged to the master's compute ledger.
  std::unique_ptr<ConsistencyResolver> resolver_;
};

}  // namespace pgasm::core
