#include "core/consistency.hpp"

#include <algorithm>

namespace pgasm::core {

namespace {
/// How many of the strongest implied overlaps to verify before giving up.
constexpr int kMaxChecks = 3;
}  // namespace

ConsistencyResolver::ConsistencyResolver(const seq::FragmentStore& doubled,
                                         const align::OverlapParams& params,
                                         std::int64_t tolerance)
    : doubled_(&doubled),
      params_(params),
      tolerance_(tolerance),
      layout_(doubled.size() / 2),
      members_(doubled.size() / 2) {
  for (std::uint32_t f = 0; f < members_.size(); ++f) members_[f] = {f};
}

std::pair<std::int64_t, std::int64_t> ConsistencyResolver::interval(
    const Placed& p) const {
  const std::int64_t len = doubled_->length(p.frag << 1);
  const std::int64_t s =
      p.to_root.flip ? p.to_root(len - 1) : p.to_root(0);
  return {s, s + len};
}

bool ConsistencyResolver::implied_overlap_holds(std::uint32_t frag_x,
                                                const olc::Transform& x_to_f,
                                                std::uint32_t frag_y,
                                                const olc::Transform& y_to_f) {
  const auto sx = doubled_->seq((frag_x << 1) | (x_to_f.flip ? 1u : 0u));
  const auto sy = doubled_->seq((frag_y << 1) | (y_to_f.flip ? 1u : 0u));
  const std::int64_t start_x =
      x_to_f.flip ? x_to_f(static_cast<std::int64_t>(sx.size()) - 1)
                  : x_to_f(0);
  const std::int64_t start_y =
      y_to_f.flip ? y_to_f(static_cast<std::int64_t>(sy.size()) - 1)
                  : y_to_f(0);
  const std::int32_t shift = static_cast<std::int32_t>(start_x - start_y);
  ++verifications_;
  const auto r = align::banded_overlap_align(
      sx, sy, params_.scoring, shift,
      params_.band + static_cast<std::uint32_t>(tolerance_));
  return align::accept_overlap(r, params_);
}

bool ConsistencyResolver::admit(std::uint32_t fa, std::uint32_t fb, bool rc_a,
                                bool rc_b, std::int32_t delta) {
  const std::int64_t len_a = doubled_->length(fa << 1);
  const std::int64_t len_b = doubled_->length(fb << 1);
  const olc::Transform t_ba =
      olc::overlap_transform(rc_a, rc_b, delta, len_a, len_b);

  auto [ra, ta] = layout_.find(fa);
  auto [rb, tb] = layout_.find(fb);
  if (ra == rb) return true;  // caller merges only across clusters

  // Transform of rb's frame into ra's frame implied by this overlap.
  const olc::Transform rb_to_ra = ta * t_ba * tb.inverse();

  // Gather implied placements of both sides in ra's frame.
  std::vector<Placed> side_a, side_b;
  side_a.reserve(members_[ra].size());
  for (std::uint32_t f : members_[ra]) {
    side_a.push_back({f, layout_.find(f).second});
  }
  side_b.reserve(members_[rb].size());
  for (std::uint32_t f : members_[rb]) {
    side_b.push_back({f, rb_to_ra * layout_.find(f).second});
  }

  // Strongest implied cross overlaps, excluding the admitting pair itself.
  struct Cand {
    std::int64_t overlap;
    std::size_t ia, ib;
  };
  std::vector<Cand> cands;
  const std::int64_t decisive =
      static_cast<std::int64_t>(params_.min_overlap) + 2 * tolerance_;
  std::vector<std::pair<std::int64_t, std::int64_t>> ivals_a(side_a.size());
  for (std::size_t i = 0; i < side_a.size(); ++i)
    ivals_a[i] = interval(side_a[i]);
  for (std::size_t j = 0; j < side_b.size(); ++j) {
    const auto ib = interval(side_b[j]);
    for (std::size_t i = 0; i < side_a.size(); ++i) {
      if (side_a[i].frag == fa && side_b[j].frag == fb) continue;
      const std::int64_t ovl = std::min(ivals_a[i].second, ib.second) -
                               std::max(ivals_a[i].first, ib.first);
      if (ovl >= decisive) cands.push_back({ovl, i, j});
    }
  }
  bool admissible = true;
  if (!cands.empty()) {
    std::partial_sort(cands.begin(),
                      cands.begin() + std::min<std::size_t>(kMaxChecks,
                                                            cands.size()),
                      cands.end(), [](const Cand& x, const Cand& y) {
                        return x.overlap > y.overlap;
                      });
    admissible = false;
    const std::size_t checks = std::min<std::size_t>(kMaxChecks, cands.size());
    for (std::size_t k = 0; k < checks && !admissible; ++k) {
      const auto& c = cands[k];
      admissible = implied_overlap_holds(side_a[c.ia].frag,
                                         side_a[c.ia].to_root,
                                         side_b[c.ib].frag,
                                         side_b[c.ib].to_root);
    }
  }
  if (!admissible) {
    ++rejections_;
    return false;
  }

  // Commit: merge layout and member lists under the new root.
  layout_.unite(fa, fb, t_ba, tolerance_);
  const std::uint32_t new_root = layout_.find(fa).first;
  const std::uint32_t other = (new_root == ra) ? rb : ra;
  auto& dst = members_[new_root];
  auto& src = members_[other];
  dst.insert(dst.end(), src.begin(), src.end());
  src.clear();
  src.shrink_to_fit();
  return true;
}

}  // namespace pgasm::core
