#include "core/overlap_engine.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace pgasm::core {

namespace {

void bind_instruments(int rank, obs::Counter*& pairs,
                      obs::Histogram*& batch_us, obs::Gauge*& ws_bytes,
                      obs::Counter*& allocs, obs::Counter*& avoided) {
  if (!obs::tracer().enabled()) return;
  auto& reg = obs::registry();
  pairs = &reg.counter("engine.pairs", rank);
  batch_us = &reg.histogram("engine.batch_us", rank);
  ws_bytes = &reg.gauge("align.workspace_bytes", rank);
  allocs = &reg.counter("align.allocations", rank);
  avoided = &reg.counter("align.allocs_avoided", rank);
}

}  // namespace

OverlapEngine::OverlapEngine(const seq::FragmentStore& doubled,
                             const align::OverlapParams& params, int rank)
    : doubled_(&doubled), params_(params) {
  bind_instruments(rank, obs_pairs_, obs_batch_us_, obs_ws_bytes_,
                   obs_allocs_, obs_allocs_avoided_);
}

OverlapEngine::OverlapEngine(const align::OverlapParams& params, int rank)
    : params_(params) {
  bind_instruments(rank, obs_pairs_, obs_batch_us_, obs_ws_bytes_,
                   obs_allocs_, obs_allocs_avoided_);
}

align::OverlapResult OverlapEngine::details(std::uint32_t seq_a,
                                            std::uint32_t pos_a,
                                            std::uint32_t seq_b,
                                            std::uint32_t pos_b) {
  if (!doubled_)
    throw std::logic_error("OverlapEngine: no fragment store bound");
  const auto a = doubled_->seq(seq_a);
  const auto b = doubled_->seq(seq_b);
  const std::int32_t shift =
      static_cast<std::int32_t>(pos_b) - static_cast<std::int32_t>(pos_a);
  return align::banded_overlap_align(a, b, params_.scoring, shift,
                                     params_.band, ws_);
}

ResultMsg OverlapEngine::align_pair(const PairMsg& pm) {
  ResultMsg res;
  res.frag_a = pm.seq_a >> 1;
  res.frag_b = pm.seq_b >> 1;
  res.rc_a = static_cast<std::uint8_t>(pm.seq_a & 1u);
  res.rc_b = static_cast<std::uint8_t>(pm.seq_b & 1u);
  const auto od = details(pm.seq_a, pm.pos_a, pm.seq_b, pm.pos_b);
  res.accepted = align::accept_overlap(od, params_) ? 1 : 0;
  res.delta = static_cast<std::int32_t>(od.aln.a_begin) -
              static_cast<std::int32_t>(od.aln.b_begin);
  ++pairs_;
  return res;
}

void OverlapEngine::run(std::span<const PairMsg> batch,
                        std::vector<ResultMsg>& out) {
  if (batch.empty()) return;
  util::WallTimer t;
  out.reserve(out.size() + batch.size());
  for (const PairMsg& pm : batch) out.push_back(align_pair(pm));
  note_batch(batch.size(), t.elapsed());
}

std::vector<ResultMsg> OverlapEngine::run(std::span<const PairMsg> batch) {
  std::vector<ResultMsg> out;
  run(batch, out);
  return out;
}

align::OverlapResult OverlapEngine::full_align(align::Seq a, align::Seq b,
                                               const align::AlignOptions& opts) {
  return align::overlap_align(a, b, params_.scoring, ws_, opts);
}

align::OverlapResult OverlapEngine::banded_align(
    align::Seq a, align::Seq b, std::int32_t shift,
    const align::AlignOptions& opts) {
  return align::banded_overlap_align(a, b, params_.scoring, shift,
                                     params_.band, ws_, opts);
}

void OverlapEngine::note_batch(std::size_t pairs, double seconds) {
  if (!obs_pairs_) return;
  obs_pairs_->inc(pairs);
  obs_batch_us_->observe(static_cast<std::uint64_t>(seconds * 1e6));
  obs_ws_bytes_->set(static_cast<double>(ws_.bytes_in_use()));
  // The workspace counts cumulatively; publish only the delta since the
  // last batch so the registry counter matches it exactly.
  const std::uint64_t allocs = ws_.allocations();
  const std::uint64_t avoided = ws_.allocations_avoided();
  obs_allocs_->inc(allocs - published_allocs_);
  obs_allocs_avoided_->inc(avoided - published_avoided_);
  published_allocs_ = allocs;
  published_avoided_ = avoided;
}

}  // namespace pgasm::core
