#include "core/cluster_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"

namespace pgasm::core {

MasterScheduler::MasterScheduler(const seq::FragmentStore& doubled,
                                 const ClusterParams& params, int p)
    : params_(params),
      p_(p),
      n_fragments_(doubled.size() / 2),
      // Section 7.2: keep the master's message arrival rate roughly constant
      // as workers are added by growing the per-dispatch granularity with p.
      batch_(params.adaptive_batch
                 ? params.batch_size * std::max(1, (p - 1) / 4)
                 : params.batch_size) {
  uf.reset(n_fragments_);
  owed.assign(p, 0);
  exhausted.assign(p, 0);
  alive.assign(p, 1);
  terminated.assign(p, 0);
  in_flight.assign(p, {});
  role_owner.assign(p, -1);
  role_done.assign(p, 0);
  role_pos.assign(p, 0);
  for (int w = 1; w < p; ++w) role_owner[w] = w;
  active_workers = p - 1;
  remaining = p - 1;
  if (params.resolve_inconsistent) {
    resolver_ = std::make_unique<ConsistencyResolver>(
        doubled, params.overlap, params.placement_tolerance);
  }
}

void MasterScheduler::restore(const ClusterCheckpoint& ck) {
  if (ck.n_fragments != n_fragments_)
    throw std::invalid_argument("resume checkpoint fragment count mismatch");
  if (ck.labels.size() != ck.n_fragments)
    throw std::invalid_argument("resume checkpoint label count mismatch");
  resumed_from_epoch = ck.epoch;
  ckpt_epoch = ck.epoch;
  // Dense labels -> union-find: unite each element with the first element
  // seen carrying its label. The wire decoder already validates label
  // ranges for checkpoints read from disk; re-check here because restore
  // also accepts hand-built checkpoints from callers and tests.
  std::vector<std::uint32_t> first(ck.labels.size(),
                                   std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t i = 0; i < ck.labels.size(); ++i) {
    const std::uint32_t l = ck.labels[i];
    if (l >= first.size())
      throw std::invalid_argument("resume checkpoint label out of range");
    if (first[l] == std::numeric_limits<std::uint32_t>::max()) {
      first[l] = i;
    } else {
      uf.unite(first[l], i);
    }
  }
  pending.assign(ck.pending.begin(), ck.pending.end());
  // Resume the stats counters where the checkpoint left them, so a resumed
  // run reports totals for the whole logical run (the counters stay
  // consistent: selected - aligned == |pending incl. in-flight|).
  generated = ck.pairs_generated;
  selected = ck.pairs_selected;
  aligned = ck.pairs_aligned;
  accepted = ck.pairs_accepted;
  merges = ck.merges;
  rejected_inconsistent = ck.merges_rejected_inconsistent;
  if (static_cast<int>(ck.num_ranks) == p_) {
    // Same topology: fast-forward each role's generator past the pairs the
    // master had already received. Workers read the same checkpoint.
    for (const RoleProgress& e : ck.progress) {
      if (e.role == 0 || static_cast<int>(e.role) >= p_) continue;
      role_pos[e.role] = e.emitted;
      role_done[e.role] = static_cast<std::uint8_t>(e.done != 0);
      if (!e.done) pairs_skipped_resume += e.emitted;
    }
    for (int w = 1; w < p_; ++w) {
      if (role_done[w]) {
        exhausted[w] = 1;
        --active_workers;
      }
    }
  }
}

std::uint32_t MasterScheduler::compute_r() const {
  // Request as many pairs as needed so that ~batch of them are expected to
  // be selected, without overflowing Pending_Work_Buf.
  const double rate = generated == 0
                          ? 1.0
                          : std::max(0.02, static_cast<double>(selected) /
                                               static_cast<double>(generated));
  const std::uint64_t want = static_cast<std::uint64_t>(batch_ / rate);
  const std::uint64_t room =
      pending.size() >= params_.pending_work_buf
          ? batch_  // keep a trickle flowing; master drops fast
          : (params_.pending_work_buf - pending.size()) /
                std::max(1, active_workers);
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      std::min(want, room), batch_, params_.new_pairs_buf));
}

MasterReply MasterScheduler::make_dispatch(int worker) {
  MasterReply reply;
  const std::size_t take = std::min<std::size_t>(batch_, pending.size());
  reply.batch.assign(pending.begin(), pending.begin() + take);
  pending.erase(pending.begin(), pending.begin() + take);
  if (!orphans.empty()) {
    // Hand every orphaned generation role to this worker; it rebuilds the
    // dead rank's GST portion and fast-forwards to the recorded position.
    reply.takeovers = std::move(orphans);
    orphans.clear();
    for (const TakeoverOrder& t : reply.takeovers) {
      role_owner[t.role] = worker;
      ++takeovers;
    }
    if (exhausted[worker]) {
      exhausted[worker] = 0;
      ++active_workers;
    }
  }
  reply.request_r = exhausted[worker] ? 0 : compute_r();
  reply.terminate = 0;
  owed[worker] += reply.batch.size();
  if (!reply.batch.empty()) in_flight[worker].push_back(reply.batch);
  if (!reply.takeovers.empty()) {
    obs::instant(0, "takeover_assigned", "cluster", "worker",
                 static_cast<std::uint64_t>(worker), "roles",
                 reply.takeovers.size());
  }
  obs::instant(0, "dispatch", "cluster", "worker",
               static_cast<std::uint64_t>(worker), "pairs",
               reply.batch.size());
  return reply;
}

void MasterScheduler::note_death(int w) {
  alive[w] = 0;
  ++workers_lost;
  --remaining;
  obs::instant(0, "death_declared", "cluster", "worker",
               static_cast<std::uint64_t>(w), "hb_epoch", hb_epoch);
  if (!exhausted[w]) {
    exhausted[w] = 1;
    --active_workers;
  }
  // Requeue everything in flight: the pairs were never folded, and even if
  // the worker did align some of them before dying, replaying a merge in
  // the union-find is idempotent.
  for (auto& b : in_flight[w]) {
    ++batches_reassigned;
    pairs_reassigned += b.size();
    for (const PairMsg& pm : b) pending.push_back(pm);
  }
  in_flight[w].clear();
  owed[w] = 0;
  for (int role = 1; role < p_; ++role) {
    if (role_owner[role] == w && !role_done[role]) {
      role_owner[role] = -1;
      orphans.push_back(
          TakeoverOrder{static_cast<std::uint32_t>(role), 0, role_pos[role]});
    }
  }
  idle.erase(std::remove(idle.begin(), idle.end(), w), idle.end());
  terminated[w] = 1;
}

void MasterScheduler::fold_report(int w, const WorkerReport& report) {
  for (const RoleProgress& e : report.progress) {
    if (e.role == 0 || static_cast<int>(e.role) >= p_) continue;
    if (role_owner[e.role] != w) continue;  // stale claim
    role_pos[e.role] = std::max(role_pos[e.role], e.emitted);
    if (e.done) role_done[e.role] = 1;
  }
  if (!report.results.empty()) {
    owed[w] -= std::min<std::uint64_t>(owed[w], report.results.size());
    if (!in_flight[w].empty()) in_flight[w].pop_front();
  }
  if (report.exhausted && !exhausted[w]) {
    exhausted[w] = 1;
    --active_workers;
  }

  // Fold in alignment results (merge clusters).
  for (const ResultMsg& r : report.results) {
    ++aligned;
    if (!r.accepted) continue;
    ++accepted;
    if (resolver_ && !uf.same(r.frag_a, r.frag_b)) {
      if (!resolver_->admit(r.frag_a, r.frag_b, r.rc_a != 0, r.rc_b != 0,
                            r.delta)) {
        ++rejected_inconsistent;
        continue;
      }
    }
    if (uf.unite(r.frag_a, r.frag_b)) ++merges;
  }
  // Admit only pairs whose fragments are still in different clusters.
  for (const PairMsg& pm : report.new_pairs) {
    ++generated;
    const std::uint32_t fa = pm.seq_a >> 1;
    const std::uint32_t fb = pm.seq_b >> 1;
    if (uf.same(fa, fb)) continue;
    pending.push_back(pm);
    ++selected;
  }
}

void MasterScheduler::fold_zombie_results(const WorkerReport& report) {
  for (const ResultMsg& r : report.results) {
    if (!r.accepted) continue;
    if (resolver_ && !uf.same(r.frag_a, r.frag_b)) {
      if (!resolver_->admit(r.frag_a, r.frag_b, r.rc_a != 0, r.rc_b != 0,
                            r.delta)) {
        continue;
      }
    }
    if (uf.unite(r.frag_a, r.frag_b)) ++merges;
  }
}

std::vector<int> MasterScheduler::drain_idle_if_complete() {
  // Termination: all passive, nothing pending or orphaned, no results in
  // flight from live workers.
  if (active_workers != 0 || !pending.empty() || !orphans.empty()) return {};
  if (std::any_of(owed.begin(), owed.end(),
                  [](std::uint64_t o) { return o != 0; }))
    return {};
  std::vector<int> out(idle.begin(), idle.end());
  idle.clear();
  for (int w : out) {
    terminated[w] = 1;
    --remaining;
  }
  return out;
}

ClusterCheckpoint MasterScheduler::build_checkpoint() {
  ClusterCheckpoint ck;
  ck.epoch = ++ckpt_epoch;
  ck.num_ranks = static_cast<std::uint32_t>(p_);
  ck.n_fragments = static_cast<std::uint32_t>(n_fragments_);
  ck.input_hash = input_hash;
  ck.params_hash = params_hash;
  ck.labels = uf.labels();
  ck.pending.assign(pending.begin(), pending.end());
  // In-flight batches are part of the recoverable pending set: their
  // results may never arrive if this run dies.
  for (int w = 1; w < p_; ++w)
    for (const auto& b : in_flight[w])
      ck.pending.insert(ck.pending.end(), b.begin(), b.end());
  for (int role = 1; role < p_; ++role)
    ck.progress.push_back(RoleProgress{static_cast<std::uint32_t>(role),
                                       role_done[role], role_pos[role]});
  ck.pairs_generated = generated;
  ck.pairs_selected = selected;
  ck.pairs_aligned = aligned;
  ck.pairs_accepted = accepted;
  ck.merges = merges;
  ck.merges_rejected_inconsistent = rejected_inconsistent;
  ++checkpoints_written;
  return ck;
}

bool MasterScheduler::work_remaining() const {
  const bool roles_open =
      std::any_of(role_done.begin() + 1, role_done.end(),
                  [](std::uint8_t d) { return d == 0; });
  return !pending.empty() || !orphans.empty() || roles_open;
}

}  // namespace pgasm::core
