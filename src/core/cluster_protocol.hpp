// Message-level protocol for the master–worker clustering loop (paper
// Fig. 6), split out of the coordinator: wire tags, heartbeat ping/ack,
// the worker's report-send/reply-wait state machine with retransmission,
// and the master's per-worker reply channel with its duplicate-report
// defence. Scheduling policy (what to dispatch, when to terminate) lives in
// cluster_scheduler.*; this layer only moves and acknowledges messages.
//
// Zero-copy discipline: reports and replies are encoded straight into vmpi
// payload buffers and MOVED into the destination mailbox
// (Comm::send_payload). The worker's retransmission path re-encodes from
// the kept WorkerReport — retransmits are rare, first sends are not — and
// the master's reply cache keeps the encoded bytes because a cached reply
// must survive to be re-sent.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cluster_params.hpp"
#include "core/wire.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::core {

// Protocol tags. The `pgasm-wire:` annotations are machine-checked by
// tools/lint/pgasm_lint.py: every codec-bearing tag must name exactly one
// encode/decode pair declared in core/wire.hpp, each pair must be claimed
// by exactly one tag, and a round-trip test exercising both halves must
// exist under tests/.
inline constexpr int kTagReport = 101;  // worker -> master
                                        // pgasm-wire: encode_report/decode_report
inline constexpr int kTagReply = 102;   // master -> worker
                                        // pgasm-wire: encode_reply/decode_reply
inline constexpr int kTagPing = 103;    // master -> worker heartbeat
                                        // pgasm-wire: raw-u64
inline constexpr int kTagAck = 104;     // worker -> master heartbeat ack
                                        // pgasm-wire: raw-u64

/// Answer any queued heartbeat pings from the master. Returns how many were
/// answered (the worker's master-silence clock resets on contact).
int poll_heartbeats(vmpi::Comm& comm);

/// Master-side receive of the report already probed from `source`. A
/// payload that fails to decode (truncated, mistagged, corrupt counts) is
/// returned as a typed WireError — the caller drops it, the worker's
/// retransmission timer re-sends the report, and a healthy retransmit
/// recovers the exchange. Decode failures are counted in the
/// `wire.decode_errors` metric and traced as `decode_error` instants.
WireResult<WorkerReport> recv_report(vmpi::Comm& comm, int source);

/// Worker-side drain of unsolicited queued replies before a (possibly
/// synchronous) report send. Returns true when a terminate order was
/// consumed: this worker was declared dead (a false positive, since it is
/// here) or the run is over. Stale duplicate replies and undecodable
/// payloads are discarded.
bool consume_pending_terminate(vmpi::Comm& comm);

/// Encode and send a worker report to the master (moved payload; ssend when
/// the params ask for synchronous reports).
void send_report(vmpi::Comm& comm, const ClusterParams& params,
                 const WorkerReport& report);

/// Worker-side wait for the reply answering report `seq`, polling
/// heartbeats in short timeout slices. Pings prove the master alive but not
/// that it got the report, so they do not extend the reply deadline: after
/// params.reply_timeout without a matching reply (and not parked), the
/// report is retransmitted (re-encoded from `report`) — the master discards
/// the duplicate by seq and re-sends its cached reply, which recovers a
/// dropped report or a dropped reply alike. Throws TimeoutError when the
/// master has failed, has been silent (no reply, no ping) for
/// params.master_timeout seconds, or has not answered
/// params.reply_max_retries retransmissions. A master that finished without
/// this worker ever hearing a terminate (the terminate was lost) is treated
/// as an implied terminate.
MasterReply await_reply(vmpi::Comm& comm, const ClusterParams& params,
                        std::uint64_t seq, const WorkerReport& report);

/// Master-side per-worker reply channel: stamps every reply with the seq of
/// the worker's last processed report, caches the encoded bytes, and
/// answers duplicate (retransmitted) reports by re-sending the cached reply
/// instead of letting the master fold the results twice.
class ReplyChannel {
 public:
  explicit ReplyChannel(int p) : last_seq_(p, 0), last_reply_(p) {}

  /// Was this report already processed? (seq 0 = unsequenced, never a dup.)
  bool is_duplicate(int worker, std::uint64_t seq) const {
    return seq != 0 && seq == last_seq_[worker];
  }
  void note_seq(int worker, std::uint64_t seq) { last_seq_[worker] = seq; }

  /// Stamp reply.seq, encode, cache, and send to `worker`.
  void send(vmpi::Comm& comm, int worker, MasterReply& reply);
  /// Re-send the cached reply (no-op if none was ever sent).
  void resend_cached(vmpi::Comm& comm, int worker);

 private:
  std::vector<std::uint64_t> last_seq_;
  std::vector<std::vector<std::uint8_t>> last_reply_;
};

/// One epoch-stamped heartbeat round (master side). A worker whose report
/// is already queued is alive by definition (this also covers workers
/// blocked in a synchronous send to us). Anyone else gets a ping and a
/// bounded window to ack; non-responders are passed to `declare_dead`. A
/// false positive is safe: the "zombie"'s later reports still fold
/// idempotently and it is terminated on its next contact, at the cost of
/// some duplicated work.
void heartbeat_round(vmpi::Comm& comm, const ClusterParams& params,
                     std::uint64_t epoch,
                     const std::vector<std::uint8_t>& alive,
                     const std::vector<std::uint8_t>& terminated,
                     std::uint64_t& heartbeats_sent,
                     const std::function<void(int)>& declare_dead);

/// Ping every parked worker (their master-silence clocks get no replies)
/// and drain stray acks from previous rounds.
template <typename IdleRange>
void keepalive_pings(vmpi::Comm& comm, const IdleRange& idle,
                     const std::vector<std::uint8_t>& alive,
                     std::uint64_t epoch, std::uint64_t& heartbeats_sent) {
  vmpi::Status s;
  while (comm.iprobe(vmpi::kAnySource, kTagAck, &s))
    (void)comm.recv_value<std::uint64_t>(s.source, kTagAck);
  for (int w : idle) {
    if (!alive[w]) continue;
    comm.send_value<std::uint64_t>(w, kTagPing, epoch);
    ++heartbeats_sent;
  }
}

}  // namespace pgasm::core
