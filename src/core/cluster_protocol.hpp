// Message-level protocol for the master–worker clustering loop (paper
// Fig. 6), split out of the coordinator: wire tags, heartbeat ping/ack,
// the worker's report-send/reply-wait state machine with retransmission,
// and the master's per-worker reply channel with its duplicate-report
// defence. Scheduling policy (what to dispatch, when to terminate) lives in
// cluster_scheduler.*; this layer only moves and acknowledges messages.
//
// Zero-copy discipline: reports and replies are encoded straight into vmpi
// payload buffers and MOVED into the destination mailbox
// (Comm::send_payload). The worker's retransmission path re-encodes from
// the kept WorkerReport — retransmits are rare, first sends are not — and
// the master's reply cache keeps the encoded bytes because a cached reply
// must survive to be re-sent.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/cluster_params.hpp"
#include "core/wire.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::core {

/// Protocol message kinds. The enumerator values ARE the vmpi tags on the
/// wire (kept from the integer-tag era, so old traces and the kTag*
/// aliases below stay valid); to_tag() converts at the comm boundary.
/// Being an enum class makes every dispatch switch compiler-checked:
/// -Werror=switch (always on, see pgasm_warnings) turns an unhandled kind
/// into a build break, and pgasm-lint W009 additionally rejects a silent
/// `default:` that would mask one.
enum class MsgKind : std::uint8_t {
  kReport = 101,  ///< worker -> master: results + new pairs + progress
  kReply = 102,   ///< master -> worker: batch / park / terminate
  kPing = 103,    ///< master -> worker heartbeat (epoch-stamped u64)
  kAck = 104,     ///< worker -> master heartbeat ack (echoes the epoch)
};

/// Every protocol kind, for table-driven iteration (protocol_check, tests).
inline constexpr MsgKind kAllMsgKinds[] = {MsgKind::kReport, MsgKind::kReply,
                                           MsgKind::kPing, MsgKind::kAck};

/// vmpi tag for a message kind (the enumerator value, by construction).
constexpr int to_tag(MsgKind kind) noexcept { return static_cast<int>(kind); }

/// Classify a vmpi tag probed off the wire; nullopt for tags outside the
/// protocol. Exhaustive over MsgKind (enforced by -Werror=switch + W009).
constexpr std::optional<MsgKind> msg_kind_of(int tag) noexcept {
  const auto kind = static_cast<MsgKind>(tag);
  switch (kind) {
    case MsgKind::kReport:
    case MsgKind::kReply:
    case MsgKind::kPing:
    case MsgKind::kAck:
      return kind;
  }
  return std::nullopt;
}

/// Stable lowercase name ("report", "reply", "ping", "ack") for logs and
/// trace args. Exhaustive switch: adding a MsgKind without naming it here
/// is a compile error.
constexpr const char* msg_kind_name(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kReport:
      return "report";
    case MsgKind::kReply:
      return "reply";
    case MsgKind::kPing:
      return "ping";
    case MsgKind::kAck:
      return "ack";
  }
  return "?";  // unreachable for valid kinds; keeps the function total
}

// Legacy integer tag aliases (single source of truth: MsgKind). The
// `pgasm-wire:` annotations are machine-checked by tools/lint/pgasm_lint.py:
// every codec-bearing tag must name exactly one encode/decode pair declared
// in core/wire.hpp, each pair must be claimed by exactly one tag, and a
// round-trip test exercising both halves must exist under tests/.
inline constexpr int kTagReport = to_tag(MsgKind::kReport);  // worker -> master
                                        // pgasm-wire: encode_report/decode_report
inline constexpr int kTagReply = to_tag(MsgKind::kReply);  // master -> worker
                                        // pgasm-wire: encode_reply/decode_reply
inline constexpr int kTagPing = to_tag(MsgKind::kPing);  // heartbeat
                                        // pgasm-wire: raw-u64
inline constexpr int kTagAck = to_tag(MsgKind::kAck);  // heartbeat ack
                                        // pgasm-wire: raw-u64

// --- Declarative protocol table --------------------------------------------
//
// One row per message kind: direction, codec pair, consuming handler, and —
// because the fault-tolerance layer's whole correctness argument rests on
// them — the recovery path when an instance is dropped and the defence when
// it is duplicated. tools/protocol_check parses this table plus
// kMasterTransitions below and statically cross-checks them against
// wire.hpp and the protocol implementation; an empty cell is a check
// failure, not a shrug.

struct MsgSpec {
  MsgKind kind;
  const char* name;          ///< must equal msg_kind_name(kind)
  const char* direction;     ///< "worker->master" or "master->worker"
  const char* encoder;       ///< producing codec / send form
  const char* decoder;       ///< consuming codec / recv form
  const char* handler;       ///< function that consumes the message
  const char* on_drop;       ///< how a lost instance is recovered
  const char* on_duplicate;  ///< how a re-delivered instance is defused
};

inline constexpr MsgSpec kProtocol[] = {
    {MsgKind::kReport, "report", "worker->master", "encode_report_payload",
     "try_decode_report", "recv_report",
     "reply_timeout retransmit in await_reply",
     "ReplyChannel::is_duplicate seq match -> resend_cached"},
    {MsgKind::kReply, "reply", "master->worker", "encode_reply_payload",
     "try_decode_reply", "await_reply",
     "duplicate report solicits ReplyChannel::resend_cached",
     "stale seq discarded by await_reply seq filter"},
    {MsgKind::kPing, "ping", "master->worker", "send_value",
     "recv_value", "poll_heartbeats",
     "next heartbeat_round or keepalive_pings re-pings",
     "idempotent: every ping is answered with its own epoch"},
    {MsgKind::kAck, "ack", "worker->master", "send_value",
     "recv_value", "heartbeat_round",
     "non-responder is passed to declare_dead (false positive is safe)",
     "stale-epoch acks filtered by the epoch stamp"},
};

/// Table row for a kind; nullptr when the table misses one (protocol_check
/// and test_cluster assert it never does).
constexpr const MsgSpec* find_spec(MsgKind kind) noexcept {
  for (const MsgSpec& spec : kProtocol) {
    if (spec.kind == kind) return &spec;
  }
  return nullptr;
}

// --- Master state machine ---------------------------------------------------
//
// The master pump (master_loop in parallel_cluster.cpp) as an explicit
// state/transition table. The implementation is a hand-rolled loop — this
// table is its contract: tools/protocol_check verifies that kTerminate is
// reachable from every state (no livelock by construction) and that every
// state has at least one outgoing edge; the `// [MasterState::k*]` markers
// in master_loop tie the code back to the states.

enum class MasterState : std::uint8_t {
  kProbe,       ///< bounded wait for any worker report
  kHeartbeat,   ///< probe timed out: ping workers, reap non-responders
  kFold,        ///< decode + fold a report; answer duplicates from cache
  kDispatch,    ///< feed idle workers; dispatch, park, or terminate sender
  kCheckpoint,  ///< periodic recoverable-state write
  kTerminate,   ///< all workers terminated or dead; run over
};

inline constexpr MasterState kAllMasterStates[] = {
    MasterState::kProbe,    MasterState::kHeartbeat,  MasterState::kFold,
    MasterState::kDispatch, MasterState::kCheckpoint, MasterState::kTerminate,
};

/// Stable lowercase state name; exhaustive switch (see msg_kind_name).
constexpr const char* master_state_name(MasterState s) noexcept {
  switch (s) {
    case MasterState::kProbe:
      return "probe";
    case MasterState::kHeartbeat:
      return "heartbeat";
    case MasterState::kFold:
      return "fold";
    case MasterState::kDispatch:
      return "dispatch";
    case MasterState::kCheckpoint:
      return "checkpoint";
    case MasterState::kTerminate:
      return "terminate";
  }
  return "?";
}

struct MasterTransition {
  MasterState from;
  MasterState to;
  const char* on;  ///< the condition taking this edge
};

inline constexpr MasterTransition kMasterTransitions[] = {
    {MasterState::kProbe, MasterState::kFold, "report queued"},
    {MasterState::kProbe, MasterState::kHeartbeat, "probe timeout"},
    {MasterState::kHeartbeat, MasterState::kProbe,
     "pinged workers acked or were reaped; work remains"},
    {MasterState::kHeartbeat, MasterState::kTerminate,
     "remaining == 0 after reaping (all terminated or dead)"},
    {MasterState::kFold, MasterState::kDispatch,
     "report folded, zombie dismissed, or duplicate re-answered"},
    {MasterState::kDispatch, MasterState::kCheckpoint,
     "checkpoint cadence reached"},
    {MasterState::kDispatch, MasterState::kProbe, "reporter answered"},
    {MasterState::kDispatch, MasterState::kTerminate, "remaining == 0"},
    {MasterState::kCheckpoint, MasterState::kProbe, "checkpoint written"},
};

// --- Worker state machine ---------------------------------------------------
//
// The worker pump (worker_loop in parallel_cluster.cpp) as an explicit
// state/transition table, mirroring kMasterTransitions above. The
// `// [WorkerState::k*]` markers in worker_loop tie the code back to the
// states; tools/protocol_check verifies the markers exist, that kShutdown
// is reachable from every state, and that every non-terminal state has an
// outgoing edge. tools/verify/pgasm-model goes further: it composes this
// machine with the master machine and a bounded lossy channel and
// exhaustively proves deadlock freedom and terminate-reachability.

enum class WorkerState : std::uint8_t {
  kGenerate,    ///< answer pings, consume queued terminates, build a report
  kSendReport,  ///< hand the encoded report to the transport (ssend-aware)
  kAlign,       ///< align the previous batch while the reply is in flight
  kAwaitReply,  ///< wait for the reply to this seq; retransmit on timeout
  kApplyReply,  ///< adopt the new batch; rebuild taken-over portions
  kShutdown,    ///< terminate consumed (or implied); drain and exit
};

inline constexpr WorkerState kAllWorkerStates[] = {
    WorkerState::kGenerate,   WorkerState::kSendReport,
    WorkerState::kAlign,      WorkerState::kAwaitReply,
    WorkerState::kApplyReply, WorkerState::kShutdown,
};

/// Stable lowercase state name; exhaustive switch (see msg_kind_name).
constexpr const char* worker_state_name(WorkerState s) noexcept {
  switch (s) {
    case WorkerState::kGenerate:
      return "generate";
    case WorkerState::kSendReport:
      return "send_report";
    case WorkerState::kAlign:
      return "align";
    case WorkerState::kAwaitReply:
      return "await_reply";
    case WorkerState::kApplyReply:
      return "apply_reply";
    case WorkerState::kShutdown:
      return "shutdown";
  }
  return "?";
}

struct WorkerTransition {
  WorkerState from;
  WorkerState to;
  const char* on;  ///< the condition taking this edge
};

inline constexpr WorkerTransition kWorkerTransitions[] = {
    {WorkerState::kGenerate, WorkerState::kShutdown,
     "queued terminate consumed before the report send"},
    {WorkerState::kGenerate, WorkerState::kSendReport,
     "report built: results + new pairs + progress"},
    {WorkerState::kSendReport, WorkerState::kAlign,
     "report handed to the transport (rendezvoused when use_ssend)"},
    {WorkerState::kAlign, WorkerState::kAwaitReply,
     "previous batch aligned, heartbeats answered throughout"},
    {WorkerState::kAwaitReply, WorkerState::kAwaitReply,
     "reply_timeout: report retransmitted (master answers from cache)"},
    {WorkerState::kAwaitReply, WorkerState::kAwaitReply,
     "park reply: wait quietly with uncapped keepalive retransmits"},
    {WorkerState::kAwaitReply, WorkerState::kApplyReply,
     "dispatch reply matching this seq"},
    {WorkerState::kAwaitReply, WorkerState::kShutdown,
     "terminate reply (explicit, or implied by a finished master)"},
    {WorkerState::kApplyReply, WorkerState::kGenerate,
     "batch adopted; takeover portions rebuilt and fast-forwarded"},
};

// --- Receive-capability tables ----------------------------------------------
//
// Which (state, message kind) pairs each side may consume, and the handler
// that does it. pgasm-model checks every message consumption in the
// explored state space against these rows — a reachable consumption with no
// declared row is a property violation (an undeclared protocol path), and
// pgasm-lint W015 requires every wire tag to appear in exactly one
// declarative table.

struct WorkerRecvSpec {
  WorkerState state;
  MsgKind kind;
  const char* handler;
};

inline constexpr WorkerRecvSpec kWorkerRecvs[] = {
    {WorkerState::kGenerate, MsgKind::kPing, "poll_heartbeats"},
    {WorkerState::kGenerate, MsgKind::kReply, "consume_pending_terminate"},
    {WorkerState::kAlign, MsgKind::kPing, "poll_heartbeats"},
    {WorkerState::kAwaitReply, MsgKind::kPing, "poll_heartbeats"},
    {WorkerState::kAwaitReply, MsgKind::kReply, "await_reply"},
    {WorkerState::kApplyReply, MsgKind::kPing, "poll_heartbeats"},
    {WorkerState::kShutdown, MsgKind::kPing, "drain_shutdown_messages"},
    {WorkerState::kShutdown, MsgKind::kReply, "drain_shutdown_messages"},
};

struct MasterRecvSpec {
  MasterState state;
  MsgKind kind;
  const char* handler;
};

inline constexpr MasterRecvSpec kMasterRecvs[] = {
    {MasterState::kFold, MsgKind::kReport, "recv_report"},
    {MasterState::kHeartbeat, MsgKind::kAck, "heartbeat_round"},
    {MasterState::kDispatch, MsgKind::kAck, "keepalive_pings"},
    {MasterState::kTerminate, MsgKind::kReport, "drain_worker_traffic"},
    {MasterState::kTerminate, MsgKind::kAck, "drain_worker_traffic"},
};

/// Answer any queued heartbeat pings from the master. Returns how many were
/// answered (the worker's master-silence clock resets on contact).
int poll_heartbeats(vmpi::Comm& comm);

/// Master-side receive of the report already probed from `source`. A
/// payload that fails to decode (truncated, mistagged, corrupt counts) is
/// returned as a typed WireError — the caller drops it, the worker's
/// retransmission timer re-sends the report, and a healthy retransmit
/// recovers the exchange. Decode failures are counted in the
/// `wire.decode_errors` metric and traced as `decode_error` instants.
WireResult<WorkerReport> recv_report(vmpi::Comm& comm, int source);

/// Worker-side drain of unsolicited queued replies before a (possibly
/// synchronous) report send. Returns true when a terminate order was
/// consumed: this worker was declared dead (a false positive, since it is
/// here) or the run is over. Stale duplicate replies and undecodable
/// payloads are discarded.
bool consume_pending_terminate(vmpi::Comm& comm);

/// Worker-side shutdown drain, called once after a terminate is consumed.
/// Eats queued heartbeat pings WITHOUT acking them (the master has already
/// written this worker off — an ack now would itself be orphaned) plus any
/// duplicate replies behind the terminate. The master pings only ranks it
/// has not yet terminated and per-sender delivery is FIFO, so every such
/// ping is already queued by the time the terminate is read: after this
/// drain a fault-free run leaves no unreceived sends for the causal trace
/// analyzer to flag. Returns how many messages were consumed.
int drain_shutdown_messages(vmpi::Comm& comm);

/// Master-side shutdown drain: consume queued heartbeat acks and
/// retransmitted reports that crossed a terminate in flight. The receive
/// also matters for liveness under use_ssend — a written-off worker can be
/// parked inside a synchronous report send that only completes when the
/// message is consumed. Returns how many messages were consumed; call it
/// until every worker has exited so the final sweep is complete.
int drain_worker_traffic(vmpi::Comm& comm);

/// Encode and send a worker report to the master (moved payload; ssend when
/// the params ask for synchronous reports).
void send_report(vmpi::Comm& comm, const ClusterParams& params,
                 const WorkerReport& report);

/// Worker-side wait for the reply answering report `seq`, polling
/// heartbeats in short timeout slices. Pings prove the master alive but not
/// that it got the report, so they do not extend the reply deadline: after
/// params.reply_timeout without a matching reply (and not parked), the
/// report is retransmitted (re-encoded from `report`) — the master discards
/// the duplicate by seq and re-sends its cached reply, which recovers a
/// dropped report or a dropped reply alike. Throws TimeoutError when the
/// master has failed, has been silent (no reply, no ping) for
/// params.master_timeout seconds, or has not answered
/// params.reply_max_retries retransmissions. A master that finished without
/// this worker ever hearing a terminate (the terminate was lost) is treated
/// as an implied terminate.
MasterReply await_reply(vmpi::Comm& comm, const ClusterParams& params,
                        std::uint64_t seq, const WorkerReport& report);

/// Master-side per-worker reply channel: stamps every reply with the seq of
/// the worker's last processed report, caches the encoded bytes, and
/// answers duplicate (retransmitted) reports by re-sending the cached reply
/// instead of letting the master fold the results twice.
class ReplyChannel {
 public:
  explicit ReplyChannel(int p) : last_seq_(p, 0), last_reply_(p) {}

  /// Was this report already processed? (seq 0 = unsequenced, never a dup.)
  bool is_duplicate(int worker, std::uint64_t seq) const {
    return seq != 0 && seq == last_seq_[worker];
  }
  void note_seq(int worker, std::uint64_t seq) { last_seq_[worker] = seq; }

  /// Stamp reply.seq, encode, cache, and send to `worker`.
  void send(vmpi::Comm& comm, int worker, MasterReply& reply);
  /// Re-send the cached reply (no-op if none was ever sent).
  void resend_cached(vmpi::Comm& comm, int worker);

 private:
  std::vector<std::uint64_t> last_seq_;
  std::vector<std::vector<std::uint8_t>> last_reply_;
};

/// One epoch-stamped heartbeat round (master side). A worker whose report
/// is already queued is alive by definition (this also covers workers
/// blocked in a synchronous send to us). Anyone else gets a ping and a
/// bounded window to ack; non-responders are passed to `declare_dead`. A
/// false positive is safe: the "zombie"'s later reports still fold
/// idempotently and it is terminated on its next contact, at the cost of
/// some duplicated work.
void heartbeat_round(vmpi::Comm& comm, const ClusterParams& params,
                     std::uint64_t epoch,
                     const std::vector<std::uint8_t>& alive,
                     const std::vector<std::uint8_t>& terminated,
                     std::uint64_t& heartbeats_sent,
                     const std::function<void(int)>& declare_dead);

/// Ping every parked worker (their master-silence clocks get no replies)
/// and drain stray acks from previous rounds.
template <typename IdleRange>
void keepalive_pings(vmpi::Comm& comm, const IdleRange& idle,
                     const std::vector<std::uint8_t>& alive,
                     std::uint64_t epoch, std::uint64_t& heartbeats_sent) {
  vmpi::Status s;
  while (comm.iprobe(vmpi::kAnySource, to_tag(MsgKind::kAck), &s))
    (void)comm.recv_value<std::uint64_t>(s.source, to_tag(MsgKind::kAck));
  for (int w : idle) {
    if (!alive[w]) continue;
    comm.send_value<std::uint64_t>(w, to_tag(MsgKind::kPing), epoch);
    ++heartbeats_sent;
  }
}

}  // namespace pgasm::core
