#include "core/cluster_protocol.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace pgasm::core {

namespace {

// A corrupt peer payload is counted, traced, logged, and dropped — never
// decoded into garbage and never fatal. The retransmission machinery
// recovers the exchange: a dropped report solicits the worker's retransmit,
// a dropped reply is re-requested by the duplicate report. A persistently
// corrupting peer starves into the heartbeat death path.
void note_decode_error(int rank, const WireError& err) {
  obs::registry().counter("wire.decode_errors", rank).inc();
  obs::instant(rank, "decode_error", "cluster", "code",
               static_cast<std::uint64_t>(err.code), "offset", err.offset);
  util::log_warn() << "dropping undecodable payload: " << err.message();
}

}  // namespace

int poll_heartbeats(vmpi::Comm& comm) {
  int n = 0;
  vmpi::Status st;
  while (comm.iprobe(0, to_tag(MsgKind::kPing), &st)) {
    const auto epoch = comm.recv_value<std::uint64_t>(0, to_tag(MsgKind::kPing));
    comm.send_value<std::uint64_t>(0, to_tag(MsgKind::kAck), epoch);
    ++n;
  }
  return n;
}

int drain_shutdown_messages(vmpi::Comm& comm) {
  int n = 0;
  vmpi::Status st;
  while (comm.iprobe(0, to_tag(MsgKind::kPing), &st)) {
    comm.recv_value<std::uint64_t>(0, to_tag(MsgKind::kPing));
    ++n;
  }
  // Duplicate replies queued behind the terminate (a zombie-path terminate
  // re-sent after a false death declaration, or retransmission crossfire).
  while (comm.iprobe(0, to_tag(MsgKind::kReply), &st)) {
    comm.recv(0, to_tag(MsgKind::kReply));
    ++n;
  }
  return n;
}

int drain_worker_traffic(vmpi::Comm& comm) {
  int n = 0;
  vmpi::Status st;
  while (comm.iprobe(vmpi::kAnySource, to_tag(MsgKind::kAck), &st)) {
    comm.recv_value<std::uint64_t>(st.source, to_tag(MsgKind::kAck));
    ++n;
  }
  while (comm.iprobe(vmpi::kAnySource, to_tag(MsgKind::kReport), &st)) {
    comm.recv(st.source, to_tag(MsgKind::kReport));
    ++n;
  }
  return n;
}

WireResult<WorkerReport> recv_report(vmpi::Comm& comm, int source) {
  const auto raw = comm.recv(source, to_tag(MsgKind::kReport));
  auto scope = comm.compute_scope();
  auto decoded = try_decode_report(std::span<const std::byte>(raw));
  if (!decoded) note_decode_error(comm.rank(), decoded.error());
  return decoded;
}

bool consume_pending_terminate(vmpi::Comm& comm) {
  vmpi::Status qs;
  while (comm.iprobe(0, to_tag(MsgKind::kReply), &qs)) {
    const auto raw = comm.recv(0, to_tag(MsgKind::kReply));
    const auto reply = try_decode_reply(std::span<const std::byte>(raw));
    if (!reply) {
      note_decode_error(comm.rank(), reply.error());
      continue;
    }
    if (reply.value().terminate) return true;
  }
  return false;
}

void send_report(vmpi::Comm& comm, const ClusterParams& params,
                 const WorkerReport& report) {
  auto payload = encode_report_payload(report);
  if (params.use_ssend) {
    comm.ssend_payload(0, to_tag(MsgKind::kReport), std::move(payload));
  } else {
    comm.send_payload(0, to_tag(MsgKind::kReport), std::move(payload));
  }
}

MasterReply await_reply(vmpi::Comm& comm, const ClusterParams& params,
                        std::uint64_t seq, const WorkerReport& report) {
  util::WallTimer contact;     // master silence: reset by pings and replies
  util::WallTimer reply_wait;  // since the report was (re)sent
  bool parked = false;
  std::uint32_t retransmits = 0;
  for (;;) {
    if (poll_heartbeats(comm) > 0) contact.restart();
    if (comm.rank_failed(0))
      throw vmpi::TimeoutError("worker: master rank failed");
    if (comm.rank_done(0)) {
      vmpi::Status qs;
      if (!comm.iprobe(0, to_tag(MsgKind::kReply), &qs)) {
        // The master finished and nothing is queued for us: our terminate
        // was lost in flight. Act on the implied terminate.
        MasterReply bye;
        bye.terminate = 1;
        return bye;
      }
    }
    const double left = params.master_timeout - contact.elapsed();
    if (left <= 0)
      throw vmpi::TimeoutError("worker: no contact from master within " +
                               std::to_string(params.master_timeout) + "s");
    if (reply_wait.elapsed() >= params.reply_timeout) {
      // Parked retransmits are uncapped keepalives: the park proved the
      // master received the report, and the duplicate solicits the cached
      // reply again in case the eventual dispatch was itself dropped.
      if (!parked && ++retransmits > params.reply_max_retries)
        throw vmpi::TimeoutError(
            "worker: no reply from master after " +
            std::to_string(params.reply_max_retries) + " retransmits");
      obs::instant(comm.rank(), "retransmit", "cluster", "seq", seq, "parked",
                   parked ? 1 : 0);
      send_report(comm, params, report);
      reply_wait.restart();
    }
    std::vector<std::byte> raw;
    try {
      raw = comm.recv_timeout(0, to_tag(MsgKind::kReply), std::min(0.05, left));
    } catch (const vmpi::TimeoutError&) {
      continue;  // slice expired; answer pings and re-check the bounds
    }
    contact.restart();
    auto decoded = [&] {
      auto scope = comm.compute_scope();
      return try_decode_reply(std::span<const std::byte>(raw));
    }();
    if (!decoded) {
      // Drop it: reply_wait keeps running, so the reply_timeout path
      // retransmits the report and the master re-sends its cached reply.
      note_decode_error(comm.rank(), decoded.error());
      continue;
    }
    MasterReply reply = std::move(decoded).take_or_throw();
    if (reply.terminate) return reply;
    if (reply.seq != seq) continue;  // stale duplicate of an older reply
    if (reply.park) {
      // Report acknowledged, nothing to do yet: wait for the next dispatch
      // with keepalive (uncapped) retransmission only.
      parked = true;
      retransmits = 0;
      reply_wait.restart();
      continue;
    }
    return reply;
  }
}

void ReplyChannel::send(vmpi::Comm& comm, int worker, MasterReply& reply) {
  reply.seq = last_seq_[worker];
  auto bytes = encode_reply_payload(reply);
  // The cache keeps its own copy — a retransmitted report may need this
  // exact reply again after the payload below has been consumed.
  last_reply_[worker].assign(
      reinterpret_cast<const std::uint8_t*>(bytes.data()),
      reinterpret_cast<const std::uint8_t*>(bytes.data()) + bytes.size());
  comm.send_payload(worker, to_tag(MsgKind::kReply), std::move(bytes));
}

void ReplyChannel::resend_cached(vmpi::Comm& comm, int worker) {
  const auto& cached = last_reply_[worker];
  if (cached.empty()) return;
  comm.send(worker, to_tag(MsgKind::kReply), cached.data(), cached.size());
}

void heartbeat_round(vmpi::Comm& comm, const ClusterParams& params,
                     std::uint64_t epoch,
                     const std::vector<std::uint8_t>& alive,
                     const std::vector<std::uint8_t>& terminated,
                     std::uint64_t& heartbeats_sent,
                     const std::function<void(int)>& declare_dead) {
  const int p = comm.size();
  obs::Span hb_span = obs::span(0, "heartbeat_round", "cluster");
  std::vector<int> pinged;
  for (int w = 1; w < p; ++w) {
    if (!alive[w] || terminated[w]) continue;
    if (comm.rank_failed(w)) {
      declare_dead(w);
      continue;
    }
    vmpi::Status s;
    if (comm.iprobe(w, to_tag(MsgKind::kReport), &s)) continue;
    comm.send_value<std::uint64_t>(w, to_tag(MsgKind::kPing), epoch);
    ++heartbeats_sent;
    pinged.push_back(w);
  }
  hb_span.arg("epoch", epoch);
  hb_span.arg("pinged", pinged.size());
  util::WallTimer t;
  while (!pinged.empty()) {
    const double left = params.worker_timeout - t.elapsed();
    if (left <= 0) break;
    try {
      vmpi::Status ack;
      const auto got = comm.recv_value_timeout<std::uint64_t>(
          vmpi::kAnySource, to_tag(MsgKind::kAck), left, &ack);
      if (got != epoch) continue;  // stale ack from an old round
      pinged.erase(std::remove(pinged.begin(), pinged.end(), ack.source),
                   pinged.end());
    } catch (const vmpi::TimeoutError&) {
      break;
    }
  }
  for (int w : pinged) {
    vmpi::Status s;
    if (comm.iprobe(w, to_tag(MsgKind::kReport), &s)) continue;  // reported meanwhile
    declare_dead(w);
  }
}

}  // namespace pgasm::core
