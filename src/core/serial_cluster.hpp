// Serial clustering (paper Fig. 3): generate promising pairs in decreasing
// maximal-match order; align a pair only when its fragments are still in
// different clusters; merge clusters on an accepted suffix–prefix overlap.
//
// The final clustering is the transitive closure of accepted overlaps and is
// independent of processing order (Section 4); the ordering heuristic only
// reduces the number of alignments computed.
#pragma once

#include <cstdint>

#include "core/cluster_params.hpp"
#include "seq/fragment_store.hpp"
#include "util/union_find.hpp"

namespace pgasm::core {

struct ClusterResult {
  util::UnionFind clusters;  ///< over fragment ids [0, n)
  ClusterStats stats;
};

/// Cluster `fragments` (forward sequences; reverse complements are handled
/// internally via the doubled store).
ClusterResult cluster_serial(const seq::FragmentStore& fragments,
                             const ClusterParams& params);

/// Shared helper: run the accept test for a promising pair expressed in
/// doubled-store ids, anchored at its maximal match.
bool pair_overlaps(const seq::FragmentStore& doubled, std::uint32_t seq_a,
                   std::uint32_t pos_a, std::uint32_t seq_b,
                   std::uint32_t pos_b, const align::OverlapParams& p);

/// Same, but returns the full alignment result (for placement extraction).
align::OverlapResult pair_overlap_details(const seq::FragmentStore& doubled,
                                          std::uint32_t seq_a,
                                          std::uint32_t pos_a,
                                          std::uint32_t seq_b,
                                          std::uint32_t pos_b,
                                          const align::OverlapParams& p);

}  // namespace pgasm::core
