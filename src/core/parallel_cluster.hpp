// Parallel master-worker clustering (paper Section 7, Figs. 6-8).
//
// Rank 0 is the master: it owns the Union-Find cluster set, the
// Pending_Work_Buf of selected-but-undispatched pairs, and the Idle_Workers
// queue; it selects pairs for alignment (only when the two fragments are
// still in different clusters), dispatches fixed-size batches, merges
// clusters from reported results, and regulates the pair-generation inflow
// with the request quantity r. Ranks 1..p-1 are workers: each builds its
// portion of the distributed GST, generates promising pairs from it in
// decreasing maximal-match order, and computes the alignments the master
// allocates — overlapping alignment computation with the wait for the
// master's reply, exactly as in Fig. 8. Passive workers (out of pairs) keep
// computing alignments until the master terminates them.
//
// Fault tolerance (see DESIGN.md "Fault model & recovery"): the master
// probes with a backed-off timeout and runs epoch-stamped heartbeat rounds
// to detect dead or stalled workers; a dead worker's in-flight batches are
// requeued (union-find merges are idempotent, so replay is safe) and its
// pair-generation role is rebuilt and fast-forwarded on a survivor. The
// master periodically checkpoints its recoverable state; cluster_parallel
// accepts a checkpoint to resume a killed run without re-aligning
// already-merged pairs.
#pragma once

#include <cstdint>

#include "core/cluster_params.hpp"
#include "core/serial_cluster.hpp"
#include "core/wire.hpp"
#include "seq/fragment_store.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::core {

struct ParallelClusterResult {
  util::UnionFind clusters;  ///< over fragment ids [0, n)
  ClusterStats stats;
  vmpi::RunCost cost;  ///< per-rank ledgers of the whole run
};

/// Content hash of a fragment store (order- and boundary-sensitive), stored
/// in checkpoints so resume can refuse a file written for different input.
std::uint64_t cluster_input_hash(const seq::FragmentStore& fragments);

/// Hash of the partition-relevant clustering parameters (ψ, w, scoring,
/// batch/ordering knobs). Operational knobs — timeouts, checkpoint cadence,
/// the ssend ablation — are excluded: changing them across a resume is
/// legitimate.
std::uint64_t cluster_params_hash(const ClusterParams& params);

/// Run the full parallel clustering pipeline (distributed GST build +
/// master-worker overlap detection) on `num_ranks` virtual ranks.
/// Requires num_ranks >= 2 (one master + at least one worker).
///
/// `faults` is forwarded to the vmpi Runtime for fault injection. `resume`
/// (optional) restores master state from a previous run's checkpoint; the
/// generation fast-forward applies only when the rank count matches the
/// checkpoint's (pair streams are per-role), otherwise generation restarts
/// and the union-find filter discards the already-merged pairs. Throws
/// std::invalid_argument if the checkpoint's fragment count or (nonzero)
/// input/params hashes do not match this run's.
ParallelClusterResult cluster_parallel(const seq::FragmentStore& fragments,
                                       const ClusterParams& params,
                                       int num_ranks,
                                       vmpi::CostParams cost_params = {},
                                       const vmpi::FaultPlan& faults = {},
                                       const ClusterCheckpoint* resume = nullptr);

}  // namespace pgasm::core
