#include "core/wire.hpp"

#include <array>
#include <cstdio>
#include <cstring>

#include <unistd.h>  // fsync — durable rename needs the data on disk first

namespace pgasm::core {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4b434750;  // "PGCK"
constexpr std::uint32_t kCheckpointVersion = 2;  // v2: input/params hashes

constexpr std::uint32_t kManifestMagic = 0x464d4750;  // "PGMF"
constexpr std::uint32_t kManifestVersion = 1;

constexpr std::uint32_t kGstCheckpointMagic = 0x54474750;  // "PGGT"
constexpr std::uint32_t kGstCheckpointVersion = 1;

// CRC-32 lookup table (IEEE 802.3 reflected polynomial), built once at
// compile time so crc32 itself is allocation- and lock-free.
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

// Codec helpers are generic over the byte container (std::uint8_t for the
// legacy/test-facing API and checkpoints, std::byte for the zero-copy vmpi
// payload path) so both front ends share one serializer.

template <typename Byte, typename T>
void append_pod(std::vector<Byte>& out, const T& v) {
  const std::size_t base = out.size();
  out.resize(base + sizeof(T));
  std::memcpy(out.data() + base, &v, sizeof(T));
}

template <typename Byte, typename T>
void append_vec(std::vector<Byte>& out, const std::vector<T>& v) {
  const std::uint32_t n = static_cast<std::uint32_t>(v.size());
  const std::size_t base = out.size();
  out.resize(base + 4 + n * sizeof(T));
  std::memcpy(out.data() + base, &n, 4);
  if (n) std::memcpy(out.data() + base + 4, v.data(), n * sizeof(T));
}

// Bounds-checked reader over a received payload. Every read_* either
// succeeds or records a WireError and makes all subsequent reads no-ops, so
// decoders are straight-line code with one failure check at the end.
template <typename Byte>
class Cursor {
 public:
  explicit Cursor(std::span<const Byte> in) : in_(in) {}

  bool ok() const noexcept { return !failed_; }
  const WireError& error() const noexcept { return err_; }
  std::size_t offset() const noexcept { return off_; }

  bool fail(WireErrc code, const char* detail) noexcept {
    if (!failed_) {
      failed_ = true;
      err_ = WireError{code, off_, detail};
    }
    return false;
  }

  template <typename T>
  bool read(T& v, const char* what) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (failed_) return false;
    if (sizeof(T) > in_.size() - off_) {
      return fail(WireErrc::kTruncated, what);
    }
    std::memcpy(&v, in_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool read_vec(std::vector<T>& v, const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (failed_) return false;
    std::uint32_t n = 0;
    if (!read(n, what)) return false;
    // Check the element run against the remaining bytes BEFORE allocating:
    // a corrupt count must produce a typed error, not a multi-gigabyte
    // resize. 64-bit arithmetic, so n * sizeof(T) cannot wrap.
    const std::uint64_t need = std::uint64_t{n} * sizeof(T);
    if (need > in_.size() - off_) {
      return fail(WireErrc::kTruncated, what);
    }
    v.resize(n);
    if (n) std::memcpy(v.data(), in_.data() + off_, n * sizeof(T));
    off_ += static_cast<std::size_t>(need);
    return true;
  }

  bool expect_tag(std::uint8_t want, const char* what) noexcept {
    std::uint8_t got = 0;
    if (!read(got, what)) return false;
    if (got != want) {
      // Report the tag's own offset, not the post-read position.
      --off_;
      return fail(WireErrc::kBadTag, what);
    }
    return true;
  }

  bool expect_end(const char* what) noexcept {
    if (failed_) return false;
    if (off_ != in_.size()) return fail(WireErrc::kOversized, what);
    return true;
  }

 private:
  std::span<const Byte> in_;
  std::size_t off_ = 0;
  bool failed_ = false;
  WireError err_{};
};

template <typename Byte>
std::vector<Byte> encode_report_t(const WorkerReport& r) {
  std::vector<Byte> out;
  out.reserve(22 + r.results.size() * sizeof(ResultMsg) +
              r.new_pairs.size() * sizeof(PairMsg) +
              r.progress.size() * sizeof(RoleProgress));
  out.push_back(static_cast<Byte>(kWireKindReport));
  append_pod(out, r.seq);
  append_vec(out, r.results);
  append_vec(out, r.new_pairs);
  append_vec(out, r.progress);
  out.push_back(static_cast<Byte>(r.exhausted));
  return out;
}

template <typename Byte>
WireResult<WorkerReport> try_decode_report_t(std::span<const Byte> bytes) {
  Cursor<Byte> cur(bytes);
  WorkerReport r;
  cur.expect_tag(kWireKindReport, "report kind tag");
  cur.read(r.seq, "report seq");
  cur.read_vec(r.results, "report results");
  cur.read_vec(r.new_pairs, "report new_pairs");
  cur.read_vec(r.progress, "report progress");
  cur.read(r.exhausted, "report exhausted flag");
  cur.expect_end("report trailing bytes");
  if (!cur.ok()) return cur.error();
  return r;
}

template <typename Byte>
std::vector<Byte> encode_reply_t(const MasterReply& r) {
  std::vector<Byte> out;
  out.reserve(23 + r.batch.size() * sizeof(PairMsg) +
              r.takeovers.size() * sizeof(TakeoverOrder));
  out.push_back(static_cast<Byte>(kWireKindReply));
  append_pod(out, r.seq);
  append_vec(out, r.batch);
  append_vec(out, r.takeovers);
  append_pod(out, r.request_r);
  out.push_back(static_cast<Byte>(r.terminate));
  out.push_back(static_cast<Byte>(r.park));
  return out;
}

template <typename Byte>
WireResult<MasterReply> try_decode_reply_t(std::span<const Byte> bytes) {
  Cursor<Byte> cur(bytes);
  MasterReply r;
  cur.expect_tag(kWireKindReply, "reply kind tag");
  cur.read(r.seq, "reply seq");
  cur.read_vec(r.batch, "reply batch");
  cur.read_vec(r.takeovers, "reply takeovers");
  cur.read(r.request_r, "reply request_r");
  cur.read(r.terminate, "reply terminate flag");
  cur.read(r.park, "reply park flag");
  cur.expect_end("reply trailing bytes");
  if (!cur.ok()) return cur.error();
  return r;
}

}  // namespace

const char* wire_errc_name(WireErrc code) noexcept {
  switch (code) {
    case WireErrc::kTruncated: return "truncated";
    case WireErrc::kOversized: return "oversized";
    case WireErrc::kBadTag: return "bad_tag";
    case WireErrc::kBadMagic: return "bad_magic";
    case WireErrc::kBadVersion: return "bad_version";
    case WireErrc::kCountMismatch: return "count_mismatch";
    case WireErrc::kBadValue: return "bad_value";
    case WireErrc::kBadCrc: return "bad_crc";
    case WireErrc::kIo: return "io";
  }
  return "unknown";
}

std::string WireError::message() const {
  std::string out = "wire: ";
  out += wire_errc_name(code);
  out += " at offset ";
  out += std::to_string(offset);
  if (detail != nullptr && detail[0] != '\0') {
    out += " (";
    out += detail;
    out += ")";
  }
  return out;
}

std::vector<std::uint8_t> encode_report(const WorkerReport& r) {
  return encode_report_t<std::uint8_t>(r);
}

WorkerReport decode_report(const std::vector<std::uint8_t>& bytes) {
  return try_decode_report(std::span<const std::uint8_t>(bytes))
      .take_or_throw();
}

std::vector<std::uint8_t> encode_reply(const MasterReply& r) {
  return encode_reply_t<std::uint8_t>(r);
}

MasterReply decode_reply(const std::vector<std::uint8_t>& bytes) {
  return try_decode_reply(std::span<const std::uint8_t>(bytes))
      .take_or_throw();
}

std::vector<std::byte> encode_report_payload(const WorkerReport& r) {
  return encode_report_t<std::byte>(r);
}

WorkerReport decode_report(std::span<const std::byte> bytes) {
  return try_decode_report(bytes).take_or_throw();
}

std::vector<std::byte> encode_reply_payload(const MasterReply& r) {
  return encode_reply_t<std::byte>(r);
}

MasterReply decode_reply(std::span<const std::byte> bytes) {
  return try_decode_reply(bytes).take_or_throw();
}

WireResult<WorkerReport> try_decode_report(
    std::span<const std::uint8_t> bytes) {
  return try_decode_report_t(bytes);
}

WireResult<WorkerReport> try_decode_report(std::span<const std::byte> bytes) {
  return try_decode_report_t(bytes);
}

WireResult<MasterReply> try_decode_reply(std::span<const std::uint8_t> bytes) {
  return try_decode_reply_t(bytes);
}

WireResult<MasterReply> try_decode_reply(std::span<const std::byte> bytes) {
  return try_decode_reply_t(bytes);
}

std::vector<std::uint8_t> encode_checkpoint(const ClusterCheckpoint& c) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + c.labels.size() * 4 + c.pending.size() * sizeof(PairMsg) +
              c.progress.size() * sizeof(RoleProgress));
  append_pod(out, kCheckpointMagic);
  append_pod(out, kCheckpointVersion);
  append_pod(out, c.epoch);
  append_pod(out, c.num_ranks);
  append_pod(out, c.n_fragments);
  append_pod(out, c.input_hash);
  append_pod(out, c.params_hash);
  append_vec(out, c.labels);
  append_vec(out, c.pending);
  append_vec(out, c.progress);
  append_pod(out, c.pairs_generated);
  append_pod(out, c.pairs_selected);
  append_pod(out, c.pairs_aligned);
  append_pod(out, c.pairs_accepted);
  append_pod(out, c.merges);
  append_pod(out, c.merges_rejected_inconsistent);
  return out;
}

WireResult<ClusterCheckpoint> try_decode_checkpoint(
    std::span<const std::uint8_t> bytes) {
  Cursor<std::uint8_t> cur(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (cur.read(magic, "checkpoint magic") && magic != kCheckpointMagic) {
    cur.fail(WireErrc::kBadMagic, "checkpoint magic");
  }
  if (cur.read(version, "checkpoint version") &&
      version != kCheckpointVersion) {
    cur.fail(WireErrc::kBadVersion, "checkpoint version");
  }
  ClusterCheckpoint c;
  cur.read(c.epoch, "checkpoint epoch");
  cur.read(c.num_ranks, "checkpoint num_ranks");
  cur.read(c.n_fragments, "checkpoint n_fragments");
  cur.read(c.input_hash, "checkpoint input_hash");
  cur.read(c.params_hash, "checkpoint params_hash");
  cur.read_vec(c.labels, "checkpoint labels");
  cur.read_vec(c.pending, "checkpoint pending");
  cur.read_vec(c.progress, "checkpoint progress");
  cur.read(c.pairs_generated, "checkpoint pairs_generated");
  cur.read(c.pairs_selected, "checkpoint pairs_selected");
  cur.read(c.pairs_aligned, "checkpoint pairs_aligned");
  cur.read(c.pairs_accepted, "checkpoint pairs_accepted");
  cur.read(c.merges, "checkpoint merges");
  cur.read(c.merges_rejected_inconsistent, "checkpoint merges_rejected");
  cur.expect_end("checkpoint trailing bytes");
  if (!cur.ok()) return cur.error();
  // Semantic validation: restore indexes `first[label]` over n_fragments
  // slots, so a label count or value out of range would corrupt memory long
  // after the decode "succeeded". Reject it here, as a typed error.
  if (c.labels.size() != c.n_fragments) {
    return WireError{WireErrc::kCountMismatch, cur.offset(),
                     "checkpoint label count != n_fragments"};
  }
  for (const std::uint32_t l : c.labels) {
    if (l >= c.n_fragments) {
      return WireError{WireErrc::kBadValue, cur.offset(),
                       "checkpoint label out of range"};
    }
  }
  return c;
}

ClusterCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& raw) {
  return try_decode_checkpoint(std::span<const std::uint8_t>(raw))
      .take_or_throw();
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = kCrc32Table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void save_frame_atomic(const std::string& path,
                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(5 + payload.size());
  frame.push_back(kFrameVersion);
  append_pod(frame, crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw std::runtime_error("frame: cannot open " + tmp);
  const std::size_t written = std::fwrite(frame.data(), 1, frame.size(), f);
  const bool flushed = std::fflush(f) == 0;
  // A rename is only atomic-durable if the temp file's data already hit the
  // disk; otherwise a crash can leave the final name pointing at garbage.
  const bool synced = flushed && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (written != frame.size() || !synced) {
    std::remove(tmp.c_str());
    throw std::runtime_error("frame: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("frame: rename failed for " + path);
  }
}

WireResult<std::vector<std::uint8_t>> try_load_frame(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return WireError{WireErrc::kIo, 0, "frame file unreadable"};
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return WireError{WireErrc::kIo, bytes.size(), "frame read error"};
  }
  if (bytes.size() < 5) {
    return WireError{WireErrc::kTruncated, bytes.size(), "frame header"};
  }
  if (bytes[0] != kFrameVersion) {
    return WireError{WireErrc::kBadVersion, 0, "frame version"};
  }
  std::uint32_t want = 0;
  std::memcpy(&want, bytes.data() + 1, 4);
  std::vector<std::uint8_t> payload(bytes.begin() + 5, bytes.end());
  if (crc32(std::span<const std::uint8_t>(payload)) != want) {
    return WireError{WireErrc::kBadCrc, 5, "frame payload checksum"};
  }
  return payload;
}

void save_checkpoint(const std::string& path, const ClusterCheckpoint& c) {
  const auto bytes = encode_checkpoint(c);
  save_frame_atomic(path, std::span<const std::uint8_t>(bytes));
}

WireResult<ClusterCheckpoint> try_load_checkpoint(const std::string& path) {
  auto frame = try_load_frame(path);
  if (!frame) return frame.error();
  const auto payload = std::move(frame).take_or_throw();
  return try_decode_checkpoint(std::span<const std::uint8_t>(payload));
}

ClusterCheckpoint load_checkpoint(const std::string& path) {
  return try_load_checkpoint(path).take_or_throw();
}

std::vector<std::uint8_t> encode_manifest(const RunManifest& m) {
  std::vector<std::uint8_t> out;
  out.reserve(36 + m.phases.size() * sizeof(PhaseEntry));
  append_pod(out, kManifestMagic);
  append_pod(out, kManifestVersion);
  append_pod(out, m.generation);
  append_pod(out, m.input_hash);
  append_pod(out, m.params_hash);
  append_vec(out, m.phases);
  return out;
}

WireResult<RunManifest> try_decode_manifest(
    std::span<const std::uint8_t> bytes) {
  Cursor<std::uint8_t> cur(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (cur.read(magic, "manifest magic") && magic != kManifestMagic) {
    cur.fail(WireErrc::kBadMagic, "manifest magic");
  }
  if (cur.read(version, "manifest version") && version != kManifestVersion) {
    cur.fail(WireErrc::kBadVersion, "manifest version");
  }
  RunManifest m;
  cur.read(m.generation, "manifest generation");
  cur.read(m.input_hash, "manifest input_hash");
  cur.read(m.params_hash, "manifest params_hash");
  cur.read_vec(m.phases, "manifest phases");
  cur.expect_end("manifest trailing bytes");
  if (!cur.ok()) return cur.error();
  // A phase listed twice would make resume state ambiguous; the supervisor
  // never writes one, so treat it as corruption.
  std::uint64_t seen = 0;
  for (const PhaseEntry& e : m.phases) {
    if (e.phase >= 64 || (seen & (std::uint64_t{1} << e.phase)) != 0) {
      return WireError{WireErrc::kBadValue, cur.offset(),
                       "manifest duplicate or out-of-range phase id"};
    }
    seen |= std::uint64_t{1} << e.phase;
  }
  return m;
}

void save_manifest(const std::string& path, const RunManifest& m) {
  const auto bytes = encode_manifest(m);
  save_frame_atomic(path, std::span<const std::uint8_t>(bytes));
}

WireResult<RunManifest> try_load_manifest(const std::string& path) {
  auto frame = try_load_frame(path);
  if (!frame) return frame.error();
  const auto payload = std::move(frame).take_or_throw();
  return try_decode_manifest(std::span<const std::uint8_t>(payload));
}

std::vector<std::uint8_t> encode_gst_checkpoint(const GstCheckpoint& c) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + c.bucket_owner.size() * 4 + c.role_done.size());
  append_pod(out, kGstCheckpointMagic);
  append_pod(out, kGstCheckpointVersion);
  append_pod(out, c.input_hash);
  append_pod(out, c.params_hash);
  append_pod(out, c.num_ranks);
  append_pod(out, c.prefix_w);
  append_vec(out, c.bucket_owner);
  append_vec(out, c.role_done);
  return out;
}

WireResult<GstCheckpoint> try_decode_gst_checkpoint(
    std::span<const std::uint8_t> bytes) {
  Cursor<std::uint8_t> cur(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (cur.read(magic, "gst checkpoint magic") &&
      magic != kGstCheckpointMagic) {
    cur.fail(WireErrc::kBadMagic, "gst checkpoint magic");
  }
  if (cur.read(version, "gst checkpoint version") &&
      version != kGstCheckpointVersion) {
    cur.fail(WireErrc::kBadVersion, "gst checkpoint version");
  }
  GstCheckpoint c;
  cur.read(c.input_hash, "gst checkpoint input_hash");
  cur.read(c.params_hash, "gst checkpoint params_hash");
  cur.read(c.num_ranks, "gst checkpoint num_ranks");
  cur.read(c.prefix_w, "gst checkpoint prefix_w");
  cur.read_vec(c.bucket_owner, "gst checkpoint bucket_owner");
  cur.read_vec(c.role_done, "gst checkpoint role_done");
  cur.expect_end("gst checkpoint trailing bytes");
  if (!cur.ok()) return cur.error();
  // Resume rebuilds each rank's portion straight from this table; a wrong
  // size or out-of-range owner would index past the bucket array or spawn
  // a role that does not exist.
  if (c.prefix_w < 1 || c.prefix_w > 12) {
    return WireError{WireErrc::kBadValue, cur.offset(),
                     "gst checkpoint prefix_w out of range"};
  }
  if (c.bucket_owner.size() !=
      (std::size_t{1} << (2 * c.prefix_w))) {
    return WireError{WireErrc::kCountMismatch, cur.offset(),
                     "gst checkpoint bucket_owner count != 4^prefix_w"};
  }
  for (const std::int32_t o : c.bucket_owner) {
    if (o < -1 || o >= static_cast<std::int32_t>(c.num_ranks)) {
      return WireError{WireErrc::kBadValue, cur.offset(),
                       "gst checkpoint bucket owner out of range"};
    }
  }
  if (c.role_done.size() != c.num_ranks) {
    return WireError{WireErrc::kCountMismatch, cur.offset(),
                     "gst checkpoint role_done count != num_ranks"};
  }
  return c;
}

void save_gst_checkpoint(const std::string& path, const GstCheckpoint& c) {
  const auto bytes = encode_gst_checkpoint(c);
  save_frame_atomic(path, std::span<const std::uint8_t>(bytes));
}

WireResult<GstCheckpoint> try_load_gst_checkpoint(const std::string& path) {
  auto frame = try_load_frame(path);
  if (!frame) return frame.error();
  const auto payload = std::move(frame).take_or_throw();
  return try_decode_gst_checkpoint(std::span<const std::uint8_t>(payload));
}

}  // namespace pgasm::core
