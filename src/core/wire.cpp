#include "core/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace pgasm::core {

namespace {

template <typename T>
void append_vec(std::vector<std::uint8_t>& out, const std::vector<T>& v) {
  const std::uint32_t n = static_cast<std::uint32_t>(v.size());
  const std::size_t base = out.size();
  out.resize(base + 4 + n * sizeof(T));
  std::memcpy(out.data() + base, &n, 4);
  if (n) std::memcpy(out.data() + base + 4, v.data(), n * sizeof(T));
}

template <typename T>
std::vector<T> read_vec(const std::vector<std::uint8_t>& in,
                        std::size_t& off) {
  if (off + 4 > in.size()) throw std::runtime_error("wire: truncated header");
  std::uint32_t n;
  std::memcpy(&n, in.data() + off, 4);
  off += 4;
  if (off + n * sizeof(T) > in.size())
    throw std::runtime_error("wire: truncated payload");
  std::vector<T> v(n);
  if (n) std::memcpy(v.data(), in.data() + off, n * sizeof(T));
  off += n * sizeof(T);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_report(const WorkerReport& r) {
  std::vector<std::uint8_t> out;
  out.reserve(9 + r.results.size() * sizeof(ResultMsg) +
              r.new_pairs.size() * sizeof(PairMsg));
  append_vec(out, r.results);
  append_vec(out, r.new_pairs);
  out.push_back(r.exhausted);
  return out;
}

WorkerReport decode_report(const std::vector<std::uint8_t>& bytes) {
  WorkerReport r;
  std::size_t off = 0;
  r.results = read_vec<ResultMsg>(bytes, off);
  r.new_pairs = read_vec<PairMsg>(bytes, off);
  if (off + 1 > bytes.size()) throw std::runtime_error("wire: bad report");
  r.exhausted = bytes[off];
  return r;
}

std::vector<std::uint8_t> encode_reply(const MasterReply& r) {
  std::vector<std::uint8_t> out;
  out.reserve(9 + r.batch.size() * sizeof(PairMsg));
  append_vec(out, r.batch);
  const std::size_t base = out.size();
  out.resize(base + 5);
  std::memcpy(out.data() + base, &r.request_r, 4);
  out[base + 4] = r.terminate;
  return out;
}

MasterReply decode_reply(const std::vector<std::uint8_t>& bytes) {
  MasterReply r;
  std::size_t off = 0;
  r.batch = read_vec<PairMsg>(bytes, off);
  if (off + 5 > bytes.size()) throw std::runtime_error("wire: bad reply");
  std::memcpy(&r.request_r, bytes.data() + off, 4);
  r.terminate = bytes[off + 4];
  return r;
}

}  // namespace pgasm::core
