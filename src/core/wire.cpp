#include "core/wire.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace pgasm::core {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4b434750;  // "PGCK"
constexpr std::uint32_t kCheckpointVersion = 2;  // v2: input/params hashes

// Codec helpers are generic over the byte container (std::uint8_t for the
// legacy/test-facing API and checkpoints, std::byte for the zero-copy vmpi
// payload path) so both front ends share one serializer.

template <typename Byte, typename T>
void append_pod(std::vector<Byte>& out, const T& v) {
  const std::size_t base = out.size();
  out.resize(base + sizeof(T));
  std::memcpy(out.data() + base, &v, sizeof(T));
}

template <typename T, typename Byte>
T read_pod(std::span<const Byte> in, std::size_t& off) {
  if (off + sizeof(T) > in.size())
    throw std::runtime_error("wire: truncated field");
  T v;
  std::memcpy(&v, in.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

template <typename Byte, typename T>
void append_vec(std::vector<Byte>& out, const std::vector<T>& v) {
  const std::uint32_t n = static_cast<std::uint32_t>(v.size());
  const std::size_t base = out.size();
  out.resize(base + 4 + n * sizeof(T));
  std::memcpy(out.data() + base, &n, 4);
  if (n) std::memcpy(out.data() + base + 4, v.data(), n * sizeof(T));
}

template <typename T, typename Byte>
std::vector<T> read_vec(std::span<const Byte> in, std::size_t& off) {
  if (off + 4 > in.size()) throw std::runtime_error("wire: truncated header");
  std::uint32_t n;
  std::memcpy(&n, in.data() + off, 4);
  off += 4;
  if (off + n * sizeof(T) > in.size())
    throw std::runtime_error("wire: truncated payload");
  std::vector<T> v(n);
  if (n) std::memcpy(v.data(), in.data() + off, n * sizeof(T));
  off += n * sizeof(T);
  return v;
}

template <typename Byte>
std::vector<Byte> encode_report_t(const WorkerReport& r) {
  std::vector<Byte> out;
  out.reserve(21 + r.results.size() * sizeof(ResultMsg) +
              r.new_pairs.size() * sizeof(PairMsg) +
              r.progress.size() * sizeof(RoleProgress));
  append_pod(out, r.seq);
  append_vec(out, r.results);
  append_vec(out, r.new_pairs);
  append_vec(out, r.progress);
  out.push_back(static_cast<Byte>(r.exhausted));
  return out;
}

template <typename Byte>
WorkerReport decode_report_t(std::span<const Byte> bytes) {
  WorkerReport r;
  std::size_t off = 0;
  r.seq = read_pod<std::uint64_t>(bytes, off);
  r.results = read_vec<ResultMsg>(bytes, off);
  r.new_pairs = read_vec<PairMsg>(bytes, off);
  r.progress = read_vec<RoleProgress>(bytes, off);
  if (off + 1 > bytes.size()) throw std::runtime_error("wire: bad report");
  r.exhausted = static_cast<std::uint8_t>(bytes[off]);
  return r;
}

template <typename Byte>
std::vector<Byte> encode_reply_t(const MasterReply& r) {
  std::vector<Byte> out;
  out.reserve(22 + r.batch.size() * sizeof(PairMsg) +
              r.takeovers.size() * sizeof(TakeoverOrder));
  append_pod(out, r.seq);
  append_vec(out, r.batch);
  append_vec(out, r.takeovers);
  const std::size_t base = out.size();
  out.resize(base + 6);
  std::memcpy(out.data() + base, &r.request_r, 4);
  out[base + 4] = static_cast<Byte>(r.terminate);
  out[base + 5] = static_cast<Byte>(r.park);
  return out;
}

template <typename Byte>
MasterReply decode_reply_t(std::span<const Byte> bytes) {
  MasterReply r;
  std::size_t off = 0;
  r.seq = read_pod<std::uint64_t>(bytes, off);
  r.batch = read_vec<PairMsg>(bytes, off);
  r.takeovers = read_vec<TakeoverOrder>(bytes, off);
  if (off + 6 > bytes.size()) throw std::runtime_error("wire: bad reply");
  std::memcpy(&r.request_r, bytes.data() + off, 4);
  r.terminate = static_cast<std::uint8_t>(bytes[off + 4]);
  r.park = static_cast<std::uint8_t>(bytes[off + 5]);
  return r;
}

}  // namespace

std::vector<std::uint8_t> encode_report(const WorkerReport& r) {
  return encode_report_t<std::uint8_t>(r);
}

WorkerReport decode_report(const std::vector<std::uint8_t>& bytes) {
  return decode_report_t<std::uint8_t>(bytes);
}

std::vector<std::uint8_t> encode_reply(const MasterReply& r) {
  return encode_reply_t<std::uint8_t>(r);
}

MasterReply decode_reply(const std::vector<std::uint8_t>& bytes) {
  return decode_reply_t<std::uint8_t>(bytes);
}

std::vector<std::byte> encode_report_payload(const WorkerReport& r) {
  return encode_report_t<std::byte>(r);
}

WorkerReport decode_report(std::span<const std::byte> bytes) {
  return decode_report_t<std::byte>(bytes);
}

std::vector<std::byte> encode_reply_payload(const MasterReply& r) {
  return encode_reply_t<std::byte>(r);
}

MasterReply decode_reply(std::span<const std::byte> bytes) {
  return decode_reply_t<std::byte>(bytes);
}

std::vector<std::uint8_t> encode_checkpoint(const ClusterCheckpoint& c) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + c.labels.size() * 4 + c.pending.size() * sizeof(PairMsg) +
              c.progress.size() * sizeof(RoleProgress));
  append_pod(out, kCheckpointMagic);
  append_pod(out, kCheckpointVersion);
  append_pod(out, c.epoch);
  append_pod(out, c.num_ranks);
  append_pod(out, c.n_fragments);
  append_pod(out, c.input_hash);
  append_pod(out, c.params_hash);
  append_vec(out, c.labels);
  append_vec(out, c.pending);
  append_vec(out, c.progress);
  append_pod(out, c.pairs_generated);
  append_pod(out, c.pairs_selected);
  append_pod(out, c.pairs_aligned);
  append_pod(out, c.pairs_accepted);
  append_pod(out, c.merges);
  append_pod(out, c.merges_rejected_inconsistent);
  return out;
}

ClusterCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& raw) {
  const std::span<const std::uint8_t> bytes(raw);
  std::size_t off = 0;
  if (read_pod<std::uint32_t>(bytes, off) != kCheckpointMagic)
    throw std::runtime_error("checkpoint: bad magic");
  if (read_pod<std::uint32_t>(bytes, off) != kCheckpointVersion)
    throw std::runtime_error("checkpoint: unsupported version");
  ClusterCheckpoint c;
  c.epoch = read_pod<std::uint64_t>(bytes, off);
  c.num_ranks = read_pod<std::uint32_t>(bytes, off);
  c.n_fragments = read_pod<std::uint32_t>(bytes, off);
  c.input_hash = read_pod<std::uint64_t>(bytes, off);
  c.params_hash = read_pod<std::uint64_t>(bytes, off);
  c.labels = read_vec<std::uint32_t>(bytes, off);
  c.pending = read_vec<PairMsg>(bytes, off);
  c.progress = read_vec<RoleProgress>(bytes, off);
  c.pairs_generated = read_pod<std::uint64_t>(bytes, off);
  c.pairs_selected = read_pod<std::uint64_t>(bytes, off);
  c.pairs_aligned = read_pod<std::uint64_t>(bytes, off);
  c.pairs_accepted = read_pod<std::uint64_t>(bytes, off);
  c.merges = read_pod<std::uint64_t>(bytes, off);
  c.merges_rejected_inconsistent = read_pod<std::uint64_t>(bytes, off);
  if (c.labels.size() != c.n_fragments)
    throw std::runtime_error("checkpoint: label count mismatch");
  return c;
}

void save_checkpoint(const std::string& path, const ClusterCheckpoint& c) {
  const auto bytes = encode_checkpoint(c);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw std::runtime_error("checkpoint: cannot open " + tmp);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename failed for " + path);
  }
}

ClusterCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return decode_checkpoint(bytes);
}

}  // namespace pgasm::core
