#include "core/serial_cluster.hpp"

#include <algorithm>
#include <memory>

#include "core/consistency.hpp"
#include "core/overlap_engine.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace pgasm::core {

align::OverlapResult pair_overlap_details(const seq::FragmentStore& doubled,
                                           std::uint32_t seq_a,
                                           std::uint32_t pos_a,
                                           std::uint32_t seq_b,
                                           std::uint32_t pos_b,
                                           const align::OverlapParams& p) {
  const auto a = doubled.seq(seq_a);
  const auto b = doubled.seq(seq_b);
  const std::int32_t shift =
      static_cast<std::int32_t>(pos_b) - static_cast<std::int32_t>(pos_a);
  return align::banded_overlap_align(a, b, p.scoring, shift, p.band);
}

bool pair_overlaps(const seq::FragmentStore& doubled, std::uint32_t seq_a,
                   std::uint32_t pos_a, std::uint32_t seq_b,
                   std::uint32_t pos_b, const align::OverlapParams& p) {
  return align::accept_overlap(
      pair_overlap_details(doubled, seq_a, pos_a, seq_b, pos_b, p), p);
}

void validate_cluster_params(const ClusterParams& params) {
  align::validate_overlap_params(params.overlap, params.psi);
}

ClusterResult cluster_serial(const seq::FragmentStore& fragments,
                             const ClusterParams& params) {
  validate_cluster_params(params);
  ClusterResult result;
  result.clusters.reset(fragments.size());
  ClusterStats& stats = result.stats;

  util::WallTimer gst_timer;
  const seq::FragmentStore doubled = seq::make_doubled_store(fragments);
  gst::SuffixTree tree(
      doubled, gst::GstParams{.min_match = params.psi, .prefix_w = 0});
  stats.gst_seconds = gst_timer.elapsed();

  util::WallTimer cluster_timer;
  gst::PairGenerator gen(
      tree, {.dup_elim = params.dup_elim, .doubled_input = true});

  // Inconsistent-overlap resolution extension (paper §10 future work).
  std::unique_ptr<ConsistencyResolver> resolver;
  if (params.resolve_inconsistent) {
    resolver = std::make_unique<ConsistencyResolver>(
        doubled, params.overlap, params.placement_tolerance);
  }

  // Same allocation-free compute path the parallel workers run.
  OverlapEngine engine(doubled, params.overlap);

  auto process = [&](const gst::PromisingPair& pr) {
    ++stats.pairs_generated;
    const std::uint32_t fa = pr.seq_a >> 1;
    const std::uint32_t fb = pr.seq_b >> 1;
    if (result.clusters.same(fa, fb)) return;
    ++stats.pairs_aligned;
    const auto r = engine.details(pr.seq_a, pr.pos_a, pr.seq_b, pr.pos_b);
    if (!align::accept_overlap(r, params.overlap)) return;
    ++stats.pairs_accepted;
    if (resolver) {
      const std::int32_t delta =
          static_cast<std::int32_t>(r.aln.a_begin) -
          static_cast<std::int32_t>(r.aln.b_begin);
      if (!resolver->admit(fa, fb, (pr.seq_a & 1u) != 0,
                           (pr.seq_b & 1u) != 0, delta)) {
        ++stats.merges_rejected_inconsistent;
        return;
      }
    }
    if (result.clusters.unite(fa, fb)) ++stats.merges;
  };

  gst::PromisingPair pr;
  if (params.ordered) {
    while (gen.next(pr)) process(pr);
  } else {
    // Ablation: materialize and shuffle the stream, destroying the
    // decreasing-match-length order (costs the O(K) memory the on-demand
    // scheme avoids — which is part of what the ablation demonstrates).
    std::vector<gst::PromisingPair> all;
    while (gen.next(pr)) all.push_back(pr);
    util::Prng rng(0x5eedu);
    for (std::size_t i = all.size(); i > 1; --i) {
      std::swap(all[i - 1], all[rng.below(i)]);
    }
    for (const auto& q : all) process(q);
  }
  stats.cluster_seconds = cluster_timer.elapsed();
  return result;
}

}  // namespace pgasm::core
