#include "util/flags.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pgasm::util {

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::uint64_t Flags::get_u64(const std::string& name, std::uint64_t def) {
  seen_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
}

std::int64_t Flags::get_i64(const std::string& name, std::int64_t def) {
  seen_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) {
  seen_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::get_string(const std::string& name, const std::string& def) {
  seen_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::get_bool(const std::string& name, bool def) {
  seen_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::string v;
  v.reserve(it->second.size());
  for (char c : it->second) {
    v += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + "=" + it->second +
                              ": expected a boolean "
                              "(true/false, 1/0, yes/no, on/off)");
}

void Flags::finish() const {
  bool bad = false;
  for (const auto& [name, value] : values_) {
    if (!seen_.count(name)) {
      std::fprintf(stderr, "%s: unknown flag --%s=%s\n", program_.c_str(),
                   name.c_str(), value.c_str());
      bad = true;
    }
  }
  if (bad) std::exit(2);
}

}  // namespace pgasm::util
