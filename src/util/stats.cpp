#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace pgasm::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::uint64_t n50(std::vector<std::uint64_t> lengths) {
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  const std::uint64_t total =
      std::accumulate(lengths.begin(), lengths.end(), std::uint64_t{0});
  std::uint64_t acc = 0;
  for (std::uint64_t len : lengths) {
    acc += len;
    if (acc * 2 >= total) return len;
  }
  return lengths.back();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == ',' || c == '-' || c == '+' || c == '%' || c == 'e' ||
          c == 'E' || c == 'x'))
      return false;
  }
  return true;
}
}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = looks_numeric(row[c]);
      const std::size_t pad = width[c] - row[c].size();
      out += "| ";
      if (right) out.append(pad, ' ');
      out += row[c];
      if (!right) out.append(pad, ' ');
      out += ' ';
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s", v, units[u]);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace pgasm::util
