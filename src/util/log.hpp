// Minimal leveled logging to stderr. Thread safe (one write() per line).
//
// Each line carries a monotonic timestamp (seconds since process start) and,
// when the calling thread has registered one via set_log_rank(), a per-rank
// prefix — so interleaved multi-rank fault-recovery logs stay attributable:
//   [  12.345678] [r3] [WARN] worker 2 missed heartbeat epoch 7
//
// The initial threshold is read from the PGASM_LOG_LEVEL environment
// variable (debug/info/warn/error, case-insensitive) the first time the
// logger is used; set_log_level() overrides it at runtime.
#pragma once

#include <sstream>
#include <string>

namespace pgasm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo, or the
/// PGASM_LOG_LEVEL environment variable when set.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "debug"/"info"/"warn"/"error" (case-insensitive). Returns fallback
/// for null/unknown input.
LogLevel parse_log_level(const char* name,
                         LogLevel fallback = LogLevel::kInfo) noexcept;

/// Register the vmpi rank of the calling thread; subsequent log lines from
/// this thread carry an "[rN]" prefix. Pass a negative value to clear.
void set_log_rank(int rank) noexcept;
int log_rank() noexcept;  ///< -1 when the thread has no rank

/// Emit one line: "[ seconds] [rN] [LEVEL] message\n".
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace pgasm::util
