// Minimal leveled logging to stderr. Thread safe (one write() per line).
#pragma once

#include <sstream>
#include <string>

namespace pgasm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line: "[LEVEL] message\n".
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace pgasm::util
