// Static thread-safety layer: Clang capability-analysis macros and the
// annotated lock vocabulary every concurrent structure in the runtime uses.
//
// The paper's master-worker runtime concentrates its correctness risk in
// shared mutable state (mailboxes, the metrics registry, trace rings); the
// dynamic checks (TSan, the fault-injection suite) only prove interleavings
// the tests happen to exercise. Clang's -Wthread-safety analysis proves the
// locking discipline at compile time instead: every mutex-protected member
// is declared PGASM_GUARDED_BY(its mutex), every function that needs a lock
// held declares PGASM_REQUIRES(it), and a guarded access without the
// capability held is a hard error in the `scripts/ci.sh tsafety` leg
// (clang++ -Wthread-safety -Wthread-safety-beta -Werror). Under GCC the
// attributes expand to nothing and the wrappers compile to the std types
// they hold.
//
// Discipline (enforced by pgasm-lint W007/W010):
//   - util::Mutex, never raw std::mutex, for any shared state.
//   - util::MutexLock / util::ReleasableMutexLock, never raw .lock()/
//     .unlock() or std::lock_guard/std::unique_lock, outside this header.
//   - Every non-atomic member of a class that owns a Mutex carries
//     PGASM_GUARDED_BY (or an explicit waiver stating why it needs none).
//   - util::CondVar waits on a util::Mutex the caller already holds
//     (PGASM_REQUIRES propagates the proof through the wait).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// --- Capability-analysis attribute macros ----------------------------------
//
// Names and semantics follow the Clang Thread Safety Analysis documentation;
// the PGASM_ prefix keeps them greppable and lets GCC builds no-op them.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PGASM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PGASM_THREAD_ANNOTATION
#define PGASM_THREAD_ANNOTATION(x)  // no-op: GCC or pre-capability clang
#endif

/// Marks a type as a capability ("mutex" by convention).
#define PGASM_CAPABILITY(x) PGASM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime holds a capability.
#define PGASM_SCOPED_CAPABILITY PGASM_THREAD_ANNOTATION(scoped_lockable)

/// Member is readable/writable only while `x` is held.
#define PGASM_GUARDED_BY(x) PGASM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PGASM_PT_GUARDED_BY(x) PGASM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities (they stay held).
#define PGASM_REQUIRES(...) \
  PGASM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (default: `this`).
#define PGASM_ACQUIRE(...) \
  PGASM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (default: `this`).
#define PGASM_RELEASE(...) \
  PGASM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `ret`.
#define PGASM_TRY_ACQUIRE(...) \
  PGASM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard: public
/// locking entry points declare EXCLUDES(mu_) so re-entry is a compile
/// error under clang instead of a runtime deadlock).
#define PGASM_EXCLUDES(...) PGASM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assert (at analysis level) that the capability is held here.
#define PGASM_ASSERT_CAPABILITY(x) \
  PGASM_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define PGASM_RETURN_CAPABILITY(x) PGASM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — must carry a comment justifying why the analysis is wrong.
#define PGASM_NO_THREAD_SAFETY_ANALYSIS \
  PGASM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pgasm::util {

class CondVar;

/// std::mutex with the capability attribute, so PGASM_GUARDED_BY(mu_) and
/// the lock scopes below participate in clang's analysis. Same size and
/// cost as the std::mutex it wraps.
class PGASM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PGASM_ACQUIRE() { mu_.lock(); }
  void unlock() PGASM_RELEASE() { mu_.unlock(); }
  bool try_lock() PGASM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // waits re-acquire through the native handle
  std::mutex mu_;
};

/// RAII lock scope (std::lock_guard shape). The scoped-capability
/// annotation makes the held region visible to the analysis.
class PGASM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PGASM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PGASM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Lock scope that can be released before the end of the scope (the
/// receive path hands the payload out after dropping the mailbox lock).
/// Destruction releases only if still held.
class PGASM_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) PGASM_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~ReleasableMutexLock() PGASM_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  /// Release early; the destructor becomes a no-op.
  void release() PGASM_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to util::Mutex. Waits take the Mutex the caller
/// already holds — PGASM_REQUIRES threads the capability proof through the
/// wait (the analysis treats the capability as held across it, which is
/// sound: wait() returns with the lock re-acquired). Internally adopts the
/// native std::mutex so the std::condition_variable fast path is kept.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) PGASM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scope
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) PGASM_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      PGASM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_until(native, deadline);
    native.release();
    return st;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace pgasm::util
