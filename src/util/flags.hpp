// Tiny command-line flag parser for benches and examples.
//
// Usage:
//   util::Flags flags(argc, argv);
//   auto n = flags.get_u64("reads", 10000);     // --reads=20000 / --reads 20000
//   auto f = flags.get_double("error", 0.015);
//   auto s = flags.get_string("out", "contigs.fa");
//   bool v = flags.get_bool("verbose", false);  // --verbose / --verbose=false
//   flags.finish();  // errors on unrecognized flags
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pgasm::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  std::uint64_t get_u64(const std::string& name, std::uint64_t def);
  std::int64_t get_i64(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, const std::string& def);
  /// Accepts true/false, 1/0, yes/no, on/off (case-insensitive); throws
  /// std::invalid_argument on anything else.
  bool get_bool(const std::string& name, bool def);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Abort with a message listing any flags that were never queried.
  void finish() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> seen_;
  std::vector<std::string> positional_;
};

}  // namespace pgasm::util
