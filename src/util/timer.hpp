// Wall-clock and per-thread CPU timers.
//
// The vmpi cost model charges each rank's computation with the thread CPU
// clock so that oversubscribed single-node runs still measure per-rank work
// faithfully (threads time-slicing on one core do not inflate each other's
// compute charge).
#pragma once

#include <ctime>

namespace pgasm::util {

/// Monotonic wall-clock timer, seconds.
class WallTimer {
 public:
  WallTimer() noexcept { restart(); }
  void restart() noexcept { start_ = now(); }
  double elapsed() const noexcept { return now() - start_; }

  static double now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

 private:
  double start_ = 0;
};

/// Per-thread CPU-time timer, seconds.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept { restart(); }
  void restart() noexcept { start_ = now(); }
  double elapsed() const noexcept { return now() - start_; }

  static double now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

 private:
  double start_ = 0;
};

}  // namespace pgasm::util
