// Capped exponential backoff for retry and timeout schedules.
//
// Deliberately jitter-free: fault-tolerance tests rely on deterministic
// detection timing, and the vmpi ranks share one process so thundering-herd
// concerns don't apply.
#pragma once

#include <algorithm>

namespace pgasm::util {

class ExponentialBackoff {
 public:
  ExponentialBackoff(double initial, double multiplier, double cap)
      : initial_(initial), multiplier_(multiplier), cap_(cap),
        value_(initial) {}

  /// Current delay, without advancing the schedule.
  double current() const noexcept { return value_; }

  /// Grow the delay for the next round (capped).
  void advance() noexcept { value_ = std::min(cap_, value_ * multiplier_); }

  /// Current delay, advancing the schedule for the next call.
  double next() noexcept {
    const double v = value_;
    advance();
    return v;
  }

  void reset() noexcept { value_ = initial_; }

 private:
  double initial_;
  double multiplier_;
  double cap_;
  double value_;
};

}  // namespace pgasm::util
