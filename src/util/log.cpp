#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace pgasm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace pgasm::util
