#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/timer.hpp"

namespace pgasm::util {

namespace {

LogLevel initial_level() {
  return parse_log_level(std::getenv("PGASM_LOG_LEVEL"), LogLevel::kInfo);
}

std::atomic<LogLevel>& level_slot() {
  // Magic static so the env var is consulted on first use, in any order of
  // static initialization. The level is an independent knob (no data is
  // published through it), so all accesses are relaxed.
  // pgasm-lint: allow(raw-atomic): private log-level slot, never shared as
  // a synchronization primitive
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

thread_local int t_rank = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

double process_uptime() {
  static const double epoch = WallTimer::now();
  return WallTimer::now() - epoch;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_slot().store(level, std::memory_order_relaxed);
}
LogLevel log_level() noexcept {
  return level_slot().load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const char* name, LogLevel fallback) noexcept {
  if (name == nullptr) return fallback;
  std::string s;
  for (const char* p = name; *p != '\0'; ++p) {
    s += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return fallback;
}

void set_log_rank(int rank) noexcept { t_rank = rank < 0 ? -1 : rank; }
int log_rank() noexcept { return t_rank; }

void log_line(LogLevel level, const std::string& message) {
  if (level < level_slot().load(std::memory_order_relaxed)) return;
  char stamp[48];
  std::snprintf(stamp, sizeof stamp, "[%10.6f] ", process_uptime());
  std::string line;
  line.reserve(message.size() + 40);
  line += stamp;
  if (t_rank >= 0) {
    line += "[r";
    line += std::to_string(t_rank);
    line += "] ";
  }
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace pgasm::util
