// Contract assertions for internal invariants (DESIGN.md section 10).
//
// Two macros, two costs:
//
//   PGASM_ASSERT(cond, msg)  — always compiled in. Debug builds (!NDEBUG)
//       abort on violation with file:line and the message; release builds
//       log one error line and continue, so a production run degrades
//       loudly instead of dying on an invariant that may be recoverable.
//   PGASM_DCHECK(cond, msg)  — debug-only. Compiles to nothing under
//       NDEBUG (the condition is not evaluated), so it is safe on hot
//       paths: union-find finds, lset link operations, workspace buffer
//       handout.
//
// Neither macro is for *input* validation: data that crosses a trust
// boundary (wire payloads, checkpoint files, FASTA/FASTQ text) gets typed
// errors (core::WireError, std::runtime_error), never an assert. Contracts
// guard programmer errors — an index a caller promised was in range, a
// state machine step that cannot happen — where the right reaction is a
// crash in development and a loud log in the field.
#pragma once

namespace pgasm::util {

/// Debug-build violation handler: logs and aborts. Never returns.
[[noreturn]] void contract_fatal(const char* kind, const char* cond,
                                 const char* file, int line, const char* msg);

/// Release-build violation handler: logs one error line and returns.
void contract_log(const char* kind, const char* cond, const char* file,
                  int line, const char* msg);

}  // namespace pgasm::util

#ifndef NDEBUG

#define PGASM_ASSERT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::pgasm::util::contract_fatal("ASSERT", #cond, __FILE__, __LINE__, \
                                    (msg));                              \
    }                                                                    \
  } while (false)

#define PGASM_DCHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::pgasm::util::contract_fatal("DCHECK", #cond, __FILE__, __LINE__, \
                                    (msg));                              \
    }                                                                    \
  } while (false)

#else  // NDEBUG

#define PGASM_ASSERT(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::pgasm::util::contract_log("ASSERT", #cond, __FILE__, __LINE__, \
                                  (msg));                              \
    }                                                                  \
  } while (false)

#define PGASM_DCHECK(cond, msg) \
  do {                          \
  } while (false)

#endif  // NDEBUG
