// Radix sorts used on hot paths.
//
// The pair-generation phase (paper Section 5, step S2) sorts GST nodes by
// string-depth; depths are bounded by the maximum fragment length, so a
// counting/LSD radix sort beats comparison sorting and keeps the phase O(N).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pgasm::util {

/// Counting sort of `items` by key(item) in [0, key_bound), stable.
/// Returns the sorted permutation applied to a copy (input untouched).
template <typename T, typename KeyFn>
std::vector<T> counting_sort(std::span<const T> items, std::uint32_t key_bound,
                             KeyFn&& key) {
  std::vector<std::uint32_t> count(key_bound + 1, 0);
  for (const T& it : items) ++count[key(it) + 1];
  for (std::uint32_t k = 1; k <= key_bound; ++k) count[k] += count[k - 1];
  std::vector<T> out(items.size());
  for (const T& it : items) out[count[key(it)]++] = it;
  return out;
}

/// In-place-ish counting sort descending by key in [0, key_bound). Stable
/// within equal keys (preserves input order).
template <typename T, typename KeyFn>
std::vector<T> counting_sort_desc(std::span<const T> items,
                                  std::uint32_t key_bound, KeyFn&& key) {
  std::vector<std::uint32_t> count(key_bound + 1, 0);
  for (const T& it : items) ++count[key(it)];
  // prefix sums from the top down
  std::vector<std::uint32_t> start(key_bound + 1, 0);
  std::uint32_t acc = 0;
  for (std::int64_t k = key_bound; k >= 0; --k) {
    start[static_cast<std::size_t>(k)] = acc;
    acc += count[static_cast<std::size_t>(k)];
  }
  std::vector<T> out(items.size());
  for (const T& it : items) out[start[key(it)]++] = it;
  return out;
}

/// LSD radix sort of 64-bit keys carrying a payload index; ascending.
/// Sorts `keys` and applies the same permutation to `payload`.
template <typename P>
void radix_sort_u64(std::vector<std::uint64_t>& keys, std::vector<P>& payload) {
  const std::size_t n = keys.size();
  std::vector<std::uint64_t> kbuf(n);
  std::vector<P> pbuf(n);
  constexpr int kBits = 16;
  constexpr std::size_t kBuckets = 1u << kBits;
  std::vector<std::uint32_t> count(kBuckets);
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = pass * kBits;
    // Skip passes where all digits are equal (common for small keys).
    std::fill(count.begin(), count.end(), 0u);
    bool trivial = true;
    const std::uint64_t first_digit =
        n ? ((keys[0] >> shift) & (kBuckets - 1)) : 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = (keys[i] >> shift) & (kBuckets - 1);
      trivial &= (d == first_digit);
      ++count[d];
    }
    if (trivial) continue;
    std::uint32_t sum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint32_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = (keys[i] >> shift) & (kBuckets - 1);
      kbuf[count[d]] = keys[i];
      pbuf[count[d]] = payload[i];
      ++count[d];
    }
    keys.swap(kbuf);
    payload.swap(pbuf);
  }
}

}  // namespace pgasm::util
