// Deterministic pseudo-random number generation for simulators and tests.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. All experiment
// code takes an explicit seed so every run in EXPERIMENTS.md is replayable.
#pragma once

#include <cstdint>
#include <limits>

namespace pgasm::util {

/// splitmix64 step; used for seed expansion and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Prng(std::uint64_t seed = 0x9d2c5680u) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method, without the rejection loop
    // refinement: bias is < 2^-64 * bound, irrelevant at our scales.
    const __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Split off an independent stream (for per-rank / per-worker PRNGs).
  constexpr Prng split() noexcept {
    std::uint64_t s = operator()();
    return Prng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace pgasm::util
