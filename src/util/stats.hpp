// Small statistics helpers used by the reporting layers: running moments,
// histograms, N50-style assembly size statistics, and fixed-width table
// printing so every bench binary emits paper-style tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgasm::util {

/// Welford running mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0, m2_ = 0;
  double min_ = 0, max_ = 0;
};

/// N50 of a set of lengths: the largest L such that lengths >= L cover at
/// least half the total. Returns 0 for empty input.
std::uint64_t n50(std::vector<std::uint64_t> lengths);

/// Simple console table with aligned columns (paper-style reporting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Render with column alignment; numeric-looking cells right-aligned.
  std::string render() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers.
std::string fmt_count(std::uint64_t v);           // 1,607,364
std::string fmt_double(double v, int digits = 2); // 12.35
std::string fmt_bytes(std::uint64_t bytes);       // 1.25 GB
std::string fmt_percent(double fraction, int digits = 1);  // 43.7%

}  // namespace pgasm::util
