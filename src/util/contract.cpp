#include "util/contract.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "util/log.hpp"

namespace pgasm::util {

namespace {

std::string format_violation(const char* kind, const char* cond,
                             const char* file, int line, const char* msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ":" << line;
  if (msg != nullptr && msg[0] != '\0') os << " — " << msg;
  return os.str();
}

}  // namespace

void contract_fatal(const char* kind, const char* cond, const char* file,
                    int line, const char* msg) {
  log_line(LogLevel::kError, format_violation(kind, cond, file, line, msg));
  std::abort();
}

void contract_log(const char* kind, const char* cond, const char* file,
                  int line, const char* msg) {
  log_line(LogLevel::kError, format_violation(kind, cond, file, line, msg));
}

}  // namespace pgasm::util
