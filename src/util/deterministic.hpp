// Deterministic-iteration and -reduction vocabulary (DESIGN.md §16).
//
// pgasm's hard guarantee is that contigs are bit-identical across runs,
// rank counts, and transports. Two language-level hazards can silently
// break that: iteration order over std::unordered_map/set (hash-seed and
// load-factor dependent, so it varies run to run and build to build) and
// floating-point reassociation (the rounded result of a sum depends on
// the order the terms were combined). This header is the approved
// remediation vocabulary that tools/determ/pgasm-determcheck (checks
// W016/W018) looks for:
//
//   * sorted_items(c)   — canonical key-ordered snapshot of an unordered
//                         map or set; iterate the snapshot, never the
//                         container itself.
//   * ordered_reduce(v) — fixed-shape pairwise reduction tree over a
//                         vector; the result depends only on the element
//                         order and count, never on an accumulation or
//                         chunking strategy, so it survives future
//                         vectorization/retiling of the call site.
//
// Sites that are genuinely order-independent (pure membership tests,
// commutative integer folds) need no canonicalization; when the checker
// still flags one, waive it in place with
//   // pgasm-lint: allow(unordered-iter): <why the order cannot leak>
// exactly like the W007-W015 waivers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace pgasm::util {

/// Key-ordered snapshot of an unordered map: (key, value) pairs sorted by
/// strictly increasing key. O(n log n), one pass + one sort — cheap next
/// to the hashing that built the container, and the only iteration order
/// that is reproducible across hash seeds, libstdc++ versions, and rank
/// counts.
template <typename Map>
  requires requires { typename Map::mapped_type; }
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  for (const auto& [key, value] : m) items.emplace_back(key, value);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

/// Key-ordered snapshot of an unordered set: the elements in strictly
/// increasing order.
template <typename Set>
  requires(!requires { typename Set::mapped_type; })
std::vector<typename Set::key_type> sorted_items(const Set& s) {
  std::vector<typename Set::key_type> keys(s.begin(), s.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Fixed-shape pairwise reduction: combines v[0]+v[1], v[2]+v[3], ... in
/// rounds until one value remains. The tree shape is a pure function of
/// the element count, so for floating-point T the rounded result is a
/// pure function of the input sequence — no dependence on how a caller's
/// loop, a SIMD kernel, or a cross-rank fold would associate the terms.
/// This matches vmpi's fixed binomial reduce tree in spirit: same input
/// order in, same bits out, at any parallelism.
template <typename T>
T ordered_reduce(std::vector<T> v) {
  if (v.empty()) return T{};
  std::size_t n = v.size();
  while (n > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < n; i += 2) v[out++] = v[i] + v[i + 1];
    if (n % 2 != 0) v[out++] = v[n - 1];
    n = out;
  }
  return v[0];
}

/// Projection form: reduce proj(element) over an ordered container (a
/// vector indexed by rank, a sorted_items() snapshot, ...). The container
/// must already have a deterministic order — that is the caller's half of
/// the contract.
template <typename Container, typename Proj>
auto ordered_reduce(const Container& c, Proj proj) {
  using T = std::decay_t<decltype(proj(*c.begin()))>;
  std::vector<T> vals;
  vals.reserve(c.size());
  for (const auto& e : c) vals.push_back(proj(e));
  return ordered_reduce(std::move(vals));
}

}  // namespace pgasm::util
