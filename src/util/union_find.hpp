// Union-Find (disjoint set union) used by the clustering framework.
//
// The paper (Section 7) keeps the cluster set on the master processor as a
// Union-Find structure over fragment ids: find/union run in amortized
// inverse-Ackermann time, and the array representation costs 4 bytes per
// fragment, which is what bounds master memory at O(n).
#pragma once

#include <cstdint>
#include <vector>

namespace pgasm::util {

class UnionFind {
 public:
  using Id = std::uint32_t;

  UnionFind() = default;
  explicit UnionFind(std::size_t n) { reset(n); }

  /// Re-initialize to n singleton sets.
  void reset(std::size_t n);

  std::size_t size() const noexcept { return parent_.size(); }

  /// Number of disjoint sets currently alive.
  std::size_t num_sets() const noexcept { return num_sets_; }

  /// Representative of x's set, with path halving.
  Id find(Id x) noexcept;

  /// const find: no path compression (usable from observers).
  Id find_const(Id x) const noexcept;

  bool same(Id a, Id b) noexcept { return find(a) == find(b); }

  /// Merge the sets containing a and b. Returns true if a merge happened
  /// (they were previously distinct), false if already in the same set.
  bool unite(Id a, Id b) noexcept;

  /// Size of the set containing x.
  std::uint32_t set_size(Id x) noexcept { return size_[find(x)]; }

  /// Size of the largest set.
  std::uint32_t max_set_size() const noexcept;

  /// Materialize the clustering: result[i] lists the members of cluster i.
  /// Order of clusters and of members within a cluster is deterministic
  /// (increasing representative id / member id).
  std::vector<std::vector<Id>> extract_sets() const;

  /// Dense labeling: label[x] in [0, num_sets), equal labels iff same set.
  std::vector<Id> labels() const;

 private:
  std::vector<Id> parent_;
  std::vector<std::uint32_t> size_;  // valid at representatives only
  std::size_t num_sets_ = 0;
};

}  // namespace pgasm::util
