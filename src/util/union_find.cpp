#include "util/union_find.hpp"

#include <algorithm>
#include <numeric>

#include "util/contract.hpp"

namespace pgasm::util {

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), Id{0});
  size_.assign(n, 1);
  num_sets_ = n;
}

UnionFind::Id UnionFind::find(Id x) noexcept {
  PGASM_DCHECK(x < parent_.size(), "union-find id out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

UnionFind::Id UnionFind::find_const(Id x) const noexcept {
  PGASM_DCHECK(x < parent_.size(), "union-find id out of range");
  while (parent_[x] != x) x = parent_[x];
  return x;
}

bool UnionFind::unite(Id a, Id b) noexcept {
  PGASM_DCHECK(a < parent_.size() && b < parent_.size(),
               "union-find id out of range");
  Id ra = find(a);
  Id rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::uint32_t UnionFind::max_set_size() const noexcept {
  std::uint32_t best = 0;
  for (Id x = 0; x < parent_.size(); ++x) {
    if (parent_[x] == x) best = std::max(best, size_[x]);
  }
  return best;
}

std::vector<std::vector<UnionFind::Id>> UnionFind::extract_sets() const {
  const std::size_t n = parent_.size();
  // Map representative -> dense cluster index, in increasing rep order.
  std::vector<Id> rep_index(n, 0);
  Id next = 0;
  for (Id x = 0; x < n; ++x) {
    if (parent_[x] == x) rep_index[x] = next++;
  }
  std::vector<std::vector<Id>> sets(next);
  for (Id x = 0; x < n; ++x) {
    Id r = find_const(x);
    sets[rep_index[r]].push_back(x);
  }
  return sets;
}

std::vector<UnionFind::Id> UnionFind::labels() const {
  const std::size_t n = parent_.size();
  std::vector<Id> rep_index(n, 0);
  Id next = 0;
  for (Id x = 0; x < n; ++x) {
    if (parent_[x] == x) rep_index[x] = next++;
  }
  std::vector<Id> out(n);
  for (Id x = 0; x < n; ++x) out[x] = rep_index[find_const(x)];
  return out;
}

}  // namespace pgasm::util
