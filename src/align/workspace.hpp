// Reusable scratch memory for the alignment kernels.
//
// The clustering phase calls the banded suffix–prefix kernel once per
// promising pair — millions of times per run — and the original kernels
// paid one or more heap allocations per call for DP rows and traceback
// matrices. A Workspace owns those buffers with grow-only semantics: each
// kernel call requests the sizes it needs, the workspace grows capacity the
// first few calls, and every later call of similar shape is served without
// touching the allocator.
//
// Buffers are returned DIRTY: a kernel taking a Workspace& must write every
// cell it will later read (see DESIGN.md section 9, "Memory discipline on
// the hot path"). Kernels keep an allocating reference variant precisely so
// tests can validate dirty-buffer reuse against a fresh-memory run.
//
// The workspace counts its own allocator traffic (allocations performed vs
// avoided, bytes reserved/in use) so "zero allocations per pair after
// warmup" is a measurable claim, not an assumption; core::OverlapEngine
// publishes these counters into the obs registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "seq/alphabet.hpp"
#include "util/contract.hpp"

namespace pgasm::align {

class Workspace {
 public:
  /// DP score cells (full-matrix or band-relative layout, kernel's choice).
  int* score_cells(std::size_t n) { return grow(score_, n); }
  /// Traceback codes with the same geometry as the score cells.
  std::uint8_t* tb_cells(std::size_t n) { return grow(tb_, n); }
  /// Rolling DP rows (kernels may hold up to three at once).
  int* row(std::size_t which, std::size_t n) {
    PGASM_DCHECK(which < kRows, "workspace row index out of range");
    return grow(rows_[which], n);
  }
  /// Sequence scratch (reversed copies for Hirschberg's right halves).
  seq::Code* codes(std::size_t which, std::size_t n) {
    PGASM_DCHECK(which < kCodeBufs, "workspace code buffer out of range");
    return grow(codes_[which], n);
  }

  static constexpr std::size_t kRows = 3;
  static constexpr std::size_t kCodeBufs = 2;

  // --- instrumentation ----------------------------------------------------

  /// Heap allocations this workspace performed (buffer capacity growths).
  std::uint64_t allocations() const noexcept { return allocations_; }
  /// Buffer requests served from existing capacity — each one is an
  /// allocation the equivalent fresh-buffer kernel would have paid.
  std::uint64_t allocations_avoided() const noexcept {
    return allocations_avoided_;
  }
  /// Total bytes of capacity currently held.
  std::uint64_t bytes_reserved() const noexcept {
    std::uint64_t b = cap_bytes(score_) + cap_bytes(tb_);
    for (const auto& r : rows_) b += cap_bytes(r);
    for (const auto& c : codes_) b += cap_bytes(c);
    return b;
  }
  /// Bytes of the largest extent actually requested so far.
  std::uint64_t bytes_in_use() const noexcept {
    std::uint64_t b = use_bytes(score_) + use_bytes(tb_);
    for (const auto& r : rows_) b += use_bytes(r);
    for (const auto& c : codes_) b += use_bytes(c);
    return b;
  }
  void reset_stats() noexcept { allocations_ = allocations_avoided_ = 0; }

 private:
  template <typename T>
  T* grow(std::vector<T>& v, std::size_t n) {
    if (n > v.capacity()) {
      ++allocations_;
      v.reserve(n);
    } else if (n > 0) {
      ++allocations_avoided_;
    }
    // resize only ever value-initializes newly grown tail cells; the reused
    // prefix keeps whatever the previous call left there (dirty by design).
    if (n > v.size()) v.resize(n);
    return v.data();
  }

  template <typename T>
  static std::uint64_t cap_bytes(const std::vector<T>& v) noexcept {
    return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
  }
  template <typename T>
  static std::uint64_t use_bytes(const std::vector<T>& v) noexcept {
    return static_cast<std::uint64_t>(v.size()) * sizeof(T);
  }

  std::vector<int> score_;
  std::vector<std::uint8_t> tb_;
  std::vector<int> rows_[kRows];
  std::vector<seq::Code> codes_[kCodeBufs];
  std::uint64_t allocations_ = 0;
  std::uint64_t allocations_avoided_ = 0;
};

}  // namespace pgasm::align
