#include "align/linear_space.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "align/workspace.hpp"

namespace pgasm::align {

namespace {

/// Last row of the global DP (linear gaps) for a vs b, written into `out`
/// (b.size()+1 entries); `scratch` is the rolling second row. Both buffers
/// arrive dirty and are fully overwritten.
void nw_score_row(Seq a, Seq b, const Scoring& sc, int* out, int* scratch) {
  int* prev = out;
  int* cur = scratch;
  for (std::size_t j = 0; j <= b.size(); ++j)
    prev[j] = static_cast<int>(j) * sc.gap;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i) * sc.gap;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = prev[j] + sc.gap;
      const int left = cur[j - 1] + sc.gap;
      cur[j] = std::max({diag, up, left});
    }
    std::swap(prev, cur);
  }
  if (prev != out) std::copy_n(prev, b.size() + 1, out);
}

// Workspace buffer use per recursion level: rows 0/1 hold score_left /
// score_right, row 2 is the rolling scratch; code buffers 0/1 hold the
// reversed right halves. All are dead before either recursive call, so one
// workspace serves the whole recursion (and the base case's global_align,
// which uses rows 0/1 plus the traceback buffer).
void hirschberg_ops(Seq a, Seq b, const Scoring& sc, Workspace& ws,
                    std::vector<Op>& out) {
  if (a.size() <= 1 || b.size() <= 1) {
    const auto r = global_align(a, b, sc, ws, {.keep_ops = true});
    out.insert(out.end(), r.ops.begin(), r.ops.end());
    return;
  }
  const std::size_t mid = a.size() / 2;
  const Seq a_left(a.data(), mid);
  const Seq a_right(a.data() + mid, a.size() - mid);
  const std::size_t row_n = b.size() + 1;

  int* score_left = ws.row(0, row_n);
  nw_score_row(a_left, b, sc, score_left, ws.row(2, row_n));

  // Reversed halves for the right side.
  seq::Code* ar = ws.codes(0, a_right.size());
  std::reverse_copy(a_right.begin(), a_right.end(), ar);
  seq::Code* br = ws.codes(1, b.size());
  std::reverse_copy(b.begin(), b.end(), br);
  int* score_right = ws.row(1, row_n);
  nw_score_row(Seq(ar, a_right.size()), Seq(br, b.size()), sc, score_right,
               ws.row(2, row_n));

  std::size_t best_j = 0;
  int best = std::numeric_limits<int>::min();
  for (std::size_t j = 0; j <= b.size(); ++j) {
    const int v = score_left[j] + score_right[b.size() - j];
    if (v > best) {
      best = v;
      best_j = j;
    }
  }
  hirschberg_ops(a_left, Seq(b.data(), best_j), sc, ws, out);
  hirschberg_ops(a_right, Seq(b.data() + best_j, b.size() - best_j), sc, ws,
                 out);
}

}  // namespace

AlignResult hirschberg_align(Seq a, Seq b, const Scoring& sc) {
  Workspace ws;  // allocating path: fresh buffers every call
  return hirschberg_align(a, b, sc, ws);
}

AlignResult hirschberg_align(Seq a, Seq b, const Scoring& sc, Workspace& ws) {
  AlignResult r;
  hirschberg_ops(a, b, sc, ws, r.ops);
  // Derive score/counts from the op string.
  std::size_t i = 0, j = 0;
  for (const Op op : r.ops) {
    switch (op) {
      case Op::kMatch:
      case Op::kMismatch: {
        const bool eq = seq::is_base(a[i]) && a[i] == b[j];
        r.matches += eq;
        r.score += sc.substitution(a[i], b[j]);
        ++i;
        ++j;
        break;
      }
      case Op::kInsertA:
        r.score += sc.gap;
        ++i;
        break;
      case Op::kInsertB:
        r.score += sc.gap;
        ++j;
        break;
    }
    ++r.columns;
  }
  r.a_end = static_cast<std::uint32_t>(a.size());
  r.b_end = static_cast<std::uint32_t>(b.size());
  return r;
}

namespace {

/// Blocked Myers/Hyyrö bit-parallel core. Returns the edit distance, or
/// stops early returning k+1 when `bound` is set and exceeded.
std::uint32_t myers_core(Seq a, Seq b, std::optional<std::uint32_t> bound) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m == 0) return static_cast<std::uint32_t>(n);
  if (n == 0) return static_cast<std::uint32_t>(m);

  const std::size_t blocks = (m + 63) / 64;
  // Peq[block][code]: bit i set iff a[block*64 + i] == code. Masked pattern
  // characters set no bits (mismatch everything).
  std::vector<std::uint64_t> peq(blocks * seq::kSigma, 0);
  for (std::size_t i = 0; i < m; ++i) {
    if (seq::is_base(a[i])) {
      peq[(i / 64) * seq::kSigma + a[i]] |= 1ull << (i % 64);
    }
  }
  std::vector<std::uint64_t> pv(blocks, ~0ull), mv(blocks, 0);
  const std::uint64_t last_bit = 1ull << ((m - 1) % 64);
  std::uint32_t score = static_cast<std::uint32_t>(m);

  for (std::size_t j = 0; j < n; ++j) {
    const seq::Code c = b[j];
    // The DP boundary row D(0, j) = j increases by one every column: that
    // is a horizontal +1 entering the first block.
    int hin = 1;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      std::uint64_t eq =
          seq::is_base(c) ? peq[blk * seq::kSigma + c] : 0ull;
      const std::uint64_t pv_b = pv[blk];
      const std::uint64_t mv_b = mv[blk];
      const std::uint64_t xv = eq | mv_b;
      if (hin < 0) eq |= 1ull;
      const std::uint64_t xh = (((eq & pv_b) + pv_b) ^ pv_b) | eq;
      std::uint64_t ph = mv_b | ~(xh | pv_b);
      std::uint64_t mh = pv_b & xh;

      const std::uint64_t top =
          (blk + 1 == blocks) ? last_bit : (1ull << 63);
      int hout = 0;
      if (ph & top) hout = 1;
      else if (mh & top) hout = -1;

      ph <<= 1;
      mh <<= 1;
      if (hin < 0) mh |= 1ull;
      if (hin > 0) ph |= 1ull;

      pv[blk] = mh | ~(xv | ph);
      mv[blk] = ph & xv;
      hin = hout;
    }
    score = static_cast<std::uint32_t>(static_cast<int>(score) + hin);
    if (bound) {
      const std::size_t remaining = n - 1 - j;
      if (score > *bound + remaining) return *bound + 1;
    }
  }
  return score;
}

}  // namespace

std::uint32_t myers_edit_distance(Seq a, Seq b) {
  return myers_core(a, b, std::nullopt);
}

std::uint32_t myers_edit_distance_bounded(Seq a, Seq b, std::uint32_t k) {
  const std::uint32_t d = myers_core(a, b, k);
  return std::min(d, k + 1);
}

}  // namespace pgasm::align
