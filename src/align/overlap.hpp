// Suffix–prefix ("overlap") alignment and the clustering accept test.
//
// The paper's overlap criterion (Section 4): two fragments overlap if there
// is a high-quality alignment between a suffix of one and a prefix of the
// other. We implement this as end-free (semi-global) alignment: leading and
// trailing gaps in either sequence are free, so the best path also covers
// the containment cases. The result is classified into dovetail /
// containment types.
//
// Two variants:
//   * overlap_align        — full O(|a||b|) matrix; used at low volume and as
//                            the reference in tests.
//   * banded_overlap_align — restricted to a diagonal band around a seed
//                            (the maximal match that generated the pair),
//                            O((|a|+|b|)·band); this is the hot kernel the
//                            clustering phase calls, "anchored to the maximal
//                            matches" as in Section 5.
#pragma once

#include <cstdint>

#include "align/pairwise.hpp"

namespace pgasm::align {

enum class OverlapType : std::uint8_t {
  kNone = 0,        ///< no acceptable overlap geometry
  kDovetailAB,      ///< suffix of a aligns with prefix of b
  kDovetailBA,      ///< suffix of b aligns with prefix of a
  kContainsB,       ///< b is contained in a
  kContainedInB,    ///< a is contained in b
};

const char* overlap_type_name(OverlapType t) noexcept;

struct OverlapResult {
  AlignResult aln;
  OverlapType type = OverlapType::kNone;
  /// Overlap length: alignment columns (used for the min-overlap cutoff).
  std::uint32_t overlap_len() const noexcept { return aln.columns; }
};

/// Acceptance criteria for the clustering "alignment test" (Fig. 3).
struct OverlapParams {
  Scoring scoring{};
  std::uint32_t min_overlap = 40;  ///< minimum alignment columns
  double min_identity = 0.94;      ///< minimum fraction identical columns
  std::uint32_t band = 12;         ///< half-width for the banded kernel
};

/// Full-matrix end-free alignment.
OverlapResult overlap_align(Seq a, Seq b, const Scoring& sc,
                            const AlignOptions& opts = {});

/// Workspace variant of the full-matrix kernel: DP cells and traceback come
/// from `ws` (grow-only, reused dirty) — no heap allocations after warmup
/// unless opts.keep_ops asks for the op string.
OverlapResult overlap_align(Seq a, Seq b, const Scoring& sc, Workspace& ws,
                            const AlignOptions& opts = {});

/// Banded end-free alignment around diagonal (j - i) == shift. For a seed
/// maximal match at positions (pos_a, pos_b), pass shift = pos_b - pos_a.
OverlapResult banded_overlap_align(Seq a, Seq b, const Scoring& sc,
                                   std::int32_t shift, std::uint32_t band,
                                   const AlignOptions& opts = {});

/// Workspace variant of the banded kernel — the clustering hot path. Every
/// in-band cell is written before any neighbor reads it, so the workspace
/// buffers are reused dirty with no per-call clear.
OverlapResult banded_overlap_align(Seq a, Seq b, const Scoring& sc,
                                   std::int32_t shift, std::uint32_t band,
                                   Workspace& ws,
                                   const AlignOptions& opts = {});

/// Pre-refactor banded kernel: fresh full-size buffers (allocated and
/// cleared) every call. Kept as the baseline for bench/align_throughput and
/// as the fresh-memory oracle for dirty-buffer reuse tests; bit-identical
/// results to the workspace variant.
OverlapResult banded_overlap_align_reference(Seq a, Seq b, const Scoring& sc,
                                             std::int32_t shift,
                                             std::uint32_t band,
                                             const AlignOptions& opts = {});

/// Throws std::invalid_argument with a clear message unless band > 0,
/// min_identity ∈ (0, 1], and min_overlap >= psi (an overlap shorter than
/// the exact-match seed length psi can never be generated, so such a config
/// would silently produce singleton clusters).
void validate_overlap_params(const OverlapParams& p, std::uint32_t psi);

/// Does this overlap pass the clustering accept test?
bool accept_overlap(const OverlapResult& r, const OverlapParams& p) noexcept;

/// Convenience: banded align with the params' scoring/band, then test.
OverlapResult test_overlap(Seq a, Seq b, std::int32_t shift,
                           const OverlapParams& p);

}  // namespace pgasm::align
