// Pairwise dynamic-programming alignment kernels.
//
// The paper detects overlaps "by computing alignments between the
// corresponding pairs of fragments using standard dynamic programming
// approaches" [Needleman–Wunsch, Smith–Waterman, Gotoh]. This module
// provides those kernels over the code alphabet (masked symbols are
// guaranteed mismatches) with full traceback so callers get the aligned
// region, the identity, and optionally the operation string.
//
// Complexity: O(|a|·|b|) time, O(|a|·|b|) bytes for traceback. Fragments
// are <= ~1000 bp, so a cell matrix is ~1 MB — the paper makes the same
// tradeoff by restricting DP to filtered pairs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"

namespace pgasm::align {

class Workspace;

using seq::Code;
using Seq = std::span<const Code>;

/// Scoring parameters. Linear-gap kernels use `gap`; affine kernels use
/// gap_open/gap_extend (first gap column costs gap_open + gap_extend).
struct Scoring {
  int match = 2;
  int mismatch = -3;
  int gap = -4;
  int gap_open = -5;
  int gap_extend = -2;

  int substitution(Code a, Code b) const noexcept {
    return (seq::is_base(a) && a == b) ? match : mismatch;
  }
};

/// Edit operations of a traceback, from the start of the aligned region.
enum class Op : std::uint8_t { kMatch, kMismatch, kInsertA, kInsertB };
// kInsertA: column consumes a character of `a` only (gap in b);
// kInsertB: column consumes a character of `b` only (gap in a).

struct AlignResult {
  int score = 0;
  /// Aligned (DP-traced) region, half-open, in each sequence.
  std::uint32_t a_begin = 0, a_end = 0;
  std::uint32_t b_begin = 0, b_end = 0;
  std::uint32_t matches = 0;   ///< identical columns
  std::uint32_t columns = 0;   ///< total alignment columns
  std::vector<Op> ops;         ///< filled when requested

  double identity() const noexcept {
    return columns == 0 ? 0.0
                        : static_cast<double>(matches) /
                              static_cast<double>(columns);
  }
  std::uint32_t a_span() const noexcept { return a_end - a_begin; }
  std::uint32_t b_span() const noexcept { return b_end - b_begin; }
};

struct AlignOptions {
  bool keep_ops = false;  ///< retain the op string in the result
};

/// Global (Needleman–Wunsch) alignment with linear gap penalty.
AlignResult global_align(Seq a, Seq b, const Scoring& sc,
                         const AlignOptions& opts = {});

/// Workspace variant: all DP rows and the traceback matrix come from `ws`
/// (grow-only, reused across calls) — no heap allocations after warmup
/// unless opts.keep_ops asks for the op string.
AlignResult global_align(Seq a, Seq b, const Scoring& sc, Workspace& ws,
                         const AlignOptions& opts = {});

/// Global alignment with affine gaps (Gotoh).
AlignResult global_affine_align(Seq a, Seq b, const Scoring& sc,
                                const AlignOptions& opts = {});

/// Local (Smith–Waterman) alignment, linear gaps.
AlignResult local_align(Seq a, Seq b, const Scoring& sc,
                        const AlignOptions& opts = {});

/// Banded global alignment: only cells with |i - j - shift| <= band are
/// explored. With a band covering the whole matrix this equals global_align.
/// Storage is band-relative — O((|a|+1)·(2·band+1)) cells, not the full
/// matrix stride.
AlignResult banded_global_align(Seq a, Seq b, const Scoring& sc,
                                std::int32_t shift, std::uint32_t band,
                                const AlignOptions& opts = {});

/// Workspace variant of the banded kernel (buffers reused dirty; every
/// in-band cell is written before any neighbor reads it).
AlignResult banded_global_align(Seq a, Seq b, const Scoring& sc,
                                std::int32_t shift, std::uint32_t band,
                                Workspace& ws, const AlignOptions& opts = {});

/// Render an op string as three display lines (for examples/debugging).
std::string format_alignment(Seq a, Seq b, const AlignResult& r);

}  // namespace pgasm::align
