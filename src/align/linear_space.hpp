// Space-efficient alignment kernels, extending the framework's linear-space
// discipline (paper Section 5: "eliminating the need to store promising
// pairs and pairwise alignment scores is key to achieving linear space")
// into the alignment layer itself:
//
//   * hirschberg_align — Needleman-Wunsch global alignment with full
//     traceback in O(min(|a|,|b|)) working memory (divide and conquer on
//     the middle row), instead of the O(|a||b|) traceback matrix.
//   * myers_edit_distance — Myers' 1999 bit-parallel algorithm: unit-cost
//     edit distance in O(|a|·|b|/64) word operations and O(1) extra space
//     per column block. Used as a cheap pre-filter before full DP.
//   * banded_edit_distance — bit-parallel distance with an early-exit
//     threshold k (returns k+1 if the distance exceeds k).
#pragma once

#include <cstdint>
#include <optional>

#include "align/pairwise.hpp"

namespace pgasm::align {

/// Global alignment, identical scores/semantics to global_align, with
/// O(min(|a|,|b|)) working memory. Always produces the op string.
AlignResult hirschberg_align(Seq a, Seq b, const Scoring& sc);

/// Workspace variant: the three rolling DP rows and the reversed-half
/// sequence scratch come from `ws`; after warmup the only allocation left
/// is the op string the caller asked for.
AlignResult hirschberg_align(Seq a, Seq b, const Scoring& sc, Workspace& ws);

/// Unit-cost (Levenshtein) edit distance via Myers' bit-parallel scan.
/// Masked symbols mismatch everything, as everywhere else.
std::uint32_t myers_edit_distance(Seq a, Seq b);

/// Edit distance with cutoff: returns the distance if <= k, else k+1
/// (early exit). Useful as an overlap pre-filter: a pair whose best
/// possible alignment already needs > k edits cannot pass the identity
/// test.
std::uint32_t myers_edit_distance_bounded(Seq a, Seq b, std::uint32_t k);

}  // namespace pgasm::align
