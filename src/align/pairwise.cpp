#include "align/pairwise.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pgasm::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback codes.
enum Tb : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

/// Walk a full-matrix traceback from (i, j) until a kStop cell; fills the
/// result's region, matches, columns and (optionally) ops.
void walk_traceback(Seq a, Seq b, const std::vector<std::uint8_t>& tb,
                    std::size_t stride, std::uint32_t i, std::uint32_t j,
                    const Scoring& sc, bool keep_ops, AlignResult& r) {
  (void)sc;
  r.a_end = i;
  r.b_end = j;
  std::vector<Op> rev;
  std::uint32_t matches = 0, columns = 0;
  while (tb[i * stride + j] != kStop) {
    switch (tb[i * stride + j]) {
      case kDiag: {
        --i;
        --j;
        const bool eq = seq::is_base(a[i]) && a[i] == b[j];
        rev.push_back(eq ? Op::kMatch : Op::kMismatch);
        matches += eq;
        ++columns;
        break;
      }
      case kUp:
        --i;
        rev.push_back(Op::kInsertA);
        ++columns;
        break;
      case kLeft:
        --j;
        rev.push_back(Op::kInsertB);
        ++columns;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
  }
  r.a_begin = i;
  r.b_begin = j;
  r.matches = matches;
  r.columns = columns;
  if (keep_ops) {
    r.ops.assign(rev.rbegin(), rev.rend());
  }
}

}  // namespace

AlignResult global_align(Seq a, Seq b, const Scoring& sc,
                         const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  std::vector<int> prev(stride), cur(stride);
  std::vector<std::uint8_t> tb((la + 1) * stride, kStop);

  for (std::size_t j = 1; j <= lb; ++j) {
    prev[j] = static_cast<int>(j) * sc.gap;
    tb[j] = kLeft;
  }
  prev[0] = 0;
  for (std::size_t i = 1; i <= la; ++i) {
    cur[0] = static_cast<int>(i) * sc.gap;
    tb[i * stride] = kUp;
    for (std::size_t j = 1; j <= lb; ++j) {
      const int diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = prev[j] + sc.gap;
      const int left = cur[j - 1] + sc.gap;
      int best = diag;
      std::uint8_t dir = kDiag;
      if (up > best) {
        best = up;
        dir = kUp;
      }
      if (left > best) {
        best = left;
        dir = kLeft;
      }
      cur[j] = best;
      tb[i * stride + j] = dir;
    }
    std::swap(prev, cur);
  }

  AlignResult r;
  r.score = prev[lb];
  walk_traceback(a, b, tb, stride, static_cast<std::uint32_t>(la),
                 static_cast<std::uint32_t>(lb), sc, opts.keep_ops, r);
  return r;
}

AlignResult local_align(Seq a, Seq b, const Scoring& sc,
                        const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  std::vector<int> prev(stride, 0), cur(stride, 0);
  std::vector<std::uint8_t> tb((la + 1) * stride, kStop);

  int best = 0;
  std::uint32_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= la; ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= lb; ++j) {
      const int diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = prev[j] + sc.gap;
      const int left = cur[j - 1] + sc.gap;
      int v = diag;
      std::uint8_t dir = kDiag;
      if (up > v) {
        v = up;
        dir = kUp;
      }
      if (left > v) {
        v = left;
        dir = kLeft;
      }
      if (v <= 0) {
        v = 0;
        dir = kStop;
      }
      cur[j] = v;
      tb[i * stride + j] = dir;
      if (v > best) {
        best = v;
        bi = static_cast<std::uint32_t>(i);
        bj = static_cast<std::uint32_t>(j);
      }
    }
    std::swap(prev, cur);
  }

  AlignResult r;
  r.score = best;
  walk_traceback(a, b, tb, stride, bi, bj, sc, opts.keep_ops, r);
  return r;
}

AlignResult global_affine_align(Seq a, Seq b, const Scoring& sc,
                                const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  // Three DP layers: M (diag), X (gap in b, consumes a), Y (gap in a).
  std::vector<int> m((la + 1) * stride, kNegInf);
  std::vector<int> x((la + 1) * stride, kNegInf);
  std::vector<int> y((la + 1) * stride, kNegInf);
  // Per-layer traceback: for M, stores which layer the diag step came from;
  // for X/Y, whether the gap was opened (from M) or extended.
  enum Layer : std::uint8_t { kLm = 0, kLx = 1, kLy = 2 };
  std::vector<std::uint8_t> tm((la + 1) * stride, kLm);
  std::vector<std::uint8_t> tx((la + 1) * stride, kLm);
  std::vector<std::uint8_t> ty((la + 1) * stride, kLm);

  m[0] = 0;
  for (std::size_t i = 1; i <= la; ++i) {
    x[i * stride] = sc.gap_open + static_cast<int>(i) * sc.gap_extend;
    tx[i * stride] = static_cast<std::uint8_t>(i == 1 ? kLm : kLx);
  }
  for (std::size_t j = 1; j <= lb; ++j) {
    y[j] = sc.gap_open + static_cast<int>(j) * sc.gap_extend;
    ty[j] = static_cast<std::uint8_t>(j == 1 ? kLm : kLy);
  }

  for (std::size_t i = 1; i <= la; ++i) {
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t c = i * stride + j;
      const std::size_t diag = (i - 1) * stride + (j - 1);
      const std::size_t up = (i - 1) * stride + j;
      const std::size_t left = i * stride + (j - 1);

      const int sub = sc.substitution(a[i - 1], b[j - 1]);
      int best = m[diag];
      std::uint8_t from = kLm;
      if (x[diag] > best) {
        best = x[diag];
        from = kLx;
      }
      if (y[diag] > best) {
        best = y[diag];
        from = kLy;
      }
      m[c] = best == kNegInf ? kNegInf : best + sub;
      tm[c] = from;

      const int x_open = m[up] + sc.gap_open + sc.gap_extend;
      const int x_ext = x[up] + sc.gap_extend;
      x[c] = std::max(x_open, x_ext);
      tx[c] = static_cast<std::uint8_t>(x_open >= x_ext ? kLm : kLx);

      const int y_open = m[left] + sc.gap_open + sc.gap_extend;
      const int y_ext = y[left] + sc.gap_extend;
      y[c] = std::max(y_open, y_ext);
      ty[c] = static_cast<std::uint8_t>(y_open >= y_ext ? kLm : kLy);
    }
  }

  const std::size_t end = la * stride + lb;
  AlignResult r;
  std::uint8_t layer = kLm;
  r.score = m[end];
  if (x[end] > r.score) {
    r.score = x[end];
    layer = kLx;
  }
  if (y[end] > r.score) {
    r.score = y[end];
    layer = kLy;
  }

  // Traceback across layers.
  std::vector<Op> rev;
  std::size_t i = la, j = lb;
  r.a_end = static_cast<std::uint32_t>(la);
  r.b_end = static_cast<std::uint32_t>(lb);
  std::uint32_t matches = 0, columns = 0;
  while (i > 0 || j > 0) {
    const std::size_t c = i * stride + j;
    if (layer == kLm) {
      if (i == 0 || j == 0) break;  // origin
      const std::uint8_t from = tm[c];
      --i;
      --j;
      const bool eq = seq::is_base(a[i]) && a[i] == b[j];
      rev.push_back(eq ? Op::kMatch : Op::kMismatch);
      matches += eq;
      ++columns;
      layer = from;
    } else if (layer == kLx) {
      const std::uint8_t from = tx[c];
      --i;
      rev.push_back(Op::kInsertA);
      ++columns;
      layer = from;
    } else {
      const std::uint8_t from = ty[c];
      --j;
      rev.push_back(Op::kInsertB);
      ++columns;
      layer = from;
    }
  }
  r.a_begin = static_cast<std::uint32_t>(i);
  r.b_begin = static_cast<std::uint32_t>(j);
  r.matches = matches;
  r.columns = columns;
  if (opts.keep_ops) r.ops.assign(rev.rbegin(), rev.rend());
  return r;
}

AlignResult banded_global_align(Seq a, Seq b, const Scoring& sc,
                                std::int32_t shift, std::uint32_t band,
                                const AlignOptions& opts) {
  const std::int64_t la = static_cast<std::int64_t>(a.size());
  const std::int64_t lb = static_cast<std::int64_t>(b.size());
  const std::size_t stride = static_cast<std::size_t>(lb) + 1;
  std::vector<int> score((la + 1) * stride, kNegInf);
  std::vector<std::uint8_t> tb((la + 1) * stride, kStop);

  auto in_band = [&](std::int64_t i, std::int64_t j) {
    const std::int64_t d = j - i - shift;
    return d >= -static_cast<std::int64_t>(band) &&
           d <= static_cast<std::int64_t>(band);
  };

  score[0] = 0;
  for (std::int64_t j = 1; j <= lb && in_band(0, j); ++j) {
    score[static_cast<std::size_t>(j)] = static_cast<int>(j) * sc.gap;
    tb[static_cast<std::size_t>(j)] = kLeft;
  }
  for (std::int64_t i = 1; i <= la; ++i) {
    const std::int64_t jlo = std::max<std::int64_t>(
        0, i + shift - static_cast<std::int64_t>(band));
    const std::int64_t jhi =
        std::min<std::int64_t>(lb, i + shift + static_cast<std::int64_t>(band));
    for (std::int64_t j = jlo; j <= jhi; ++j) {
      const std::size_t c = static_cast<std::size_t>(i) * stride +
                            static_cast<std::size_t>(j);
      if (j == 0) {
        score[c] = static_cast<int>(i) * sc.gap;
        tb[c] = kUp;
        continue;
      }
      int best = kNegInf;
      std::uint8_t dir = kStop;
      const std::size_t cd = static_cast<std::size_t>(i - 1) * stride +
                             static_cast<std::size_t>(j - 1);
      if (score[cd] > kNegInf) {
        const int v = score[cd] + sc.substitution(a[i - 1], b[j - 1]);
        if (v > best) {
          best = v;
          dir = kDiag;
        }
      }
      const std::size_t cu = static_cast<std::size_t>(i - 1) * stride +
                             static_cast<std::size_t>(j);
      if (in_band(i - 1, j) && score[cu] > kNegInf) {
        const int v = score[cu] + sc.gap;
        if (v > best) {
          best = v;
          dir = kUp;
        }
      }
      const std::size_t cl = static_cast<std::size_t>(i) * stride +
                             static_cast<std::size_t>(j - 1);
      if (in_band(i, j - 1) && score[cl] > kNegInf) {
        const int v = score[cl] + sc.gap;
        if (v > best) {
          best = v;
          dir = kLeft;
        }
      }
      if (dir != kStop) {
        score[c] = best;
        tb[c] = dir;
      }
    }
  }

  AlignResult r;
  const std::size_t end =
      static_cast<std::size_t>(la) * stride + static_cast<std::size_t>(lb);
  r.score = score[end];
  if (r.score <= kNegInf) {
    // Band does not connect the corners; report an empty, failed alignment.
    r.score = kNegInf;
    return r;
  }
  walk_traceback(a, b, tb, stride, static_cast<std::uint32_t>(la),
                 static_cast<std::uint32_t>(lb), sc, opts.keep_ops, r);
  return r;
}

std::string format_alignment(Seq a, Seq b, const AlignResult& r) {
  std::string top, mid, bot;
  std::size_t i = r.a_begin, j = r.b_begin;
  for (Op op : r.ops) {
    switch (op) {
      case Op::kMatch:
      case Op::kMismatch:
        top += seq::decode_char(a[i++]);
        bot += seq::decode_char(b[j++]);
        mid += (op == Op::kMatch ? '|' : ' ');
        break;
      case Op::kInsertA:
        top += seq::decode_char(a[i++]);
        bot += '-';
        mid += ' ';
        break;
      case Op::kInsertB:
        top += '-';
        bot += seq::decode_char(b[j++]);
        mid += ' ';
        break;
    }
  }
  return top + "\n" + mid + "\n" + bot + "\n";
}

}  // namespace pgasm::align
