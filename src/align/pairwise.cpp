#include "align/pairwise.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "align/workspace.hpp"

namespace pgasm::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback codes.
enum Tb : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

/// Walk a full-matrix traceback from (i, j) until a kStop cell; fills the
/// result's region, matches, columns and (optionally) ops. Two passes: the
/// first finds the path start and counts columns/matches, the second (only
/// when ops are requested) writes each op straight into its final position
/// of an exactly-sized vector — no reverse scratch, no reallocation.
void walk_traceback(Seq a, Seq b, const std::uint8_t* tb, std::size_t stride,
                    std::uint32_t i, std::uint32_t j, bool keep_ops,
                    AlignResult& r) {
  r.a_end = i;
  r.b_end = j;
  std::uint32_t ci = i, cj = j;
  std::uint32_t matches = 0, columns = 0;
  while (tb[ci * stride + cj] != kStop) {
    switch (tb[ci * stride + cj]) {
      case kDiag:
        --ci;
        --cj;
        matches += seq::is_base(a[ci]) && a[ci] == b[cj];
        break;
      case kUp:
        --ci;
        break;
      case kLeft:
        --cj;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
    ++columns;
  }
  r.a_begin = ci;
  r.b_begin = cj;
  r.matches = matches;
  r.columns = columns;
  if (!keep_ops) return;
  r.ops.resize(columns);
  std::size_t at = columns;
  ci = i;
  cj = j;
  while (tb[ci * stride + cj] != kStop) {
    switch (tb[ci * stride + cj]) {
      case kDiag:
        --ci;
        --cj;
        r.ops[--at] = seq::is_base(a[ci]) && a[ci] == b[cj] ? Op::kMatch
                                                            : Op::kMismatch;
        break;
      case kUp:
        --ci;
        r.ops[--at] = Op::kInsertA;
        break;
      default:  // kLeft; garbage already rejected by the first pass
        --cj;
        r.ops[--at] = Op::kInsertB;
        break;
    }
  }
}

}  // namespace

AlignResult global_align(Seq a, Seq b, const Scoring& sc, Workspace& ws,
                         const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  int* prev = ws.row(0, stride);
  int* cur = ws.row(1, stride);
  std::uint8_t* tb = ws.tb_cells((la + 1) * stride);

  // Buffers arrive dirty: write the boundary cells explicitly (the inner
  // loops write everything else before it is read).
  tb[0] = kStop;
  for (std::size_t j = 1; j <= lb; ++j) {
    prev[j] = static_cast<int>(j) * sc.gap;
    tb[j] = kLeft;
  }
  prev[0] = 0;
  for (std::size_t i = 1; i <= la; ++i) {
    cur[0] = static_cast<int>(i) * sc.gap;
    tb[i * stride] = kUp;
    for (std::size_t j = 1; j <= lb; ++j) {
      const int diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = prev[j] + sc.gap;
      const int left = cur[j - 1] + sc.gap;
      int best = diag;
      std::uint8_t dir = kDiag;
      if (up > best) {
        best = up;
        dir = kUp;
      }
      if (left > best) {
        best = left;
        dir = kLeft;
      }
      cur[j] = best;
      tb[i * stride + j] = dir;
    }
    std::swap(prev, cur);
  }

  AlignResult r;
  r.score = prev[lb];
  walk_traceback(a, b, tb, stride, static_cast<std::uint32_t>(la),
                 static_cast<std::uint32_t>(lb), opts.keep_ops, r);
  return r;
}

AlignResult global_align(Seq a, Seq b, const Scoring& sc,
                         const AlignOptions& opts) {
  Workspace ws;  // allocating reference path: fresh buffers every call
  return global_align(a, b, sc, ws, opts);
}

AlignResult local_align(Seq a, Seq b, const Scoring& sc,
                        const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  std::vector<int> prev(stride, 0), cur(stride, 0);
  std::vector<std::uint8_t> tb((la + 1) * stride, kStop);

  int best = 0;
  std::uint32_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= la; ++i) {
    cur[0] = 0;
    for (std::size_t j = 1; j <= lb; ++j) {
      const int diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = prev[j] + sc.gap;
      const int left = cur[j - 1] + sc.gap;
      int v = diag;
      std::uint8_t dir = kDiag;
      if (up > v) {
        v = up;
        dir = kUp;
      }
      if (left > v) {
        v = left;
        dir = kLeft;
      }
      if (v <= 0) {
        v = 0;
        dir = kStop;
      }
      cur[j] = v;
      tb[i * stride + j] = dir;
      if (v > best) {
        best = v;
        bi = static_cast<std::uint32_t>(i);
        bj = static_cast<std::uint32_t>(j);
      }
    }
    std::swap(prev, cur);
  }

  AlignResult r;
  r.score = best;
  walk_traceback(a, b, tb.data(), stride, bi, bj, opts.keep_ops, r);
  return r;
}

AlignResult global_affine_align(Seq a, Seq b, const Scoring& sc,
                                const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  // Three DP layers: M (diag), X (gap in b, consumes a), Y (gap in a).
  std::vector<int> m((la + 1) * stride, kNegInf);
  std::vector<int> x((la + 1) * stride, kNegInf);
  std::vector<int> y((la + 1) * stride, kNegInf);
  // Per-layer traceback: for M, stores which layer the diag step came from;
  // for X/Y, whether the gap was opened (from M) or extended.
  enum Layer : std::uint8_t { kLm = 0, kLx = 1, kLy = 2 };
  std::vector<std::uint8_t> tm((la + 1) * stride, kLm);
  std::vector<std::uint8_t> tx((la + 1) * stride, kLm);
  std::vector<std::uint8_t> ty((la + 1) * stride, kLm);

  m[0] = 0;
  for (std::size_t i = 1; i <= la; ++i) {
    x[i * stride] = sc.gap_open + static_cast<int>(i) * sc.gap_extend;
    tx[i * stride] = static_cast<std::uint8_t>(i == 1 ? kLm : kLx);
  }
  for (std::size_t j = 1; j <= lb; ++j) {
    y[j] = sc.gap_open + static_cast<int>(j) * sc.gap_extend;
    ty[j] = static_cast<std::uint8_t>(j == 1 ? kLm : kLy);
  }

  for (std::size_t i = 1; i <= la; ++i) {
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t c = i * stride + j;
      const std::size_t diag = (i - 1) * stride + (j - 1);
      const std::size_t up = (i - 1) * stride + j;
      const std::size_t left = i * stride + (j - 1);

      const int sub = sc.substitution(a[i - 1], b[j - 1]);
      int best = m[diag];
      std::uint8_t from = kLm;
      if (x[diag] > best) {
        best = x[diag];
        from = kLx;
      }
      if (y[diag] > best) {
        best = y[diag];
        from = kLy;
      }
      m[c] = best == kNegInf ? kNegInf : best + sub;
      tm[c] = from;

      const int x_open = m[up] + sc.gap_open + sc.gap_extend;
      const int x_ext = x[up] + sc.gap_extend;
      x[c] = std::max(x_open, x_ext);
      tx[c] = static_cast<std::uint8_t>(x_open >= x_ext ? kLm : kLx);

      const int y_open = m[left] + sc.gap_open + sc.gap_extend;
      const int y_ext = y[left] + sc.gap_extend;
      y[c] = std::max(y_open, y_ext);
      ty[c] = static_cast<std::uint8_t>(y_open >= y_ext ? kLm : kLy);
    }
  }

  const std::size_t end = la * stride + lb;
  AlignResult r;
  std::uint8_t layer = kLm;
  r.score = m[end];
  if (x[end] > r.score) {
    r.score = x[end];
    layer = kLx;
  }
  if (y[end] > r.score) {
    r.score = y[end];
    layer = kLy;
  }

  // Traceback across layers.
  std::vector<Op> rev;
  std::size_t i = la, j = lb;
  r.a_end = static_cast<std::uint32_t>(la);
  r.b_end = static_cast<std::uint32_t>(lb);
  std::uint32_t matches = 0, columns = 0;
  while (i > 0 || j > 0) {
    const std::size_t c = i * stride + j;
    if (layer == kLm) {
      if (i == 0 || j == 0) break;  // origin
      const std::uint8_t from = tm[c];
      --i;
      --j;
      const bool eq = seq::is_base(a[i]) && a[i] == b[j];
      rev.push_back(eq ? Op::kMatch : Op::kMismatch);
      matches += eq;
      ++columns;
      layer = from;
    } else if (layer == kLx) {
      const std::uint8_t from = tx[c];
      --i;
      rev.push_back(Op::kInsertA);
      ++columns;
      layer = from;
    } else {
      const std::uint8_t from = ty[c];
      --j;
      rev.push_back(Op::kInsertB);
      ++columns;
      layer = from;
    }
  }
  r.a_begin = static_cast<std::uint32_t>(i);
  r.b_begin = static_cast<std::uint32_t>(j);
  r.matches = matches;
  r.columns = columns;
  if (opts.keep_ops) r.ops.assign(rev.rbegin(), rev.rend());
  return r;
}

AlignResult banded_global_align(Seq a, Seq b, const Scoring& sc,
                                std::int32_t shift, std::uint32_t band,
                                Workspace& ws, const AlignOptions& opts) {
  const std::int64_t la = static_cast<std::int64_t>(a.size());
  const std::int64_t lb = static_cast<std::int64_t>(b.size());
  const std::int64_t B = static_cast<std::int64_t>(band);
  const std::size_t width = 2 * static_cast<std::size_t>(band) + 1;

  // Band-relative storage: row i holds columns j in [i+shift-B, i+shift+B]
  // clipped to [0, lb]; band index c = j - (i + shift - B). Against the
  // previous row, the diag neighbor keeps index c, the up neighbor is c+1;
  // the left neighbor is c-1 in the same row. Cells outside a row's clipped
  // range are never written NOR read (all reads below are range-guarded),
  // so dirty buffers are safe.
  int* score = ws.score_cells(static_cast<std::size_t>(la + 1) * width);
  std::uint8_t* tb = ws.tb_cells(static_cast<std::size_t>(la + 1) * width);

  auto jlo = [&](std::int64_t i) {
    return std::max<std::int64_t>(0, i + shift - B);
  };
  auto jhi = [&](std::int64_t i) {
    return std::min<std::int64_t>(lb, i + shift + B);
  };

  for (std::int64_t i = 0; i <= la; ++i) {
    const std::int64_t lo = jlo(i), hi = jhi(i);
    if (lo > hi) continue;
    const std::int64_t base = i + shift - B;  // column of band index 0
    const std::int64_t clo = lo - base;       // band index of the row start
    int* cur = score + static_cast<std::size_t>(i) * width;
    std::uint8_t* tcur = tb + static_cast<std::size_t>(i) * width;
    if (i == 0) {
      // Left-gap prefix along the top edge, reachable only contiguously
      // from column 1 (and the origin itself when in band).
      if (lo == 0) {
        cur[clo] = 0;
        tcur[clo] = kStop;
      }
      const bool connected = lo <= 1 && hi >= 1;
      for (std::int64_t j = std::max<std::int64_t>(1, lo); j <= hi; ++j) {
        const std::size_t c = static_cast<std::size_t>(j - base);
        cur[c] = connected ? static_cast<int>(j) * sc.gap : kNegInf;
        tcur[c] = connected ? kLeft : kStop;
      }
      continue;
    }
    const int* prev = cur - width;  // row i-1
    std::int64_t j = lo;
    if (j == 0) {
      // Top-gap prefix along the left edge (column-0 in-band rows are a
      // contiguous prefix that always includes row 0).
      const std::size_t c = static_cast<std::size_t>(-base);
      cur[c] = static_cast<int>(i) * sc.gap;
      tcur[c] = kUp;
      ++j;
    }
    for (; j <= hi; ++j) {
      const std::size_t c = static_cast<std::size_t>(j - base);
      int best = kNegInf;
      std::uint8_t dir = kStop;
      // diag (i-1, j-1) is band index c in the previous row and is always
      // inside its clipped range when i >= 1 and j >= 1.
      if (prev[c] > kNegInf) {
        best = prev[c] + sc.substitution(a[i - 1], b[j - 1]);
        dir = kDiag;
      }
      if (c + 1 < width && prev[c + 1] > kNegInf) {
        const int v = prev[c + 1] + sc.gap;
        if (v > best) {
          best = v;
          dir = kUp;
        }
      }
      if (static_cast<std::int64_t>(c) > clo && cur[c - 1] > kNegInf) {
        const int v = cur[c - 1] + sc.gap;
        if (v > best) {
          best = v;
          dir = kLeft;
        }
      }
      cur[c] = dir == kStop ? kNegInf : best;
      tcur[c] = dir;
    }
  }

  AlignResult r;
  const std::int64_t end_base = la + shift - B;
  if (lb < jlo(la) || lb > jhi(la)) {
    r.score = kNegInf;  // band misses the terminal corner entirely
    return r;
  }
  const std::size_t end = static_cast<std::size_t>(la) * width +
                          static_cast<std::size_t>(lb - end_base);
  r.score = score[end];
  if (r.score <= kNegInf) {
    // Band does not connect the corners; report an empty, failed alignment.
    r.score = kNegInf;
    return r;
  }

  // Band-relative traceback from the corner.
  std::int64_t ci = la, cj = lb;
  r.a_end = static_cast<std::uint32_t>(la);
  r.b_end = static_cast<std::uint32_t>(lb);
  auto cell = [&](std::int64_t i2, std::int64_t j2) -> std::size_t {
    return static_cast<std::size_t>(i2) * width +
           static_cast<std::size_t>(j2 - (i2 + shift - B));
  };
  std::uint32_t matches = 0, columns = 0;
  while (tb[cell(ci, cj)] != kStop) {
    switch (tb[cell(ci, cj)]) {
      case kDiag:
        --ci;
        --cj;
        matches += seq::is_base(a[ci]) && a[ci] == b[cj];
        break;
      case kUp:
        --ci;
        break;
      case kLeft:
        --cj;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
    ++columns;
  }
  r.a_begin = static_cast<std::uint32_t>(ci);
  r.b_begin = static_cast<std::uint32_t>(cj);
  r.matches = matches;
  r.columns = columns;
  if (opts.keep_ops) {
    r.ops.resize(columns);
    std::size_t at = columns;
    ci = la;
    cj = lb;
    while (tb[cell(ci, cj)] != kStop) {
      switch (tb[cell(ci, cj)]) {
        case kDiag:
          --ci;
          --cj;
          r.ops[--at] = seq::is_base(a[ci]) && a[ci] == b[cj] ? Op::kMatch
                                                              : Op::kMismatch;
          break;
        case kUp:
          --ci;
          r.ops[--at] = Op::kInsertA;
          break;
        default:
          --cj;
          r.ops[--at] = Op::kInsertB;
          break;
      }
    }
  }
  return r;
}

AlignResult banded_global_align(Seq a, Seq b, const Scoring& sc,
                                std::int32_t shift, std::uint32_t band,
                                const AlignOptions& opts) {
  Workspace ws;  // allocating reference path: fresh buffers every call
  return banded_global_align(a, b, sc, shift, band, ws, opts);
}

std::string format_alignment(Seq a, Seq b, const AlignResult& r) {
  const std::size_t n = r.ops.size();
  std::string top, mid, bot;
  top.reserve(n);
  mid.reserve(n);
  bot.reserve(n);
  std::size_t i = r.a_begin, j = r.b_begin;
  for (Op op : r.ops) {
    switch (op) {
      case Op::kMatch:
      case Op::kMismatch:
        top += seq::decode_char(a[i++]);
        bot += seq::decode_char(b[j++]);
        mid += (op == Op::kMatch ? '|' : ' ');
        break;
      case Op::kInsertA:
        top += seq::decode_char(a[i++]);
        bot += '-';
        mid += ' ';
        break;
      case Op::kInsertB:
        top += '-';
        bot += seq::decode_char(b[j++]);
        mid += ' ';
        break;
    }
  }
  std::string out;
  out.reserve(3 * (n + 1));
  out += top;
  out += '\n';
  out += mid;
  out += '\n';
  out += bot;
  out += '\n';
  return out;
}

}  // namespace pgasm::align
