#include "align/overlap.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/workspace.hpp"

namespace pgasm::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
enum Tb : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

OverlapType classify(std::uint32_t la, std::uint32_t lb,
                     const AlignResult& r) {
  const bool a_full = r.a_begin == 0 && r.a_end == la;
  const bool b_full = r.b_begin == 0 && r.b_end == lb;
  if (a_full && b_full) {
    return la >= lb ? OverlapType::kContainsB : OverlapType::kContainedInB;
  }
  if (b_full) return OverlapType::kContainsB;
  if (a_full) return OverlapType::kContainedInB;
  if (r.a_end == la && r.b_begin == 0) return OverlapType::kDovetailAB;
  if (r.b_end == lb && r.a_begin == 0) return OverlapType::kDovetailBA;
  return OverlapType::kNone;
}

}  // namespace

const char* overlap_type_name(OverlapType t) noexcept {
  switch (t) {
    case OverlapType::kNone: return "none";
    case OverlapType::kDovetailAB: return "dovetail(a->b)";
    case OverlapType::kDovetailBA: return "dovetail(b->a)";
    case OverlapType::kContainsB: return "contains(b)";
    case OverlapType::kContainedInB: return "contained-in(b)";
  }
  return "?";
}

OverlapResult overlap_align(Seq a, Seq b, const Scoring& sc, Workspace& ws,
                            const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  int* score = ws.score_cells((la + 1) * stride);
  std::uint8_t* tb = ws.tb_cells((la + 1) * stride);

  // Row 0 and column 0 are score 0 / kStop: free leading gaps. Buffers are
  // dirty, so write the edges explicitly; the loop writes everything else.
  for (std::size_t j = 0; j <= lb; ++j) {
    score[j] = 0;
    tb[j] = kStop;
  }
  for (std::size_t i = 1; i <= la; ++i) {
    score[i * stride] = 0;
    tb[i * stride] = kStop;
  }

  for (std::size_t i = 1; i <= la; ++i) {
    const int* prev = score + (i - 1) * stride;
    int* cur = score + i * stride;
    std::uint8_t* tcur = tb + i * stride;
    for (std::size_t j = 1; j <= lb; ++j) {
      const int diag = prev[j - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = prev[j] + sc.gap;
      const int left = cur[j - 1] + sc.gap;
      int best = diag;
      std::uint8_t dir = kDiag;
      if (up > best) {
        best = up;
        dir = kUp;
      }
      if (left > best) {
        best = left;
        dir = kLeft;
      }
      cur[j] = best;
      tcur[j] = dir;
    }
  }

  // Best end on the last row or last column (free trailing gaps). Visit
  // order — last column ascending, then last row ascending — matches the
  // banded kernels' row-major end scan so ties resolve identically and a
  // covering band reproduces this kernel bit for bit.
  int best = kNegInf;
  std::size_t bi = la, bj = lb;
  for (std::size_t i = 0; i < la; ++i) {
    if (score[i * stride + lb] > best) {
      best = score[i * stride + lb];
      bi = i;
      bj = lb;
    }
  }
  for (std::size_t j = 0; j <= lb; ++j) {
    if (score[la * stride + j] > best) {
      best = score[la * stride + j];
      bi = la;
      bj = j;
    }
  }

  OverlapResult r;
  r.aln.score = best;
  r.aln.a_end = static_cast<std::uint32_t>(bi);
  r.aln.b_end = static_cast<std::uint32_t>(bj);
  std::size_t i = bi, j = bj;
  std::uint32_t matches = 0, columns = 0;
  while (tb[i * stride + j] != kStop) {
    switch (tb[i * stride + j]) {
      case kDiag:
        --i;
        --j;
        matches += seq::is_base(a[i]) && a[i] == b[j];
        break;
      case kUp:
        --i;
        break;
      case kLeft:
        --j;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
    ++columns;
  }
  r.aln.a_begin = static_cast<std::uint32_t>(i);
  r.aln.b_begin = static_cast<std::uint32_t>(j);
  r.aln.matches = matches;
  r.aln.columns = columns;
  if (opts.keep_ops) {
    r.aln.ops.resize(columns);
    std::size_t at = columns;
    i = bi;
    j = bj;
    while (tb[i * stride + j] != kStop) {
      switch (tb[i * stride + j]) {
        case kDiag:
          --i;
          --j;
          r.aln.ops[--at] = seq::is_base(a[i]) && a[i] == b[j]
                                ? Op::kMatch
                                : Op::kMismatch;
          break;
        case kUp:
          --i;
          r.aln.ops[--at] = Op::kInsertA;
          break;
        default:
          --j;
          r.aln.ops[--at] = Op::kInsertB;
          break;
      }
    }
  }
  r.type = classify(static_cast<std::uint32_t>(la),
                    static_cast<std::uint32_t>(lb), r.aln);
  return r;
}

OverlapResult overlap_align(Seq a, Seq b, const Scoring& sc,
                            const AlignOptions& opts) {
  Workspace ws;  // allocating path: fresh buffers every call
  return overlap_align(a, b, sc, ws, opts);
}

OverlapResult banded_overlap_align(Seq a, Seq b, const Scoring& sc,
                                   std::int32_t shift, std::uint32_t band,
                                   Workspace& ws, const AlignOptions& opts) {
  const std::int64_t la = static_cast<std::int64_t>(a.size());
  const std::int64_t lb = static_cast<std::int64_t>(b.size());
  const std::int64_t B = static_cast<std::int64_t>(band);
  const std::size_t width = 2 * static_cast<std::size_t>(band) + 1;

  // Band storage: row i holds columns j in [i+shift-B, i+shift+B] clipped
  // to [0, lb]; band index c = j - (i + shift - B). Diag neighbor keeps c in
  // the previous row; up neighbor is c+1 there; left neighbor is c-1 in the
  // same row. Every clipped-range cell is written below (reachable or not),
  // so the workspace buffers can be reused dirty with no per-call clear.
  int* score = ws.score_cells(static_cast<std::size_t>(la + 1) * width);
  std::uint8_t* tb = ws.tb_cells(static_cast<std::size_t>(la + 1) * width);

  auto jlo = [&](std::int64_t i) {
    return std::max<std::int64_t>(0, i + shift - B);
  };
  auto jhi = [&](std::int64_t i) {
    return std::min<std::int64_t>(lb, i + shift + B);
  };

  // Unreachable in-band cells carry "poison" — values that drift from
  // kNegInf by at most one score weight per step — instead of exact kNegInf
  // plus per-neighbor reachability branches. Real scores are bounded by a
  // few units per column, so for any practical sequence length (well below
  // ~10^8) poison stays under kEndFloor and can never be selected as an end
  // cell; real cells compute exactly the same value and direction as the
  // guarded reference kernel, because a poison candidate always loses the
  // strict max against a real one. Traceback only ever starts from a real
  // end cell and real cells only point at real neighbors, so the garbage
  // directions stored in poison cells are never followed.
  constexpr int kEndFloor = kNegInf / 2;
  const int gap = sc.gap;

  int best = kEndFloor;
  std::int64_t bi = -1, bj = -1;
  auto consider_end = [&](std::int64_t i, std::int64_t j, int v) {
    if (v > best) {
      best = v;
      bi = i;
      bj = j;
    }
  };

  {  // Row 0: every in-band cell is a free-leading-gap boundary.
    const std::int64_t lo = jlo(0), hi = jhi(0);
    const std::int64_t base = shift - B;
    for (std::int64_t j = lo; j <= hi; ++j) {
      score[static_cast<std::size_t>(j - base)] = 0;
      tb[static_cast<std::size_t>(j - base)] = kStop;
    }
    if (la == 0) {  // degenerate: row 0 is also the last row
      for (std::int64_t j = lo; j <= hi; ++j) consider_end(0, j, 0);
    } else if (lo <= hi && hi == lb) {
      consider_end(0, lb, 0);
    }
  }

  for (std::int64_t i = 1; i <= la; ++i) {
    const std::int64_t lo = jlo(i), hi = jhi(i);
    if (lo > hi) continue;
    const std::int64_t base = i + shift - B;  // column of band index 0
    int* cur = score + static_cast<std::size_t>(i) * width;
    std::uint8_t* tcur = tb + static_cast<std::size_t>(i) * width;
    const int* prev = cur - width;  // row i-1
    const seq::Code ai = a[i - 1];
    std::int64_t j = lo;
    if (j == 0) {  // boundary column: free leading gap
      cur[static_cast<std::size_t>(-base)] = 0;
      tcur[static_cast<std::size_t>(-base)] = kStop;
      ++j;
    }
    if (j <= hi) {
      std::size_t c = static_cast<std::size_t>(j - base);
      if (j == lo) {  // row start: no in-band left neighbor
        // diag (i-1, j-1) is band index c in the previous row, and is
        // always inside that row's clipped range when i >= 1 and j >= 1.
        int v = prev[c] + sc.substitution(ai, b[j - 1]);
        std::uint8_t dir = kDiag;
        if (c + 1 < width) {
          const int cand = prev[c + 1] + gap;
          if (cand > v) {
            v = cand;
            dir = kUp;
          }
        }
        cur[c] = v;
        tcur[c] = dir;
        ++j;
        ++c;
      }
      // Steady state: diag, up, and left neighbors are all in band, so the
      // hot loop runs guard-free. When hi is the unclipped band edge the
      // final cell has no up neighbor and is peeled off below.
      const std::int64_t last = hi == i + shift + B ? hi - 1 : hi;
      for (; j <= last; ++j, ++c) {
        int v = prev[c] + sc.substitution(ai, b[j - 1]);
        std::uint8_t dir = kDiag;
        int cand = prev[c + 1] + gap;
        if (cand > v) {
          v = cand;
          dir = kUp;
        }
        cand = cur[c - 1] + gap;
        if (cand > v) {
          v = cand;
          dir = kLeft;
        }
        cur[c] = v;
        tcur[c] = dir;
      }
      if (j <= hi) {  // band-edge cell: no up neighbor
        int v = prev[c] + sc.substitution(ai, b[j - 1]);
        std::uint8_t dir = kDiag;
        const int cand = cur[c - 1] + gap;
        if (cand > v) {
          v = cand;
          dir = kLeft;
        }
        cur[c] = v;
        tcur[c] = dir;
      }
    }
    // Free trailing gaps: end candidates in the reference kernel's
    // row-major order — (i, lb) while i < la, then the whole last row
    // ascending. Poison cells sit below kEndFloor and never win.
    if (i < la) {
      if (hi == lb) {
        consider_end(i, lb, cur[static_cast<std::size_t>(lb - base)]);
      }
    } else {
      for (std::int64_t jj = lo; jj <= hi; ++jj) {
        consider_end(la, jj, cur[static_cast<std::size_t>(jj - base)]);
      }
    }
  }

  OverlapResult r;
  if (bi < 0) {
    r.aln.score = kNegInf;
    return r;  // band never touched an end edge
  }
  r.aln.score = best;
  r.aln.a_end = static_cast<std::uint32_t>(bi);
  r.aln.b_end = static_cast<std::uint32_t>(bj);
  auto cell = [&](std::int64_t i2, std::int64_t j2) -> std::size_t {
    return static_cast<std::size_t>(i2) * width +
           static_cast<std::size_t>(j2 - (i2 + shift - B));
  };
  std::int64_t i = bi, j = bj;
  std::uint32_t matches = 0, columns = 0;
  while (tb[cell(i, j)] != kStop) {
    switch (tb[cell(i, j)]) {
      case kDiag:
        --i;
        --j;
        matches += seq::is_base(a[i]) && a[i] == b[j];
        break;
      case kUp:
        --i;
        break;
      case kLeft:
        --j;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
    ++columns;
  }
  r.aln.a_begin = static_cast<std::uint32_t>(i);
  r.aln.b_begin = static_cast<std::uint32_t>(j);
  r.aln.matches = matches;
  r.aln.columns = columns;
  if (opts.keep_ops) {
    r.aln.ops.resize(columns);
    std::size_t at = columns;
    i = bi;
    j = bj;
    while (tb[cell(i, j)] != kStop) {
      switch (tb[cell(i, j)]) {
        case kDiag:
          --i;
          --j;
          r.aln.ops[--at] = seq::is_base(a[i]) && a[i] == b[j]
                                ? Op::kMatch
                                : Op::kMismatch;
          break;
        case kUp:
          --i;
          r.aln.ops[--at] = Op::kInsertA;
          break;
        default:
          --j;
          r.aln.ops[--at] = Op::kInsertB;
          break;
      }
    }
  }
  r.type = classify(static_cast<std::uint32_t>(la),
                    static_cast<std::uint32_t>(lb), r.aln);
  return r;
}

OverlapResult banded_overlap_align(Seq a, Seq b, const Scoring& sc,
                                   std::int32_t shift, std::uint32_t band,
                                   const AlignOptions& opts) {
  thread_local Workspace ws;  // convenience path for low-volume callers
  return banded_overlap_align(a, b, sc, shift, band, ws, opts);
}

OverlapResult banded_overlap_align_reference(Seq a, Seq b, const Scoring& sc,
                                             std::int32_t shift,
                                             std::uint32_t band,
                                             const AlignOptions& opts) {
  const std::int64_t la = static_cast<std::int64_t>(a.size());
  const std::int64_t lb = static_cast<std::int64_t>(b.size());
  const std::int64_t B = static_cast<std::int64_t>(band);
  const std::size_t width = 2 * band + 1;

  // Fresh, zero-cleared buffers every call — the pre-refactor cost model.
  std::vector<int> score(static_cast<std::size_t>(la + 1) * width, kNegInf);
  std::vector<std::uint8_t> tb(static_cast<std::size_t>(la + 1) * width,
                               kStop);

  auto jlo = [&](std::int64_t i) {
    return std::max<std::int64_t>(0, i + shift - B);
  };
  auto jhi = [&](std::int64_t i) {
    return std::min<std::int64_t>(lb, i + shift + B);
  };
  auto cell = [&](std::int64_t i, std::int64_t j) -> std::size_t {
    return static_cast<std::size_t>(i) * width +
           static_cast<std::size_t>(j - (i + shift - B));
  };

  int best = kNegInf;
  std::int64_t bi = -1, bj = -1;
  auto consider_end = [&](std::int64_t i, std::int64_t j, int v) {
    if ((i == la || j == lb) && v > best) {
      best = v;
      bi = i;
      bj = j;
    }
  };

  for (std::int64_t i = 0; i <= la; ++i) {
    const std::int64_t lo = jlo(i), hi = jhi(i);
    if (lo > hi) continue;
    for (std::int64_t j = lo; j <= hi; ++j) {
      const std::size_t c = cell(i, j);
      if (i == 0 || j == 0) {
        score[c] = 0;  // free leading gaps on both edges
        tb[c] = kStop;
        consider_end(i, j, 0);
        continue;
      }
      int v = kNegInf;
      std::uint8_t dir = kStop;
      if (j - 1 >= jlo(i - 1) && j - 1 <= jhi(i - 1)) {
        const int s = score[cell(i - 1, j - 1)];
        if (s > kNegInf) {
          const int cand = s + sc.substitution(a[i - 1], b[j - 1]);
          if (cand > v) {
            v = cand;
            dir = kDiag;
          }
        }
      }
      if (j >= jlo(i - 1) && j <= jhi(i - 1)) {
        const int s = score[cell(i - 1, j)];
        if (s > kNegInf) {
          const int cand = s + sc.gap;
          if (cand > v) {
            v = cand;
            dir = kUp;
          }
        }
      }
      if (j - 1 >= lo) {
        const int s = score[cell(i, j - 1)];
        if (s > kNegInf) {
          const int cand = s + sc.gap;
          if (cand > v) {
            v = cand;
            dir = kLeft;
          }
        }
      }
      if (dir == kStop) continue;  // unreachable within band
      score[c] = v;
      tb[c] = dir;
      consider_end(i, j, v);
    }
  }

  OverlapResult r;
  if (bi < 0) {
    r.aln.score = kNegInf;
    return r;
  }
  r.aln.score = best;
  std::int64_t i = bi, j = bj;
  r.aln.a_end = static_cast<std::uint32_t>(i);
  r.aln.b_end = static_cast<std::uint32_t>(j);
  std::vector<Op> rev;
  std::uint32_t matches = 0, columns = 0;
  while (tb[cell(i, j)] != kStop) {
    switch (tb[cell(i, j)]) {
      case kDiag: {
        --i;
        --j;
        const bool eq = seq::is_base(a[i]) && a[i] == b[j];
        rev.push_back(eq ? Op::kMatch : Op::kMismatch);
        matches += eq;
        ++columns;
        break;
      }
      case kUp:
        --i;
        rev.push_back(Op::kInsertA);
        ++columns;
        break;
      case kLeft:
        --j;
        rev.push_back(Op::kInsertB);
        ++columns;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
  }
  r.aln.a_begin = static_cast<std::uint32_t>(i);
  r.aln.b_begin = static_cast<std::uint32_t>(j);
  r.aln.matches = matches;
  r.aln.columns = columns;
  if (opts.keep_ops) r.aln.ops.assign(rev.rbegin(), rev.rend());
  r.type = classify(static_cast<std::uint32_t>(la),
                    static_cast<std::uint32_t>(lb), r.aln);
  return r;
}

bool accept_overlap(const OverlapResult& r, const OverlapParams& p) noexcept {
  if (r.type == OverlapType::kNone) return false;
  if (r.overlap_len() < p.min_overlap) return false;
  return r.aln.identity() >= p.min_identity;
}

OverlapResult test_overlap(Seq a, Seq b, std::int32_t shift,
                           const OverlapParams& p) {
  return banded_overlap_align(a, b, p.scoring, shift, p.band);
}

void validate_overlap_params(const OverlapParams& p, std::uint32_t psi) {
  if (p.band == 0) {
    throw std::invalid_argument(
        "overlap params: band must be > 0 (a zero-width band explores only "
        "one diagonal and rejects every gapped overlap)");
  }
  if (!(p.min_identity > 0.0) || p.min_identity > 1.0) {
    throw std::invalid_argument(
        "overlap params: min_identity must be in (0, 1], got " +
        std::to_string(p.min_identity));
  }
  if (p.min_overlap < psi) {
    throw std::invalid_argument(
        "overlap params: min_overlap (" + std::to_string(p.min_overlap) +
        ") must be >= psi (" + std::to_string(psi) +
        "); pairs are only generated from exact matches of length >= psi, "
        "so shorter overlaps can never be found and clusters would silently "
        "stay singletons");
  }
}

}  // namespace pgasm::align
