#include "align/overlap.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace pgasm::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
enum Tb : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

OverlapType classify(std::uint32_t la, std::uint32_t lb,
                     const AlignResult& r) {
  const bool a_full = r.a_begin == 0 && r.a_end == la;
  const bool b_full = r.b_begin == 0 && r.b_end == lb;
  if (a_full && b_full) {
    return la >= lb ? OverlapType::kContainsB : OverlapType::kContainedInB;
  }
  if (b_full) return OverlapType::kContainsB;
  if (a_full) return OverlapType::kContainedInB;
  if (r.a_end == la && r.b_begin == 0) return OverlapType::kDovetailAB;
  if (r.b_end == lb && r.a_begin == 0) return OverlapType::kDovetailBA;
  return OverlapType::kNone;
}

}  // namespace

const char* overlap_type_name(OverlapType t) noexcept {
  switch (t) {
    case OverlapType::kNone: return "none";
    case OverlapType::kDovetailAB: return "dovetail(a->b)";
    case OverlapType::kDovetailBA: return "dovetail(b->a)";
    case OverlapType::kContainsB: return "contains(b)";
    case OverlapType::kContainedInB: return "contained-in(b)";
  }
  return "?";
}

OverlapResult overlap_align(Seq a, Seq b, const Scoring& sc,
                            const AlignOptions& opts) {
  const std::size_t la = a.size(), lb = b.size();
  const std::size_t stride = lb + 1;
  std::vector<int> score((la + 1) * stride, 0);
  std::vector<std::uint8_t> tb((la + 1) * stride, kStop);

  // Row 0 and column 0 stay score 0 / kStop: free leading gaps.
  for (std::size_t i = 1; i <= la; ++i) {
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t c = i * stride + j;
      const int diag =
          score[c - stride - 1] + sc.substitution(a[i - 1], b[j - 1]);
      const int up = score[c - stride] + sc.gap;
      const int left = score[c - 1] + sc.gap;
      int best = diag;
      std::uint8_t dir = kDiag;
      if (up > best) {
        best = up;
        dir = kUp;
      }
      if (left > best) {
        best = left;
        dir = kLeft;
      }
      score[c] = best;
      tb[c] = dir;
    }
  }

  // Best end on the last row or last column (free trailing gaps).
  int best = kNegInf;
  std::size_t bi = la, bj = lb;
  for (std::size_t j = 0; j <= lb; ++j) {
    if (score[la * stride + j] > best) {
      best = score[la * stride + j];
      bi = la;
      bj = j;
    }
  }
  for (std::size_t i = 0; i <= la; ++i) {
    if (score[i * stride + lb] > best) {
      best = score[i * stride + lb];
      bi = i;
      bj = lb;
    }
  }

  OverlapResult r;
  r.aln.score = best;
  // Traceback.
  std::size_t i = bi, j = bj;
  r.aln.a_end = static_cast<std::uint32_t>(i);
  r.aln.b_end = static_cast<std::uint32_t>(j);
  std::vector<Op> rev;
  std::uint32_t matches = 0, columns = 0;
  while (tb[i * stride + j] != kStop) {
    switch (tb[i * stride + j]) {
      case kDiag: {
        --i;
        --j;
        const bool eq = seq::is_base(a[i]) && a[i] == b[j];
        rev.push_back(eq ? Op::kMatch : Op::kMismatch);
        matches += eq;
        ++columns;
        break;
      }
      case kUp:
        --i;
        rev.push_back(Op::kInsertA);
        ++columns;
        break;
      case kLeft:
        --j;
        rev.push_back(Op::kInsertB);
        ++columns;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
  }
  r.aln.a_begin = static_cast<std::uint32_t>(i);
  r.aln.b_begin = static_cast<std::uint32_t>(j);
  r.aln.matches = matches;
  r.aln.columns = columns;
  if (opts.keep_ops) r.aln.ops.assign(rev.rbegin(), rev.rend());
  r.type = classify(static_cast<std::uint32_t>(la),
                    static_cast<std::uint32_t>(lb), r.aln);
  return r;
}

OverlapResult banded_overlap_align(Seq a, Seq b, const Scoring& sc,
                                   std::int32_t shift, std::uint32_t band,
                                   const AlignOptions& opts) {
  const std::int64_t la = static_cast<std::int64_t>(a.size());
  const std::int64_t lb = static_cast<std::int64_t>(b.size());
  const std::int64_t B = static_cast<std::int64_t>(band);
  const std::size_t width = 2 * band + 1;

  // Band storage: row i holds columns j in [i+shift-B, i+shift+B];
  // band index c = j - (i + shift - B). Diag neighbor keeps c; up neighbor
  // is c+1 in the previous row; left neighbor is c-1 in the same row.
  thread_local std::vector<int> score;
  thread_local std::vector<std::uint8_t> tb;
  score.assign(static_cast<std::size_t>(la + 1) * width, kNegInf);
  tb.assign(static_cast<std::size_t>(la + 1) * width, kStop);

  auto jlo = [&](std::int64_t i) {
    return std::max<std::int64_t>(0, i + shift - B);
  };
  auto jhi = [&](std::int64_t i) {
    return std::min<std::int64_t>(lb, i + shift + B);
  };
  auto cell = [&](std::int64_t i, std::int64_t j) -> std::size_t {
    return static_cast<std::size_t>(i) * width +
           static_cast<std::size_t>(j - (i + shift - B));
  };

  int best = kNegInf;
  std::int64_t bi = -1, bj = -1;
  auto consider_end = [&](std::int64_t i, std::int64_t j, int v) {
    if ((i == la || j == lb) && v > best) {
      best = v;
      bi = i;
      bj = j;
    }
  };

  for (std::int64_t i = 0; i <= la; ++i) {
    const std::int64_t lo = jlo(i), hi = jhi(i);
    if (lo > hi) continue;
    for (std::int64_t j = lo; j <= hi; ++j) {
      const std::size_t c = cell(i, j);
      if (i == 0 || j == 0) {
        score[c] = 0;  // free leading gaps on both edges
        tb[c] = kStop;
        consider_end(i, j, 0);
        continue;
      }
      int v = kNegInf;
      std::uint8_t dir = kStop;
      // diag (i-1, j-1): in band iff j-1 within [jlo(i-1), jhi(i-1)].
      if (j - 1 >= jlo(i - 1) && j - 1 <= jhi(i - 1)) {
        const int s = score[cell(i - 1, j - 1)];
        if (s > kNegInf) {
          const int cand = s + sc.substitution(a[i - 1], b[j - 1]);
          if (cand > v) {
            v = cand;
            dir = kDiag;
          }
        }
      }
      if (j >= jlo(i - 1) && j <= jhi(i - 1)) {
        const int s = score[cell(i - 1, j)];
        if (s > kNegInf) {
          const int cand = s + sc.gap;
          if (cand > v) {
            v = cand;
            dir = kUp;
          }
        }
      }
      if (j - 1 >= lo) {
        const int s = score[cell(i, j - 1)];
        if (s > kNegInf) {
          const int cand = s + sc.gap;
          if (cand > v) {
            v = cand;
            dir = kLeft;
          }
        }
      }
      if (dir == kStop) continue;  // unreachable within band
      score[c] = v;
      tb[c] = dir;
      consider_end(i, j, v);
    }
  }

  OverlapResult r;
  if (bi < 0) {
    r.aln.score = kNegInf;
    return r;  // band never touched an end edge
  }
  r.aln.score = best;
  std::int64_t i = bi, j = bj;
  r.aln.a_end = static_cast<std::uint32_t>(i);
  r.aln.b_end = static_cast<std::uint32_t>(j);
  std::vector<Op> rev;
  std::uint32_t matches = 0, columns = 0;
  while (tb[cell(i, j)] != kStop) {
    switch (tb[cell(i, j)]) {
      case kDiag: {
        --i;
        --j;
        const bool eq = seq::is_base(a[i]) && a[i] == b[j];
        rev.push_back(eq ? Op::kMatch : Op::kMismatch);
        matches += eq;
        ++columns;
        break;
      }
      case kUp:
        --i;
        rev.push_back(Op::kInsertA);
        ++columns;
        break;
      case kLeft:
        --j;
        rev.push_back(Op::kInsertB);
        ++columns;
        break;
      default:
        throw std::logic_error("bad traceback");
    }
  }
  r.aln.a_begin = static_cast<std::uint32_t>(i);
  r.aln.b_begin = static_cast<std::uint32_t>(j);
  r.aln.matches = matches;
  r.aln.columns = columns;
  if (opts.keep_ops) r.aln.ops.assign(rev.rbegin(), rev.rend());
  r.type = classify(static_cast<std::uint32_t>(la),
                    static_cast<std::uint32_t>(lb), r.aln);
  return r;
}

bool accept_overlap(const OverlapResult& r, const OverlapParams& p) noexcept {
  if (r.type == OverlapType::kNone) return false;
  if (r.overlap_len() < p.min_overlap) return false;
  return r.aln.identity() >= p.min_identity;
}

OverlapResult test_overlap(Seq a, Seq b, std::int32_t shift,
                           const OverlapParams& p) {
  return banded_overlap_align(a, b, p.scoring, shift, p.band);
}

}  // namespace pgasm::align
