// DNA alphabet: 2-bit nucleotide codes plus a mask symbol.
//
// Codes 0..3 = A,C,G,T. Code 4 (kMask) marks masked or ambiguous positions;
// masked positions never match anything (including other masked positions),
// which is exactly the behaviour the paper relies on: "the matching portions
// are masked with special symbols such that our clustering method can treat
// them appropriately during overlap detection" (Section 8). Exact-match
// machinery (suffix tree) treats kMask as a hard break; alignment scoring
// treats it as a guaranteed mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pgasm::seq {

using Code = std::uint8_t;

inline constexpr Code kA = 0;
inline constexpr Code kC = 1;
inline constexpr Code kG = 2;
inline constexpr Code kT = 3;
inline constexpr Code kMask = 4;
inline constexpr int kSigma = 4;  ///< real alphabet size

/// Is this a real nucleotide (matchable) code?
constexpr bool is_base(Code c) noexcept { return c < kSigma; }

/// ASCII -> code. Uppercase ACGT map to 0..3; everything else (N, lowercase
/// soft-masked bases, IUPAC ambiguity codes) maps to kMask.
Code encode_char(char c) noexcept;

/// code -> ASCII ('A','C','G','T'; kMask -> 'N').
char decode_char(Code c) noexcept;

/// Complement of a base; kMask stays kMask.
constexpr Code complement(Code c) noexcept {
  return is_base(c) ? static_cast<Code>(3 - c) : c;
}

/// Encode an ASCII DNA string.
std::vector<Code> encode(std::string_view ascii);

/// Decode a code sequence to ASCII.
std::string decode(const std::vector<Code>& codes);
std::string decode(const Code* codes, std::size_t n);

/// Reverse complement, an involution: revcomp(revcomp(x)) == x.
std::vector<Code> reverse_complement(const Code* codes, std::size_t n);
std::vector<Code> reverse_complement(const std::vector<Code>& codes);

}  // namespace pgasm::seq
