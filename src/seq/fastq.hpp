// FASTQ input/output (Phred+33 qualities). The preprocessing stage's
// quality trimming (paper: Lucy) needs per-base qualities; FASTQ is how
// real trace data carries them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "seq/fragment_store.hpp"

namespace pgasm::seq {

struct FastqReadOptions {
  FragType default_type = FragType::kUnknown;
  /// Clamp qualities into [0, 60] (Sanger range) on read.
  std::uint8_t max_quality = 60;
};

/// Append all records from a FASTQ stream/file. Returns the record count.
/// Throws on malformed input (missing '+', length mismatch, truncation).
std::size_t read_fastq(std::istream& in, FragmentStore& store,
                       const FastqReadOptions& opts = {});
std::size_t read_fastq_file(const std::string& path, FragmentStore& store,
                            const FastqReadOptions& opts = {});

/// Write the store as FASTQ. Stores without qualities emit a constant
/// quality (`default_quality`).
struct FastqWriteOptions {
  std::uint8_t default_quality = 40;
};
void write_fastq(std::ostream& out, const FragmentStore& store,
                 const FastqWriteOptions& opts = {});
void write_fastq_file(const std::string& path, const FragmentStore& store,
                      const FastqWriteOptions& opts = {});

}  // namespace pgasm::seq
