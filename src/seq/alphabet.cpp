#include "seq/alphabet.hpp"

#include <array>

namespace pgasm::seq {

namespace {
constexpr std::array<Code, 256> make_encode_table() {
  std::array<Code, 256> t{};
  for (auto& v : t) v = kMask;
  t[static_cast<unsigned char>('A')] = kA;
  t[static_cast<unsigned char>('C')] = kC;
  t[static_cast<unsigned char>('G')] = kG;
  t[static_cast<unsigned char>('T')] = kT;
  return t;
}
constexpr auto kEncodeTable = make_encode_table();
constexpr char kDecodeTable[5] = {'A', 'C', 'G', 'T', 'N'};
}  // namespace

Code encode_char(char c) noexcept {
  return kEncodeTable[static_cast<unsigned char>(c)];
}

char decode_char(Code c) noexcept { return kDecodeTable[c <= kMask ? c : kMask]; }

std::vector<Code> encode(std::string_view ascii) {
  std::vector<Code> out(ascii.size());
  for (std::size_t i = 0; i < ascii.size(); ++i) out[i] = encode_char(ascii[i]);
  return out;
}

std::string decode(const Code* codes, std::size_t n) {
  std::string out(n, '?');
  for (std::size_t i = 0; i < n; ++i) out[i] = decode_char(codes[i]);
  return out;
}

std::string decode(const std::vector<Code>& codes) {
  return decode(codes.data(), codes.size());
}

std::vector<Code> reverse_complement(const Code* codes, std::size_t n) {
  std::vector<Code> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = complement(codes[n - 1 - i]);
  return out;
}

std::vector<Code> reverse_complement(const std::vector<Code>& codes) {
  return reverse_complement(codes.data(), codes.size());
}

}  // namespace pgasm::seq
