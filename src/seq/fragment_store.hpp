// FragmentStore: the fragment collection every stage operates on.
//
// Sequences are stored as one concatenated code array with an offset table,
// mirroring the paper's space discipline (O(N) total characters; per-fragment
// overhead is a few words). Optional parallel arrays hold per-base quality
// values (used by preprocessing) and a fragment type tag (MF / HC / BAC /
// WGS / ENV) used in the Table 2 style reporting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.hpp"

namespace pgasm::seq {

using FragmentId = std::uint32_t;

/// Sequencing strategy that produced a fragment (paper Table 2).
enum class FragType : std::uint8_t {
  kWGS = 0,   ///< whole genome shotgun
  kMF = 1,    ///< methyl-filtrated (gene enriched)
  kHC = 2,    ///< High-C0t (gene enriched)
  kBAC = 3,   ///< BAC-derived (ends + internal sub-reads)
  kEnv = 4,   ///< environmental / metagenomic
  kUnknown = 5,
};

const char* frag_type_name(FragType t) noexcept;

class FragmentStore {
 public:
  FragmentStore() = default;

  /// Append a fragment; returns its id. Quality may be empty (no qualities).
  FragmentId add(std::span<const Code> codes, FragType type = FragType::kUnknown,
                 std::string name = {}, std::span<const std::uint8_t> qual = {});
  FragmentId add_ascii(std::string_view dna, FragType type = FragType::kUnknown,
                       std::string name = {});

  std::size_t size() const noexcept { return offsets_.size(); }
  bool empty() const noexcept { return offsets_.empty(); }

  /// Total number of characters across all fragments (the paper's N).
  std::uint64_t total_length() const noexcept { return text_.size(); }

  std::uint32_t length(FragmentId id) const noexcept {
    return lengths_[id];
  }

  std::span<const Code> seq(FragmentId id) const noexcept {
    return {text_.data() + offsets_[id], lengths_[id]};
  }

  /// Mutable view (preprocessing masks in place on a cloned store).
  std::span<Code> mutable_seq(FragmentId id) noexcept {
    return {text_.data() + offsets_[id], lengths_[id]};
  }

  FragType type(FragmentId id) const noexcept { return types_[id]; }
  const std::string& name(FragmentId id) const noexcept { return names_[id]; }

  bool has_quality() const noexcept { return !qual_.empty(); }
  std::span<const std::uint8_t> quality(FragmentId id) const noexcept {
    if (qual_.empty()) return {};
    return {qual_.data() + offsets_[id], lengths_[id]};
  }

  std::string to_ascii(FragmentId id) const;

  /// Mask positions [begin, end) of fragment id (set to kMask).
  void mask(FragmentId id, std::uint32_t begin, std::uint32_t end);

  /// Fraction of fragment id's positions currently masked.
  double masked_fraction(FragmentId id) const noexcept;

  /// Count of unmasked characters across all fragments.
  std::uint64_t unmasked_length() const noexcept;

  std::uint32_t max_length() const noexcept { return max_length_; }

  void reserve(std::size_t fragments, std::uint64_t chars);

  /// Sum of lengths of fragments of the given type.
  std::uint64_t total_length_of_type(FragType t) const noexcept;
  std::size_t count_of_type(FragType t) const noexcept;

 private:
  std::vector<Code> text_;
  std::vector<std::uint8_t> qual_;  // empty, or parallel to text_
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> lengths_;
  std::vector<FragType> types_;
  std::vector<std::string> names_;
  std::uint32_t max_length_ = 0;
};

/// Input view for the suffix-tree / pair-generation machinery. The paper
/// builds the GST on all fragments *and their reverse complements* (Section
/// 5); this helper materializes that doubled collection: sequence 2*i is
/// fragment i forward, 2*i+1 is its reverse complement.
struct DoubledView {
  /// id in the doubled space -> underlying fragment.
  static FragmentId fragment_of(std::uint32_t doubled_id) noexcept {
    return doubled_id >> 1;
  }
  /// true if the doubled id refers to the reverse-complement strand.
  static bool is_rc(std::uint32_t doubled_id) noexcept {
    return (doubled_id & 1u) != 0;
  }
  static std::uint32_t forward_id(FragmentId f) noexcept { return f << 1; }
  static std::uint32_t rc_id(FragmentId f) noexcept { return (f << 1) | 1u; }
};

/// Materialize the doubled store (forward + reverse complement per fragment).
FragmentStore make_doubled_store(const FragmentStore& in);

}  // namespace pgasm::seq
