// FASTA input/output for FragmentStore.
//
// Reading maps uppercase ACGT to bases and everything else (N, IUPAC codes,
// lowercase soft-masked characters) to the mask symbol. Writing emits 'N'
// for masked positions and wraps lines at a configurable width.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "seq/fragment_store.hpp"

namespace pgasm::seq {

struct FastaReadOptions {
  FragType default_type = FragType::kUnknown;
  /// If true, a type token in the header (e.g. ">frag1 type=MF") overrides
  /// default_type.
  bool parse_type_token = true;
};

/// Append all records from a FASTA stream/file into `store`.
/// Returns the number of records read. Throws on malformed input.
std::size_t read_fasta(std::istream& in, FragmentStore& store,
                       const FastaReadOptions& opts = {});
std::size_t read_fasta_file(const std::string& path, FragmentStore& store,
                            const FastaReadOptions& opts = {});

struct FastaWriteOptions {
  std::size_t line_width = 70;
  bool emit_type_token = false;
};

void write_fasta(std::ostream& out, const FragmentStore& store,
                 const FastaWriteOptions& opts = {});
void write_fasta_file(const std::string& path, const FragmentStore& store,
                      const FastaWriteOptions& opts = {});

}  // namespace pgasm::seq
