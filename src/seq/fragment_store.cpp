#include "seq/fragment_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace pgasm::seq {

const char* frag_type_name(FragType t) noexcept {
  switch (t) {
    case FragType::kWGS: return "WGS";
    case FragType::kMF: return "MF";
    case FragType::kHC: return "HC";
    case FragType::kBAC: return "BAC";
    case FragType::kEnv: return "ENV";
    case FragType::kUnknown: return "?";
  }
  return "?";
}

FragmentId FragmentStore::add(std::span<const Code> codes, FragType type,
                              std::string name,
                              std::span<const std::uint8_t> qual) {
  if (!qual.empty() && qual.size() != codes.size())
    throw std::invalid_argument("FragmentStore::add: quality length mismatch");
  if (!qual_.empty() && qual.empty())
    throw std::invalid_argument(
        "FragmentStore::add: store has qualities, fragment does not");
  if (qual_.empty() && !qual.empty() && !offsets_.empty())
    throw std::invalid_argument(
        "FragmentStore::add: store has no qualities, fragment does");

  const auto id = static_cast<FragmentId>(offsets_.size());
  offsets_.push_back(text_.size());
  lengths_.push_back(static_cast<std::uint32_t>(codes.size()));
  types_.push_back(type);
  names_.push_back(std::move(name));
  text_.insert(text_.end(), codes.begin(), codes.end());
  if (!qual.empty()) qual_.insert(qual_.end(), qual.begin(), qual.end());
  max_length_ = std::max(max_length_, static_cast<std::uint32_t>(codes.size()));
  return id;
}

FragmentId FragmentStore::add_ascii(std::string_view dna, FragType type,
                                    std::string name) {
  const auto codes = encode(dna);
  return add(codes, type, std::move(name));
}

std::string FragmentStore::to_ascii(FragmentId id) const {
  const auto s = seq(id);
  return decode(s.data(), s.size());
}

void FragmentStore::mask(FragmentId id, std::uint32_t begin,
                         std::uint32_t end) {
  end = std::min(end, lengths_[id]);
  auto s = mutable_seq(id);
  for (std::uint32_t i = begin; i < end; ++i) s[i] = kMask;
}

double FragmentStore::masked_fraction(FragmentId id) const noexcept {
  const auto s = seq(id);
  if (s.empty()) return 0.0;
  std::size_t masked = 0;
  for (Code c : s) masked += !is_base(c);
  return static_cast<double>(masked) / static_cast<double>(s.size());
}

std::uint64_t FragmentStore::unmasked_length() const noexcept {
  std::uint64_t n = 0;
  for (Code c : text_) n += is_base(c);
  return n;
}

void FragmentStore::reserve(std::size_t fragments, std::uint64_t chars) {
  offsets_.reserve(fragments);
  lengths_.reserve(fragments);
  types_.reserve(fragments);
  names_.reserve(fragments);
  text_.reserve(chars);
}

std::uint64_t FragmentStore::total_length_of_type(FragType t) const noexcept {
  std::uint64_t sum = 0;
  for (FragmentId i = 0; i < size(); ++i)
    if (types_[i] == t) sum += lengths_[i];
  return sum;
}

std::size_t FragmentStore::count_of_type(FragType t) const noexcept {
  std::size_t n = 0;
  for (FragType ft : types_) n += (ft == t);
  return n;
}

FragmentStore make_doubled_store(const FragmentStore& in) {
  FragmentStore out;
  out.reserve(in.size() * 2, in.total_length() * 2);
  for (FragmentId i = 0; i < in.size(); ++i) {
    const auto fwd = in.seq(i);
    out.add(fwd, in.type(i));
    const auto rc = reverse_complement(fwd.data(), fwd.size());
    out.add(rc, in.type(i));
  }
  return out;
}

}  // namespace pgasm::seq
