#include "seq/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pgasm::seq {

namespace {

FragType parse_type(const std::string& header, FragType fallback) {
  const auto pos = header.find("type=");
  if (pos == std::string::npos) return fallback;
  const std::string tok = header.substr(pos + 5, 3);
  if (tok.rfind("WGS", 0) == 0) return FragType::kWGS;
  if (tok.rfind("MF", 0) == 0) return FragType::kMF;
  if (tok.rfind("HC", 0) == 0) return FragType::kHC;
  if (tok.rfind("BAC", 0) == 0) return FragType::kBAC;
  if (tok.rfind("ENV", 0) == 0) return FragType::kEnv;
  return fallback;
}

std::string first_token(const std::string& header) {
  const auto ws = header.find_first_of(" \t");
  return ws == std::string::npos ? header : header.substr(0, ws);
}

}  // namespace

std::size_t read_fasta(std::istream& in, FragmentStore& store,
                       const FastaReadOptions& opts) {
  std::string line;
  std::string header;
  std::vector<Code> codes;
  std::size_t count = 0;
  bool have_record = false;

  auto flush = [&]() {
    if (!have_record) return;
    const FragType t = opts.parse_type_token
                           ? parse_type(header, opts.default_type)
                           : opts.default_type;
    store.add(codes, t, first_token(header));
    codes.clear();
    ++count;
  };

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      header = line.substr(1);
      have_record = true;
    } else {
      if (!have_record)
        throw std::runtime_error("FASTA: sequence data before first header");
      for (char c : line) codes.push_back(encode_char(c));
    }
  }
  flush();
  return count;
}

std::size_t read_fasta_file(const std::string& path, FragmentStore& store,
                            const FastaReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in, store, opts);
}

void write_fasta(std::ostream& out, const FragmentStore& store,
                 const FastaWriteOptions& opts) {
  for (FragmentId i = 0; i < store.size(); ++i) {
    out << '>';
    if (store.name(i).empty())
      out << "frag" << i;
    else
      out << store.name(i);
    if (opts.emit_type_token) out << " type=" << frag_type_name(store.type(i));
    out << '\n';
    const std::string ascii = store.to_ascii(i);
    for (std::size_t pos = 0; pos < ascii.size(); pos += opts.line_width) {
      out << ascii.substr(pos, opts.line_width) << '\n';
    }
    if (ascii.empty()) out << '\n';
  }
}

void write_fasta_file(const std::string& path, const FragmentStore& store,
                      const FastaWriteOptions& opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_fasta(out, store, opts);
}

}  // namespace pgasm::seq
