#include "seq/fastq.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace pgasm::seq {

std::size_t read_fastq(std::istream& in, FragmentStore& store,
                       const FastqReadOptions& opts) {
  std::string header, bases, plus, quals;
  std::size_t count = 0;
  auto chomp = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  while (std::getline(in, header)) {
    chomp(header);
    if (header.empty()) continue;
    if (header[0] != '@')
      throw std::runtime_error("FASTQ: record must start with '@'");
    if (!std::getline(in, bases))
      throw std::runtime_error("FASTQ: truncated record (no sequence)");
    if (!std::getline(in, plus) || plus.empty() || plus[0] != '+')
      throw std::runtime_error("FASTQ: missing '+' separator");
    if (!std::getline(in, quals))
      throw std::runtime_error("FASTQ: truncated record (no qualities)");
    chomp(bases);
    chomp(quals);
    if (bases.size() != quals.size())
      throw std::runtime_error("FASTQ: sequence/quality length mismatch");
    std::vector<Code> codes(bases.size());
    std::vector<std::uint8_t> q(quals.size());
    for (std::size_t i = 0; i < bases.size(); ++i) {
      codes[i] = encode_char(bases[i]);
      const int phred = quals[i] - 33;
      if (phred < 0) throw std::runtime_error("FASTQ: bad quality char");
      q[i] = static_cast<std::uint8_t>(
          std::min<int>(phred, opts.max_quality));
    }
    const auto ws = header.find_first_of(" \t");
    store.add(codes, opts.default_type,
              header.substr(1, ws == std::string::npos ? std::string::npos
                                                       : ws - 1),
              q);
    ++count;
  }
  return count;
}

std::size_t read_fastq_file(const std::string& path, FragmentStore& store,
                            const FastqReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTQ file: " + path);
  return read_fastq(in, store, opts);
}

void write_fastq(std::ostream& out, const FragmentStore& store,
                 const FastqWriteOptions& opts) {
  for (FragmentId i = 0; i < store.size(); ++i) {
    out << '@';
    if (store.name(i).empty())
      out << "frag" << i;
    else
      out << store.name(i);
    out << '\n' << store.to_ascii(i) << "\n+\n";
    const auto q = store.quality(i);
    if (q.empty()) {
      out << std::string(store.length(i),
                         static_cast<char>(33 + opts.default_quality));
    } else {
      for (auto v : q) out << static_cast<char>(33 + v);
    }
    out << '\n';
  }
}

void write_fastq_file(const std::string& path, const FragmentStore& store,
                      const FastqWriteOptions& opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_fastq(out, store, opts);
}

}  // namespace pgasm::seq
