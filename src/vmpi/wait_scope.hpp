// Wait-span instrumentation shared by the transport-facing comm layer.
//
// These helpers record vmpi trace events (instants and blocked-time spans)
// on a rank's obs ring. They live in vmpi::detail because both halves of
// the runtime need them: Comm's protocol paths (recv/probe/barrier, the
// ssend rendezvous) and the transports' run drivers (the "join" span over
// thread joins / child waitpids).
#pragma once

#include <cstdint>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgasm::vmpi::detail {

/// Record an instant event on a cached ring (caller checked ring != null).
void ring_instant(obs::RankRing* ring, int rank, const char* name,
                  const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
                  const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                  const char* arg2_name = nullptr, std::uint64_t arg2 = 0);

/// RAII wait-span recorder for the blocking paths (recv/probe/barrier and
/// the ssend rendezvous). Records a span covering entry-to-exit — including
/// exits by TimeoutError, so timed-out waits still land in the blocked-time
/// ledger — and feeds the duration into the comm.wait_us histogram. Inert
/// when the ring is null (tracing off). Recording takes only the leaf ring
/// mutex, so finishing while a mailbox mutex is held is safe.
class WaitScope {
 public:
  WaitScope(obs::RankRing* ring, obs::Histogram* wait_us, int rank,
            const char* name)
      : ring_(ring),
        wait_us_(wait_us),
        rank_(rank),
        name_(name),
        t0_us_(ring != nullptr ? obs::tracer().now_us() : 0) {}
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;
  ~WaitScope() { finish(); }

  void arg(const char* name, std::uint64_t value) noexcept {
    for (auto& slot : args_) {
      if (slot.first == nullptr) {
        slot = {name, value};
        return;
      }
    }
  }

  void finish() noexcept {
    if (ring_ == nullptr) return;
    const std::uint64_t t1 = obs::tracer().now_us();
    obs::TraceEvent ev;
    ev.name = name_;
    ev.cat = "vmpi";
    ev.kind = obs::TraceEvent::Kind::kSpan;
    ev.rank = rank_;
    ev.ts_us = t0_us_;
    ev.dur_us = t1 > t0_us_ ? t1 - t0_us_ : 0;
    ev.arg0_name = args_[0].first;
    ev.arg0 = args_[0].second;
    ev.arg1_name = args_[1].first;
    ev.arg1 = args_[1].second;
    ev.arg2_name = args_[2].first;
    ev.arg2 = args_[2].second;
    ring_->record(ev);
    if (wait_us_ != nullptr) wait_us_->observe(ev.dur_us);
    ring_ = nullptr;
  }

 private:
  obs::RankRing* ring_;
  obs::Histogram* wait_us_;
  int rank_;
  const char* name_;
  std::uint64_t t0_us_;
  std::pair<const char*, std::uint64_t> args_[3] = {
      {nullptr, 0}, {nullptr, 0}, {nullptr, 0}};
};

}  // namespace pgasm::vmpi::detail
