#include "vmpi/proc_transport.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <new>
#include <thread>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "vmpi/ring_core.hpp"
#include "vmpi/runtime.hpp"
#include "vmpi/wait_scope.hpp"

namespace pgasm::vmpi {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

/// Brief pause inside a polling loop: stay hot for a few iterations (the
/// common case is a peer actively producing), then nap so idle waits do not
/// burn a core per rank.
void poll_nap(int& idle) {
  if (++idle < 64) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
}

}  // namespace

ProcTransport::ProcTransport(int num_ranks, std::size_t ring_bytes)
    : num_ranks_(num_ranks),
      ring_bytes_(align_up(std::max<std::size_t>(ring_bytes, 4096))),
      assembly_(static_cast<std::size_t>(num_ranks)) {
  const std::size_t p = static_cast<std::size_t>(num_ranks);
  const std::size_t control_off = 0;
  const std::size_t dead_off = align_up(control_off + sizeof(detail::ShmControl));
  const std::size_t done_off = dead_off + p * sizeof(detail::ShmFlag);
  const std::size_t acks_off = done_off + p * sizeof(detail::ShmFlag);
  const std::size_t rings_off = acks_off + p * p * sizeof(detail::ShmAckSlot);
  const std::size_t ring_stride = sizeof(detail::RingHdr) + ring_bytes_;
  region_size_ = rings_off + p * p * ring_stride;

  // Anonymous MAP_SHARED: the one mapping every rank process inherits over
  // fork. Pages are allocated lazily, so a large p with mostly-idle rings
  // costs address space, not memory.
  region_ = ::mmap(nullptr, region_size_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (region_ == MAP_FAILED) {
    region_ = nullptr;
    throw std::runtime_error("proc transport: mmap of " +
                             std::to_string(region_size_) + " bytes failed");
  }
  auto* base = static_cast<std::byte*>(region_);
  control_ = new (base + control_off) detail::ShmControl();
  dead_ = reinterpret_cast<detail::ShmFlag*>(base + dead_off);
  done_ = reinterpret_cast<detail::ShmFlag*>(base + done_off);
  acks_ = reinterpret_cast<detail::ShmAckSlot*>(base + acks_off);
  rings_ = base + rings_off;
  for (std::size_t i = 0; i < p; ++i) {
    new (dead_ + i) detail::ShmFlag();
    new (done_ + i) detail::ShmFlag();
  }
  for (std::size_t i = 0; i < p * p; ++i) {
    new (acks_ + i) detail::ShmAckSlot();
    new (rings_ + i * ring_stride) detail::RingHdr();
  }
}

ProcTransport::~ProcTransport() {
  if (region_ != nullptr) ::munmap(region_, region_size_);
}

detail::RingHdr* ProcTransport::ring_hdr(int src, int dst) const noexcept {
  const std::size_t ring_stride = sizeof(detail::RingHdr) + ring_bytes_;
  const std::size_t idx = static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_ranks_) +
                          static_cast<std::size_t>(dst);
  return reinterpret_cast<detail::RingHdr*>(rings_ + idx * ring_stride);
}

std::byte* ProcTransport::ring_buf(int src, int dst) const noexcept {
  return reinterpret_cast<std::byte*>(ring_hdr(src, dst)) +
         sizeof(detail::RingHdr);
}

void ProcTransport::mark_dead(int rank) {
  // exchange, not store: death can be reported twice (a child marking
  // itself on KilledError and the parent's reaper observing its exit), and
  // ranks_failed must count each rank once.
  if (dead_[rank].v.exchange(1, std::memory_order_acq_rel) == 0) {
    control_->counters.ranks_failed.fetch_add(1, std::memory_order_relaxed);
  }
}

void ProcTransport::mark_done(int rank) {
  // Release: everything this rank wrote into its outbound rings happens-
  // before any peer observing done, so a receiver that saw done and then
  // drained cannot have missed a message.
  done_[rank].v.store(1, std::memory_order_release);
}

void ProcTransport::abort_all() {
  control_->aborted.store(1, std::memory_order_release);
}

bool ProcTransport::claim_first_error(int rank) noexcept {
  std::int32_t expected = -1;
  return control_->first_error_rank.compare_exchange_strong(
      expected, rank, std::memory_order_acq_rel);
}

void ProcTransport::drain_inbound(int self) {
  StdRingFacade ring;
  for (int s = 0; s < num_ranks_; ++s) {
    detail::RingHdr* hdr = ring_hdr(s, self);
    const std::byte* buf = ring_buf(s, self);
    Assembly& as = assembly_[static_cast<std::size_t>(s)];
    for (;;) {
      // Complete any fully-assembled piece before popping more: this also
      // finishes zero-length payloads, which consume no ring bytes.
      if (as.in_payload && as.have == as.hdr.payload_len) {
        detail::Message m;
        m.source = static_cast<int>(as.hdr.source);
        m.tag = as.hdr.tag;
        m.internal = as.hdr.internal != 0;
        m.send_idx = as.hdr.send_idx;
        m.sync = as.hdr.sync != 0;
        m.payload = std::move(as.payload);
        pending_.push_back(std::move(m));
        as = Assembly{};
      }
      if (!as.in_payload && as.have == sizeof(detail::FrameHdr)) {
        as.in_payload = true;
        as.have = 0;
        as.payload.resize(static_cast<std::size_t>(as.hdr.payload_len));
        continue;
      }
      std::size_t want;
      std::byte* dst;
      if (!as.in_payload) {
        want = sizeof(detail::FrameHdr) - as.have;
        dst = reinterpret_cast<std::byte*>(&as.hdr) + as.have;
      } else {
        want = static_cast<std::size_t>(as.hdr.payload_len) - as.have;
        dst = as.payload.data() + as.have;
      }
      // The pop core (vmpi/ring_core.hpp) owns the cursor discipline:
      // acquire the producer-owned tail, advance the consumer-owned head
      // with a release store once the bytes are copied out.
      const std::size_t chunk = StdRing::try_pop(
          ring, hdr->head, hdr->tail, buf, ring_bytes_, dst, want);
      if (chunk == 0) break;
      as.have += chunk;
    }
  }
}

bool ProcTransport::write_stream(int self, int dest, const void* data,
                                 std::size_t n) {
  detail::RingHdr* hdr = ring_hdr(self, dest);
  std::byte* buf = ring_buf(self, dest);
  const auto* src = static_cast<const std::byte*>(data);
  StdRingFacade ring;
  std::size_t written = 0;
  int idle = 0;
  while (written < n) {
    // The push core (vmpi/ring_core.hpp) owns the cursor discipline:
    // acquire the consumer-owned head, advance the producer-owned tail with
    // a release store only after the bytes are fully in place — a consumer
    // can never observe a torn chunk, even if we are SIGKILLed right here.
    const std::size_t chunk = StdRing::try_push(
        ring, hdr->head, hdr->tail, buf, ring_bytes_, src + written,
        n - written);
    if (chunk == 0) {
      // Unlike the unbounded thread mailboxes, a bounded ring can block a
      // producer. Abandon the stream when the consumer can never drain it
      // (dead/finished — nothing reads that ring again, a torn frame is
      // unobservable), bail on abort, and keep draining our own inbound
      // rings so producer-producer cycles cannot deadlock.
      if (is_dead(dest) || is_done(dest)) return false;
      if (is_aborted()) throw AbortError("vmpi aborted");
      drain_inbound(self);
      poll_nap(idle);
      continue;
    }
    written += chunk;
    idle = 0;
  }
  return true;
}

void ProcTransport::deliver(int self, int dest, detail::Message&& msg,
                            bool sync) {
  detail::FrameHdr fh;
  fh.payload_len = msg.payload.size();
  fh.tag = msg.tag;
  fh.send_idx = msg.send_idx;
  fh.source = static_cast<std::uint32_t>(self);
  fh.internal = msg.internal ? 1 : 0;
  fh.sync = sync ? 1 : 0;
  if (!write_stream(self, dest, &fh, sizeof(fh)) ||
      !write_stream(self, dest, msg.payload.data(), msg.payload.size())) {
    // Destination died or finished mid-stream: the message was never fully
    // enqueued. Mirrors the thread transport's dead-before-push race, which
    // is the one post-preflight path that counts sends_to_dead.
    if (sync && is_dead(dest))
      counters().sends_to_dead.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!sync) return;
  // ssend rendezvous: poll the ack slot until the destination consumes the
  // message. A destination that died or finished after fully receiving the
  // frame completes the send silently, exactly like the thread transport's
  // consumed-flag flip in mark_dead/mark_done.
  std::atomic<std::uint64_t>& slot =
      acks_[static_cast<std::size_t>(self) *
                static_cast<std::size_t>(num_ranks_) +
            static_cast<std::size_t>(dest)]
          .v;
  const std::uint64_t idx = msg.send_idx;
  int idle = 0;
  for (;;) {
    if (slot.load(std::memory_order_acquire) >= idx) return;
    if (is_dead(dest) || is_done(dest)) return;
    if (is_aborted()) throw AbortError("vmpi aborted during ssend");
    // Keep draining: a peer blocked writing into our full inbound ring may
    // be the very rank that must progress to consume this message.
    drain_inbound(self);
    poll_nap(idle);
  }
}

Transport::Wait ProcTransport::recv(
    int self, int source, std::int64_t tag, bool internal,
    const std::chrono::steady_clock::time_point* deadline,
    detail::Message* out) {
  const bool specific = source != kAnySource && source != self;
  int idle = 0;
  for (;;) {
    // Liveness read BEFORE the drain: mark_done is a release after the
    // rank's last write, so "gone, and drained after seeing gone, and still
    // no match" proves no message is coming. (A dead source's mid-stream
    // frame stays incomplete in the assembly buffer and is never surfaced.)
    const bool gone =
        specific && (is_dead(source) || is_done(source));
    if (is_aborted()) throw AbortError("vmpi aborted");
    drain_inbound(self);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (!detail::matches(*it, source, tag, internal)) continue;
      if (it->sync) {
        // Consume-time acknowledgement: the sender's send_idx is strictly
        // increasing and it has at most one sync send outstanding, so a
        // plain store is monotonic.
        acks_[static_cast<std::size_t>(it->source) *
                  static_cast<std::size_t>(num_ranks_) +
              static_cast<std::size_t>(self)]
            .v.store(it->send_idx, std::memory_order_release);
      }
      *out = std::move(*it);
      pending_.erase(it);
      return Wait::kMessage;
    }
    if (gone) return Wait::kPeerGone;
    if (deadline && std::chrono::steady_clock::now() >= *deadline) {
      return Wait::kTimeout;
    }
    poll_nap(idle);
  }
}

Transport::Wait ProcTransport::probe(
    int self, int source, std::int64_t tag,
    const std::chrono::steady_clock::time_point* deadline, ProbeResult* out) {
  const bool specific = source != kAnySource && source != self;
  int idle = 0;
  for (;;) {
    const bool gone =
        specific && (is_dead(source) || is_done(source));
    if (is_aborted()) throw AbortError("vmpi aborted");
    drain_inbound(self);
    for (const auto& m : pending_) {
      if (!detail::matches(m, source, tag, /*internal=*/false)) continue;
      out->source = m.source;
      out->tag = m.tag;
      out->bytes = m.payload.size();
      out->send_idx = m.send_idx;
      return Wait::kMessage;
    }
    if (gone) return Wait::kPeerGone;
    if (deadline && std::chrono::steady_clock::now() >= *deadline) {
      return Wait::kTimeout;
    }
    poll_nap(idle);
  }
}

bool ProcTransport::iprobe(int self, int source, std::int64_t tag,
                           ProbeResult* out) {
  if (is_aborted()) throw AbortError("vmpi aborted");
  drain_inbound(self);
  for (const auto& m : pending_) {
    if (!detail::matches(m, source, tag, /*internal=*/false)) continue;
    if (out != nullptr) {
      out->source = m.source;
      out->tag = m.tag;
      out->bytes = m.payload.size();
      out->send_idx = m.send_idx;
    }
    return true;
  }
  return false;
}

void ProcTransport::crash_self(int self, const std::string& why) {
  if (self == 0) {
    // Rank 0 lives on the parent's thread; killing it would take down the
    // whole run, so it dies the thread-transport way.
    throw KilledError(why);
  }
  // A real machine-style failure: no unwinding, no flushes, no exit blob.
  // The parent's reaper observes WIFSIGNALED and marks the rank dead.
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();  // unreachable
}

// --------------------------------------------------------------------------
// Exit blobs: everything a child rank ships back to the parent — its cost
// ledger, stash, error (if any), and its obs state as *deltas* against a
// baseline captured right after fork (the child inherited the parent's
// rings and registry, so shipping absolutes would double count).

namespace {

constexpr std::uint32_t kBlobMagic = 0x42565047;  // "PGVB"
constexpr std::uint32_t kBlobVersion = 1;
constexpr std::uint32_t kNoString = 0xffffffff;

enum class ExitKind : std::uint8_t {
  kOk = 0,
  kError = 1,    ///< body threw (message preserved)
  kTimeout = 2,  ///< body threw TimeoutError
  kAbort = 3,    ///< body saw the run abort
  kKilled = 4,   ///< body threw KilledError (simulated crash, unwound)
};

void put_u8(std::string& b, std::uint8_t v) {
  b.push_back(static_cast<char>(v));
}
void put_u32(std::string& b, std::uint32_t v) {
  b.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_u64(std::string& b, std::uint64_t v) {
  b.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_f64(std::string& b, double v) {
  b.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_str(std::string& b, std::string_view s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.append(s.data(), s.size());
}

/// Bounds-checked reader over a blob's bytes. Any overrun latches ok=false
/// and zero-fills, so a truncated blob degrades to "rank shipped nothing"
/// rather than UB.
struct BlobReader {
  const std::string& b;
  std::size_t off = 0;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || b.size() - off < n) {
      ok = false;
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, b.data() + off, n);
    off += n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    take(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v;
    take(&v, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || b.size() - off < n) {
      ok = false;
      return {};
    }
    std::string s(b.data() + off, n);
    off += n;
    return s;
  }
};

std::string blob_path(const std::string& dir, int rank) {
  return dir + "/rank_" + std::to_string(rank) + ".blob";
}

/// Obs state at fork time, captured in the child before running the body.
struct ObsBaseline {
  std::map<int, std::uint64_t> ring_seq;      ///< next seq per existing ring
  std::map<int, std::uint64_t> ring_dropped;
  std::vector<obs::MetricSample> metrics;
};

ObsBaseline capture_obs_baseline() {
  ObsBaseline base;
  if (obs::tracer().enabled()) {
    for (const auto& [rank, dropped] : obs::tracer().dropped_by_rank()) {
      base.ring_seq[rank] = obs::tracer().ring(rank)->peek_seq();
      base.ring_dropped[rank] = dropped;
    }
  }
  base.metrics = obs::registry().snapshot();
  return base;
}

/// Index of a string in the blob's string table, interning on first use.
std::uint32_t strtab_index(std::map<std::string, std::uint32_t>& table,
                           std::vector<std::string>& order, const char* s) {
  if (s == nullptr) return kNoString;
  auto it = table.find(s);
  if (it != table.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(order.size());
  table.emplace(s, idx);
  order.emplace_back(s);
  return idx;
}

void append_trace_section(std::string& b, const ObsBaseline& base) {
  if (!obs::tracer().enabled()) {
    put_u8(b, 0);
    return;
  }
  put_u8(b, 1);
  std::map<std::string, std::uint32_t> table;
  std::vector<std::string> order;
  std::uint32_t ring_count = 0;
  std::string rings;
  const auto dropped_now = obs::tracer().dropped_by_rank();
  for (const auto& [rank, evs] : obs::tracer().drain_all()) {
    std::uint64_t first_seq = 0;
    if (const auto it = base.ring_seq.find(rank); it != base.ring_seq.end()) {
      first_seq = it->second;
    }
    std::uint64_t dropped_delta = 0;
    if (const auto it = dropped_now.find(rank); it != dropped_now.end()) {
      dropped_delta = it->second;
      if (const auto bit = base.ring_dropped.find(rank);
          bit != base.ring_dropped.end()) {
        dropped_delta -= bit->second;
      }
    }
    std::uint64_t count = 0;
    std::string ring_events;
    for (const obs::TraceEvent& ev : evs) {
      if (ev.seq < first_seq) continue;  // inherited from the parent
      ++count;
      put_u32(ring_events, strtab_index(table, order, ev.name));
      put_u32(ring_events, strtab_index(table, order, ev.cat));
      put_u8(ring_events, static_cast<std::uint8_t>(ev.kind));
      put_u64(ring_events, ev.ts_us);
      put_u64(ring_events, ev.dur_us);
      put_u64(ring_events, ev.cpu_us);
      put_u32(ring_events, strtab_index(table, order, ev.arg0_name));
      put_u64(ring_events, ev.arg0);
      put_u32(ring_events, strtab_index(table, order, ev.arg1_name));
      put_u64(ring_events, ev.arg1);
      put_u32(ring_events, strtab_index(table, order, ev.arg2_name));
      put_u64(ring_events, ev.arg2);
      put_u32(ring_events, strtab_index(table, order, ev.phase));
    }
    if (count == 0 && dropped_delta == 0) continue;
    ++ring_count;
    put_u32(rings, static_cast<std::uint32_t>(rank));
    put_u64(rings, dropped_delta);
    put_u64(rings, count);
    rings += ring_events;
  }
  put_u32(b, static_cast<std::uint32_t>(order.size()));
  for (const auto& s : order) put_str(b, s);
  put_u32(b, ring_count);
  b += rings;
}

void append_metrics_section(std::string& b, const ObsBaseline& base) {
  std::map<std::tuple<std::string, std::string, int>, const obs::MetricSample*>
      base_by_key;
  for (const auto& s : base.metrics) {
    base_by_key[{s.key.name, s.key.phase, s.key.rank}] = &s;
  }
  const auto now = obs::registry().snapshot();
  std::uint32_t count = 0;
  std::string body;
  for (const auto& s : now) {
    const obs::MetricSample* prior = nullptr;
    if (const auto it = base_by_key.find({s.key.name, s.key.phase, s.key.rank});
        it != base_by_key.end()) {
      prior = it->second;
    }
    switch (s.kind) {
      case obs::MetricSample::Kind::kCounter: {
        const std::uint64_t delta =
            s.counter_value - (prior != nullptr ? prior->counter_value : 0);
        if (delta == 0) continue;
        put_u8(body, 0);
        put_str(body, s.key.name);
        put_u32(body, static_cast<std::uint32_t>(s.key.rank));
        put_str(body, s.key.phase);
        put_u64(body, delta);
        break;
      }
      case obs::MetricSample::Kind::kGauge: {
        if (prior != nullptr && prior->gauge_value == s.gauge_value) continue;
        put_u8(body, 1);
        put_str(body, s.key.name);
        put_u32(body, static_cast<std::uint32_t>(s.key.rank));
        put_str(body, s.key.phase);
        put_f64(body, s.gauge_value);
        break;
      }
      case obs::MetricSample::Kind::kHistogram: {
        std::map<int, std::uint64_t> deltas;
        for (const auto& [bucket, n] : s.buckets) deltas[bucket] = n;
        std::uint64_t sum_delta = s.hist_sum;
        if (prior != nullptr) {
          sum_delta -= prior->hist_sum;
          for (const auto& [bucket, n] : prior->buckets) deltas[bucket] -= n;
        }
        std::uint32_t nonzero = 0;
        for (const auto& [bucket, n] : deltas) {
          if (n != 0) ++nonzero;
        }
        if (nonzero == 0 && sum_delta == 0) continue;
        put_u8(body, 2);
        put_str(body, s.key.name);
        put_u32(body, static_cast<std::uint32_t>(s.key.rank));
        put_str(body, s.key.phase);
        put_u32(body, nonzero);
        for (const auto& [bucket, n] : deltas) {
          if (n == 0) continue;
          put_u32(body, static_cast<std::uint32_t>(bucket));
          put_u64(body, n);
        }
        put_u64(body, sum_delta);
        break;
      }
    }
    ++count;
  }
  put_u32(b, count);
  b += body;
}

/// Serialize and atomically publish (tmp + rename) rank's exit blob.
void write_exit_blob(const std::string& dir, int rank, const Comm& comm,
                     ExitKind kind, const std::string& error,
                     const ObsBaseline& base) {
  std::string b;
  put_u32(b, kBlobMagic);
  put_u32(b, kBlobVersion);
  put_u32(b, static_cast<std::uint32_t>(rank));
  put_u8(b, static_cast<std::uint8_t>(kind));
  put_str(b, error);
  put_u64(b, obs::tracer().epoch_ns());
  const RankLedger& l = const_cast<Comm&>(comm).ledger();
  put_u64(b, l.msgs_sent);
  put_u64(b, l.bytes_sent);
  put_u64(b, l.msgs_recv);
  put_u64(b, l.bytes_recv);
  put_f64(b, l.compute_seconds);
  put_f64(b, l.comm_seconds);
  put_u32(b, static_cast<std::uint32_t>(comm.stash().size()));
  for (const auto& [key, bytes] : comm.stash()) {
    put_u32(b, key);
    put_u64(b, bytes.size());
    b.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  append_trace_section(b, base);
  append_metrics_section(b, base);

  const std::string tmp = dir + "/rank_" + std::to_string(rank) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
    if (!out.good()) return;  // parent treats a missing blob as a dead rank
  }
  ::rename(tmp.c_str(), blob_path(dir, rank).c_str());
}

struct ChildError {
  ExitKind kind = ExitKind::kOk;
  std::string message;
};

/// Parse rank's exit blob (if present) into the run's merged cost, the
/// global tracer/registry, and the per-rank error slot. A missing or
/// corrupt blob means the rank died without unwinding (SIGKILL) — its
/// ledger and stash are simply lost, like a crashed machine's.
void merge_exit_blob(const std::string& dir, int rank, RunCost* cost,
                     ChildError* error) {
  std::string b;
  {
    std::ifstream in(blob_path(dir, rank), std::ios::binary);
    if (!in.is_open()) return;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    b = std::move(data);
  }
  BlobReader r{b};
  if (r.u32() != kBlobMagic || r.u32() != kBlobVersion) return;
  if (static_cast<int>(r.u32()) != rank) return;
  error->kind = static_cast<ExitKind>(r.u8());
  error->message = r.str();
  const std::uint64_t child_epoch_ns = r.u64();

  RankLedger ledger;
  ledger.msgs_sent = r.u64();
  ledger.bytes_sent = r.u64();
  ledger.msgs_recv = r.u64();
  ledger.bytes_recv = r.u64();
  ledger.compute_seconds = r.f64();
  ledger.comm_seconds = r.f64();

  StashMap stash;
  const std::uint32_t stash_count = r.u32();
  for (std::uint32_t i = 0; r.ok && i < stash_count; ++i) {
    const std::uint32_t key = r.u32();
    const std::uint64_t len = r.u64();
    if (!r.ok || b.size() - r.off < len) {
      r.ok = false;
      break;
    }
    auto& slot = stash[key];
    slot.resize(static_cast<std::size_t>(len));
    r.take(slot.data(), static_cast<std::size_t>(len));
  }
  if (!r.ok) return;
  cost->per_rank[static_cast<std::size_t>(rank)] = ledger;
  cost->stash[static_cast<std::size_t>(rank)] = std::move(stash);

  // Trace events: align child timestamps onto the parent's epoch and
  // re-record into the parent's rings. Epochs are normally identical (the
  // child inherited the parent's), making the adjustment zero; the merge
  // still carries it so a divergent epoch cannot silently skew the
  // timeline. Strings are interned to restore TraceEvent's static-lifetime
  // contract.
  if (r.u8() != 0) {
    const std::uint32_t nstrings = r.u32();
    std::vector<const char*> strings;
    strings.reserve(nstrings);
    for (std::uint32_t i = 0; r.ok && i < nstrings; ++i) {
      strings.push_back(obs::intern_string(r.str()));
    }
    const auto str_at = [&strings](std::uint32_t idx) -> const char* {
      if (idx == kNoString) return nullptr;
      return idx < strings.size() ? strings[idx] : "";
    };
    const std::int64_t epoch_skew_us =
        (static_cast<std::int64_t>(child_epoch_ns) -
         static_cast<std::int64_t>(obs::tracer().epoch_ns())) /
        1000;
    const std::uint32_t nrings = r.u32();
    for (std::uint32_t i = 0; r.ok && i < nrings; ++i) {
      const int ring_rank = static_cast<int>(r.u32());
      const std::uint64_t dropped_delta = r.u64();
      const std::uint64_t nevents = r.u64();
      obs::RankRing* ring =
          obs::tracer().enabled() ? obs::tracer().ring(ring_rank) : nullptr;
      for (std::uint64_t e = 0; r.ok && e < nevents; ++e) {
        obs::TraceEvent ev;
        const char* name = str_at(r.u32());
        const char* cat = str_at(r.u32());
        ev.name = name != nullptr ? name : "";
        ev.cat = cat != nullptr ? cat : "";
        ev.kind = static_cast<obs::TraceEvent::Kind>(r.u8());
        ev.rank = ring_rank;
        const std::uint64_t ts = r.u64();
        ev.ts_us = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, static_cast<std::int64_t>(ts) +
                                          epoch_skew_us));
        ev.dur_us = r.u64();
        ev.cpu_us = r.u64();
        ev.arg0_name = str_at(r.u32());
        ev.arg0 = r.u64();
        ev.arg1_name = str_at(r.u32());
        ev.arg1 = r.u64();
        ev.arg2_name = str_at(r.u32());
        ev.arg2 = r.u64();
        const char* phase = str_at(r.u32());
        ev.phase = phase != nullptr ? phase : "";
        if (r.ok && ring != nullptr) ring->record(ev);
      }
      if (r.ok && ring != nullptr && dropped_delta != 0) {
        ring->add_dropped(dropped_delta);
      }
    }
  }

  // Metric deltas fold into the parent's registry.
  const std::uint32_t nmetrics = r.u32();
  auto& reg = obs::registry();
  for (std::uint32_t i = 0; r.ok && i < nmetrics; ++i) {
    const std::uint8_t kind = r.u8();
    const std::string name = r.str();
    const int mrank = static_cast<int>(r.u32());
    const std::string phase = r.str();
    if (kind == 0) {
      const std::uint64_t delta = r.u64();
      if (r.ok) reg.counter(name, mrank, phase).inc(delta);
    } else if (kind == 1) {
      const double value = r.f64();
      if (r.ok) reg.gauge(name, mrank, phase).set(value);
    } else if (kind == 2) {
      const std::uint32_t nbuckets = r.u32();
      obs::Histogram* h = r.ok ? &reg.histogram(name, mrank, phase) : nullptr;
      for (std::uint32_t j = 0; r.ok && j < nbuckets; ++j) {
        const int bucket = static_cast<int>(r.u32());
        const std::uint64_t n = r.u64();
        if (r.ok && h != nullptr && bucket >= 0 &&
            bucket < obs::Histogram::kNumBuckets) {
          h->merge_bucket(bucket, n);
        }
      }
      const std::uint64_t sum_delta = r.u64();
      if (r.ok && h != nullptr) h->merge_sum(sum_delta);
    } else {
      return;  // unknown record: stop parsing rather than misinterpret
    }
  }
}

/// Body of a forked rank process. Never returns.
[[noreturn]] void run_child(ProcTransport& tp, int rank,
                            const std::function<void(Comm&)>& body,
                            const std::string& blob_dir,
                            const CostParams& cost, const FaultPlan& faults) {
  util::set_log_rank(rank);
  const ObsBaseline base = capture_obs_baseline();
  Comm comm(tp, cost, faults, rank);
  ExitKind kind = ExitKind::kOk;
  std::string error;
  try {
    body(comm);
    tp.mark_done(rank);
  } catch (const KilledError& e) {
    // A *thrown* kill (user code simulating a crash without the transport's
    // real SIGKILL): unwind, mark dead, still ship the blob — matching the
    // thread transport, where a killed rank's ledger is still collected.
    kind = ExitKind::kKilled;
    error = e.what();
    tp.mark_dead(rank);
  } catch (const TimeoutError& e) {
    kind = ExitKind::kTimeout;
    error = e.what();
    tp.claim_first_error(rank);
    tp.abort_all();
  } catch (const AbortError& e) {
    kind = ExitKind::kAbort;
    error = e.what();
    tp.claim_first_error(rank);
    tp.abort_all();
  } catch (const std::exception& e) {
    kind = ExitKind::kError;
    error = e.what();
    tp.claim_first_error(rank);
    tp.abort_all();
  } catch (...) {
    kind = ExitKind::kError;
    error = "unknown exception";
    tp.claim_first_error(rank);
    tp.abort_all();
  }
  write_exit_blob(blob_dir, rank, comm, kind, error, base);
  std::fflush(nullptr);
  // _exit, not exit: atexit handlers and static destructors belong to the
  // parent's image and must not run (twice) in the child.
  switch (kind) {
    case ExitKind::kOk:
      ::_exit(0);
    case ExitKind::kKilled:
      ::_exit(4);
    case ExitKind::kAbort:
      ::_exit(3);
    default:
      ::_exit(2);
  }
}

}  // namespace

RunCost Runtime::run_proc(const std::function<void(Comm&)>& body) {
  const int p = num_ranks_;
  const bool traced = obs::tracer().enabled();

  // Open the driver "join" span before forking: its ring() call pins the
  // trace epoch, which the children then inherit — the property the
  // post-run timestamp merge relies on.
  detail::WaitScope join_sp(
      traced ? obs::tracer().ring(obs::kDriverTid) : nullptr,
      traced ? &obs::registry().histogram("comm.wait_us", obs::kDriverTid,
                                          obs::current_phase())
             : nullptr,
      obs::kDriverTid, "join");
  join_sp.arg("ranks", static_cast<std::uint64_t>(p));

  char dir_template[] = "/tmp/pgasm-proc-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    throw std::runtime_error("proc transport: mkdtemp failed");
  }
  const std::string blob_dir = dir_template;
  const auto cleanup_dir = [&blob_dir, p] {
    for (int r = 1; r < p; ++r) {
      ::unlink(blob_path(blob_dir, r).c_str());
      ::unlink((blob_dir + "/rank_" + std::to_string(r) + ".tmp").c_str());
    }
    ::rmdir(blob_dir.c_str());
  };

  ProcTransport tp(p, proc_ring_bytes_);

  // Flush stdio before forking: with stdout piped (fully buffered), any
  // pending output would be duplicated into every child and flushed again
  // when the child exits.
  std::fflush(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(p), -1);
  for (int r = 1; r < p; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int k = 1; k < r; ++k) ::kill(pids[static_cast<std::size_t>(k)], SIGKILL);
      for (int k = 1; k < r; ++k) {
        int status = 0;
        ::waitpid(pids[static_cast<std::size_t>(k)], &status, 0);
      }
      cleanup_dir();
      throw std::runtime_error("proc transport: fork failed: " +
                               std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      run_child(tp, r, body, blob_dir, cost_, faults_);  // never returns
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Reaper: publishes silent child deaths (real SIGKILLs from crash_self,
  // or any exit that isn't one of ours) through the shared dead flags, so
  // survivors unblock the same way the thread transport's mark_dead wakes
  // its waiters.
  const FaultPlan& faults = faults_;
  std::thread reaper([&tp, &pids, &faults, p] {
    int remaining = p - 1;
    while (remaining > 0) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, 0);
      if (pid < 0) break;  // ECHILD: nothing left to reap
      int rank = -1;
      for (int r = 1; r < p; ++r) {
        if (pids[static_cast<std::size_t>(r)] == pid) {
          rank = r;
          break;
        }
      }
      if (rank < 0) continue;
      --remaining;
      const bool clean = WIFEXITED(status) &&
                         (WEXITSTATUS(status) == 0 || WEXITSTATUS(status) == 2 ||
                          WEXITSTATUS(status) == 3 || WEXITSTATUS(status) == 4);
      if (!clean) {
        tp.mark_dead(rank);
        // A SIGKILLed child takes its trace ring with it, so its
        // "fault_crash" instant (runtime.cpp emits it right before
        // crash_self) is lost with the address space. The parent knows the
        // plan, and the reap observes the kill — synthesize the instant
        // here, at reap time, so the merged trace tells the same recovery
        // story as the thread transport's. Only for planned crashes: an
        // unexplained death stays unexplained in the trace too.
        if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
          for (const auto& c : faults.crashes) {
            if (c.rank == rank) {
              obs::instant(rank, "fault_crash", "vmpi", "at_send", c.at_send);
              break;
            }
          }
        }
      }
    }
  });

  // Rank 0 runs on this thread: driver code reads state the rank 0 body
  // mutates (master scheduler results, checkpoint handles), which only
  // works if rank 0 shares the driver's address space.
  const int prior_log_rank = util::log_rank();
  util::set_log_rank(0);
  Comm comm0(tp, cost_, faults_, 0);
  std::exception_ptr rank0_error;
  try {
    body(comm0);
    tp.mark_done(0);
  } catch (const KilledError&) {
    tp.mark_dead(0);
  } catch (...) {
    rank0_error = std::current_exception();
    tp.claim_first_error(0);
    tp.abort_all();
  }
  util::set_log_rank(prior_log_rank);

  reaper.join();
  join_sp.finish();

  RunCost cost;
  cost.per_rank.resize(static_cast<std::size_t>(p));
  cost.stash.resize(static_cast<std::size_t>(p));
  cost.per_rank[0] = comm0.ledger();
  cost.stash[0] = std::move(comm0.stash_);

  std::vector<ChildError> errors(static_cast<std::size_t>(p));
  for (int r = 1; r < p; ++r) {
    merge_exit_blob(blob_dir, r, &cost, &errors[static_cast<std::size_t>(r)]);
  }
  cost.faults = tp.counters().snapshot();
  publish_cost(cost);
  cleanup_dir();

  const int fer = tp.first_error_rank();
  if (fer == 0 && rank0_error != nullptr) {
    try {
      std::rethrow_exception(rank0_error);
    } catch (const AbortError&) {
      throw std::runtime_error("vmpi run aborted");
    }
  }
  if (fer >= 0) {
    const ChildError& err = errors[static_cast<std::size_t>(fer)];
    switch (err.kind) {
      case ExitKind::kTimeout:
        throw TimeoutError(err.message);
      case ExitKind::kError:
        throw std::runtime_error(err.message);
      default:
        // Abort (secondary casualty reported first), or the blob is gone.
        throw std::runtime_error("vmpi run aborted");
    }
  }
  return cost;
}

}  // namespace pgasm::vmpi
