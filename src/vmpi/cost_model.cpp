#include "vmpi/cost_model.hpp"

#include <algorithm>

#include "util/deterministic.hpp"
#include "vmpi/transport.hpp"

namespace pgasm::vmpi {

// Measured with `tools/transport_probe` on the dev container (see
// scripts/bench_baseline.sh; BENCH_transport_probe.json holds the raw
// points). alpha = half the median 8-byte ping-pong round trip, beta =
// 1 / the ping-pong slope at 1 MiB messages. The thread transport pays
// more per message (mailbox mutex + cv handoff vs. the proc rings'
// spin-polled consume) but streams faster (one vector move into the
// mailbox vs. chunked memcpys through a bounded shared ring).
CostParams CostParams::calibrated(TransportKind kind) noexcept {
  CostParams p;
  switch (kind) {
    case TransportKind::kThread:
      p.alpha = 2.6e-6;
      p.beta = 1.0 / 30e9;
      break;
    case TransportKind::kProc:
      p.alpha = 1.3e-6;
      p.beta = 1.0 / 5.3e9;
      break;
  }
  return p;
}

double RunCost::modeled_parallel_seconds() const noexcept {
  double best = 0;
  for (const auto& r : per_rank) best = std::max(best, r.busy_seconds());
  return best;
}

double RunCost::max_compute_seconds() const noexcept {
  double best = 0;
  for (const auto& r : per_rank) best = std::max(best, r.compute_seconds);
  return best;
}

double RunCost::max_comm_seconds() const noexcept {
  double best = 0;
  for (const auto& r : per_rank) best = std::max(best, r.comm_seconds);
  return best;
}

double RunCost::total_compute_seconds() const noexcept {
  // Fixed-shape reduction over the rank-indexed vector (W018): the summary
  // stays bit-identical even if this fold is later chunked or parallelized.
  return util::ordered_reduce(
      per_rank, [](const RankLedger& r) { return r.compute_seconds; });
}

std::uint64_t RunCost::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& r : per_rank) sum += r.bytes_sent;
  return sum;
}

std::uint64_t RunCost::total_msgs() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& r : per_rank) sum += r.msgs_sent;
  return sum;
}

double RunCost::avg_idle_fraction() const noexcept {
  if (per_rank.empty()) return 0;
  const double makespan = modeled_parallel_seconds();
  if (makespan <= 0) return 0;
  const double idle = util::ordered_reduce(per_rank, [&](const RankLedger& r) {
    return (makespan - r.busy_seconds()) / makespan;
  });
  return idle / static_cast<double>(per_rank.size());
}

}  // namespace pgasm::vmpi
