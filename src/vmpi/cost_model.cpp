#include "vmpi/cost_model.hpp"

#include <algorithm>

namespace pgasm::vmpi {

double RunCost::modeled_parallel_seconds() const noexcept {
  double best = 0;
  for (const auto& r : per_rank) best = std::max(best, r.busy_seconds());
  return best;
}

double RunCost::max_compute_seconds() const noexcept {
  double best = 0;
  for (const auto& r : per_rank) best = std::max(best, r.compute_seconds);
  return best;
}

double RunCost::max_comm_seconds() const noexcept {
  double best = 0;
  for (const auto& r : per_rank) best = std::max(best, r.comm_seconds);
  return best;
}

double RunCost::total_compute_seconds() const noexcept {
  double sum = 0;
  for (const auto& r : per_rank) sum += r.compute_seconds;
  return sum;
}

std::uint64_t RunCost::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& r : per_rank) sum += r.bytes_sent;
  return sum;
}

std::uint64_t RunCost::total_msgs() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& r : per_rank) sum += r.msgs_sent;
  return sum;
}

double RunCost::avg_idle_fraction() const noexcept {
  if (per_rank.empty()) return 0;
  const double makespan = modeled_parallel_seconds();
  if (makespan <= 0) return 0;
  double idle = 0;
  for (const auto& r : per_rank) idle += (makespan - r.busy_seconds()) / makespan;
  return idle / static_cast<double>(per_rank.size());
}

}  // namespace pgasm::vmpi
