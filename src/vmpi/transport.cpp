#include "vmpi/transport.hpp"

#include <cstdlib>

namespace pgasm::vmpi {

const char* transport_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kThread:
      return "thread";
    case TransportKind::kProc:
      return "proc";
  }
  return "thread";
}

TransportKind resolve_transport(const std::string& name) {
  std::string chosen = name;
  if (chosen.empty()) {
    const char* env = std::getenv("PGASM_TRANSPORT");
    if (env != nullptr) chosen = env;
  }
  if (chosen.empty() || chosen == "thread") return TransportKind::kThread;
  if (chosen == "proc") return TransportKind::kProc;
  throw std::runtime_error("unknown vmpi transport \"" + chosen +
                           "\" (valid: thread, proc)");
}

}  // namespace pgasm::vmpi
