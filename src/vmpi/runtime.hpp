// Virtual MPI: a message-passing runtime with pluggable transports.
//
// The paper's framework is written against MPI on an IBM BlueGene/L. This
// substrate provides the same programming model — ranks, point-to-point
// send/recv with tags and wildcards, synchronous (Ssend) semantics, probes,
// and the collectives the algorithms need (barrier, bcast, reduce,
// allreduce, gather, allgatherv, alltoallv, plus the paper's customized
// staged Alltoallv with bounded buffers). Collectives are implemented on
// top of point-to-point messages with real communication algorithms
// (dissemination barrier, binomial bcast/reduce), so the cost ledger sees
// the same message pattern a real cluster would.
//
// Ranks run over a vmpi::Transport (transport.hpp): threads of one process
// sharing mutex+cv mailboxes (the default), or real forked OS processes
// exchanging messages over shared-memory rings ("proc"). The protocol
// semantics below are identical on both.
//
// Fault model: a Runtime can carry a deterministic FaultPlan that injects
// rank crashes, message drops, and message delays keyed on each rank's
// user-channel send index. A crashed rank dies silently (its thread exits —
// or its child process is SIGKILLed — without aborting the run); surviving
// ranks observe the failure only through the deadline-carrying
// recv_timeout/probe_timeout calls (which throw TimeoutError) or the
// rank_failed() failure-detector oracle.
// A rank whose body returns normally is marked *finished*: sends to it are
// discarded (synchronous sends complete instead of blocking on a receiver
// that will never consume), and receives from it fail fast once its queued
// messages are drained. Peers distinguish the two via rank_done().
// Faults apply to the user channel only — losing a collective-internal
// message cannot be recovered by any protocol built above it, so a rank
// death during a collective aborts the run instead.
//
// Usage:
//   vmpi::Runtime rt(8);                  // thread transport
//   vmpi::Runtime rt2(4, "proc");         // 4 forked processes
//   vmpi::RunCost cost = rt.run([&](vmpi::Comm& comm) {
//     if (comm.rank() == 0) comm.send_value(1, /*tag=*/7, 42);
//     else if (comm.rank() == 1) int v = comm.recv_value<int>(0, 7);
//     comm.barrier();
//   });
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/timer.hpp"
#include "vmpi/cost_model.hpp"
#include "vmpi/transport.hpp"

namespace pgasm::obs {
class Counter;
class Histogram;
class RankRing;
}  // namespace pgasm::obs

namespace pgasm::vmpi {

class ThreadTransport;

/// memcpy with the n == 0 case made well-defined: empty std::vector buffers
/// hand out data() == nullptr, and passing nullptr to memcpy is UB even for
/// zero-length copies (both pointer arguments are attribute-nonnull).
inline void copy_bytes(void* dst, const void* src, std::size_t n) {
  if (n != 0) std::memcpy(dst, src, n);
}

/// Result metadata of a receive or probe.
struct Status {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Deterministic, seeded fault-injection plan. All rules key on a rank's
/// *user-channel* send index (1-based count of that rank's send/ssend
/// calls; collective-internal traffic is excluded so plans stay stable
/// against collective implementation details).
struct FaultPlan {
  struct Crash {
    int rank = -1;
    std::uint64_t at_send = 1;  ///< die in place of this send (and later)
  };
  struct Drop {
    int rank = -1;
    std::uint64_t at_send = 1;  ///< this send is silently lost
  };
  struct Delay {
    int rank = -1;
    std::uint64_t at_send = 1;  ///< this send is delivered late
    double seconds = 0;
  };
  std::vector<Crash> crashes;
  std::vector<Drop> drops;
  std::vector<Delay> delays;

  /// Probabilistic rules: each user send is independently dropped/delayed
  /// with the given probability, decided by a hash of (seed, rank, send
  /// index) — deterministic across runs with the same seed.
  std::uint64_t seed = 0;
  double drop_prob = 0;
  double delay_prob = 0;
  double delay_seconds = 0;  ///< applied by probabilistic delays

  bool enabled() const noexcept {
    return !crashes.empty() || !drops.empty() || !delays.empty() ||
           drop_prob > 0 || delay_prob > 0;
  }
};

/// One rank's endpoint. Created by Runtime::run on the rank's own thread
/// (or in the rank's own process on the proc transport); not thread-safe
/// across threads (like an MPI rank).
class Comm {
 public:
  /// Caches this rank's observability handles (tracer ring + per-rank
  /// message instruments) when obs is enabled at construction time.
  Comm(Transport& transport, const CostParams& cost, const FaultPlan& faults,
       int rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return transport_->num_ranks(); }

  // --- point-to-point (user channel) -----------------------------------

  /// Buffered send: copies toward the destination and returns.
  void send(int dest, int tag, const void* data, std::size_t n) {
    send_impl(dest, tag, data, n, /*internal=*/false, /*sync=*/false);
  }

  /// Synchronous send: returns only after the receiver has consumed the
  /// message (the paper uses MPI_Ssend to avoid master-side buffer
  /// overflow; we reproduce the semantics). Returns immediately if the
  /// destination rank has failed or finished (the message is charged and
  /// discarded — no one is left to consume it).
  void ssend(int dest, int tag, const void* data, std::size_t n) {
    send_impl(dest, tag, data, n, /*internal=*/false, /*sync=*/true);
  }

  /// Buffered send that MOVES an already-serialized payload toward the
  /// destination instead of copying it — the zero-copy half of the wire
  /// path on the thread transport (encode once, move into the mailbox,
  /// receiver takes the same buffer by move from recv()). On a
  /// dropped/dead-destination send the payload is destroyed, matching a
  /// lost message.
  void send_payload(int dest, int tag, std::vector<std::byte>&& payload) {
    send_payload_impl(dest, tag, std::move(payload), /*sync=*/false);
  }

  /// Synchronous variant of send_payload (ssend rendezvous semantics).
  void ssend_payload(int dest, int tag, std::vector<std::byte>&& payload) {
    send_payload_impl(dest, tag, std::move(payload), /*sync=*/true);
  }

  /// Blocking receive; wildcards kAnySource / kAnyTag allowed.
  std::vector<std::byte> recv(int source, int tag, Status* status = nullptr);

  /// Receive with a deadline: throws TimeoutError if no matching message
  /// arrives within timeout_s seconds, or immediately if `source` names a
  /// rank that has failed or finished and no matching message is queued.
  std::vector<std::byte> recv_timeout(int source, int tag, double timeout_s,
                                      Status* status = nullptr);

  /// Blocking probe: waits until a matching message is available.
  Status probe(int source, int tag);

  /// Probe with a deadline; TimeoutError semantics as recv_timeout.
  Status probe_timeout(int source, int tag, double timeout_s);

  /// Non-blocking probe.
  bool iprobe(int source, int tag, Status* status);

  /// Failure-detector oracle: has rank r died (injected crash)? Real
  /// deployments substitute an out-of-band detector; protocols built here
  /// should treat it as a hint and keep timeout paths for silent stalls.
  bool rank_failed(int r) const {
    return r >= 0 && r < size() && transport_->is_dead(r);
  }

  /// Has rank r's body returned normally? A finished rank sends nothing
  /// further, so anything it ever sent is already queued (or lost to
  /// injected drops); a peer still waiting on it can act on that instead of
  /// running out its silence timeout.
  bool rank_done(int r) const {
    return r >= 0 && r < size() && transport_->is_done(r);
  }

  /// Which transport this rank is running over.
  TransportKind transport_kind() const noexcept { return transport_->kind(); }

  // --- result stash ------------------------------------------------------

  /// Ship a small result blob back to the driver: it lands in
  /// RunCost::stash[rank()][key] after the run. On the thread transport
  /// this is a plain copy; on the proc transport the bytes ride the rank's
  /// exit blob across the process boundary — which is the whole point:
  /// lambda-captured writes from a rank body are invisible to the driver
  /// once ranks are real processes, stashed bytes are not. Last put per key
  /// wins. Lost if the rank dies (crash) before finishing.
  void stash_put(std::uint32_t key, const void* data, std::size_t n) {
    auto& slot = stash_[key];
    slot.resize(n);
    copy_bytes(slot.data(), data, n);
  }

  template <typename T>
  void stash_value(std::uint32_t key, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    stash_put(key, &v, sizeof(T));
  }

  const StashMap& stash() const noexcept { return stash_; }

  // --- typed convenience wrappers ---------------------------------------

  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, &v, sizeof(T));
  }

  template <typename T>
  T recv_value(int source, int tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status st;
    auto bytes = recv(source, tag, &st);
    if (status) *status = st;
    return value_from_bytes<T>(bytes, st);
  }

  template <typename T>
  T recv_value_timeout(int source, int tag, double timeout_s,
                       Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status st;
    auto bytes = recv_timeout(source, tag, timeout_s, &st);
    if (status) *status = st;
    return value_from_bytes<T>(bytes, st);
  }

  template <typename T>
  void send_vector(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dest, tag, v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  void ssend_vector(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    ssend(dest, tag, v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  std::vector<T> recv_vector(int source, int tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status st;
    auto bytes = recv(source, tag, &st);
    if (status) *status = st;
    return vector_from_bytes<T>(bytes, st);
  }

  template <typename T>
  std::vector<T> recv_vector_timeout(int source, int tag, double timeout_s,
                                     Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Status st;
    auto bytes = recv_timeout(source, tag, timeout_s, &st);
    if (status) *status = st;
    return vector_from_bytes<T>(bytes, st);
  }

  // --- collectives (must be called by all ranks, in the same order) -----

  void barrier();

  /// Broadcast raw bytes from root; non-root data is replaced.
  void bcast_bytes(std::vector<std::byte>& data, int root);

  template <typename T>
  void bcast(T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(sizeof(T));
    if (rank_ == root) std::memcpy(buf.data(), &value, sizeof(T));
    bcast_bytes(buf, root);
    std::memcpy(&value, buf.data(), sizeof(T));
  }

  template <typename T>
  void bcast_vector(std::vector<T>& v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf;
    if (rank_ == root) {
      buf.resize(v.size() * sizeof(T));
      copy_bytes(buf.data(), v.data(), buf.size());
    }
    bcast_bytes(buf, root);
    v.resize(buf.size() / sizeof(T));
    copy_bytes(v.data(), buf.data(), buf.size());
  }

  /// Elementwise reduction of equal-length vectors to root (binomial tree).
  /// Combine is a binary op applied elementwise: T(T, T).
  template <typename T, typename Combine>
  std::vector<T> reduce_vector(std::vector<T> local, int root, Combine comb);

  template <typename T, typename Combine>
  std::vector<T> allreduce_vector(std::vector<T> local, Combine comb) {
    auto r = reduce_vector(std::move(local), 0, comb);
    bcast_vector(r, 0);
    return r;
  }

  template <typename T>
  T allreduce_sum(T local) {
    auto v = allreduce_vector(std::vector<T>{local},
                              [](T a, T b) { return a + b; });
    return v[0];
  }

  template <typename T>
  T allreduce_max(T local) {
    auto v = allreduce_vector(std::vector<T>{local},
                              [](T a, T b) { return a > b ? a : b; });
    return v[0];
  }

  template <typename T>
  T allreduce_min(T local) {
    auto v = allreduce_vector(std::vector<T>{local},
                              [](T a, T b) { return a < b ? a : b; });
    return v[0];
  }

  /// Gather variable-length vectors at root; result[r] = rank r's vector.
  /// Non-root ranks receive an empty result.
  template <typename T>
  std::vector<std::vector<T>> gatherv(const std::vector<T>& local, int root);

  /// All ranks receive every rank's vector.
  template <typename T>
  std::vector<std::vector<T>> allgatherv(const std::vector<T>& local);

  /// Personalized all-to-all: outgoing[d] goes to rank d; returns
  /// incoming[s] = what rank s sent to this rank. Direct algorithm:
  /// p-1 buffered sends then p-1 receives.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing);

  /// The paper's customized Alltoallv (Section 6): p-1 paired rounds,
  /// round r exchanging with ranks (rank+r) mod p / (rank-r) mod p, so at
  /// most one send and one receive buffer is in flight per rank at a time.
  template <typename T>
  std::vector<std::vector<T>> staged_alltoallv(
      const std::vector<std::vector<T>>& outgoing);

  // --- cost accounting ---------------------------------------------------

  RankLedger& ledger() noexcept { return ledger_; }
  const CostParams& cost_params() const noexcept { return *cost_; }

  /// Directly charge compute seconds (already scaled by the thread timer).
  void charge_compute(double seconds) noexcept {
    ledger_.charge_compute(seconds, *cost_);
  }

  /// RAII scope that charges the enclosed thread-CPU time as compute.
  class ComputeScope {
   public:
    explicit ComputeScope(Comm& comm) : comm_(comm) {}
    ~ComputeScope() { comm_.charge_compute(timer_.elapsed()); }
    ComputeScope(const ComputeScope&) = delete;
    ComputeScope& operator=(const ComputeScope&) = delete;

   private:
    Comm& comm_;
    util::ThreadCpuTimer timer_;
  };

  ComputeScope compute_scope() { return ComputeScope(*this); }

 private:
  friend class Runtime;

  void send_impl(int dest, std::int64_t tag, const void* data, std::size_t n,
                 bool internal, bool sync);
  void send_payload_impl(int dest, std::int64_t tag,
                         std::vector<std::byte>&& payload, bool sync);
  /// Shared send front half: dest/abort checks, fault injection, ledger and
  /// obs charges. Returns false when the message must not be handed to the
  /// transport (dropped, or the destination is dead/finished).
  bool send_preflight(int dest, std::size_t n, bool internal, bool sync);
  /// Shared send back half: hand the message to the transport and, for
  /// synchronous sends, span the rendezvous wait.
  void dispatch_message(int dest, detail::Message&& msg, bool sync);
  /// deadline == nullptr blocks forever (throws AbortError on abort or on a
  /// specific failed source); with a deadline it throws TimeoutError.
  std::vector<std::byte> recv_impl(
      int source, std::int64_t tag, bool internal, Status* status,
      const std::chrono::steady_clock::time_point* deadline = nullptr);
  Status probe_impl(int source, int tag,
                    const std::chrono::steady_clock::time_point* deadline);

  /// Apply the runtime's FaultPlan to this rank's next user send. Returns
  /// true if the message must be dropped; a crash rule hands control to
  /// Transport::crash_self (KilledError on threads, SIGKILL on processes).
  bool apply_faults();

  template <typename T>
  T value_from_bytes(const std::vector<std::byte>& bytes, const Status& st) {
    if (bytes.size() != sizeof(T)) {
      throw std::runtime_error(
          "recv_value: size mismatch from rank " + std::to_string(st.source) +
          " tag " + std::to_string(st.tag) + ": expected " +
          std::to_string(sizeof(T)) + " bytes, got " +
          std::to_string(bytes.size()));
    }
    T v;
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  template <typename T>
  std::vector<T> vector_from_bytes(const std::vector<std::byte>& bytes,
                                   const Status& st) {
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error(
          "recv_vector: size mismatch from rank " + std::to_string(st.source) +
          " tag " + std::to_string(st.tag) + ": got " +
          std::to_string(bytes.size()) + " bytes, not a multiple of element size " +
          std::to_string(sizeof(T)));
    }
    std::vector<T> v(bytes.size() / sizeof(T));
    copy_bytes(v.data(), bytes.data(), bytes.size());
    return v;
  }

  /// Next internal tag for a collective operation. All ranks execute
  /// collectives in the same order, so sequence numbers agree globally.
  std::int64_t next_collective_tag() noexcept {
    return (std::int64_t{1} << 32) + (collective_seq_++ << 8);
  }

  Transport* transport_;
  const CostParams* cost_;
  const FaultPlan* faults_;
  int rank_;
  std::int64_t collective_seq_ = 0;
  std::uint64_t user_send_seq_ = 0;  ///< 1-based index of user-channel sends
  RankLedger ledger_;
  StashMap stash_;  ///< collected into RunCost::stash after the run

  // Observability handles, cached once at construction so hot paths pay a
  // single null check when tracing is off (all null then). The ring mutex
  // is a leaf lock: recording is safe while a mailbox mutex is held.
  obs::RankRing* obs_ring_ = nullptr;
  obs::Histogram* obs_send_bytes_ = nullptr;
  obs::Histogram* obs_recv_bytes_ = nullptr;
  obs::Histogram* obs_wait_us_ = nullptr;
  obs::Counter* obs_timeouts_ = nullptr;
};

/// Owns the transport and runs SPMD bodies across ranks.
class Runtime {
 public:
  /// Thread transport (the default; behavior-identical to the pre-transport
  /// runtime, and what every existing call site gets).
  explicit Runtime(int num_ranks, CostParams cost = {}, FaultPlan faults = {});

  /// Transport selected by name: "thread", "proc", or "" to defer to the
  /// PGASM_TRANSPORT environment variable (falling back to "thread").
  Runtime(int num_ranks, const std::string& transport, CostParams cost = {},
          FaultPlan faults = {});

  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int size() const noexcept { return num_ranks_; }
  TransportKind transport() const noexcept { return kind_; }

  /// Proc transport only: capacity in bytes of each per-ordered-rank-pair
  /// shared-memory ring (default 256 KiB). Messages larger than a ring
  /// stream through it in chunks; tests shrink this to exercise that path.
  void set_proc_ring_bytes(std::size_t bytes) noexcept {
    proc_ring_bytes_ = bytes;
  }

  /// Run `body(comm)` on every rank; joins all ranks; returns the merged
  /// cost ledgers. Rethrows the first rank exception (after aborting all).
  /// A rank that dies of an injected crash (KilledError / SIGKILL) does NOT
  /// abort the run: the survivors keep running and the ledger records the
  /// failure.
  RunCost run(const std::function<void(Comm&)>& body);

 private:
  RunCost run_threads(const std::function<void(Comm&)>& body);
  /// Defined in proc_transport.cpp: forks one child per non-zero rank (rank
  /// 0 runs on the caller's thread so driver-visible state it mutates
  /// survives), monitors children, merges ledgers/stash/obs blobs.
  RunCost run_proc(const std::function<void(Comm&)>& body);
  /// Publish the run's ledgers + fault stats into the metrics registry.
  void publish_cost(const RunCost& cost) const;

  int num_ranks_;
  TransportKind kind_;
  CostParams cost_;
  FaultPlan faults_;
  std::size_t proc_ring_bytes_ = std::size_t{1} << 18;
  std::unique_ptr<ThreadTransport> thread_transport_;  ///< null for kProc
};

// --- template implementations ---------------------------------------------

template <typename T, typename Combine>
std::vector<T> Comm::reduce_vector(std::vector<T> local, int root,
                                   Combine comb) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  // Binomial tree on virtual ranks vr = (rank - root + p) % p; vr 0 is root.
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      // Send accumulated value to parent and exit.
      const int parent = ((vr - mask) + root) % p;
      send_impl(parent, base_tag, local.data(), local.size() * sizeof(T),
                /*internal=*/true, /*sync=*/false);
      return {};
    }
    const int child_vr = vr + mask;
    if (child_vr < p) {
      const int child = (child_vr + root) % p;
      Status st;
      auto bytes = recv_impl(child, base_tag, /*internal=*/true, &st);
      std::vector<T> other(bytes.size() / sizeof(T));
      copy_bytes(other.data(), bytes.data(), bytes.size());
      if (other.size() != local.size())
        throw std::runtime_error("reduce_vector length mismatch");
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = comb(local[i], other[i]);
    }
    mask <<= 1;
  }
  return local;  // root
}

template <typename T>
std::vector<std::vector<T>> Comm::gatherv(const std::vector<T>& local,
                                          int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  if (rank_ != root) {
    send_impl(root, base_tag, local.data(), local.size() * sizeof(T),
              /*internal=*/true, /*sync=*/false);
    return {};
  }
  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  out[rank_] = local;
  for (int s = 0; s < p; ++s) {
    if (s == root) continue;
    auto bytes = recv_impl(s, base_tag, /*internal=*/true, nullptr);
    out[s].resize(bytes.size() / sizeof(T));
    copy_bytes(out[s].data(), bytes.data(), bytes.size());
  }
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::allgatherv(const std::vector<T>& local) {
  auto gathered = gatherv(local, 0);
  // Broadcast the concatenation with a length prefix per rank.
  std::vector<std::uint64_t> lens(static_cast<std::size_t>(size()));
  std::vector<T> flat;
  if (rank_ == 0) {
    for (int r = 0; r < size(); ++r) {
      lens[r] = gathered[r].size();
      flat.insert(flat.end(), gathered[r].begin(), gathered[r].end());
    }
  }
  bcast_vector(lens, 0);
  bcast_vector(flat, 0);
  std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
  std::size_t off = 0;
  for (int r = 0; r < size(); ++r) {
    out[r].assign(flat.begin() + off, flat.begin() + off + lens[r]);
    off += lens[r];
  }
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv(
    const std::vector<std::vector<T>>& outgoing) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (static_cast<int>(outgoing.size()) != p)
    throw std::runtime_error("alltoallv: outgoing.size() != p");
  const std::int64_t base_tag = next_collective_tag();
  std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    if (d == rank_) {
      incoming[d] = outgoing[d];
      continue;
    }
    send_impl(d, base_tag, outgoing[d].data(), outgoing[d].size() * sizeof(T),
              /*internal=*/true, /*sync=*/false);
  }
  for (int s = 0; s < p; ++s) {
    if (s == rank_) continue;
    auto bytes = recv_impl(s, base_tag, /*internal=*/true, nullptr);
    incoming[s].resize(bytes.size() / sizeof(T));
    copy_bytes(incoming[s].data(), bytes.data(), bytes.size());
  }
  return incoming;
}

template <typename T>
std::vector<std::vector<T>> Comm::staged_alltoallv(
    const std::vector<std::vector<T>>& outgoing) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (static_cast<int>(outgoing.size()) != p)
    throw std::runtime_error("staged_alltoallv: outgoing.size() != p");
  const std::int64_t base_tag = next_collective_tag();
  std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
  incoming[rank_] = outgoing[rank_];
  for (int round = 1; round < p; ++round) {
    const int to = (rank_ + round) % p;
    const int from = (rank_ - round + p) % p;
    const std::int64_t tag = base_tag + round;
    send_impl(to, tag, outgoing[to].data(), outgoing[to].size() * sizeof(T),
              /*internal=*/true, /*sync=*/false);
    auto bytes = recv_impl(from, tag, /*internal=*/true, nullptr);
    incoming[from].resize(bytes.size() / sizeof(T));
    copy_bytes(incoming[from].data(), bytes.data(), bytes.size());
  }
  return incoming;
}

}  // namespace pgasm::vmpi
