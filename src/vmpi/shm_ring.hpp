// Shared-memory layout of the process transport: one anonymous MAP_SHARED
// region created before fork, carved into a control block, per-rank
// liveness flags, per-ordered-pair synchronous-send acknowledgement slots,
// and one SPSC byte ring per ordered rank pair.
//
// Ring protocol. head/tail are monotonically increasing byte counters
// (never wrapped); the byte at logical position x lives at buf[x % cap].
// The producer (the source rank's process) advances tail with release
// stores after each memcpy'd chunk; the consumer (the destination rank)
// advances head with release stores after copying chunks out. Messages are
// framed as FrameHdr + payload and stream through the ring in chunks, so a
// message larger than the ring still passes through. Because tail only
// moves *after* the bytes it covers are fully written, a producer killed by
// SIGKILL mid-message can never expose torn bytes — the consumer just sees
// a frame that stops growing, held in its local assembly buffer until the
// source is marked dead and the partial frame is discarded.
//
// Everything here is a POD placement-new'd into the shared region by the
// parent before forking; the atomics used are all lock-free on the targets
// we build for, which is what makes them valid across processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "vmpi/transport.hpp"

namespace pgasm::vmpi::detail {

/// Wire header preceding each message's payload bytes in a ring.
struct FrameHdr {
  std::uint64_t payload_len = 0;
  std::int64_t tag = 0;
  std::uint64_t send_idx = 0;
  std::uint32_t source = 0;
  std::uint8_t internal = 0;
  std::uint8_t sync = 0;
  std::uint8_t pad[2] = {0, 0};
};
static_assert(sizeof(FrameHdr) == 32);

/// head/tail of one SPSC ring, each on its own cache line so producer and
/// consumer do not false-share. The ring's data bytes follow immediately
/// after this header in the shared region.
struct RingHdr {
  alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumer-owned
  alignas(64) std::atomic<std::uint64_t> tail{0};  ///< producer-owned
};

/// One per-rank liveness flag, cache-line isolated (polled hot).
struct alignas(64) ShmFlag {
  std::atomic<std::uint32_t> v{0};
};

/// One per-ordered-pair ssend acknowledgement slot: the destination stores
/// the send_idx of the latest synchronous message from the source it has
/// consumed. A source has at most one synchronous send outstanding (ssend
/// blocks), and its send_idx is strictly increasing, so `ack >= idx` is an
/// exact "my message was consumed" test.
struct alignas(64) ShmAckSlot {
  std::atomic<std::uint64_t> v{0};
};

/// Run-wide control block at the start of the shared region.
struct ShmControl {
  std::atomic<std::uint32_t> aborted{0};
  /// First rank whose body threw a run-aborting exception (-1 = none); CAS
  /// so exactly one winner is reported, matching the thread transport's
  /// first_error. The winner's exception is reconstructed from its exit
  /// blob (or kept as a live exception_ptr when the winner is the
  /// parent-resident rank 0).
  std::atomic<std::int32_t> first_error_rank{-1};
  FaultCounters counters;
};

}  // namespace pgasm::vmpi::detail
