// Communication/computation cost accounting for the virtual MPI runtime.
//
// The paper's experiments ran on up to 8192 BlueGene/L nodes. This repo runs
// all "ranks" on one node (threads by default, forked processes over shared
// memory with --transport=proc), so raw wall-clock cannot show parallel
// scaling. Instead every rank keeps a ledger:
//
//   * compute seconds  — charged from the thread CPU clock around the rank's
//     real computation (so time-slicing threads don't inflate each other),
//   * communication    — charged per message with an alpha-beta (latency +
//     bytes/bandwidth) model, on both sender and receiver.
//
// "Modeled parallel time" of a phase = max over ranks of (compute + comm).
// The alpha/beta defaults are calibrated from tools/transport_probe
// ping-pong / streaming-bandwidth measurements of the default (thread)
// transport on a dev-class node; CostParams::calibrated() exposes the
// measured numbers for both transports, and each Runtime can override them
// so benches can explore sensitivity (e.g. model BlueGene/L-class links).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <type_traits>
#include <vector>

namespace pgasm::vmpi {

enum class TransportKind;  // transport.hpp

struct CostParams {
  // Calibrated via tools/transport_probe on the in-process (thread)
  // transport: ~2.6 us one-way small-message latency (mailbox mutex+cv
  // handoff), ~30 GB/s effective per-link streaming bandwidth (memcpy
  // through the mailbox, both sides charged). See DESIGN.md §14 for the
  // method and the measured-vs-modeled skew discussion.
  double alpha = 2.6e-6;      ///< per-message latency, seconds
  double beta = 1.0 / 30e9;   ///< per-byte cost, seconds
  double compute_scale = 1.0; ///< multiplier on charged compute seconds

  /// Measured alpha-beta of one of our real transports (thread mailboxes or
  /// forked processes over shm rings), from tools/transport_probe. Defined
  /// in cost_model.cpp next to the numbers' provenance.
  static CostParams calibrated(TransportKind kind) noexcept;

  /// The paper's interconnect class (BlueGene/L-era links): the historical
  /// defaults benches use to model at-scale runs.
  static CostParams bluegene() noexcept {
    CostParams p;
    p.alpha = 5e-6;
    p.beta = 1.0 / 150e6;
    return p;
  }
};

/// Per-rank accounting. Owned by the rank's thread; merged after a run.
struct RankLedger {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  double compute_seconds = 0;
  double comm_seconds = 0;  ///< modeled, from CostParams

  double busy_seconds() const noexcept { return compute_seconds + comm_seconds; }

  void charge_send(std::uint64_t bytes, const CostParams& cp) noexcept {
    ++msgs_sent;
    bytes_sent += bytes;
    comm_seconds += cp.alpha + static_cast<double>(bytes) * cp.beta;
  }
  void charge_recv(std::uint64_t bytes, const CostParams& cp) noexcept {
    ++msgs_recv;
    bytes_recv += bytes;
    comm_seconds += cp.alpha + static_cast<double>(bytes) * cp.beta;
  }
  void charge_compute(double seconds, const CostParams& cp) noexcept {
    compute_seconds += seconds * cp.compute_scale;
  }

  RankLedger& operator+=(const RankLedger& o) noexcept {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    compute_seconds += o.compute_seconds;
    comm_seconds += o.comm_seconds;
    return *this;
  }
};

/// Fault-injection and failure-handling counters for a run. All zeros for a
/// fault-free run with no timeout-carrying receives.
struct FaultStats {
  std::uint64_t crashes_injected = 0;   ///< ranks killed by a FaultPlan
  std::uint64_t messages_dropped = 0;   ///< user sends silently lost
  std::uint64_t messages_delayed = 0;   ///< user sends delivered late
  std::uint64_t sends_to_dead = 0;      ///< sends discarded (dest had failed)
  std::uint64_t timeouts_fired = 0;     ///< TimeoutError throws (recv/probe)
  std::uint64_t ranks_failed = 0;       ///< ranks marked dead during the run
};

/// Small result blobs a rank ships back to the driver (Comm::stash_put).
using StashMap = std::map<std::uint32_t, std::vector<std::byte>>;

/// Aggregate view over all ranks of a finished run.
struct RunCost {
  std::vector<RankLedger> per_rank;
  FaultStats faults;
  /// stash[r] = rank r's Comm::stash_put blobs. Works identically on both
  /// transports (the proc transport ships them in the rank's exit blob);
  /// a rank that died mid-run leaves its map empty.
  std::vector<StashMap> stash;

  /// Typed view of one stashed blob; nullopt when the rank never stashed
  /// the key (e.g. it crashed) or the size does not match T.
  template <typename T>
  std::optional<T> stash_value(int rank, std::uint32_t key) const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank < 0 || static_cast<std::size_t>(rank) >= stash.size())
      return std::nullopt;
    const auto& m = stash[static_cast<std::size_t>(rank)];
    const auto it = m.find(key);
    if (it == m.end() || it->second.size() != sizeof(T)) return std::nullopt;
    T v;
    std::memcpy(&v, it->second.data(), sizeof(T));
    return v;
  }

  double modeled_parallel_seconds() const noexcept;
  double max_compute_seconds() const noexcept;
  double max_comm_seconds() const noexcept;
  double total_compute_seconds() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  std::uint64_t total_msgs() const noexcept;
  /// Average fraction of the modeled makespan each rank spends not busy.
  double avg_idle_fraction() const noexcept;
};

}  // namespace pgasm::vmpi
