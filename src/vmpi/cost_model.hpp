// Communication/computation cost accounting for the virtual MPI runtime.
//
// The paper's experiments ran on up to 8192 BlueGene/L nodes. This repo runs
// all "ranks" as threads of one process on one node, so raw wall-clock cannot
// show parallel scaling. Instead every rank keeps a ledger:
//
//   * compute seconds  — charged from the thread CPU clock around the rank's
//     real computation (so time-slicing threads don't inflate each other),
//   * communication    — charged per message with an alpha-beta (latency +
//     bytes/bandwidth) model, on both sender and receiver.
//
// "Modeled parallel time" of a phase = max over ranks of (compute + comm).
// The alpha/beta defaults approximate BlueGene/L-class interconnects; they
// are configurable per Runtime so benches can explore sensitivity.
#pragma once

#include <cstdint>
#include <vector>

namespace pgasm::vmpi {

struct CostParams {
  double alpha = 5e-6;        ///< per-message latency, seconds
  double beta = 1.0 / 150e6;  ///< per-byte cost, seconds (150 MB/s links)
  double compute_scale = 1.0; ///< multiplier on charged compute seconds
};

/// Per-rank accounting. Owned by the rank's thread; merged after a run.
struct RankLedger {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  double compute_seconds = 0;
  double comm_seconds = 0;  ///< modeled, from CostParams

  double busy_seconds() const noexcept { return compute_seconds + comm_seconds; }

  void charge_send(std::uint64_t bytes, const CostParams& cp) noexcept {
    ++msgs_sent;
    bytes_sent += bytes;
    comm_seconds += cp.alpha + static_cast<double>(bytes) * cp.beta;
  }
  void charge_recv(std::uint64_t bytes, const CostParams& cp) noexcept {
    ++msgs_recv;
    bytes_recv += bytes;
    comm_seconds += cp.alpha + static_cast<double>(bytes) * cp.beta;
  }
  void charge_compute(double seconds, const CostParams& cp) noexcept {
    compute_seconds += seconds * cp.compute_scale;
  }

  RankLedger& operator+=(const RankLedger& o) noexcept {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    compute_seconds += o.compute_seconds;
    comm_seconds += o.comm_seconds;
    return *this;
  }
};

/// Fault-injection and failure-handling counters for a run. All zeros for a
/// fault-free run with no timeout-carrying receives.
struct FaultStats {
  std::uint64_t crashes_injected = 0;   ///< ranks killed by a FaultPlan
  std::uint64_t messages_dropped = 0;   ///< user sends silently lost
  std::uint64_t messages_delayed = 0;   ///< user sends delivered late
  std::uint64_t sends_to_dead = 0;      ///< sends discarded (dest had failed)
  std::uint64_t timeouts_fired = 0;     ///< TimeoutError throws (recv/probe)
  std::uint64_t ranks_failed = 0;       ///< ranks marked dead during the run
};

/// Aggregate view over all ranks of a finished run.
struct RunCost {
  std::vector<RankLedger> per_rank;
  FaultStats faults;

  double modeled_parallel_seconds() const noexcept;
  double max_compute_seconds() const noexcept;
  double max_comm_seconds() const noexcept;
  double total_compute_seconds() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  std::uint64_t total_msgs() const noexcept;
  /// Average fraction of the modeled makespan each rank spends not busy.
  double avg_idle_fraction() const noexcept;
};

}  // namespace pgasm::vmpi
