// The multi-process vmpi transport: ranks are real forked OS processes
// exchanging messages over shared-memory SPSC rings (shm_ring.hpp), one
// ring per ordered rank pair. Rank 0 runs on the parent's calling thread —
// driver-visible state its body mutates (scheduler bookkeeping, result
// collection) must survive the run, and only rank 0's mutations are read
// by drivers. Ranks 1..p-1 fork; each child ships its cost ledger, stash,
// metric deltas and trace events back in a per-rank exit blob that the
// parent merges after reaping.
//
// Crash semantics are the transport's reason to exist: an injected crash
// SIGKILLs the child for real — no unwinding, no flushing — so the
// survivors experience an actual machine-style failure (silent stop,
// detected by the parent's reaper and published through the shared dead
// flags). The blocking waits are polling loops over the shared flags and
// rings (~spin then short naps); while blocked on a full outbound ring or
// a synchronous-send ack, a rank keeps draining its own inbound rings so
// bounded ring capacity cannot introduce deadlocks the unbounded thread
// mailboxes do not have.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "vmpi/shm_ring.hpp"
#include "vmpi/transport.hpp"

namespace pgasm::vmpi {

class ProcTransport final : public Transport {
 public:
  /// Maps the shared region and lays out control/flags/acks/rings. Must be
  /// constructed before forking; every rank process then shares it.
  ProcTransport(int num_ranks, std::size_t ring_bytes);
  ~ProcTransport() override;

  ProcTransport(const ProcTransport&) = delete;
  ProcTransport& operator=(const ProcTransport&) = delete;

  TransportKind kind() const noexcept override { return TransportKind::kProc; }
  int num_ranks() const noexcept override { return num_ranks_; }

  bool is_dead(int rank) const noexcept override {
    return dead_[rank].v.load(std::memory_order_acquire) != 0;
  }
  bool is_done(int rank) const noexcept override {
    return done_[rank].v.load(std::memory_order_acquire) != 0;
  }
  bool is_aborted() const noexcept override {
    return control_->aborted.load(std::memory_order_acquire) != 0;
  }

  void mark_dead(int rank) override;
  void mark_done(int rank) override;
  void abort_all() override;
  /// CAS this rank in as the run's first erroring rank; true if it won.
  bool claim_first_error(int rank) noexcept;
  int first_error_rank() const noexcept {
    return control_->first_error_rank.load(std::memory_order_acquire);
  }
  detail::FaultCounters& counters() noexcept override {
    return control_->counters;
  }

  void deliver(int self, int dest, detail::Message&& msg, bool sync) override;
  Wait recv(int self, int source, std::int64_t tag, bool internal,
            const std::chrono::steady_clock::time_point* deadline,
            detail::Message* out) override;
  Wait probe(int self, int source, std::int64_t tag,
             const std::chrono::steady_clock::time_point* deadline,
             ProbeResult* out) override;
  bool iprobe(int self, int source, std::int64_t tag,
              ProbeResult* out) override;
  /// SIGKILLs the calling child process. The parent-resident rank 0 falls
  /// back to KilledError (there is no separate process to kill without
  /// taking down the whole run).
  [[noreturn]] void crash_self(int self, const std::string& why) override;

 private:
  /// Mid-assembly state of one inbound ring: header bytes, then payload
  /// bytes, accumulated as they stream in. Local to this process.
  struct Assembly {
    bool in_payload = false;
    std::size_t have = 0;  ///< bytes of header or payload accumulated
    detail::FrameHdr hdr;
    std::vector<std::byte> payload;
  };

  detail::RingHdr* ring_hdr(int src, int dst) const noexcept;
  std::byte* ring_buf(int src, int dst) const noexcept;

  /// Copy every available byte out of self's inbound rings into pending_.
  /// Called from all blocking loops, which is what keeps peers' producers
  /// unblocked (see file comment).
  void drain_inbound(int self);
  /// Stream n bytes into the (self → dest) ring, blocking on ring space.
  /// Returns false when dest died or finished mid-stream (remaining bytes
  /// are abandoned — nothing will ever read that ring again); throws
  /// AbortError on abort.
  bool write_stream(int self, int dest, const void* data, std::size_t n);

  int num_ranks_;
  std::size_t ring_bytes_;
  void* region_ = nullptr;
  std::size_t region_size_ = 0;
  // Carved views into the shared region (set once in the constructor).
  detail::ShmControl* control_ = nullptr;
  detail::ShmFlag* dead_ = nullptr;
  detail::ShmFlag* done_ = nullptr;
  detail::ShmAckSlot* acks_ = nullptr;  ///< [src * p + dst]
  std::byte* rings_ = nullptr;          ///< p*p × (RingHdr + ring_bytes)

  // Per-process local state. Each rank lives in its own process (rank 0 in
  // the parent), so although these members exist in every process's copy of
  // the object, each copy is only ever touched by its own rank.
  std::vector<Assembly> assembly_;         ///< per source rank
  std::deque<detail::Message> pending_;    ///< drained, not yet matched
};

}  // namespace pgasm::vmpi
