#include "vmpi/thread_transport.hpp"

namespace pgasm::vmpi {

ThreadTransport::ThreadTransport(int num_ranks)
    : num_ranks_(num_ranks),
      boxes_(static_cast<std::size_t>(num_ranks)),
      dead_(static_cast<std::size_t>(num_ranks)),
      done_(static_cast<std::size_t>(num_ranks)) {}

// Memory-order notes (every site names its order explicitly — W014): the
// liveness flags (aborted_/dead_/done_) are release-stored by the marking
// thread and acquire-loaded by peers so everything written before the mark
// (e.g. a finishing rank's last sends) is visible to anyone who observed
// it. The `consumed` rendezvous flag is release/acquire for the same
// reason. All flag re-checks inside cv wait predicates run under the
// mailbox mutex, which already orders them; the explicit orders make the
// lock-free readers (is_dead/is_done/is_aborted) correct on their own.
void ThreadTransport::abort_all() {
  aborted_.store(true, std::memory_order_release);
  // Notify under each mailbox mutex: a receiver that checked the flag and
  // is about to sleep holds the mutex until its wait releases it, so the
  // notify cannot land in the gap between its check and its sleep.
  for (auto& box : boxes_) {
    util::MutexLock lock(box.mu);
    box.cv.notify_all();
  }
}

void ThreadTransport::mark_dead(int r) {
  dead_[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
  counters_.ranks_failed.fetch_add(1, std::memory_order_relaxed);
  {
    // Complete any synchronous sends rendezvoused on the dead rank's
    // mailbox, drop its queued messages, and wake every waiter so blocked
    // peers can re-evaluate (fail fast or time out).
    auto& box = boxes_[static_cast<std::size_t>(r)];
    util::MutexLock lock(box.mu);
    for (auto& m : box.queue) {
      if (m.consumed) m.consumed->store(true, std::memory_order_release);
    }
    box.queue.clear();
  }
  for (auto& box : boxes_) {
    util::MutexLock lock(box.mu);
    box.cv.notify_all();
  }
}

void ThreadTransport::mark_done(int r) {
  // Like mark_dead, pending synchronous sends rendezvoused on the finished
  // rank's mailbox are completed and every waiter is woken — a peer blocked
  // in an ssend to a rank that has already returned (e.g. a worker falsely
  // declared dead reporting to a master that finished) would otherwise hang
  // the join forever — but the rank is not counted as failed and
  // rank_failed() stays false for it.
  done_[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
  {
    auto& box = boxes_[static_cast<std::size_t>(r)];
    util::MutexLock lock(box.mu);
    for (auto& m : box.queue) {
      if (m.consumed) m.consumed->store(true, std::memory_order_release);
    }
    box.queue.clear();
  }
  for (auto& box : boxes_) {
    util::MutexLock lock(box.mu);
    box.cv.notify_all();
  }
}

void ThreadTransport::deliver(int self, int dest, detail::Message&& msg,
                              bool sync) {
  (void)self;
  // pgasm-lint: allow(raw-atomic): the ssend rendezvous flag declared in
  // transport.hpp (detail::Message::consumed); allocated at the send site
  std::shared_ptr<std::atomic<bool>> consumed;
  if (sync) {
    consumed = std::make_shared<std::atomic<bool>>(false);
    msg.consumed = consumed;
  }
  auto& box = boxes_[static_cast<std::size_t>(dest)];
  util::MutexLock lock(box.mu);
  box.queue.push_back(std::move(msg));
  box.cv.notify_all();
  if (sync) {
    // Rendezvous on the destination mailbox cv. The predicate re-checks
    // abort and destination death/completion on every wake, so a receiver
    // that never consumes cannot strand the sender (the old promise/future
    // rendezvous deadlocked here).
    const std::size_t d = static_cast<std::size_t>(dest);
    box.cv.wait(box.mu, [&] {
      return consumed->load(std::memory_order_acquire) ||
             aborted_.load(std::memory_order_acquire) ||
             dead_[d].load(std::memory_order_acquire) ||
             done_[d].load(std::memory_order_acquire);
    });
    if (!consumed->load(std::memory_order_acquire)) {
      if (dead_[d].load(std::memory_order_acquire)) {
        counters_.sends_to_dead.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (done_[d].load(std::memory_order_acquire)) return;
      throw AbortError("vmpi aborted during ssend");
    }
  }
}

Transport::Wait ThreadTransport::recv(
    int self, int source, std::int64_t tag, bool internal,
    const std::chrono::steady_clock::time_point* deadline,
    detail::Message* out) {
  auto& box = boxes_[static_cast<std::size_t>(self)];
  util::MutexLock lock(box.mu);
  for (;;) {
    // Both the abort flag and the dead flags are re-checked under the
    // mailbox mutex before every sleep; abort_all/mark_dead notify under
    // the same mutex, so no wake can be lost.
    if (aborted_.load(std::memory_order_acquire))
      throw AbortError("vmpi aborted");
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!detail::matches(*it, source, tag, internal)) continue;
      *out = std::move(*it);
      box.queue.erase(it);
      if (out->consumed) {
        out->consumed->store(true, std::memory_order_release);
        box.cv.notify_all();  // wake the rendezvoused synchronous sender
      }
      return Wait::kMessage;
    }
    // No match queued. A specific failed or finished source can never
    // deliver: fail fast instead of blocking until the deadline (forever).
    if (source != kAnySource && source != self &&
        (dead_[static_cast<std::size_t>(source)].load(
             std::memory_order_acquire) ||
         done_[static_cast<std::size_t>(source)].load(
             std::memory_order_acquire))) {
      return Wait::kPeerGone;
    }
    if (deadline) {
      if (std::chrono::steady_clock::now() >= *deadline) return Wait::kTimeout;
      box.cv.wait_until(box.mu, *deadline);
    } else {
      box.cv.wait(box.mu);
    }
  }
}

Transport::Wait ThreadTransport::probe(
    int self, int source, std::int64_t tag,
    const std::chrono::steady_clock::time_point* deadline, ProbeResult* out) {
  auto& box = boxes_[static_cast<std::size_t>(self)];
  util::MutexLock lock(box.mu);
  for (;;) {
    if (aborted_.load(std::memory_order_acquire))
      throw AbortError("vmpi aborted");
    for (const auto& m : box.queue) {
      if (detail::matches(m, source, tag, /*internal=*/false)) {
        out->source = m.source;
        out->tag = m.tag;
        out->bytes = m.payload.size();
        out->send_idx = m.send_idx;
        return Wait::kMessage;
      }
    }
    if (source != kAnySource && source != self &&
        (dead_[static_cast<std::size_t>(source)].load(
             std::memory_order_acquire) ||
         done_[static_cast<std::size_t>(source)].load(
             std::memory_order_acquire))) {
      return Wait::kPeerGone;
    }
    if (deadline) {
      if (std::chrono::steady_clock::now() >= *deadline) return Wait::kTimeout;
      box.cv.wait_until(box.mu, *deadline);
    } else {
      box.cv.wait(box.mu);
    }
  }
}

bool ThreadTransport::iprobe(int self, int source, std::int64_t tag,
                             ProbeResult* out) {
  auto& box = boxes_[static_cast<std::size_t>(self)];
  util::MutexLock lock(box.mu);
  if (aborted_.load(std::memory_order_acquire))
    throw AbortError("vmpi aborted");
  for (const auto& m : box.queue) {
    if (detail::matches(m, source, tag, /*internal=*/false)) {
      if (out != nullptr) {
        out->source = m.source;
        out->tag = m.tag;
        out->bytes = m.payload.size();
        out->send_idx = m.send_idx;
      }
      return true;
    }
  }
  return false;
}

void ThreadTransport::crash_self(int self, const std::string& why) {
  (void)self;
  throw KilledError(why);
}

void ThreadTransport::reset() {
  aborted_.store(false, std::memory_order_release);
  for (auto& d : dead_) d.store(false, std::memory_order_release);
  for (auto& d : done_) d.store(false, std::memory_order_release);
  counters_.reset();
  for (auto& box : boxes_) {
    util::MutexLock lock(box.mu);
    box.queue.clear();
  }
}

}  // namespace pgasm::vmpi
