#include "vmpi/runtime.hpp"

#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"
#include "vmpi/thread_transport.hpp"
#include "vmpi/wait_scope.hpp"

namespace pgasm::vmpi {

namespace {

/// Uniform [0,1) hash of (seed, rank, send index) for probabilistic faults.
double fault_uniform(std::uint64_t seed, int rank, std::uint64_t idx,
                     std::uint64_t salt) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (idx + 1)) ^
                        (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(rank + 1)) ^
                        salt;
  const std::uint64_t h = util::splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string rank_gone_msg(const char* what, int source, bool failed) {
  return std::string(what) + ": rank " + std::to_string(source) +
         (failed ? " failed" : " finished");
}

}  // namespace

namespace detail {

void ring_instant(obs::RankRing* ring, int rank, const char* name,
                  const char* arg0_name, std::uint64_t arg0,
                  const char* arg1_name, std::uint64_t arg1,
                  const char* arg2_name, std::uint64_t arg2) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = "vmpi";
  ev.kind = obs::TraceEvent::Kind::kInstant;
  ev.rank = rank;
  ev.ts_us = obs::tracer().now_us();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.arg2_name = arg2_name;
  ev.arg2 = arg2;
  ring->record(ev);
}

}  // namespace detail

using detail::ring_instant;
using detail::WaitScope;

Comm::Comm(Transport& transport, const CostParams& cost,
           const FaultPlan& faults, int rank)
    : transport_(&transport), cost_(&cost), faults_(&faults), rank_(rank) {
  if (obs::tracer().enabled()) {
    obs_ring_ = obs::tracer().ring(rank);
    auto& reg = obs::registry();
    const char* phase = obs::current_phase();
    obs_send_bytes_ = &reg.histogram("vmpi.send_bytes", rank, phase);
    obs_recv_bytes_ = &reg.histogram("vmpi.recv_bytes", rank, phase);
    obs_wait_us_ = &reg.histogram("comm.wait_us", rank, phase);
    obs_timeouts_ = &reg.counter("vmpi.timeouts", rank, phase);
  }
}

bool Comm::apply_faults() {
  const FaultPlan& fp = *faults_;
  const std::uint64_t idx = ++user_send_seq_;
  if (!fp.enabled()) return false;

  for (const auto& c : fp.crashes) {
    if (c.rank == rank_ && idx >= c.at_send) {
      transport_->counters().crashes_injected.fetch_add(
          1, std::memory_order_relaxed);
      if (obs_ring_ != nullptr) {
        ring_instant(obs_ring_, rank_, "fault_crash", "send_idx", idx);
      }
      // The transport decides what dying means: KilledError unwinds the
      // rank thread; the proc transport SIGKILLs the calling process (a
      // real kill — no stack unwinding, no blob flush, exactly what a
      // machine failure looks like to the surviving ranks).
      transport_->crash_self(
          rank_, "fault injection: rank " + std::to_string(rank_) +
                     " killed at user send " + std::to_string(idx));
    }
  }
  bool drop = false;
  double delay_s = 0;
  for (const auto& d : fp.drops) {
    if (d.rank == rank_ && d.at_send == idx) drop = true;
  }
  for (const auto& d : fp.delays) {
    if (d.rank == rank_ && d.at_send == idx) delay_s = d.seconds;
  }
  if (!drop && fp.drop_prob > 0 &&
      fault_uniform(fp.seed, rank_, idx, /*salt=*/0x1) < fp.drop_prob) {
    drop = true;
  }
  if (delay_s <= 0 && fp.delay_prob > 0 &&
      fault_uniform(fp.seed, rank_, idx, /*salt=*/0x2) < fp.delay_prob) {
    delay_s = fp.delay_seconds;
  }
  if (delay_s > 0) {
    transport_->counters().messages_delayed.fetch_add(
        1, std::memory_order_relaxed);
    if (obs_ring_ != nullptr) {
      ring_instant(obs_ring_, rank_, "fault_delay", "send_idx", idx,
                   "delay_us",
                   static_cast<std::uint64_t>(delay_s * 1e6));
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
  }
  if (drop) {
    transport_->counters().messages_dropped.fetch_add(
        1, std::memory_order_relaxed);
    if (obs_ring_ != nullptr) {
      ring_instant(obs_ring_, rank_, "fault_drop", "send_idx", idx);
    }
  }
  return drop;
}

bool Comm::send_preflight(int dest, std::size_t n, bool internal, bool sync) {
  if (dest < 0 || dest >= size()) throw std::runtime_error("send: bad dest");
  if (transport_->is_aborted()) throw AbortError("vmpi aborted");

  // Fault injection applies to the user channel only: a dropped or crashed
  // collective-internal message is unrecoverable by construction, whereas
  // user-level protocols are expected to tolerate these faults.
  bool drop = false;
  if (!internal) drop = apply_faults();

  // The send is charged even when the message is lost or the destination is
  // dead — the sender did the work of sending it.
  ledger_.charge_send(n, *cost_);
  if (!internal && obs_ring_ != nullptr) {
    obs_send_bytes_->observe(n);
    // mseq = this rank's user send index (just assigned by apply_faults):
    // (rank, mseq) names this message; the matching recv records the same
    // pair, which is what analyze and the Chrome flow arrows stitch on.
    // Recorded even for dropped/dead-destination sends so the analyzer can
    // report them as unmatched edges.
    ring_instant(obs_ring_, rank_, sync ? "ssend" : "send", "peer",
                 static_cast<std::uint64_t>(dest), "bytes", n, "mseq",
                 user_send_seq_);
  }
  if (drop) return false;
  if (transport_->is_dead(dest)) {
    transport_->counters().sends_to_dead.fetch_add(
        1, std::memory_order_relaxed);
    return false;  // synchronous sends complete immediately: no consumer
  }
  if (transport_->is_done(dest)) {
    return false;  // receiver finished its body: discard, never block
  }
  return true;
}

void Comm::dispatch_message(int dest, detail::Message&& msg, bool sync) {
  if (!sync) {
    transport_->deliver(rank_, dest, std::move(msg), /*sync=*/false);
    return;
  }
  // The rendezvous wait is the synchronous sender's blocked time: span it
  // so the ledger charges it as comm wait, not compute. The transport owns
  // the actual blocking (mailbox cv on threads, shm ack-slot poll on
  // processes) and the post-enqueue liveness accounting.
  WaitScope wait_sp(obs_ring_, obs_wait_us_, rank_, "ssend_wait");
  wait_sp.arg("peer", static_cast<std::uint64_t>(dest));
  wait_sp.arg("mseq", msg.send_idx);
  transport_->deliver(rank_, dest, std::move(msg), /*sync=*/true);
}

void Comm::send_impl(int dest, std::int64_t tag, const void* data,
                     std::size_t n, bool internal, bool sync) {
  if (!send_preflight(dest, n, internal, sync)) return;

  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.internal = internal;
  msg.send_idx = internal ? 0 : user_send_seq_;
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n);
  dispatch_message(dest, std::move(msg), sync);
}

void Comm::send_payload_impl(int dest, std::int64_t tag,
                             std::vector<std::byte>&& payload, bool sync) {
  if (!send_preflight(dest, payload.size(), /*internal=*/false, sync)) return;

  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.internal = false;
  msg.send_idx = user_send_seq_;
  msg.payload = std::move(payload);
  dispatch_message(dest, std::move(msg), sync);
}

std::vector<std::byte> Comm::recv_impl(
    int source, std::int64_t tag, bool internal, Status* status,
    const std::chrono::steady_clock::time_point* deadline) {
  // Span the whole wait (user channel only): ts is the moment this rank
  // started waiting, the end is when the message was consumed (or the wait
  // timed out — the destructor records the span on the throw paths too).
  WaitScope wait_sp(internal ? nullptr : obs_ring_, obs_wait_us_, rank_,
                    "recv");
  detail::Message msg;
  const Transport::Wait got =
      transport_->recv(rank_, source, tag, internal, deadline, &msg);
  switch (got) {
    case Transport::Wait::kMessage: {
      ledger_.charge_recv(msg.payload.size(), *cost_);
      if (!internal && obs_ring_ != nullptr) {
        obs_recv_bytes_->observe(msg.payload.size());
        wait_sp.arg("peer", static_cast<std::uint64_t>(msg.source));
        wait_sp.arg("bytes", msg.payload.size());
        wait_sp.arg("mseq", msg.send_idx);
      }
      wait_sp.finish();
      if (status) {
        status->source = msg.source;
        status->tag = static_cast<int>(msg.tag);
        status->bytes = msg.payload.size();
      }
      return std::move(msg.payload);
    }
    case Transport::Wait::kPeerGone: {
      // A specific failed or finished source can never deliver: the
      // transport failed fast instead of blocking until the deadline
      // (forever).
      const bool failed = transport_->is_dead(source);
      if (deadline) {
        transport_->counters().timeouts_fired.fetch_add(
            1, std::memory_order_relaxed);
        if (obs_ring_ != nullptr) {
          obs_timeouts_->inc();
          ring_instant(obs_ring_, rank_, "recv_timeout", "peer",
                       static_cast<std::uint64_t>(source), "peer_gone", 1);
        }
        throw TimeoutError(rank_gone_msg("recv", source, failed));
      }
      throw AbortError(rank_gone_msg("recv", source, failed));
    }
    case Transport::Wait::kTimeout:
      break;
  }
  transport_->counters().timeouts_fired.fetch_add(1, std::memory_order_relaxed);
  if (obs_ring_ != nullptr) {
    obs_timeouts_->inc();
    ring_instant(obs_ring_, rank_, "recv_timeout", "peer",
                 static_cast<std::uint64_t>(source));
  }
  throw TimeoutError("recv: timeout (source " + std::to_string(source) +
                     ", tag " + std::to_string(tag) + ")");
}

std::vector<std::byte> Comm::recv(int source, int tag, Status* status) {
  return recv_impl(source, tag, /*internal=*/false, status);
}

std::vector<std::byte> Comm::recv_timeout(int source, int tag,
                                          double timeout_s, Status* status) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  return recv_impl(source, tag, /*internal=*/false, status, &deadline);
}

Status Comm::probe_impl(int source, int tag,
                        const std::chrono::steady_clock::time_point* deadline) {
  WaitScope wait_sp(obs_ring_, obs_wait_us_, rank_, "probe");
  ProbeResult pr;
  const Transport::Wait got =
      transport_->probe(rank_, source, tag, deadline, &pr);
  switch (got) {
    case Transport::Wait::kMessage: {
      // The probed message stays queued; stamping its (peer, mseq) lets
      // the analyzer jump probe waits to the sender like recv waits.
      wait_sp.arg("peer", static_cast<std::uint64_t>(pr.source));
      wait_sp.arg("bytes", pr.bytes);
      wait_sp.arg("mseq", pr.send_idx);
      wait_sp.finish();
      return Status{pr.source, static_cast<int>(pr.tag), pr.bytes};
    }
    case Transport::Wait::kPeerGone: {
      const bool failed = transport_->is_dead(source);
      if (deadline) {
        transport_->counters().timeouts_fired.fetch_add(
            1, std::memory_order_relaxed);
        if (obs_ring_ != nullptr) {
          obs_timeouts_->inc();
          ring_instant(obs_ring_, rank_, "probe_timeout", "peer",
                       static_cast<std::uint64_t>(source), "peer_gone", 1);
        }
        throw TimeoutError(rank_gone_msg("probe", source, failed));
      }
      throw AbortError(rank_gone_msg("probe", source, failed));
    }
    case Transport::Wait::kTimeout:
      break;
  }
  transport_->counters().timeouts_fired.fetch_add(1, std::memory_order_relaxed);
  if (obs_ring_ != nullptr) {
    obs_timeouts_->inc();
    ring_instant(obs_ring_, rank_, "probe_timeout", "peer",
                 static_cast<std::uint64_t>(source));
  }
  throw TimeoutError("probe: timeout (source " + std::to_string(source) +
                     ", tag " + std::to_string(tag) + ")");
}

Status Comm::probe(int source, int tag) {
  return probe_impl(source, tag, nullptr);
}

Status Comm::probe_timeout(int source, int tag, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  return probe_impl(source, tag, &deadline);
}

bool Comm::iprobe(int source, int tag, Status* status) {
  ProbeResult pr;
  if (!transport_->iprobe(rank_, source, tag, &pr)) return false;
  if (status) {
    status->source = pr.source;
    status->tag = static_cast<int>(pr.tag);
    status->bytes = pr.bytes;
  }
  return true;
}

void Comm::barrier() {
  // A barrier is pure wait from the ledger's point of view: the token
  // exchange itself is microseconds, the span is dominated by waiting for
  // the slowest rank to arrive.
  WaitScope sp(obs_ring_, obs_wait_us_, rank_, "barrier");
  // Dissemination barrier: ceil(log2 p) rounds, in round k exchange a token
  // with the ranks at distance 2^k.
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  char token = 1;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;
    send_impl(to, base_tag + round, &token, 1, /*internal=*/true,
              /*sync=*/false);
    (void)recv_impl(from, base_tag + round, /*internal=*/true, nullptr);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  // Binomial tree broadcast on virtual ranks.
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      const int parent = ((vr - mask) + root) % p;
      data = recv_impl(parent, base_tag, /*internal=*/true, nullptr);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p && (vr & (mask - 1)) == 0 && (vr & mask) == 0) {
      const int child = ((vr + mask) + root) % p;
      send_impl(child, base_tag, data.data(), data.size(), /*internal=*/true,
                /*sync=*/false);
    }
    mask >>= 1;
  }
}

Runtime::Runtime(int num_ranks, CostParams cost, FaultPlan faults)
    : num_ranks_(num_ranks),
      kind_(TransportKind::kThread),
      cost_(cost),
      faults_(std::move(faults)),
      thread_transport_(std::make_unique<ThreadTransport>(num_ranks)) {
  if (num_ranks < 1) throw std::runtime_error("Runtime: num_ranks < 1");
}

Runtime::Runtime(int num_ranks, const std::string& transport, CostParams cost,
                 FaultPlan faults)
    : num_ranks_(num_ranks),
      kind_(resolve_transport(transport)),
      cost_(cost),
      faults_(std::move(faults)) {
  if (num_ranks < 1) throw std::runtime_error("Runtime: num_ranks < 1");
  if (kind_ == TransportKind::kThread) {
    thread_transport_ = std::make_unique<ThreadTransport>(num_ranks);
  }
}

Runtime::~Runtime() = default;

RunCost Runtime::run(const std::function<void(Comm&)>& body) {
  return kind_ == TransportKind::kProc ? run_proc(body) : run_threads(body);
}

RunCost Runtime::run_threads(const std::function<void(Comm&)>& body) {
  const int p = num_ranks_;
  ThreadTransport& tp = *thread_transport_;
  tp.reset();  // fresh state per run: queues, abort/dead flags, counters

  // The caller's thread blocks here until every rank thread finishes; span
  // that as a "join" wait so the analyzer can hand the critical path from
  // the driver to the slowest rank instead of dead-ending on the driver.
  WaitScope join_sp(
      obs::tracer().enabled() ? obs::tracer().ring(obs::kDriverTid) : nullptr,
      obs::tracer().enabled()
          ? &obs::registry().histogram("comm.wait_us", obs::kDriverTid,
                                       obs::current_phase())
          : nullptr,
      obs::kDriverTid, "join");
  join_sp.arg("ranks", static_cast<std::uint64_t>(p));

  RunCost cost;
  cost.per_rank.resize(static_cast<std::size_t>(p));
  cost.stash.resize(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  util::Mutex error_mu;
  std::exception_ptr first_error;  // written once under error_mu

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r]() {
      util::set_log_rank(r);
      Comm comm(tp, cost_, faults_, r);
      try {
        body(comm);
        // Normal return: complete any synchronous sends still rendezvoused
        // on this rank's mailbox so no peer hangs on a message this rank
        // will never consume.
        tp.mark_done(r);
      } catch (const KilledError&) {
        // Injected crash: this rank dies quietly. Survivors observe the
        // failure via timeouts / rank_failed, not a run-wide abort.
        tp.mark_dead(r);
      } catch (...) {
        {
          util::MutexLock lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        tp.abort_all();
      }
      cost.per_rank[static_cast<std::size_t>(r)] = comm.ledger();
      cost.stash[static_cast<std::size_t>(r)] = std::move(comm.stash_);
    });
  }
  for (auto& t : threads) t.join();
  join_sp.finish();
  cost.faults = tp.counters().snapshot();

  publish_cost(cost);

  if (first_error) {
    try {
      std::rethrow_exception(first_error);
    } catch (const AbortError&) {
      // A secondary abort got recorded first; report generically.
      throw std::runtime_error("vmpi run aborted");
    }
  }
  return cost;
}

// Publish the run's cost ledgers into the metrics registry so the ad-hoc
// RunCost/FaultStats structs and the obs export agree by construction.
void Runtime::publish_cost(const RunCost& cost) const {
  if (!obs::tracer().enabled()) return;
  auto& reg = obs::registry();
  const char* phase = obs::current_phase();
  for (int r = 0; r < num_ranks_; ++r) {
    const RankLedger& l = cost.per_rank[static_cast<std::size_t>(r)];
    reg.counter("vmpi.msgs_sent", r, phase).inc(l.msgs_sent);
    reg.counter("vmpi.bytes_sent", r, phase).inc(l.bytes_sent);
    reg.counter("vmpi.msgs_recv", r, phase).inc(l.msgs_recv);
    reg.counter("vmpi.bytes_recv", r, phase).inc(l.bytes_recv);
    reg.gauge("vmpi.compute_seconds", r, phase).add(l.compute_seconds);
    reg.gauge("vmpi.comm_seconds", r, phase).add(l.comm_seconds);
  }
  const FaultStats& fs = cost.faults;
  reg.counter("vmpi.faults.crashes_injected", obs::kNoRank, phase)
      .inc(fs.crashes_injected);
  reg.counter("vmpi.faults.messages_dropped", obs::kNoRank, phase)
      .inc(fs.messages_dropped);
  reg.counter("vmpi.faults.messages_delayed", obs::kNoRank, phase)
      .inc(fs.messages_delayed);
  reg.counter("vmpi.faults.sends_to_dead", obs::kNoRank, phase)
      .inc(fs.sends_to_dead);
  reg.counter("vmpi.faults.timeouts_fired", obs::kNoRank, phase)
      .inc(fs.timeouts_fired);
  reg.counter("vmpi.faults.ranks_failed", obs::kNoRank, phase)
      .inc(fs.ranks_failed);
}

}  // namespace pgasm::vmpi
